package kdir

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"khazana"
)

func newDir(t *testing.T, nodes int, attrs khazana.Attrs) (*khazana.Cluster, *Directory) {
	t.Helper()
	c, err := khazana.NewCluster(nodes, khazana.WithStoreDir(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	ctx := context.Background()
	root, err := Create(ctx, c.Node(1), "diradmin", attrs)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Open(ctx, c.Node(1), root, "diradmin")
	if err != nil {
		t.Fatal(err)
	}
	return c, d
}

func TestBindResolve(t *testing.T) {
	_, d := newDir(t, 1, khazana.Attrs{})
	ctx := context.Background()
	attrs := map[string]string{"type": "user", "mail": "alice@example.com"}
	if err := d.Bind(ctx, "/alice", attrs); err != nil {
		t.Fatal(err)
	}
	got, err := d.Resolve(ctx, "/alice")
	if err != nil {
		t.Fatal(err)
	}
	if got["mail"] != "alice@example.com" || got["type"] != "user" {
		t.Fatalf("resolve = %v", got)
	}
	// Rebind replaces the attributes.
	if err := d.Bind(ctx, "/alice", map[string]string{"type": "admin"}); err != nil {
		t.Fatal(err)
	}
	got, _ = d.Resolve(ctx, "/alice")
	if got["type"] != "admin" || got["mail"] != "" {
		t.Fatalf("after rebind = %v", got)
	}
	// Returned maps are copies.
	got["type"] = "mutated"
	again, _ := d.Resolve(ctx, "/alice")
	if again["type"] != "admin" {
		t.Fatal("Resolve leaked internal map")
	}
}

func TestContextsAndList(t *testing.T) {
	_, d := newDir(t, 1, khazana.Attrs{})
	ctx := context.Background()
	if err := d.MkContext(ctx, "/users"); err != nil {
		t.Fatal(err)
	}
	if err := d.MkContext(ctx, "/users/eng"); err != nil {
		t.Fatal(err)
	}
	for i, who := range []string{"alice", "bob", "carol"} {
		err := d.Bind(ctx, "/users/eng/"+who, map[string]string{"uid": fmt.Sprint(1000 + i)})
		if err != nil {
			t.Fatal(err)
		}
	}
	entries, err := d.List(ctx, "/users/eng")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 || entries[0].Name != "alice" || entries[2].Name != "carol" {
		t.Fatalf("list = %+v", entries)
	}
	root, err := d.List(ctx, "/")
	if err != nil || len(root) != 1 || !root[0].IsContext {
		t.Fatalf("root list = %+v, %v", root, err)
	}
	// Resolving a context as a leaf fails; descending through a leaf
	// fails.
	if _, err := d.Resolve(ctx, "/users"); !errors.Is(err, ErrIsContext) {
		t.Fatalf("resolve context: %v", err)
	}
	if err := d.Bind(ctx, "/users/eng/alice/sub", nil); !errors.Is(err, ErrNotContext) {
		t.Fatalf("descend through leaf: %v", err)
	}
	if _, err := d.Resolve(ctx, "/users/hr/dave"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing context: %v", err)
	}
}

func TestUnbind(t *testing.T) {
	_, d := newDir(t, 1, khazana.Attrs{})
	ctx := context.Background()
	_ = d.MkContext(ctx, "/ou")
	_ = d.Bind(ctx, "/ou/entry", map[string]string{"k": "v"})

	// Non-empty contexts cannot be unbound.
	if err := d.Unbind(ctx, "/ou"); err == nil {
		t.Fatal("unbind of non-empty context should fail")
	}
	if err := d.Unbind(ctx, "/ou/entry"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Resolve(ctx, "/ou/entry"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("resolve after unbind: %v", err)
	}
	if err := d.Unbind(ctx, "/ou"); err != nil {
		t.Fatalf("unbind empty context: %v", err)
	}
	if err := d.Unbind(ctx, "/never"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unbind missing: %v", err)
	}
}

func TestSearch(t *testing.T) {
	_, d := newDir(t, 1, khazana.Attrs{})
	ctx := context.Background()
	_ = d.Bind(ctx, "/alice", map[string]string{"dept": "eng"})
	_ = d.Bind(ctx, "/bob", map[string]string{"dept": "sales"})
	_ = d.Bind(ctx, "/carol", map[string]string{"dept": "eng"})
	got, err := d.Search(ctx, "/", "dept", "eng")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(got, ",") != "alice,carol" {
		t.Fatalf("search = %v", got)
	}
}

func TestDistributedReplicas(t *testing.T) {
	// Directory opened on another node sees bindings; with the default
	// weak consistency, repeated reads are served from the local
	// replica.
	c, d1 := newDir(t, 3, khazana.Attrs{})
	ctx := context.Background()
	if err := d1.Bind(ctx, "/printer", map[string]string{"loc": "floor-2"}); err != nil {
		t.Fatal(err)
	}
	d3, err := Open(ctx, c.Node(3), d1.Root(), "diradmin")
	if err != nil {
		t.Fatal(err)
	}
	got, err := d3.Resolve(ctx, "/printer")
	if err != nil || got["loc"] != "floor-2" {
		t.Fatalf("remote resolve = %v, %v", got, err)
	}
	// Update flows back (via the home and gossip).
	if err := d3.Bind(ctx, "/printer", map[string]string{"loc": "floor-9"}); err != nil {
		t.Fatal(err)
	}
	got, err = d1.Resolve(ctx, "/printer")
	if err != nil || got["loc"] != "floor-9" {
		t.Fatalf("home resolve after remote bind = %v, %v", got, err)
	}
}

func TestStrictDirectoryConcurrentBinds(t *testing.T) {
	// A CREW directory serializes binds: concurrent upserts from many
	// nodes must all survive.
	c, d1 := newDir(t, 3, khazana.Attrs{Protocol: khazana.CREW})
	ctx := context.Background()
	dirs := []*Directory{d1}
	for i := 2; i <= 3; i++ {
		di, err := Open(ctx, c.Node(i), d1.Root(), "diradmin")
		if err != nil {
			t.Fatal(err)
		}
		dirs = append(dirs, di)
	}
	done := make(chan error, len(dirs))
	for i, di := range dirs {
		go func(i int, di *Directory) {
			for j := 0; j < 10; j++ {
				name := fmt.Sprintf("/n%d-e%d", i, j)
				if err := di.Bind(ctx, name, map[string]string{"i": fmt.Sprint(i)}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(i, di)
	}
	for range dirs {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	entries, err := d1.List(ctx, "/")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 30 {
		t.Fatalf("entries = %d, want 30 (lost binds under CREW)", len(entries))
	}
}

func TestContextCapacity(t *testing.T) {
	_, d := newDir(t, 1, khazana.Attrs{})
	ctx := context.Background()
	big := strings.Repeat("x", 4096)
	var err error
	for i := 0; i < 64; i++ {
		err = d.Bind(ctx, fmt.Sprintf("/big-%02d", i), map[string]string{"blob": big})
		if err != nil {
			break
		}
	}
	if !errors.Is(err, ErrContextFull) {
		t.Fatalf("expected ErrContextFull, got %v", err)
	}
}

func TestOpenBadRoot(t *testing.T) {
	c, d := newDir(t, 1, khazana.Attrs{})
	ctx := context.Background()
	// A region that is not a context fails to open.
	start, err := c.Node(1).Reserve(ctx, ContextSize, khazana.Attrs{}, "x")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Node(1).Allocate(ctx, start, "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(ctx, c.Node(1), start, "x"); !errors.Is(err, ErrBadRoot) {
		t.Fatalf("open non-context: %v", err)
	}
	_ = d
}
