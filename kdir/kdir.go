// Package kdir is a distributed directory service built on Khazana — the
// use case the paper's introduction motivates alongside file systems
// (Novell's NDS, Microsoft's Active Directory). It maintains a
// hierarchical namespace of entries, each carrying a set of string
// attributes, stored entirely in global memory:
//
//   - every directory context (interior node) is one Khazana region
//     holding its serialized bindings;
//   - name resolution walks contexts exactly like the paper's file system
//     walks directories (§4.1), with Khazana locating and caching each
//     region along the way;
//   - directory deployments choose their consistency per context: the
//     default is the eventual protocol, reflecting that directory services
//     "can tolerate data that is temporarily out-of-date ... as long as
//     they get fast response" (§3.3), while security-sensitive contexts
//     can demand CREW.
//
// Unlike kfs, contexts store structured attribute maps rather than byte
// blobs, and bindings are upserts — the operations a directory service
// needs (bind, resolve, list, unbind).
package kdir

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"khazana"
	"khazana/internal/enc"
)

// ContextSize is the fixed region size of one directory context (holds
// the serialized binding table).
const ContextSize = 64 * 1024

const dirMagic = 0x4B444952 // "KDIR"

// Errors returned by the directory.
var (
	// ErrNotFound reports an unresolvable name.
	ErrNotFound = errors.New("kdir: name not found")
	// ErrNotContext reports a name used as a context that is a leaf.
	ErrNotContext = errors.New("kdir: not a context")
	// ErrIsContext reports a context where a leaf entry was expected.
	ErrIsContext = errors.New("kdir: is a context")
	// ErrContextFull reports a context whose binding table exceeds its
	// region.
	ErrContextFull = errors.New("kdir: context full")
	// ErrBadRoot reports opening something that is not a directory
	// root.
	ErrBadRoot = errors.New("kdir: bad root context")
)

// Entry is one binding in a context.
type Entry struct {
	Name string
	// Attrs are the entry's attributes (e.g. "type"=user, "mail"=...).
	Attrs map[string]string
	// IsContext marks sub-contexts; Child is their region.
	IsContext bool
	Child     khazana.Addr
}

// Directory is a handle on a directory tree, usable from any node.
type Directory struct {
	node      *khazana.Node
	principal khazana.Principal
	root      khazana.Addr
	attrs     khazana.Attrs
}

// Create makes a new directory tree and returns its root context address.
// attrs selects the default consistency for contexts; zero attrs default
// to the eventual protocol.
func Create(ctx context.Context, node *khazana.Node, principal khazana.Principal, attrs khazana.Attrs) (khazana.Addr, error) {
	d := &Directory{node: node, principal: principal, attrs: normalize(attrs)}
	root, err := d.newContext(ctx)
	if err != nil {
		return khazana.Addr{}, err
	}
	d.root = root
	return root, nil
}

// Open attaches to an existing directory tree by root address.
func Open(ctx context.Context, node *khazana.Node, root khazana.Addr, principal khazana.Principal) (*Directory, error) {
	d := &Directory{node: node, principal: principal, root: root, attrs: normalize(khazana.Attrs{})}
	if _, err := d.readContext(ctx, root); err != nil {
		return nil, err
	}
	return d, nil
}

func normalize(a khazana.Attrs) khazana.Attrs {
	if a.Level == 0 && a.Protocol == 0 {
		a.Level = khazana.Weak // directory default: fast, convergent
	}
	return a.Normalize()
}

// Root returns the root context address.
func (d *Directory) Root() khazana.Addr { return d.root }

// newContext reserves and initializes an empty context region.
func (d *Directory) newContext(ctx context.Context) (khazana.Addr, error) {
	start, err := d.node.Reserve(ctx, ContextSize, d.attrs, d.principal)
	if err != nil {
		return khazana.Addr{}, err
	}
	if err := d.node.Allocate(ctx, start, d.principal); err != nil {
		return khazana.Addr{}, err
	}
	if err := d.writeContext(ctx, start, nil); err != nil {
		return khazana.Addr{}, err
	}
	return start, nil
}

// --- context serialization ---------------------------------------------------

func encodeContext(entries []Entry) ([]byte, error) {
	e := enc.NewEncoder(512)
	e.U32(dirMagic)
	e.U32(uint32(len(entries)))
	for _, ent := range entries {
		e.String(ent.Name)
		e.Bool(ent.IsContext)
		e.Addr(ent.Child)
		e.U16(uint16(len(ent.Attrs)))
		keys := make([]string, 0, len(ent.Attrs))
		for k := range ent.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			e.String(k)
			e.String(ent.Attrs[k])
		}
	}
	if e.Len() > ContextSize {
		return nil, ErrContextFull
	}
	return e.Bytes(), nil
}

func decodeContext(buf []byte) ([]Entry, error) {
	d := enc.NewDecoder(buf)
	if magic := d.U32(); magic != dirMagic {
		return nil, fmt.Errorf("%w: magic %#x", ErrBadRoot, magic)
	}
	count := d.U32()
	if d.Err() != nil {
		return nil, d.Err()
	}
	entries := make([]Entry, 0, count)
	for i := uint32(0); i < count; i++ {
		ent := Entry{Name: d.String()}
		ent.IsContext = d.Bool()
		ent.Child = d.Addr()
		n := int(d.U16())
		if d.Err() != nil {
			return nil, d.Err()
		}
		if n > 0 {
			ent.Attrs = make(map[string]string, n)
			for j := 0; j < n; j++ {
				k := d.String()
				v := d.String()
				if d.Err() != nil {
					return nil, d.Err()
				}
				ent.Attrs[k] = v
			}
		}
		entries = append(entries, ent)
	}
	return entries, nil
}

func (d *Directory) readContext(ctx context.Context, addr khazana.Addr) ([]Entry, error) {
	lk, err := d.node.Lock(ctx, khazana.Range{Start: addr, Size: ContextSize}, khazana.LockRead, d.principal)
	if err != nil {
		return nil, err
	}
	defer lk.Unlock(ctx)
	buf, err := lk.Read(addr, ContextSize)
	if err != nil {
		return nil, err
	}
	return decodeContext(buf)
}

func (d *Directory) writeContext(ctx context.Context, addr khazana.Addr, entries []Entry) error {
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	buf, err := encodeContext(entries)
	if err != nil {
		return err
	}
	lk, err := d.node.Lock(ctx, khazana.Range{Start: addr, Size: ContextSize}, khazana.LockWrite, d.principal)
	if err != nil {
		return err
	}
	defer lk.Unlock(ctx)
	return lk.Write(addr, buf)
}

// mutateContext applies fn to a context's entries under its write lock
// (read-modify-write stays atomic for strict contexts; for eventual
// contexts, concurrent mutations converge last-writer-wins).
func (d *Directory) mutateContext(ctx context.Context, addr khazana.Addr, fn func([]Entry) ([]Entry, error)) error {
	lk, err := d.node.Lock(ctx, khazana.Range{Start: addr, Size: ContextSize}, khazana.LockWrite, d.principal)
	if err != nil {
		return err
	}
	defer lk.Unlock(ctx)
	buf, err := lk.Read(addr, ContextSize)
	if err != nil {
		return err
	}
	entries, err := decodeContext(buf)
	if err != nil {
		return err
	}
	entries, err = fn(entries)
	if err != nil {
		return err
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	out, err := encodeContext(entries)
	if err != nil {
		return err
	}
	return lk.Write(addr, out)
}

// --- name resolution ------------------------------------------------------------

func splitName(name string) ([]string, error) {
	name = strings.Trim(name, "/")
	if name == "" {
		return nil, nil
	}
	parts := strings.Split(name, "/")
	for _, p := range parts {
		if p == "" {
			return nil, fmt.Errorf("kdir: empty name component in %q", name)
		}
	}
	return parts, nil
}

// resolveContext walks to the context holding the final component,
// returning the context address and the leaf name.
func (d *Directory) resolveContext(ctx context.Context, name string) (khazana.Addr, string, error) {
	parts, err := splitName(name)
	if err != nil {
		return khazana.Addr{}, "", err
	}
	if len(parts) == 0 {
		return khazana.Addr{}, "", errors.New("kdir: empty name")
	}
	cur := d.root
	for _, part := range parts[:len(parts)-1] {
		entries, err := d.readContext(ctx, cur)
		if err != nil {
			return khazana.Addr{}, "", err
		}
		ent, ok := find(entries, part)
		if !ok {
			return khazana.Addr{}, "", fmt.Errorf("%w: %s", ErrNotFound, name)
		}
		if !ent.IsContext {
			return khazana.Addr{}, "", fmt.Errorf("%w: %s", ErrNotContext, part)
		}
		cur = ent.Child
	}
	return cur, parts[len(parts)-1], nil
}

func find(entries []Entry, name string) (Entry, bool) {
	for _, e := range entries {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// --- operations ----------------------------------------------------------------

// Bind creates or replaces the attributes bound to name (an upsert, like
// directory-service bind/rebind).
func (d *Directory) Bind(ctx context.Context, name string, attrs map[string]string) error {
	ctxAddr, leaf, err := d.resolveContext(ctx, name)
	if err != nil {
		return err
	}
	return d.mutateContext(ctx, ctxAddr, func(entries []Entry) ([]Entry, error) {
		copied := make(map[string]string, len(attrs))
		for k, v := range attrs {
			copied[k] = v
		}
		for i := range entries {
			if entries[i].Name == leaf {
				if entries[i].IsContext {
					return nil, fmt.Errorf("%w: %s", ErrIsContext, name)
				}
				entries[i].Attrs = copied
				return entries, nil
			}
		}
		return append(entries, Entry{Name: leaf, Attrs: copied}), nil
	})
}

// Resolve returns the attributes bound to name.
func (d *Directory) Resolve(ctx context.Context, name string) (map[string]string, error) {
	ctxAddr, leaf, err := d.resolveContext(ctx, name)
	if err != nil {
		return nil, err
	}
	entries, err := d.readContext(ctx, ctxAddr)
	if err != nil {
		return nil, err
	}
	ent, ok := find(entries, leaf)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if ent.IsContext {
		return nil, fmt.Errorf("%w: %s", ErrIsContext, name)
	}
	out := make(map[string]string, len(ent.Attrs))
	for k, v := range ent.Attrs {
		out[k] = v
	}
	return out, nil
}

// MkContext creates a sub-context (like mkdir for names).
func (d *Directory) MkContext(ctx context.Context, name string) error {
	ctxAddr, leaf, err := d.resolveContext(ctx, name)
	if err != nil {
		return err
	}
	child, err := d.newContext(ctx)
	if err != nil {
		return err
	}
	return d.mutateContext(ctx, ctxAddr, func(entries []Entry) ([]Entry, error) {
		if _, exists := find(entries, leaf); exists {
			return nil, fmt.Errorf("kdir: %s already bound", name)
		}
		return append(entries, Entry{Name: leaf, IsContext: true, Child: child}), nil
	})
}

// List returns the entries of the context named by name ("" or "/" lists
// the root).
func (d *Directory) List(ctx context.Context, name string) ([]Entry, error) {
	addr := d.root
	parts, err := splitName(name)
	if err != nil {
		return nil, err
	}
	if len(parts) > 0 {
		ctxAddr, leaf, err := d.resolveContext(ctx, name)
		if err != nil {
			return nil, err
		}
		entries, err := d.readContext(ctx, ctxAddr)
		if err != nil {
			return nil, err
		}
		ent, ok := find(entries, leaf)
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
		}
		if !ent.IsContext {
			return nil, fmt.Errorf("%w: %s", ErrNotContext, name)
		}
		addr = ent.Child
	}
	return d.readContext(ctx, addr)
}

// Unbind removes a leaf binding or an empty sub-context, unreserving the
// sub-context's region.
func (d *Directory) Unbind(ctx context.Context, name string) error {
	ctxAddr, leaf, err := d.resolveContext(ctx, name)
	if err != nil {
		return err
	}
	var childToFree khazana.Addr
	err = d.mutateContext(ctx, ctxAddr, func(entries []Entry) ([]Entry, error) {
		for i := range entries {
			if entries[i].Name != leaf {
				continue
			}
			if entries[i].IsContext {
				sub, err := d.readContext(ctx, entries[i].Child)
				if err != nil {
					return nil, err
				}
				if len(sub) > 0 {
					return nil, fmt.Errorf("kdir: context %s not empty", name)
				}
				childToFree = entries[i].Child
			}
			return append(entries[:i], entries[i+1:]...), nil
		}
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	})
	if err != nil {
		return err
	}
	if !childToFree.IsZero() {
		return d.node.Unreserve(ctx, childToFree, d.principal)
	}
	return nil
}

// Search returns the names in context name whose attribute key equals
// value (a minimal directory query).
func (d *Directory) Search(ctx context.Context, name, key, value string) ([]string, error) {
	entries, err := d.List(ctx, name)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if !e.IsContext && e.Attrs[key] == value {
			out = append(out, e.Name)
		}
	}
	return out, nil
}
