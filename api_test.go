package khazana

import (
	"context"
	"testing"
	"time"
)

func TestPublicHelpers(t *testing.T) {
	if OpenACL().Check("anyone", PermAll) != nil {
		t.Error("OpenACL should grant everything")
	}
	if PrivateACL("a").Check("b", PermRead) == nil {
		t.Error("PrivateACL should deny strangers")
	}
	if DefaultPageSize != 4096 {
		t.Errorf("DefaultPageSize = %d", DefaultPageSize)
	}
	if _, err := ParseAddr("not an addr"); err == nil {
		t.Error("ParseAddr should reject garbage")
	}
	if ClientID(1) == ClientID(2) {
		t.Error("ClientID must be distinct per index")
	}
}

func TestClusterOptionSurface(t *testing.T) {
	c, err := NewCluster(2,
		WithStoreDir(t.TempDir()),
		WithMemPages(64),
		WithDiskPages(256),
		WithLatency(0),
		WithAutoMigration(time.Hour), // enabled but never fires in-test
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Len() != 2 || len(c.Nodes()) != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	ctx := context.Background()
	start, err := c.Node(1).Reserve(ctx, 4096, Attrs{}, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Node(1).Allocate(ctx, start, ""); err != nil {
		t.Fatal(err)
	}
	// Partition/Heal helpers. Descriptor announces are asynchronous and
	// may have made node 2 a ring owner that can answer the lookup from
	// its own partition table; settle and drop that copy so the lookup
	// must cross the (cut) link.
	c.Node(1).Core().RingSettle()
	c.Partition(1, 2)
	c.Node(2).Core().RingTable().Remove(start)
	shortCtx, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
	if _, err := c.Node(2).GetAttr(shortCtx, start); err == nil {
		t.Fatal("partitioned GetAttr should fail")
	}
	cancel()
	c.Heal(1, 2)
	if _, err := c.Node(2).GetAttr(ctx, start); err != nil {
		t.Fatal(err)
	}
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(0); err == nil {
		t.Fatal("zero-node cluster should fail")
	}
}

func TestStartNodeValidation(t *testing.T) {
	if _, err := StartNode(context.Background(), NodeConfig{ID: 1}); err == nil {
		t.Fatal("node without transport or listen addr should fail")
	}
}

func TestPublicMigrateRegion(t *testing.T) {
	c := newTestCluster(t, 2)
	ctx := context.Background()
	start, err := c.Node(1).Reserve(ctx, 4096, Attrs{}, "op")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Node(1).Allocate(ctx, start, "op"); err != nil {
		t.Fatal(err)
	}
	lk, err := c.Node(1).Lock(ctx, Range{Start: start, Size: 4096}, LockWrite, "op")
	if err != nil {
		t.Fatal(err)
	}
	_ = lk.Write(start, []byte("moving"))
	_ = lk.Unlock(ctx)

	if err := c.Node(2).MigrateRegion(ctx, start, 2, "op"); err != nil {
		t.Fatal(err)
	}
	d, err := c.Node(2).GetAttr(ctx, start)
	if err != nil {
		t.Fatal(err)
	}
	if home, _ := d.PrimaryHome(); home != 2 {
		t.Fatalf("home after public migrate = %v", home)
	}
}

func TestClientStatsAndMigrateInproc(t *testing.T) {
	c := newTestCluster(t, 2)
	ctx := context.Background()
	tr, err := c.Network.Attach(ClientID(3))
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(tr, 1, "op")
	start, err := cli.Reserve(ctx, 4096, Attrs{})
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Allocate(ctx, start); err != nil {
		t.Fatal(err)
	}
	st, err := cli.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Node != 1 || st.HomedRegions == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if err := cli.Migrate(ctx, start, 2); err != nil {
		t.Fatal(err)
	}
	d, err := cli.GetAttr(ctx, start)
	if err != nil {
		t.Fatal(err)
	}
	if home, _ := d.PrimaryHome(); home != 2 {
		t.Fatalf("home after client migrate = %v", home)
	}
}
