module khazana

go 1.22
