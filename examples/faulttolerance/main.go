// Faulttolerance: minimum replica counts, background release retries, and
// home failover (§3.5).
//
// A region created with MinReplicas=2 gets a secondary home via replica
// maintenance. When the primary home crashes, clients transparently
// promote the secondary and keep working; when a release cannot reach the
// home, it is queued and retried in the background rather than surfacing
// an error.
//
//	go run ./examples/faulttolerance
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"khazana"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	cluster, err := khazana.NewCluster(4,
		khazana.WithBackground(25*time.Millisecond, 25*time.Millisecond, 25*time.Millisecond))
	if err != nil {
		return err
	}
	defer cluster.Close()
	fmt.Println("4-node cluster with background maintenance loops")

	// Region homed on node 2, requiring two replicas for availability.
	n2 := cluster.Node(2)
	start, err := n2.Reserve(ctx, 4096, khazana.Attrs{MinReplicas: 2}, "ops")
	if err != nil {
		return err
	}
	if err := n2.Allocate(ctx, start, "ops"); err != nil {
		return err
	}
	lk, err := n2.Lock(ctx, khazana.Range{Start: start, Size: 4096}, khazana.LockWrite, "ops")
	if err != nil {
		return err
	}
	if err := lk.Write(start, []byte("precious state")); err != nil {
		return err
	}
	if err := lk.Unlock(ctx); err != nil {
		return err
	}
	fmt.Printf("region %v written on node 2 (MinReplicas=2)\n", start)

	// Wait for replica maintenance to recruit a secondary home.
	var desc *khazana.Descriptor
	for deadline := time.Now().Add(5 * time.Second); ; {
		desc, err = n2.GetAttr(ctx, start)
		if err != nil {
			return err
		}
		if len(desc.Home) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replica maintenance never recruited a secondary: %v", desc.Home)
		}
		time.Sleep(25 * time.Millisecond)
	}
	fmt.Printf("replica maintenance recruited homes %v\n", desc.Home)

	// Crash the primary home.
	cluster.Crash(2)
	fmt.Println("crashed node 2 (the primary home)")

	// A client on node 4 still reads the data: it promotes the
	// secondary home and fetches the replica.
	n4 := cluster.Node(4)
	rl, err := n4.Lock(ctx, khazana.Range{Start: start, Size: 4096}, khazana.LockRead, "ops")
	if err != nil {
		return fmt.Errorf("failover read failed: %w", err)
	}
	data, err := rl.Read(start, 14)
	if err != nil {
		return err
	}
	if err := rl.Unlock(ctx); err != nil {
		return err
	}
	fmt.Printf("node 4 read %q after failover (promotions: n4=%d)\n",
		data, n4.Core().Statistics().Promotions.Load())

	// Background release retry: write somewhere whose home goes down
	// mid-operation. The unlock succeeds immediately; the push is
	// queued and retried until the home returns (§3.5).
	n3 := cluster.Node(3)
	start2, err := n3.Reserve(ctx, 4096, khazana.Attrs{}, "ops")
	if err != nil {
		return err
	}
	if err := n3.Allocate(ctx, start2, "ops"); err != nil {
		return err
	}
	wl, err := n4.Lock(ctx, khazana.Range{Start: start2, Size: 4096}, khazana.LockWrite, "ops")
	if err != nil {
		return err
	}
	if err := wl.Write(start2, []byte("deferred")); err != nil {
		return err
	}
	cluster.Crash(3)
	if err := wl.Unlock(ctx); err != nil {
		return err
	}
	fmt.Printf("node 3 crashed before release: unlock still succeeded, %d release(s) queued\n",
		n4.Core().PendingRetries())
	cluster.Restart(3)
	for deadline := time.Now().Add(5 * time.Second); n4.Core().PendingRetries() > 0; {
		if time.Now().After(deadline) {
			return fmt.Errorf("retry queue never drained")
		}
		time.Sleep(25 * time.Millisecond)
	}
	fmt.Println("node 3 restarted: background retry delivered the dirty page")
	return nil
}
