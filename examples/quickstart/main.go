// Quickstart: a three-node Khazana deployment sharing one region of
// global memory.
//
// This walks the paper's basic operation set (§2): reserve a region of the
// 128-bit global address space, allocate storage for it, then lock, write,
// read, and unlock from different nodes — with Khazana handling location,
// caching, and consistency underneath.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"khazana"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()

	// Start three cooperating daemons on an in-process network. Node 1
	// is the cluster manager and hosts the root of the address map.
	cluster, err := khazana.NewCluster(3)
	if err != nil {
		return err
	}
	defer cluster.Close()
	fmt.Println("started a 3-node Khazana cluster")

	// Node 2 reserves and allocates an 8 KiB region. The returned
	// 128-bit address is the region's globally valid identity.
	n2 := cluster.Node(2)
	start, err := n2.Reserve(ctx, 8192, khazana.Attrs{}, "alice")
	if err != nil {
		return err
	}
	if err := n2.Allocate(ctx, start, "alice"); err != nil {
		return err
	}
	fmt.Printf("node 2 reserved region %v (8 KiB)\n", start)

	// Write under a write lock. The lock context is the capability for
	// subsequent reads and writes (§2).
	lk, err := n2.Lock(ctx, khazana.Range{Start: start, Size: 8192}, khazana.LockWrite, "alice")
	if err != nil {
		return err
	}
	if err := lk.Write(start, []byte("state shared through global memory")); err != nil {
		return err
	}
	if err := lk.Unlock(ctx); err != nil {
		return err
	}
	fmt.Println("node 2 wrote under a write lock")

	// Any node can read the data by address alone — it locates the
	// region via its region directory, the cluster manager, or the
	// address map tree (§3.2), and fetches a copy.
	for _, i := range []int{1, 3} {
		n := cluster.Node(i)
		rl, err := n.Lock(ctx, khazana.Range{Start: start, Size: 8192}, khazana.LockRead, "bob")
		if err != nil {
			return err
		}
		data, err := rl.Read(start, 34)
		if err != nil {
			return err
		}
		if err := rl.Unlock(ctx); err != nil {
			return err
		}
		fmt.Printf("node %d read: %q\n", i, data)
	}

	// Inspect the region's attributes.
	d, err := cluster.Node(3).GetAttr(ctx, start)
	if err != nil {
		return err
	}
	fmt.Printf("region attrs: pagesize=%d protocol=%v minreplicas=%d home=%v\n",
		d.Attrs.PageSize, d.Attrs.Protocol, d.Attrs.MinReplicas, d.Home)

	// Every daemon carries a metrics registry; the snapshot shows what
	// the workload above actually cost (khazanad exports the same data
	// on its -debug-addr HTTP listener and via `khazctl stats`).
	fmt.Println("node 2 telemetry:")
	for _, c := range n2.Core().MetricsSnapshot().Counters {
		fmt.Printf("  %-28s %d\n", c.Name, c.Value)
	}
	return nil
}
