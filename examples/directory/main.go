// Directory: a distributed directory service on Khazana — the use case
// the paper's introduction motivates with Novell NDS and Microsoft Active
// Directory.
//
// The namespace lives in global memory; a directory opened on any node
// resolves names against locally cached, weakly consistent replicas
// ("fast response", §3.3), while updates converge through the contexts'
// home nodes.
//
//	go run ./examples/directory
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"khazana"
	"khazana/kdir"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	cluster, err := khazana.NewCluster(3)
	if err != nil {
		return err
	}
	defer cluster.Close()

	root, err := kdir.Create(ctx, cluster.Node(1), "diradmin", khazana.Attrs{})
	if err != nil {
		return err
	}
	d1, err := kdir.Open(ctx, cluster.Node(1), root, "diradmin")
	if err != nil {
		return err
	}
	fmt.Printf("directory created, root context at %v\n", root)

	// Populate an organizational tree from node 1.
	if err := d1.MkContext(ctx, "/people"); err != nil {
		return err
	}
	if err := d1.MkContext(ctx, "/services"); err != nil {
		return err
	}
	people := map[string]map[string]string{
		"alice": {"dept": "eng", "mail": "alice@example.com"},
		"bob":   {"dept": "sales", "mail": "bob@example.com"},
		"carol": {"dept": "eng", "mail": "carol@example.com"},
	}
	for who, attrs := range people {
		if err := d1.Bind(ctx, "/people/"+who, attrs); err != nil {
			return err
		}
	}
	if err := d1.Bind(ctx, "/services/ldap", map[string]string{"host": "n1", "port": "389"}); err != nil {
		return err
	}
	fmt.Println("node 1 bound 3 people and 1 service")

	// Node 3 opens the same tree by root address and queries it.
	d3, err := kdir.Open(ctx, cluster.Node(3), root, "diradmin")
	if err != nil {
		return err
	}
	attrs, err := d3.Resolve(ctx, "/people/alice")
	if err != nil {
		return err
	}
	fmt.Printf("node 3 resolves /people/alice -> %v\n", attrs)

	eng, err := d3.Search(ctx, "/people", "dept", "eng")
	if err != nil {
		return err
	}
	sort.Strings(eng)
	fmt.Printf("node 3 searches dept=eng -> %v\n", eng)

	// An update from node 3 converges back to node 1.
	if err := d3.Bind(ctx, "/services/ldap", map[string]string{"host": "n3", "port": "636"}); err != nil {
		return err
	}
	svc, err := d1.Resolve(ctx, "/services/ldap")
	if err != nil {
		return err
	}
	fmt.Printf("node 1 sees the ldap service moved -> %v\n", svc)

	entries, err := d3.List(ctx, "/")
	if err != nil {
		return err
	}
	fmt.Println("node 3 lists the root:")
	for _, e := range entries {
		kind := "entry"
		if e.IsContext {
			kind = "context"
		}
		fmt.Printf("  %-10s %s\n", e.Name, kind)
	}
	return nil
}
