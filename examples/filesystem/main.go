// Filesystem: the paper's wide-area distributed file system (§4.1) shared
// between mounts on different nodes.
//
// One node creates the file system (superblock + root inode); other nodes
// mount it knowing only the superblock's Khazana address. Files created on
// one mount appear on all; Khazana handles consistency, replication, and
// location of every inode and block region.
//
//	go run ./examples/filesystem
package main

import (
	"context"
	"fmt"
	"log"

	"khazana"
	"khazana/kfs"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	cluster, err := khazana.NewCluster(3)
	if err != nil {
		return err
	}
	defer cluster.Close()

	// mkfs on node 1. The superblock address is all a mount needs.
	super, err := kfs.Mkfs(ctx, cluster.Node(1), "fsadmin", khazana.Attrs{})
	if err != nil {
		return err
	}
	fmt.Printf("created filesystem, superblock at %v\n", super)

	fs1, err := kfs.Mount(ctx, cluster.Node(1), super, "fsadmin")
	if err != nil {
		return err
	}
	fs3, err := kfs.Mount(ctx, cluster.Node(3), super, "fsadmin")
	if err != nil {
		return err
	}
	fmt.Println("mounted on node 1 and node 3")

	// Build a tree on node 1.
	if err := fs1.Mkdir(ctx, "/projects"); err != nil {
		return err
	}
	f, err := fs1.Create(ctx, "/projects/notes.txt")
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(ctx, []byte("written via the node 1 mount\n"), 0); err != nil {
		return err
	}
	// A replicated, eventually consistent log file: per-file attributes
	// chosen at creation time (§4.1).
	logf, err := fs1.Create(ctx, "/projects/app.log",
		khazana.Attrs{MinReplicas: 2, Level: khazana.Weak})
	if err != nil {
		return err
	}
	for i := 0; i < 3; i++ {
		if _, err := logf.Append(ctx, []byte(fmt.Sprintf("log line %d\n", i))); err != nil {
			return err
		}
	}
	fmt.Println("node 1 wrote /projects/notes.txt and /projects/app.log")

	// Read everything through the node 3 mount.
	entries, err := fs3.ReadDir(ctx, "/projects")
	if err != nil {
		return err
	}
	fmt.Println("node 3 lists /projects:")
	for _, e := range entries {
		info, err := fs3.Stat(ctx, "/projects/"+e.Name)
		if err != nil {
			return err
		}
		fmt.Printf("  %-12s %4d bytes  inode %v\n", e.Name, info.Size, e.Inode)
	}
	g, err := fs3.Open(ctx, "/projects/notes.txt")
	if err != nil {
		return err
	}
	content, err := g.ReadAll(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("node 3 reads notes.txt: %q\n", content)

	// Writes flow back the other way.
	if _, err := g.Append(ctx, []byte("appended via the node 3 mount\n")); err != nil {
		return err
	}
	back, err := f.ReadAll(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("node 1 rereads notes.txt:\n%s", back)
	return nil
}
