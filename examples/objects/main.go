// Objects: the paper's distributed object runtime (§4.2) running a tiny
// bank on Khazana.
//
// Object state lives in global memory; every node runs an object runtime
// with the bank's method table registered (standing in for downloadable
// code). Invocations either execute against a local replica — with the
// runtime transparently locking and unlocking the object's region — or
// are shipped to a node where the object is already instantiated,
// depending on the runtime's policy.
//
//	go run ./examples/objects
package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"log"

	"khazana"
	"khazana/kobj"
)

// accountType defines a bank account object: 8-byte balance state.
func accountType() kobj.Type {
	return kobj.Type{
		Name: "account",
		Methods: map[string]kobj.MethodSpec{
			"balance": {
				ReadOnly: true,
				Fn: func(state, _ []byte) ([]byte, []byte, error) {
					return state, append([]byte(nil), state...), nil
				},
			},
			"deposit": {
				Fn: func(state, args []byte) ([]byte, []byte, error) {
					v := binary.LittleEndian.Uint64(state) + binary.LittleEndian.Uint64(args)
					out := make([]byte, 8)
					binary.LittleEndian.PutUint64(out, v)
					return out, append([]byte(nil), out...), nil
				},
			},
			"withdraw": {
				Fn: func(state, args []byte) ([]byte, []byte, error) {
					bal := binary.LittleEndian.Uint64(state)
					amt := binary.LittleEndian.Uint64(args)
					if amt > bal {
						return nil, nil, fmt.Errorf("insufficient funds: %d < %d", bal, amt)
					}
					out := make([]byte, 8)
					binary.LittleEndian.PutUint64(out, bal-amt)
					return out, append([]byte(nil), out...), nil
				},
			},
		},
	}
}

func u64(v uint64) []byte {
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out, v)
	return out
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	cluster, err := khazana.NewCluster(3)
	if err != nil {
		return err
	}
	defer cluster.Close()

	// One runtime per node, all sharing the account method table.
	runtimes := make([]*kobj.Runtime, 3)
	for i := 0; i < 3; i++ {
		runtimes[i] = kobj.NewRuntime(cluster.Node(i+1), "bank")
		runtimes[i].RegisterType(accountType())
	}
	fmt.Println("3 object runtimes up, type 'account' registered everywhere")

	// Create an account on node 1 with an opening balance.
	acct, err := runtimes[0].New(ctx, "account", u64(1000), 0)
	if err != nil {
		return err
	}
	fmt.Printf("account object created at %v with balance 1000\n", acct)

	// Node 2 deposits (cold object: the auto policy ships the call to
	// the node where the object lives).
	res, err := runtimes[1].Invoke(ctx, acct, "deposit", u64(250))
	if err != nil {
		return err
	}
	fmt.Printf("node 2 deposit(250) -> balance %d (%+v)\n",
		binary.LittleEndian.Uint64(res), runtimes[1].Stats())

	// Node 3 reads the balance repeatedly; after a few calls the auto
	// policy replicates the object locally instead of paying RPC.
	for i := 0; i < 5; i++ {
		if res, err = runtimes[2].Invoke(ctx, acct, "balance", nil); err != nil {
			return err
		}
	}
	fmt.Printf("node 3 balance() x5 -> %d (%+v: crossover from RPC to local replica)\n",
		binary.LittleEndian.Uint64(res), runtimes[2].Stats())

	// Withdrawals from two nodes serialize through the object's CREW
	// region lock; no update is lost.
	if _, err := runtimes[1].Invoke(ctx, acct, "withdraw", u64(200)); err != nil {
		return err
	}
	if _, err := runtimes[2].Invoke(ctx, acct, "withdraw", u64(300)); err != nil {
		return err
	}
	res, err = runtimes[0].Invoke(ctx, acct, "balance", nil)
	if err != nil {
		return err
	}
	fmt.Printf("after withdraw(200)+withdraw(300): balance %d (want 750)\n",
		binary.LittleEndian.Uint64(res))

	// Business errors propagate across the RPC boundary too.
	if _, err := runtimes[1].Invoke(ctx, acct, "withdraw", u64(10_000)); err != nil {
		fmt.Printf("overdraft correctly rejected: %v\n", err)
	}
	return nil
}
