package khazana_test

import (
	"context"
	"testing"

	"khazana"
)

// TestCachedReadAllocGate is the allocation regression gate for the
// zero-copy frame pipeline: a cached full-page read through the view path
// must not allocate page data — the returned slice aliases the pooled
// frame pinned in the lock context. The budget of 1 alloc/op absorbs
// bookkeeping amortization (the view pin list growing); a regression that
// reintroduces a per-read page copy jumps to 2+ and fails.
func TestCachedReadAllocGate(t *testing.T) {
	c, err := khazana.NewCluster(1, khazana.WithStoreDir(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	const ps = 4096
	n := c.Node(1)
	start, err := n.Reserve(ctx, ps, khazana.Attrs{}, "bench")
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Allocate(ctx, start, "bench"); err != nil {
		t.Fatal(err)
	}
	lk, err := n.Lock(ctx, khazana.Range{Start: start, Size: ps}, khazana.LockWrite, "bench")
	if err != nil {
		t.Fatal(err)
	}
	if err := lk.Write(start, make([]byte, ps)); err != nil {
		t.Fatal(err)
	}
	if err := lk.Unlock(ctx); err != nil {
		t.Fatal(err)
	}

	rlk, err := n.Lock(ctx, khazana.Range{Start: start, Size: ps}, khazana.LockRead, "bench")
	if err != nil {
		t.Fatal(err)
	}
	defer rlk.Unlock(ctx)
	avg := testing.AllocsPerRun(500, func() {
		view, err := rlk.ReadView(start, ps)
		if err != nil {
			t.Fatal(err)
		}
		if len(view) != ps {
			t.Fatalf("view length %d", len(view))
		}
	})
	if avg > 1 {
		t.Fatalf("cached zero-copy read allocates %.2f objects/op, budget is 1", avg)
	}
}

// TestSnapshotViewAllocGate is the allocation gate for the snapshot read
// path: once the first View has pinned the page, every subsequent cached
// view is served straight off the pinned frame — zero allocations, no
// lookup, no RPC. Unlike the lock-context gate above there is no pin-list
// amortization, so the budget is exactly 0.
func TestSnapshotViewAllocGate(t *testing.T) {
	c, err := khazana.NewCluster(1, khazana.WithStoreDir(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	const ps = 4096
	n := c.Node(1)
	start, err := n.Reserve(ctx, ps, khazana.Attrs{}, "bench")
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Allocate(ctx, start, "bench"); err != nil {
		t.Fatal(err)
	}
	lk, err := n.Lock(ctx, khazana.Range{Start: start, Size: ps}, khazana.LockWrite, "bench")
	if err != nil {
		t.Fatal(err)
	}
	if err := lk.Write(start, make([]byte, ps)); err != nil {
		t.Fatal(err)
	}
	if err := lk.Unlock(ctx); err != nil {
		t.Fatal(err)
	}

	snap := n.Snapshot("bench")
	defer snap.Close()
	if _, err := snap.View(ctx, start, ps); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(500, func() {
		view, err := snap.View(ctx, start, ps)
		if err != nil {
			t.Fatal(err)
		}
		if len(view) != ps {
			t.Fatalf("view length %d", len(view))
		}
	})
	if avg > 0 {
		t.Fatalf("cached snapshot view allocates %.2f objects/op, budget is 0", avg)
	}
}
