package khazana

import (
	"context"
	"path/filepath"
	"testing"

	"khazana/internal/telemetry"
	"khazana/internal/transport"
)

// TestTCPTracePropagation proves the tentpole's causal-tracing claim over
// the real wire: a lock acquired on node 2 against a region homed on node
// 1 yields ONE trace whose spans land in both nodes' recorders, with the
// remote handler span parented under the originating op span.
func TestTCPTracePropagation(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	n1, err := StartNode(ctx, NodeConfig{
		ID:         1,
		ListenAddr: "127.0.0.1:0",
		StoreDir:   filepath.Join(dir, "n1"),
		Genesis:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()

	tr2, err := transport.NewTCP(2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tr2.AddPeer(1, n1.Addr())
	n2, err := StartNode(ctx, NodeConfig{
		ID:             2,
		Transport:      tr2,
		StoreDir:       filepath.Join(dir, "n2"),
		ClusterManager: 1,
		MapHome:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	n1.AddPeer(2, tr2.Addr())

	// The region homes on node 1; node 2's lock must cross the wire.
	start, err := n1.Reserve(ctx, 4096, Attrs{}, "trace")
	if err != nil {
		t.Fatal(err)
	}
	if err := n1.Allocate(ctx, start, "trace"); err != nil {
		t.Fatal(err)
	}
	lk, err := n2.Lock(ctx, Range{Start: start, Size: 4096}, LockWrite, "trace")
	if err != nil {
		t.Fatal(err)
	}
	if err := lk.Write(start, []byte("traced")); err != nil {
		t.Fatal(err)
	}
	if err := lk.Unlock(ctx); err != nil {
		t.Fatal(err)
	}

	// Node 2 recorded the op spans; find the lock op's trace.
	var opSpan telemetry.SpanRecord
	for _, s := range n2.Core().TraceSpans() {
		if s.Name == "op.lock" {
			opSpan = s
		}
	}
	if opSpan.Trace == 0 {
		t.Fatalf("node 2 recorded no op.lock span: %+v", n2.Core().TraceSpans())
	}
	if opSpan.Node != 2 {
		t.Fatalf("op.lock span attributed to node %d, want 2", opSpan.Node)
	}

	// Node 1 must hold handler spans of the SAME trace, attributed to
	// node 1, parented (directly or transitively) under node 2's spans.
	var remote []telemetry.SpanRecord
	for _, s := range n1.Core().TraceSpans() {
		if s.Trace == opSpan.Trace {
			remote = append(remote, s)
		}
	}
	if len(remote) == 0 {
		t.Fatalf("node 1 recorded no spans for trace %v: %+v", opSpan.Trace, n1.Core().TraceSpans())
	}
	for _, s := range remote {
		if s.Node != 1 {
			t.Errorf("remote span %q attributed to node %d, want 1", s.Name, s.Node)
		}
		if s.Parent == 0 {
			t.Errorf("remote span %q has no parent; handler spans must be children", s.Name)
		}
	}

	// Unlock crossed the wire under its own op span of a different trace.
	var unlockTrace telemetry.TraceID
	for _, s := range n2.Core().TraceSpans() {
		if s.Name == "op.unlock" {
			unlockTrace = s.Trace
		}
	}
	if unlockTrace == 0 {
		t.Fatal("node 2 recorded no op.unlock span")
	}
	if unlockTrace == opSpan.Trace {
		t.Fatal("lock and unlock ops should root distinct traces")
	}
}

// TestClientMetricsTracesPing exercises the khazctl-facing surface: the
// StatsQuery/StatsReply wire kinds behind Client.Metrics and
// Client.Traces, and the timestamped ping RTT measurement.
func TestClientMetricsTracesPing(t *testing.T) {
	c := newTestCluster(t, 2)
	ctx := context.Background()
	n1 := c.Node(1)

	start, err := n1.Reserve(ctx, 8192, Attrs{}, "obs")
	if err != nil {
		t.Fatal(err)
	}
	if err := n1.Allocate(ctx, start, "obs"); err != nil {
		t.Fatal(err)
	}
	lk, err := c.Node(2).Lock(ctx, Range{Start: start, Size: 8192}, LockWrite, "obs")
	if err != nil {
		t.Fatal(err)
	}
	if err := lk.Write(start, []byte("observed")); err != nil {
		t.Fatal(err)
	}
	if err := lk.Unlock(ctx); err != nil {
		t.Fatal(err)
	}

	tr, err := c.Network.Attach(ClientID(1))
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(tr, 2, "obs")

	m, err := cli.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Node != 2 {
		t.Fatalf("metrics from node %v, want 2", m.Node)
	}
	counters := make(map[string]int64)
	for _, cv := range m.Counters {
		counters[cv.Name] = cv.Value
	}
	if counters[telemetry.MetricLocksGranted] < 1 {
		t.Fatalf("locks_granted = %d, want >= 1 (counters %v)", counters[telemetry.MetricLocksGranted], counters)
	}
	if counters[telemetry.MetricLookups] < 1 {
		t.Fatalf("lookups = %d, want >= 1", counters[telemetry.MetricLookups])
	}
	hists := make(map[string]HistogramValue)
	for _, h := range m.Histograms {
		hists[h.Name] = h
	}
	if h := hists[telemetry.MetricLockLatency]; h.Count < 1 {
		t.Fatalf("lock latency histogram empty: %+v", m.Histograms)
	}
	if h := hists[telemetry.MetricLockBatchPages]; h.Count < 1 || h.Sum < 2 {
		t.Fatalf("batch pages histogram count=%d sum=%d, want a 2-page batch", h.Count, h.Sum)
	}

	spans, err := cli.Traces(ctx)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range spans {
		if s.Name == "op.lock" && s.Node == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("daemon traces missing op.lock span: %+v", spans)
	}

	rtt, err := cli.Ping(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rtt <= 0 {
		t.Fatalf("ping RTT = %v, want > 0", rtt)
	}
}

// TestNoTelemetryDisablesRecording proves the Nop configuration: no
// registry, no spans, and Statistics keeps working on nil counters.
func TestNoTelemetryDisablesRecording(t *testing.T) {
	c := newTestCluster(t, 2, WithNoTelemetry())
	ctx := context.Background()
	n1 := c.Node(1)

	start, err := n1.Reserve(ctx, 4096, Attrs{}, "quiet")
	if err != nil {
		t.Fatal(err)
	}
	if err := n1.Allocate(ctx, start, "quiet"); err != nil {
		t.Fatal(err)
	}
	lk, err := c.Node(2).Lock(ctx, Range{Start: start, Size: 4096}, LockWrite, "quiet")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lk.ReadView(start, 4); err != nil {
		t.Fatal(err)
	}
	if err := lk.Unlock(ctx); err != nil {
		t.Fatal(err)
	}

	if got := c.Node(2).Core().TraceSpans(); len(got) != 0 {
		t.Fatalf("NoTelemetry node recorded %d spans: %+v", len(got), got)
	}
	snap := c.Node(2).Core().MetricsSnapshot()
	if len(snap.Counters) != 0 || len(snap.Histograms) != 0 {
		t.Fatalf("NoTelemetry node produced a snapshot: %+v", snap)
	}
}
