package addrmap

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
)

// memIO is an in-memory PageIO for unit tests.
type memIO struct {
	mu    sync.Mutex
	pages map[gaddr.Addr][]byte
	reads int
}

func newMemIO() *memIO { return &memIO{pages: make(map[gaddr.Addr][]byte)} }

func (io *memIO) ReadPage(_ context.Context, page gaddr.Addr) ([]byte, error) {
	io.mu.Lock()
	defer io.mu.Unlock()
	io.reads++
	data, ok := io.pages[page]
	if !ok {
		return make([]byte, PageSize), nil
	}
	return append([]byte(nil), data...), nil
}

func (io *memIO) MutatePage(_ context.Context, page gaddr.Addr, fn func([]byte) error) error {
	io.mu.Lock()
	defer io.mu.Unlock()
	data, ok := io.pages[page]
	if !ok {
		data = make([]byte, PageSize)
	}
	if err := fn(data); err != nil {
		return err
	}
	io.pages[page] = data
	return nil
}

func newTestMap(t *testing.T) (*Map, *memIO) {
	t.Helper()
	io := newMemIO()
	m := New(io)
	if err := m.Init(context.Background(), []ktypes.NodeID{1}); err != nil {
		t.Fatal(err)
	}
	return m, io
}

func TestInitIdempotent(t *testing.T) {
	m, _ := newTestMap(t)
	ctx := context.Background()
	if err := m.Init(ctx, []ktypes.NodeID{2}); err != nil {
		t.Fatal(err)
	}
	// Address 0 must resolve to the map's own region homed on node 1
	// (the first Init wins).
	entry, steps, err := m.Lookup(ctx, gaddr.Zero)
	if err != nil {
		t.Fatal(err)
	}
	if steps != 1 {
		t.Fatalf("root lookup took %d steps", steps)
	}
	if entry.Range.Start != gaddr.Zero || entry.Range.Size != RegionSize {
		t.Fatalf("map self-entry = %v", entry.Range)
	}
	if len(entry.Homes) != 1 || entry.Homes[0] != 1 {
		t.Fatalf("map homes = %v", entry.Homes)
	}
}

func TestReserveRangeMonotonicCursor(t *testing.T) {
	m, _ := newTestMap(t)
	ctx := context.Background()
	r1, err := m.ReserveRange(ctx, 1<<20, PageSize)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := m.ReserveRange(ctx, 1<<20, PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Overlaps(r2) {
		t.Fatalf("chunks overlap: %v %v", r1, r2)
	}
	if !gaddr.FromUint64(RegionSize).Less(r1.Start) && r1.Start != gaddr.FromUint64(RegionSize) {
		t.Fatalf("first chunk %v inside map region", r1)
	}
	if r2.Start.Less(r1.Start) {
		t.Fatal("cursor went backwards")
	}
}

func TestInsertLookupRemove(t *testing.T) {
	m, _ := newTestMap(t)
	ctx := context.Background()
	chunk, _ := m.ReserveRange(ctx, 1<<20, PageSize)
	r := gaddr.Range{Start: chunk.Start, Size: 0x4000}
	if err := m.Insert(ctx, Entry{Range: r, Homes: []ktypes.NodeID{3, 4}}); err != nil {
		t.Fatal(err)
	}
	mid := r.Start.MustAdd(0x2000)
	entry, _, err := m.Lookup(ctx, mid)
	if err != nil {
		t.Fatal(err)
	}
	if entry.Range != r || len(entry.Homes) != 2 || entry.Homes[0] != 3 {
		t.Fatalf("lookup = %+v", entry)
	}
	// Address past the region misses.
	past := r.Start.MustAdd(r.Size)
	if _, _, err := m.Lookup(ctx, past); !errors.Is(err, ErrNotFound) {
		t.Fatalf("lookup past region: %v", err)
	}
	if err := m.Remove(ctx, r.Start); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Lookup(ctx, mid); !errors.Is(err, ErrNotFound) {
		t.Fatalf("lookup after remove: %v", err)
	}
	if err := m.Remove(ctx, r.Start); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double remove: %v", err)
	}
}

func TestInsertOverlapRejected(t *testing.T) {
	m, _ := newTestMap(t)
	ctx := context.Background()
	chunk, _ := m.ReserveRange(ctx, 1<<20, PageSize)
	r := gaddr.Range{Start: chunk.Start, Size: 0x4000}
	if err := m.Insert(ctx, Entry{Range: r, Homes: []ktypes.NodeID{1}}); err != nil {
		t.Fatal(err)
	}
	overlapping := gaddr.Range{Start: chunk.Start.MustAdd(0x2000), Size: 0x4000}
	if err := m.Insert(ctx, Entry{Range: overlapping, Homes: []ktypes.NodeID{1}}); !errors.Is(err, ErrOverlap) {
		t.Fatalf("overlap insert: %v", err)
	}
	// Overlap with the map's own region is also rejected.
	inMap := gaddr.Range{Start: gaddr.FromUint64(0x100000), Size: 0x1000}
	if err := m.Insert(ctx, Entry{Range: inMap, Homes: []ktypes.NodeID{1}}); !errors.Is(err, ErrOverlap) {
		t.Fatalf("map-region insert: %v", err)
	}
}

func TestSetHomes(t *testing.T) {
	m, _ := newTestMap(t)
	ctx := context.Background()
	chunk, _ := m.ReserveRange(ctx, 1<<20, PageSize)
	r := gaddr.Range{Start: chunk.Start, Size: 0x1000}
	if err := m.Insert(ctx, Entry{Range: r, Homes: []ktypes.NodeID{1}}); err != nil {
		t.Fatal(err)
	}
	if err := m.SetHomes(ctx, r.Start, []ktypes.NodeID{5, 6}); err != nil {
		t.Fatal(err)
	}
	entry, _, err := m.Lookup(ctx, r.Start)
	if err != nil {
		t.Fatal(err)
	}
	if len(entry.Homes) != 2 || entry.Homes[0] != 5 || entry.Homes[1] != 6 {
		t.Fatalf("homes = %v", entry.Homes)
	}
	if err := m.SetHomes(ctx, gaddr.FromUint64(0x500000), []ktypes.NodeID{9}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("SetHomes on unknown region: %v", err)
	}
}

func TestSplitGrowsTree(t *testing.T) {
	m, _ := newTestMap(t)
	ctx := context.Background()
	const regions = maxEntries * 3
	chunk, err := m.ReserveRange(ctx, uint64(regions)*0x10000, PageSize)
	if err != nil {
		t.Fatal(err)
	}
	var inserted []gaddr.Range
	for i := 0; i < regions; i++ {
		r := gaddr.Range{Start: chunk.Start.MustAdd(uint64(i) * 0x10000), Size: 0x8000}
		if err := m.Insert(ctx, Entry{Range: r, Homes: []ktypes.NodeID{ktypes.NodeID(i%4 + 1)}}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		inserted = append(inserted, r)
	}
	depth, err := m.Depth(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if depth < 2 {
		t.Fatalf("tree depth = %d after %d inserts, expected splits", depth, regions)
	}
	// Every inserted region must still resolve, and lookups inside
	// subtrees must take more steps than the root.
	deepSteps := 0
	for i, r := range inserted {
		entry, steps, err := m.Lookup(ctx, r.Start.MustAdd(1))
		if err != nil {
			t.Fatalf("lookup %d: %v", i, err)
		}
		if entry.Range != r {
			t.Fatalf("lookup %d = %v, want %v", i, entry.Range, r)
		}
		if steps > deepSteps {
			deepSteps = steps
		}
	}
	if deepSteps < 2 {
		t.Fatalf("max lookup steps = %d, expected tree descent", deepSteps)
	}
}

func TestWalkVisitsAllInOrder(t *testing.T) {
	m, _ := newTestMap(t)
	ctx := context.Background()
	const regions = 200
	chunk, _ := m.ReserveRange(ctx, regions*0x2000, PageSize)
	for i := 0; i < regions; i++ {
		r := gaddr.Range{Start: chunk.Start.MustAdd(uint64(i) * 0x2000), Size: 0x1000}
		if err := m.Insert(ctx, Entry{Range: r, Homes: []ktypes.NodeID{1}}); err != nil {
			t.Fatal(err)
		}
	}
	var prev gaddr.Addr
	count := 0
	err := m.Walk(ctx, func(e Entry) bool {
		if count > 0 && e.Range.Start.Less(prev) {
			t.Fatalf("walk out of order: %v after %v", e.Range.Start, prev)
		}
		prev = e.Range.Start
		count++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != regions+1 { // +1 for the map's own region
		t.Fatalf("walk visited %d, want %d", count, regions+1)
	}
	// Early termination.
	count = 0
	_ = m.Walk(ctx, func(Entry) bool { count++; return count < 5 })
	if count != 5 {
		t.Fatalf("early-stop walk visited %d", count)
	}
}

func TestRemoveInsideSubtree(t *testing.T) {
	m, _ := newTestMap(t)
	ctx := context.Background()
	const regions = maxEntries + 10
	chunk, _ := m.ReserveRange(ctx, regions*0x2000, PageSize)
	var rs []gaddr.Range
	for i := 0; i < regions; i++ {
		r := gaddr.Range{Start: chunk.Start.MustAdd(uint64(i) * 0x2000), Size: 0x1000}
		rs = append(rs, r)
		if err := m.Insert(ctx, Entry{Range: r, Homes: []ktypes.NodeID{1}}); err != nil {
			t.Fatal(err)
		}
	}
	// The earliest regions migrated into a subtree on split; remove one.
	if err := m.Remove(ctx, rs[0].Start); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Lookup(ctx, rs[0].Start); !errors.Is(err, ErrNotFound) {
		t.Fatalf("lookup removed subtree entry: %v", err)
	}
	// Neighbours survive.
	if _, _, err := m.Lookup(ctx, rs[1].Start); err != nil {
		t.Fatalf("neighbour lost: %v", err)
	}
}

func TestLookupStepsGrowWithDepth(t *testing.T) {
	m, _ := newTestMap(t)
	ctx := context.Background()
	_, steps1, err := m.Lookup(ctx, gaddr.Zero)
	if err != nil || steps1 != 1 {
		t.Fatalf("root lookup steps = %d, %v", steps1, err)
	}
	const regions = maxEntries * 2
	chunk, _ := m.ReserveRange(ctx, regions*0x2000, PageSize)
	for i := 0; i < regions; i++ {
		r := gaddr.Range{Start: chunk.Start.MustAdd(uint64(i) * 0x2000), Size: 0x1000}
		if err := m.Insert(ctx, Entry{Range: r, Homes: []ktypes.NodeID{1}}); err != nil {
			t.Fatal(err)
		}
	}
	_, deepSteps, err := m.Lookup(ctx, chunk.Start.MustAdd(1))
	if err != nil {
		t.Fatal(err)
	}
	if deepSteps <= steps1 {
		t.Fatalf("deep lookup steps = %d, want > %d", deepSteps, steps1)
	}
}

func TestCorruptNodeRejected(t *testing.T) {
	m, io := newTestMap(t)
	ctx := context.Background()
	io.mu.Lock()
	io.pages[pageAddr(0)][0] = 0xFF // clobber magic
	io.mu.Unlock()
	if _, _, err := m.Lookup(ctx, gaddr.Zero); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt lookup err = %v", err)
	}
}

func TestHomesClampedToMax(t *testing.T) {
	m, _ := newTestMap(t)
	ctx := context.Background()
	chunk, _ := m.ReserveRange(ctx, 1<<20, PageSize)
	r := gaddr.Range{Start: chunk.Start, Size: 0x1000}
	homes := []ktypes.NodeID{1, 2, 3, 4, 5, 6}
	if err := m.Insert(ctx, Entry{Range: r, Homes: homes}); err != nil {
		t.Fatal(err)
	}
	entry, _, err := m.Lookup(ctx, r.Start)
	if err != nil {
		t.Fatal(err)
	}
	if len(entry.Homes) != MaxHomes {
		t.Fatalf("homes = %v, want %d entries (non-exhaustive list)", entry.Homes, MaxHomes)
	}
}

// Property: any set of disjoint inserted regions remains resolvable with
// correct homes, and uninserted addresses miss.
func TestQuickInsertLookup(t *testing.T) {
	f := func(sizesSeed []uint8, homeSeed uint8) bool {
		if len(sizesSeed) > 120 {
			sizesSeed = sizesSeed[:120]
		}
		io := newMemIO()
		m := New(io)
		ctx := context.Background()
		if m.Init(ctx, []ktypes.NodeID{1}) != nil {
			return false
		}
		type rec struct {
			r    gaddr.Range
			home ktypes.NodeID
		}
		var recs []rec
		cursor, err := m.ReserveRange(ctx, uint64(len(sizesSeed)+1)*0x20000, PageSize)
		if err != nil {
			return false
		}
		next := cursor.Start
		for i, s := range sizesSeed {
			size := (uint64(s%16) + 1) * PageSize
			r := gaddr.Range{Start: next, Size: size}
			home := ktypes.NodeID(homeSeed%8 + 1 + uint8(i%3))
			if m.Insert(ctx, Entry{Range: r, Homes: []ktypes.NodeID{home}}) != nil {
				return false
			}
			recs = append(recs, rec{r, home})
			next = next.MustAdd(size + PageSize) // leave a gap
		}
		for _, rc := range recs {
			entry, _, err := m.Lookup(ctx, rc.r.Start.MustAdd(rc.r.Size-1))
			if err != nil || entry.Range != rc.r || entry.Homes[0] != rc.home {
				return false
			}
			// The gap after each region misses.
			if _, _, err := m.Lookup(ctx, rc.r.Start.MustAdd(rc.r.Size)); !errors.Is(err, ErrNotFound) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentInsertsSerializedByIO(t *testing.T) {
	// The daemon serializes map mutations at the map home; the package
	// must still be safe when its PageIO serializes MutatePage calls.
	m, _ := newTestMap(t)
	ctx := context.Background()
	chunk, _ := m.ReserveRange(ctx, 64*0x10000, PageSize)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				idx := uint64(g*8 + i)
				r := gaddr.Range{Start: chunk.Start.MustAdd(idx * 0x10000), Size: 0x1000}
				if err := m.Insert(ctx, Entry{Range: r, Homes: []ktypes.NodeID{1}}); err != nil {
					errs[g] = fmt.Errorf("insert %d: %w", idx, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	_ = m.Walk(ctx, func(Entry) bool { count++; return true })
	if count != 65 {
		t.Fatalf("walk count = %d, want 65", count)
	}
}
