package addrmap

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
)

// TestModelRandomOps drives the tree with a long random sequence of
// insert/remove/set-homes/lookup operations and cross-checks every result
// against a flat in-memory model. This catches structural bugs (split
// boundaries, subtree descent, entry ordering) that targeted tests miss.
func TestModelRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	io := newMemIO()
	m := New(io)
	ctx := context.Background()
	if err := m.Init(ctx, []ktypes.NodeID{1}); err != nil {
		t.Fatal(err)
	}

	type modelEntry struct {
		r     gaddr.Range
		homes []ktypes.NodeID
	}
	model := make(map[gaddr.Addr]modelEntry)
	var keys []gaddr.Addr

	// All regions come from cursor-granted chunks, like the real daemon.
	chunk, err := m.ReserveRange(ctx, 1<<24, PageSize)
	if err != nil {
		t.Fatal(err)
	}
	next := chunk.Start

	const ops = 1500
	for op := 0; op < ops; op++ {
		switch r := rng.Intn(10); {
		case r < 4: // insert
			size := uint64(rng.Intn(8)+1) * PageSize
			start := next
			next = next.MustAdd(size + uint64(rng.Intn(3))*PageSize) // maybe a gap
			homes := []ktypes.NodeID{ktypes.NodeID(rng.Intn(5) + 1)}
			if err := m.Insert(ctx, Entry{Range: gaddr.Range{Start: start, Size: size}, Homes: homes}); err != nil {
				t.Fatalf("op %d: insert: %v", op, err)
			}
			model[start] = modelEntry{r: gaddr.Range{Start: start, Size: size}, homes: homes}
			keys = append(keys, start)
		case r < 6 && len(keys) > 0: // remove
			i := rng.Intn(len(keys))
			start := keys[i]
			keys = append(keys[:i], keys[i+1:]...)
			if err := m.Remove(ctx, start); err != nil {
				t.Fatalf("op %d: remove %v: %v", op, start, err)
			}
			delete(model, start)
		case r < 7 && len(keys) > 0: // set homes
			start := keys[rng.Intn(len(keys))]
			homes := []ktypes.NodeID{ktypes.NodeID(rng.Intn(5) + 1), ktypes.NodeID(rng.Intn(5) + 6)}
			if err := m.SetHomes(ctx, start, homes); err != nil {
				t.Fatalf("op %d: sethomes: %v", op, err)
			}
			ent := model[start]
			ent.homes = homes
			model[start] = ent
		default: // lookup (hit or miss)
			if len(keys) > 0 && rng.Intn(2) == 0 {
				start := keys[rng.Intn(len(keys))]
				want := model[start]
				off := uint64(0)
				if want.r.Size > 1 {
					off = uint64(rng.Int63n(int64(want.r.Size)))
				}
				got, _, err := m.Lookup(ctx, start.MustAdd(off))
				if err != nil {
					t.Fatalf("op %d: lookup %v+%d: %v", op, start, off, err)
				}
				if got.Range != want.r {
					t.Fatalf("op %d: lookup range = %v, want %v", op, got.Range, want.r)
				}
				if len(got.Homes) != len(want.homes) || got.Homes[0] != want.homes[0] {
					t.Fatalf("op %d: homes = %v, want %v", op, got.Homes, want.homes)
				}
			} else {
				// An address past the cursor is always free.
				miss := next.MustAdd(uint64(rng.Intn(1<<20)) + 1<<21)
				if _, _, err := m.Lookup(ctx, miss); !errors.Is(err, ErrNotFound) {
					t.Fatalf("op %d: lookup free space = %v", op, err)
				}
			}
		}
	}

	// Final exhaustive cross-check: the walk must visit exactly the
	// model (plus the map's own region), in order.
	var walked []Entry
	if err := m.Walk(ctx, func(e Entry) bool {
		walked = append(walked, e)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(walked) != len(model)+1 {
		t.Fatalf("walk visited %d entries, model has %d", len(walked), len(model)+1)
	}
	var prev gaddr.Addr
	for i, e := range walked {
		if i > 0 {
			if e.Range.Start.Less(prev) {
				t.Fatalf("walk out of order at %d", i)
			}
			want, ok := model[e.Range.Start]
			if !ok {
				t.Fatalf("walk produced unknown region %v", e.Range)
			}
			if want.r != e.Range {
				t.Fatalf("walk range %v, want %v", e.Range, want.r)
			}
		}
		prev = e.Range.Start
	}
	// The tree must actually have grown (the test is vacuous otherwise).
	depth, err := m.Depth(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if depth < 2 {
		t.Fatalf("tree depth = %d; random workload should have split the root", depth)
	}
}
