// Package addrmap implements Khazana's address map (paper §3.1): a
// globally distributed tree that tracks reserved regions of the 128-bit
// global address space and the home nodes of each region. The map is used
// to locate home nodes "in much the same way that directories are used to
// track copies of pages in software DSM systems".
//
// The address map itself resides in Khazana: a well-known region beginning
// at address 0 stores the root node of the tree, and every tree node is
// one page of that region. The package accesses its own backing pages
// through the PageIO interface, which the daemon implements with
// release-consistent lock/read/write operations — matching the paper's
// choice of a release consistent protocol for address map tree nodes
// (§3.3). Entries may therefore be stale at readers; callers fall back to
// the cluster-walk algorithm when a cached home hint misses (§3.2).
//
// Address space within the map is handed out by a monotonic cursor and
// never coalesced on unreserve: "For simplicity, we do not defragment ...
// We do not expect this to cause address space fragmentation problems, as
// we have a huge (128-bit) address space at our disposal" (§3.1).
package addrmap

import (
	"context"
	"errors"
	"fmt"

	"khazana/internal/enc"
	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
)

// PageIO is the map's access path to its own backing pages.
type PageIO interface {
	// ReadPage returns the current contents of a map page (zero-filled
	// if never written).
	ReadPage(ctx context.Context, page gaddr.Addr) ([]byte, error)
	// MutatePage applies fn to the page under a write lock and writes
	// the result back. fn mutates data in place.
	MutatePage(ctx context.Context, page gaddr.Addr, fn func(data []byte) error) error
}

// Geometry of the map region.
const (
	// PageSize is the fixed tree-node page size.
	PageSize = 4096
	// RegionSize is the span of address space reserved for the map
	// itself, starting at address 0.
	RegionSize = 1 << 30
	// MaxHomes is the number of home nodes stored per entry; the paper
	// calls the list non-exhaustive.
	MaxHomes = 4
	// maxEntries caps entries per tree node; overflow splits the node.
	maxEntries = 80

	magic       = 0x4B414D50 // "KAMP"
	headerSize  = 32
	entrySize   = 48
	kindRegion  = 1
	kindSubtree = 2
)

// Errors returned by the map.
var (
	// ErrNotFound reports a lookup or mutation on an unknown region.
	ErrNotFound = errors.New("addrmap: region not found")
	// ErrOverlap reports an insert that overlaps an existing region.
	ErrOverlap = errors.New("addrmap: range overlaps an existing region")
	// ErrSpaceExhausted reports cursor exhaustion (practically
	// unreachable in a 128-bit space).
	ErrSpaceExhausted = errors.New("addrmap: address space exhausted")
	// ErrCorrupt reports an unparsable tree node.
	ErrCorrupt = errors.New("addrmap: corrupt tree node")
)

// Entry describes one reserved region in the map.
type Entry struct {
	Range gaddr.Range
	Homes []ktypes.NodeID
}

// Map is a handle on the address map tree.
//
// Mutating operations (Init, ReserveRange, Insert, Remove, SetHomes) must
// be externally serialized: the daemon routes all map mutations through
// the map region's home node and a single mutex there. Lookup and Walk are
// safe to run concurrently from any node against (possibly stale)
// release-consistent replicas.
type Map struct {
	io PageIO
}

// New creates a handle using the given page access path.
func New(io PageIO) *Map { return &Map{io: io} }

// pageAddr returns the global address of map page index i.
func pageAddr(i uint64) gaddr.Addr { return gaddr.FromUint64(i * PageSize) }

// --- node serialization ---------------------------------------------------

// node is the in-memory form of one tree page.
type node struct {
	// root-only bookkeeping (zero on non-root nodes).
	nextFreePage uint64
	cursor       gaddr.Addr

	entries []nodeEntry
}

type nodeEntry struct {
	kind  uint8
	rng   gaddr.Range
	homes []ktypes.NodeID // kindRegion
	child uint64          // kindSubtree: map page index
}

func decodeNode(data []byte) (*node, error) {
	if len(data) != PageSize {
		return nil, fmt.Errorf("%w: page size %d", ErrCorrupt, len(data))
	}
	d := enc.NewDecoder(data[:headerSize])
	if got := d.U32(); got != magic {
		if got == 0 {
			// Never-written page: an empty node.
			return &node{}, nil
		}
		return nil, fmt.Errorf("%w: magic %#x", ErrCorrupt, got)
	}
	count := int(d.U16())
	d.U16() // pad
	n := &node{nextFreePage: d.U64(), cursor: d.Addr()}
	if count > maxEntries {
		return nil, fmt.Errorf("%w: count %d", ErrCorrupt, count)
	}
	n.entries = make([]nodeEntry, 0, count)
	for i := 0; i < count; i++ {
		rec := data[headerSize+i*entrySize : headerSize+(i+1)*entrySize]
		ed := enc.NewDecoder(rec)
		ent := nodeEntry{kind: ed.U8()}
		ent.rng = ed.Range()
		switch ent.kind {
		case kindRegion:
			hc := int(ed.U8())
			if hc > MaxHomes {
				return nil, fmt.Errorf("%w: home count %d", ErrCorrupt, hc)
			}
			for j := 0; j < MaxHomes; j++ {
				id := ed.NodeID()
				if j < hc {
					ent.homes = append(ent.homes, id)
				}
			}
		case kindSubtree:
			ent.child = ed.U64()
		default:
			return nil, fmt.Errorf("%w: entry kind %d", ErrCorrupt, ent.kind)
		}
		if ed.Err() != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, ed.Err())
		}
		n.entries = append(n.entries, ent)
	}
	return n, nil
}

// encodeInto writes the node into a page buffer.
func (n *node) encodeInto(data []byte) error {
	if len(n.entries) > maxEntries {
		return fmt.Errorf("addrmap: node overflow: %d entries", len(n.entries))
	}
	e := enc.NewEncoder(PageSize)
	e.U32(magic)
	e.U16(uint16(len(n.entries)))
	e.U16(0)
	e.U64(n.nextFreePage)
	e.Addr(n.cursor)
	for _, ent := range n.entries {
		base := e.Len()
		e.U8(ent.kind)
		e.Range(ent.rng)
		switch ent.kind {
		case kindRegion:
			e.U8(uint8(len(ent.homes)))
			for j := 0; j < MaxHomes; j++ {
				if j < len(ent.homes) {
					e.NodeID(ent.homes[j])
				} else {
					e.NodeID(0)
				}
			}
		case kindSubtree:
			e.U64(ent.child)
		}
		for e.Len()-base < entrySize {
			e.U8(0)
		}
	}
	buf := e.Bytes()
	copy(data, buf)
	for i := len(buf); i < PageSize; i++ {
		data[i] = 0
	}
	return nil
}

// --- operations ---------------------------------------------------------------

// Init writes the initial root node if the map is empty. The map region
// itself is recorded as reserved so client reservations never collide with
// tree pages. Idempotent.
func (m *Map) Init(ctx context.Context, mapHomes []ktypes.NodeID) error {
	return m.io.MutatePage(ctx, pageAddr(0), func(data []byte) error {
		n, err := decodeNode(data)
		if err == nil && len(n.entries) > 0 {
			return nil // already initialized
		}
		root := &node{
			nextFreePage: 1,
			cursor:       gaddr.FromUint64(RegionSize),
			entries: []nodeEntry{{
				kind:  kindRegion,
				rng:   gaddr.Range{Start: gaddr.Zero, Size: RegionSize},
				homes: clampHomes(mapHomes),
			}},
		}
		return root.encodeInto(data)
	})
}

func clampHomes(homes []ktypes.NodeID) []ktypes.NodeID {
	if len(homes) > MaxHomes {
		homes = homes[:MaxHomes]
	}
	return append([]ktypes.NodeID(nil), homes...)
}

// ReserveRange advances the global cursor by size (aligned to align) and
// returns the claimed range. The range is not yet a region: callers carve
// client regions out of it and record them with Insert. This implements
// the cluster-manager chunk grant of §3.1.
func (m *Map) ReserveRange(ctx context.Context, size, align uint64) (gaddr.Range, error) {
	if size == 0 {
		return gaddr.Range{}, errors.New("addrmap: zero-size reservation")
	}
	if align == 0 {
		align = PageSize
	}
	var out gaddr.Range
	err := m.io.MutatePage(ctx, pageAddr(0), func(data []byte) error {
		root, err := decodeNode(data)
		if err != nil {
			return err
		}
		start, err := root.cursor.AlignUp(align)
		if err != nil {
			return ErrSpaceExhausted
		}
		end, err := start.Add(size)
		if err != nil {
			return ErrSpaceExhausted
		}
		root.cursor = end
		out = gaddr.Range{Start: start, Size: size}
		return root.encodeInto(data)
	})
	return out, err
}

// Insert records a reserved region. The region must fall inside previously
// cursor-granted space and must not overlap an existing region.
func (m *Map) Insert(ctx context.Context, entry Entry) error {
	if entry.Range.Size == 0 {
		return errors.New("addrmap: empty range")
	}
	return m.insertAt(ctx, 0, entry)
}

// insertAt descends from map page index pageIdx to the node that should
// hold the entry, splitting full nodes on the way back up is avoided by
// splitting eagerly: a full node is split before insertion.
func (m *Map) insertAt(ctx context.Context, pageIdx uint64, entry Entry) error {
	var descend uint64
	var needSplit bool
	err := m.io.MutatePage(ctx, pageAddr(pageIdx), func(data []byte) error {
		n, err := decodeNode(data)
		if err != nil {
			return err
		}
		descend = 0
		needSplit = false
		for _, ent := range n.entries {
			if ent.kind == kindSubtree && ent.rng.ContainsRange(entry.Range) {
				descend = ent.child
				return nil // descend without mutating
			}
			if ent.rng.Overlaps(entry.Range) {
				return fmt.Errorf("%w: %v overlaps %v", ErrOverlap, entry.Range, ent.rng)
			}
		}
		if len(n.entries) >= maxEntries {
			needSplit = true
			return nil
		}
		// Insert in sorted position.
		pos := len(n.entries)
		for i, ent := range n.entries {
			if entry.Range.Start.Less(ent.rng.Start) {
				pos = i
				break
			}
		}
		n.entries = append(n.entries, nodeEntry{})
		copy(n.entries[pos+1:], n.entries[pos:])
		n.entries[pos] = nodeEntry{kind: kindRegion, rng: entry.Range, homes: clampHomes(entry.Homes)}
		return n.encodeInto(data)
	})
	if err != nil {
		return err
	}
	if descend != 0 {
		return m.insertAt(ctx, descend, entry)
	}
	if needSplit {
		if err := m.split(ctx, pageIdx); err != nil {
			return err
		}
		return m.insertAt(ctx, pageIdx, entry)
	}
	return nil
}

// split moves the lower half of a full node's entries into a fresh child
// node, replacing them with a single subtree entry describing that range
// "in finer detail" (§3.1).
//
// The child page is written before the parent is updated: concurrent
// readers (which do not hold the mutation serialization the daemon applies
// to writers) see either the old parent or a parent whose subtree pointer
// already resolves — never a dangling pointer.
func (m *Map) split(ctx context.Context, pageIdx uint64) error {
	// Allocate a child page index from the root header.
	var childIdx uint64
	err := m.io.MutatePage(ctx, pageAddr(0), func(data []byte) error {
		root, err := decodeNode(data)
		if err != nil {
			return err
		}
		childIdx = root.nextFreePage
		if childIdx*PageSize >= RegionSize {
			return ErrSpaceExhausted
		}
		root.nextFreePage++
		return root.encodeInto(data)
	})
	if err != nil {
		return err
	}
	// Decide what moves (mutations are serialized by the caller, so this
	// read cannot race another writer).
	data, err := m.io.ReadPage(ctx, pageAddr(pageIdx))
	if err != nil {
		return err
	}
	n, err := decodeNode(data)
	if err != nil {
		return err
	}
	if len(n.entries) < 2 {
		return nil // nothing to split
	}
	half := len(n.entries) / 2
	moved := append([]nodeEntry(nil), n.entries[:half]...)
	// Write the child first.
	err = m.io.MutatePage(ctx, pageAddr(childIdx), func(data []byte) error {
		child := &node{entries: moved}
		return child.encodeInto(data)
	})
	if err != nil {
		return err
	}
	// Swap the moved entries for a subtree pointer in the parent.
	return m.io.MutatePage(ctx, pageAddr(pageIdx), func(data []byte) error {
		n, err := decodeNode(data)
		if err != nil {
			return err
		}
		if len(n.entries) < half {
			return nil
		}
		first := moved[0].rng.Start
		last := moved[len(moved)-1].rng
		coverEnd, ok := last.End()
		if !ok {
			coverEnd = gaddr.Max
		}
		coverSize, _ := first.Distance(coverEnd)
		sub := nodeEntry{
			kind:  kindSubtree,
			rng:   gaddr.Range{Start: first, Size: coverSize},
			child: childIdx,
		}
		n.entries = append([]nodeEntry{sub}, n.entries[half:]...)
		return n.encodeInto(data)
	})
}

// Lookup finds the region containing addr, descending the tree from the
// root (§3.2: "search the address map tree, starting at the root tree node
// and recursively loading pages"). steps reports the number of tree nodes
// visited, which the lookup-path experiments use.
func (m *Map) Lookup(ctx context.Context, addr gaddr.Addr) (Entry, int, error) {
	pageIdx := uint64(0)
	steps := 0
	for {
		steps++
		data, err := m.io.ReadPage(ctx, pageAddr(pageIdx))
		if err != nil {
			return Entry{}, steps, err
		}
		n, err := decodeNode(data)
		if err != nil {
			return Entry{}, steps, err
		}
		next := uint64(0)
		found := false
		for _, ent := range n.entries {
			if !ent.rng.Contains(addr) {
				continue
			}
			if ent.kind == kindSubtree {
				next = ent.child
				found = true
				break
			}
			return Entry{Range: ent.rng, Homes: append([]ktypes.NodeID(nil), ent.homes...)}, steps, nil
		}
		if !found {
			return Entry{}, steps, ErrNotFound
		}
		pageIdx = next
	}
}

// Remove deletes the region starting at start (unreserve, §3.1).
func (m *Map) Remove(ctx context.Context, start gaddr.Addr) error {
	return m.mutateEntry(ctx, 0, start, nil)
}

// SetHomes updates the home-node list of the region starting at start
// (e.g. after replica migration or failover).
func (m *Map) SetHomes(ctx context.Context, start gaddr.Addr, homes []ktypes.NodeID) error {
	h := clampHomes(homes)
	return m.mutateEntry(ctx, 0, start, func(ent *nodeEntry) { ent.homes = h })
}

// mutateEntry walks to the node holding the region that starts at start
// and applies fn; fn == nil deletes the entry.
func (m *Map) mutateEntry(ctx context.Context, pageIdx uint64, start gaddr.Addr, fn func(*nodeEntry)) error {
	var descend uint64
	var found bool
	err := m.io.MutatePage(ctx, pageAddr(pageIdx), func(data []byte) error {
		n, err := decodeNode(data)
		if err != nil {
			return err
		}
		descend, found = 0, false
		for i := range n.entries {
			ent := &n.entries[i]
			if ent.kind == kindSubtree && ent.rng.Contains(start) {
				descend = ent.child
				return nil
			}
			if ent.kind == kindRegion && ent.rng.Start == start {
				found = true
				if fn == nil {
					n.entries = append(n.entries[:i], n.entries[i+1:]...)
				} else {
					fn(ent)
				}
				return n.encodeInto(data)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if descend != 0 {
		return m.mutateEntry(ctx, descend, start, fn)
	}
	if !found {
		return ErrNotFound
	}
	return nil
}

// Walk visits every region entry in address order, for diagnostics and
// space accounting.
func (m *Map) Walk(ctx context.Context, visit func(Entry) bool) error {
	_, err := m.walkNode(ctx, 0, visit)
	return err
}

func (m *Map) walkNode(ctx context.Context, pageIdx uint64, visit func(Entry) bool) (bool, error) {
	data, err := m.io.ReadPage(ctx, pageAddr(pageIdx))
	if err != nil {
		return false, err
	}
	n, err := decodeNode(data)
	if err != nil {
		return false, err
	}
	for _, ent := range n.entries {
		switch ent.kind {
		case kindSubtree:
			cont, err := m.walkNode(ctx, ent.child, visit)
			if err != nil || !cont {
				return cont, err
			}
		case kindRegion:
			if !visit(Entry{Range: ent.rng, Homes: append([]ktypes.NodeID(nil), ent.homes...)}) {
				return false, nil
			}
		}
	}
	return true, nil
}

// Depth returns the current tree depth (1 = root only).
func (m *Map) Depth(ctx context.Context) (int, error) {
	return m.depthOf(ctx, 0)
}

func (m *Map) depthOf(ctx context.Context, pageIdx uint64) (int, error) {
	data, err := m.io.ReadPage(ctx, pageAddr(pageIdx))
	if err != nil {
		return 0, err
	}
	n, err := decodeNode(data)
	if err != nil {
		return 0, err
	}
	maxChild := 0
	for _, ent := range n.entries {
		if ent.kind != kindSubtree {
			continue
		}
		d, err := m.depthOf(ctx, ent.child)
		if err != nil {
			return 0, err
		}
		if d > maxChild {
			maxChild = d
		}
	}
	return 1 + maxChild, nil
}
