package core

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
	"khazana/internal/region"
)

// TestConcurrentLockContexts hammers the lock-context table from many
// goroutines across several regions and nodes at once. The interesting
// failures here are races between the Lock/Unlock bookkeeping (the
// lock-context shards, appMu) and the consistency managers rather than
// wrong bytes, so this
// test earns its keep under `go test -race`.
func TestConcurrentLockContexts(t *testing.T) {
	_, nodes := testCluster(t, 3)
	ctx := context.Background()

	const regions = 4
	starts := make([]gaddr.Addr, regions)
	for i := range starts {
		starts[i] = mkRegion(t, nodes[i%len(nodes)], 4096, region.Attrs{}, "alice")
	}

	const workers = 8
	const iters = 15
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			n := nodes[w%len(nodes)]
			start := starts[w%regions]
			for i := 0; i < iters; i++ {
				mode := ktypes.LockWrite
				if (w+i)%3 == 0 {
					mode = ktypes.LockRead
				}
				lc, err := n.Lock(ctx, gaddr.Range{Start: start, Size: 4096}, mode, "alice")
				if err != nil {
					errs <- fmt.Errorf("worker %d iter %d: lock: %w", w, i, err)
					return
				}
				if mode.Writes() {
					if err := n.Write(lc, start, []byte{byte(w), byte(i)}); err != nil {
						errs <- fmt.Errorf("worker %d iter %d: write: %w", w, i, err)
						return
					}
				} else {
					if _, err := n.Read(lc, start, 2); err != nil {
						errs <- fmt.Errorf("worker %d iter %d: read: %w", w, i, err)
						return
					}
				}
				if err := n.Unlock(ctx, lc); err != nil {
					errs <- fmt.Errorf("worker %d iter %d: unlock: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The lock table must be fully drained afterwards: a final exclusive
	// lock on every region succeeds.
	for i, start := range starts {
		lc, err := nodes[0].Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockWrite, "alice")
		if err != nil {
			t.Fatalf("final lock region %d: %v", i, err)
		}
		if err := nodes[0].Unlock(ctx, lc); err != nil {
			t.Fatalf("final unlock region %d: %v", i, err)
		}
	}
}
