package core

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"khazana/internal/enc"
	"khazana/internal/region"
)

// Persistence of daemon state across restarts (§2: the store is
// *persistent*; §3.4: the page directory "maintains persistent information
// about pages homed locally"). A clean shutdown flushes the RAM tier to
// disk and writes two metadata files next to the page files:
//
//	pagedir.bin — the locally homed page directory entries
//	regions.bin — the authoritative descriptors of regions homed here
//
// On start the daemon restores both, so regions it homes survive a
// restart; the address map's own pages are ordinary pages and persist
// through the same flush.

const (
	pagedirFile  = "pagedir.bin"
	regionsFile  = "regions.bin"
	regionsMagic = 0x4B52_4753 // "KRGS"
)

// Persist checkpoints the daemon's state to its store directory.
func (n *Node) Persist() error {
	if err := n.store.FlushAll(); err != nil {
		return fmt.Errorf("core: flush pages: %w", err)
	}
	if err := n.savePagedir(); err != nil {
		return err
	}
	if err := n.saveRegions(); err != nil {
		return err
	}
	return n.repl.Save()
}

func (n *Node) savePagedir() error {
	path := filepath.Join(n.cfg.StoreDir, pagedirFile)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("core: save pagedir: %w", err)
	}
	if err := n.dir.SaveTo(f); err != nil {
		_ = f.Close()
		return fmt.Errorf("core: save pagedir: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func (n *Node) saveRegions() error {
	n.descMu.Lock()
	e := enc.NewEncoder(256)
	e.U32(regionsMagic)
	e.U32(uint32(len(n.authDescs)))
	for _, d := range n.authDescs {
		d.EncodeTo(e)
	}
	n.descMu.Unlock()
	path := filepath.Join(n.cfg.StoreDir, regionsFile)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, e.Bytes(), 0o644); err != nil {
		return fmt.Errorf("core: save regions: %w", err)
	}
	return os.Rename(tmp, path)
}

// restore reloads persisted metadata, if present.
func (n *Node) restore() error {
	if err := n.restorePagedir(); err != nil {
		return err
	}
	if err := n.restoreRegions(); err != nil {
		return err
	}
	return n.repl.Load()
}

func (n *Node) restorePagedir() error {
	f, err := os.Open(filepath.Join(n.cfg.StoreDir, pagedirFile))
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("core: restore pagedir: %w", err)
	}
	defer f.Close()
	if err := n.dir.LoadFrom(f); err != nil {
		return fmt.Errorf("core: restore pagedir: %w", err)
	}
	return nil
}

func (n *Node) restoreRegions() error {
	raw, err := os.ReadFile(filepath.Join(n.cfg.StoreDir, regionsFile))
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("core: restore regions: %w", err)
	}
	d := enc.NewDecoder(raw)
	if magic := d.U32(); magic != regionsMagic {
		return fmt.Errorf("core: restore regions: bad magic %#x", magic)
	}
	count := d.U32()
	for i := uint32(0); i < count; i++ {
		desc := region.DecodeDescriptor(d)
		if d.Err() != nil {
			return fmt.Errorf("core: restore regions: entry %d: %w", i, d.Err())
		}
		n.putAuthDesc(desc)
		n.rdir.Insert(desc)
	}
	if err := d.Finish(); err != nil {
		return fmt.Errorf("core: restore regions: %w", err)
	}
	return nil
}
