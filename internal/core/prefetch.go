package core

import (
	"sync"

	"khazana/internal/consistency"
	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
	"khazana/internal/region"
)

// Adaptive read-ahead grant pipelining. The home watches the stream of
// demand lock batches each requester sends per region; when the stream
// looks sequential, the home piggybacks grants (and page contents) for
// the next few predicted pages onto the demand reply, so a sequential
// reader pays one RPC per window instead of one per window per prefetch
// miss. The depth K adapts per stream: silent consumption of speculated
// pages (the requester's stream advances past them without re-requesting)
// doubles K, while a re-requested — wasted — speculation halves it, so a
// requester that stops streaming stops costing frames. This is the §2
// "aggressive prefetching" hook realized on the grant path, where the
// batched lock pipeline already amortizes the round trip.

const (
	// prefetchInitialK is the starting read-ahead depth for a stream
	// that just turned sequential.
	prefetchInitialK = 2
	// prefetchMaxK caps the read-ahead depth.
	prefetchMaxK = 32
	// prefetchMaxStreams bounds the tracker; when exceeded, the table
	// resets (streams re-prime in one batch, so the cost is one missed
	// speculation window per active reader).
	prefetchMaxStreams = 256
)

// streamKey identifies one requester's access stream within one region.
type streamKey struct {
	region    gaddr.Addr
	requester ktypes.NodeID
}

// stream is the per-(region, requester) predictor state.
type stream struct {
	// pageSize is the region's page size, cached so Granted (which has
	// no descriptor) can advance the window.
	pageSize uint64
	// nextDemand is the page the requester demands next if the
	// sequential run continues.
	nextDemand gaddr.Addr
	// nextSpec is the first page not yet speculated for this stream;
	// always >= nextDemand once primed.
	nextSpec gaddr.Addr
	// outstanding holds speculated pages not yet confirmed consumed
	// (stream advanced past them) or wasted (re-requested).
	outstanding map[gaddr.Addr]struct{}
	// k is the current read-ahead depth.
	k int
	// primed marks that the stream has shown one sequential
	// continuation; speculation starts on the second sequential batch,
	// so a one-shot random reader never costs a frame.
	primed bool
}

// prefetchPlanner implements consistency.ReadAheadPlanner with a
// per-stream sequential detector and multiplicative K adaptation. It is
// home-side state: the planner lives on the node and serves every region
// homed there.
type prefetchPlanner struct {
	mu      sync.Mutex
	streams map[streamKey]*stream
}

func newPrefetchPlanner() *prefetchPlanner {
	return &prefetchPlanner{streams: make(map[streamKey]*stream)}
}

var _ consistency.ReadAheadPlanner = (*prefetchPlanner)(nil)

// Plan implements consistency.ReadAheadPlanner. pages is the sorted
// demand batch the home is about to grant.
func (p *prefetchPlanner) Plan(desc *region.Descriptor, requester ktypes.NodeID, pages []gaddr.Addr) []gaddr.Addr {
	if len(pages) == 0 {
		return nil
	}
	pageSize := uint64(desc.Attrs.PageSize)
	if pageSize == 0 {
		return nil
	}
	first, last := pages[0], pages[len(pages)-1]
	after, err := last.Add(pageSize)
	if err != nil {
		return nil
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	key := streamKey{region: desc.Range.Start, requester: requester}
	s, ok := p.streams[key]
	if !ok {
		if len(p.streams) >= prefetchMaxStreams {
			p.streams = make(map[streamKey]*stream)
		}
		s = &stream{
			pageSize:    pageSize,
			nextDemand:  after,
			nextSpec:    after,
			outstanding: make(map[gaddr.Addr]struct{}),
			k:           prefetchInitialK,
		}
		p.streams[key] = s
		return nil
	}

	// Settle the previous window's speculations: a speculated page the
	// requester re-requests was wasted (it never arrived, was evicted,
	// or was invalidated); a speculated page the stream advanced past
	// was consumed locally — a hit the home only ever sees as silence.
	waste := 0
	for _, pg := range pages {
		if _, out := s.outstanding[pg]; out {
			delete(s.outstanding, pg)
			waste++
		}
	}
	hits := 0
	for pg := range s.outstanding {
		if pg.Less(first) {
			delete(s.outstanding, pg)
			hits++
		}
	}

	// Sequential iff the batch starts exactly at the predicted next
	// demand page, or within the already-speculated window (the reader
	// consumed some prefetches locally and surfaced here for the rest).
	sequential := first == s.nextDemand
	if !sequential && !s.nextSpec.Less(first) && !first.Less(s.nextDemand) {
		sequential = true
	}
	if !sequential {
		s.nextDemand = after
		s.nextSpec = after
		s.outstanding = make(map[gaddr.Addr]struct{})
		s.primed = false
		return nil
	}

	if waste > 0 {
		s.k /= 2
		if s.k < 1 {
			s.k = 1
		}
	} else if hits > 0 {
		s.k *= 2
		if s.k > prefetchMaxK {
			s.k = prefetchMaxK
		}
	}

	wasPrimed := s.primed
	s.primed = true
	s.nextDemand = after
	if s.nextSpec.Less(after) {
		s.nextSpec = after
	}
	if !wasPrimed {
		return nil
	}

	// Candidates: up to K pages beyond the demand window, starting where
	// the last speculation ended, clipped to the region.
	var out []gaddr.Addr
	limit, err := after.Add(uint64(s.k) * pageSize)
	if err != nil {
		limit = desc.Range.Start // overflow: empty window below
	}
	for pg := s.nextSpec; pg.Less(limit) && desc.Range.Contains(pg); {
		out = append(out, pg)
		next, err := pg.Add(pageSize)
		if err != nil {
			break
		}
		pg = next
	}
	return out
}

// Granted implements consistency.ReadAheadPlanner: only pages that
// actually shipped enter the outstanding window, so candidates the CM
// filtered out (e.g. write-locked pages) are re-planned next batch.
func (p *prefetchPlanner) Granted(regionStart gaddr.Addr, requester ktypes.NodeID, pages []gaddr.Addr) {
	if len(pages) == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.streams[streamKey{region: regionStart, requester: requester}]
	if !ok {
		return
	}
	for _, pg := range pages {
		s.outstanding[pg] = struct{}{}
		if next, err := pg.Add(s.pageSize); err == nil && s.nextSpec.Less(next) {
			s.nextSpec = next
		}
	}
}
