package core

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
	"khazana/internal/region"
)

// TestFrameSharingRaceCOW races readers holding shared page frames against
// a lock-holding writer that triggers copy-on-write. Two reader flavors
// run concurrently: daemon-style readers that pull the frame straight from
// the store (as the replica push and migration paths do) and client-style
// readers that hold zero-copy ReadView slices under a read lock. Under
// -race this validates the refcount contract end to end: a frame obtained
// while shared is immutable — Write mutates a private copy via Exclusive —
// and stays alive until its last reference drops.
func TestFrameSharingRaceCOW(t *testing.T) {
	_, nodes := testCluster(t, 1)
	n := nodes[0]
	ctx := context.Background()
	start := mkRegion(t, n, 4096, region.Attrs{}, "")

	// Seed a uniform page so torn frames are detectable: every snapshot a
	// reader takes must be internally consistent across the written span.
	seed := make([]byte, 4096)
	for i := range seed {
		seed[i] = 1
	}
	lc, err := n.Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockWrite, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Write(lc, start, seed); err != nil {
		t.Fatal(err)
	}
	if err := n.Unlock(ctx, lc); err != nil {
		t.Fatal(err)
	}

	const (
		writes       = 200
		storeReaders = 3
		viewReaders  = 2
	)
	var stop atomic.Bool
	var wg sync.WaitGroup
	fail := func(format string, args ...any) {
		stop.Store(true)
		t.Errorf(format, args...)
	}

	// Daemon-style readers: borrow the store's frame with no lock held.
	for r := 0; r < storeReaders; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				f, ok := n.Store().Get(start)
				if !ok {
					continue
				}
				b := f.Bytes()
				v := b[64]
				for _, x := range b[64:192] {
					if x != v {
						fail("torn store snapshot: %d then %d", v, x)
						break
					}
				}
				f.Release()
			}
		}()
	}

	// Client-style readers: zero-copy views pinned by a read lock.
	for r := 0; r < viewReaders; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				rlc, err := n.Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockRead, "")
				if err != nil {
					fail("read lock: %v", err)
					return
				}
				view, err := n.ReadView(rlc, start.MustAdd(64), 128)
				if err != nil {
					fail("read view: %v", err)
				} else {
					v := view[0]
					for _, x := range view {
						if x != v {
							fail("torn view: %d then %d", v, x)
							break
						}
					}
				}
				if err := n.Unlock(ctx, rlc); err != nil {
					fail("unlock: %v", err)
					return
				}
			}
		}()
	}

	// Writer: partial-page writes force the copy-on-write path whenever a
	// reader shares the store's frame.
	chunk := make([]byte, 128)
	for i := 0; i < writes && !stop.Load(); i++ {
		for j := range chunk {
			chunk[j] = byte(i + 2)
		}
		wlc, err := n.Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockWrite, "")
		if err != nil {
			t.Fatalf("write lock %d: %v", i, err)
		}
		if err := n.Write(wlc, start.MustAdd(64), chunk); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if err := n.Unlock(ctx, wlc); err != nil {
			t.Fatalf("write unlock %d: %v", i, err)
		}
	}
	stop.Store(true)
	wg.Wait()

	// The last write must be visible through the copying read path.
	rlc, err := n.Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockRead, "")
	if err != nil {
		t.Fatal(err)
	}
	got, err := n.Read(rlc, start.MustAdd(64), 128)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Unlock(ctx, rlc); err != nil {
		t.Fatal(err)
	}
	want := byte(writes + 1)
	for _, x := range got {
		if x != want {
			t.Fatalf("final read saw %d, want %d", x, want)
		}
	}
}

// TestBorrowedFrameStableAcrossWriter pins the store's frame the way the
// replica push and migration paths do, lets a locked writer overwrite the
// page, and checks the borrowed frame still serves the pre-write bytes:
// with the frame shared, Write must copy-on-write a private frame rather
// than mutate in place, and the borrower's reference keeps the superseded
// frame alive after the store swaps it out.
func TestBorrowedFrameStableAcrossWriter(t *testing.T) {
	_, nodes := testCluster(t, 1)
	n := nodes[0]
	ctx := context.Background()
	start := mkRegion(t, n, 4096, region.Attrs{}, "")

	lc, err := n.Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockWrite, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Write(lc, start, []byte("before")); err != nil {
		t.Fatal(err)
	}
	if err := n.Unlock(ctx, lc); err != nil {
		t.Fatal(err)
	}

	f, ok := n.Store().Get(start)
	if !ok {
		t.Fatal("page missing after seed write")
	}
	defer f.Release()
	if string(f.Bytes()[:6]) != "before" {
		t.Fatalf("borrowed frame = %q", f.Bytes()[:6])
	}

	// Partial write while the frame is shared: the store and this test
	// both hold references, so the writer must take the Exclusive path.
	wlc, err := n.Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockWrite, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Write(wlc, start, []byte("after!")); err != nil {
		t.Fatal(err)
	}
	if err := n.Unlock(ctx, wlc); err != nil {
		t.Fatal(err)
	}

	if string(f.Bytes()[:6]) != "before" {
		t.Fatalf("borrowed frame mutated under the reader: %q", f.Bytes()[:6])
	}
	if got, ok := n.Store().GetCopy(start); !ok || string(got[:6]) != "after!" {
		t.Fatalf("store after write = %q, %v", got[:6], ok)
	}
}
