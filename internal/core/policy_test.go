package core

import (
	"context"
	"testing"
	"time"

	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
	"khazana/internal/region"
)

// hammer performs count lock-read cycles from node n.
func hammer(t *testing.T, n *Node, start gaddr.Addr, count int) {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < count; i++ {
		lc, err := n.Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockRead, "")
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Unlock(ctx, lc); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMigrationPolicyFollowsLoad(t *testing.T) {
	_, nodes := testCluster(t, 3)
	ctx := context.Background()
	start := mkRegion(t, nodes[0], 4096, region.Attrs{}, "")

	// Node 3 dominates the region's traffic.
	hammer(t, nodes[2], start, 20)
	hammer(t, nodes[1], start, 2)

	moved := nodes[0].RunMigrationPolicy(ctx, DefaultMigrationPolicy())
	if len(moved) != 1 || moved[0] != start {
		t.Fatalf("policy moved %v, want [%v]", moved, start)
	}
	d := nodes[2].authDescByStart(start)
	if d == nil {
		t.Fatal("node 3 should now home the region")
	}
	if home, _ := d.PrimaryHome(); home != 3 {
		t.Fatalf("new home = %v", home)
	}
	// Node 3's accesses are now local (no consistency traffic recorded
	// anywhere for them); the old home no longer decides for the region.
	hammer(t, nodes[2], start, 5)
	if again := nodes[0].RunMigrationPolicy(ctx, DefaultMigrationPolicy()); len(again) != 0 {
		t.Fatalf("old home migrated again: %v", again)
	}
}

func TestMigrationPolicyThresholds(t *testing.T) {
	_, nodes := testCluster(t, 3)
	ctx := context.Background()
	start := mkRegion(t, nodes[0], 4096, region.Attrs{}, "")

	// Below MinRequests: no migration.
	hammer(t, nodes[2], start, 5)
	if moved := nodes[0].RunMigrationPolicy(ctx, DefaultMigrationPolicy()); len(moved) != 0 {
		t.Fatalf("policy moved on a thin window: %v", moved)
	}
	// Balanced traffic: no dominant node, no migration.
	hammer(t, nodes[1], start, 10)
	hammer(t, nodes[2], start, 10)
	if moved := nodes[0].RunMigrationPolicy(ctx, DefaultMigrationPolicy()); len(moved) != 0 {
		t.Fatalf("policy moved on balanced traffic: %v", moved)
	}
	// The decision window resets each pass: old traffic does not leak.
	hammer(t, nodes[2], start, 20)
	moved := nodes[0].RunMigrationPolicy(ctx, DefaultMigrationPolicy())
	if len(moved) != 1 {
		t.Fatalf("dominant window after reset should migrate: %v", moved)
	}
}

func TestMigrationPolicyBackgroundLoop(t *testing.T) {
	_, nodes := testCluster(t, 2, func(i int, cfg *Config) {
		cfg.MigrationInterval = 20 * time.Millisecond
	})
	ctx := context.Background()
	start := mkRegion(t, nodes[0], 4096, region.Attrs{}, "")
	hammer(t, nodes[1], start, 25)

	deadline := time.Now().Add(3 * time.Second)
	for {
		if d := nodes[1].authDescByStart(start); d != nil {
			if home, _ := d.PrimaryHome(); home == 2 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("background policy never migrated the region")
		}
		time.Sleep(20 * time.Millisecond)
	}
	// The region still works after the automatic move.
	lc, err := nodes[0].Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockRead, "")
	if err != nil {
		t.Fatal(err)
	}
	_ = nodes[0].Unlock(ctx, lc)
}

func TestMapRegionNeverMigrates(t *testing.T) {
	_, nodes := testCluster(t, 2)
	ctx := context.Background()
	// Generate plenty of map traffic from node 2 (reserves walk the
	// tree and push release updates to the map home).
	for i := 0; i < 10; i++ {
		if _, err := nodes[1].Reserve(ctx, 4096, region.Attrs{}, ""); err != nil {
			t.Fatal(err)
		}
	}
	if moved := nodes[0].RunMigrationPolicy(ctx, DefaultMigrationPolicy()); len(moved) != 0 {
		t.Fatalf("policy must never move the address map region: %v", moved)
	}
}
