package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"khazana/internal/consistency"
	"khazana/internal/frame"
	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
	"khazana/internal/pagedir"
	"khazana/internal/region"
	"khazana/internal/security"
	"khazana/internal/telemetry"
	"khazana/internal/transport"
	"khazana/internal/wire"
)

// Operation errors.
var (
	// ErrNotAllocated reports access to a region without allocated
	// storage ("a region cannot be accessed until physical storage is
	// explicitly allocated to it", §2).
	ErrNotAllocated = errors.New("core: region not allocated")
	// ErrBadLock reports an unknown or mismatched lock context.
	ErrBadLock = errors.New("core: invalid lock context")
	// ErrOutOfRange reports an access outside the locked range.
	ErrOutOfRange = errors.New("core: access outside locked range")
	// ErrNotRegionStart reports an operation addressed to the middle of
	// a region where its start is required.
	ErrNotRegionStart = errors.New("core: address is not a region start")
)

// Reserve reserves a contiguous range of global address space as a new
// region with the given attributes (§2). The region's home is this node.
func (n *Node) Reserve(ctx context.Context, size uint64, attrs region.Attrs, principal ktypes.Principal) (gaddr.Addr, error) {
	attrs = attrs.Normalize()
	if err := attrs.Validate(); err != nil {
		return gaddr.Addr{}, err
	}
	if size == 0 {
		return gaddr.Addr{}, errors.New("core: zero-size region")
	}
	// Round the region up to whole pages.
	ps := uint64(attrs.PageSize)
	size = (size + ps - 1) / ps * ps
	if attrs.ACL.Owner == "" && principal != ktypes.Anonymous {
		attrs.ACL.Owner = principal
	}

	start, err := n.carve(ctx, size, ps)
	if err != nil {
		return gaddr.Addr{}, err
	}
	desc := &region.Descriptor{
		Range:     gaddr.Range{Start: start, Size: size},
		Attrs:     attrs,
		Home:      []ktypes.NodeID{n.cfg.ID},
		Epoch:     1,
		Allocated: false,
	}
	if err := n.mapInsert(ctx, desc.Range, desc.Home); err != nil {
		return gaddr.Addr{}, fmt.Errorf("core: record region: %w", err)
	}
	n.putAuthDesc(desc)
	n.rdir.Insert(desc)
	n.ringAnnounce(ctx, desc)
	return start, nil
}

// carve takes size bytes from the local pool of reserved-but-unused
// address space, refilling the pool from the cluster manager / map home
// when exhausted (§3.1).
func (n *Node) carve(ctx context.Context, size, align uint64) (gaddr.Addr, error) {
	n.chunkMu.Lock()
	defer n.chunkMu.Unlock()
	for attempt := 0; attempt < 2; attempt++ {
		if n.chunkOK {
			start, err := n.chunk.Start.AlignUp(align)
			if err == nil {
				used, ok := n.chunk.Start.Distance(start)
				if ok && used+size <= n.chunk.Size {
					n.chunk.Start = start.MustAdd(size)
					n.chunk.Size -= used + size
					return start, nil
				}
			}
		}
		// Refill: request a fresh chunk covering at least size.
		want := n.cfg.ChunkSize
		if size > want {
			want = size
		}
		//khazana:block-ok chunk refill must hold chunkMu so concurrent carves see the new chunk exactly once; the refill RPC to the map home is rare (once per ChunkSize of allocations)
		r, err := n.mapReserveRange(ctx, want, align)
		if err != nil {
			return gaddr.Addr{}, fmt.Errorf("core: reserve space: %w", err)
		}
		n.chunk, n.chunkOK = r, true
	}
	return gaddr.Addr{}, errors.New("core: could not carve region from chunk")
}

// FreeSpace reports the local pool's total and largest free extent, used
// in heartbeat hints (§3.1).
func (n *Node) FreeSpace() (total, max uint64) {
	n.chunkMu.Lock()
	defer n.chunkMu.Unlock()
	if !n.chunkOK {
		return 0, 0
	}
	return n.chunk.Size, n.chunk.Size
}

// Unreserve releases a region and any storage allocated to it (§2).
func (n *Node) Unreserve(ctx context.Context, start gaddr.Addr, principal ktypes.Principal) error {
	desc, err := n.lookupRegion(ctx, start)
	if err != nil {
		return err
	}
	if desc.Range.Start != start {
		return ErrNotRegionStart
	}
	if err := desc.Attrs.ACL.Check(principal, security.PermAdmin); err != nil {
		return err
	}
	home, err := desc.PrimaryHome()
	if err != nil {
		return err
	}
	if home != n.cfg.ID {
		fresh, err := n.forwardOp(ctx, desc, func() wire.Msg {
			return &wire.CUnreserve{Start: start, Principal: principal}
		})
		if err != nil || fresh == nil {
			return err
		}
		// The refresh says this node is now the home: fall through.
		desc = fresh
	}
	// Home-side teardown: drop pages, descriptor, and the map entry.
	n.dropRegionPages(ctx, desc)
	n.dropAuthDesc(start)
	n.access.forget(start)
	n.rdir.Remove(start)
	n.ringWithdraw(ctx, desc)
	if err := n.mapRemove(ctx, start); err != nil {
		return fmt.Errorf("core: unrecord region: %w", err)
	}
	return nil
}

// Allocate attaches physical storage to a reserved region (§2). Storage is
// allocated lazily page by page; this flips the descriptor's Allocated
// gate.
func (n *Node) Allocate(ctx context.Context, start gaddr.Addr, principal ktypes.Principal) error {
	return n.setAllocated(ctx, start, principal, true)
}

// Free releases a region's physical storage but keeps the reservation
// (§2).
func (n *Node) Free(ctx context.Context, start gaddr.Addr, principal ktypes.Principal) error {
	return n.setAllocated(ctx, start, principal, false)
}

func (n *Node) setAllocated(ctx context.Context, start gaddr.Addr, principal ktypes.Principal, alloc bool) error {
	desc, err := n.lookupRegion(ctx, start)
	if err != nil {
		return err
	}
	if desc.Range.Start != start {
		return ErrNotRegionStart
	}
	if err := desc.Attrs.ACL.Check(principal, security.PermWrite); err != nil {
		return err
	}
	home, err := desc.PrimaryHome()
	if err != nil {
		return err
	}
	if home != n.cfg.ID {
		fresh, err := n.forwardOp(ctx, desc, func() wire.Msg {
			if alloc {
				return &wire.CAllocate{Start: start, Principal: principal}
			}
			return &wire.CFree{Start: start, Principal: principal}
		})
		if err != nil || fresh == nil {
			return err
		}
		// The refresh says this node is now the home: fall through.
	}
	n.descMu.Lock()
	d, ok := n.authDescs[start]
	if !ok {
		n.descMu.Unlock()
		return fmt.Errorf("%w: %v not homed here", ErrInaccessible, start)
	}
	d.Allocated = alloc
	d.Epoch++
	out := d.Clone()
	n.descMu.Unlock()
	n.rdir.Insert(out)
	n.ringAnnounce(ctx, out)
	if !alloc {
		n.dropRegionPages(ctx, out)
	}
	return nil
}

// dropRegionPages discards local storage and invalidates remote copies for
// every page of a region. Teardown completes even if the requesting
// client goes away mid-operation, so the per-sharer invalidation deadline
// derives from the caller's values but not its cancellation.
func (n *Node) dropRegionPages(ctx context.Context, desc *region.Descriptor) {
	base := context.WithoutCancel(ctx)
	for _, page := range desc.Pages(0, desc.Range.Size) {
		if entry, ok := n.dir.Lookup(page); ok {
			for _, sharer := range entry.Copyset {
				if sharer == n.cfg.ID {
					continue
				}
				reqCtx, cancel := context.WithTimeout(base, 2*time.Second)
				//khazana:ignore-err best-effort invalidation during teardown; an unreachable sharer cannot serve the region after the map entry is gone
				_, _ = n.tr.Request(reqCtx, sharer, &wire.Invalidate{Page: page, NewOwner: n.cfg.ID, Version: entry.Version})
				cancel()
			}
		}
		n.store.Delete(page)
		n.dir.Delete(page)
	}
}

// GetAttr returns the attributes of the region containing addr (§2).
func (n *Node) GetAttr(ctx context.Context, addr gaddr.Addr) (*region.Descriptor, error) {
	return n.lookupRegion(ctx, addr)
}

// SetAttr updates a region's attributes (§2). The update is applied at the
// region's home and the descriptor epoch advances.
func (n *Node) SetAttr(ctx context.Context, start gaddr.Addr, attrs region.Attrs, principal ktypes.Principal) error {
	desc, err := n.lookupRegion(ctx, start)
	if err != nil {
		return err
	}
	if desc.Range.Start != start {
		return ErrNotRegionStart
	}
	if err := desc.Attrs.ACL.Check(principal, security.PermAdmin); err != nil {
		return err
	}
	attrs = attrs.Normalize()
	if err := attrs.Validate(); err != nil {
		return err
	}
	if attrs.PageSize != desc.Attrs.PageSize {
		return errors.New("core: page size is fixed at reservation time")
	}
	home, err := desc.PrimaryHome()
	if err != nil {
		return err
	}
	if home != n.cfg.ID {
		fresh, err := n.forwardOp(ctx, desc, func() wire.Msg {
			return &wire.CSetAttr{Start: start, Attrs: attrs, Principal: principal}
		})
		if err != nil || fresh == nil {
			return err
		}
		// The refresh says this node is now the home: fall through.
	}
	n.descMu.Lock()
	d, ok := n.authDescs[start]
	if !ok {
		n.descMu.Unlock()
		return fmt.Errorf("%w: %v not homed here", ErrInaccessible, start)
	}
	d.Attrs = attrs
	d.Epoch++
	out := d.Clone()
	n.descMu.Unlock()
	n.rdir.Insert(out)
	n.ringAnnounce(ctx, out)
	return nil
}

// Lock locks part of a region in the given mode, returning the lock
// context used by subsequent reads and writes (§2). Acquire-side errors
// surface to the client (§3.5).
func (n *Node) Lock(ctx context.Context, rng gaddr.Range, mode ktypes.LockMode, principal ktypes.Principal) (*LockContext, error) {
	if !mode.Valid() {
		return nil, fmt.Errorf("core: invalid lock mode %d", mode)
	}
	if rng.Size == 0 {
		return nil, errors.New("core: empty lock range")
	}
	// The op span roots the trace (or extends a remote caller's); every
	// RPC below inherits its context through the transport envelope.
	var fl telemetry.Flight
	ctx, fl = telemetry.StartSpan(ctx, n.rec, uint32(n.cfg.ID), "op.lock")
	defer fl.Finish()
	lockStart := time.Now()
	n.trace("1:obtain-region-descriptor")
	desc, err := n.lookupRegion(ctx, rng.Start)
	if err != nil {
		return nil, err
	}
	if !desc.Range.ContainsRange(rng) {
		return nil, fmt.Errorf("core: lock range %v escapes region %v", rng, desc.Range)
	}
	if err := desc.Attrs.ACL.CheckMode(principal, mode); err != nil {
		return nil, err
	}
	if !desc.Allocated {
		// A cached or ring-served copy can trail an Allocate that already
		// committed at the home; re-check against the home once before
		// failing the gate.
		fresh, ferr := n.refreshDescriptor(ctx, desc)
		if ferr != nil || !fresh.Allocated {
			return nil, ErrNotAllocated
		}
		desc = fresh
	}
	off, _ := desc.Range.OffsetOf(rng.Start)
	pages := desc.Pages(off, rng.Size)
	n.trace("4:page-directory")
	n.trace("5:invoke-consistency-manager")

	cm, ok := n.cms[desc.Attrs.Protocol]
	if !ok {
		return nil, fmt.Errorf("core: no CM for protocol %v", desc.Attrs.Protocol)
	}
	if n.cfg.PerPageTransfers {
		acquired := make([]gaddr.Addr, 0, len(pages))
		rollback := func() {
			// Rollback must run even when the caller's ctx is already
			// canceled — holding half-acquired page locks would wedge the
			// region — so detach from cancellation but keep request values.
			rbCtx := context.WithoutCancel(ctx)
			for _, p := range acquired {
				//khazana:ignore-err clean-dirty=false release of a just-acquired page cannot lose data; the lock dies with us either way
				_ = cm.Release(rbCtx, desc, p, mode, false)
				_ = n.store.Unpin(p)
			}
		}
		for _, page := range pages {
			if err := n.acquireWithFailover(ctx, &desc, cm, page, mode); err != nil {
				rollback()
				return nil, err
			}
			n.store.Pin(page)
			acquired = append(acquired, page)
		}
	} else {
		// Batched path: the whole page set goes through the CM's batch
		// API — one pipelined exchange per home instead of one round
		// trip per page.
		acquired, err := n.acquireBatchWithFailover(ctx, &desc, cm, pages, mode)
		if err != nil {
			// Roll back whatever subset the batch left held. Pages are
			// not pinned yet, so only the locks need releasing; detach
			// from cancellation as above.
			rbCtx := context.WithoutCancel(ctx)
			//khazana:ignore-err clean-dirty=false release of just-acquired pages cannot lose data; the locks die with us either way
			_ = cm.ReleaseBatch(rbCtx, desc, acquired, mode, nil)
			return nil, err
		}
		for _, page := range pages {
			n.store.Pin(page)
		}
	}
	n.trace("11:lock-granted")

	lc := &LockContext{
		ID:    n.nextLID.Add(1),
		Range: rng,
		Mode:  mode,
		desc:  desc,
		pages: pages,
		dirty: make(map[gaddr.Addr]bool),
		node:  n,
	}
	ls := n.lockShardFor(lc.ID)
	ls.mu.Lock()
	ls.ctx[lc.ID] = lc
	ls.mu.Unlock()
	n.stats.LocksGranted.Add(1)
	n.mLockLatency.ObserveSince(lockStart)
	n.mBatchPages.Observe(uint64(len(pages)))

	// Feed the cluster manager's hint cache (§3.1).
	if n.manager != nil {
		n.manager.AddHint(desc.Range.Start, n.cfg.ID)
	}
	return lc, nil
}

// acquireWithFailover acquires one page, refreshing stale descriptors and
// promoting a secondary home if the primary is unreachable (§3.5).
func (n *Node) acquireWithFailover(ctx context.Context, desc **region.Descriptor, cm consistency.CM, page gaddr.Addr, mode ktypes.LockMode) error {
	n.trace("6:request-credentials")
	err := cm.Acquire(ctx, *desc, page, mode)
	if err == nil {
		n.trace("10:ownership-granted")
		return nil
	}
	// Stale home pointer: refresh the descriptor and retry once (§3.2).
	if fresh, ferr := n.refreshDescriptor(ctx, *desc); ferr == nil && fresh.Epoch > (*desc).Epoch {
		*desc = fresh
		if err = cm.Acquire(ctx, *desc, page, mode); err == nil {
			n.trace("10:ownership-granted")
			return nil
		}
	}
	// Unreachable home: try promoting a secondary (§3.5).
	if errors.Is(err, transport.ErrUnreachable) || isUnreachable(err) {
		if promoted, perr := n.promoteHome(ctx, *desc); perr == nil {
			*desc = promoted
			if err = cm.Acquire(ctx, *desc, page, mode); err == nil {
				n.trace("10:ownership-granted")
				return nil
			}
		}
	}
	return err
}

// acquireBatchWithFailover acquires a page set through the CM batch path,
// refreshing stale descriptors and promoting a secondary home if the
// primary is unreachable (§3.5), retrying only the pages not yet held. It
// returns every page that ended up acquired; on error the caller must
// release them to roll back.
func (n *Node) acquireBatchWithFailover(ctx context.Context, desc **region.Descriptor, cm consistency.CM, pages []gaddr.Addr, mode ktypes.LockMode) ([]gaddr.Addr, error) {
	n.trace("6:request-credentials")
	acquired, err := cm.AcquireBatch(ctx, *desc, pages, mode)
	if err == nil {
		n.trace("10:ownership-granted")
		return acquired, nil
	}
	remaining := missingPages(pages, acquired)
	// Stale home pointer: refresh the descriptor and retry once (§3.2).
	if fresh, ferr := n.refreshDescriptor(ctx, *desc); ferr == nil && fresh.Epoch > (*desc).Epoch {
		*desc = fresh
		more, retryErr := cm.AcquireBatch(ctx, *desc, remaining, mode)
		acquired = append(acquired, more...)
		if retryErr == nil {
			n.trace("10:ownership-granted")
			return acquired, nil
		}
		err = retryErr
		remaining = missingPages(remaining, more)
	}
	// Unreachable home: try promoting a secondary (§3.5).
	if errors.Is(err, transport.ErrUnreachable) || isUnreachable(err) {
		if promoted, perr := n.promoteHome(ctx, *desc); perr == nil {
			*desc = promoted
			more, retryErr := cm.AcquireBatch(ctx, *desc, remaining, mode)
			acquired = append(acquired, more...)
			if retryErr == nil {
				n.trace("10:ownership-granted")
				return acquired, nil
			}
			err = retryErr
		}
	}
	return acquired, err
}

// missingPages returns the pages (in order) absent from held.
func missingPages(pages, held []gaddr.Addr) []gaddr.Addr {
	if len(held) == 0 {
		return pages
	}
	heldSet := make(map[gaddr.Addr]bool, len(held))
	for _, p := range held {
		heldSet[p] = true
	}
	out := make([]gaddr.Addr, 0, len(pages)-len(held))
	for _, p := range pages {
		if !heldSet[p] {
			out = append(out, p)
		}
	}
	return out
}

// isUnreachable matches unreachable errors that crossed a process
// boundary and lost their type.
func isUnreachable(err error) bool {
	return err != nil && (errors.Is(err, transport.ErrUnreachable) ||
		strings.Contains(err.Error(), "unreachable"))
}

// isStaleHome matches failures that mean the cached descriptor pointed
// at the wrong home: the node is unreachable, or it answered that the
// region is not homed there (it migrated or failed over).
func isStaleHome(err error) bool {
	return err != nil && (isUnreachable(err) ||
		strings.Contains(err.Error(), "not homed here"))
}

// ackRequest sends msg to a node and folds the Ack-carried error into
// the Go error.
func (n *Node) ackRequest(ctx context.Context, to ktypes.NodeID, msg wire.Msg) error {
	resp, err := n.tr.Request(ctx, to, msg)
	if err != nil {
		return err
	}
	if ack, ok := resp.(*wire.Ack); ok && ack.Err != "" {
		return errors.New(ack.Err)
	}
	return nil
}

// forwardOp forwards a home-side operation to the region's primary home.
// On a stale-home failure (§3.2: "the use of a stale home pointer will
// simply result in a message being sent to a node that no longer is
// home") it drops the cached descriptor, re-resolves it — ring first —
// and retries once against the new home before giving up.
//
// Returns (nil, nil) on success; (fresh, nil) when the refresh reveals
// this node became the home, so the caller falls through to its local
// path; (nil, err) on failure. build constructs a fresh message per
// attempt so a retry never reuses a consumed frame.
func (n *Node) forwardOp(ctx context.Context, desc *region.Descriptor, build func() wire.Msg) (*region.Descriptor, error) {
	home, err := desc.PrimaryHome()
	if err != nil {
		return nil, err
	}
	start := desc.Range.Start
	err = n.ackRequest(ctx, home, build())
	if err == nil {
		n.rdir.Remove(start) // cached copy is now stale
		return nil, nil
	}
	if !isStaleHome(err) {
		return nil, err
	}
	fresh, ferr := n.refreshDescriptor(ctx, desc)
	if ferr != nil {
		return nil, err
	}
	newHome, herr := fresh.PrimaryHome()
	if herr != nil {
		return nil, err
	}
	if newHome == n.cfg.ID {
		return fresh, nil
	}
	if newHome != home {
		if rerr := n.ackRequest(ctx, newHome, build()); rerr == nil {
			n.rdir.Remove(start)
			return nil, nil
		}
	}
	return nil, err
}

// lockByID resolves a lock context.
func (n *Node) lockByID(id uint64) (*LockContext, error) {
	ls := n.lockShardFor(id)
	ls.mu.Lock()
	defer ls.mu.Unlock()
	lc, ok := ls.ctx[id]
	if !ok {
		return nil, ErrBadLock
	}
	return lc, nil
}

// Read copies n bytes starting at addr out of a locked range (§2: read
// subparts of a region by presenting its lock context). The result is a
// private copy; ReadView serves the same bytes without copying.
func (n *Node) Read(lc *LockContext, addr gaddr.Addr, count uint64) ([]byte, error) {
	if lc == nil || lc.node != n {
		return nil, ErrBadLock
	}
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if lc.freed {
		return nil, ErrBadLock
	}
	if count == 0 {
		return nil, nil
	}
	if !lc.Range.ContainsRange(gaddr.Range{Start: addr, Size: count}) {
		return nil, ErrOutOfRange
	}
	//khazana:block-ok lc.mu is per lock context; a disk-tier promotion under it stalls only this context's own callers (§3.4 tiered store)
	return n.readLocked(lc, addr, count)
}

// readLocked copies count bytes at addr into a fresh buffer. Caller
// holds lc.mu and has validated the range.
func (n *Node) readLocked(lc *LockContext, addr gaddr.Addr, count uint64) ([]byte, error) {
	out := make([]byte, count)
	ps := uint64(lc.desc.Attrs.PageSize)
	for covered := uint64(0); covered < count; {
		cur := addr.MustAdd(covered)
		page := cur.AlignDown(ps)
		pageOff := cur.Offset(ps)
		chunk := ps - pageOff
		if chunk > count-covered {
			chunk = count - covered
		}
		f, ok := n.store.Get(page)
		if ok {
			copy(out[covered:covered+chunk], f.Bytes()[pageOff:])
			f.Release()
		}
		// Missing page: never written; reads as zeroes (already zero).
		covered += chunk
	}
	n.trace("12-13:data-supplied")
	return out, nil
}

// ReadView returns count bytes at addr as a view aliasing the locally
// cached page frame — no copy is made. The view stays valid until the
// lock context is unlocked (the context pins the frame) and must be
// treated as read-only; callers that need the bytes past Unlock must
// copy them or use Read. Requests that span a page boundary fall back
// to the copying path, since the cache is page-granular and a
// contiguous multi-page view would require stitching.
func (n *Node) ReadView(lc *LockContext, addr gaddr.Addr, count uint64) ([]byte, error) {
	if lc == nil || lc.node != n {
		return nil, ErrBadLock
	}
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if lc.freed {
		return nil, ErrBadLock
	}
	if count == 0 {
		return nil, nil
	}
	if !lc.Range.ContainsRange(gaddr.Range{Start: addr, Size: count}) {
		return nil, ErrOutOfRange
	}
	// One plain increment (batched to the registry at Unlock) is the
	// entire telemetry cost of the cached-read hot path: no atomics, no
	// clock reads, no spans (see the E15 overhead gate).
	lc.viewCount++
	ps := uint64(lc.desc.Attrs.PageSize)
	pageOff := addr.Offset(ps)
	if pageOff+count > ps {
		//khazana:block-ok lc.mu is per lock context; a disk-tier promotion under it stalls only this context's own callers (§3.4 tiered store)
		return n.readLocked(lc, addr, count)
	}
	page := addr.AlignDown(ps)
	//khazana:block-ok lc.mu is per lock context; a disk-tier promotion under it stalls only this context's own callers (§3.4 tiered store)
	f, ok := n.store.Get(page)
	if !ok {
		// Never written: an allocated page reads as zeroes.
		f = frame.AllocZero(int(ps))
	}
	// Repeated views of the same hot page pin one reference, not one per
	// call, so a read loop does not grow the context without bound.
	if k := len(lc.views); k > 0 && lc.views[k-1] == f {
		f.Release()
	} else {
		//khazana:frame-owner pinned in the lock context, released at Unlock
		lc.views = append(lc.views, f)
	}
	n.trace("12-13:data-supplied")
	return f.Bytes()[pageOff : pageOff+count : pageOff+count], nil
}

// Write copies data into a locked range at addr (§2).
func (n *Node) Write(lc *LockContext, addr gaddr.Addr, data []byte) error {
	if lc == nil || lc.node != n {
		return ErrBadLock
	}
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if lc.freed {
		return ErrBadLock
	}
	if !lc.Mode.Writes() {
		return fmt.Errorf("%w: lock mode %v does not permit writes", ErrBadLock, lc.Mode)
	}
	if len(data) == 0 {
		return nil
	}
	if !lc.Range.ContainsRange(gaddr.Range{Start: addr, Size: uint64(len(data))}) {
		return ErrOutOfRange
	}
	ps := uint64(lc.desc.Attrs.PageSize)
	for covered := uint64(0); covered < uint64(len(data)); {
		cur := addr.MustAdd(covered)
		page := cur.AlignDown(ps)
		pageOff := cur.Offset(ps)
		chunk := ps - pageOff
		if chunk > uint64(len(data))-covered {
			chunk = uint64(len(data)) - covered
		}
		var f *frame.Frame
		//khazana:block-ok lc.mu is per lock context; a disk-tier promotion under it stalls only this context's own callers (§3.4 tiered store)
		switch got, ok := n.store.Get(page); {
		case chunk == ps:
			// Full-page overwrite: no need to read the old contents.
			if ok {
				got.Release()
			}
			f = frame.Alloc(int(ps))
		case ok:
			// Copy-on-write: the store (and any concurrent readers)
			// share the frame, so mutate a private copy.
			f = got.Exclusive()
		default:
			f = frame.AllocZero(int(ps))
		}
		copy(f.Bytes()[pageOff:], data[covered:covered+chunk])
		err := n.store.Put(page, f)
		f.Release()
		if err != nil {
			return err
		}
		lc.dirty[page] = true
		n.dir.Update(page, func(e *pagedir.Entry) { e.Dirty = true })
		covered += chunk
	}
	return nil
}

// Unlock releases a lock context. Release-side errors are not surfaced;
// they are retried in the background until they succeed (§3.5).
func (n *Node) Unlock(ctx context.Context, lc *LockContext) error {
	if lc == nil || lc.node != n {
		return ErrBadLock
	}
	lc.mu.Lock()
	if lc.freed {
		lc.mu.Unlock()
		return ErrBadLock
	}
	lc.freed = true
	views := lc.views
	lc.views = nil
	viewCount := lc.viewCount
	lc.viewCount = 0
	lc.mu.Unlock()
	if viewCount > 0 {
		n.mReadViews.Add(viewCount)
	}
	// Unpin the frames backing outstanding ReadView results; the views
	// become invalid here by contract.
	for _, f := range views {
		f.Release()
	}

	ls := n.lockShardFor(lc.ID)
	ls.mu.Lock()
	delete(ls.ctx, lc.ID)
	ls.mu.Unlock()

	cm := n.cms[lc.desc.Attrs.Protocol]
	var fl telemetry.Flight
	ctx, fl = telemetry.StartSpan(ctx, n.rec, uint32(n.cfg.ID), "op.unlock")
	releaseStart := time.Now()
	defer func() {
		n.mReleaseLatency.ObserveSince(releaseStart)
		fl.Finish()
	}()
	if n.cfg.PerPageTransfers {
		for _, page := range lc.pages {
			dirty := lc.dirty[page]
			if err := cm.Release(ctx, lc.desc, page, lc.Mode, dirty); err != nil {
				// §3.5: errors while releasing resources are not
				// reflected to the client; keep trying in the
				// background. The page stays marked dirty so the local
				// storage system will not discard it before the retried
				// release delivers it (§3.4).
				n.queueRetry(retryOp{desc: lc.desc, page: page, mode: lc.Mode, dirty: dirty})
			} else if dirty {
				n.dir.Update(page, func(e *pagedir.Entry) { e.Dirty = false })
			}
			_ = n.store.Unpin(page)
		}
		return nil
	}
	// Batched path: one release pipeline for the whole page set, with
	// per-page status back. Only the pages whose release failed go to the
	// §3.5 background-retry queue; their Dirty mark stays so the storage
	// system will not discard them before the retried release delivers
	// them (§3.4).
	errs := cm.ReleaseBatch(ctx, lc.desc, lc.pages, lc.Mode, lc.dirty)
	for i, page := range lc.pages {
		dirty := lc.dirty[page]
		var rerr error
		if errs != nil {
			rerr = errs[i]
		}
		if rerr != nil {
			n.queueRetry(retryOp{desc: lc.desc, page: page, mode: lc.Mode, dirty: dirty})
		} else if dirty {
			n.dir.Update(page, func(e *pagedir.Entry) { e.Dirty = false })
		}
		_ = n.store.Unpin(page)
	}
	return nil
}
