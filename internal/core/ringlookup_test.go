package core

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
	"khazana/internal/region"
	"khazana/internal/ring"
)

// settleRing waits for every node's in-flight announces to drain.
func settleRing(nodes []*Node) {
	for _, n := range nodes {
		n.RingSettle()
	}
}

// heartbeatAll pushes one heartbeat from every non-manager node so the
// whole cluster converges on the manager's current membership view (and
// each node's ring follows it).
func heartbeatAll(nodes []*Node) {
	for _, n := range nodes {
		n.SendHeartbeat()
	}
}

// TestColdLookupSingleflight proves the per-bucket singleflight: N
// concurrent cold lookups for one address collapse into exactly one
// remote ring lookup, with every waiter satisfied from the directory the
// leader filled. Run under -race in CI.
func TestColdLookupSingleflight(t *testing.T) {
	_, nodes := testCluster(t, 3)
	ctx := context.Background()
	start := mkRegion(t, nodes[0], 4096, region.Attrs{}, "alice")
	nodes[0].RingSettle()

	n3 := nodes[2]
	// Make sure node 3 does not own the bucket itself, so the one flight
	// is genuinely remote; if it does own it, the local table hit still
	// counts as exactly one ring hit.
	const workers = 32
	var wg sync.WaitGroup
	errs := make([]error, workers)
	barrier := make(chan struct{})
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-barrier
			_, errs[i] = n3.GetAttr(ctx, start)
		}(i)
	}
	close(barrier)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if got := n3.Statistics().RingHits.Load(); got != 1 {
		t.Fatalf("RingHits = %d, want exactly 1 (singleflight should collapse %d misses)", got, workers)
	}
	if walks := n3.Statistics().TreeWalks.Load(); walks != 0 {
		t.Fatalf("TreeWalks = %d, want 0", walks)
	}
	if hits := n3.Statistics().ClusterHits.Load(); hits != 0 {
		t.Fatalf("ClusterHits = %d, want 0", hits)
	}
	if dir := n3.Statistics().DirHits.Load(); dir != workers-1 {
		t.Fatalf("DirHits = %d, want %d (every waiter re-checks the directory)", dir, workers-1)
	}
}

// TestRingMatchesTreeWalk is the ring-vs-ground-truth property test:
// descriptors resolved through the one-hop ring must agree with the
// address map tree walk for every region, before and after membership
// churn.
func TestRingMatchesTreeWalk(t *testing.T) {
	net, nodes := testCluster(t, 4)
	ctx := context.Background()

	// Regions of several sizes homed on several nodes; gigabyte-scale
	// ones span multiple ring buckets.
	sizes := []uint64{4096, 1 << 20, ring.BucketSize + 4096, 3 * 4096}
	var starts []gaddr.Addr
	for i := 0; i < 12; i++ {
		home := nodes[i%3]
		starts = append(starts, mkRegion(t, home, sizes[i%len(sizes)], region.Attrs{}, "alice"))
	}

	check := func(phase string) {
		t.Helper()
		reader := nodes[3]
		for _, s := range starts {
			got, err := reader.GetAttr(ctx, s)
			if err != nil {
				t.Fatalf("%s: GetAttr(%v): %v", phase, s, err)
			}
			entry, _, err := reader.AddressMap().Lookup(ctx, s)
			if err != nil {
				t.Fatalf("%s: tree walk %v: %v", phase, s, err)
			}
			if got.Range != entry.Range {
				t.Fatalf("%s: ring answer %v disagrees with tree walk %v", phase, got.Range, entry.Range)
			}
		}
	}

	settleRing(nodes)
	check("steady")
	if walks := nodes[3].Statistics().TreeWalks.Load(); walks != 0 {
		t.Fatalf("steady state fell back to the tree walk %d times", walks)
	}

	// Membership churn: two more nodes join; every node re-syncs its
	// ring, homes re-announce moved partitions.
	grown := nodes
	for i := 5; i <= 6; i++ {
		id := ktypes.NodeID(i)
		tr, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		node, err := NewNode(Config{
			ID:             id,
			Transport:      tr,
			StoreDir:       filepath.Join(t.TempDir(), fmt.Sprintf("n%d", id)),
			ClusterManager: 1,
			MapHome:        1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := node.Start(ctx); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = node.Close() })
		grown = append(grown, node)
	}
	heartbeatAll(grown)
	settleRing(grown)
	// Clear the reader's directory so every lookup is cold again and must
	// prove the rebalanced ring still answers correctly.
	for _, s := range starts {
		nodes[3].rdir.Remove(s)
	}
	check("post-churn")
}

// TestRebalanceOnlyMovedReannounce proves membership change re-announces
// only the descriptors whose owner set actually moved: the consistent
// hash keeps the rest pinned, so rebalance cost is a fraction of the
// descriptor count, not all of it.
func TestRebalanceOnlyMovedReannounce(t *testing.T) {
	net, nodes := testCluster(t, 4)
	ctx := context.Background()

	// One-gigabyte regions land in distinct ring buckets, so their owner
	// sets move independently.
	const regions = 16
	for i := 0; i < regions; i++ {
		mkRegion(t, nodes[0], ring.BucketSize, region.Attrs{}, "alice")
	}
	settleRing(nodes)
	if moves := nodes[0].mRingMoves.Load(); moves != 0 {
		t.Fatalf("stable membership counted %d rebalance moves", moves)
	}

	id := ktypes.NodeID(5)
	tr, err := net.Attach(id)
	if err != nil {
		t.Fatal(err)
	}
	node, err := NewNode(Config{
		ID:             id,
		Transport:      tr,
		StoreDir:       filepath.Join(t.TempDir(), "n5"),
		ClusterManager: 1,
		MapHome:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = node.Close() })

	// The home hears about the new member on its next heartbeat and
	// rebalances.
	nodes[0].SendHeartbeat()
	settleRing(nodes)
	moves := nodes[0].mRingMoves.Load()
	if moves == 0 {
		t.Fatal("growing the ring moved no partitions at all")
	}
	if moves >= regions {
		t.Fatalf("rebalance re-announced %d of %d descriptors; consistent hashing should move only a fraction", moves, regions)
	}
	t.Logf("rebalance moved %d of %d descriptors", moves, regions)
}
