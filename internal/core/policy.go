package core

import (
	"context"
	"sync"
	"time"

	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
)

// Load-aware migration policy. The paper sets the goal of "caching
// policies that balance the needs for load balancing, low latency access
// to data, availability behavior, and resource constraints" (§2) and
// lists "resource- and load-aware migration and replication policies" as
// future work (§7). This is a deliberately simple instance: each home
// tracks which node generates the consistency traffic for each region it
// homes, and when one remote node dominates, the region migrates there.

// accessTracker counts per-region consistency traffic by requester.
type accessTracker struct {
	mu sync.Mutex
	// counts[regionStart][node] = requests since the last decision.
	counts map[gaddr.Addr]map[ktypes.NodeID]uint64
}

func newAccessTracker() *accessTracker {
	return &accessTracker{counts: make(map[gaddr.Addr]map[ktypes.NodeID]uint64)}
}

// record notes one request from node for the region starting at start.
func (a *accessTracker) record(start gaddr.Addr, node ktypes.NodeID) {
	a.mu.Lock()
	defer a.mu.Unlock()
	m, ok := a.counts[start]
	if !ok {
		m = make(map[ktypes.NodeID]uint64)
		a.counts[start] = m
	}
	m[node]++
}

// dominant returns the node with the most recorded requests for the
// region and its share of the total, resetting the window.
func (a *accessTracker) dominant(start gaddr.Addr) (ktypes.NodeID, uint64, uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	m := a.counts[start]
	var best ktypes.NodeID
	var bestCount, total uint64
	for node, c := range m {
		total += c
		if c > bestCount {
			best, bestCount = node, c
		}
	}
	delete(a.counts, start)
	return best, bestCount, total
}

// forget drops a region's window (after unreserve or migration).
func (a *accessTracker) forget(start gaddr.Addr) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.counts, start)
}

// MigrationPolicy configures load-aware auto-migration.
type MigrationPolicy struct {
	// MinRequests is the number of tracked requests a region needs in a
	// window before a decision is made.
	MinRequests uint64
	// DominanceNum/DominanceDen: the dominant remote node must account
	// for at least Num/Den of the window's traffic.
	DominanceNum, DominanceDen uint64
}

// DefaultMigrationPolicy migrates when one remote node generated at least
// three quarters of a 16+ request window.
func DefaultMigrationPolicy() MigrationPolicy {
	return MigrationPolicy{MinRequests: 16, DominanceNum: 3, DominanceDen: 4}
}

// RunMigrationPolicy makes one pass over the regions homed here and
// migrates any region whose traffic is dominated by a single remote node.
// It returns the regions moved. Busy regions are skipped and retried on
// the next pass.
func (n *Node) RunMigrationPolicy(ctx context.Context, p MigrationPolicy) []gaddr.Addr {
	if p.DominanceDen == 0 {
		p = DefaultMigrationPolicy()
	}
	var moved []gaddr.Addr
	for _, start := range n.authStarts() {
		desc := n.authDescByStart(start)
		if desc == nil {
			continue
		}
		if home, err := desc.PrimaryHome(); err != nil || home != n.cfg.ID {
			continue
		}
		node, count, total := n.access.dominant(start)
		if total < p.MinRequests || node == ktypes.NilNode || node == n.cfg.ID {
			continue
		}
		if count*p.DominanceDen < total*p.DominanceNum {
			continue
		}
		if err := n.MigrateRegion(ctx, start, node, desc.Attrs.ACL.Owner); err != nil {
			continue // busy or unreachable; retry next pass
		}
		moved = append(moved, start)
	}
	return moved
}

// migrationLoop drives the policy in the background when configured.
func (n *Node) migrationLoop(interval time.Duration, p MigrationPolicy) {
	defer n.done.Done()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			n.RunMigrationPolicy(ctx, p)
			cancel()
		case <-n.stop:
			return
		}
	}
}
