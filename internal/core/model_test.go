package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
	"khazana/internal/region"
)

// TestCREWMonotonicRegister is a model-based check of CREW's strict
// consistency (§2: "Currently, Khazana can support strictly consistent
// objects", citing Lamport). The region holds a counter; writers increment
// it under write locks, and after each unlock they publish the committed
// value to a shared atomic floor. Every reader asserts that the value it
// observes under a read lock is at least the floor it loaded before
// acquiring — i.e., a read never observes a state older than any write
// whose release happened before the read's acquire.
func TestCREWMonotonicRegister(t *testing.T) {
	_, nodes := testCluster(t, 4)
	ctx := context.Background()
	start := mkRegion(t, nodes[0], 4096, region.Attrs{}, "")

	var committed atomic.Uint64
	var wg sync.WaitGroup
	errs := make(chan error, 8)

	writer := func(n *Node) {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			lc, err := n.Lock(ctx, gaddr.Range{Start: start, Size: 8}, ktypes.LockWrite, "")
			if err != nil {
				errs <- err
				return
			}
			buf, err := n.Read(lc, start, 8)
			if err != nil {
				errs <- err
				return
			}
			v := binary.LittleEndian.Uint64(buf) + 1
			out := make([]byte, 8)
			binary.LittleEndian.PutUint64(out, v)
			if err := n.Write(lc, start, out); err != nil {
				errs <- err
				return
			}
			if err := n.Unlock(ctx, lc); err != nil {
				errs <- err
				return
			}
			// v is committed: later read-acquires must observe >= v.
			for {
				cur := committed.Load()
				if v <= cur || committed.CompareAndSwap(cur, v) {
					break
				}
			}
		}
	}
	reader := func(n *Node) {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			floor := committed.Load()
			lc, err := n.Lock(ctx, gaddr.Range{Start: start, Size: 8}, ktypes.LockRead, "")
			if err != nil {
				errs <- err
				return
			}
			buf, err := n.Read(lc, start, 8)
			if err != nil {
				errs <- err
				return
			}
			if err := n.Unlock(ctx, lc); err != nil {
				errs <- err
				return
			}
			got := binary.LittleEndian.Uint64(buf)
			if got < floor {
				t.Errorf("%v observed stale value %d < committed floor %d", n.ID(), got, floor)
				return
			}
		}
	}
	// Two writers and two readers on distinct nodes.
	wg.Add(4)
	go writer(nodes[1])
	go writer(nodes[2])
	go reader(nodes[3])
	go reader(nodes[0])
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Final value equals the total number of increments (no lost
	// updates).
	lc, err := nodes[0].Lock(ctx, gaddr.Range{Start: start, Size: 8}, ktypes.LockRead, "")
	if err != nil {
		t.Fatal(err)
	}
	buf, _ := nodes[0].Read(lc, start, 8)
	_ = nodes[0].Unlock(ctx, lc)
	if got := binary.LittleEndian.Uint64(buf); got != 60 {
		t.Fatalf("final counter = %d, want 60", got)
	}
}

// TestReleaseConsistencyModel checks the RC contract analogue: an acquire
// observes every write whose release completed before the acquire began
// (single-writer regime, where release consistency is well-defined).
func TestReleaseConsistencyModel(t *testing.T) {
	_, nodes := testCluster(t, 3)
	ctx := context.Background()
	attrs := region.Attrs{Protocol: region.Release}
	start := mkRegion(t, nodes[0], 4096, attrs, "")

	var committed atomic.Uint64
	done := make(chan struct{})
	var readerErr error
	go func() {
		defer close(done)
		n := nodes[2]
		for i := 0; i < 50; i++ {
			floor := committed.Load()
			lc, err := n.Lock(ctx, gaddr.Range{Start: start, Size: 8}, ktypes.LockRead, "")
			if err != nil {
				readerErr = err
				return
			}
			buf, err := n.Read(lc, start, 8)
			if err != nil {
				readerErr = err
				return
			}
			_ = n.Unlock(ctx, lc)
			if got := binary.LittleEndian.Uint64(buf); got < floor {
				readerErr = errStale{got, floor}
				return
			}
		}
	}()
	w := nodes[1]
	for v := uint64(1); v <= 50; v++ {
		lc, err := w.Lock(ctx, gaddr.Range{Start: start, Size: 8}, ktypes.LockWrite, "")
		if err != nil {
			t.Fatal(err)
		}
		out := make([]byte, 8)
		binary.LittleEndian.PutUint64(out, v)
		if err := w.Write(lc, start, out); err != nil {
			t.Fatal(err)
		}
		if err := w.Unlock(ctx, lc); err != nil {
			t.Fatal(err)
		}
		committed.Store(v)
	}
	<-done
	if readerErr != nil {
		t.Fatal(readerErr)
	}
}

type errStale struct{ got, floor uint64 }

func (e errStale) Error() string {
	return fmt.Sprintf("release consistency violated: observed %d < committed floor %d", e.got, e.floor)
}
