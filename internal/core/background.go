package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"khazana/internal/addrmap"
	"khazana/internal/frame"
	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
	"khazana/internal/pagedir"
	"khazana/internal/region"
	"khazana/internal/wire"
)

// --- address map mutation routing --------------------------------------------
//
// All map mutations execute at the map region's home node, serialized
// under mapMu; other nodes route them there with the Map* messages. Reads
// (tree walks) run anywhere against release-consistent replicas.

// mapReserveRange grants a chunk of unreserved address space.
func (n *Node) mapReserveRange(ctx context.Context, size, align uint64) (gaddr.Range, error) {
	if n.cfg.ID == n.cfg.MapHome {
		n.mapMu.Lock()
		defer n.mapMu.Unlock()
		//khazana:block-ok the map home serializes all map mutations under mapMu by design (see package comment); the CM gate wait is the reservation protocol itself
		return n.amap.ReserveRange(ctx, size, align)
	}
	resp, err := n.tr.Request(ctx, n.cfg.MapHome, &wire.ReserveSpace{From: n.cfg.ID, Size: size})
	if err != nil {
		return gaddr.Range{}, err
	}
	grant, ok := resp.(*wire.SpaceGrant)
	if !ok {
		return gaddr.Range{}, fmt.Errorf("core: unexpected reply %T", resp)
	}
	if grant.Err != "" {
		return gaddr.Range{}, errors.New(grant.Err)
	}
	return grant.Range, nil
}

// mapInsert records a region in the address map.
func (n *Node) mapInsert(ctx context.Context, r gaddr.Range, homes []ktypes.NodeID) error {
	if n.cfg.ID == n.cfg.MapHome {
		n.mapMu.Lock()
		defer n.mapMu.Unlock()
		//khazana:block-ok map mutations serialize under mapMu at the map home by design
		return n.amap.Insert(ctx, mapEntry(r, homes))
	}
	return n.mapRPC(ctx, &wire.MapInsert{Range: r, Homes: homes})
}

// mapRemove deletes a region from the address map.
func (n *Node) mapRemove(ctx context.Context, start gaddr.Addr) error {
	if n.cfg.ID == n.cfg.MapHome {
		n.mapMu.Lock()
		defer n.mapMu.Unlock()
		//khazana:block-ok map mutations serialize under mapMu at the map home by design
		return n.amap.Remove(ctx, start)
	}
	return n.mapRPC(ctx, &wire.MapRemove{Start: start})
}

// mapSetHomes updates a region's home list in the address map.
func (n *Node) mapSetHomes(ctx context.Context, start gaddr.Addr, homes []ktypes.NodeID) error {
	if n.cfg.ID == n.cfg.MapHome {
		n.mapMu.Lock()
		defer n.mapMu.Unlock()
		//khazana:block-ok map mutations serialize under mapMu at the map home by design
		return n.amap.SetHomes(ctx, start, homes)
	}
	return n.mapRPC(ctx, &wire.MapSetHomes{Start: start, Homes: homes})
}

func (n *Node) mapRPC(ctx context.Context, m wire.Msg) error {
	resp, err := n.tr.Request(ctx, n.cfg.MapHome, m)
	if err != nil {
		return err
	}
	if ack, ok := resp.(*wire.Ack); ok && ack.Err != "" {
		return errors.New(ack.Err)
	}
	return nil
}

func mapEntry(r gaddr.Range, homes []ktypes.NodeID) addrmap.Entry {
	return addrmap.Entry{Range: r, Homes: homes}
}

// --- background loops ------------------------------------------------------

// heartbeatLoop reports liveness, free-space hints, and recently homed
// regions to the cluster manager (§3.1).
func (n *Node) heartbeatLoop() {
	defer n.done.Done()
	ticker := time.NewTicker(n.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			n.SendHeartbeat()
		case <-n.stop:
			return
		}
	}
}

// SendHeartbeat sends one heartbeat (also callable by tests and tools).
func (n *Node) SendHeartbeat() {
	if n.manager != nil {
		return // the manager's own liveness is implicit
	}
	// Fold a timestamped ping into the heartbeat tick so the RTT
	// histogram tracks the manager link without extra background load.
	if n.mPingRTT != nil {
		pingCtx, pingCancel := context.WithTimeout(context.Background(), 2*time.Second)
		//khazana:ignore-err an unreachable manager shows up as heartbeat failure below; the RTT sample is best effort
		_, _ = n.PingPeer(pingCtx, n.cfg.ClusterManager)
		pingCancel()
	}
	total, max := n.FreeSpace()
	regions := n.authStarts()
	if len(regions) > 32 {
		regions = regions[:32]
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	resp, err := n.tr.Request(ctx, n.cfg.ClusterManager, &wire.Heartbeat{
		Node:      n.cfg.ID,
		FreeTotal: total,
		FreeMax:   max,
		Regions:   regions,
	})
	if err != nil {
		return
	}
	if view, ok := resp.(*wire.ClusterView); ok {
		n.setMembers(view.Members)
		n.ringSync(ctx)
	}
}

// retryLoop drains the background release-retry queue (§3.5: "the Khazana
// system keeps trying the operation in the background until it
// succeeds").
func (n *Node) retryLoop() {
	defer n.done.Done()
	ticker := time.NewTicker(n.cfg.RetryInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			n.RunRetries()
		case <-n.stop:
			return
		}
	}
}

// queueRetry enqueues a failed release-side operation on the shard owning
// its page, so concurrent releases on disjoint regions queue without
// contending.
func (n *Node) queueRetry(op retryOp) {
	rs := n.retryShardFor(op.page)
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.ops = append(rs.ops, op)
}

// PendingRetries reports the queue length across all shards.
func (n *Node) PendingRetries() int {
	total := 0
	for i := range n.retryShards {
		rs := &n.retryShards[i]
		rs.mu.Lock()
		total += len(rs.ops)
		rs.mu.Unlock()
	}
	return total
}

// RunRetries attempts every queued release once (also callable by tests).
// CREW retries bound for the same (home, region) pair ride one batched
// ReleaseBatch RPC — the same pipeline the foreground release path uses —
// instead of one round trip per page; the other protocols notify the home
// per page.
func (n *Node) RunRetries() {
	// Drain every shard first (shard locks are taken one at a time, never
	// nested), then retry the combined queue so cross-shard operations
	// still batch by home and region.
	var ops []retryOp
	for i := range n.retryShards {
		rs := &n.retryShards[i]
		rs.mu.Lock()
		ops = append(ops, rs.ops...)
		rs.ops = nil
		rs.mu.Unlock()
	}
	if len(ops) == 0 {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	type groupKey struct {
		home  ktypes.NodeID
		start gaddr.Addr
	}
	// Batches group by region as well as home: the receiver routes the
	// whole batch by its first page's region.
	crew := make(map[groupKey][]retryOp)
	var crewOrder []groupKey
	type pushKey struct {
		home  ktypes.NodeID
		start gaddr.Addr
		proto region.Protocol
	}
	push := make(map[pushKey][]retryOp)
	var pushOrder []pushKey
	for _, op := range ops {
		desc, err := n.lookupRegion(ctx, op.page)
		if err != nil {
			n.queueRetry(op)
			continue
		}
		home, err := desc.PrimaryHome()
		if err != nil {
			n.queueRetry(op)
			continue
		}
		if home == n.cfg.ID {
			// We became the home; nothing to notify.
			n.stats.ReleaseRetries.Add(1)
			continue
		}
		switch desc.Attrs.Protocol {
		case region.CREW:
			key := groupKey{home: home, start: desc.Range.Start}
			if _, seen := crew[key]; !seen {
				crewOrder = append(crewOrder, key)
			}
			crew[key] = append(crew[key], op)
		case region.Release, region.Eventual:
			if !op.dirty {
				n.stats.ReleaseRetries.Add(1)
				continue
			}
			key := pushKey{home: home, start: desc.Range.Start, proto: desc.Attrs.Protocol}
			if _, seen := push[key]; !seen {
				pushOrder = append(pushOrder, key)
			}
			push[key] = append(push[key], op)
		default:
			n.stats.ReleaseRetries.Add(1)
		}
	}
	for _, key := range crewOrder {
		n.retryCrewBatch(ctx, key.home, crew[key])
	}
	for _, key := range pushOrder {
		n.retryPushBatch(ctx, key.home, key.proto, push[key])
	}
}

// retryPushBatch redoes the network half of failed dirty releases under
// the release or eventual protocol: one UpdateBatch to the home covering
// every queued page of one region (§3.5), instead of one UpdatePush per
// page. Per-item failures requeue individually.
func (n *Node) retryPushBatch(ctx context.Context, home ktypes.NodeID, proto region.Protocol, ops []retryOp) {
	batch := &wire.UpdateBatch{From: n.cfg.ID, Items: make([]wire.UpdateItem, 0, len(ops))}
	// Frames stay referenced by the batch until the request (and its
	// marshal) completes, so the views in Data never dangle.
	defer batch.ReleaseFrames()
	live := make([]retryOp, 0, len(ops))
	for _, op := range ops {
		f, ok := n.store.Get(op.page)
		if !ok {
			// The page left the node since the release failed; the
			// disk-eviction path only lets a dirty page go after pushing
			// it home (§3.4), so the update has already been delivered.
			// Pushing nil here would clobber it.
			n.stats.ReleaseRetries.Add(1)
			continue
		}
		item := wire.UpdateItem{Page: op.page, Origin: n.cfg.ID}
		if proto == region.Eventual {
			item.Stamp = n.now()
		}
		item.SetFrame(f)
		f.Release()
		batch.Items = append(batch.Items, item)
		live = append(live, op)
	}
	if len(batch.Items) == 0 {
		return
	}
	resp, err := n.tr.Request(ctx, home, batch)
	if err != nil {
		for _, op := range live {
			n.queueRetry(op)
		}
		return
	}
	// A release home answers per-item status; an eventual home answers an
	// authoritative batch, meaning every item was processed.
	var failed func(i int) bool
	if r, ok := resp.(*wire.UpdateBatchResp); ok {
		failed = func(i int) bool { return i < len(r.Errs) && r.Errs[i] != "" }
	} else {
		failed = func(int) bool { return false }
	}
	for i, op := range live {
		if failed(i) {
			n.queueRetry(op)
			continue
		}
		// Delivered: the local copy is no longer the only holder of the
		// update, so it may be victimized again.
		n.dir.Update(op.page, func(e *pagedir.Entry) { e.Dirty = false })
		n.stats.ReleaseRetries.Add(1)
	}
}

// retryCrewBatch redoes the network half of failed CREW releases bound
// for one home as a single ReleaseBatch RPC (§3.5). The local lock state
// was already torn down when the releases first ran, so the batch is
// assembled raw rather than through the CM (whose ReleaseBatch would try
// to release local locks again); the home's lock table tolerates
// re-releasing a lock the requester no longer holds.
func (n *Node) retryCrewBatch(ctx context.Context, home ktypes.NodeID, ops []retryOp) {
	batch := &wire.ReleaseBatch{From: n.cfg.ID, Items: make([]wire.ReleaseItem, 0, len(ops))}
	live := make([]retryOp, 0, len(ops))
	//khazana:frame-owner released after the batch RPC below
	frames := make([]*frame.Frame, 0, len(ops))
	defer func() {
		for _, f := range frames {
			f.Release()
		}
	}()
	for _, op := range ops {
		item := wire.ReleaseItem{Page: op.page, Mode: op.mode, Dirty: op.dirty}
		if op.dirty {
			f, ok := n.store.Get(op.page)
			if !ok {
				// Already delivered by the disk-eviction path (§3.4).
				n.stats.ReleaseRetries.Add(1)
				continue
			}
			item.Data = f.Bytes()
			frames = append(frames, f)
		}
		batch.Items = append(batch.Items, item)
		live = append(live, op)
	}
	if len(batch.Items) == 0 {
		return
	}
	resp, err := n.tr.Request(ctx, home, batch)
	if err != nil {
		for _, op := range live {
			n.queueRetry(op)
		}
		return
	}
	br, ok := resp.(*wire.ReleaseBatchResp)
	for i, op := range live {
		if ok && i < len(br.Errs) && br.Errs[i] != "" {
			n.queueRetry(op)
			continue
		}
		if op.dirty {
			n.dir.Update(op.page, func(e *pagedir.Entry) { e.Dirty = false })
		}
		n.stats.ReleaseRetries.Add(1)
	}
}

// replicaLoop maintains each homed region's minimum replica count (§3.5).
func (n *Node) replicaLoop() {
	defer n.done.Done()
	ticker := time.NewTicker(n.cfg.ReplicaInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			n.MaintainReplicas()
		case <-n.stop:
			return
		}
	}
}

// MaintainReplicas pushes page copies and secondary descriptors to other
// nodes until every homed region with MinReplicas > 1 has enough homes
// (also callable by tests and tools).
func (n *Node) MaintainReplicas() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, start := range n.authStarts() {
		desc := n.authDescByStart(start)
		if desc == nil || desc.Attrs.MinReplicas <= 1 {
			continue
		}
		if desc, changed := n.ensureHomes(ctx, desc); changed {
			n.pushReplicas(ctx, desc)
		} else {
			n.pushReplicas(ctx, desc)
		}
	}
}

// ensureHomes extends the region's home list with alive members up to
// MinReplicas, recording the change in the map and the descriptor.
func (n *Node) ensureHomes(ctx context.Context, desc *region.Descriptor) (*region.Descriptor, bool) {
	want := int(desc.Attrs.MinReplicas)
	if len(desc.Home) >= want {
		return desc, false
	}
	alive := n.Members()
	homes := append([]ktypes.NodeID(nil), desc.Home...)
	for _, m := range alive {
		if len(homes) >= want {
			break
		}
		if !containsNode(homes, m) {
			homes = append(homes, m)
		}
	}
	if len(homes) == len(desc.Home) {
		return desc, false
	}
	n.descMu.Lock()
	d, ok := n.authDescs[desc.Range.Start]
	if !ok {
		n.descMu.Unlock()
		return desc, false
	}
	d.Home = homes
	d.Epoch++
	out := d.Clone()
	n.descMu.Unlock()
	n.rdir.Insert(out)
	_ = n.mapSetHomes(ctx, out.Range.Start, homes)
	// Record the membership change in the region's replicated log so
	// standbys learn the grown home list through the same channel as
	// release deltas (best effort: a deposed or not-yet-elected home
	// skips the entry and the next round repeats it).
	_ = n.repl.Append(ctx, out, wire.ReplEntry{
		Op:    wire.ReplOpHomes,
		Nodes: homes,
		Val:   out.Epoch,
	})
	// Ship the descriptor to the new secondary homes so they can serve
	// lookups and accept promotion.
	for _, h := range homes[1:] {
		if h == n.cfg.ID {
			continue
		}
		//khazana:ignore-err descriptor shipping repeats on the next replica-maintenance round; an unreachable secondary just lags
		_, _ = n.tr.Request(ctx, h, &wire.AttrSet{Desc: out, Principal: out.Attrs.ACL.Owner})
	}
	n.ringAnnounce(ctx, out)
	return out, true
}

// pushReplicas copies locally stored pages of the region to its secondary
// homes.
func (n *Node) pushReplicas(ctx context.Context, desc *region.Descriptor) {
	if len(desc.Home) < 2 {
		return
	}
	for _, page := range desc.Pages(0, desc.Range.Size) {
		f, ok := n.store.Get(page)
		if !ok {
			continue // never written; zero-fills everywhere
		}
		// One frame reference backs the sends to every secondary home;
		// the messages carry only byte views.
		entry, _ := n.dir.Lookup(page)
		for _, h := range desc.Home[1:] {
			if h == n.cfg.ID || entry.InCopyset(h) {
				continue
			}
			if _, err := n.tr.Request(ctx, h, &wire.ReplicaPut{Page: page, Data: f.Bytes(), Version: entry.Version, From: n.cfg.ID}); err == nil {
				n.dir.Update(page, func(e *pagedir.Entry) { e.AddSharer(h) })
				// Each push here is a repair: a secondary that should
				// already hold the page (write-through or an earlier
				// maintenance round) but does not.
				n.mReplicaRepairs.Add(1)
			}
		}
		f.Release()
	}
}

func containsNode(ns []ktypes.NodeID, id ktypes.NodeID) bool {
	for _, n := range ns {
		if n == id {
			return true
		}
	}
	return false
}
