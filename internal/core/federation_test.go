package core

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
	"khazana/internal/region"
	"khazana/internal/transport"
	"khazana/internal/wire"
)

// testFederation builds two clusters on one network: nodes 1-3 form
// cluster A (manager n1, which is also the global map home and genesis)
// and nodes 4-6 form cluster B (manager n4). The two managers are peered
// (§3.1: multiple clusters organized into a hierarchy; managers represent
// their cluster during inter-cluster communication).
func testFederation(t *testing.T) (*transport.Network, []*Node) {
	t.Helper()
	net := transport.NewNetwork()
	nodes := make([]*Node, 6)
	for i := 0; i < 6; i++ {
		id := ktypes.NodeID(i + 1)
		tr, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		manager := ktypes.NodeID(1)
		var peers []ktypes.NodeID
		if i >= 3 {
			manager = 4
		}
		if id == 1 {
			peers = []ktypes.NodeID{4}
		}
		if id == 4 {
			peers = []ktypes.NodeID{1}
		}
		cfg := Config{
			ID:             id,
			Transport:      tr,
			StoreDir:       filepath.Join(t.TempDir(), fmt.Sprintf("n%d", id)),
			ClusterManager: manager,
			PeerManagers:   peers,
			MapHome:        1,
			Genesis:        id == 1,
		}
		node, err := NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := node.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = node.Close() })
		nodes[i] = node
	}
	return net, nodes
}

func TestFederationCrossClusterLookup(t *testing.T) {
	_, nodes := testFederation(t)
	ctx := context.Background()

	// Region homed on node 5 (cluster B); its manager learns about it
	// via heartbeat.
	start := mkRegion(t, nodes[4], 4096, region.Attrs{}, "")
	lc, err := nodes[4].Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockWrite, "")
	if err != nil {
		t.Fatal(err)
	}
	_ = nodes[4].Write(lc, start, []byte("cluster B data"))
	_ = nodes[4].Unlock(ctx, lc)
	nodes[4].SendHeartbeat() // n5 -> manager n4

	// Node 2 (cluster A) resolves the region. Its manager (n1) has no
	// local hint and its cluster walk misses (no cluster-A node caches
	// the region), so the query is forwarded to manager n4.
	rlc, err := nodes[1].Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockRead, "")
	if err != nil {
		t.Fatalf("cross-cluster lock: %v", err)
	}
	got, _ := nodes[1].Read(rlc, start, 14)
	_ = nodes[1].Unlock(ctx, rlc)
	if string(got) != "cluster B data" {
		t.Fatalf("cross-cluster read %q", got)
	}
	// The forwarded answer is cached as a local hint at manager n1.
	if hints, found := nodes[0].Manager().Query(start); !found || len(hints) == 0 {
		t.Fatalf("manager A did not cache the inter-cluster hint: %v, %v", hints, found)
	}
}

func TestFederationForwardedQueriesDoNotLoop(t *testing.T) {
	_, nodes := testFederation(t)
	ctx := context.Background()
	// Ask cluster A's manager about an address nobody has. The query is
	// forwarded once to manager B, which must not forward it back.
	resp, err := nodes[1].tr.Request(ctx, 1, &wire.ClusterQuery{Addr: gaddr.FromUint64(0x7777777000)})
	if err != nil {
		t.Fatal(err)
	}
	hint, ok := resp.(*wire.ClusterHint)
	if !ok || hint.Found {
		t.Fatalf("query for unknown address = %+v", resp)
	}
}

func TestFederationBothClustersShareAddressSpace(t *testing.T) {
	_, nodes := testFederation(t)
	ctx := context.Background()
	// Reservations from both clusters go through the single map home
	// and must never overlap.
	a := mkRegion(t, nodes[1], 8192, region.Attrs{}, "")
	b := mkRegion(t, nodes[4], 8192, region.Attrs{}, "")
	ra := gaddr.Range{Start: a, Size: 8192}
	rb := gaddr.Range{Start: b, Size: 8192}
	if ra.Overlaps(rb) {
		t.Fatalf("cross-cluster reservations overlap: %v %v", ra, rb)
	}
	// And both are globally accessible.
	for _, n := range []*Node{nodes[2], nodes[5]} {
		for _, r := range []gaddr.Range{ra, rb} {
			lk, err := n.Lock(ctx, r, ktypes.LockRead, "")
			if err != nil {
				t.Fatalf("node %v lock %v: %v", n.ID(), r, err)
			}
			_ = n.Unlock(ctx, lk)
		}
	}
}
