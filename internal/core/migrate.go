package core

import (
	"context"
	"errors"
	"fmt"

	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
	"khazana/internal/pagedir"
	"khazana/internal/security"
	"khazana/internal/wire"
)

// Region migration: the mechanism behind "resource- and load-aware
// migration and replication policies" the paper lists as future work
// (§7). Khazana "is free to distribute object state across the network in
// any way it sees fit" (§2); MigrateRegion hands a region's primary-home
// role to another node, shipping its pages and descriptor, and updating
// the address map. Clients with stale descriptors recover through the
// ordinary stale-home path (§3.2).
//
// Migration is a quiescent-point operation: the home refuses while any of
// the region's pages hold active global locks. Callers (policies) retry.

// ErrBusyRegion reports a migration attempted while the region has active
// lock holders.
var ErrBusyRegion = errors.New("core: region busy; migrate when quiescent")

// MigrateRegion moves the primary home of the region starting at start to
// newHome. It can be called on any node; the request is forwarded to the
// current primary home.
func (n *Node) MigrateRegion(ctx context.Context, start gaddr.Addr, newHome ktypes.NodeID, principal ktypes.Principal) error {
	desc, err := n.lookupRegion(ctx, start)
	if err != nil {
		return err
	}
	if desc.Range.Start != start {
		return ErrNotRegionStart
	}
	home, err := desc.PrimaryHome()
	if err != nil {
		return err
	}
	if home != n.cfg.ID {
		fresh, err := n.forwardOp(ctx, desc, func() wire.Msg {
			return &wire.Migrate{Start: start, NewHome: newHome, Principal: principal}
		})
		if err != nil || fresh == nil {
			return err
		}
		// The refresh says this node is now the home: fall through.
	}
	return n.migrateLocal(ctx, start, newHome, principal)
}

// migrateLocal performs the handoff at the current primary home.
func (n *Node) migrateLocal(ctx context.Context, start gaddr.Addr, newHome ktypes.NodeID, principal ktypes.Principal) error {
	desc := n.authDescByStart(start)
	if desc == nil {
		return fmt.Errorf("%w: %v not homed here", ErrInaccessible, start)
	}
	if err := desc.Attrs.ACL.Check(principal, security.PermAdmin); err != nil {
		return err
	}
	if newHome == n.cfg.ID {
		return nil
	}
	if !containsNode(n.Members(), newHome) {
		return fmt.Errorf("core: migration target %v is not a known member", newHome)
	}
	// Quiescence check: no page of the region may be locked — in the
	// local lock table (release/eventual protocols) or the protocol's
	// own global lock state (CREW's manager-side table).
	type pageBusier interface{ PageBusy(gaddr.Addr) bool }
	busyCM, _ := n.cms[desc.Attrs.Protocol].(pageBusier)
	pages := desc.Pages(0, desc.Range.Size)
	for _, page := range pages {
		if n.locks.Held(page) || (busyCM != nil && busyCM.PageBusy(page)) {
			return ErrBusyRegion
		}
	}
	// Ship every locally stored page. The frame stays alive (and its
	// Data view valid) across the RPC.
	for _, page := range pages {
		f, ok := n.store.Get(page)
		if !ok {
			continue // never written; zero-fills at the new home too
		}
		entry, _ := n.dir.Lookup(page)
		resp, err := n.tr.Request(ctx, newHome, &wire.ReplicaPut{Page: page, Data: f.Bytes(), Version: entry.Version, From: n.cfg.ID})
		f.Release()
		if err != nil {
			return fmt.Errorf("core: migrate page %v: %w", page, err)
		}
		if ack, ok := resp.(*wire.Ack); ok && ack.Err != "" {
			return fmt.Errorf("core: migrate page %v: %s", page, ack.Err)
		}
	}
	// Hand over the descriptor: new home first, this node demoted to
	// secondary.
	homes := []ktypes.NodeID{newHome}
	for _, h := range desc.Home {
		if h != newHome {
			homes = append(homes, h)
		}
	}
	updated := desc.Clone()
	updated.Home = homes
	updated.Epoch++
	resp, err := n.tr.Request(ctx, newHome, &wire.AttrSet{Desc: updated, Principal: principal})
	if err != nil {
		return fmt.Errorf("core: migrate descriptor: %w", err)
	}
	if ack, ok := resp.(*wire.Ack); ok && ack.Err != "" {
		return fmt.Errorf("core: migrate descriptor: %s", ack.Err)
	}
	// Commit locally and in the address map.
	n.descMu.Lock()
	if d, ok := n.authDescs[start]; ok {
		d.Home = homes
		d.Epoch = updated.Epoch
	}
	n.descMu.Unlock()
	n.rdir.Insert(updated)
	// Re-announce so one-hop cold lookups resolve to the new home.
	n.ringAnnounce(ctx, updated)
	if err := n.mapSetHomes(ctx, start, homes); err != nil {
		return fmt.Errorf("core: migrate map entry: %w", err)
	}
	// This node's copies remain valid replicas; mark them shared.
	for _, page := range pages {
		n.dir.Update(page, func(e *pagedir.Entry) {
			if e.State == pagedir.Owned {
				e.State = pagedir.Shared
			}
		})
	}
	return nil
}

// statsResp builds a StatsResp snapshot.
func (n *Node) statsResp() *wire.StatsResp {
	return &wire.StatsResp{
		Node:           n.cfg.ID,
		Lookups:        n.stats.Lookups.Load(),
		DirHits:        n.stats.DirHits.Load(),
		ClusterHits:    n.stats.ClusterHits.Load(),
		TreeWalks:      n.stats.TreeWalks.Load(),
		LocksGranted:   n.stats.LocksGranted.Load(),
		ReleaseRetries: n.stats.ReleaseRetries.Load(),
		Promotions:     n.stats.Promotions.Load(),
		MemPages:       uint64(n.store.Mem().Len()),
		DiskPages:      uint64(n.store.Disk().Len()),
		HomedRegions:   uint64(len(n.authStarts())),
		Members:        n.Members(),
	}
}

// statsReply serves the full telemetry snapshot over the wire: every
// registered counter, gauge, and histogram, plus the span ring when the
// caller asks for it.
func (n *Node) statsReply(includeSpans bool) *wire.StatsReply {
	snap := n.MetricsSnapshot()
	reply := &wire.StatsReply{Node: n.cfg.ID}
	for _, c := range snap.Counters {
		reply.Counters = append(reply.Counters, wire.NamedCounter{Name: c.Name, Value: c.Value})
	}
	for _, g := range snap.Gauges {
		reply.Gauges = append(reply.Gauges, wire.NamedGauge{Name: g.Name, Value: g.Value})
	}
	for _, h := range snap.Histograms {
		reply.Hists = append(reply.Hists, wire.HistStat{
			Name:    h.Name,
			Count:   h.Count,
			Sum:     h.Sum,
			Buckets: h.Buckets,
		})
	}
	if includeSpans {
		for _, s := range n.TraceSpans() {
			reply.Spans = append(reply.Spans, wire.SpanStat{
				Trace:         uint64(s.Trace),
				Span:          uint64(s.Span),
				Parent:        uint64(s.Parent),
				Node:          ktypes.NodeID(s.Node),
				Name:          s.Name,
				StartUnixNano: s.Start.UnixNano(),
				DurationNs:    int64(s.Duration),
			})
		}
	}
	return reply
}
