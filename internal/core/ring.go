package core

import (
	"context"
	"time"

	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
	"khazana/internal/region"
	"khazana/internal/ring"
	"khazana/internal/wire"
)

// Consistent-hashing descriptor partition (the ROADMAP's decentralized
// location item). Every node derives the same ring from the membership
// view, so the owners of any address are computable locally: a cold
// lookup asks a bucket owner for the descriptor and resolves in one RPC
// hop instead of the §3.1 tree walk. Homes announce descriptor changes
// (create, destroy, home change, failover) to the owners of every
// bucket the region overlaps; on membership change each home
// re-announces only the descriptors whose owner set actually moved.

// currentRing returns the node's current ring view (nil when disabled
// or before the first membership sync).
func (n *Node) currentRing() *ring.Ring {
	n.ringMu.Lock()
	defer n.ringMu.Unlock()
	return n.ringState
}

// ringSync rebuilds the ring if the membership view changed, then
// re-announces homed descriptors whose owner set moved. Cheap when
// nothing changed (one sorted-set comparison), so every membership
// signal — join, heartbeat view, leave — funnels through it.
func (n *Node) ringSync(ctx context.Context) {
	if n.cfg.NoRing {
		return
	}
	members := n.Members()
	n.ringMu.Lock()
	if n.ringState.SameMembers(members) {
		n.ringMu.Unlock()
		return
	}
	old := n.ringState
	next := ring.Build(members, ring.Options{})
	n.ringState = next
	n.ringMu.Unlock()
	n.ringRebalance(ctx, old, next)
}

// ringRebalance re-announces this node's homed descriptors after a ring
// change. Only descriptors whose owner set differs between the old and
// new ring move; the rest stay put (the consistent-hashing property
// that keeps churn cheap). old == nil is the initial sync: everything
// homed here is announced, but nothing counts as a move.
func (n *Node) ringRebalance(ctx context.Context, old, next *ring.Ring) {
	for _, start := range n.authStarts() {
		desc := n.authDescByStart(start)
		if desc == nil {
			continue
		}
		newOwners := next.RangeOwners(desc.Range)
		if old != nil {
			oldOwners := old.RangeOwners(desc.Range)
			if sameOwnerSet(oldOwners, newOwners) {
				continue
			}
			n.mRingMoves.Add(1)
			// Withdraw from owners that lost the partition so their
			// tables do not serve ever-staler descriptors.
			losers := make([]ktypes.NodeID, 0, len(oldOwners))
			for _, o := range oldOwners {
				if containsNode(newOwners, o) || o == n.cfg.ID {
					continue
				}
				losers = append(losers, o)
			}
			n.ringCast(ctx, losers, &wire.RingAnnounce{Op: wire.RingOpWithdraw, Start: start, From: n.cfg.ID})
		}
		n.announceTo(ctx, newOwners, desc)
	}
}

// ringAnnounce pushes a homed descriptor to the current owners of every
// bucket its range overlaps. Called on region create, attribute/home
// change, failover promotion, and migration commit. Best effort: a
// missed owner is repaired by the fallback path's re-announce.
func (n *Node) ringAnnounce(ctx context.Context, desc *region.Descriptor) {
	if n.cfg.NoRing || desc == nil {
		return
	}
	r := n.currentRing()
	if r == nil {
		return
	}
	n.announceTo(ctx, r.RangeOwners(desc.Range), desc)
}

// announceTo delivers one descriptor to an owner set, short-circuiting
// the self-owned share straight into the local table. Remote owners are
// notified off the caller's critical path: client operations (Reserve,
// SetAttr, migration) never pay owner round trips.
func (n *Node) announceTo(ctx context.Context, owners []ktypes.NodeID, desc *region.Descriptor) {
	remote := make([]ktypes.NodeID, 0, len(owners))
	for _, o := range owners {
		if o == n.cfg.ID {
			n.ringTable.Insert(desc)
			continue
		}
		remote = append(remote, o)
	}
	n.ringCast(ctx, remote, &wire.RingAnnounce{Op: wire.RingOpPut, Desc: desc.Clone(), Start: desc.Range.Start, From: n.cfg.ID})
}

// ringWithdraw removes a destroyed region from its bucket owners.
func (n *Node) ringWithdraw(ctx context.Context, desc *region.Descriptor) {
	if n.cfg.NoRing || desc == nil {
		return
	}
	r := n.currentRing()
	if r == nil {
		return
	}
	owners := r.RangeOwners(desc.Range)
	remote := make([]ktypes.NodeID, 0, len(owners))
	for _, o := range owners {
		if o == n.cfg.ID {
			n.ringTable.Remove(desc.Range.Start)
			continue
		}
		remote = append(remote, o)
	}
	n.ringCast(ctx, remote, &wire.RingAnnounce{Op: wire.RingOpWithdraw, Start: desc.Range.Start, From: n.cfg.ID})
}

// ringCast delivers one announce frame to a set of peers asynchronously.
// Announces are best effort by design — a missed owner is repaired when
// the fallback path re-announces — so nothing on a client operation's
// critical path waits for them. RingSettle drains in-flight casts.
func (n *Node) ringCast(ctx context.Context, peers []ktypes.NodeID, msg *wire.RingAnnounce) {
	if len(peers) == 0 {
		return
	}
	// Detach from the caller's cancellation: the announce should land
	// even if the client that triggered it gives up.
	base := context.WithoutCancel(ctx)
	n.annWG.Add(1)
	go func() {
		defer n.annWG.Done()
		castCtx, cancel := context.WithTimeout(base, 2*time.Second)
		defer cancel()
		for _, o := range peers {
			//khazana:ignore-err best-effort announce; an unreachable owner is repaired when the fallback path re-announces
			_, _ = n.tr.Request(castCtx, o, msg)
		}
	}()
}

// RingSettle blocks until all in-flight ring announces have drained.
// Announces are asynchronous (client operations never pay owner round
// trips), so tests and experiments that want a converged partition call
// this before asserting on lookup behavior.
func (n *Node) RingSettle() {
	n.annWG.Wait()
}

// lookupViaRing resolves a cold lookup through the descriptor
// partition: hash the address to its bucket, ask each owner (self
// served locally) for the containing descriptor. One RPC hop on the
// common path; nil when no owner can answer (the caller falls back and
// repairs).
func (n *Node) lookupViaRing(ctx context.Context, addr gaddr.Addr) *region.Descriptor {
	r := n.currentRing()
	if r == nil {
		return nil
	}
	for _, o := range r.Owners(ring.BucketOf(addr)) {
		if o == n.cfg.ID {
			if d, ok := n.ringTable.Lookup(addr); ok {
				return d
			}
			continue
		}
		resp, err := n.tr.Request(ctx, o, &wire.RingLookup{Addr: addr, From: n.cfg.ID})
		if err != nil {
			continue
		}
		reply, ok := resp.(*wire.RingReply)
		if !ok || !reply.Found || reply.Desc == nil {
			continue
		}
		// Trust but verify: an owner mid-rebalance can hold a table
		// whose entry no longer contains the address.
		if !reply.Desc.Range.Contains(addr) {
			continue
		}
		return reply.Desc
	}
	return nil
}

// handleRingLookup serves a peer's one-hop cold lookup from this node's
// authoritative state only — regions homed here and the ring table —
// never the region-directory cache, whose entries may be stale (a ring
// answer is trusted as current by the caller).
func (n *Node) handleRingLookup(msg *wire.RingLookup) *wire.RingReply {
	if n.mapDesc.Range.Contains(msg.Addr) {
		return &wire.RingReply{Found: true, Desc: n.mapDesc.Clone()}
	}
	if d := n.authDesc(msg.Addr); d != nil {
		return &wire.RingReply{Found: true, Desc: d}
	}
	if d, ok := n.ringTable.Lookup(msg.Addr); ok {
		return &wire.RingReply{Found: true, Desc: d}
	}
	return &wire.RingReply{Found: false}
}

// handleRingAnnounce applies a descriptor announce to the local ring
// table. Inserts prefer the higher epoch, so replayed or reordered
// announces cannot roll a home change back.
func (n *Node) handleRingAnnounce(msg *wire.RingAnnounce) *wire.Ack {
	switch msg.Op {
	case wire.RingOpPut:
		n.ringTable.Insert(msg.Desc)
	case wire.RingOpWithdraw:
		n.ringTable.Remove(msg.Start)
	}
	return &wire.Ack{}
}

// sameOwnerSet reports whether two owner lists contain the same nodes
// (order-insensitive; lists are small and duplicate-free).
func sameOwnerSet(a, b []ktypes.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for _, x := range a {
		if !containsNode(b, x) {
			return false
		}
	}
	return true
}
