package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"khazana/internal/frame"
	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
	"khazana/internal/region"
	"khazana/internal/security"
)

// ErrSnapshotClosed reports use of a closed snapshot context.
var ErrSnapshotClosed = errors.New("core: snapshot context closed")

// SnapshotContext is a read-only view of the global store that never
// blocks on writers. Where a lock context funnels through the home's
// global lock table — waiting out any exclusive writer — a snapshot
// context is served from each page's committed version chain: the first
// read pins a publish epoch at the page's home, and every subsequent read
// observes the newest version committed at or before that cut. Writers
// neither wait for snapshot readers nor invalidate them.
//
// The isolation guarantee is per home: pages homed on one node form a
// consistent cut of that home's publish order. If an old version is
// reclaimed under memory pressure, a later read of that page observes a
// newer committed version instead — still committed-only and monotonic,
// never torn or uncommitted.
//
// A SnapshotContext is safe for concurrent use. Close releases every
// pinned frame; views returned by View are invalid after Close.
type SnapshotContext struct {
	node      *Node
	principal ktypes.Principal

	mu sync.Mutex
	// epochs pins one publish epoch per home node, chosen by the home on
	// the first read it serves for this context.
	epochs map[ktypes.NodeID]uint64
	// pages maps each fetched page to its pinned frame; one reference
	// per entry, released at Close.
	pages map[gaddr.Addr]snapEntry
	// lastDesc caches the most recently resolved descriptor so repeated
	// reads in one region skip the lookup path entirely.
	lastDesc *region.Descriptor
	// reads batches the snapshot-read metric: incremented under mu on
	// the zero-copy fast path and flushed to the registry counter once
	// at Close, so the hot path carries no atomic.
	reads  uint64
	closed bool
}

// snapEntry is one pinned page of a snapshot context.
type snapEntry struct {
	f       *frame.Frame
	version uint64
}

// Snapshot opens a snapshot context for the principal. Opening is free —
// no epoch is pinned and no pages are fetched until the first read.
func (n *Node) Snapshot(principal ktypes.Principal) *SnapshotContext {
	return &SnapshotContext{
		node:      n,
		principal: principal,
		epochs:    make(map[ktypes.NodeID]uint64),
		pages:     make(map[gaddr.Addr]snapEntry),
	}
}

// View returns count bytes at addr as a view aliasing the pinned page
// frame — no copy is made. The view stays valid until Close and must be
// treated as read-only. Requests that span a page boundary fall back to
// the copying path, since pinned frames are page-granular.
func (c *SnapshotContext) View(ctx context.Context, addr gaddr.Addr, count uint64) ([]byte, error) {
	if count == 0 {
		return nil, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrSnapshotClosed
	}
	// Fast path: the backing page is already pinned and the request stays
	// inside it — serve the bytes with no lookup, no RPC, no allocation.
	if d := c.lastDesc; d != nil && d.Range.ContainsRange(gaddr.Range{Start: addr, Size: count}) {
		ps := uint64(d.Attrs.PageSize)
		pageOff := addr.Offset(ps)
		if pageOff+count <= ps {
			if e, ok := c.pages[addr.AlignDown(ps)]; ok {
				c.reads++
				return e.f.Bytes()[pageOff : pageOff+count : pageOff+count], nil
			}
		}
	}
	//khazana:block-ok c.mu is per snapshot context; a pin fault under it stalls only this context's own callers and never waits on a writer's lock
	desc, err := c.ensureLocked(ctx, addr, count)
	if err != nil {
		return nil, err
	}
	ps := uint64(desc.Attrs.PageSize)
	pageOff := addr.Offset(ps)
	if pageOff+count > ps {
		return c.readLocked(desc, addr, count), nil
	}
	c.reads++
	e := c.pages[addr.AlignDown(ps)]
	return e.f.Bytes()[pageOff : pageOff+count : pageOff+count], nil
}

// Read copies count bytes starting at addr out of the snapshot into a
// fresh buffer. The result stays valid after Close.
func (c *SnapshotContext) Read(ctx context.Context, addr gaddr.Addr, count uint64) ([]byte, error) {
	if count == 0 {
		return nil, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrSnapshotClosed
	}
	//khazana:block-ok c.mu is per snapshot context; a pin fault under it stalls only this context's own callers and never waits on a writer's lock
	desc, err := c.ensureLocked(ctx, addr, count)
	if err != nil {
		return nil, err
	}
	return c.readLocked(desc, addr, count), nil
}

// PageVersion reports the committed version this snapshot pinned for the
// page containing addr, and whether the page has been read yet.
func (c *SnapshotContext) PageVersion(addr gaddr.Addr) (uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d := c.lastDesc
	if d == nil || !d.Range.Contains(addr) {
		return 0, false
	}
	e, ok := c.pages[addr.AlignDown(uint64(d.Attrs.PageSize))]
	if !ok {
		return 0, false
	}
	return e.version, true
}

// Close releases every pinned frame and flushes the read counter. Views
// handed out by View are invalid once Close returns.
func (c *SnapshotContext) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	pages := c.pages
	c.pages = nil
	reads := c.reads
	c.reads = 0
	c.lastDesc = nil
	c.mu.Unlock()
	if reads > 0 {
		c.node.mSnapReads.Add(reads)
	}
	for _, e := range pages {
		e.f.Release()
	}
}

// ensureLocked resolves the region and pins every page backing
// [addr, addr+count) that is not pinned yet, fetching them from the CM's
// snapshot path at this context's epoch. Caller holds c.mu.
func (c *SnapshotContext) ensureLocked(ctx context.Context, addr gaddr.Addr, count uint64) (*region.Descriptor, error) {
	desc := c.lastDesc
	if desc == nil || !desc.Range.ContainsRange(gaddr.Range{Start: addr, Size: count}) {
		d, err := c.node.lookupRegion(ctx, addr)
		if err != nil {
			return nil, err
		}
		if !d.Range.ContainsRange(gaddr.Range{Start: addr, Size: count}) {
			return nil, fmt.Errorf("core: snapshot read %v+%d escapes region %v", addr, count, d.Range)
		}
		if err := d.Attrs.ACL.Check(c.principal, security.PermRead); err != nil {
			return nil, err
		}
		if !d.Allocated {
			return nil, ErrNotAllocated
		}
		c.lastDesc = d
		desc = d
	}
	ps := uint64(desc.Attrs.PageSize)
	var missing []gaddr.Addr
	for covered := uint64(0); covered < count; {
		cur := addr.MustAdd(covered)
		page := cur.AlignDown(ps)
		pageOff := cur.Offset(ps)
		chunk := ps - pageOff
		if chunk > count-covered {
			chunk = count - covered
		}
		if _, ok := c.pages[page]; !ok {
			missing = append(missing, page)
		}
		covered += chunk
	}
	if len(missing) == 0 {
		return desc, nil
	}
	cm, ok := c.node.cms[desc.Attrs.Protocol]
	if !ok {
		return nil, fmt.Errorf("core: no CM for protocol %v", desc.Attrs.Protocol)
	}
	home, err := desc.PrimaryHome()
	if err != nil {
		return nil, err
	}
	snaps, at, err := cm.SnapshotRead(ctx, desc, missing, c.epochs[home])
	if err != nil {
		return nil, err
	}
	if c.epochs[home] == 0 {
		c.epochs[home] = at
	}
	for _, sp := range snaps {
		//khazana:frame-owner pinned in the snapshot context, released at Close
		c.pages[sp.Page] = snapEntry{f: sp.Frame, version: sp.Version}
	}
	return desc, nil
}

// readLocked copies count bytes at addr out of the pinned pages. Caller
// holds c.mu and has ensured every covered page.
func (c *SnapshotContext) readLocked(desc *region.Descriptor, addr gaddr.Addr, count uint64) []byte {
	out := make([]byte, count)
	ps := uint64(desc.Attrs.PageSize)
	for covered := uint64(0); covered < count; {
		cur := addr.MustAdd(covered)
		page := cur.AlignDown(ps)
		pageOff := cur.Offset(ps)
		chunk := ps - pageOff
		if chunk > count-covered {
			chunk = count - covered
		}
		if e, ok := c.pages[page]; ok {
			copy(out[covered:covered+chunk], e.f.Bytes()[pageOff:])
		}
		covered += chunk
	}
	return out
}
