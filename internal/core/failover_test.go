package core

// Tests for the consensus-backed failover path: homes append release
// deltas to the replicated region-metadata log, standbys replay them,
// and promotion means winning one election and resuming from the log.
// Run with -race: the singleflight test exists to catch concurrent
// promoteLocal callers racing the descriptor reorder.

import (
	"context"
	"sync"
	"testing"
	"time"

	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
	"khazana/internal/region"
	"khazana/internal/transport"
)

// replicatedRegion builds a MinReplicas-3 region homed on node 2 of a
// 4-node cluster with its home list grown to [2 3 4], and one committed
// write so the log carries a release delta.
func replicatedRegion(t *testing.T) (*transport.Network, []*Node, gaddr.Addr) {
	t.Helper()
	net, nodes := testCluster(t, 4)
	ctx := context.Background()
	attrs := region.Attrs{MinReplicas: 3}
	start := mkRegion(t, nodes[1], 4096, attrs, "alice")
	// Refresh node 2's membership view (heartbeat loops are off in
	// tests) so replica maintenance can grow the home list.
	nodes[1].SendHeartbeat()
	nodes[1].MaintainReplicas()
	d := nodes[1].authDescByStart(start)
	if d == nil || len(d.Home) != 3 {
		t.Fatalf("home list = %v, want 3 homes", d)
	}
	lc, err := nodes[1].Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockWrite, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if err := nodes[1].Write(lc, start, []byte("logged before crash")); err != nil {
		t.Fatal(err)
	}
	if err := nodes[1].Unlock(ctx, lc); err != nil {
		t.Fatal(err)
	}
	return net, nodes, start
}

func TestReleaseAppendsToReplicatedLog(t *testing.T) {
	_, nodes, start := replicatedRegion(t)
	// The home led the append.
	leader, term := nodes[1].Repl().Leader(start)
	if leader != 2 || term == 0 {
		t.Fatalf("leader = %v term %d, want home 2 with a term", leader, term)
	}
	commit, last := nodes[1].Repl().Progress(start)
	if commit == 0 || last == 0 {
		t.Fatalf("home progress commit=%d last=%d, want appended+committed", commit, last)
	}
	// Every listed standby holds the delta (its commit may trail by one
	// append; the entry itself must be there).
	d := nodes[1].authDescByStart(start)
	for _, h := range d.Home[1:] {
		standby := nodes[h-1]
		_, slast := standby.Repl().Progress(start)
		if slast != last {
			t.Fatalf("standby %d last=%d, want %d", h, slast, last)
		}
		info, ok := standby.Standbys().Lookup(start)
		if !ok || info.Leader != 2 {
			t.Fatalf("standby %d table = %+v ok=%v, want leader 2", h, info, ok)
		}
	}
}

func TestFailoverResumesFromLog(t *testing.T) {
	net, nodes, start := replicatedRegion(t)
	page := start
	homeEntry, _ := nodes[1].PageDir().Lookup(page)
	if homeEntry.Version == 0 {
		t.Fatal("home has no committed version to lose")
	}

	net.Crash(2)
	ctx := context.Background()
	d := nodes[2].promoteLocal(ctx, start)
	if d == nil {
		t.Fatal("promotion failed")
	}
	if h, err := d.PrimaryHome(); err != nil || h != 3 {
		t.Fatalf("promoted primary = %v (%v), want 3", h, err)
	}
	// The election was real: node 3 leads the region's log now.
	leader, _ := nodes[2].Repl().Leader(start)
	if leader != 3 {
		t.Fatalf("log leader = %v, want 3", leader)
	}
	// Resume-from-log restored the release metadata the dead home had
	// acknowledged: same committed version, no lost release.
	got, _ := nodes[2].PageDir().Lookup(page)
	if got.Version < homeEntry.Version {
		t.Fatalf("replayed version %d, want >= %d", got.Version, homeEntry.Version)
	}
}

func TestPromoteLocalSingleflight(t *testing.T) {
	net, nodes, start := replicatedRegion(t)
	before := nodes[2].authDescByStart(start)
	if before == nil {
		t.Fatal("node 3 has no secondary descriptor")
	}
	net.Crash(2)

	ctx := context.Background()
	const callers = 8
	results := make([]*region.Descriptor, callers)
	var wg sync.WaitGroup
	gate := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			results[i] = nodes[2].promoteLocal(ctx, start)
		}(i)
	}
	close(gate)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("promotions wedged")
	}

	won := 0
	for i, d := range results {
		if d == nil {
			continue
		}
		won++
		if h, err := d.PrimaryHome(); err != nil || h != 3 {
			t.Fatalf("caller %d promoted primary = %v (%v), want 3", i, h, err)
		}
	}
	if won == 0 {
		t.Fatal("no caller saw the promotion")
	}
	// Exactly one flight reordered the descriptor: a second concurrent
	// promotion would have bumped the epoch again.
	after := nodes[2].authDescByStart(start)
	if after.Epoch != before.Epoch+1 {
		t.Fatalf("epoch %d -> %d, want exactly one bump", before.Epoch, after.Epoch)
	}
	if nodes[2].mHomePromos.Load() != 1 {
		t.Fatalf("home_promotions = %d, want 1", nodes[2].mHomePromos.Load())
	}
}
