package core

import (
	"context"
	"fmt"

	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
	"khazana/internal/pagedir"
	"khazana/internal/region"
	"khazana/internal/telemetry"
	"khazana/internal/wire"
)

// handle dispatches one inbound message. CM traffic routes to the
// consistency manager of the region containing the page; cluster traffic
// routes to the manager; client operations execute on behalf of remote
// clients (and of peers forwarding home-side operations).
func (n *Node) handle(ctx context.Context, from ktypes.NodeID, m wire.Msg) (wire.Msg, error) {
	// Requests that arrived with a trace envelope get a handler-side span;
	// untraced traffic pays one context lookup and skips the name format.
	if _, traced := telemetry.FromContext(ctx); traced {
		var fl telemetry.Flight
		ctx, fl = telemetry.ContinueSpan(ctx, n.rec, uint32(n.cfg.ID), fmt.Sprintf("handle:%T", m))
		defer fl.Finish()
	}
	switch msg := m.(type) {
	case *wire.Ping:
		return &wire.Pong{From: n.cfg.ID, EchoUnixNano: msg.SentUnixNano}, nil

	// --- consistency traffic ------------------------------------------
	case *wire.PageReq:
		return n.handleCM(ctx, from, msg.Page, m)
	case *wire.ReleaseNotify:
		return n.handleCM(ctx, from, msg.Page, m)
	case *wire.Invalidate:
		return n.handleCM(ctx, from, msg.Page, m)
	case *wire.PageFetch:
		return n.handleCM(ctx, from, msg.Page, m)
	case *wire.VersionQuery:
		return n.handleCM(ctx, from, msg.Page, m)
	case *wire.UpdatePush:
		return n.handleCM(ctx, from, msg.Page, m)
	case *wire.PageReqBatch:
		if len(msg.Pages) == 0 {
			return nil, fmt.Errorf("core: %v got empty page request batch", n.cfg.ID)
		}
		// All pages of a batch belong to one region (the sender groups
		// them by home); route by the first.
		return n.handleCM(ctx, from, msg.Pages[0], m)
	case *wire.ReleaseBatch:
		if len(msg.Items) == 0 {
			return nil, fmt.Errorf("core: %v got empty release batch", n.cfg.ID)
		}
		return n.handleCM(ctx, from, msg.Items[0].Page, m)
	case *wire.UpdateBatch:
		if len(msg.Items) == 0 {
			return nil, fmt.Errorf("core: %v got empty update batch", n.cfg.ID)
		}
		return n.handleCM(ctx, from, msg.Items[0].Page, m)
	case *wire.SnapshotReqBatch:
		if len(msg.Pages) == 0 {
			return nil, fmt.Errorf("core: %v got empty snapshot request batch", n.cfg.ID)
		}
		return n.handleCM(ctx, from, msg.Pages[0], m)

	// --- region descriptors ----------------------------------------------
	case *wire.RegionLookup:
		return n.handleRegionLookup(msg), nil
	case *wire.AttrSet:
		n.putAuthDesc(msg.Desc)
		n.rdir.Insert(msg.Desc)
		return &wire.Ack{}, nil
	case *wire.Promote:
		if d := n.promoteLocal(ctx, msg.Start); d != nil {
			return &wire.RegionInfo{Found: true, Desc: d}, nil
		}
		return &wire.RegionInfo{Found: false, Err: "not a secondary home"}, nil
	case *wire.RingLookup:
		return n.handleRingLookup(msg), nil
	case *wire.RingAnnounce:
		return n.handleRingAnnounce(msg), nil

	// --- replicated region-metadata log ------------------------------------
	case *wire.ReplAppend:
		return n.repl.HandleAppend(msg), nil
	case *wire.ReplPromote:
		return n.repl.HandleVote(msg), nil

	// --- replication ------------------------------------------------------
	case *wire.ReplicaPut:
		return n.handleReplicaPut(msg)
	case *wire.CopysetQuery:
		entry, _ := n.dir.Lookup(msg.Page)
		return &wire.CopysetInfo{Owner: entry.Owner, Nodes: entry.Copyset}, nil

	// --- address map mutations (map home only) -----------------------------
	case *wire.ReserveSpace:
		if n.cfg.ID != n.cfg.MapHome {
			return &wire.SpaceGrant{Err: "not the map home"}, nil
		}
		r, err := n.mapReserveRange(ctx, msg.Size, 0)
		if err != nil {
			return &wire.SpaceGrant{Err: err.Error()}, nil
		}
		return &wire.SpaceGrant{Range: r}, nil
	case *wire.MapInsert:
		return ackErr(n.mapInsert(ctx, msg.Range, msg.Homes)), nil
	case *wire.MapRemove:
		return ackErr(n.mapRemove(ctx, msg.Start)), nil
	case *wire.MapSetHomes:
		return ackErr(n.mapSetHomes(ctx, msg.Start, msg.Homes)), nil

	// --- cluster management (manager only) ---------------------------------
	case *wire.Join:
		if n.manager == nil {
			return nil, fmt.Errorf("core: %v is not the cluster manager", n.cfg.ID)
		}
		view := n.manager.Join(msg.Node, msg.Addr)
		n.ringSync(ctx)
		return view, nil
	case *wire.Heartbeat:
		if n.manager == nil {
			return nil, fmt.Errorf("core: %v is not the cluster manager", n.cfg.ID)
		}
		n.manager.Heartbeat(msg)
		n.ringSync(ctx)
		return n.manager.View(), nil
	case *wire.ClusterQuery:
		if n.manager == nil {
			return nil, fmt.Errorf("core: %v is not the cluster manager", n.cfg.ID)
		}
		nodes, found := n.manager.Query(msg.Addr)
		if !found {
			// Fall back to the cluster-walk algorithm (§3.1).
			nodes = n.manager.Walk(ctx, msg.Addr, n.walkLookup, 1)
			found = len(nodes) > 0
		}
		if !found && !msg.Forwarded {
			// Inter-cluster communication (§3.1): ask the managers of
			// peer clusters, caching any answer as a local hint.
			nodes, found = n.askPeerManagers(ctx, msg.Addr)
		}
		return &wire.ClusterHint{Found: found, Nodes: nodes}, nil
	case *wire.Leave:
		if n.manager != nil {
			n.manager.Leave(msg.Node)
			n.ringSync(ctx)
		}
		return &wire.Ack{}, nil

	// --- client operations --------------------------------------------------
	case *wire.CReserve:
		start, err := n.Reserve(ctx, msg.Size, msg.Attrs, msg.Principal)
		if err != nil {
			return &wire.CReserveResp{Err: err.Error()}, nil
		}
		return &wire.CReserveResp{Start: start}, nil
	case *wire.CUnreserve:
		return ackErr(n.Unreserve(ctx, msg.Start, msg.Principal)), nil
	case *wire.CAllocate:
		return ackErr(n.Allocate(ctx, msg.Start, msg.Principal)), nil
	case *wire.CFree:
		return ackErr(n.Free(ctx, msg.Start, msg.Principal)), nil
	case *wire.CSetAttr:
		return ackErr(n.SetAttr(ctx, msg.Start, msg.Attrs, msg.Principal)), nil
	case *wire.CGetAttr:
		d, err := n.GetAttr(ctx, msg.Addr)
		if err != nil {
			return &wire.RegionInfo{Found: false, Err: err.Error()}, nil
		}
		return &wire.RegionInfo{Found: true, Desc: d}, nil
	case *wire.CLock:
		lc, err := n.Lock(ctx, msg.Range, msg.Mode, msg.Principal)
		if err != nil {
			return &wire.CLockResp{Err: err.Error()}, nil
		}
		return &wire.CLockResp{LockID: lc.ID}, nil
	case *wire.CUnlock:
		lc, err := n.lockByID(msg.LockID)
		if err != nil {
			return &wire.Ack{Err: err.Error()}, nil
		}
		return ackErr(n.Unlock(ctx, lc)), nil
	case *wire.CRead:
		lc, err := n.lockByID(msg.LockID)
		if err != nil {
			return &wire.CData{Err: err.Error()}, nil
		}
		data, err := n.Read(lc, msg.Addr, msg.Len)
		if err != nil {
			return &wire.CData{Err: err.Error()}, nil
		}
		return &wire.CData{Data: data}, nil
	case *wire.CWrite:
		lc, err := n.lockByID(msg.LockID)
		if err != nil {
			return &wire.Ack{Err: err.Error()}, nil
		}
		return ackErr(n.Write(lc, msg.Addr, msg.Data)), nil

	// --- migration and introspection ---------------------------------------
	case *wire.Migrate:
		return ackErr(n.MigrateRegion(ctx, msg.Start, msg.NewHome, msg.Principal)), nil
	case *wire.StatsReq:
		return n.statsResp(), nil
	case *wire.StatsQuery:
		return n.statsReply(msg.IncludeSpans), nil

	//khazana:wire-default middleware kinds route through the app-handler hook; truly unknown kinds error below
	default:
		if h := n.appHandler(); h != nil {
			if resp, handled, err := h(ctx, from, m); handled {
				return resp, err
			}
		}
		return nil, fmt.Errorf("core: %v cannot handle %T", n.cfg.ID, m)
	}
}

// AppHandler processes application-level messages the daemon itself does
// not understand, letting middleware layered on Khazana (e.g. a
// distributed object runtime, §4.2) receive peer traffic through the
// daemon's transport. Return handled=false to fall through to the
// daemon's unknown-message error.
type AppHandler func(ctx context.Context, from ktypes.NodeID, m wire.Msg) (resp wire.Msg, handled bool, err error)

// SetAppHandler installs the application-message hook.
func (n *Node) SetAppHandler(h AppHandler) {
	n.appMu.Lock()
	defer n.appMu.Unlock()
	n.app = h
}

func (n *Node) appHandler() AppHandler {
	n.appMu.Lock()
	defer n.appMu.Unlock()
	return n.app
}

// Request sends an RPC to a peer daemon; middleware layers use it for
// their own traffic.
func (n *Node) Request(ctx context.Context, to ktypes.NodeID, m wire.Msg) (wire.Msg, error) {
	return n.tr.Request(ctx, to, m)
}

// ackErr wraps an operation result as an Ack.
func ackErr(err error) *wire.Ack {
	if err != nil {
		return &wire.Ack{Err: err.Error()}
	}
	return &wire.Ack{}
}

// handleCM routes consistency traffic to the CM of the region containing
// the page.
func (n *Node) handleCM(ctx context.Context, from ktypes.NodeID, page gaddr.Addr, m wire.Msg) (wire.Msg, error) {
	desc, err := n.lookupRegion(ctx, page)
	if err != nil {
		return nil, fmt.Errorf("core: CM traffic for unknown page %v: %w", page, err)
	}
	cm, ok := n.cms[desc.Attrs.Protocol]
	if !ok {
		return nil, fmt.Errorf("core: no CM for protocol %v", desc.Attrs.Protocol)
	}
	// Feed the load-aware migration policy: this node homes the region
	// and from is generating its consistency traffic. The map region is
	// pinned to its home and never migrates.
	if home, err := desc.PrimaryHome(); err == nil && home == n.cfg.ID &&
		desc.Range.Start != n.mapDesc.Range.Start {
		n.access.record(desc.Range.Start, from)
	}
	return cm.Handle(ctx, desc, from, m)
}

// handleRegionLookup serves descriptor queries: authoritative descriptors
// first, then the region directory cache.
func (n *Node) handleRegionLookup(msg *wire.RegionLookup) *wire.RegionInfo {
	if n.mapDesc.Range.Contains(msg.Addr) {
		return &wire.RegionInfo{Found: true, Desc: n.mapDesc.Clone()}
	}
	if d := n.authDesc(msg.Addr); d != nil {
		return &wire.RegionInfo{Found: true, Desc: d}
	}
	if d, ok := n.rdir.Lookup(msg.Addr); ok {
		return &wire.RegionInfo{Found: true, Desc: d}
	}
	return &wire.RegionInfo{Found: false}
}

// handleReplicaPut installs a pushed replica page. The inbound frame is
// taken off the message (zero-copy when the transport decoded into a
// frame) and handed to the store.
func (n *Node) handleReplicaPut(msg *wire.ReplicaPut) (wire.Msg, error) {
	f := msg.TakeFrame()
	if f == nil {
		return nil, fmt.Errorf("core: replica put %v: no data", msg.Page)
	}
	err := n.store.Put(msg.Page, f)
	f.Release()
	if err != nil {
		return nil, err
	}
	n.dir.Update(msg.Page, func(e *pagedir.Entry) {
		if msg.Version >= e.Version {
			e.Version = msg.Version
			e.State = pagedir.Shared
		}
		e.AddSharer(n.cfg.ID)
		e.AddSharer(msg.From)
	})
	return &wire.Ack{}, nil
}

// askPeerManagers forwards a missed query to peer cluster managers.
func (n *Node) askPeerManagers(ctx context.Context, addr gaddr.Addr) ([]ktypes.NodeID, bool) {
	for _, peer := range n.manager.PeerManagers() {
		resp, err := n.tr.Request(ctx, peer, &wire.ClusterQuery{Addr: addr, Forwarded: true})
		if err != nil {
			continue
		}
		hint, ok := resp.(*wire.ClusterHint)
		if !ok || !hint.Found || len(hint.Nodes) == 0 {
			continue
		}
		for _, node := range hint.Nodes {
			n.manager.AddHint(addr, node)
			// The hinted node lives in another cluster; track it as a
			// member so hint liveness filtering does not discard it.
			n.manager.Join(node, "")
		}
		return hint.Nodes, true
	}
	return nil, false
}

// walkLookup is the cluster-walk probe: ask one node whether it knows the
// region containing addr.
func (n *Node) walkLookup(ctx context.Context, node ktypes.NodeID, addr gaddr.Addr) bool {
	resp, err := n.tr.Request(ctx, node, &wire.RegionLookup{Addr: addr})
	if err != nil {
		return false
	}
	info, ok := resp.(*wire.RegionInfo)
	return ok && info.Found
}

// Protocols lists the consistency protocols this daemon can serve.
func (n *Node) Protocols() []region.Protocol {
	out := make([]region.Protocol, 0, len(n.cms))
	for p := range n.cms {
		out = append(out, p)
	}
	return out
}
