package core

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
	"khazana/internal/region"
	"khazana/internal/transport"
)

// restartNode closes a node and starts a fresh daemon over the same store
// directory and identity.
func restartNode(t *testing.T, net *transport.Network, old *Node) *Node {
	t.Helper()
	cfg := old.cfg
	if err := old.Close(); err != nil {
		t.Fatal(err)
	}
	net.Detach(cfg.ID)
	tr, err := net.Attach(cfg.ID)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Transport = tr
	node, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = node.Close() })
	return node
}

func TestSingleNodePersistenceAcrossRestart(t *testing.T) {
	net := transport.NewNetwork()
	tr, err := net.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "n1")
	n1, err := NewNode(Config{ID: 1, Transport: tr, StoreDir: dir, Genesis: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := n1.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	start := mkRegion(t, n1, 8192, region.Attrs{}, "alice")
	lc, err := n1.Lock(ctx, gaddr.Range{Start: start, Size: 8192}, ktypes.LockWrite, "alice")
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("survives a restart")
	if err := n1.Write(lc, start.MustAdd(100), payload); err != nil {
		t.Fatal(err)
	}
	if err := n1.Unlock(ctx, lc); err != nil {
		t.Fatal(err)
	}

	// Restart the daemon on the same store.
	n1b := restartNode(t, net, n1)

	// The region descriptor, ACL, and data all survive.
	d, err := n1b.GetAttr(ctx, start)
	if err != nil {
		t.Fatalf("region lost after restart: %v", err)
	}
	if d.Attrs.ACL.Owner != "alice" || !d.Allocated {
		t.Fatalf("descriptor corrupted: %+v", d)
	}
	rlc, err := n1b.Lock(ctx, gaddr.Range{Start: start, Size: 8192}, ktypes.LockRead, "alice")
	if err != nil {
		t.Fatal(err)
	}
	got, err := n1b.Read(rlc, start.MustAdd(100), uint64(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	_ = n1b.Unlock(ctx, rlc)
	if !bytes.Equal(got, payload) {
		t.Fatalf("data after restart = %q", got)
	}
	// New reservations still work (the address map persisted too, so
	// the cursor does not hand out overlapping space).
	start2 := mkRegion(t, n1b, 4096, region.Attrs{}, "alice")
	if (gaddr.Range{Start: start, Size: 8192}).Contains(start2) {
		t.Fatalf("post-restart reservation %v overlaps %v", start2, start)
	}
}

func TestHomeRestartServesPeers(t *testing.T) {
	net, nodes := testCluster(t, 3)
	ctx := context.Background()
	start := mkRegion(t, nodes[1], 4096, region.Attrs{}, "")
	lc, err := nodes[1].Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockWrite, "")
	if err != nil {
		t.Fatal(err)
	}
	_ = nodes[1].Write(lc, start, []byte("homed on n2"))
	_ = nodes[1].Unlock(ctx, lc)

	// Restart node 2; node 3 must still be able to read through it.
	n2b := restartNode(t, net, nodes[1])
	_ = n2b
	rlc, err := nodes[2].Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockRead, "")
	if err != nil {
		t.Fatalf("read after home restart: %v", err)
	}
	got, _ := nodes[2].Read(rlc, start, 11)
	_ = nodes[2].Unlock(ctx, rlc)
	if string(got) != "homed on n2" {
		t.Fatalf("read %q", got)
	}
}

func TestPersistCorruptMetadataRejected(t *testing.T) {
	net := transport.NewNetwork()
	tr, _ := net.Attach(1)
	dir := filepath.Join(t.TempDir(), "n1")
	n1, err := NewNode(Config{ID: 1, Transport: tr, StoreDir: dir, Genesis: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := n1.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	mkRegion(t, n1, 4096, region.Attrs{}, "")
	if err := n1.Close(); err != nil {
		t.Fatal(err)
	}
	// Clobber the regions file.
	if err := os.WriteFile(filepath.Join(dir, regionsFile), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	net.Detach(1)
	tr2, _ := net.Attach(1)
	n1b, err := NewNode(Config{ID: 1, Transport: tr2, StoreDir: dir, Genesis: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := n1b.Start(context.Background()); err == nil {
		t.Fatal("corrupt metadata should fail the restart")
	}
}
