package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
	"khazana/internal/region"
	"khazana/internal/security"
	"khazana/internal/transport"
	"khazana/internal/wire"
)

// testCluster spins up n daemons on a fresh simulated network. Node 1 is
// the cluster manager, map home, and genesis node.
func testCluster(t *testing.T, count int, mutate ...func(i int, cfg *Config)) (*transport.Network, []*Node) {
	t.Helper()
	net := transport.NewNetwork()
	nodes := make([]*Node, count)
	for i := 0; i < count; i++ {
		id := ktypes.NodeID(i + 1)
		tr, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			ID:             id,
			Transport:      tr,
			StoreDir:       filepath.Join(t.TempDir(), fmt.Sprintf("n%d", id)),
			ClusterManager: 1,
			MapHome:        1,
			Genesis:        id == 1,
		}
		for _, fn := range mutate {
			fn(i, &cfg)
		}
		node, err := NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := node.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = node.Close() })
		nodes[i] = node
	}
	return net, nodes
}

// mkRegion reserves and allocates a region on node, returning its start.
func mkRegion(t *testing.T, n *Node, size uint64, attrs region.Attrs, principal ktypes.Principal) gaddr.Addr {
	t.Helper()
	ctx := context.Background()
	start, err := n.Reserve(ctx, size, attrs, principal)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Allocate(ctx, start, principal); err != nil {
		t.Fatal(err)
	}
	return start
}

func TestSingleNodeLifecycle(t *testing.T) {
	_, nodes := testCluster(t, 1)
	n := nodes[0]
	ctx := context.Background()

	start := mkRegion(t, n, 8192, region.Attrs{}, "alice")
	lc, err := n.Lock(ctx, gaddr.Range{Start: start, Size: 8192}, ktypes.LockWrite, "alice")
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("hello khazana")
	if err := n.Write(lc, start.MustAdd(100), msg); err != nil {
		t.Fatal(err)
	}
	got, err := n.Read(lc, start.MustAdd(100), uint64(len(msg)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read %q", got)
	}
	if err := n.Unlock(ctx, lc); err != nil {
		t.Fatal(err)
	}
	// Reads after unlock fail.
	if _, err := n.Read(lc, start, 1); !errors.Is(err, ErrBadLock) {
		t.Fatalf("read after unlock: %v", err)
	}
}

func TestCrossNodeSharing(t *testing.T) {
	_, nodes := testCluster(t, 3)
	ctx := context.Background()
	start := mkRegion(t, nodes[1], 4096, region.Attrs{}, "alice")

	// Write on node 2 (the home), read on node 3.
	lc, err := nodes[1].Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockWrite, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if err := nodes[1].Write(lc, start, []byte("shared state")); err != nil {
		t.Fatal(err)
	}
	if err := nodes[1].Unlock(ctx, lc); err != nil {
		t.Fatal(err)
	}

	rlc, err := nodes[2].Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockRead, "bob")
	if err != nil {
		t.Fatal(err)
	}
	got, err := nodes[2].Read(rlc, start, 12)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "shared state" {
		t.Fatalf("node 3 read %q", got)
	}
	if err := nodes[2].Unlock(ctx, rlc); err != nil {
		t.Fatal(err)
	}
}

func TestWriteSpanningPages(t *testing.T) {
	_, nodes := testCluster(t, 2)
	ctx := context.Background()
	start := mkRegion(t, nodes[1], 3*4096, region.Attrs{}, "alice")

	lc, err := nodes[1].Lock(ctx, gaddr.Range{Start: start, Size: 3 * 4096}, ktypes.LockWrite, "alice")
	if err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte("0123456789abcdef"), 512) // 8 KiB across 3 pages
	off := start.MustAdd(2048)
	if err := nodes[1].Write(lc, off, big); err != nil {
		t.Fatal(err)
	}
	got, err := nodes[1].Read(lc, off, uint64(len(big)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("page-spanning write corrupted")
	}
	_ = nodes[1].Unlock(ctx, lc)

	// And the data survives a remote fetch.
	rlc, err := nodes[0].Lock(ctx, gaddr.Range{Start: start, Size: 3 * 4096}, ktypes.LockRead, "x")
	if err != nil {
		t.Fatal(err)
	}
	got, _ = nodes[0].Read(rlc, off, uint64(len(big)))
	if !bytes.Equal(got, big) {
		t.Fatal("remote read of spanning write corrupted")
	}
	_ = nodes[0].Unlock(ctx, rlc)
}

func TestLookupPathStages(t *testing.T) {
	_, nodes := testCluster(t, 3)
	ctx := context.Background()
	// Region homed on node 1 (manager).
	start := mkRegion(t, nodes[0], 4096, region.Attrs{}, "alice")
	// Announces are asynchronous; wait for the partition to converge so
	// the cold lookup below deterministically one-hops.
	nodes[0].RingSettle()

	// Node 3 has never seen the region: full lookup.
	n3 := nodes[2]
	if _, err := n3.GetAttr(ctx, start); err != nil {
		t.Fatal(err)
	}
	ringHits := n3.Statistics().RingHits.Load()
	walks := n3.Statistics().TreeWalks.Load()
	clusterHits := n3.Statistics().ClusterHits.Load()
	if ringHits+walks+clusterHits == 0 {
		t.Fatal("first lookup should have gone past the region directory")
	}
	// The ring partition resolves the cold miss before the legacy stages
	// get a chance: no tree walk, no cluster hint.
	if ringHits == 0 {
		t.Fatalf("cold lookup should resolve through the ring (walks=%d clusterHits=%d)", walks, clusterHits)
	}
	if walks+clusterHits != 0 {
		t.Fatalf("ring hit should preempt the legacy stages (walks=%d clusterHits=%d)", walks, clusterHits)
	}
	// Second lookup: region directory hit.
	if _, err := n3.GetAttr(ctx, start); err != nil {
		t.Fatal(err)
	}
	if n3.Statistics().DirHits.Load() == 0 {
		t.Fatal("second lookup should hit the region directory")
	}
}

func TestNotAllocatedGate(t *testing.T) {
	_, nodes := testCluster(t, 1)
	ctx := context.Background()
	start, err := nodes[0].Reserve(ctx, 4096, region.Attrs{}, "alice")
	if err != nil {
		t.Fatal(err)
	}
	_, err = nodes[0].Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockRead, "alice")
	if !errors.Is(err, ErrNotAllocated) {
		t.Fatalf("lock before allocate: %v", err)
	}
	if err := nodes[0].Allocate(ctx, start, "alice"); err != nil {
		t.Fatal(err)
	}
	lc, err := nodes[0].Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockRead, "alice")
	if err != nil {
		t.Fatal(err)
	}
	_ = nodes[0].Unlock(ctx, lc)
	// Free drops storage and gates again.
	if err := nodes[0].Free(ctx, start, "alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := nodes[0].Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockRead, "alice"); !errors.Is(err, ErrNotAllocated) {
		t.Fatalf("lock after free: %v", err)
	}
}

func TestAccessControl(t *testing.T) {
	_, nodes := testCluster(t, 2)
	ctx := context.Background()
	attrs := region.Attrs{ACL: security.Private("alice").Grant("bob", security.PermRead)}
	start := mkRegion(t, nodes[0], 4096, attrs, "alice")

	// bob can read but not write.
	if _, err := nodes[1].Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockRead, "bob"); err != nil {
		t.Fatalf("bob read: %v", err)
	}
	if _, err := nodes[1].Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockWrite, "bob"); err == nil {
		t.Fatal("bob write should be denied")
	}
	// mallory can do nothing.
	if _, err := nodes[1].Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockRead, "mallory"); err == nil {
		t.Fatal("mallory read should be denied")
	}
	// Unreserve needs admin.
	if err := nodes[1].Unreserve(ctx, start, "bob"); err == nil {
		t.Fatal("bob unreserve should be denied")
	}
}

func TestUnreserve(t *testing.T) {
	_, nodes := testCluster(t, 2)
	ctx := context.Background()
	start := mkRegion(t, nodes[1], 4096, region.Attrs{}, "alice")
	// Unreserve from the other node (forwarded to home).
	if err := nodes[0].Unreserve(ctx, start, "alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := nodes[0].GetAttr(ctx, start); err == nil {
		t.Fatal("region should be gone")
	}
}

func TestSetGetAttr(t *testing.T) {
	_, nodes := testCluster(t, 2)
	ctx := context.Background()
	start := mkRegion(t, nodes[0], 4096, region.Attrs{}, "alice")

	d, err := nodes[1].GetAttr(ctx, start)
	if err != nil {
		t.Fatal(err)
	}
	attrs := d.Attrs
	attrs.MinReplicas = 3
	if err := nodes[1].SetAttr(ctx, start, attrs, "alice"); err != nil {
		t.Fatal(err)
	}
	d2, err := nodes[1].GetAttr(ctx, start)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Attrs.MinReplicas != 3 {
		t.Fatalf("MinReplicas = %d", d2.Attrs.MinReplicas)
	}
	if d2.Epoch <= d.Epoch {
		t.Fatalf("epoch did not advance: %d -> %d", d.Epoch, d2.Epoch)
	}
	// Page size cannot change after reservation.
	attrs.PageSize = 16384
	if err := nodes[1].SetAttr(ctx, start, attrs, "alice"); err == nil {
		t.Fatal("page size change should be rejected")
	}
}

func TestCustomPageSize(t *testing.T) {
	_, nodes := testCluster(t, 1)
	ctx := context.Background()
	start := mkRegion(t, nodes[0], 64*1024, region.Attrs{PageSize: 16384}, "alice")
	d, err := nodes[0].GetAttr(ctx, start)
	if err != nil {
		t.Fatal(err)
	}
	if d.Attrs.PageSize != 16384 {
		t.Fatalf("page size = %d", d.Attrs.PageSize)
	}
	pages := d.Pages(0, d.Range.Size)
	if len(pages) != 4 {
		t.Fatalf("64K region with 16K pages = %d pages", len(pages))
	}
}

func TestLockRangeValidation(t *testing.T) {
	_, nodes := testCluster(t, 1)
	ctx := context.Background()
	start := mkRegion(t, nodes[0], 8192, region.Attrs{}, "alice")

	// Lock escaping the region fails.
	if _, err := nodes[0].Lock(ctx, gaddr.Range{Start: start.MustAdd(4096), Size: 8192}, ktypes.LockRead, "alice"); err == nil {
		t.Fatal("escaping lock should fail")
	}
	// Read/write outside the locked subrange fails.
	lc, err := nodes[0].Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockWrite, "alice")
	if err != nil {
		t.Fatal(err)
	}
	defer nodes[0].Unlock(ctx, lc)
	if _, err := nodes[0].Read(lc, start.MustAdd(4000), 200); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("out-of-range read: %v", err)
	}
	if err := nodes[0].Write(lc, start.MustAdd(5000), []byte("x")); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("out-of-range write: %v", err)
	}
	// Read-mode context cannot write.
	rlc, err := nodes[0].Lock(ctx, gaddr.Range{Start: start.MustAdd(4096), Size: 4096}, ktypes.LockRead, "alice")
	if err != nil {
		t.Fatal(err)
	}
	defer nodes[0].Unlock(ctx, rlc)
	if err := nodes[0].Write(rlc, start.MustAdd(4096), []byte("x")); err == nil {
		t.Fatal("write under read lock should fail")
	}
}

func TestConcurrentCountersAcrossNodes(t *testing.T) {
	_, nodes := testCluster(t, 4)
	ctx := context.Background()
	start := mkRegion(t, nodes[0], 4096, region.Attrs{}, "")

	const perNode = 10
	var wg sync.WaitGroup
	errs := make([]error, len(nodes))
	for i, n := range nodes {
		wg.Add(1)
		go func(i int, n *Node) {
			defer wg.Done()
			for j := 0; j < perNode; j++ {
				lc, err := n.Lock(ctx, gaddr.Range{Start: start, Size: 8}, ktypes.LockWrite, "")
				if err != nil {
					errs[i] = err
					return
				}
				buf, err := n.Read(lc, start, 8)
				if err != nil {
					errs[i] = err
					return
				}
				v := uint64(buf[0]) | uint64(buf[1])<<8 | uint64(buf[2])<<16 | uint64(buf[3])<<24
				v++
				out := []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24), 0, 0, 0, 0}
				if err := n.Write(lc, start, out); err != nil {
					errs[i] = err
					return
				}
				if err := n.Unlock(ctx, lc); err != nil {
					errs[i] = err
					return
				}
			}
		}(i, n)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i+1, err)
		}
	}
	lc, err := nodes[0].Lock(ctx, gaddr.Range{Start: start, Size: 8}, ktypes.LockRead, "")
	if err != nil {
		t.Fatal(err)
	}
	buf, _ := nodes[0].Read(lc, start, 8)
	_ = nodes[0].Unlock(ctx, lc)
	got := uint64(buf[0]) | uint64(buf[1])<<8 | uint64(buf[2])<<16 | uint64(buf[3])<<24
	if got != uint64(len(nodes)*perNode) {
		t.Fatalf("counter = %d, want %d", got, len(nodes)*perNode)
	}
}

func TestReleaseRetryAfterHomeOutage(t *testing.T) {
	net, nodes := testCluster(t, 2)
	ctx := context.Background()
	start := mkRegion(t, nodes[0], 4096, region.Attrs{}, "")

	lc, err := nodes[1].Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockWrite, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := nodes[1].Write(lc, start, []byte("dirty")); err != nil {
		t.Fatal(err)
	}
	// The home vanishes before the release.
	net.Crash(1)
	if err := nodes[1].Unlock(ctx, lc); err != nil {
		t.Fatalf("release errors must not surface (§3.5): %v", err)
	}
	if nodes[1].PendingRetries() == 0 {
		t.Fatal("failed release should be queued")
	}
	// Home returns; the background retry drains.
	net.Restart(1)
	nodes[1].RunRetries()
	if nodes[1].PendingRetries() != 0 {
		t.Fatal("retry queue should drain after home restart")
	}
	// The dirty data reached the home.
	hlc, err := nodes[0].Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockRead, "")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := nodes[0].Read(hlc, start, 5)
	_ = nodes[0].Unlock(ctx, hlc)
	if string(got) != "dirty" {
		t.Fatalf("home read %q after retry", got)
	}
}

func TestReplicaMaintenanceAndFailover(t *testing.T) {
	net, nodes := testCluster(t, 3)
	ctx := context.Background()
	attrs := region.Attrs{MinReplicas: 2}
	start := mkRegion(t, nodes[0], 4096, attrs, "")

	// Write some data at the home.
	lc, err := nodes[0].Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockWrite, "")
	if err != nil {
		t.Fatal(err)
	}
	_ = nodes[0].Write(lc, start, []byte("replicated"))
	_ = nodes[0].Unlock(ctx, lc)

	// Maintain replicas: the home recruits a secondary and pushes pages.
	nodes[0].MaintainReplicas()
	d, err := nodes[0].GetAttr(ctx, start)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Home) < 2 {
		t.Fatalf("homes = %v, want 2 after maintenance", d.Home)
	}
	secondary := d.Home[1]
	secNode := nodes[secondary-1]
	if sd := secNode.authDescByStart(start); sd == nil {
		t.Fatal("secondary home lacks the descriptor")
	}

	// Kill the primary; a fresh client must fail over via promotion.
	net.Crash(1)
	third := nodes[2]
	if third.ID() == secondary {
		third = nodes[1]
	}
	// Ensure the client has a cached descriptor pointing at the dead
	// primary (realistic stale state).
	third.RegionDir().Insert(d)
	flc, err := third.Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockRead, "")
	if err != nil {
		t.Fatalf("failover lock: %v", err)
	}
	got, _ := third.Read(flc, start, 10)
	_ = third.Unlock(ctx, flc)
	if string(got) != "replicated" {
		t.Fatalf("failover read %q", got)
	}
	if third.Statistics().Promotions.Load() == 0 && secNode.Statistics().Promotions.Load() == 0 {
		t.Fatal("no promotion recorded")
	}
}

func TestEvictionToDiskAndBack(t *testing.T) {
	_, nodes := testCluster(t, 1, func(i int, cfg *Config) {
		cfg.MemPages = 4
	})
	ctx := context.Background()
	n := nodes[0]
	start := mkRegion(t, n, 32*4096, region.Attrs{}, "")

	lc, err := n.Lock(ctx, gaddr.Range{Start: start, Size: 32 * 4096}, ktypes.LockWrite, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if err := n.Write(lc, start.MustAdd(uint64(i)*4096), []byte{byte(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Unlock(ctx, lc); err != nil {
		t.Fatal(err)
	}
	if n.Store().Disk().Len() == 0 {
		t.Fatal("RAM pressure should have demoted pages to disk")
	}
	// Everything reads back.
	rlc, err := n.Lock(ctx, gaddr.Range{Start: start, Size: 32 * 4096}, ktypes.LockRead, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		got, err := n.Read(rlc, start.MustAdd(uint64(i)*4096), 1)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i+1) {
			t.Fatalf("page %d = %d", i, got[0])
		}
	}
	_ = n.Unlock(ctx, rlc)
}

func TestFigure2TraceSequence(t *testing.T) {
	var mu sync.Mutex
	var steps []string
	_, nodes := testCluster(t, 2, func(i int, cfg *Config) {
		if i == 1 {
			cfg.Tracer = func(step string) {
				mu.Lock()
				steps = append(steps, step)
				mu.Unlock()
			}
		}
	})
	ctx := context.Background()
	start := mkRegion(t, nodes[0], 4096, region.Attrs{}, "")

	// Remote <lock, fetch> from node 2 for a page owned by node 1.
	lc, err := nodes[1].Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockRead, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nodes[1].Read(lc, start, 16); err != nil {
		t.Fatal(err)
	}
	_ = nodes[1].Unlock(ctx, lc)

	mu.Lock()
	defer mu.Unlock()
	joined := strings.Join(steps, " → ")
	for _, want := range []string{"1:obtain-region-descriptor", "6:request-credentials", "10:ownership-granted", "11:lock-granted", "12-13:data-supplied"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("trace missing %q: %s", want, joined)
		}
	}
}

func TestHeartbeatFeedsManagerHints(t *testing.T) {
	_, nodes := testCluster(t, 3)
	start := mkRegion(t, nodes[1], 4096, region.Attrs{}, "")
	nodes[1].SendHeartbeat()
	mgr := nodes[0].Manager()
	if mgr == nil {
		t.Fatal("node 1 should run the manager")
	}
	hints, found := mgr.Query(start)
	if !found || len(hints) == 0 || hints[0] != 2 {
		t.Fatalf("manager hints = %v, %v", hints, found)
	}
}

func TestWireClientOps(t *testing.T) {
	// Drive a daemon purely through the client message set, as a remote
	// (TCP) client would.
	net, nodes := testCluster(t, 1)
	_ = nodes
	client, err := net.Attach(99)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	req := func(m wire.Msg) wire.Msg {
		t.Helper()
		resp, err := client.Request(ctx, 1, m)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	res := req(&wire.CReserve{Size: 4096, Attrs: region.DefaultAttrs(), Principal: "cli"}).(*wire.CReserveResp)
	if res.Err != "" {
		t.Fatal(res.Err)
	}
	if ack := req(&wire.CAllocate{Start: res.Start, Principal: "cli"}).(*wire.Ack); ack.Err != "" {
		t.Fatal(ack.Err)
	}
	lockResp := req(&wire.CLock{Range: gaddr.Range{Start: res.Start, Size: 4096}, Mode: ktypes.LockWrite, Principal: "cli"}).(*wire.CLockResp)
	if lockResp.Err != "" {
		t.Fatal(lockResp.Err)
	}
	if ack := req(&wire.CWrite{LockID: lockResp.LockID, Addr: res.Start, Data: []byte("via wire")}).(*wire.Ack); ack.Err != "" {
		t.Fatal(ack.Err)
	}
	data := req(&wire.CRead{LockID: lockResp.LockID, Addr: res.Start, Len: 8}).(*wire.CData)
	if data.Err != "" || string(data.Data) != "via wire" {
		t.Fatalf("CRead = %q, %s", data.Data, data.Err)
	}
	if ack := req(&wire.CUnlock{LockID: lockResp.LockID}).(*wire.Ack); ack.Err != "" {
		t.Fatal(ack.Err)
	}
	info := req(&wire.CGetAttr{Addr: res.Start}).(*wire.RegionInfo)
	if !info.Found {
		t.Fatal("CGetAttr not found")
	}
	if ack := req(&wire.CUnreserve{Start: res.Start, Principal: "cli"}).(*wire.Ack); ack.Err != "" {
		t.Fatal(ack.Err)
	}
}

func TestManyRegionsForceTreeGrowth(t *testing.T) {
	_, nodes := testCluster(t, 2)
	ctx := context.Background()
	// Insert enough regions to split the address map root.
	for i := 0; i < 170; i++ {
		if _, err := nodes[0].Reserve(ctx, 4096, region.Attrs{}, ""); err != nil {
			t.Fatalf("reserve %d: %v", i, err)
		}
	}
	depth, err := nodes[0].AddressMap().Depth(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if depth < 2 {
		t.Fatalf("map depth = %d, want >= 2", depth)
	}
}

func TestEventualRegionEndToEnd(t *testing.T) {
	_, nodes := testCluster(t, 3)
	ctx := context.Background()
	attrs := region.Attrs{Level: region.Weak}
	start := mkRegion(t, nodes[0], 4096, attrs, "")

	d, _ := nodes[0].GetAttr(ctx, start)
	if d.Attrs.Protocol != region.Eventual {
		t.Fatalf("protocol = %v", d.Attrs.Protocol)
	}
	// Seed replicas on all nodes, write on one, verify convergence.
	for _, n := range nodes {
		lc, err := n.Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockRead, "")
		if err != nil {
			t.Fatal(err)
		}
		_ = n.Unlock(ctx, lc)
	}
	lc, err := nodes[2].Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockWrite, "")
	if err != nil {
		t.Fatal(err)
	}
	_ = nodes[2].Write(lc, start, []byte("eventually"))
	_ = nodes[2].Unlock(ctx, lc)

	deadline := time.Now().Add(2 * time.Second)
	for _, n := range nodes {
		for {
			rlc, err := n.Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockRead, "")
			if err != nil {
				t.Fatal(err)
			}
			got, _ := n.Read(rlc, start, 10)
			_ = n.Unlock(ctx, rlc)
			if string(got) == "eventually" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%v never converged: %q", n.ID(), got)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

func TestReleaseProtocolRegion(t *testing.T) {
	_, nodes := testCluster(t, 3)
	ctx := context.Background()
	attrs := region.Attrs{Level: region.Relaxed}
	start := mkRegion(t, nodes[1], 4096, attrs, "")

	lc, err := nodes[2].Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockWrite, "")
	if err != nil {
		t.Fatal(err)
	}
	_ = nodes[2].Write(lc, start, []byte("rc data"))
	_ = nodes[2].Unlock(ctx, lc)

	// RC: a subsequent acquire anywhere sees the released write.
	rlc, err := nodes[0].Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockRead, "")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := nodes[0].Read(rlc, start, 7)
	_ = nodes[0].Unlock(ctx, rlc)
	if string(got) != "rc data" {
		t.Fatalf("read %q", got)
	}
}
