package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
	"khazana/internal/pagedir"
	"khazana/internal/region"
	"khazana/internal/ring"
	"khazana/internal/wire"
)

// ErrInaccessible is returned when every stage of the lookup path fails:
// "If the region descriptor cannot be located, the region is deemed
// inaccessible and the operation fails back to the client" (§3.2).
var ErrInaccessible = errors.New("core: region inaccessible")

// lookupRegion resolves the descriptor of the region containing addr.
// The paper's three-stage path (§3.2, §3.5) — region directory, cluster
// manager, address map tree walk — gains a consistent-hashing stage in
// front of the legacy tail: a cold miss hashes the address to its ring
// owners and resolves in one RPC hop, demoting the cluster hint and
// tree walk to a repair-only fallback.
func (n *Node) lookupRegion(ctx context.Context, addr gaddr.Addr) (*region.Descriptor, error) {
	n.stats.Lookups.Add(1)
	// Stage 0: the address map region itself is well known.
	if n.mapDesc.Range.Contains(addr) {
		return n.mapDesc.Clone(), nil
	}
	// Stage 0b: regions homed here are authoritative.
	if d := n.authDesc(addr); d != nil {
		return d, nil
	}
	// Stage 1: region directory cache.
	stageStart := time.Now()
	if d, ok := n.rdir.Lookup(addr); ok {
		n.stats.DirHits.Add(1)
		n.mStageDir.ObserveSince(stageStart)
		n.trace("1:region-directory-hit")
		return d, nil
	}
	return n.lookupCold(ctx, addr)
}

// lookupCold resolves a directory miss, collapsing concurrent misses
// for the same hash bucket into one flight: the first caller does the
// remote lookup, waiters block on its completion and re-check the
// directory. A waiter whose address the leader's result did not cover
// (different region, same bucket) loops and becomes the next leader.
func (n *Node) lookupCold(ctx context.Context, addr gaddr.Addr) (*region.Descriptor, error) {
	key := ring.BucketOf(addr)
	for {
		n.flightMu.Lock()
		ch, inflight := n.flights[key]
		if !inflight {
			ch = make(chan struct{})
			n.flights[key] = ch
			n.flightMu.Unlock()
			d, err := n.coldFlight(ctx, addr)
			n.flightMu.Lock()
			delete(n.flights, key)
			n.flightMu.Unlock()
			close(ch)
			return d, err
		}
		n.flightMu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if d, ok := n.rdir.Lookup(addr); ok {
			n.stats.DirHits.Add(1)
			return d, nil
		}
	}
}

// coldFlight is the single in-flight cold lookup for a bucket: ring
// first (one RPC hop), then the legacy cluster-hint and tree-walk
// stages as repair fallback. Whatever the fallback finds is announced
// back to the ring owners so the next cold lookup one-hops.
func (n *Node) coldFlight(ctx context.Context, addr gaddr.Addr) (*region.Descriptor, error) {
	if !n.cfg.NoRing {
		stageStart := time.Now()
		if d := n.lookupViaRing(ctx, addr); d != nil {
			n.mRingLookups.Add(1)
			n.mStageRing.ObserveSince(stageStart)
			n.trace("2:ring-one-hop")
			n.rdir.Insert(d)
			return d.Clone(), nil
		}
		// The ring could not resolve the address — owners unreachable or
		// their tables missing the region. Steady state never gets here;
		// the legacy path below repairs the ring with whatever it finds.
		n.mRingFallbacks.Add(1)
	}
	// Legacy stage 2: cluster manager hint / cluster walk.
	stageStart := time.Now()
	if d := n.lookupViaCluster(ctx, addr); d != nil {
		n.stats.ClusterHits.Add(1)
		n.mStageCluster.ObserveSince(stageStart)
		n.rdir.Insert(d)
		n.ringAnnounce(ctx, d)
		return d.Clone(), nil
	}
	// Legacy stage 3: address map tree walk.
	n.trace("2-3:address-map-lookup")
	n.stats.TreeWalks.Add(1)
	stageStart = time.Now()
	entry, _, err := n.amap.Lookup(ctx, addr)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInaccessible, err)
	}
	d, err := n.fetchDescriptor(ctx, entry.Homes, entry.Range.Start)
	if err != nil {
		return nil, err
	}
	n.mStageWalk.ObserveSince(stageStart)
	n.rdir.Insert(d)
	n.ringAnnounce(ctx, d)
	return d.Clone(), nil
}

// authDesc returns a clone of the authoritative descriptor for the region
// containing addr, when this node homes it. Regions are disjoint, so only
// the one with the greatest start <= addr can contain it: a binary search
// of the sorted start index replaces the full-map scan, which at
// thousand-region fan-in dominated every request's handler time.
func (n *Node) authDesc(addr gaddr.Addr) *region.Descriptor {
	n.descMu.Lock()
	defer n.descMu.Unlock()
	i := sort.Search(len(n.descIndex), func(i int) bool {
		return n.descIndex[i].Cmp(addr) > 0
	})
	if i == 0 {
		return nil
	}
	if d := n.authDescs[n.descIndex[i-1]]; d.Range.Contains(addr) {
		return d.Clone()
	}
	return nil
}

// authDescByStart returns the authoritative descriptor starting exactly at
// start.
func (n *Node) authDescByStart(start gaddr.Addr) *region.Descriptor {
	n.descMu.Lock()
	defer n.descMu.Unlock()
	if d, ok := n.authDescs[start]; ok {
		return d.Clone()
	}
	return nil
}

// putAuthDesc installs an authoritative descriptor, keeping the sorted
// start index in step with the map.
func (n *Node) putAuthDesc(d *region.Descriptor) {
	n.descMu.Lock()
	defer n.descMu.Unlock()
	start := d.Range.Start
	if _, ok := n.authDescs[start]; !ok {
		i := sort.Search(len(n.descIndex), func(i int) bool {
			return n.descIndex[i].Cmp(start) > 0
		})
		n.descIndex = append(n.descIndex, gaddr.Addr{})
		copy(n.descIndex[i+1:], n.descIndex[i:])
		n.descIndex[i] = start
	}
	n.authDescs[start] = d.Clone()
}

// dropAuthDesc removes an authoritative descriptor and its index entry.
func (n *Node) dropAuthDesc(start gaddr.Addr) {
	n.descMu.Lock()
	defer n.descMu.Unlock()
	if _, ok := n.authDescs[start]; !ok {
		return
	}
	delete(n.authDescs, start)
	i := sort.Search(len(n.descIndex), func(i int) bool {
		return n.descIndex[i].Cmp(start) >= 0
	})
	if i < len(n.descIndex) && n.descIndex[i] == start {
		n.descIndex = append(n.descIndex[:i], n.descIndex[i+1:]...)
	}
}

// authStarts lists the starts of regions homed here.
func (n *Node) authStarts() []gaddr.Addr {
	n.descMu.Lock()
	defer n.descMu.Unlock()
	out := make([]gaddr.Addr, 0, len(n.authDescs))
	for s := range n.authDescs {
		out = append(out, s)
	}
	return out
}

// lookupViaCluster queries the cluster manager for nearby cachers of the
// region and fetches the descriptor from one of them.
func (n *Node) lookupViaCluster(ctx context.Context, addr gaddr.Addr) *region.Descriptor {
	var nodes []ktypes.NodeID
	if n.manager != nil {
		nodes, _ = n.manager.Query(addr)
	} else {
		resp, err := n.tr.Request(ctx, n.cfg.ClusterManager, &wire.ClusterQuery{Addr: addr})
		if err != nil {
			return nil
		}
		if hint, ok := resp.(*wire.ClusterHint); ok && hint.Found {
			nodes = hint.Nodes
		}
	}
	d, err := n.fetchDescriptorTolerant(ctx, nodes, addr)
	if err != nil {
		return nil
	}
	return d
}

// fetchDescriptor asks candidate nodes for the descriptor of the region
// containing addr, returning the first hit.
func (n *Node) fetchDescriptor(ctx context.Context, candidates []ktypes.NodeID, addr gaddr.Addr) (*region.Descriptor, error) {
	d, err := n.fetchDescriptorTolerant(ctx, candidates, addr)
	if err != nil {
		return nil, err
	}
	if d == nil {
		return nil, fmt.Errorf("%w: no candidate knows %v", ErrInaccessible, addr)
	}
	return d, nil
}

func (n *Node) fetchDescriptorTolerant(ctx context.Context, candidates []ktypes.NodeID, addr gaddr.Addr) (*region.Descriptor, error) {
	var lastErr error
	for _, node := range candidates {
		if node == n.cfg.ID {
			if d := n.authDesc(addr); d != nil {
				return d, nil
			}
			if d, ok := n.rdir.Lookup(addr); ok {
				return d, nil
			}
			continue
		}
		resp, err := n.tr.Request(ctx, node, &wire.RegionLookup{Addr: addr})
		if err != nil {
			lastErr = err
			continue
		}
		info, ok := resp.(*wire.RegionInfo)
		if !ok || !info.Found {
			continue
		}
		return info.Desc, nil
	}
	return nil, lastErr
}

// refreshDescriptor drops a stale cached descriptor and re-resolves it;
// used after a home pointer proves stale (§3.2: "the use of a stale home
// pointer will simply result in a message being sent to a node that no
// longer is home").
func (n *Node) refreshDescriptor(ctx context.Context, d *region.Descriptor) (*region.Descriptor, error) {
	n.rdir.Remove(d.Range.Start)
	// Ask the region's own homes first: they are authoritative, while
	// ring and directory answers are cache copies that may trail an
	// asynchronous announce. Fall back to the full lookup path when no
	// listed home answers (e.g. the home list itself is stale).
	if fresh, err := n.fetchDescriptorTolerant(ctx, d.Home, d.Range.Start); err == nil && fresh != nil {
		n.rdir.Insert(fresh)
		return fresh.Clone(), nil
	}
	return n.lookupRegion(ctx, d.Range.Start)
}

// promoteHome asks the next listed home of a region to take over as
// primary after the current primary became unreachable (§3.5: operations
// are repeatedly tried on all known Khazana nodes).
func (n *Node) promoteHome(ctx context.Context, d *region.Descriptor) (*region.Descriptor, error) {
	for _, candidate := range d.Home[1:] {
		if candidate == n.cfg.ID {
			promoted := n.promoteLocal(ctx, d.Range.Start)
			if promoted != nil {
				return promoted, nil
			}
			continue
		}
		resp, err := n.tr.Request(ctx, candidate, &wire.Promote{Start: d.Range.Start, From: n.cfg.ID})
		if err != nil {
			continue
		}
		info, ok := resp.(*wire.RegionInfo)
		if !ok || !info.Found {
			continue
		}
		n.stats.Promotions.Add(1)
		n.rdir.Insert(info.Desc)
		return info.Desc.Clone(), nil
	}
	return nil, fmt.Errorf("%w: no home of %v reachable", ErrInaccessible, d.Range.Start)
}

// promoteLocal makes this node the primary home for a region it already
// holds a secondary descriptor for. Concurrent promotions of one region
// collapse into a single flight: the first caller runs the election and
// descriptor reorder, later callers wait for it and adopt its outcome,
// so two clients noticing the dead home at once cannot both reorder the
// home list or run competing elections.
func (n *Node) promoteLocal(ctx context.Context, start gaddr.Addr) *region.Descriptor {
	n.promoMu.Lock()
	if ch, inflight := n.promo[start]; inflight {
		n.promoMu.Unlock()
		<-ch
		if d := n.authDescByStart(start); d != nil {
			if h, err := d.PrimaryHome(); err == nil && h == n.cfg.ID {
				return d
			}
		}
		return nil
	}
	ch := make(chan struct{})
	n.promo[start] = ch
	n.promoMu.Unlock()
	defer func() {
		n.promoMu.Lock()
		delete(n.promo, start)
		n.promoMu.Unlock()
		close(ch)
	}()
	return n.promoteFlight(ctx, start)
}

// promoteFlight is the single in-flight promotion for a region: win the
// region's log election (when a quorum is reachable without the dead
// primary), resume from the replicated log, then take over as primary.
// Promotion must finish even if the triggering request is canceled — a
// half-promoted home would strand the region — so the map update
// detaches from the caller's cancellation.
func (n *Node) promoteFlight(ctx context.Context, start gaddr.Addr) *region.Descriptor {
	n.descMu.Lock()
	d, ok := n.authDescs[start]
	if !ok || !d.HasHome(n.cfg.ID) {
		n.descMu.Unlock()
		return nil
	}
	snap := d.Clone()
	n.descMu.Unlock()
	if h, err := snap.PrimaryHome(); err == nil && h == n.cfg.ID {
		// Already primary — a racing caller's flight finished first, or
		// the caller's descriptor was stale. Nothing to reorder.
		return snap
	}

	// One election, then resume from the log (§3.5, upgraded): with three
	// or more listed homes a ballot majority exists without the dead
	// primary, so the candidate must win an election before taking over —
	// the term number fences off any deposed primary that comes back. A
	// two-home region cannot form a quorum without its dead primary and
	// keeps the legacy ad-hoc takeover below.
	if len(snap.Home) >= 3 {
		if !n.campaignFor(ctx, snap) {
			return nil
		}
		n.replayRepl(start)
	}

	n.descMu.Lock()
	d, ok = n.authDescs[start]
	if !ok || !d.HasHome(n.cfg.ID) {
		n.descMu.Unlock()
		return nil
	}
	// Move self to the front of the home list.
	homes := []ktypes.NodeID{n.cfg.ID}
	for _, h := range d.Home {
		if h != n.cfg.ID {
			homes = append(homes, h)
		}
	}
	d.Home = homes
	d.Epoch++
	out := d.Clone()
	n.descMu.Unlock()

	n.stats.Promotions.Add(1)
	n.mHomePromos.Add(1)
	n.rdir.Insert(out)
	// Re-announce the promoted descriptor to its ring owners so one-hop
	// cold lookups resolve to the new home immediately.
	n.ringAnnounce(ctx, out)
	// Best-effort map update so tree walkers find the new home.
	mapCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 2*time.Second)
	defer cancel()
	_ = n.mapSetHomes(mapCtx, start, homes)
	return out
}

// campaignFor runs the region's failover election with bounded retries:
// split votes or an unreachable straggler back off briefly and retry, so
// one promoteLocal call rides out transient vote denials without pushing
// the failover past the availability bound.
func (n *Node) campaignFor(ctx context.Context, d *region.Descriptor) bool {
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n.repl.Campaign(ctx, d) {
			return true
		}
		if ctx.Err() != nil || time.Now().After(deadline) {
			return false
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// replayRepl resumes the region from its replicated metadata log: every
// page's committed version, owner, and copyset — appended by the old
// home before it acked each release — lands in the local page directory,
// so grants issued by the new home start from the exact state the dead
// primary had acknowledged. Page contents refetch on demand; the
// metadata is what a crash must not lose.
func (n *Node) replayRepl(start gaddr.Addr) {
	state, ok := n.repl.Snapshot(start)
	if !ok {
		return
	}
	for page, ver := range state.PageVersion {
		owner := state.Owner[page]
		copyset := state.Copyset[page]
		n.dir.Update(page, func(e *pagedir.Entry) {
			e.HomedLocal = true
			if ver >= e.Version {
				e.Version = ver
				if owner != ktypes.NilNode {
					e.Owner = owner
				}
				for _, c := range copyset {
					e.AddSharer(c)
				}
			}
		})
	}
}
