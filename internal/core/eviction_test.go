package core

import (
	"context"
	"fmt"
	"testing"

	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
	"khazana/internal/region"
)

// TestDirtyPageEvictionPushesHome exercises §3.4: "When the disk cache
// wants to victimize a page, it must invoke the consistency protocol
// associated with the page to ... push any dirty data to remote nodes."
// A page whose release failed stays dirty; when storage pressure pushes
// it out of the node entirely, the eviction delivers it to the home, and
// the queued retry recognizes the delivery instead of clobbering it.
func TestDirtyPageEvictionPushesHome(t *testing.T) {
	net, nodes := testCluster(t, 2, func(i int, cfg *Config) {
		if i == 1 {
			cfg.MemPages = 4
			cfg.DiskPages = 4
		}
	})
	ctx := context.Background()
	// Release protocol: the home accepts UpdatePush, which is what the
	// eviction path sends.
	attrs := region.Attrs{Protocol: region.Release}
	start := mkRegion(t, nodes[0], 4096, attrs, "")

	// n2 writes while the home is down: the release queues and the page
	// stays dirty.
	lc, err := nodes[1].Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockWrite, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := nodes[1].Write(lc, start, []byte("evicted while dirty")); err != nil {
		t.Fatal(err)
	}
	net.Crash(1)
	if err := nodes[1].Unlock(ctx, lc); err != nil {
		t.Fatal(err)
	}
	if nodes[1].PendingRetries() != 1 {
		t.Fatalf("retries = %d", nodes[1].PendingRetries())
	}
	entry, _ := nodes[1].PageDir().Lookup(start)
	if !entry.Dirty {
		t.Fatal("page must stay dirty while the release is undelivered")
	}

	// Home returns; storage pressure on n2 forces the dirty page out of
	// the node. One single-page region at a time, so pinned pages never
	// exceed the 4-page RAM tier.
	net.Restart(1)
	for i := 0; i < 12 && nodes[1].Store().Contains(start); i++ {
		p := mkRegion(t, nodes[0], 4096, region.Attrs{Protocol: region.Release}, "")
		plc, err := nodes[1].Lock(ctx, gaddr.Range{Start: p, Size: 4096}, ktypes.LockWrite, "")
		if err != nil {
			t.Fatalf("pressure lock %d: %v", i, err)
		}
		if err := nodes[1].Write(plc, p, []byte(fmt.Sprint(i))); err != nil {
			t.Fatalf("pressure write %d: %v", i, err)
		}
		if err := nodes[1].Unlock(ctx, plc); err != nil {
			t.Fatal(err)
		}
	}
	// Whether it left via eviction or stays resident, the data must end
	// up intact at the home after the retry queue drains.
	nodes[1].RunRetries()
	if nodes[1].PendingRetries() != 0 {
		t.Fatalf("retries never drained: %d", nodes[1].PendingRetries())
	}
	rlc, err := nodes[0].Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockRead, "")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := nodes[0].Read(rlc, start, 19)
	_ = nodes[0].Unlock(ctx, rlc)
	if string(got) != "evicted while dirty" {
		t.Fatalf("home data = %q (dirty update lost or clobbered)", got)
	}
}
