package core

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"khazana/internal/frame"
	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
	"khazana/internal/region"
	"khazana/internal/store"
	"khazana/internal/telemetry"
)

// TestDirtyPageEvictionPushesHome exercises §3.4: "When the disk cache
// wants to victimize a page, it must invoke the consistency protocol
// associated with the page to ... push any dirty data to remote nodes."
// A page whose release failed stays dirty; when storage pressure pushes
// it out of the node entirely, the eviction delivers it to the home, and
// the queued retry recognizes the delivery instead of clobbering it.
func TestDirtyPageEvictionPushesHome(t *testing.T) {
	net, nodes := testCluster(t, 2, func(i int, cfg *Config) {
		if i == 1 {
			cfg.MemPages = 4
			cfg.DiskPages = 4
		}
	})
	ctx := context.Background()
	// Release protocol: the home accepts UpdatePush, which is what the
	// eviction path sends.
	attrs := region.Attrs{Protocol: region.Release}
	start := mkRegion(t, nodes[0], 4096, attrs, "")

	// n2 writes while the home is down: the release queues and the page
	// stays dirty.
	lc, err := nodes[1].Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockWrite, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := nodes[1].Write(lc, start, []byte("evicted while dirty")); err != nil {
		t.Fatal(err)
	}
	net.Crash(1)
	if err := nodes[1].Unlock(ctx, lc); err != nil {
		t.Fatal(err)
	}
	if nodes[1].PendingRetries() != 1 {
		t.Fatalf("retries = %d", nodes[1].PendingRetries())
	}
	entry, _ := nodes[1].PageDir().Lookup(start)
	if !entry.Dirty {
		t.Fatal("page must stay dirty while the release is undelivered")
	}

	// Home returns; storage pressure on n2 forces the dirty page out of
	// the node. One single-page region at a time, so pinned pages never
	// exceed the 4-page RAM tier.
	net.Restart(1)
	for i := 0; i < 12 && nodes[1].Store().Contains(start); i++ {
		p := mkRegion(t, nodes[0], 4096, region.Attrs{Protocol: region.Release}, "")
		plc, err := nodes[1].Lock(ctx, gaddr.Range{Start: p, Size: 4096}, ktypes.LockWrite, "")
		if err != nil {
			t.Fatalf("pressure lock %d: %v", i, err)
		}
		if err := nodes[1].Write(plc, p, []byte(fmt.Sprint(i))); err != nil {
			t.Fatalf("pressure write %d: %v", i, err)
		}
		if err := nodes[1].Unlock(ctx, plc); err != nil {
			t.Fatal(err)
		}
	}
	// Whether it left via eviction or stays resident, the data must end
	// up intact at the home after the retry queue drains.
	nodes[1].RunRetries()
	if nodes[1].PendingRetries() != 0 {
		t.Fatalf("retries never drained: %d", nodes[1].PendingRetries())
	}
	rlc, err := nodes[0].Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockRead, "")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := nodes[0].Read(rlc, start, 19)
	_ = nodes[0].Unlock(ctx, rlc)
	if string(got) != "evicted while dirty" {
		t.Fatalf("home data = %q (dirty update lost or clobbered)", got)
	}
}

// TestSpeculativeFramesEvictFirst pins down the read-ahead eviction
// contract at the RAM tier: under pressure, unconsumed speculative pages
// are reclaimed before any demand page, and they are dropped outright
// (speculative data is re-fetchable by definition) rather than demoted
// through the eviction callback like a demand page.
func TestSpeculativeFramesEvictFirst(t *testing.T) {
	var demoted []gaddr.Addr
	mem := store.NewMemStore(4, func(page gaddr.Addr, f *frame.Frame) error {
		demoted = append(demoted, page)
		return nil
	})
	pg := func(i uint64) gaddr.Addr { return gaddr.FromUint64(i * 4096) }
	put := func(i uint64) {
		f := frame.Copy([]byte{byte(i)})
		if err := mem.Put(pg(i), f); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		f.Release()
	}
	put(0)
	put(1)
	for i := uint64(2); i < 4; i++ {
		f := frame.Copy([]byte{byte(i)})
		if !mem.PutSpeculative(pg(i), f) {
			t.Fatalf("speculative put %d refused with free capacity", i)
		}
		f.Release()
	}

	// Two more demand pages into the full store: the two speculative
	// pages must be the victims, with no demotion callback.
	put(4)
	put(5)
	if len(demoted) != 0 {
		t.Fatalf("demand pages demoted while speculative pages were reclaimable: %v", demoted)
	}
	if mem.Contains(pg(2)) || mem.Contains(pg(3)) {
		t.Fatal("speculative pages must be victimized before any demand page")
	}

	// A third demand page finds only demand pages resident: now the LRU
	// demand page demotes through the callback.
	put(6)
	if len(demoted) != 1 || demoted[0] != pg(0) {
		t.Fatalf("demoted = %v, want the LRU demand page %v", demoted, pg(0))
	}
}

// TestWastedPrefetchNeverEvictsDemandPage proves the other half of the
// contract: a speculative store into a store full of demand pages is
// refused (returns false) instead of displacing anything, and a
// speculative page consumed by a demand Get is promoted — it stops being
// reclaimable as read-ahead waste.
func TestWastedPrefetchNeverEvictsDemandPage(t *testing.T) {
	mem := store.NewMemStore(2, func(page gaddr.Addr, f *frame.Frame) error {
		t.Fatalf("page %v demoted; this test must never evict a demand page", page)
		return nil
	})
	pg := func(i uint64) gaddr.Addr { return gaddr.FromUint64(i * 4096) }
	for i := uint64(0); i < 2; i++ {
		f := frame.Copy([]byte{byte(i)})
		if err := mem.Put(pg(i), f); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		f.Release()
	}

	f := frame.Copy([]byte{2})
	if mem.PutSpeculative(pg(2), f) {
		t.Fatal("speculative store must be refused when only demand pages are resident")
	}
	f.Release()
	if !mem.Contains(pg(0)) || !mem.Contains(pg(1)) {
		t.Fatal("demand pages lost to a wasted prefetch")
	}

	// Free a slot, land a speculative page, and consume it: the demand
	// Get promotes it, so the next wasted prefetch is refused again.
	mem.Delete(pg(1))
	f = frame.Copy([]byte{2})
	if !mem.PutSpeculative(pg(2), f) {
		t.Fatal("speculative store refused with a free slot")
	}
	f.Release()
	got, ok := mem.Get(pg(2))
	if !ok {
		t.Fatal("speculative page vanished before consumption")
	}
	got.Release()
	if mem.Speculative(pg(2)) {
		t.Fatal("a consumed speculative page must be promoted to demand status")
	}
	f = frame.Copy([]byte{3})
	if mem.PutSpeculative(pg(3), f) {
		t.Fatal("speculative store must be refused after the previous grant was promoted")
	}
	f.Release()
}

// TestPrefetchPressureReclaimsSpeculativeFirst runs the contract end to
// end through the grant pipeline: a remote sequential reader accumulates
// speculative grants, local demand pressure reclaims exactly those
// speculative frames (dropped, not demoted to disk) while the demand
// pages survive in the hierarchy, and the reader then recovers from the
// lost prefetch by refetching — counting it as waste, never reading
// stale or zero bytes.
func TestPrefetchPressureReclaimsSpeculativeFirst(t *testing.T) {
	_, nodes := testCluster(t, 2, func(i int, cfg *Config) {
		if i == 1 {
			cfg.MemPages = 8
		}
	})
	ctx := context.Background()
	const pageSize = uint64(4096)
	start := mkRegion(t, nodes[0], 8*pageSize, region.Attrs{}, "")
	fill := make([]byte, 8*pageSize)
	for i := range fill {
		fill[i] = byte(i % 251)
	}
	wlc, err := nodes[0].Lock(ctx, gaddr.Range{Start: start, Size: 8 * pageSize}, ktypes.LockWrite, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := nodes[0].Write(wlc, start, fill); err != nil {
		t.Fatal(err)
	}
	if err := nodes[0].Unlock(ctx, wlc); err != nil {
		t.Fatal(err)
	}

	// Three sequential single-page reads prime the home's stream tracker;
	// the third reply piggybacks speculative grants for the next pages.
	readPage := func(n *Node, i uint64) []byte {
		t.Helper()
		p := start.MustAdd(i * pageSize)
		lc, err := n.Lock(ctx, gaddr.Range{Start: p, Size: pageSize}, ktypes.LockRead, "")
		if err != nil {
			t.Fatalf("read lock page %d: %v", i, err)
		}
		got, err := n.Read(lc, p, pageSize)
		if err != nil {
			t.Fatalf("read page %d: %v", i, err)
		}
		if err := n.Unlock(ctx, lc); err != nil {
			t.Fatal(err)
		}
		return got
	}
	for i := uint64(0); i < 3; i++ {
		readPage(nodes[1], i)
	}
	spec := start.MustAdd(3 * pageSize)
	if !nodes[1].Store().Mem().Speculative(spec) {
		t.Fatal("sequential reads did not leave a speculative grant for the next page")
	}

	// Local demand pressure: a node-2-homed region big enough to overflow
	// the 8-page RAM tier. The speculative frames must go first —
	// dropped from the node entirely, never demoted to disk.
	local := mkRegion(t, nodes[1], 8*pageSize, region.Attrs{}, "")
	llc, err := nodes[1].Lock(ctx, gaddr.Range{Start: local, Size: 8 * pageSize}, ktypes.LockWrite, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := nodes[1].Write(llc, local, make([]byte, 8*pageSize)); err != nil {
		t.Fatal(err)
	}
	if err := nodes[1].Unlock(ctx, llc); err != nil {
		t.Fatal(err)
	}
	if nodes[1].Store().Contains(spec) {
		t.Fatal("wasted speculative page must be dropped outright, not kept or demoted to disk")
	}
	for i := uint64(0); i < 3; i++ {
		if !nodes[1].Store().Contains(start.MustAdd(i * pageSize)) {
			t.Fatalf("demand page %d fell out of the storage hierarchy under speculative pressure", i)
		}
	}

	// The reader recovers from the reclaimed prefetch: the next read
	// refetches (counted as prefetch waste) and sees the real bytes.
	got := readPage(nodes[1], 3)
	want := fill[3*pageSize : 3*pageSize+pageSize]
	if !bytes.Equal(got, want) {
		t.Fatal("refetch after a reclaimed prefetch returned wrong bytes")
	}
	var waste uint64
	for _, cs := range nodes[1].MetricsSnapshot().Counters {
		if cs.Name == telemetry.MetricPrefetchWaste {
			waste = cs.Value
		}
	}
	if waste == 0 {
		t.Fatal("a reclaimed prefetch consumed on the demand path must count as waste")
	}
}
