package core

import (
	"context"
	"errors"
	"testing"

	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
	"khazana/internal/region"
	"khazana/internal/security"
)

func TestMigrateRegionHandoff(t *testing.T) {
	_, nodes := testCluster(t, 3)
	ctx := context.Background()
	start := mkRegion(t, nodes[0], 2*4096, region.Attrs{}, "admin")

	lc, err := nodes[0].Lock(ctx, gaddr.Range{Start: start, Size: 8192}, ktypes.LockWrite, "admin")
	if err != nil {
		t.Fatal(err)
	}
	_ = nodes[0].Write(lc, start, []byte("migrating data"))
	_ = nodes[0].Write(lc, start.MustAdd(4096), []byte("second page"))
	if err := nodes[0].Unlock(ctx, lc); err != nil {
		t.Fatal(err)
	}

	if err := nodes[0].MigrateRegion(ctx, start, 3, "admin"); err != nil {
		t.Fatal(err)
	}
	// The new primary home is node 3 everywhere that matters.
	d := nodes[2].authDescByStart(start)
	if d == nil {
		t.Fatal("new home lacks the descriptor")
	}
	if home, _ := d.PrimaryHome(); home != 3 {
		t.Fatalf("new primary = %v", home)
	}
	// The map records the move so cold lookups find node 3.
	entry, _, err := nodes[1].AddressMap().Lookup(ctx, start)
	if err != nil {
		t.Fatal(err)
	}
	if len(entry.Homes) == 0 || entry.Homes[0] != 3 {
		t.Fatalf("map homes = %v", entry.Homes)
	}
	// Data survives: read via a node with a cold cache.
	rlc, err := nodes[1].Lock(ctx, gaddr.Range{Start: start, Size: 8192}, ktypes.LockRead, "admin")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := nodes[1].Read(rlc, start, 14)
	got2, _ := nodes[1].Read(rlc, start.MustAdd(4096), 11)
	_ = nodes[1].Unlock(ctx, rlc)
	if string(got) != "migrating data" || string(got2) != "second page" {
		t.Fatalf("post-migration read %q / %q", got, got2)
	}
	// Writes now serialize at node 3.
	wlc, err := nodes[1].Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockWrite, "admin")
	if err != nil {
		t.Fatal(err)
	}
	_ = nodes[1].Write(wlc, start, []byte("after move"))
	_ = nodes[1].Unlock(ctx, wlc)
	if data, ok := nodes[2].Store().GetCopy(start); !ok || string(data[:10]) != "after move" {
		t.Fatalf("new home store = %q, %v", data[:10], ok)
	}
}

func TestMigrateStaleClientRecovers(t *testing.T) {
	_, nodes := testCluster(t, 3)
	ctx := context.Background()
	start := mkRegion(t, nodes[0], 4096, region.Attrs{}, "admin")
	lc, _ := nodes[0].Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockWrite, "admin")
	_ = nodes[0].Write(lc, start, []byte("payload"))
	_ = nodes[0].Unlock(ctx, lc)

	// Node 2 caches the pre-migration descriptor.
	if _, err := nodes[1].GetAttr(ctx, start); err != nil {
		t.Fatal(err)
	}
	if err := nodes[2].MigrateRegion(ctx, start, 3, "admin"); err != nil {
		t.Fatal(err)
	}
	// Node 2's next lock uses the stale descriptor, gets ErrNotHome from
	// node 1, refreshes, and succeeds against node 3 (§3.2).
	rlc, err := nodes[1].Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockRead, "admin")
	if err != nil {
		t.Fatalf("stale client lock after migration: %v", err)
	}
	got, _ := nodes[1].Read(rlc, start, 7)
	_ = nodes[1].Unlock(ctx, rlc)
	if string(got) != "payload" {
		t.Fatalf("stale client read %q", got)
	}
}

func TestMigrateValidation(t *testing.T) {
	_, nodes := testCluster(t, 2)
	ctx := context.Background()
	attrs := region.Attrs{ACL: security.Private("admin")}
	start := mkRegion(t, nodes[0], 4096, attrs, "admin")

	// Non-admin principals cannot migrate.
	if err := nodes[0].MigrateRegion(ctx, start, 2, "mallory"); err == nil {
		t.Fatal("non-admin migrate should fail")
	}
	// Unknown targets are rejected.
	if err := nodes[0].MigrateRegion(ctx, start, 99, "admin"); err == nil {
		t.Fatal("unknown target should fail")
	}
	// Migrating to self is a no-op.
	if err := nodes[0].MigrateRegion(ctx, start, 1, "admin"); err != nil {
		t.Fatal(err)
	}
	// Busy regions refuse migration.
	lc, err := nodes[0].Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockWrite, "admin")
	if err != nil {
		t.Fatal(err)
	}
	err = nodes[0].MigrateRegion(ctx, start, 2, "admin")
	if !errors.Is(err, ErrBusyRegion) {
		t.Fatalf("busy migrate = %v", err)
	}
	_ = nodes[0].Unlock(ctx, lc)
	if err := nodes[0].MigrateRegion(ctx, start, 2, "admin"); err != nil {
		t.Fatalf("migrate after unlock: %v", err)
	}
	// Migrating the middle of a region is rejected.
	if err := nodes[0].MigrateRegion(ctx, start.MustAdd(16), 2, "admin"); !errors.Is(err, ErrNotRegionStart) {
		t.Fatalf("mid-region migrate = %v", err)
	}
}

func TestStatsRPC(t *testing.T) {
	_, nodes := testCluster(t, 2)
	ctx := context.Background()
	start := mkRegion(t, nodes[0], 4096, region.Attrs{}, "")
	lc, _ := nodes[1].Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockWrite, "")
	_ = nodes[1].Write(lc, start, []byte("x"))
	_ = nodes[1].Unlock(ctx, lc)

	resp := nodes[0].statsResp()
	if resp.Node != 1 || resp.HomedRegions != 1 {
		t.Fatalf("stats = %+v", resp)
	}
	r2 := nodes[1].statsResp()
	if r2.LocksGranted == 0 || r2.Lookups == 0 {
		t.Fatalf("node 2 stats = %+v", r2)
	}
	if len(resp.Members) < 2 {
		t.Fatalf("members = %v", resp.Members)
	}
}
