package core

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
	"khazana/internal/region"
	"khazana/internal/telemetry"
)

// TestConcurrentSequentialReadersAdaptK races the whole read-ahead grant
// pipeline: several sequential readers sweep a shared region concurrently
// — two goroutines per reader node, so each node's requester stream at
// the home interleaves hits, waste, and resets, forcing the home's
// per-stream K to adapt up and down while grants are in flight. Under
// -race this validates the planner's internal locking, the client-side
// speculative bookkeeping (consume / forget / release paths), and the
// speculative frame lifecycle. Every read must see the seeded bytes:
// a speculative grant is only ever a fresher-or-equal copy.
func TestConcurrentSequentialReadersAdaptK(t *testing.T) {
	_, nodes := testCluster(t, 3)
	ctx := context.Background()
	const (
		pageSize = uint64(4096)
		pages    = 32
		sweeps   = 4
	)
	start := mkRegion(t, nodes[0], pages*pageSize, region.Attrs{}, "")
	fill := make([]byte, pages*pageSize)
	for i := range fill {
		fill[i] = byte(i % 247)
	}
	lc, err := nodes[0].Lock(ctx, gaddr.Range{Start: start, Size: pages * pageSize}, ktypes.LockWrite, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := nodes[0].Write(lc, start, fill); err != nil {
		t.Fatal(err)
	}
	if err := nodes[0].Unlock(ctx, lc); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errc := make(chan error, 16)
	sweep := func(n *Node) {
		defer wg.Done()
		for s := 0; s < sweeps; s++ {
			for i := uint64(0); i < pages; i++ {
				p := start.MustAdd(i * pageSize)
				rlc, err := n.Lock(ctx, gaddr.Range{Start: p, Size: pageSize}, ktypes.LockRead, "")
				if err != nil {
					errc <- err
					return
				}
				got, err := n.Read(rlc, p, pageSize)
				if err == nil && !bytes.Equal(got, fill[i*pageSize:(i+1)*pageSize]) {
					err = fmt.Errorf("read returned wrong bytes for page %d", i)
				}
				if uerr := n.Unlock(ctx, rlc); err == nil {
					err = uerr
				}
				if err != nil {
					errc <- err
					return
				}
			}
		}
	}
	// Two concurrent sweepers per reader node: both feed the same
	// requester stream at the home, so the planner sees out-of-window
	// demands (resets), re-requested speculations (waste, K shrinks),
	// and silent consumption (hits, K grows) all interleaved.
	for _, n := range []*Node{nodes[1], nodes[2]} {
		wg.Add(2)
		go sweep(n)
		go sweep(n)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// The home must actually have speculated during the contention — the
	// race is only meaningful if the adaptive path ran.
	var spec uint64
	for _, hs := range nodes[0].MetricsSnapshot().Histograms {
		if hs.Name == telemetry.MetricPrefetchSpecPages {
			spec = hs.Sum
		}
	}
	if spec == 0 {
		t.Fatal("home never speculated: the adaptive pipeline did not run under contention")
	}
}
