package core

import (
	"context"
	"testing"
	"time"

	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
	"khazana/internal/region"
)

// Partitions differ from crashes: both sides keep running and the link
// may heal (§1: "some or all of the nodes may be connected via slow or
// intermittent WAN links"). These tests inject link cuts rather than
// process failures.

func TestPartitionedClientFailsThenHeals(t *testing.T) {
	net, nodes := testCluster(t, 3)
	ctx := context.Background()
	start := mkRegion(t, nodes[0], 4096, region.Attrs{}, "")

	net.Partition(1, 3)
	shortCtx, cancel := context.WithTimeout(ctx, 200*time.Millisecond)
	_, err := nodes[2].Lock(shortCtx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockRead, "")
	cancel()
	if err == nil {
		t.Fatal("lock across a cut link should fail")
	}
	net.Heal(1, 3)
	lc, err := nodes[2].Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockRead, "")
	if err != nil {
		t.Fatalf("lock after heal: %v", err)
	}
	_ = nodes[2].Unlock(ctx, lc)
}

func TestPartitionDuringInvalidationStaysConsistent(t *testing.T) {
	// A sharer partitioned away during a CREW invalidation keeps a stale
	// local copy, but CREW correctness survives: its next read lock must
	// go through the home, which supplies fresh data.
	net, nodes := testCluster(t, 3)
	ctx := context.Background()
	start := mkRegion(t, nodes[0], 4096, region.Attrs{}, "")

	// n3 caches v1.
	lc, _ := nodes[0].Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockWrite, "")
	_ = nodes[0].Write(lc, start, []byte("v1"))
	_ = nodes[0].Unlock(ctx, lc)
	rlc, err := nodes[2].Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockRead, "")
	if err != nil {
		t.Fatal(err)
	}
	_ = nodes[2].Unlock(ctx, rlc)

	// Cut n1-n3; n2 writes v2. The invalidation to n3 is lost.
	net.Partition(1, 3)
	wlc, err := nodes[1].Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockWrite, "")
	if err != nil {
		t.Fatal(err)
	}
	_ = nodes[1].Write(wlc, start, []byte("v2"))
	if err := nodes[1].Unlock(ctx, wlc); err != nil {
		t.Fatal(err)
	}
	// n3 still holds the stale bytes locally...
	if data, ok := nodes[2].Store().GetCopy(start); !ok || string(data[:2]) != "v1" {
		t.Fatalf("expected stale local copy at n3, got %q, %v", data[:2], ok)
	}
	// ...but a locked read after the heal observes v2 (the lock goes
	// through the home; there is no unsynchronized fast path).
	net.Heal(1, 3)
	rlc2, err := nodes[2].Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockRead, "")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := nodes[2].Read(rlc2, start, 2)
	_ = nodes[2].Unlock(ctx, rlc2)
	if string(got) != "v2" {
		t.Fatalf("read after heal = %q, want v2", got)
	}
}

func TestPartitionedSharerPrunedFromCopyset(t *testing.T) {
	// When the parallel invalidation fan-out cannot reach a sharer, the
	// home must not keep (or regain) that sharer's copyset entry: an
	// unreachable node still holding a stale copy is not a valid replica
	// source until it re-fetches through the home.
	net, nodes := testCluster(t, 4)
	ctx := context.Background()
	start := mkRegion(t, nodes[0], 4096, region.Attrs{}, "")

	// Seed v1 and cache it on n3 and n4, putting both in the copyset.
	lc, err := nodes[0].Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockWrite, "")
	if err != nil {
		t.Fatal(err)
	}
	_ = nodes[0].Write(lc, start, []byte("v1"))
	_ = nodes[0].Unlock(ctx, lc)
	for _, n := range nodes[2:] {
		rlc, err := n.Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockRead, "")
		if err != nil {
			t.Fatal(err)
		}
		_ = n.Unlock(ctx, rlc)
	}
	entry, _ := nodes[0].PageDir().Lookup(start)
	if !entry.InCopyset(3) || !entry.InCopyset(4) {
		t.Fatalf("sharers missing from copyset before the cut: %v", entry.Copyset)
	}

	// Cut home<->n3 and write from n2. The write grant fans invalidations
	// out to n3 (fails: pruned) and n4 (succeeds: dropped by the reset).
	net.Partition(1, 3)
	wlc, err := nodes[1].Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockWrite, "")
	if err != nil {
		t.Fatal(err)
	}
	entry, _ = nodes[0].PageDir().Lookup(start)
	if entry.InCopyset(3) || entry.InCopyset(4) {
		t.Fatalf("stale sharers survived the write grant: %v", entry.Copyset)
	}
	if !entry.InCopyset(2) {
		t.Fatalf("writer should hold the only valid copy: %v", entry.Copyset)
	}
	_ = nodes[1].Write(wlc, start, []byte("v2"))
	if err := nodes[1].Unlock(ctx, wlc); err != nil {
		t.Fatal(err)
	}
	entry, _ = nodes[0].PageDir().Lookup(start)
	if entry.InCopyset(3) {
		t.Fatalf("partitioned sharer crept back into the copyset: %v", entry.Copyset)
	}

	// After the heal, n3's next locked read goes through the home: it
	// observes v2 and legitimately rejoins the copyset.
	net.Heal(1, 3)
	rlc, err := nodes[2].Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockRead, "")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := nodes[2].Read(rlc, start, 2)
	_ = nodes[2].Unlock(ctx, rlc)
	if string(got) != "v2" {
		t.Fatalf("read after heal = %q, want v2", got)
	}
	entry, _ = nodes[0].PageDir().Lookup(start)
	if !entry.InCopyset(3) {
		t.Fatalf("healed sharer should rejoin the copyset: %v", entry.Copyset)
	}
}

func TestPartitionEventualDivergesThenConverges(t *testing.T) {
	net, nodes := testCluster(t, 3)
	ctx := context.Background()
	attrs := region.Attrs{Protocol: region.Eventual}
	start := mkRegion(t, nodes[0], 4096, attrs, "")

	// Seed replicas on all nodes.
	for _, n := range nodes {
		lc, err := n.Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockRead, "")
		if err != nil {
			t.Fatal(err)
		}
		_ = n.Unlock(ctx, lc)
	}
	// Partition n3 from the home and write on n2: n3 misses the gossip
	// and serves stale reads — by design (§3.3).
	net.Partition(1, 3)
	wlc, _ := nodes[1].Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockWrite, "")
	_ = nodes[1].Write(wlc, start, []byte("fresh"))
	_ = nodes[1].Unlock(ctx, wlc)

	rlc, err := nodes[2].Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockRead, "")
	if err != nil {
		t.Fatalf("partitioned eventual read must still serve locally: %v", err)
	}
	stale, _ := nodes[2].Read(rlc, start, 5)
	_ = nodes[2].Unlock(ctx, rlc)
	if string(stale) == "fresh" {
		t.Fatal("n3 cannot have seen the update across the cut link")
	}
	// Heal; the next write's gossip round brings n3 up to date.
	net.Heal(1, 3)
	wlc2, _ := nodes[1].Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockWrite, "")
	_ = nodes[1].Write(wlc2, start, []byte("final"))
	_ = nodes[1].Unlock(ctx, wlc2)

	deadline := time.Now().Add(2 * time.Second)
	for {
		rlc, err := nodes[2].Lock(ctx, gaddr.Range{Start: start, Size: 4096}, ktypes.LockRead, "")
		if err != nil {
			t.Fatal(err)
		}
		got, _ := nodes[2].Read(rlc, start, 5)
		_ = nodes[2].Unlock(ctx, rlc)
		if string(got) == "final" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("n3 never converged: %q", got)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestIsolatedNodeRejoins(t *testing.T) {
	net, nodes := testCluster(t, 3)
	ctx := context.Background()
	start := mkRegion(t, nodes[0], 4096, region.Attrs{}, "")

	// The descriptor partition may have made node 3 a ring owner of the
	// region's bucket, in which case it can answer the lookup from its own
	// table even while cut off. Drop that copy (after announces settle)
	// so the test still exercises a lookup that must leave the node.
	nodes[0].RingSettle()
	net.Isolate(3)
	nodes[2].RingTable().Remove(start)
	shortCtx, cancel := context.WithTimeout(ctx, 200*time.Millisecond)
	if _, err := nodes[2].GetAttr(shortCtx, start); err == nil {
		t.Fatal("isolated node should fail to resolve a foreign region")
	}
	cancel()
	net.HealAll()
	if _, err := nodes[2].GetAttr(ctx, start); err != nil {
		t.Fatalf("after heal-all: %v", err)
	}
}
