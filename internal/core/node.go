// Package core implements the Khazana daemon — the paper's primary
// contribution. A dynamically changing set of cooperating daemon
// processes, all peers (no server role), exports the abstraction of a
// flat, persistent, globally shared store (§2). Each daemon combines:
//
//   - the two-tier local storage hierarchy (§3.4),
//   - the page directory (§3.4),
//   - the region directory cache and descriptor lookup path (§3.2),
//   - pluggable consistency managers (§3.3),
//   - the self-hosted address map tree (§3.1),
//   - cluster membership and hints (§3.1),
//   - failure handling with background release retries and minimum
//     replica maintenance (§3.5).
package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"khazana/internal/addrmap"
	"khazana/internal/cluster"
	"khazana/internal/consistency"
	"khazana/internal/frame"
	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
	"khazana/internal/pagedir"
	"khazana/internal/region"
	"khazana/internal/replog"
	"khazana/internal/ring"
	"khazana/internal/store"
	"khazana/internal/telemetry"
	"khazana/internal/transport"
	"khazana/internal/wire"
)

// Config configures a daemon.
type Config struct {
	// ID is this node's identity (>= 1).
	ID ktypes.NodeID
	// Transport connects the daemon to its peers.
	Transport transport.Transport
	// StoreDir is the disk tier directory.
	StoreDir string
	// MemPages bounds the RAM tier (0 = default).
	MemPages int
	// DiskPages bounds the disk tier (0 = unbounded).
	DiskPages int
	// ClusterManager names the cluster's manager node. When it equals
	// ID, this daemon runs the manager.
	ClusterManager ktypes.NodeID
	// PeerManagers names the managers of other clusters in a
	// multi-cluster hierarchy (§3.1); meaningful only on the manager.
	PeerManagers []ktypes.NodeID
	// MapHome names the home node of the address map region; all map
	// mutations are routed there. Defaults to ClusterManager.
	MapHome ktypes.NodeID
	// Genesis initializes the address map (exactly one node per
	// deployment, normally the map home).
	Genesis bool
	// ChunkSize is the span of address space a node reserves from the
	// cluster manager at a time (paper §3.1 suggests one gigabyte).
	ChunkSize uint64
	// HeartbeatInterval drives the liveness/hints loop; 0 disables the
	// background loop (tests drive it manually).
	HeartbeatInterval time.Duration
	// RetryInterval drives the background release-retry queue (§3.5).
	// 0 disables the loop.
	RetryInterval time.Duration
	// ReplicaInterval drives minimum-replica maintenance. 0 disables
	// the loop.
	ReplicaInterval time.Duration
	// MigrationInterval drives the load-aware auto-migration policy
	// (§2 caching-policy goals, §7 migration policies). 0 disables it.
	MigrationInterval time.Duration
	// Migration tunes the policy; the zero value selects defaults.
	Migration MigrationPolicy
	// PerPageTransfers disables the batched multi-page lock/fetch and
	// release pipeline, falling back to one RPC per page. It exists for
	// benchmarks comparing the two paths (E13) and as an escape hatch;
	// the default (false) batches.
	PerPageTransfers bool
	// NoReadAhead disables adaptive read-ahead grant pipelining: the
	// node stops speculating when homing regions and ignores
	// speculative grants piggybacked by other homes. It exists for
	// benchmarks comparing the two paths (E16) and as an escape hatch;
	// the default (false) speculates.
	NoReadAhead bool
	// PerPageReplication disables the batched replication write-through,
	// pushing one RPC per page per replica instead of one UpdateBatch
	// per replica (the E16 baseline).
	PerPageReplication bool
	// CoarseNodeState funnels all lock-context and retry-queue state
	// through a single shard, restoring the pre-sharding coarse-mutex
	// behavior. It exists for benchmarks comparing the two (E18) and as
	// an escape hatch; the default (false) spreads the state over
	// stateShards shards.
	CoarseNodeState bool
	// NoRing disables the consistent-hashing descriptor partition: cold
	// lookups skip the one-hop ring stage and descriptors are not
	// announced to ring owners, restoring the legacy cluster-hint /
	// tree-walk path. It exists for benchmarks comparing the two paths
	// (E20, and the paper-faithful E2/E3 reproductions) and as an escape
	// hatch; the default (false) uses the ring.
	NoRing bool
	// Registry supplies consistency protocols; nil uses the built-ins.
	Registry *consistency.Registry
	// Clock supplies last-writer-wins stamps; nil uses wall time.
	Clock func() int64
	// Tracer, when set, observes the named protocol steps of Figure 2.
	Tracer func(step string)
	// Telemetry supplies the metrics registry and trace recorder; nil
	// creates a private registry unless NoTelemetry is set.
	Telemetry *telemetry.Registry
	// NoTelemetry disables metrics and tracing entirely (instruments
	// become nil no-ops). Benchmarks use it to measure instrumentation
	// overhead (E15).
	NoTelemetry bool
}

// DefaultChunkSize is the default address-space chunk a daemon manages
// locally ("a large (e.g., one gigabyte) region of unreserved space",
// §3.1).
const DefaultChunkSize = 1 << 30

// Node is a Khazana daemon.
type Node struct {
	cfg   Config
	tr    transport.Transport
	store *store.Tiered
	dir   *pagedir.Dir
	locks *consistency.LockTable
	rdir  *region.Directory
	cms   map[region.Protocol]consistency.CM
	amap  *addrmap.Map

	// manager is non-nil when this node is the cluster manager.
	manager *cluster.Manager

	// mapMu serializes address-map mutations (held only at the map
	// home).
	mapMu sync.Mutex

	// mapDesc is the well-known bootstrap descriptor for the map region.
	mapDesc *region.Descriptor

	// descMu guards authoritative descriptors for regions homed here;
	// descIndex is their starts kept sorted so containment lookups
	// binary-search instead of scanning the map.
	descMu    sync.Mutex
	authDescs map[gaddr.Addr]*region.Descriptor
	descIndex []gaddr.Addr

	// chunkMu guards the local pool of reserved-but-unused space.
	chunkMu sync.Mutex
	chunk   gaddr.Range
	chunkOK bool

	// lockShards hold the active lock contexts, spread by lock ID so
	// concurrent clients touching different contexts never contend on
	// one mutex (shardMask selects the shard).
	lockShards [stateShards]lockShard
	nextLID    atomic.Uint64

	// membership view (manager-fed).
	memMu   sync.Mutex
	members []ktypes.NodeID

	// retryShards hold the queue of failed release-side operations
	// (§3.5), spread by page-address hash.
	retryShards [stateShards]retryShard

	// shardMask selects a shard from a key hash: stateShards-1 normally,
	// 0 when Config.CoarseNodeState collapses everything onto shard 0.
	shardMask uint64

	// access tracks per-region consistency traffic for the migration
	// policy.
	access *accessTracker

	// prefetch plans speculative read-ahead grants for regions homed
	// here; nil when Config.NoReadAhead disables the pipeline.
	prefetch *prefetchPlanner

	// repl is the consensus-replicated region-metadata log: homes append
	// release/ownership deltas before acking, standby replicas replay
	// them, and failover promotes whichever standby wins an election.
	repl *replog.Log

	// standbys tracks the regions this node follows as a log replica,
	// fed by the replog observer on every replicated append.
	standbys *cluster.StandbyTable

	// ringMu guards ringState, the current consistent-hashing partition
	// of region descriptors (nil when Config.NoRing disables it or
	// before the first membership view). ringTable is this node's
	// authoritative descriptor table for the buckets it owns, populated
	// by RingAnnounce traffic and local region lifecycle events.
	ringMu    sync.Mutex
	ringState *ring.Ring
	ringTable *ring.Table
	// annWG tracks in-flight asynchronous ring announces (see ringCast).
	annWG sync.WaitGroup

	// flightMu guards flights, the per-bucket cold-lookup singleflight:
	// N concurrent misses for addresses in one bucket collapse into a
	// single remote lookup; waiters re-check the directory afterwards.
	flightMu sync.Mutex
	flights  map[gaddr.Addr]chan struct{}

	// promoMu guards promo, the per-region promotion singleflight:
	// concurrent promoteLocal calls for one region collapse into a
	// single election instead of racing the descriptor reorder.
	promoMu sync.Mutex
	promo   map[gaddr.Addr]chan struct{}

	clock atomic.Int64

	// app is the application-message hook (see SetAppHandler).
	appMu sync.Mutex
	app   AppHandler

	stop chan struct{}
	done sync.WaitGroup
	once sync.Once

	// tel is the node's metrics registry (nil when disabled); rec is its
	// span recorder. Instruments are resolved once here and recorded
	// lock-free on the hot paths.
	tel   *telemetry.Registry
	rec   *telemetry.Recorder
	stats Stats

	mReadViews      *telemetry.Counter
	mSnapReads      *telemetry.Counter
	mHomePromos     *telemetry.Counter
	mReplicaRepairs *telemetry.Counter
	mRingLookups    *telemetry.Counter
	mRingMoves      *telemetry.Counter
	mRingFallbacks  *telemetry.Counter
	mLockLatency    *telemetry.Histogram
	mReleaseLatency *telemetry.Histogram
	mBatchPages     *telemetry.Histogram
	mPingRTT        *telemetry.Histogram
	mStageDir       *telemetry.Histogram
	mStageRing      *telemetry.Histogram
	mStageCluster   *telemetry.Histogram
	mStageWalk      *telemetry.Histogram
	gMemPages       *telemetry.Gauge
	gDiskPages      *telemetry.Gauge
}

// Stats counts daemon activity. The fields are registry-backed counters
// (names in internal/telemetry/names.go), so the same values surface
// through Statistics(), `khazctl stats`, and the /metrics endpoint.
type Stats struct {
	Lookups        *telemetry.Counter
	DirHits        *telemetry.Counter
	RingHits       *telemetry.Counter
	ClusterHits    *telemetry.Counter
	TreeWalks      *telemetry.Counter
	LocksGranted   *telemetry.Counter
	ReleaseRetries *telemetry.Counter
	Promotions     *telemetry.Counter
}

// retryOp is a queued release-side operation.
type retryOp struct {
	desc  *region.Descriptor
	page  gaddr.Addr
	mode  ktypes.LockMode
	dirty bool
}

// stateShards is the power-of-two shard count for the node's hot
// mutable state (lock contexts and the §3.5 retry queue). Sixteen
// shards keep disjoint clients on disjoint cache lines at thousands of
// concurrent requests while costing only a few hundred bytes of mutexes
// per node.
const stateShards = 16

// lockShard is one shard of the active lock-context table.
type lockShard struct {
	mu  sync.Mutex
	ctx map[uint64]*LockContext
}

// retryShard is one shard of the §3.5 retry queue.
type retryShard struct {
	mu  sync.Mutex
	ops []retryOp
}

// lockShardFor selects the shard holding lock context id. IDs are
// sequential (nextLID), so consecutive lock acquisitions spread evenly
// across shards.
func (n *Node) lockShardFor(id uint64) *lockShard {
	return &n.lockShards[id&n.shardMask]
}

// retryShardFor selects the retry shard for a page address. The
// Fibonacci hash mixes the page bits so pages of one region — which
// share high bits — still spread across shards.
func (n *Node) retryShardFor(page gaddr.Addr) *retryShard {
	h := (page.Lo ^ page.Hi) * 0x9e3779b97f4a7c15
	return &n.retryShards[(h>>32)&n.shardMask]
}

// LockContext is the token returned by Lock and presented on read and
// write operations (paper §2).
type LockContext struct {
	ID    uint64
	Range gaddr.Range
	Mode  ktypes.LockMode

	desc  *region.Descriptor
	pages []gaddr.Addr
	dirty map[gaddr.Addr]bool
	// views pins the frames backing outstanding ReadView results; each
	// entry holds one reference, released at Unlock.
	views []*frame.Frame
	// viewCount batches the read-view metric: incremented under mu on
	// the cached-read fast path (a plain add, since the mutex is already
	// held there) and flushed to the registry counter once at Unlock, so
	// the hot path carries no atomic.
	viewCount uint64
	mu        sync.Mutex
	node      *Node
	freed     bool
}

// NewNode creates (but does not start) a daemon.
func NewNode(cfg Config) (*Node, error) {
	if cfg.ID == ktypes.NilNode {
		return nil, fmt.Errorf("core: invalid node ID")
	}
	if cfg.Transport == nil {
		return nil, fmt.Errorf("core: transport required")
	}
	if cfg.ClusterManager == ktypes.NilNode {
		cfg.ClusterManager = cfg.ID
	}
	if cfg.MapHome == ktypes.NilNode {
		cfg.MapHome = cfg.ClusterManager
	}
	if cfg.ChunkSize == 0 {
		cfg.ChunkSize = DefaultChunkSize
	}
	if cfg.StoreDir == "" {
		return nil, fmt.Errorf("core: store dir required")
	}
	tel := cfg.Telemetry
	if tel == nil && !cfg.NoTelemetry {
		tel = telemetry.New()
	}
	n := &Node{
		cfg:       cfg,
		tr:        cfg.Transport,
		dir:       pagedir.New(),
		locks:     consistency.NewLockTable(),
		rdir:      region.NewDirectory(0),
		authDescs: make(map[gaddr.Addr]*region.Descriptor),
		promo:     make(map[gaddr.Addr]chan struct{}),
		access:    newAccessTracker(),
		stop:      make(chan struct{}),
		members:   []ktypes.NodeID{cfg.ID},
		tel:       tel,
		rec:       tel.Tracer(),
		stats: Stats{
			Lookups:        tel.Counter(telemetry.MetricLookups),
			DirHits:        tel.Counter(telemetry.MetricLookupDirHits),
			RingHits:       tel.Counter(telemetry.MetricRingLookups),
			ClusterHits:    tel.Counter(telemetry.MetricLookupClusterHits),
			TreeWalks:      tel.Counter(telemetry.MetricLookupTreeWalks),
			LocksGranted:   tel.Counter(telemetry.MetricLocksGranted),
			ReleaseRetries: tel.Counter(telemetry.MetricReleaseRetries),
			Promotions:     tel.Counter(telemetry.MetricPromotions),
		},
		mReadViews:      tel.Counter(telemetry.MetricReadViews),
		mSnapReads:      tel.Counter(telemetry.MetricSnapshotReads),
		mHomePromos:     tel.Counter(telemetry.MetricHomePromotions),
		mReplicaRepairs: tel.Counter(telemetry.MetricReplicaRepairs),
		mRingLookups:    tel.Counter(telemetry.MetricRingLookups),
		mRingMoves:      tel.Counter(telemetry.MetricRingRebalanceMoves),
		mRingFallbacks:  tel.Counter(telemetry.MetricRingFallbackWalks),
		mLockLatency:    tel.Histogram(telemetry.MetricLockLatency),
		mReleaseLatency: tel.Histogram(telemetry.MetricReleaseLatency),
		mBatchPages:     tel.Histogram(telemetry.MetricLockBatchPages),
		mPingRTT:        tel.Histogram(telemetry.MetricPingRTT),
		mStageDir:       tel.Histogram(telemetry.MetricLookupStageDir),
		mStageRing:      tel.Histogram(telemetry.MetricLookupStageRing),
		mStageCluster:   tel.Histogram(telemetry.MetricLookupStageCluster),
		mStageWalk:      tel.Histogram(telemetry.MetricLookupStageWalk),
		gMemPages:       tel.Gauge(telemetry.MetricMemPages),
		gDiskPages:      tel.Gauge(telemetry.MetricDiskPages),
	}
	n.ringTable = ring.NewTable()
	n.flights = make(map[gaddr.Addr]chan struct{})
	n.shardMask = stateShards - 1
	if cfg.CoarseNodeState {
		n.shardMask = 0
	}
	for i := range n.lockShards {
		n.lockShards[i].ctx = make(map[uint64]*LockContext)
	}
	// Transports are built before the node exists; hand them the node's
	// registry so connection, in-flight, and byte metrics surface
	// alongside everything else.
	if ts, ok := cfg.Transport.(transport.TelemetrySetter); ok {
		ts.SetTelemetry(tel)
	}
	st, err := store.NewTiered(store.Config{
		MemPages:    cfg.MemPages,
		DiskPages:   cfg.DiskPages,
		Dir:         cfg.StoreDir,
		OnDiskEvict: n.onDiskEvict,
	})
	if err != nil {
		return nil, err
	}
	st.SetMissCounter(tel.Counter(telemetry.MetricMemMisses))
	n.store = st
	n.standbys = cluster.NewStandbyTable()
	n.repl = replog.New(replog.Config{
		Self: cfg.ID,
		Dir:  cfg.StoreDir,
		Send: func(ctx context.Context, to ktypes.NodeID, m wire.Msg) (wire.Msg, error) {
			return n.tr.Request(ctx, to, m)
		},
		Tel: tel,
		Observer: func(start gaddr.Addr, leader ktypes.NodeID, term, lastIndex uint64) {
			n.standbys.Observe(start, leader, term, lastIndex)
		},
	})
	if !cfg.NoReadAhead {
		n.prefetch = newPrefetchPlanner()
	}
	reg := cfg.Registry
	if reg == nil {
		reg = consistency.NewRegistry()
	}
	n.cms = reg.Build(hostView{n})
	// Old page versions retained for snapshot readers give their memory
	// back under cache pressure before any demand page is victimized.
	if crew, ok := n.cms[region.CREW].(*consistency.CrewCM); ok {
		st.SetReclaimer(crew.TrimPublished)
	}
	n.amap = addrmap.New(mapIO{n})
	n.mapDesc = &region.Descriptor{
		Range: gaddr.Range{Start: gaddr.Zero, Size: addrmap.RegionSize},
		Attrs: region.Attrs{
			PageSize:    addrmap.PageSize,
			Level:       region.Relaxed,
			Protocol:    region.Release,
			MinReplicas: 1,
		},
		Home:      []ktypes.NodeID{cfg.MapHome},
		Epoch:     1,
		Allocated: true,
	}
	if cfg.ID == cfg.ClusterManager {
		n.manager = cluster.NewManager(cfg.ID)
		n.manager.SetPeerManagers(cfg.PeerManagers)
	}
	n.tr.SetHandler(n.handle)
	return n, nil
}

// Start restores persisted state, initializes the map (genesis only),
// joins the cluster, and starts background loops.
func (n *Node) Start(ctx context.Context) error {
	if err := n.restore(); err != nil {
		return err
	}
	if n.cfg.Genesis {
		if n.cfg.ID != n.cfg.MapHome {
			return fmt.Errorf("core: genesis node must be the map home")
		}
		if err := n.amap.Init(ctx, []ktypes.NodeID{n.cfg.MapHome}); err != nil {
			return fmt.Errorf("core: init address map: %w", err)
		}
	}
	if err := n.join(ctx); err != nil {
		return err
	}
	n.ringSync(ctx)
	if n.cfg.HeartbeatInterval > 0 {
		n.done.Add(1)
		go n.heartbeatLoop()
	}
	if n.cfg.RetryInterval > 0 {
		n.done.Add(1)
		go n.retryLoop()
	}
	if n.cfg.ReplicaInterval > 0 {
		n.done.Add(1)
		go n.replicaLoop()
	}
	if n.cfg.MigrationInterval > 0 {
		n.done.Add(1)
		go n.migrationLoop(n.cfg.MigrationInterval, n.cfg.Migration)
	}
	return nil
}

// join announces this node to the cluster manager.
func (n *Node) join(ctx context.Context) error {
	if n.manager != nil {
		return nil // the manager is trivially a member
	}
	addr := ""
	if t, ok := n.tr.(*transport.TCP); ok {
		addr = t.Addr()
	}
	resp, err := n.tr.Request(ctx, n.cfg.ClusterManager, &wire.Join{Node: n.cfg.ID, Addr: addr})
	if err != nil {
		return fmt.Errorf("core: join cluster: %w", err)
	}
	if view, ok := resp.(*wire.ClusterView); ok {
		n.setMembers(view.Members)
	}
	return nil
}

// Close stops background loops and checkpoints persistent state (§2: the
// global store is persistent; a cleanly stopped daemon serves its homed
// regions again after restart).
func (n *Node) Close() error {
	var err error
	n.once.Do(func() {
		close(n.stop)
		n.done.Wait()
		err = n.Persist()
	})
	return err
}

// ID returns the node's identity.
func (n *Node) ID() ktypes.NodeID { return n.cfg.ID }

// Manager returns the cluster manager state when this node runs it.
func (n *Node) Manager() *cluster.Manager { return n.manager }

// Statistics returns the daemon's counters.
func (n *Node) Statistics() *Stats { return &n.stats }

// Telemetry returns the node's metrics registry (nil when disabled).
func (n *Node) Telemetry() *telemetry.Registry { return n.tel }

// MetricsSnapshot refreshes the storage gauges and snapshots every
// instrument. It backs the StatsQuery handler and the daemon's /metrics
// endpoint.
func (n *Node) MetricsSnapshot() telemetry.Snapshot {
	n.gMemPages.Set(int64(n.store.Mem().Len()))
	n.gDiskPages.Set(int64(n.store.Disk().Len()))
	return n.tel.Snapshot()
}

// TraceSpans returns the node's recorded trace spans, oldest first.
func (n *Node) TraceSpans() []telemetry.SpanRecord { return n.rec.Spans() }

// PingPeer measures the round trip to a peer with a timestamped Ping and
// records it into the RTT histogram — the tracer's baseline network
// signal (the heartbeat loop calls this for the cluster manager).
func (n *Node) PingPeer(ctx context.Context, peer ktypes.NodeID) (time.Duration, error) {
	start := time.Now()
	resp, err := n.tr.Request(ctx, peer, &wire.Ping{From: n.cfg.ID, SentUnixNano: start.UnixNano()})
	if err != nil {
		return 0, err
	}
	pong, ok := resp.(*wire.Pong)
	if !ok {
		return 0, fmt.Errorf("core: ping %v: unexpected reply %T", peer, resp)
	}
	if pong.EchoUnixNano != start.UnixNano() {
		return 0, fmt.Errorf("core: ping %v: echoed stamp mismatch", peer)
	}
	rtt := time.Since(start)
	n.mPingRTT.Observe(uint64(rtt))
	return rtt, nil
}

// Store exposes the local storage hierarchy (diagnostics and tests).
func (n *Node) Store() *store.Tiered { return n.store }

// PageDir exposes the page directory (diagnostics and tests).
func (n *Node) PageDir() *pagedir.Dir { return n.dir }

// RegionDir exposes the region directory cache (diagnostics and tests).
func (n *Node) RegionDir() *region.Directory { return n.rdir }

// AddressMap exposes the address map handle (diagnostics and tests).
func (n *Node) AddressMap() *addrmap.Map { return n.amap }

// Repl exposes the replicated region-metadata log (diagnostics, tests,
// and experiments).
func (n *Node) Repl() *replog.Log { return n.repl }

// Standbys exposes the standby-replica table (diagnostics and tests).
func (n *Node) Standbys() *cluster.StandbyTable { return n.standbys }

// Ring exposes the node's current consistent-hashing partition view
// (nil when disabled or before the first membership sync); diagnostics,
// tests, and experiments.
func (n *Node) Ring() *ring.Ring {
	n.ringMu.Lock()
	defer n.ringMu.Unlock()
	return n.ringState
}

// RingTable exposes the node's authoritative ring descriptor table
// (diagnostics and tests).
func (n *Node) RingTable() *ring.Table { return n.ringTable }

func (n *Node) setMembers(ms []ktypes.NodeID) {
	n.memMu.Lock()
	defer n.memMu.Unlock()
	n.members = append([]ktypes.NodeID(nil), ms...)
}

// Members returns the latest membership view this node has seen.
func (n *Node) Members() []ktypes.NodeID {
	if n.manager != nil {
		return n.manager.Alive()
	}
	n.memMu.Lock()
	defer n.memMu.Unlock()
	return append([]ktypes.NodeID(nil), n.members...)
}

// trace reports a Figure-2 protocol step to the configured tracer.
func (n *Node) trace(step string) {
	if n.cfg.Tracer != nil {
		n.cfg.Tracer(step)
	}
}

// now returns an LWW timestamp.
func (n *Node) now() int64 {
	if n.cfg.Clock != nil {
		return n.cfg.Clock()
	}
	// Wall time with a monotonic bump so two calls never return the
	// same stamp on one node.
	for {
		prev := n.clock.Load()
		t := time.Now().UnixNano()
		if t <= prev {
			t = prev + 1
		}
		if n.clock.CompareAndSwap(prev, t) {
			return t
		}
	}
}

// onDiskEvict runs when a page leaves the node entirely (§3.4: the disk
// cache must invoke the consistency protocol before victimizing a page).
// The frame is borrowed for the duration of the call.
func (n *Node) onDiskEvict(page gaddr.Addr, f *frame.Frame) error {
	entry, ok := n.dir.Lookup(page)
	if !ok || !entry.Dirty {
		n.dir.Delete(page)
		return nil
	}
	// A dirty page must be pushed home before leaving the node.
	desc, err := n.lookupRegion(context.Background(), page)
	if err != nil {
		return fmt.Errorf("core: evict dirty %v: %w", page, err)
	}
	home, err := desc.PrimaryHome()
	if err != nil {
		return err
	}
	if home == n.cfg.ID {
		return fmt.Errorf("core: refusing to evict dirty home page %v", page)
	}
	_, err = n.tr.Request(context.Background(), home,
		&wire.UpdatePush{Page: page, Data: f.Bytes(), Stamp: n.now(), Origin: n.cfg.ID})
	if err != nil {
		return err
	}
	n.dir.Delete(page)
	return nil
}

// --- consistency.Host implementation --------------------------------------

// hostView adapts Node to consistency.Host.
type hostView struct{ n *Node }

var _ consistency.Host = hostView{}

// Self implements consistency.Host.
func (h hostView) Self() ktypes.NodeID { return h.n.cfg.ID }

// Request implements consistency.Host.
func (h hostView) Request(ctx context.Context, to ktypes.NodeID, m wire.Msg) (wire.Msg, error) {
	return h.n.tr.Request(ctx, to, m)
}

// LoadPage implements consistency.Host. The returned frame carries one
// reference owned by the caller.
func (h hostView) LoadPage(page gaddr.Addr) (*frame.Frame, bool) {
	return h.n.store.Get(page)
}

// StorePage implements consistency.Host. The frame is borrowed; the
// store takes its own reference.
func (h hostView) StorePage(page gaddr.Addr, f *frame.Frame) error {
	return h.n.store.Put(page, f)
}

// DropPage implements consistency.Host. Discard is pin-aware: a frame
// pinned by an active lock context survives in RAM as that holder's
// snapshot (it can never read zeroes mid-hold), while the disk copy and
// any unpinned RAM copy are gone, so the next acquire refetches.
func (h hostView) DropPage(page gaddr.Addr) {
	h.n.store.Discard(page)
}

// StorePageSpeculative implements consistency.Host: read-ahead copies
// land in the RAM tier on an evict-first basis and are dropped rather
// than kept when the tier is full of demand pages.
func (h hostView) StorePageSpeculative(page gaddr.Addr, f *frame.Frame) bool {
	return h.n.store.PutSpeculative(page, f)
}

// ReadAhead implements consistency.Host. The untyped-nil return when
// read-ahead is disabled matters: a typed nil *prefetchPlanner inside the
// interface would defeat the CMs' `planner == nil` guard.
func (h hostView) ReadAhead() consistency.ReadAheadPlanner {
	if h.n.prefetch == nil {
		return nil
	}
	return h.n.prefetch
}

// PerPageReplication implements consistency.Host.
func (h hostView) PerPageReplication() bool { return h.n.cfg.PerPageReplication }

// Repl implements consistency.Host, handing CMs the node's replicated
// region-metadata log so homes can append deltas before acking releases.
func (h hostView) Repl() *replog.Log { return h.n.repl }

// Dir implements consistency.Host.
func (h hostView) Dir() *pagedir.Dir { return h.n.dir }

// Locks implements consistency.Host.
func (h hostView) Locks() *consistency.LockTable { return h.n.locks }

// Clock implements consistency.Host.
func (h hostView) Clock() int64 { return h.n.now() }

// Telemetry implements consistency.Host.
func (h hostView) Telemetry() *telemetry.Registry { return h.n.tel }

// --- addrmap.PageIO implementation -------------------------------------------

// mapIO adapts the daemon's release-consistent page path for the address
// map: the map's tree nodes are ordinary Khazana pages (§3.1).
type mapIO struct{ n *Node }

var _ addrmap.PageIO = mapIO{}

// ReadPage implements addrmap.PageIO. The map layer retains and mutates
// returned pages, so this cold path copies out of the shared frame.
func (io mapIO) ReadPage(ctx context.Context, page gaddr.Addr) ([]byte, error) {
	cm := io.n.cms[region.Release]
	if err := cm.Acquire(ctx, io.n.mapDesc, page, ktypes.LockRead); err != nil {
		return nil, err
	}
	defer func() { _ = cm.Release(ctx, io.n.mapDesc, page, ktypes.LockRead, false) }()
	data, ok := io.n.store.GetCopy(page)
	if !ok {
		data = make([]byte, addrmap.PageSize)
	}
	return data, nil
}

// MutatePage implements addrmap.PageIO. Map mutations run only at the map
// home node, already serialized under n.mapMu.
func (io mapIO) MutatePage(ctx context.Context, page gaddr.Addr, fn func([]byte) error) error {
	if io.n.cfg.ID != io.n.cfg.MapHome {
		return fmt.Errorf("core: map mutation on non-home node %v", io.n.cfg.ID)
	}
	cm := io.n.cms[region.Release]
	if err := cm.Acquire(ctx, io.n.mapDesc, page, ktypes.LockWrite); err != nil {
		return err
	}
	dirty := false
	defer func() { _ = cm.Release(ctx, io.n.mapDesc, page, ktypes.LockWrite, dirty) }()
	var f *frame.Frame
	if got, ok := io.n.store.Get(page); ok {
		// Copy-on-write: the store (and possibly remote readers) share
		// the frame, so take a private copy before mutating.
		f = got.Exclusive()
	} else {
		f = frame.AllocZero(addrmap.PageSize)
	}
	defer f.Release()
	if err := fn(f.Bytes()); err != nil {
		return err
	}
	if err := io.n.store.Put(page, f); err != nil {
		return err
	}
	dirty = true
	return nil
}
