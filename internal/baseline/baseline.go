// Package baseline implements the comparator for the paper's §6
// discussion: a hand-coded central-server shared store with no
// replication, no consistency management, no location transparency — the
// "roll your own" design Khazana argues against. The experiment harness
// measures Khazana-based services against it to quantify the middleware's
// overhead ("services written on top of our infrastructure may not perform
// as well as the hand-coded versions").
package baseline

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
	"khazana/internal/transport"
	"khazana/internal/wire"
)

// Server is the central store: one process owns all data; clients RPC
// every access.
type Server struct {
	tr transport.Transport

	mu   sync.RWMutex
	data map[gaddr.Addr][]byte
}

// NewServer attaches a baseline server to the transport.
func NewServer(tr transport.Transport) *Server {
	s := &Server{tr: tr, data: make(map[gaddr.Addr][]byte)}
	tr.SetHandler(s.handle)
	return s
}

func (s *Server) handle(_ context.Context, _ ktypes.NodeID, m wire.Msg) (wire.Msg, error) {
	switch msg := m.(type) {
	case *wire.KVGet:
		s.mu.RLock()
		buf := s.data[msg.Key]
		out := make([]byte, msg.Len)
		if msg.Off < uint64(len(buf)) {
			copy(out, buf[msg.Off:])
		}
		s.mu.RUnlock()
		return &wire.CData{Data: out}, nil
	case *wire.KVPut:
		s.mu.Lock()
		buf := s.data[msg.Key]
		need := msg.Off + uint64(len(msg.Data))
		if uint64(len(buf)) < need {
			grown := make([]byte, need)
			copy(grown, buf)
			buf = grown
		}
		copy(buf[msg.Off:], msg.Data)
		s.data[msg.Key] = buf
		s.mu.Unlock()
		return &wire.Ack{}, nil
	case *wire.Ping:
		return &wire.Pong{From: s.tr.Self()}, nil
	//khazana:wire-default the baseline serves only the NFS-style client kinds; daemon traffic never reaches it
	default:
		return nil, fmt.Errorf("baseline: unhandled %T", m)
	}
}

// Len returns the number of stored keys.
func (s *Server) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// Client talks to a baseline server.
type Client struct {
	tr     transport.Transport
	target ktypes.NodeID
}

// NewClient wraps a transport endpoint as a client of server target.
func NewClient(tr transport.Transport, target ktypes.NodeID) *Client {
	return &Client{tr: tr, target: target}
}

// Get reads length bytes at offset off of key.
func (c *Client) Get(ctx context.Context, key gaddr.Addr, off, length uint64) ([]byte, error) {
	resp, err := c.tr.Request(ctx, c.target, &wire.KVGet{Key: key, Off: off, Len: length})
	if err != nil {
		return nil, err
	}
	d, ok := resp.(*wire.CData)
	if !ok {
		return nil, fmt.Errorf("baseline: unexpected reply %T", resp)
	}
	if d.Err != "" {
		return nil, errors.New(d.Err)
	}
	return d.Data, nil
}

// Put writes data at offset off of key.
func (c *Client) Put(ctx context.Context, key gaddr.Addr, off uint64, data []byte) error {
	resp, err := c.tr.Request(ctx, c.target, &wire.KVPut{Key: key, Off: off, Data: data})
	if err != nil {
		return err
	}
	if ack, ok := resp.(*wire.Ack); ok && ack.Err != "" {
		return errors.New(ack.Err)
	}
	return nil
}
