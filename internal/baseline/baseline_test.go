package baseline

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
	"khazana/internal/transport"
)

func setup(t *testing.T) (*Server, *Client) {
	t.Helper()
	net := transport.NewNetwork()
	str, err := net.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	ctr, err := net.Attach(2)
	if err != nil {
		t.Fatal(err)
	}
	return NewServer(str), NewClient(ctr, 1)
}

func TestPutGet(t *testing.T) {
	srv, cli := setup(t)
	ctx := context.Background()
	key := gaddr.FromUint64(0x1000)
	if err := cli.Put(ctx, key, 0, []byte("central")); err != nil {
		t.Fatal(err)
	}
	got, err := cli.Get(ctx, key, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "central" {
		t.Fatalf("got %q", got)
	}
	if srv.Len() != 1 {
		t.Fatalf("server len = %d", srv.Len())
	}
}

func TestOffsetAndGrowth(t *testing.T) {
	_, cli := setup(t)
	ctx := context.Background()
	key := gaddr.FromUint64(0x2000)
	if err := cli.Put(ctx, key, 100, []byte("xyz")); err != nil {
		t.Fatal(err)
	}
	got, err := cli.Get(ctx, key, 100, 3)
	if err != nil || string(got) != "xyz" {
		t.Fatalf("got %q, %v", got, err)
	}
	// Holes read as zeroes.
	got, _ = cli.Get(ctx, key, 0, 4)
	if !bytes.Equal(got, []byte{0, 0, 0, 0}) {
		t.Fatalf("hole = %v", got)
	}
	// Reads past the end are zero-padded.
	got, _ = cli.Get(ctx, key, 102, 10)
	if got[0] != 'z' || got[1] != 0 {
		t.Fatalf("past-end = %v", got)
	}
}

func TestMissingKey(t *testing.T) {
	_, cli := setup(t)
	got, err := cli.Get(context.Background(), gaddr.FromUint64(0x9000), 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{0, 0, 0, 0}) {
		t.Fatalf("missing key = %v", got)
	}
}

func TestConcurrentClients(t *testing.T) {
	net := transport.NewNetwork()
	str, _ := net.Attach(1)
	NewServer(str)
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		tr, err := net.Attach(ktypes.NodeID(i + 10))
		if err != nil {
			t.Fatal(err)
		}
		cli := NewClient(tr, 1)
		wg.Add(1)
		go func(i int, cli *Client) {
			defer wg.Done()
			ctx := context.Background()
			key := gaddr.FromUint64(uint64(i+1) * 0x1000)
			for j := 0; j < 50; j++ {
				if err := cli.Put(ctx, key, 0, []byte{byte(j)}); err != nil {
					errs[i] = err
					return
				}
				got, err := cli.Get(ctx, key, 0, 1)
				if err != nil || got[0] != byte(j) {
					errs[i] = err
					return
				}
			}
		}(i, cli)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
