package security

import (
	"errors"
	"testing"
	"testing/quick"

	"khazana/internal/enc"
	"khazana/internal/ktypes"
)

func TestOpenACL(t *testing.T) {
	a := Open()
	if !a.IsOpen() {
		t.Fatal("Open() should be open")
	}
	if err := a.Check("anyone", PermAll); err != nil {
		t.Fatalf("open ACL denied: %v", err)
	}
	if err := a.Check(ktypes.Anonymous, PermRead|PermWrite); err != nil {
		t.Fatalf("open ACL denied anonymous: %v", err)
	}
}

func TestPrivateACL(t *testing.T) {
	a := Private("alice")
	if err := a.Check("alice", PermAll); err != nil {
		t.Fatalf("owner denied: %v", err)
	}
	if err := a.Check("bob", PermRead); err == nil {
		t.Fatal("bob should be denied")
	}
	var accessErr *AccessError
	err := a.Check("bob", PermWrite)
	if !errors.As(err, &accessErr) {
		t.Fatalf("want AccessError, got %T", err)
	}
	if accessErr.Principal != "bob" || accessErr.Need != PermWrite {
		t.Fatalf("AccessError fields = %+v", accessErr)
	}
}

func TestAnonymousIsNotOwner(t *testing.T) {
	// A region owned by the empty principal must not grant PermAll to
	// anonymous clients.
	a := ACL{Owner: ktypes.Anonymous, World: PermRead}
	if err := a.Check(ktypes.Anonymous, PermWrite); err == nil {
		t.Fatal("anonymous should not match an anonymous owner")
	}
	if err := a.Check(ktypes.Anonymous, PermRead); err != nil {
		t.Fatalf("world read denied: %v", err)
	}
}

func TestGrant(t *testing.T) {
	a := Private("alice").Grant("bob", PermRead)
	if err := a.Check("bob", PermRead); err != nil {
		t.Fatalf("bob read denied after grant: %v", err)
	}
	if err := a.Check("bob", PermWrite); err == nil {
		t.Fatal("bob write should be denied")
	}
	// Widening an existing entry.
	a = a.Grant("bob", PermWrite)
	if err := a.Check("bob", PermRead|PermWrite); err != nil {
		t.Fatalf("bob rw denied after widening: %v", err)
	}
	if len(a.Entries) != 1 {
		t.Fatalf("Grant should widen in place, entries = %v", a.Entries)
	}
}

func TestGrantDoesNotMutateOriginal(t *testing.T) {
	orig := Private("alice").Grant("bob", PermRead)
	_ = orig.Grant("bob", PermWrite)
	if err := orig.Check("bob", PermWrite); err == nil {
		t.Fatal("Grant mutated the original ACL")
	}
}

func TestCheckMode(t *testing.T) {
	a := Private("alice").Grant("reader", PermRead)
	if err := a.CheckMode("reader", ktypes.LockRead); err != nil {
		t.Fatalf("reader read lock: %v", err)
	}
	if err := a.CheckMode("reader", ktypes.LockWrite); err == nil {
		t.Fatal("reader write lock should be denied")
	}
	if err := a.CheckMode("reader", ktypes.LockWriteShared); err == nil {
		t.Fatal("reader write-shared lock should be denied")
	}
	if err := a.CheckMode("alice", ktypes.LockWrite); err != nil {
		t.Fatalf("owner write lock: %v", err)
	}
}

func TestPermString(t *testing.T) {
	tests := []struct {
		p    Perm
		want string
	}{
		{0, "---"},
		{PermRead, "r--"},
		{PermWrite, "-w-"},
		{PermAdmin, "--a"},
		{PermAll, "rwa"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.p, got, tt.want)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	acls := []ACL{
		{},
		Open(),
		Private("alice"),
		Private("alice").Grant("bob", PermRead).Grant("carol", PermAll),
	}
	for _, a := range acls {
		e := enc.NewEncoder(0)
		a.EncodeTo(e)
		d := enc.NewDecoder(e.Bytes())
		got := DecodeACL(d)
		if err := d.Finish(); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.Owner != a.Owner || got.World != a.World || len(got.Entries) != len(a.Entries) {
			t.Fatalf("round trip mismatch: %+v vs %+v", got, a)
		}
		for i := range a.Entries {
			if got.Entries[i] != a.Entries[i] {
				t.Fatalf("entry %d mismatch: %+v vs %+v", i, got.Entries[i], a.Entries[i])
			}
		}
	}
}

func TestDecodeTruncatedACL(t *testing.T) {
	e := enc.NewEncoder(0)
	Private("alice").Grant("bob", PermRead).EncodeTo(e)
	full := e.Bytes()
	for cut := 0; cut < len(full); cut++ {
		d := enc.NewDecoder(full[:cut])
		_ = DecodeACL(d)
		if d.Err() == nil && cut < len(full) {
			// Some prefixes decode cleanly to a shorter ACL (e.g. entry
			// count 0); Finish must still flag leftover or truncation.
			if err := d.Finish(); err == nil {
				t.Fatalf("cut=%d decoded cleanly", cut)
			}
		}
	}
}

// Property: after Grant(p, perm), Check(p, perm) always passes.
func TestQuickGrantThenCheck(t *testing.T) {
	f := func(owner, p string, permBits uint8) bool {
		perm := Perm(permBits) & PermAll
		if perm == 0 {
			perm = PermRead
		}
		a := Private(ktypes.Principal(owner)).Grant(ktypes.Principal(p), perm)
		return a.Check(ktypes.Principal(p), perm) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ACL encode/decode round-trips for arbitrary principals.
func TestQuickACLRoundTrip(t *testing.T) {
	f := func(owner, p1, p2 string, w, a1, a2 uint8) bool {
		a := ACL{Owner: ktypes.Principal(owner), World: Perm(w) & PermAll}
		a = a.Grant(ktypes.Principal(p1), Perm(a1)&PermAll)
		a = a.Grant(ktypes.Principal(p2), Perm(a2)&PermAll)
		e := enc.NewEncoder(0)
		a.EncodeTo(e)
		d := enc.NewDecoder(e.Bytes())
		got := DecodeACL(d)
		if d.Finish() != nil {
			return false
		}
		if got.Owner != a.Owner || got.World != a.World || len(got.Entries) != len(a.Entries) {
			return false
		}
		for i := range a.Entries {
			if got.Entries[i] != a.Entries[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
