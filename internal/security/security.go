// Package security implements Khazana's per-region access control.
//
// A region's attributes include "access control information" (paper §2).
// Khazana checks a region's access permissions before granting locks
// (§3.2). Authentication mechanisms proper are explicitly deferred by the
// paper (§3: "space precludes a detailed discussion"); principals here are
// opaque identities supplied by the client library.
package security

import (
	"fmt"

	"khazana/internal/enc"
	"khazana/internal/ktypes"
)

// Perm is a permission bit set.
type Perm uint8

const (
	// PermRead allows read locks.
	PermRead Perm = 1 << iota
	// PermWrite allows write locks.
	PermWrite
	// PermAdmin allows attribute changes and unreserve/free.
	PermAdmin
)

// PermAll grants every permission.
const PermAll = PermRead | PermWrite | PermAdmin

// String renders the permission set as "rwa" flags.
func (p Perm) String() string {
	b := []byte("---")
	if p&PermRead != 0 {
		b[0] = 'r'
	}
	if p&PermWrite != 0 {
		b[1] = 'w'
	}
	if p&PermAdmin != 0 {
		b[2] = 'a'
	}
	return string(b)
}

// Entry grants a permission set to one principal.
type Entry struct {
	Principal ktypes.Principal
	Allow     Perm
}

// ACL is a region's access-control list. The zero value is an open ACL:
// regions created without access-control attributes are world-accessible,
// which matches the prototype's default behaviour.
type ACL struct {
	// Owner always holds PermAll.
	Owner ktypes.Principal
	// World is the permission set for principals with no entry.
	World Perm
	// Entries grant specific principals additional permissions.
	Entries []Entry
}

// Open is the world-accessible ACL used when a client does not specify
// access control.
func Open() ACL { return ACL{World: PermAll} }

// Private returns an ACL granting access only to owner.
func Private(owner ktypes.Principal) ACL { return ACL{Owner: owner} }

// IsOpen reports whether the ACL grants everything to everyone.
func (a ACL) IsOpen() bool {
	return a.World == PermAll
}

// Grant returns a copy of the ACL with an added or widened entry for p.
func (a ACL) Grant(p ktypes.Principal, perm Perm) ACL {
	out := a
	out.Entries = make([]Entry, len(a.Entries), len(a.Entries)+1)
	copy(out.Entries, a.Entries)
	for i := range out.Entries {
		if out.Entries[i].Principal == p {
			out.Entries[i].Allow |= perm
			return out
		}
	}
	out.Entries = append(out.Entries, Entry{Principal: p, Allow: perm})
	return out
}

// Check returns nil when principal p holds all permissions in need.
func (a ACL) Check(p ktypes.Principal, need Perm) error {
	have := a.World
	if p != ktypes.Anonymous && p == a.Owner {
		have |= PermAll
	}
	for _, e := range a.Entries {
		if e.Principal == p {
			have |= e.Allow
		}
	}
	if have&need != need {
		return &AccessError{Principal: p, Need: need, Have: have}
	}
	return nil
}

// CheckMode maps a lock mode to the permission it requires and checks it.
func (a ACL) CheckMode(p ktypes.Principal, mode ktypes.LockMode) error {
	need := PermRead
	if mode.Writes() {
		need |= PermWrite
	}
	return a.Check(p, need)
}

// AccessError reports a failed permission check.
type AccessError struct {
	Principal ktypes.Principal
	Need      Perm
	Have      Perm
}

// Error implements the error interface.
func (e *AccessError) Error() string {
	who := string(e.Principal)
	if who == "" {
		who = "<anonymous>"
	}
	return fmt.Sprintf("security: %s needs %v but has %v", who, e.Need, e.Have)
}

// EncodeTo serializes the ACL.
func (a ACL) EncodeTo(e *enc.Encoder) {
	e.String(string(a.Owner))
	e.U8(uint8(a.World))
	e.U16(uint16(len(a.Entries)))
	for _, ent := range a.Entries {
		e.String(string(ent.Principal))
		e.U8(uint8(ent.Allow))
	}
}

// DecodeACL deserializes an ACL.
func DecodeACL(d *enc.Decoder) ACL {
	var a ACL
	a.Owner = ktypes.Principal(d.String())
	a.World = Perm(d.U8())
	n := int(d.U16())
	if d.Err() != nil || n == 0 {
		return a
	}
	a.Entries = make([]Entry, 0, n)
	for i := 0; i < n; i++ {
		ent := Entry{
			Principal: ktypes.Principal(d.String()),
			Allow:     Perm(d.U8()),
		}
		if d.Err() != nil {
			return a
		}
		a.Entries = append(a.Entries, ent)
	}
	return a
}
