// Package region defines Khazana regions: contiguous ranges of global
// address space with common application-level characteristics (paper §2).
//
// Each region has a global region descriptor storing its attributes
// (security attributes, page size, desired consistency protocol) and a home
// node that keeps track of all nodes maintaining copies of the region's
// data (§3.1). The package also implements the region directory, a per-node
// cache of recently used region descriptors (§3.2).
package region

import (
	"errors"
	"fmt"

	"khazana/internal/enc"
	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
	"khazana/internal/security"
)

// DefaultPageSize is the default page size: 4 KB "to match the most common
// machine virtual memory page size" (paper §2).
const DefaultPageSize = 4096

// MaxPageSize bounds client-specified page sizes.
const MaxPageSize = 1 << 20

// Protocol selects the consistency protocol that keeps a region's replicas
// consistent (paper §3.3).
type Protocol uint8

const (
	// CREW is the Concurrent Read Exclusive Write protocol, the only
	// model the paper's prototype supports (§5).
	CREW Protocol = iota + 1
	// Release is the release-consistent protocol used for address map
	// tree nodes (§3.3).
	Release
	// Eventual is the relaxed protocol anticipated for applications such
	// as web caches that "tolerate data that is temporarily out-of-date
	// ... as long as they get fast response" (§3.3).
	Eventual
)

// String renders the protocol name.
func (p Protocol) String() string {
	switch p {
	case CREW:
		return "crew"
	case Release:
		return "release"
	case Eventual:
		return "eventual"
	default:
		return "invalid"
	}
}

// Valid reports whether p names a registered protocol.
func (p Protocol) Valid() bool { return p >= CREW && p <= Eventual }

// Level is the client's desired consistency level, the coarse knob from
// which a default protocol is derived when none is given explicitly.
type Level uint8

const (
	// Strict requires strictly consistent objects (paper cites Lamport's
	// sequential consistency).
	Strict Level = iota + 1
	// Relaxed tolerates propagation at synchronization points.
	Relaxed
	// Weak tolerates temporarily out-of-date data.
	Weak
)

// String renders the level name.
func (l Level) String() string {
	switch l {
	case Strict:
		return "strict"
	case Relaxed:
		return "relaxed"
	case Weak:
		return "weak"
	default:
		return "invalid"
	}
}

// Valid reports whether l is a defined level.
func (l Level) Valid() bool { return l >= Strict && l <= Weak }

// DefaultProtocol maps a consistency level to its default protocol.
func (l Level) DefaultProtocol() Protocol {
	switch l {
	case Relaxed:
		return Release
	case Weak:
		return Eventual
	default:
		return CREW
	}
}

// Attrs are a region's client-visible attributes (paper §2): desired
// consistency level, consistency protocol, access control information, and
// minimum number of replicas.
type Attrs struct {
	PageSize    uint32
	Level       Level
	Protocol    Protocol
	MinReplicas uint8
	ACL         security.ACL
}

// DefaultAttrs returns attributes for a strictly consistent, open,
// 4 KB-paged region with a single replica.
func DefaultAttrs() Attrs {
	return Attrs{
		PageSize:    DefaultPageSize,
		Level:       Strict,
		Protocol:    CREW,
		MinReplicas: 1,
		ACL:         security.Open(),
	}
}

// Normalize fills zero fields with defaults and returns the result.
func (a Attrs) Normalize() Attrs {
	if a.PageSize == 0 {
		a.PageSize = DefaultPageSize
	}
	if !a.Level.Valid() {
		a.Level = Strict
	}
	if !a.Protocol.Valid() {
		a.Protocol = a.Level.DefaultProtocol()
	}
	if a.MinReplicas == 0 {
		a.MinReplicas = 1
	}
	if a.ACL.Owner == "" && a.ACL.World == 0 && len(a.ACL.Entries) == 0 {
		// No access-control attributes given: world-accessible.
		a.ACL = security.Open()
	}
	return a
}

// Validate reports whether the attributes are usable.
func (a Attrs) Validate() error {
	if a.PageSize < 512 || a.PageSize > MaxPageSize {
		return fmt.Errorf("region: page size %d out of range [512, %d]", a.PageSize, MaxPageSize)
	}
	if a.PageSize&(a.PageSize-1) != 0 {
		return fmt.Errorf("region: page size %d not a power of two", a.PageSize)
	}
	if !a.Protocol.Valid() {
		return fmt.Errorf("region: invalid protocol %d", a.Protocol)
	}
	if !a.Level.Valid() {
		return fmt.Errorf("region: invalid level %d", a.Level)
	}
	return nil
}

// Descriptor is the global region descriptor (paper §3.1): the region's
// attributes plus home-node tracking state. Descriptors are cached in
// region directories and may be stale; the home list is a hint, not truth
// (§3.2).
type Descriptor struct {
	// Range is the region's reserved span of global address space.
	Range gaddr.Range
	// Attrs are the client-specified attributes.
	Attrs Attrs
	// Home lists the region's home node(s). The first entry is the
	// primary home that tracks the copyset.
	Home []ktypes.NodeID
	// Epoch increases every time the descriptor changes, letting caches
	// prefer fresher copies.
	Epoch uint64
	// Allocated records whether physical storage has been allocated; a
	// region cannot be accessed until it is (paper §2).
	Allocated bool
}

// ErrNoHome is returned when a descriptor lists no home nodes.
var ErrNoHome = errors.New("region: descriptor has no home node")

// ID returns the region's identity: its start address.
func (d *Descriptor) ID() gaddr.Addr { return d.Range.Start }

// PrimaryHome returns the region's primary home node.
func (d *Descriptor) PrimaryHome() (ktypes.NodeID, error) {
	if len(d.Home) == 0 {
		return ktypes.NilNode, ErrNoHome
	}
	return d.Home[0], nil
}

// HasHome reports whether n is one of the region's home nodes.
func (d *Descriptor) HasHome(n ktypes.NodeID) bool {
	for _, h := range d.Home {
		if h == n {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the descriptor.
func (d *Descriptor) Clone() *Descriptor {
	out := *d
	out.Home = append([]ktypes.NodeID(nil), d.Home...)
	out.Attrs.ACL.Entries = append([]security.Entry(nil), d.Attrs.ACL.Entries...)
	return &out
}

// PageBase returns the base address of the page containing a, under this
// region's page size.
func (d *Descriptor) PageBase(a gaddr.Addr) gaddr.Addr {
	return a.AlignDown(uint64(d.Attrs.PageSize))
}

// Pages returns the page base addresses covering [off, off+n) of the
// region.
func (d *Descriptor) Pages(off, n uint64) []gaddr.Addr {
	return d.Range.Pages(off, n, uint64(d.Attrs.PageSize))
}

// EncodeTo serializes the attributes.
func (a Attrs) EncodeTo(e *enc.Encoder) {
	e.U32(a.PageSize)
	e.U8(uint8(a.Level))
	e.U8(uint8(a.Protocol))
	e.U8(a.MinReplicas)
	a.ACL.EncodeTo(e)
}

// DecodeAttrs deserializes attributes.
func DecodeAttrs(d *enc.Decoder) Attrs {
	var a Attrs
	a.PageSize = d.U32()
	a.Level = Level(d.U8())
	a.Protocol = Protocol(d.U8())
	a.MinReplicas = d.U8()
	a.ACL = security.DecodeACL(d)
	return a
}

// EncodeTo serializes the descriptor.
func (d *Descriptor) EncodeTo(e *enc.Encoder) {
	e.Range(d.Range)
	d.Attrs.EncodeTo(e)
	e.NodeIDs(d.Home)
	e.U64(d.Epoch)
	e.Bool(d.Allocated)
}

// DecodeDescriptor deserializes a descriptor.
func DecodeDescriptor(d *enc.Decoder) *Descriptor {
	out := &Descriptor{}
	out.Range = d.Range()
	out.Attrs = DecodeAttrs(d)
	out.Home = d.NodeIDs()
	out.Epoch = d.U64()
	out.Allocated = d.Bool()
	return out
}
