package region

import (
	"sort"
	"sync"

	"khazana/internal/gaddr"
)

// Directory is the region directory: a per-node cache of recently used
// region descriptors (paper §3.2). It is not kept globally consistent and
// may contain stale data; a stale home pointer simply results in a message
// to a node that is no longer home, after which the caller falls back to
// the cluster manager and then the address map tree.
type Directory struct {
	mu      sync.Mutex
	byStart map[gaddr.Addr]*dirEntry
	starts  []gaddr.Addr // sorted; parallel index for containment lookup
	cap     int
	clock   uint64 // logical LRU clock

	hits   uint64
	misses uint64
}

type dirEntry struct {
	desc *Descriptor
	used uint64
}

// DefaultDirectoryCapacity is the default number of cached descriptors.
const DefaultDirectoryCapacity = 1024

// NewDirectory creates a directory caching at most capacity descriptors.
// capacity <= 0 selects the default.
func NewDirectory(capacity int) *Directory {
	if capacity <= 0 {
		capacity = DefaultDirectoryCapacity
	}
	return &Directory{
		byStart: make(map[gaddr.Addr]*dirEntry, capacity),
		cap:     capacity,
	}
}

// Lookup returns a copy of the cached descriptor for the region containing
// a, if any. Returning a copy keeps callers from racing on cached state.
func (dir *Directory) Lookup(a gaddr.Addr) (*Descriptor, bool) {
	dir.mu.Lock()
	defer dir.mu.Unlock()
	// Find the greatest start <= a.
	i := sort.Search(len(dir.starts), func(i int) bool {
		return a.Less(dir.starts[i])
	})
	if i == 0 {
		dir.misses++
		return nil, false
	}
	start := dir.starts[i-1]
	ent := dir.byStart[start]
	if ent == nil || !ent.desc.Range.Contains(a) {
		dir.misses++
		return nil, false
	}
	dir.clock++
	ent.used = dir.clock
	dir.hits++
	return ent.desc.Clone(), true
}

// Insert caches a descriptor, replacing any entry with the same start
// unless the cached copy has a newer epoch. The descriptor is cloned.
func (dir *Directory) Insert(d *Descriptor) {
	if d == nil || d.Range.Size == 0 {
		return
	}
	dir.mu.Lock()
	defer dir.mu.Unlock()
	dir.clock++
	if ent, ok := dir.byStart[d.Range.Start]; ok {
		if ent.desc.Epoch <= d.Epoch {
			ent.desc = d.Clone()
		}
		ent.used = dir.clock
		return
	}
	if len(dir.byStart) >= dir.cap {
		dir.evictLocked()
	}
	dir.byStart[d.Range.Start] = &dirEntry{desc: d.Clone(), used: dir.clock}
	i := sort.Search(len(dir.starts), func(i int) bool {
		return d.Range.Start.Less(dir.starts[i])
	})
	dir.starts = append(dir.starts, gaddr.Addr{})
	copy(dir.starts[i+1:], dir.starts[i:])
	dir.starts[i] = d.Range.Start
}

// evictLocked removes the least recently used entry.
func (dir *Directory) evictLocked() {
	var victim gaddr.Addr
	var oldest uint64
	first := true
	for start, ent := range dir.byStart {
		if first || ent.used < oldest {
			victim, oldest, first = start, ent.used, false
		}
	}
	if !first {
		dir.removeLocked(victim)
	}
}

// Remove drops the descriptor starting at start, if cached. It is used
// when a cached home pointer proves stale (paper §3.2) or a region is
// unreserved.
func (dir *Directory) Remove(start gaddr.Addr) {
	dir.mu.Lock()
	defer dir.mu.Unlock()
	dir.removeLocked(start)
}

func (dir *Directory) removeLocked(start gaddr.Addr) {
	if _, ok := dir.byStart[start]; !ok {
		return
	}
	delete(dir.byStart, start)
	i := sort.Search(len(dir.starts), func(i int) bool {
		return !dir.starts[i].Less(start)
	})
	if i < len(dir.starts) && dir.starts[i] == start {
		dir.starts = append(dir.starts[:i], dir.starts[i+1:]...)
	}
}

// Len returns the number of cached descriptors.
func (dir *Directory) Len() int {
	dir.mu.Lock()
	defer dir.mu.Unlock()
	return len(dir.byStart)
}

// Stats returns cumulative hit and miss counts.
func (dir *Directory) Stats() (hits, misses uint64) {
	dir.mu.Lock()
	defer dir.mu.Unlock()
	return dir.hits, dir.misses
}
