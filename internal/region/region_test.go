package region

import (
	"testing"
	"testing/quick"

	"khazana/internal/enc"
	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
	"khazana/internal/security"
)

func testDescriptor(start gaddr.Addr, size uint64) *Descriptor {
	return &Descriptor{
		Range:     gaddr.Range{Start: start, Size: size},
		Attrs:     DefaultAttrs(),
		Home:      []ktypes.NodeID{1},
		Epoch:     1,
		Allocated: true,
	}
}

func TestAttrsNormalize(t *testing.T) {
	var a Attrs
	n := a.Normalize()
	if n.PageSize != DefaultPageSize {
		t.Errorf("PageSize = %d", n.PageSize)
	}
	if n.Level != Strict || n.Protocol != CREW || n.MinReplicas != 1 {
		t.Errorf("Normalize = %+v", n)
	}
	// Level-derived protocol.
	a = Attrs{Level: Weak}
	if got := a.Normalize().Protocol; got != Eventual {
		t.Errorf("Weak default protocol = %v", got)
	}
	a = Attrs{Level: Relaxed}
	if got := a.Normalize().Protocol; got != Release {
		t.Errorf("Relaxed default protocol = %v", got)
	}
	// Explicit protocol wins over level.
	a = Attrs{Level: Weak, Protocol: CREW}
	if got := a.Normalize().Protocol; got != CREW {
		t.Errorf("explicit protocol overridden: %v", got)
	}
}

func TestAttrsValidate(t *testing.T) {
	good := DefaultAttrs()
	if err := good.Validate(); err != nil {
		t.Fatalf("default attrs invalid: %v", err)
	}
	bad := []Attrs{
		{PageSize: 100, Level: Strict, Protocol: CREW},             // too small
		{PageSize: 3000, Level: Strict, Protocol: CREW},            // not power of 2
		{PageSize: MaxPageSize * 2, Level: Strict, Protocol: CREW}, // too big
		{PageSize: 4096, Level: Strict, Protocol: 99},              // bad protocol
		{PageSize: 4096, Level: 99, Protocol: CREW},                // bad level
	}
	for i, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("case %d should be invalid: %+v", i, a)
		}
	}
	for _, ps := range []uint32{512, 4096, 16384, 65536} {
		a := Attrs{PageSize: ps, Level: Strict, Protocol: CREW}
		if err := a.Validate(); err != nil {
			t.Errorf("page size %d should validate: %v", ps, err)
		}
	}
}

func TestDescriptorBasics(t *testing.T) {
	d := testDescriptor(gaddr.FromUint64(0x10000), 0x4000)
	if d.ID() != gaddr.FromUint64(0x10000) {
		t.Errorf("ID = %v", d.ID())
	}
	home, err := d.PrimaryHome()
	if err != nil || home != 1 {
		t.Errorf("PrimaryHome = %v, %v", home, err)
	}
	if !d.HasHome(1) || d.HasHome(2) {
		t.Error("HasHome wrong")
	}
	empty := &Descriptor{}
	if _, err := empty.PrimaryHome(); err != ErrNoHome {
		t.Errorf("empty PrimaryHome err = %v", err)
	}
	if got := d.PageBase(gaddr.FromUint64(0x11234)); got != gaddr.FromUint64(0x11000) {
		t.Errorf("PageBase = %v", got)
	}
	pages := d.Pages(0, 0x4000)
	if len(pages) != 4 {
		t.Errorf("Pages = %d", len(pages))
	}
}

func TestDescriptorClone(t *testing.T) {
	d := testDescriptor(gaddr.FromUint64(0x1000), 0x1000)
	d.Attrs.ACL = security.Private("alice").Grant("bob", security.PermRead)
	c := d.Clone()
	c.Home[0] = 99
	c.Attrs.ACL.Entries[0].Allow = security.PermAll
	c.Epoch = 42
	if d.Home[0] != 1 {
		t.Error("Clone shares Home slice")
	}
	if d.Attrs.ACL.Entries[0].Allow != security.PermRead {
		t.Error("Clone shares ACL entries")
	}
	if d.Epoch != 1 {
		t.Error("Clone shares scalar state")
	}
}

func TestDescriptorEncodeDecode(t *testing.T) {
	d := testDescriptor(gaddr.New(3, 0x8000), 0x10000)
	d.Attrs.ACL = security.Private("alice").Grant("bob", security.PermRead|security.PermWrite)
	d.Attrs.MinReplicas = 3
	d.Attrs.Protocol = Release
	d.Attrs.Level = Relaxed
	d.Home = []ktypes.NodeID{2, 4}
	d.Epoch = 17

	e := enc.NewEncoder(0)
	d.EncodeTo(e)
	dec := enc.NewDecoder(e.Bytes())
	got := DecodeDescriptor(dec)
	if err := dec.Finish(); err != nil {
		t.Fatal(err)
	}
	if got.Range != d.Range || got.Epoch != d.Epoch || got.Allocated != d.Allocated {
		t.Fatalf("mismatch: %+v vs %+v", got, d)
	}
	if got.Attrs.PageSize != d.Attrs.PageSize || got.Attrs.Protocol != d.Attrs.Protocol ||
		got.Attrs.Level != d.Attrs.Level || got.Attrs.MinReplicas != d.Attrs.MinReplicas {
		t.Fatalf("attrs mismatch: %+v vs %+v", got.Attrs, d.Attrs)
	}
	if len(got.Home) != 2 || got.Home[0] != 2 || got.Home[1] != 4 {
		t.Fatalf("home mismatch: %v", got.Home)
	}
	if got.Attrs.ACL.Owner != "alice" || len(got.Attrs.ACL.Entries) != 1 {
		t.Fatalf("acl mismatch: %+v", got.Attrs.ACL)
	}
}

func TestDirectoryLookup(t *testing.T) {
	dir := NewDirectory(10)
	d1 := testDescriptor(gaddr.FromUint64(0x10000), 0x4000)
	d2 := testDescriptor(gaddr.FromUint64(0x20000), 0x1000)
	dir.Insert(d1)
	dir.Insert(d2)

	if got, ok := dir.Lookup(gaddr.FromUint64(0x11000)); !ok || got.ID() != d1.ID() {
		t.Fatalf("Lookup inside d1 = %v, %v", got, ok)
	}
	if got, ok := dir.Lookup(gaddr.FromUint64(0x20fff)); !ok || got.ID() != d2.ID() {
		t.Fatalf("Lookup end of d2 = %v, %v", got, ok)
	}
	if _, ok := dir.Lookup(gaddr.FromUint64(0x14000)); ok {
		t.Fatal("Lookup past d1 should miss")
	}
	if _, ok := dir.Lookup(gaddr.FromUint64(0x0)); ok {
		t.Fatal("Lookup before all should miss")
	}
	hits, misses := dir.Stats()
	if hits != 2 || misses != 2 {
		t.Fatalf("stats = %d hits, %d misses", hits, misses)
	}
}

func TestDirectoryLookupReturnsCopy(t *testing.T) {
	dir := NewDirectory(10)
	dir.Insert(testDescriptor(gaddr.FromUint64(0x1000), 0x1000))
	got, _ := dir.Lookup(gaddr.FromUint64(0x1000))
	got.Home[0] = 99
	again, _ := dir.Lookup(gaddr.FromUint64(0x1000))
	if again.Home[0] != 1 {
		t.Fatal("Lookup returned a shared descriptor")
	}
}

func TestDirectoryEpochPreference(t *testing.T) {
	dir := NewDirectory(10)
	d := testDescriptor(gaddr.FromUint64(0x1000), 0x1000)
	d.Epoch = 5
	d.Home = []ktypes.NodeID{3}
	dir.Insert(d)

	stale := testDescriptor(gaddr.FromUint64(0x1000), 0x1000)
	stale.Epoch = 2
	stale.Home = []ktypes.NodeID{9}
	dir.Insert(stale)

	got, _ := dir.Lookup(gaddr.FromUint64(0x1000))
	if got.Epoch != 5 || got.Home[0] != 3 {
		t.Fatalf("stale insert replaced fresher descriptor: %+v", got)
	}

	fresh := testDescriptor(gaddr.FromUint64(0x1000), 0x1000)
	fresh.Epoch = 9
	fresh.Home = []ktypes.NodeID{7}
	dir.Insert(fresh)
	got, _ = dir.Lookup(gaddr.FromUint64(0x1000))
	if got.Epoch != 9 || got.Home[0] != 7 {
		t.Fatalf("fresh insert ignored: %+v", got)
	}
}

func TestDirectoryEviction(t *testing.T) {
	dir := NewDirectory(3)
	for i := uint64(0); i < 3; i++ {
		dir.Insert(testDescriptor(gaddr.FromUint64(i*0x10000), 0x1000))
	}
	// Touch region 0 so region at 0x10000 becomes LRU.
	if _, ok := dir.Lookup(gaddr.FromUint64(0)); !ok {
		t.Fatal("warm lookup failed")
	}
	if _, ok := dir.Lookup(gaddr.FromUint64(0x20000)); !ok {
		t.Fatal("warm lookup failed")
	}
	dir.Insert(testDescriptor(gaddr.FromUint64(0x30000), 0x1000))
	if dir.Len() != 3 {
		t.Fatalf("Len = %d, want 3", dir.Len())
	}
	if _, ok := dir.Lookup(gaddr.FromUint64(0x10000)); ok {
		t.Fatal("LRU entry should have been evicted")
	}
	if _, ok := dir.Lookup(gaddr.FromUint64(0x30000)); !ok {
		t.Fatal("new entry should be cached")
	}
}

func TestDirectoryRemove(t *testing.T) {
	dir := NewDirectory(10)
	d := testDescriptor(gaddr.FromUint64(0x1000), 0x1000)
	dir.Insert(d)
	dir.Remove(d.ID())
	if _, ok := dir.Lookup(gaddr.FromUint64(0x1000)); ok {
		t.Fatal("removed entry still found")
	}
	// Removing an absent entry is a no-op.
	dir.Remove(gaddr.FromUint64(0x9999))
	if dir.Len() != 0 {
		t.Fatalf("Len = %d", dir.Len())
	}
}

func TestDirectoryConcurrent(t *testing.T) {
	dir := NewDirectory(64)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			dir.Insert(testDescriptor(gaddr.FromUint64(uint64(i%100)*0x10000), 0x1000))
		}
	}()
	for i := 0; i < 500; i++ {
		dir.Lookup(gaddr.FromUint64(uint64(i%100) * 0x10000))
	}
	<-done
}

// Property: descriptor encode/decode round-trips.
func TestQuickDescriptorRoundTrip(t *testing.T) {
	f := func(hi, lo, size uint64, ps uint8, homes []uint32, epoch uint64, alloc bool) bool {
		if size == 0 {
			size = 1
		}
		pageSize := uint32(512) << (ps % 8)
		d := &Descriptor{
			Range: gaddr.Range{Start: gaddr.New(hi, lo), Size: size},
			Attrs: Attrs{
				PageSize:    pageSize,
				Level:       Strict,
				Protocol:    CREW,
				MinReplicas: 1,
				ACL:         security.Open(),
			},
			Epoch:     epoch,
			Allocated: alloc,
		}
		for _, h := range homes {
			d.Home = append(d.Home, ktypes.NodeID(h))
		}
		e := enc.NewEncoder(0)
		d.EncodeTo(e)
		dec := enc.NewDecoder(e.Bytes())
		got := DecodeDescriptor(dec)
		if dec.Finish() != nil {
			return false
		}
		if got.Range != d.Range || got.Epoch != d.Epoch || got.Allocated != d.Allocated {
			return false
		}
		if len(got.Home) != len(d.Home) {
			return false
		}
		for i := range d.Home {
			if got.Home[i] != d.Home[i] {
				return false
			}
		}
		return got.Attrs.PageSize == d.Attrs.PageSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: after inserting disjoint regions, lookup of any contained
// address finds the right region.
func TestQuickDirectoryContainment(t *testing.T) {
	f := func(seeds []uint16) bool {
		dir := NewDirectory(len(seeds) + 1)
		var inserted []gaddr.Range
		for _, s := range seeds {
			start := gaddr.FromUint64(uint64(s) * 0x10000)
			r := gaddr.Range{Start: start, Size: 0x8000}
			overlap := false
			for _, prev := range inserted {
				if prev.Overlaps(r) {
					overlap = true
					break
				}
			}
			if overlap {
				continue
			}
			inserted = append(inserted, r)
			dir.Insert(testDescriptor(start, r.Size))
		}
		for _, r := range inserted {
			mid := r.Start.MustAdd(r.Size / 2)
			got, ok := dir.Lookup(mid)
			if !ok || got.Range.Start != r.Start {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
