// Package ktypes holds small identifier types shared across all Khazana
// layers: node identities and lock modes.
package ktypes

import "strconv"

// NodeID identifies a Khazana daemon process. All Khazana nodes are peers
// (paper §2); there is no server role. Valid IDs start at 1; 0 is "no node".
type NodeID uint32

// NilNode is the absent node ID.
const NilNode NodeID = 0

// String renders the node as "n<id>", matching the paper's Node 1..Node 5
// numbering in Figure 1.
func (n NodeID) String() string {
	if n == NilNode {
		return "n?"
	}
	return "n" + strconv.FormatUint(uint64(n), 10)
}

// LockMode is the mode a client states as its intention when locking part
// of a region (paper §2: "read-only, read-write etc"). Lock operations do
// not themselves enforce concurrency control; the region's consistency
// protocol decides policy from these stated intentions.
type LockMode uint8

const (
	// LockRead declares an intention to read.
	LockRead LockMode = iota + 1
	// LockWrite declares an intention to read and write.
	LockWrite
	// LockWriteShared declares a write intention that tolerates concurrent
	// writers (used by the weaker consistency protocols).
	LockWriteShared
)

// String renders the lock mode.
func (m LockMode) String() string {
	switch m {
	case LockRead:
		return "read"
	case LockWrite:
		return "write"
	case LockWriteShared:
		return "write-shared"
	default:
		return "invalid"
	}
}

// Writes reports whether the mode permits writes.
func (m LockMode) Writes() bool { return m == LockWrite || m == LockWriteShared }

// Valid reports whether m is a defined lock mode.
func (m LockMode) Valid() bool { return m >= LockRead && m <= LockWriteShared }

// Principal identifies a client for access-control checks. Authentication
// proper is out of the paper's scope (§3); principals are opaque strings.
type Principal string

// Anonymous is the principal used when a client does not identify itself.
const Anonymous Principal = ""
