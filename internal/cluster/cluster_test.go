package cluster

import (
	"context"
	"testing"
	"time"

	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
	"khazana/internal/wire"
)

// fakeClock is a controllable time source.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func newTestManager(c *fakeClock) *Manager   { return NewManager(1, WithClock(c.now)) }
func start(n uint64) gaddr.Addr              { return gaddr.FromUint64(n * 0x100000) }

func TestJoinAndView(t *testing.T) {
	c := newFakeClock()
	m := newTestManager(c)
	view := m.Join(2, "127.0.0.1:9000")
	if view.Manager != 1 {
		t.Fatalf("manager = %v", view.Manager)
	}
	if len(view.Members) != 2 || view.Members[0] != 1 || view.Members[1] != 2 {
		t.Fatalf("members = %v", view.Members)
	}
	addr, ok := m.MemberAddr(2)
	if !ok || addr != "127.0.0.1:9000" {
		t.Fatalf("addr = %q, %v", addr, ok)
	}
	// Rejoin updates the address.
	m.Join(2, "127.0.0.1:9001")
	addr, _ = m.MemberAddr(2)
	if addr != "127.0.0.1:9001" {
		t.Fatalf("addr after rejoin = %q", addr)
	}
}

func TestHeartbeatLiveness(t *testing.T) {
	c := newFakeClock()
	m := newTestManager(c)
	m.Join(2, "")
	m.Join(3, "")
	if got := m.Alive(); len(got) != 3 {
		t.Fatalf("alive = %v", got)
	}
	// Node 3 goes silent past expiry; node 2 heartbeats.
	c.advance(DefaultExpiry - time.Second)
	m.Heartbeat(&wire.Heartbeat{Node: 2, FreeTotal: 100, FreeMax: 50})
	c.advance(2 * time.Second)
	alive := m.Alive()
	if len(alive) != 2 || alive[0] != 1 || alive[1] != 2 {
		t.Fatalf("alive = %v, want [1 2]", alive)
	}
	// The manager itself never expires.
	c.advance(time.Hour)
	if got := m.Alive(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("alive = %v, want [1]", got)
	}
}

func TestLeave(t *testing.T) {
	c := newFakeClock()
	m := newTestManager(c)
	m.Join(2, "")
	m.AddHint(start(1), 2)
	m.Leave(2)
	if got := m.Alive(); len(got) != 1 {
		t.Fatalf("alive = %v", got)
	}
	if _, found := m.Query(start(1)); found {
		t.Fatal("hint survived leave")
	}
	// Leaving the manager itself is ignored.
	m.Leave(1)
	if got := m.Alive(); len(got) != 1 {
		t.Fatalf("alive after self-leave = %v", got)
	}
}

func TestQueryHints(t *testing.T) {
	c := newFakeClock()
	m := newTestManager(c)
	m.Join(2, "")
	m.Join(3, "")
	m.AddHint(start(5), 2)
	m.AddHint(start(5), 3)

	nodes, found := m.Query(start(5))
	if !found || len(nodes) != 2 {
		t.Fatalf("query = %v, %v", nodes, found)
	}
	// An address above a hinted start resolves to that hint (best-effort
	// containment guess).
	nodes, found = m.Query(start(5).MustAdd(0x1000))
	if !found || len(nodes) == 0 {
		t.Fatalf("inner query = %v, %v", nodes, found)
	}
	// An address below every hint misses.
	if _, found := m.Query(gaddr.FromUint64(1)); found {
		t.Fatal("low address should miss")
	}
}

func TestQueryFiltersDeadNodes(t *testing.T) {
	c := newFakeClock()
	m := newTestManager(c)
	m.Join(2, "")
	m.AddHint(start(5), 2)
	c.advance(DefaultExpiry + time.Second)
	nodes, found := m.Query(start(5))
	if found || len(nodes) != 0 {
		t.Fatalf("query with dead node = %v, %v", nodes, found)
	}
}

func TestHeartbeatCarriesRegionHints(t *testing.T) {
	c := newFakeClock()
	m := newTestManager(c)
	m.Join(2, "")
	m.Heartbeat(&wire.Heartbeat{Node: 2, Regions: []gaddr.Addr{start(7), start(9)}})
	if nodes, found := m.Query(start(7)); !found || nodes[0] != 2 {
		t.Fatalf("hint from heartbeat = %v, %v", nodes, found)
	}
	if m.HintCount() != 2 {
		t.Fatalf("hint count = %d", m.HintCount())
	}
}

func TestHintEviction(t *testing.T) {
	c := newFakeClock()
	m := NewManager(1, WithClock(c.now), WithHintCapacity(3))
	m.Join(2, "")
	for i := uint64(1); i <= 3; i++ {
		m.AddHint(start(i), 2)
	}
	// Touch hint 1 so hint 2 is LRU.
	m.Query(start(1))
	m.AddHint(start(4), 2)
	if m.HintCount() != 3 {
		t.Fatalf("hint count = %d", m.HintCount())
	}
	m.mu.Lock()
	_, hint2 := m.hints[start(2)]
	m.mu.Unlock()
	if hint2 {
		t.Fatal("LRU hint should be evicted")
	}
	if _, found := m.Query(start(4)); !found {
		t.Fatal("new hint missing")
	}
}

func TestBestFreeSpace(t *testing.T) {
	c := newFakeClock()
	m := newTestManager(c)
	m.Join(2, "")
	m.Join(3, "")
	m.Heartbeat(&wire.Heartbeat{Node: 2, FreeTotal: 100, FreeMax: 60})
	m.Heartbeat(&wire.Heartbeat{Node: 3, FreeTotal: 300, FreeMax: 40})
	node, max := m.BestFreeSpace()
	if node != 2 || max != 60 {
		t.Fatalf("best = %v, %d", node, max)
	}
}

func TestWalk(t *testing.T) {
	c := newFakeClock()
	m := newTestManager(c)
	m.Join(2, "")
	m.Join(3, "")
	m.Join(4, "")
	// Only node 3 knows the region.
	lookup := func(_ context.Context, node ktypes.NodeID, _ gaddr.Addr) bool {
		return node == 3
	}
	hits := m.Walk(context.Background(), start(8), lookup, 1)
	if len(hits) != 1 || hits[0] != 3 {
		t.Fatalf("walk = %v", hits)
	}
	// The walk result is cached as a hint.
	if nodes, found := m.Query(start(8)); !found || nodes[0] != 3 {
		t.Fatalf("walk hint = %v, %v", nodes, found)
	}
	// A walk over nodes that all miss returns nothing.
	none := m.Walk(context.Background(), start(99), func(context.Context, ktypes.NodeID, gaddr.Addr) bool { return false }, 2)
	if len(none) != 0 {
		t.Fatalf("walk none = %v", none)
	}
}

func TestWalkSkipsDeadAndSelf(t *testing.T) {
	c := newFakeClock()
	m := newTestManager(c)
	m.Join(2, "")
	m.Join(3, "")
	c.advance(DefaultExpiry + time.Second)
	m.Heartbeat(&wire.Heartbeat{Node: 3}) // only 3 alive
	var asked []ktypes.NodeID
	m.Walk(context.Background(), start(1), func(_ context.Context, n ktypes.NodeID, _ gaddr.Addr) bool {
		asked = append(asked, n)
		return false
	}, 1)
	if len(asked) != 1 || asked[0] != 3 {
		t.Fatalf("walk asked %v, want [3]", asked)
	}
}

func TestMembersSnapshot(t *testing.T) {
	c := newFakeClock()
	m := newTestManager(c)
	m.Join(3, "c")
	m.Join(2, "b")
	ms := m.Members()
	if len(ms) != 3 || ms[0].ID != 1 || ms[1].ID != 2 || ms[2].ID != 3 {
		t.Fatalf("members = %+v", ms)
	}
}
