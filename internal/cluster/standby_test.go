package cluster

import (
	"testing"

	"khazana/internal/gaddr"
)

func TestStandbyTable(t *testing.T) {
	tb := NewStandbyTable()
	if tb.Len() != 0 {
		t.Fatalf("fresh table len = %d", tb.Len())
	}
	r1 := gaddr.New(0, 0x10000)
	r2 := gaddr.New(0, 0x50000)

	tb.Observe(r1, 2, 1, 4)
	tb.Observe(r2, 5, 3, 9)
	if tb.Len() != 2 {
		t.Fatalf("len = %d, want 2", tb.Len())
	}
	info, ok := tb.Lookup(r1)
	if !ok || info.Leader != 2 || info.Term != 1 || info.LastIndex != 4 {
		t.Fatalf("r1 = %+v ok=%v", info, ok)
	}

	// Later observations overwrite: an election bumps the term and
	// clears the leader until the winner's first append.
	tb.Observe(r1, 0, 2, 4)
	info, _ = tb.Lookup(r1)
	if info.Leader != 0 || info.Term != 2 {
		t.Fatalf("after election r1 = %+v", info)
	}

	regions := tb.Regions()
	if len(regions) != 2 || regions[0] != r1 || regions[1] != r2 {
		t.Fatalf("regions = %v", regions)
	}

	tb.Drop(r1)
	if _, ok := tb.Lookup(r1); ok || tb.Len() != 1 {
		t.Fatalf("drop left r1 behind (len %d)", tb.Len())
	}
}
