package cluster

import (
	"sort"
	"sync"

	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
)

// StandbyTable tracks the regions a node follows as a log replica of a
// remote home. The replog observer feeds it on every replicated append,
// so at failover time the node already knows, per region, who was
// leading, at what term, and how far its local log reaches — the
// election candidacy material — without any extra wire traffic
// (Heartbeat is deliberately untouched).
type StandbyTable struct {
	mu      sync.Mutex
	entries map[gaddr.Addr]StandbyInfo
}

// StandbyInfo is the last observed replication state for one region.
type StandbyInfo struct {
	// Leader is the last node seen appending (0 while an election is
	// unresolved).
	Leader ktypes.NodeID
	// Term is the leader's ballot number at the last append.
	Term uint64
	// LastIndex is how far this node's local log reaches.
	LastIndex uint64
}

// NewStandbyTable creates an empty table.
func NewStandbyTable() *StandbyTable {
	return &StandbyTable{entries: make(map[gaddr.Addr]StandbyInfo)}
}

// Observe records the replication state seen for the region starting at
// start. Called from the replog observer on every append and election.
func (t *StandbyTable) Observe(start gaddr.Addr, leader ktypes.NodeID, term, lastIndex uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.entries[start] = StandbyInfo{Leader: leader, Term: term, LastIndex: lastIndex}
}

// Lookup returns the last observed state for the region starting at
// start.
func (t *StandbyTable) Lookup(start gaddr.Addr) (StandbyInfo, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	info, ok := t.entries[start]
	return info, ok
}

// Drop forgets a region (it migrated away or was destroyed).
func (t *StandbyTable) Drop(start gaddr.Addr) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.entries, start)
}

// Regions lists the tracked region starts in address order.
func (t *StandbyTable) Regions() []gaddr.Addr {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]gaddr.Addr, 0, len(t.entries))
	for s := range t.entries {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Len returns the number of tracked regions.
func (t *StandbyTable) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}
