// Package cluster implements Khazana's cluster management (paper §3.1):
// nodes organize into groups of closely-connected nodes called clusters,
// each with one or more designated cluster managers responsible for being
// aware of other cluster locations, caching hint information about regions
// stored in the local cluster, and representing the cluster during
// inter-cluster communication.
//
// The manager also maintains hints of the sizes of free address space
// managed by other nodes and answers the "is this region cached in a
// nearby node?" query that sits between the region directory and the
// address map tree walk on the lookup path (§3.2). When its hints miss,
// the manager can fall back to the cluster-walk algorithm (§3.1): asking
// each cluster member directly.
package cluster

import (
	"context"
	"sort"
	"sync"
	"time"

	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
	"khazana/internal/wire"
)

// DefaultHintCapacity bounds the manager's region-location hint cache.
const DefaultHintCapacity = 4096

// DefaultExpiry is how long a member may go silent before being presumed
// dead.
const DefaultExpiry = 5 * time.Second

// Member is the manager's view of one cluster node.
type Member struct {
	ID        ktypes.NodeID
	Addr      string
	LastSeen  time.Time
	FreeTotal uint64
	FreeMax   uint64
}

// LookupFunc asks one node whether it knows the region containing addr;
// it is supplied by the daemon (a RegionLookup RPC) and used by the
// cluster walk.
type LookupFunc func(ctx context.Context, node ktypes.NodeID, addr gaddr.Addr) (found bool)

// Manager holds cluster-manager state. It is driven by the daemon's
// message handler.
type Manager struct {
	mu      sync.Mutex
	self    ktypes.NodeID
	members map[ktypes.NodeID]*Member
	// hints maps region start addresses to nodes recently known to cache
	// the region.
	hints   map[gaddr.Addr][]ktypes.NodeID
	hintUse map[gaddr.Addr]uint64
	clock   uint64
	hintCap int
	expiry  time.Duration
	now     func() time.Time
	// peers are managers of other clusters in the hierarchy (§3.1);
	// queries that miss locally are forwarded to them.
	peers []ktypes.NodeID
}

// Option configures a Manager.
type Option func(*Manager)

// WithHintCapacity bounds the hint cache.
func WithHintCapacity(n int) Option {
	return func(m *Manager) {
		if n > 0 {
			m.hintCap = n
		}
	}
}

// WithExpiry sets the heartbeat expiry.
func WithExpiry(d time.Duration) Option {
	return func(m *Manager) {
		if d > 0 {
			m.expiry = d
		}
	}
}

// WithClock injects a time source (tests).
func WithClock(now func() time.Time) Option {
	return func(m *Manager) { m.now = now }
}

// NewManager creates the manager state for node self.
func NewManager(self ktypes.NodeID, opts ...Option) *Manager {
	m := &Manager{
		self:    self,
		members: make(map[ktypes.NodeID]*Member),
		hints:   make(map[gaddr.Addr][]ktypes.NodeID),
		hintUse: make(map[gaddr.Addr]uint64),
		hintCap: DefaultHintCapacity,
		expiry:  DefaultExpiry,
		now:     time.Now,
	}
	for _, opt := range opts {
		opt(m)
	}
	// The manager is always a member of its own cluster.
	m.members[self] = &Member{ID: self, LastSeen: m.now()}
	return m
}

// Self returns the manager's node ID.
func (m *Manager) Self() ktypes.NodeID { return m.self }

// SetPeerManagers installs the managers of peer clusters for
// inter-cluster query forwarding (§3.1: cluster managers are "responsible
// for being aware of other cluster locations ... and representing the
// local cluster during inter-cluster communication").
func (m *Manager) SetPeerManagers(peers []ktypes.NodeID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.peers = append([]ktypes.NodeID(nil), peers...)
}

// PeerManagers returns the peer cluster managers.
func (m *Manager) PeerManagers() []ktypes.NodeID {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]ktypes.NodeID(nil), m.peers...)
}

// Join admits a node and returns the current view.
func (m *Manager) Join(node ktypes.NodeID, addr string) *wire.ClusterView {
	m.mu.Lock()
	defer m.mu.Unlock()
	mem, ok := m.members[node]
	if !ok {
		mem = &Member{ID: node}
		m.members[node] = mem
	}
	mem.Addr = addr
	mem.LastSeen = m.now()
	return m.viewLocked()
}

// Leave removes a node (§3.1: machines can dynamically enter and leave).
func (m *Manager) Leave(node ktypes.NodeID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if node != m.self {
		delete(m.members, node)
	}
	for start, nodes := range m.hints {
		m.hints[start] = removeNode(nodes, node)
		if len(m.hints[start]) == 0 {
			delete(m.hints, start)
			delete(m.hintUse, start)
		}
	}
}

// Heartbeat refreshes liveness and free-space hints, and records the
// reporting node as a cacher of the regions it lists.
func (m *Manager) Heartbeat(hb *wire.Heartbeat) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mem, ok := m.members[hb.Node]
	if !ok {
		mem = &Member{ID: hb.Node}
		m.members[hb.Node] = mem
	}
	mem.LastSeen = m.now()
	mem.FreeTotal = hb.FreeTotal
	mem.FreeMax = hb.FreeMax
	for _, start := range hb.Regions {
		m.addHintLocked(start, hb.Node)
	}
}

// AddHint records that node caches the region starting at start.
func (m *Manager) AddHint(start gaddr.Addr, node ktypes.NodeID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.addHintLocked(start, node)
}

func (m *Manager) addHintLocked(start gaddr.Addr, node ktypes.NodeID) {
	m.clock++
	nodes := m.hints[start]
	for _, n := range nodes {
		if n == node {
			m.hintUse[start] = m.clock
			return
		}
	}
	if _, exists := m.hints[start]; !exists && len(m.hints) >= m.hintCap {
		m.evictHintLocked()
	}
	m.hints[start] = append(nodes, node)
	m.hintUse[start] = m.clock
}

func (m *Manager) evictHintLocked() {
	var victim gaddr.Addr
	var oldest uint64
	first := true
	for start, used := range m.hintUse {
		if first || used < oldest {
			victim, oldest, first = start, used, false
		}
	}
	if !first {
		delete(m.hints, victim)
		delete(m.hintUse, victim)
	}
}

// Query answers "which nearby nodes cache the region containing addr?"
// from the hint cache. Hints are indexed by region start, so the caller
// passes any address and the manager scans (hint cache is small and
// bounded). Stale hints are possible and tolerated (§3.2).
func (m *Manager) Query(addr gaddr.Addr) (nodes []ktypes.NodeID, found bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	// Exact region-start hit first.
	if ns, ok := m.hints[addr]; ok {
		m.clock++
		m.hintUse[addr] = m.clock
		alive := m.aliveOfLocked(ns)
		return alive, len(alive) > 0
	}
	// Otherwise the greatest hint start below addr (the region likely
	// containing it). The hint carries no size, so this may be a false
	// positive — the requester verifies with the named node.
	var best gaddr.Addr
	var bestNodes []ktypes.NodeID
	have := false
	for start, ns := range m.hints {
		if addr.Less(start) {
			continue
		}
		if !have || best.Less(start) {
			best, bestNodes, have = start, ns, true
		}
	}
	if !have {
		return nil, false
	}
	m.clock++
	m.hintUse[best] = m.clock
	alive := m.aliveOfLocked(bestNodes)
	return alive, len(alive) > 0
}

func (m *Manager) aliveOfLocked(ns []ktypes.NodeID) []ktypes.NodeID {
	cutoff := m.now().Add(-m.expiry)
	out := make([]ktypes.NodeID, 0, len(ns))
	for _, n := range ns {
		if mem, ok := m.members[n]; ok && (n == m.self || mem.LastSeen.After(cutoff)) {
			out = append(out, n)
		}
	}
	return out
}

// Walk performs the cluster-walk algorithm (§3.1): ask each live member
// whether it knows the region containing addr, returning the nodes that
// do. maxHits bounds the walk (0 = first hit wins).
func (m *Manager) Walk(ctx context.Context, addr gaddr.Addr, lookup LookupFunc, maxHits int) []ktypes.NodeID {
	if maxHits <= 0 {
		maxHits = 1
	}
	var hits []ktypes.NodeID
	for _, node := range m.Alive() {
		if node == m.self {
			continue
		}
		if lookup(ctx, node, addr) {
			hits = append(hits, node)
			m.AddHint(addr, node)
			if len(hits) >= maxHits {
				break
			}
		}
	}
	return hits
}

// Alive lists members seen within the expiry window, in stable order.
func (m *Manager) Alive() []ktypes.NodeID {
	m.mu.Lock()
	defer m.mu.Unlock()
	cutoff := m.now().Add(-m.expiry)
	out := make([]ktypes.NodeID, 0, len(m.members))
	for id, mem := range m.members {
		if id == m.self || mem.LastSeen.After(cutoff) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Members returns a snapshot of all tracked members.
func (m *Manager) Members() []Member {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Member, 0, len(m.members))
	for _, mem := range m.members {
		out = append(out, *mem)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// MemberAddr returns a member's transport address.
func (m *Manager) MemberAddr(id ktypes.NodeID) (string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mem, ok := m.members[id]
	if !ok {
		return "", false
	}
	return mem.Addr, true
}

// BestFreeSpace returns the member advertising the largest free region,
// for reservation routing (§3.1 free-space hints).
func (m *Manager) BestFreeSpace() (ktypes.NodeID, uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var best ktypes.NodeID
	var max uint64
	for id, mem := range m.members {
		if mem.FreeMax > max {
			best, max = id, mem.FreeMax
		}
	}
	return best, max
}

// View returns the membership view sent to joiners.
func (m *Manager) View() *wire.ClusterView {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.viewLocked()
}

func (m *Manager) viewLocked() *wire.ClusterView {
	members := make([]ktypes.NodeID, 0, len(m.members))
	for id := range m.members {
		members = append(members, id)
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	return &wire.ClusterView{Manager: m.self, Members: members}
}

// HintCount returns the number of cached region hints.
func (m *Manager) HintCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.hints)
}

func removeNode(ns []ktypes.NodeID, node ktypes.NodeID) []ktypes.NodeID {
	out := ns[:0]
	for _, n := range ns {
		if n != node {
			out = append(out, n)
		}
	}
	return out
}
