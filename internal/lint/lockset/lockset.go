// Package lockset walks function bodies tracking which sync.Mutex /
// sync.RWMutex struct fields are held along each path, delivering events
// (acquisitions, calls, channel operations) to analyzer callbacks with
// the held set at that point.
//
// The tracking is path-sensitive and syntactic, mirroring the lockorder
// analyzer's conventions: the held set is cloned per branch, a deferred
// unlock keeps the mutex held to function end, and nested function
// literals are skipped entirely — a closure runs later, elsewhere, or on
// another goroutine, so events inside it do not happen under the
// enclosing function's locks (analyzers walk closure bodies separately if
// they care). Arguments of a `go` statement are evaluated synchronously
// and are scanned; the spawned call itself is not an event.
//
// Only mutexes that are named struct fields are tracked. A local mutex
// variable has no stable cross-function identity, so it cannot
// participate in a whole-program ordering anyway.
package lockset

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Key identifies a mutex field: the defining struct as "pkgpath.Type"
// plus the field name. Stable across the source and export-data views of
// a package.
type Key struct {
	Type  string
	Field string
}

func (k Key) String() string { return k.Type + "." + k.Field }

// Held maps the locks held on the current path to their acquisition
// positions.
type Held map[Key]token.Pos

// Clone returns an independent copy.
func (h Held) Clone() Held {
	out := make(Held, len(h))
	for k, p := range h {
		out[k] = p
	}
	return out
}

// Callbacks receive walk events. Any callback may be nil.
type Callbacks struct {
	// Acquire fires at a Lock or RLock of a tracked mutex field, before
	// the key joins the held set. read reports RLock.
	Acquire func(k Key, read bool, pos token.Pos, held Held)
	// Call fires for every call expression evaluated in the function's
	// own execution context (mutex operations excluded).
	Call func(call *ast.CallExpr, held Held)
	// ChanOp fires for blocking channel operations: sends, receives,
	// range over a channel, and selects without a default clause. kind is
	// a short human-readable description.
	ChanOp func(kind string, pos token.Pos, held Held)
}

// Walk traverses body delivering events to cb.
func Walk(info *types.Info, body *ast.BlockStmt, cb Callbacks) {
	w := &walker{info: info, cb: cb, held: make(Held)}
	w.stmts(body.List)
}

type walker struct {
	info *types.Info
	cb   Callbacks
	held Held
}

func (w *walker) clone() *walker {
	return &walker{info: w.info, cb: w.cb, held: w.held.Clone()}
}

func (w *walker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *walker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
		if w.cb.ChanOp != nil {
			w.cb.ChanOp("channel send", s.Arrow, w.held)
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e)
		}
		for _, e := range s.Lhs {
			w.expr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		w.expr(s.X)
	case *ast.DeferStmt:
		// A deferred unlock releases at function end: the mutex stays held
		// for everything that follows. A deferred lock is nonsense;
		// ignore. Other deferred calls are treated as running with the
		// current held set (conservative: defers stacked under the unlock
		// defer run before it, i.e. with the lock still held).
		if _, _, _, ok := w.mutexOp(s.Call); ok {
			return
		}
		w.expr(s.Call)
	case *ast.GoStmt:
		// The arguments are evaluated now; the call runs on a new
		// goroutine with nothing held, so the call itself is not an event.
		for _, arg := range s.Call.Args {
			w.expr(arg)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e)
		}
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.expr(s.Cond)
		w.clone().stmts(s.Body.List)
		if s.Else != nil {
			w.clone().stmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.expr(s.Cond)
		}
		w.clone().stmts(s.Body.List)
	case *ast.RangeStmt:
		w.expr(s.X)
		if t := w.info.TypeOf(s.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan && w.cb.ChanOp != nil {
				w.cb.ChanOp("range over channel", s.For, w.held)
			}
		}
		w.clone().stmts(s.Body.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.clone().stmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.clone().stmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		// A select with a default clause never blocks; one without
		// blocks until a case is ready.
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault && w.cb.ChanOp != nil {
			w.cb.ChanOp("select", s.Select, w.held)
		}
		// The comm statements' channel operations are the select's own
		// blocking points (already reported above); only walk the clause
		// bodies.
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.clone().stmts(cc.Body)
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	}
}

// expr scans an expression for events: mutex operations mutate the held
// set, other calls and channel receives are reported. Function literals
// are skipped.
func (w *walker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if key, isLock, read, ok := w.mutexOp(n); ok {
				if isLock {
					if w.cb.Acquire != nil {
						w.cb.Acquire(key, read, n.Lparen, w.held)
					}
					w.held[key] = n.Lparen
				} else {
					delete(w.held, key)
				}
				return false
			}
			if w.cb.Call != nil {
				w.cb.Call(n, w.held)
			}
			return true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && w.cb.ChanOp != nil {
				w.cb.ChanOp("channel receive", n.OpPos, w.held)
			}
			return true
		}
		return true
	})
}

// mutexOp reports whether call is recv.<field>.Lock/RLock/Unlock/RUnlock
// on a sync.Mutex or sync.RWMutex struct field, returning the field key
// and the operation.
func (w *walker) mutexOp(call *ast.CallExpr) (key Key, isLock, read, ok bool) {
	sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !okSel {
		return Key{}, false, false, false
	}
	switch sel.Sel.Name {
	case "Lock":
		isLock = true
	case "RLock":
		isLock, read = true, true
	case "Unlock":
	case "RUnlock":
		read = true
	default:
		return Key{}, false, false, false
	}
	inner, okInner := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !okInner {
		return Key{}, false, false, false
	}
	selection, okSelInfo := w.info.Selections[inner]
	if !okSelInfo || selection.Kind() != types.FieldVal {
		return Key{}, false, false, false
	}
	fieldObj := selection.Obj()
	if !isMutexType(fieldObj.Type()) {
		return Key{}, false, false, false
	}
	recv := selection.Recv()
	if ptr, isPtr := recv.(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	named, okNamed := recv.(*types.Named)
	if !okNamed {
		return Key{}, false, false, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return Key{}, false, false, false
	}
	return Key{Type: obj.Pkg().Path() + "." + obj.Name(), Field: fieldObj.Name()}, isLock, read, true
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}
