// Package fakeapi stubs the Khazana APIs whose errors erricheck guards;
// the analyzer keys on the method names and the khazana/ path prefix.
package fakeapi

type Host struct{}

func (Host) StorePage(page int, data []byte) error { return nil }
func (Host) Request(node int) (int, error)         { return 0, nil }
func (Host) Put(page int, data []byte) error       { return nil }

type Lock struct{}

func (Lock) Unlock() error { return nil }
