package a

import "khazana/internal/fakeapi"

// checked handles every error.
func checked(h fakeapi.Host) error {
	if err := h.StorePage(1, nil); err != nil {
		return err
	}
	v, err := h.Request(1)
	_ = v
	return err
}

// annotated discards are fine when justified.
func annotated(h fakeapi.Host) {
	//khazana:ignore-err best-effort push; repeated next anti-entropy round
	_ = h.StorePage(1, nil)
	_, _ = h.Request(1) //khazana:ignore-err same-line justification works too
}

// notKhazana shares a checked name but lives outside the module: exempt.
type notKhazana struct{}

func (notKhazana) Put(page int) error { return nil }

func exempt(n notKhazana) {
	_ = n.Put(1)
}
