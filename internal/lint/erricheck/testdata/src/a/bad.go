package a

import "khazana/internal/fakeapi"

func discards(h fakeapi.Host, l fakeapi.Lock) {
	_ = h.StorePage(1, nil) // want `error from khazana/internal/fakeapi\.StorePage is discarded`
	_, _ = h.Request(1)     // want `error from khazana/internal/fakeapi\.Request is discarded`
	_ = l.Unlock()          // want `error from khazana/internal/fakeapi\.Unlock is discarded`
}

func bareCall(h fakeapi.Host) {
	h.Put(1, nil) // want `error from khazana/internal/fakeapi\.Put is discarded`
}

func emptyReason(h fakeapi.Host) {
	//khazana:ignore-err
	_ = h.StorePage(1, nil) // want `annotation requires a reason`
}
