package erricheck_test

import (
	"testing"

	"khazana/internal/lint/erricheck"
	"khazana/internal/lint/linttest"
)

func TestErrICheck(t *testing.T) {
	linttest.Run(t, "testdata", erricheck.Analyzer, "a")
}
