// Package erricheck flags silently discarded errors from Khazana's
// replication-critical APIs.
//
// StorePage, Unlock, Request, and Put are the calls whose failures mean a
// page update, a lock release, or an RPC was lost — exactly the class of
// error §3.5 of the paper says must be retried or surfaced, never
// dropped. The analyzer reports assignments that discard such an error
// into the blank identifier (`_ = h.StorePage(...)`, `_, _ =
// tr.Request(...)`) and bare call statements that ignore the results
// entirely, unless the site carries an explicit justification:
//
//	//khazana:ignore-err <reason>
//
// on the same line or the line above. The annotation requires a reason;
// an empty one is itself reported.
package erricheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"khazana/internal/lint/analysis"
)

// Analyzer is the erricheck check.
var Analyzer = &analysis.Analyzer{
	Name: "erricheck",
	Doc:  "check for discarded errors from Khazana's replication-critical APIs (StorePage, Unlock, Request, Put)",
	Run:  run,
}

// APINames are the checked method/function names.
var APINames = map[string]bool{
	"StorePage": true,
	"Unlock":    true,
	"Request":   true,
	"Put":       true,
}

// ModulePrefix restricts the check to APIs declared in this module; a
// stdlib Put or Request is someone else's contract.
const ModulePrefix = "khazana"

// Directive is the annotation that suppresses a finding, followed by a
// required reason.
const Directive = "//khazana:ignore-err"

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ignored := directiveLines(pass.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				checkAssign(pass, n, ignored)
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if fn := checkedAPI(pass, call); fn != nil && callReturnsError(pass, call) {
						report(pass, ignored, call.Pos(), fn)
					}
					// Don't descend: arguments cannot discard errors.
					return false
				}
			}
			return true
		})
	}
	return nil
}

// checkAssign reports error results of checked APIs assigned to the blank
// identifier.
func checkAssign(pass *analysis.Pass, assign *ast.AssignStmt, ignored map[int]string) {
	if len(assign.Rhs) == 1 && len(assign.Lhs) > 1 {
		// Tuple assignment: x, _ := call().
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		fn := checkedAPI(pass, call)
		if fn == nil {
			return
		}
		tuple, ok := pass.TypeOf(call).(*types.Tuple)
		if !ok || tuple.Len() != len(assign.Lhs) {
			return
		}
		for i, lhs := range assign.Lhs {
			if isBlank(lhs) && isErrorType(tuple.At(i).Type()) {
				report(pass, ignored, assign.Pos(), fn)
				return
			}
		}
		return
	}
	for i, rhs := range assign.Rhs {
		if i >= len(assign.Lhs) || !isBlank(assign.Lhs[i]) {
			continue
		}
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			continue
		}
		fn := checkedAPI(pass, call)
		if fn != nil && isErrorType(pass.TypeOf(call)) {
			report(pass, ignored, assign.Pos(), fn)
		}
	}
}

func report(pass *analysis.Pass, ignored map[int]string, pos token.Pos, fn *types.Func) {
	line := pass.Fset.Position(pos).Line
	for _, l := range []int{line, line - 1} {
		if reason, ok := ignored[l]; ok {
			if strings.TrimSpace(reason) == "" {
				pass.Reportf(pos, "%s annotation requires a reason", Directive)
			}
			return
		}
	}
	pass.Reportf(pos, "error from %s.%s is discarded: propagate, log, or count it, or annotate with %s <reason>",
		fn.Pkg().Path(), fn.Name(), Directive)
}

// checkedAPI resolves call to a checked Khazana API, or nil.
func checkedAPI(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	fn := analysis.MethodCall(pass.TypesInfo, call)
	if fn == nil || !APINames[fn.Name()] || fn.Pkg() == nil {
		return nil
	}
	path := fn.Pkg().Path()
	if path != ModulePrefix && !strings.HasPrefix(path, ModulePrefix+"/") {
		return nil
	}
	return fn
}

func callReturnsError(pass *analysis.Pass, call *ast.CallExpr) bool {
	switch t := pass.TypeOf(call).(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errorType)
}

// directiveLines maps line numbers carrying the ignore directive to the
// annotation's reason text.
func directiveLines(fset *token.FileSet, file *ast.File) map[int]string {
	out := make(map[int]string)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if rest, ok := strings.CutPrefix(c.Text, Directive); ok {
				out[fset.Position(c.Pos()).Line] = rest
			}
		}
	}
	return out
}
