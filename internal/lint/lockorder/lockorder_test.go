package lockorder_test

import (
	"testing"

	"khazana/internal/lint/linttest"
	"khazana/internal/lint/lockorder"
)

func TestLockOrder(t *testing.T) {
	linttest.Run(t, "testdata", lockorder.Analyzer, "khazana/internal/core")
}

// TestLockOrderCycles seeds a deadlock across two fixture packages —
// neither function is wrong in isolation — and asserts the whole-program
// pass reports the cycle with both witness chains.
func TestLockOrderCycles(t *testing.T) {
	linttest.RunProgram(t, "testdata", lockorder.Analyzer, "cyc/q")
}
