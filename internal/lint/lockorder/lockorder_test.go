package lockorder_test

import (
	"testing"

	"khazana/internal/lint/linttest"
	"khazana/internal/lint/lockorder"
)

func TestLockOrder(t *testing.T) {
	linttest.Run(t, "testdata", lockorder.Analyzer, "khazana/internal/core")
}
