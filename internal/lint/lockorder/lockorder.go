// Package lockorder flags acquisitions of core.Node's mutexes that
// violate the canonical order, and re-entrant acquisitions of the same
// mutex.
//
// core.Node guards four independent pieces of state with four mutexes.
// Any function that ever holds two of them concurrently must acquire them
// in the canonical order
//
//	descMu → chunkMu → lockMu → appMu
//
// or two call paths taking them in opposite orders can deadlock the
// daemon. The analysis is intra-procedural and syntactic: within each
// function body it tracks which guarded mutexes are held (a deferred
// unlock keeps the mutex held to function end) and reports any Lock call
// that re-enters a held mutex or acquires one that precedes a held one in
// the canonical order.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"khazana/internal/lint/analysis"
)

// Analyzer is the lockorder check. Run enforces the canonical order of
// core.Node's mutexes within each function; RunProgram detects
// lock-acquisition cycles across call boundaries program-wide (see
// program.go).
var Analyzer = &analysis.Analyzer{
	Name:       "lockorder",
	Doc:        "check mutex acquisition order: canonical core.Node order per function, acquisition-graph cycles whole-program",
	Run:        run,
	RunProgram: runProgram,
}

// GuardedType names the struct whose mutex fields are ordered, as
// pkgpath.TypeName.
const GuardedType = "khazana/internal/core.Node"

// Order is the canonical acquisition order of the guarded mutex fields.
var Order = []string{"descMu", "chunkMu", "lockMu", "appMu"}

func rank(field string) int {
	for i, f := range Order {
		if f == field {
			return i
		}
	}
	return -1
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				v := &visitor{pass: pass, held: make(map[string]token.Pos)}
				v.stmts(fn.Body.List)
			}
		}
	}
	return nil
}

// visitor tracks the guarded mutexes held along the current path.
type visitor struct {
	pass *analysis.Pass
	held map[string]token.Pos
}

func (v *visitor) clone() *visitor {
	held := make(map[string]token.Pos, len(v.held))
	for k, p := range v.held {
		held[k] = p
	}
	return &visitor{pass: v.pass, held: held}
}

func (v *visitor) stmts(list []ast.Stmt) {
	for _, s := range list {
		v.stmt(s)
	}
}

func (v *visitor) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if field, isLock, ok := v.mutexOp(call); ok {
				if isLock {
					v.lock(field, call)
				} else {
					delete(v.held, field)
				}
				return
			}
		}
		v.scanNested(s.X)
	case *ast.DeferStmt:
		// A deferred unlock releases at function end: the mutex stays
		// held for everything that follows, which is exactly how the
		// ordering must treat it. A deferred lock is nonsense; ignore.
		if _, _, ok := v.mutexOp(s.Call); ok {
			return
		}
		v.scanNested(s.Call)
	case *ast.BlockStmt:
		v.stmts(s.List)
	case *ast.IfStmt:
		if s.Init != nil {
			v.stmt(s.Init)
		}
		v.scanNested(s.Cond)
		v.clone().stmts(s.Body.List)
		if s.Else != nil {
			v.clone().stmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			v.stmt(s.Init)
		}
		v.clone().stmts(s.Body.List)
	case *ast.RangeStmt:
		v.scanNested(s.X)
		v.clone().stmts(s.Body.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			v.stmt(s.Init)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				v.clone().stmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				v.clone().stmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				v.clone().stmts(cc.Body)
			}
		}
	case *ast.LabeledStmt:
		v.stmt(s.Stmt)
	case *ast.GoStmt:
		// The goroutine runs concurrently; its body starts with nothing
		// held.
		v.scanNested(s.Call)
	default:
		ast.Inspect(s, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				nested := &visitor{pass: v.pass, held: make(map[string]token.Pos)}
				nested.stmts(lit.Body.List)
				return false
			}
			return true
		})
	}
}

// scanNested analyzes function literals inside an expression; a closure
// runs later, so it starts with an empty held set.
func (v *visitor) scanNested(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			nested := &visitor{pass: v.pass, held: make(map[string]token.Pos)}
			nested.stmts(lit.Body.List)
			return false
		}
		return true
	})
}

func (v *visitor) lock(field string, call *ast.CallExpr) {
	if _, ok := v.held[field]; ok {
		v.pass.Reportf(call.Pos(), "re-entrant acquisition of %s.%s (already held; sync.Mutex is not reentrant)", GuardedType, field)
		return
	}
	r := rank(field)
	for heldField := range v.held {
		if rank(heldField) > r {
			v.pass.Reportf(call.Pos(),
				"acquires %s while holding %s: canonical order for %s is %s",
				field, heldField, GuardedType, strings.Join(Order, " → "))
		}
	}
	v.held[field] = call.Pos()
}

// mutexOp reports whether call is recv.<field>.Lock() or
// recv.<field>.Unlock() on one of the guarded fields of the guarded
// struct, returning the field name and the operation.
func (v *visitor) mutexOp(call *ast.CallExpr) (field string, isLock, ok bool) {
	sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !okSel {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock":
		isLock = true
	case "Unlock":
	default:
		return "", false, false
	}
	inner, okInner := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !okInner {
		return "", false, false
	}
	selection, okSelInfo := v.pass.TypesInfo.Selections[inner]
	if !okSelInfo || selection.Kind() != types.FieldVal {
		return "", false, false
	}
	fieldObj := selection.Obj()
	if rank(fieldObj.Name()) < 0 {
		return "", false, false
	}
	recv := selection.Recv()
	if ptr, isPtr := recv.(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	named, okNamed := recv.(*types.Named)
	if !okNamed {
		return "", false, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path()+"."+obj.Name() != GuardedType {
		return "", false, false
	}
	return fieldObj.Name(), isLock, true
}
