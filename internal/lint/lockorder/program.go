// Whole-program lock-acquisition graph and cycle detection.
//
// The intraprocedural pass (lockorder.go) enforces the canonical order of
// core.Node's mutexes within one function body. This pass generalizes to
// every sync.Mutex/RWMutex struct field in the program and across call
// boundaries: each function's summary records which locks it (or anything
// it calls, interface calls resolved to every loaded implementation) may
// acquire; holding lock A at a call whose callee may acquire lock B adds
// the edge A → B to a global lock-acquisition graph. A cycle in that
// graph means two call paths can take the same pair of locks in opposite
// orders — a deadlock no per-function check can see. Each cycle is
// reported once, with the full witness call chain for every edge.
//
// Lock identity is the (struct type, field name) pair, an abstraction
// over instances: two different instances of the same type cannot be
// distinguished statically, so a self-cycle on one field is reported only
// when the reacquisition is write-locked (read-read self-cycles on an
// RWMutex are the common instance-split pattern and do not deadlock on
// their own).
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"

	"khazana/internal/lint/analysis"
	"khazana/internal/lint/callgraph"
	"khazana/internal/lint/lockset"
)

// acqWitness records one way a function may come to acquire a lock: a
// direct acquisition (via == nil) or a call into a callee whose summary
// holds the rest of the chain.
type acqWitness struct {
	pos  token.Pos
	read bool
	via  *callgraph.Node
}

// lockEdge is one held→acquired pair observed anywhere in the program.
type lockEdge struct{ from, to lockset.Key }

// edgeWitness locates one occurrence of an edge: fn holds from (taken at
// heldPos) when it performs the acquisition described by w.
type edgeWitness struct {
	fn      *callgraph.Node
	heldPos token.Pos
	w       acqWitness
}

func runProgram(pass *analysis.ProgramPass) error {
	g := pass.Program.Graph
	summaries := make(map[*callgraph.Node]map[lockset.Key]acqWitness)
	edges := make(map[lockEdge]edgeWitness)

	record := func(e lockEdge, w edgeWitness) {
		if _, ok := edges[e]; !ok {
			edges[e] = w
		}
	}
	for _, scc := range g.SCCs() {
		for changed := true; changed; {
			changed = false
			for _, node := range scc {
				if grow(g, summaries, node, record) {
					changed = true
				}
			}
		}
	}
	reportCycles(pass, summaries, edges)
	return nil
}

// grow recomputes node's may-acquire summary and records lock edges,
// reporting whether the summary gained entries.
func grow(g *callgraph.Graph, summaries map[*callgraph.Node]map[lockset.Key]acqWitness, node *callgraph.Node, record func(lockEdge, edgeWitness)) bool {
	sum := summaries[node]
	if sum == nil {
		sum = make(map[lockset.Key]acqWitness)
		summaries[node] = sum
	}
	before := len(sum)
	lockset.Walk(node.Pkg.Info, node.Decl.Body, lockset.Callbacks{
		Acquire: func(k lockset.Key, read bool, pos token.Pos, held lockset.Held) {
			if _, ok := sum[k]; !ok {
				sum[k] = acqWitness{pos: pos, read: read}
			}
			for h, hp := range held {
				record(lockEdge{from: h, to: k}, edgeWitness{fn: node, heldPos: hp, w: acqWitness{pos: pos, read: read}})
			}
		},
		Call: func(call *ast.CallExpr, held lockset.Held) {
			for _, callee := range g.ResolveCall(node.Pkg, call) {
				for k, cw := range summaries[callee] {
					w := acqWitness{pos: call.Lparen, read: cw.read, via: callee}
					if _, ok := sum[k]; !ok {
						sum[k] = w
					}
					for h, hp := range held {
						record(lockEdge{from: h, to: k}, edgeWitness{fn: node, heldPos: hp, w: w})
					}
				}
			}
		},
	})
	return len(sum) > before
}

// reportCycles finds cycles in the lock-acquisition graph and reports
// each once, with witness chains for every edge.
func reportCycles(pass *analysis.ProgramPass, summaries map[*callgraph.Node]map[lockset.Key]acqWitness, edges map[lockEdge]edgeWitness) {
	// Adjacency, deterministically ordered.
	adj := make(map[lockset.Key][]lockset.Key)
	for e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	for k := range adj {
		tos := adj[k]
		sort.Slice(tos, func(i, j int) bool { return tos[i].String() < tos[j].String() })
		adj[k] = tos
	}
	keys := make([]lockset.Key, 0, len(adj))
	for k := range adj {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })

	reported := make(map[string]bool)
	for _, start := range keys {
		// Self-cycle: reacquiring the same field through a call chain.
		// Read-read reacquisition of an RWMutex is tolerated (distinct
		// instances, and RLock nests); anything involving a write lock
		// can deadlock against itself or a queued writer.
		if w, ok := edges[lockEdge{from: start, to: start}]; ok && !w.w.read {
			cyc := canonicalCycle([]lockset.Key{start})
			if !reported[cyc] {
				reported[cyc] = true
				pass.Reportf(w.w.pos, "lock-order cycle: %s → %s; %s",
					start, start, edgeChain(pass, summaries, lockEdge{from: start, to: start}, w))
			}
		}
		path := []lockset.Key{start}
		onPath := map[lockset.Key]bool{start: true}
		var dfs func(k lockset.Key) bool
		dfs = func(k lockset.Key) bool {
			for _, next := range adj[k] {
				if next == start && len(path) > 1 {
					reportCycle(pass, summaries, edges, path, reported)
					return true
				}
				if onPath[next] || next.String() < start.String() {
					continue
				}
				path = append(path, next)
				onPath[next] = true
				found := dfs(next)
				path = path[:len(path)-1]
				delete(onPath, next)
				if found {
					return true
				}
			}
			return false
		}
		dfs(start)
	}
}

// reportCycle emits one diagnostic for the cycle described by path (which
// closes back to path[0]).
func reportCycle(pass *analysis.ProgramPass, summaries map[*callgraph.Node]map[lockset.Key]acqWitness, edges map[lockEdge]edgeWitness, path []lockset.Key, reported map[string]bool) {
	canon := canonicalCycle(path)
	if reported[canon] {
		return
	}
	reported[canon] = true
	names := make([]string, 0, len(path)+1)
	for _, k := range path {
		names = append(names, k.String())
	}
	names = append(names, path[0].String())
	var chains []string
	for i := range path {
		e := lockEdge{from: path[i], to: path[(i+1)%len(path)]}
		chains = append(chains, edgeChain(pass, summaries, e, edges[e]))
	}
	first := edges[lockEdge{from: path[0], to: path[1%len(path)]}]
	pass.Reportf(first.w.pos, "lock-order cycle: %s; %s",
		strings.Join(names, " → "), strings.Join(chains, "; "))
}

// canonicalCycle renders a rotation-independent cycle identity.
func canonicalCycle(path []lockset.Key) string {
	min := 0
	for i := range path {
		if path[i].String() < path[min].String() {
			min = i
		}
	}
	parts := make([]string, 0, len(path))
	for i := range path {
		parts = append(parts, path[(min+i)%len(path)].String())
	}
	return strings.Join(parts, "→")
}

// edgeChain renders the witness call chain for one lock edge:
// "a.mu → b.mu via pkg.F (f.go:10, holding a.mu) → pkg.G (g.go:5) acquires b.mu".
func edgeChain(pass *analysis.ProgramPass, summaries map[*callgraph.Node]map[lockset.Key]acqWitness, e lockEdge, w edgeWitness) string {
	fset := pass.Program.Fset
	steps := []string{fmt.Sprintf("%s (%s, holding %s)", w.fn.ID, posString(fset, w.w.pos), e.from)}
	cur := w.w
	seen := map[*callgraph.Node]bool{w.fn: true}
	for cur.via != nil && !seen[cur.via] {
		seen[cur.via] = true
		next, ok := summaries[cur.via][e.to]
		if !ok {
			break
		}
		steps = append(steps, fmt.Sprintf("%s (%s)", cur.via.ID, posString(fset, next.pos)))
		cur = next
	}
	const maxSteps = 8
	if len(steps) > maxSteps {
		steps = append(steps[:maxSteps], "…")
	}
	return fmt.Sprintf("%s → %s via %s acquires %s", e.from, e.to, strings.Join(steps, " → "), e.to)
}

func posString(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}
