// Package core is a stub of the real khazana/internal/core for the
// lockorder analyzer tests: the analyzer keys on the package path, the
// Node type name, and its guarded mutex field names.
package core

import "sync"

// Node mirrors the guarded mutex fields of the real core.Node.
type Node struct {
	descMu  sync.Mutex
	chunkMu sync.Mutex
	lockMu  sync.Mutex
	appMu   sync.Mutex
}
