package core

// ordered nests all four mutexes in the canonical order.
func (n *Node) ordered() {
	n.descMu.Lock()
	defer n.descMu.Unlock()
	n.chunkMu.Lock()
	defer n.chunkMu.Unlock()
	n.lockMu.Lock()
	n.appMu.Lock()
	n.appMu.Unlock()
	n.lockMu.Unlock()
}

// sequential releases before taking an earlier-ranked mutex, so no two
// are ever held together.
func (n *Node) sequential() {
	n.lockMu.Lock()
	n.lockMu.Unlock()
	n.descMu.Lock()
	n.descMu.Unlock()
}

// concurrent spawns a goroutine: its body starts with nothing held, so
// taking descMu there is fine even while appMu is held here.
func (n *Node) concurrent(done chan struct{}) {
	n.appMu.Lock()
	defer n.appMu.Unlock()
	go func() {
		n.descMu.Lock()
		n.descMu.Unlock()
		close(done)
	}()
}
