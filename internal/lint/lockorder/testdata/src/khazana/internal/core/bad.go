package core

// inverted acquires descMu while lockMu is held — backwards relative to
// the canonical descMu → chunkMu → lockMu → appMu order.
func (n *Node) inverted() {
	n.lockMu.Lock()
	defer n.lockMu.Unlock()
	n.descMu.Lock() // want `canonical order`
	n.descMu.Unlock()
}

// reenter takes the same mutex twice on one path.
func (n *Node) reenter() {
	n.descMu.Lock()
	defer n.descMu.Unlock()
	n.descMu.Lock() // want `re-entrant acquisition`
	n.descMu.Unlock()
}

// invertedBranch only misorders on one branch; the clone-per-branch
// tracking must still see it.
func (n *Node) invertedBranch(b bool) {
	n.appMu.Lock()
	if b {
		n.chunkMu.Lock() // want `canonical order`
		n.chunkMu.Unlock()
	}
	n.appMu.Unlock()
}
