// Package q closes the cycle: it holds B while a helper acquires A,
// opposite to p's A-then-B order.
package q

import "cyc/p"

func TakeBA(a *p.A, b *p.B) {
	b.Mu.Lock()
	defer b.Mu.Unlock()
	lockA(a)
}

func lockA(a *p.A) {
	a.Mu.Lock()
	a.Mu.Unlock()
}
