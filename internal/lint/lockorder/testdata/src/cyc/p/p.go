// Package p takes its locks A-then-B; package q takes them B-then-A.
// Neither function is wrong on its own — only the whole-program
// acquisition graph sees the cycle.
package p

import "sync"

type A struct{ Mu sync.Mutex }

type B struct{ Mu sync.Mutex }

func TakeAB(a *A, b *B) {
	a.Mu.Lock()
	defer a.Mu.Unlock()
	LockB(b) // want `lock-order cycle: cyc/p\.A\.Mu → cyc/p\.B\.Mu → cyc/p\.A\.Mu; cyc/p\.A\.Mu → cyc/p\.B\.Mu via cyc/p\.TakeAB \(p\.go:15, holding cyc/p\.A\.Mu\) → cyc/p\.LockB \(p\.go:19\) acquires cyc/p\.B\.Mu; cyc/p\.B\.Mu → cyc/p\.A\.Mu via cyc/q\.TakeBA \(q\.go:\d+, holding cyc/p\.B\.Mu\) → cyc/q\.lockA \(q\.go:\d+\) acquires cyc/p\.A\.Mu`
}

func LockB(b *B) {
	b.Mu.Lock()
	b.Mu.Unlock()
}
