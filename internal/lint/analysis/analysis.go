// Package analysis is a deliberately small, dependency-free workalike of
// golang.org/x/tools/go/analysis: just enough driver-independent structure
// to write the khazlint analyzers against the standard library's go/ast
// and go/types. Keeping the shape of the upstream API (Analyzer, Pass,
// Diagnostic) means the analyzers port to the real framework mechanically
// if x/tools ever becomes a dependency.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"khazana/internal/lint/callgraph"
	"khazana/internal/lint/loader"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the command
	// line. By convention it is a single lowercase word.
	Name string
	// Doc is the analyzer's documentation: a one-line summary, a blank
	// line, then details.
	Doc string
	// Run applies the analyzer to a package. It may be nil for analyzers
	// that only work whole-program.
	Run func(*Pass) error
	// RunProgram, when set, applies the analyzer to the whole loaded
	// program at once, with the call graph available for interprocedural
	// summaries. When the driver has a program (standalone mode), an
	// analyzer with RunProgram runs once program-wide instead of
	// per-package; in per-package drivers (go vet -vettool) the program
	// holds a single package and cross-package summaries degrade to
	// empty, so RunProgram analyzers see only local facts there.
	RunProgram func(*ProgramPass) error
}

func (a *Analyzer) String() string { return a.Name }

// Pass presents one type-checked package to an analyzer's Run function.
type Pass struct {
	// Analyzer is the check being applied.
	Analyzer *Analyzer
	// Fset maps token positions for Files.
	Fset *token.FileSet
	// Files is the package's parsed syntax (comments included).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo records type and object resolution for Files.
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of e, or nil if unresolved.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Program presents every loaded package plus the whole-program call graph
// to an analyzer's RunProgram function.
type Program struct {
	// Fset maps positions for every package.
	Fset *token.FileSet
	// Packages are the loaded packages in import-path order.
	Packages []*loader.Package
	// Graph is the whole-program call graph over Packages.
	Graph *callgraph.Graph
}

// NewProgram builds the program view (including its call graph) over the
// loaded packages, which must share fset.
func NewProgram(fset *token.FileSet, pkgs []*loader.Package) *Program {
	return &Program{Fset: fset, Packages: pkgs, Graph: callgraph.Build(fset, pkgs)}
}

// ProgramPass presents the program to one analyzer.
type ProgramPass struct {
	// Analyzer is the check being applied.
	Analyzer *Analyzer
	// Program is the loaded program.
	Program *Program
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// MethodCall resolves a call expression to the *types.Func it invokes, or
// nil when the callee is not a statically known function or method. It is
// shared by the analyzers, which all key on specific API names.
func MethodCall(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
