// Package analysis is a deliberately small, dependency-free workalike of
// golang.org/x/tools/go/analysis: just enough driver-independent structure
// to write the khazlint analyzers against the standard library's go/ast
// and go/types. Keeping the shape of the upstream API (Analyzer, Pass,
// Diagnostic) means the analyzers port to the real framework mechanically
// if x/tools ever becomes a dependency.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the command
	// line. By convention it is a single lowercase word.
	Name string
	// Doc is the analyzer's documentation: a one-line summary, a blank
	// line, then details.
	Doc string
	// Run applies the analyzer to a package.
	Run func(*Pass) error
}

func (a *Analyzer) String() string { return a.Name }

// Pass presents one type-checked package to an analyzer's Run function.
type Pass struct {
	// Analyzer is the check being applied.
	Analyzer *Analyzer
	// Fset maps token positions for Files.
	Fset *token.FileSet
	// Files is the package's parsed syntax (comments included).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo records type and object resolution for Files.
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of e, or nil if unresolved.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// MethodCall resolves a call expression to the *types.Func it invokes, or
// nil when the callee is not a statically known function or method. It is
// shared by the analyzers, which all key on specific API names.
func MethodCall(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
