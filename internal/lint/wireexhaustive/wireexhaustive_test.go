package wireexhaustive_test

import (
	"testing"

	"khazana/internal/lint/linttest"
	"khazana/internal/lint/wireexhaustive"
)

func TestWireExhaustive(t *testing.T) {
	linttest.Run(t, "testdata", wireexhaustive.Analyzer, "a")
}
