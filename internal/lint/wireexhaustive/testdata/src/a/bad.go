package a

import "khazana/internal/wire"

// missingNoDefault covers a subset of the catalog with no default.
func missingNoDefault(m wire.Msg) int {
	switch m.(type) { // want `covers 2 of 4 message kinds and has no default: handle PageGrant, ReleaseNotify`
	case *wire.PageReq:
		return 1
	case *wire.Ack:
		return 2
	}
	return 0
}

// missingUnannotatedDefault has a default but no justification.
func missingUnannotatedDefault(m wire.Msg) int {
	switch msg := m.(type) {
	case *wire.PageReq:
		_ = msg
		return 1
	default: // want `default case of a khazana/internal/wire\.Msg type switch missing Ack, PageGrant, ReleaseNotify must be annotated`
		return 0
	}
}

// emptyReason annotates the default without saying why.
func emptyReason(m wire.Msg) int {
	switch m.(type) {
	case *wire.PageReq:
		return 1
	//khazana:wire-default
	default: // want `annotation requires a reason`
		return 0
	}
}
