package a

import "khazana/internal/wire"

// exhaustive names every kind; no default needed.
func exhaustive(m wire.Msg) int {
	switch m.(type) {
	case *wire.PageReq:
		return 1
	case *wire.PageGrant:
		return 2
	case *wire.ReleaseNotify:
		return 3
	case *wire.Ack:
		return 4
	}
	return 0
}

// annotatedDefault justifies routing the rest elsewhere.
func annotatedDefault(m wire.Msg) int {
	switch msg := m.(type) {
	case *wire.PageReq, *wire.PageGrant:
		_ = msg
		return 1
	//khazana:wire-default remaining kinds route through the fallback handler
	default:
		return 0
	}
}

// otherInterface is not the wire.Msg interface; ignored.
type otherInterface interface{ Kind() uint16 }

func notWireMsg(m otherInterface) int {
	switch m.(type) {
	case *wire.PageReq:
		return 1
	}
	return 0
}
