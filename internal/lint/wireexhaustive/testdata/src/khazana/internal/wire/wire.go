// Package wire stubs the message catalog wireexhaustive guards; the
// analyzer keys on the Msg interface name, the khazana/internal/wire
// path, and the set of pointer implementations in the package scope.
package wire

type Msg interface {
	Kind() uint16
}

type PageReq struct{ Page uint64 }

func (*PageReq) Kind() uint16 { return 1 }

type PageGrant struct{ OK bool }

func (*PageGrant) Kind() uint16 { return 2 }

type ReleaseNotify struct{ Dirty bool }

func (*ReleaseNotify) Kind() uint16 { return 3 }

type Ack struct{}

func (*Ack) Kind() uint16 { return 4 }

// NotAMsg does not implement Msg and must not count as a kind.
type NotAMsg struct{}
