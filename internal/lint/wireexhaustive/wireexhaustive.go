// Package wireexhaustive checks that type switches over the wire.Msg
// interface stay in sync with the message catalog.
//
// Khazana grows its protocol by appending message kinds (the batched
// lock/fetch pipeline added four at once), and every Handle-style switch
// that routes wire.Msg values silently ignores kinds added after it was
// written. The analyzer requires each such switch to either name every
// message kind declared in the wire package, or to carry a default case
// annotated with an explicit routing justification:
//
//	//khazana:wire-default <reason>
//
// on the default's line or the line above. The annotation requires a
// reason; an empty one is itself reported. A switch that covers the full
// catalog needs no default — and will start failing the build of this
// check the day a new kind lands, which is the point.
package wireexhaustive

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"khazana/internal/lint/analysis"
)

// Analyzer is the wireexhaustive check.
var Analyzer = &analysis.Analyzer{
	Name: "wireexhaustive",
	Doc:  "check that type switches over wire.Msg cover every message kind or carry an annotated default",
	Run:  run,
}

// MsgPath is the import path of the wire package whose Msg interface is
// guarded.
const MsgPath = "khazana/internal/wire"

// MsgName is the guarded interface's name.
const MsgName = "Msg"

// Directive is the annotation that justifies a default case, followed by
// a required reason.
const Directive = "//khazana:wire-default"

// maxListed bounds how many missing kinds a diagnostic spells out.
const maxListed = 6

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		annotated := directiveLines(pass.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.TypeSwitchStmt)
			if !ok {
				return true
			}
			checkSwitch(pass, sw, annotated)
			return true
		})
	}
	return nil
}

// checkSwitch applies the exhaustiveness rule to one type switch.
func checkSwitch(pass *analysis.Pass, sw *ast.TypeSwitchStmt, annotated map[int]string) {
	iface := switchedMsg(pass, sw)
	if iface == nil {
		return
	}
	kinds := msgKinds(iface)
	if len(kinds) == 0 {
		return
	}
	covered := make(map[string]bool)
	var deflt *ast.CaseClause
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			deflt = cc
			continue
		}
		for _, expr := range cc.List {
			if name := caseKind(pass, expr); name != "" {
				covered[name] = true
			}
		}
	}
	var missing []string
	for _, k := range kinds {
		if !covered[k] {
			missing = append(missing, k)
		}
	}
	if len(missing) == 0 {
		return
	}
	if deflt == nil {
		pass.Reportf(sw.Pos(), "type switch over %s.%s covers %d of %d message kinds and has no default: handle %s or add a default annotated with %s <reason>",
			MsgPath, MsgName, len(kinds)-len(missing), len(kinds), listKinds(missing), Directive)
		return
	}
	line := pass.Fset.Position(deflt.Pos()).Line
	for _, l := range []int{line, line - 1} {
		if reason, ok := annotated[l]; ok {
			if strings.TrimSpace(reason) == "" {
				pass.Reportf(deflt.Pos(), "%s annotation requires a reason", Directive)
			}
			return
		}
	}
	pass.Reportf(deflt.Pos(), "default case of a %s.%s type switch missing %s must be annotated with %s <reason>",
		MsgPath, MsgName, listKinds(missing), Directive)
}

// switchedMsg returns the wire.Msg interface when sw switches over it,
// else nil.
func switchedMsg(pass *analysis.Pass, sw *ast.TypeSwitchStmt) *types.Interface {
	var x ast.Expr
	switch assign := sw.Assign.(type) {
	case *ast.AssignStmt:
		if len(assign.Rhs) != 1 {
			return nil
		}
		ta, ok := assign.Rhs[0].(*ast.TypeAssertExpr)
		if !ok {
			return nil
		}
		x = ta.X
	case *ast.ExprStmt:
		ta, ok := assign.X.(*ast.TypeAssertExpr)
		if !ok {
			return nil
		}
		x = ta.X
	default:
		return nil
	}
	named, ok := pass.TypeOf(x).(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Name() != MsgName || obj.Pkg() == nil || obj.Pkg().Path() != MsgPath {
		return nil
	}
	iface, _ := named.Underlying().(*types.Interface)
	return iface
}

// msgKinds lists the names of every type in the wire package whose
// pointer implements Msg, sorted for stable diagnostics.
func msgKinds(iface *types.Interface) []string {
	if iface.NumMethods() == 0 {
		return nil
	}
	pkg := iface.Method(0).Pkg()
	if pkg == nil {
		return nil
	}
	var kinds []string
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		t := tn.Type()
		if types.IsInterface(t) {
			continue
		}
		if types.Implements(types.NewPointer(t), iface) {
			kinds = append(kinds, name)
		}
	}
	sort.Strings(kinds)
	return kinds
}

// caseKind resolves one case expression to a wire message kind name, or
// "" when it names something else (nil, a foreign type, an interface).
func caseKind(pass *analysis.Pass, expr ast.Expr) string {
	ptr, ok := pass.TypeOf(expr).(*types.Pointer)
	if !ok {
		return ""
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != MsgPath {
		return ""
	}
	return obj.Name()
}

// listKinds renders missing kinds for a diagnostic, truncating long lists.
func listKinds(missing []string) string {
	shown := missing
	var suffix string
	if len(shown) > maxListed {
		suffix = " and " + strconv.Itoa(len(shown)-maxListed) + " more"
		shown = shown[:maxListed]
	}
	return strings.Join(shown, ", ") + suffix
}

// directiveLines maps line numbers carrying the directive to the
// annotation's reason text.
func directiveLines(fset *token.FileSet, file *ast.File) map[int]string {
	out := make(map[int]string)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if rest, ok := strings.CutPrefix(c.Text, Directive); ok {
				out[fset.Position(c.Pos()).Line] = rest
			}
		}
	}
	return out
}
