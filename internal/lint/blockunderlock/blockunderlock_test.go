package blockunderlock_test

import (
	"testing"

	"khazana/internal/lint/blockunderlock"
	"khazana/internal/lint/linttest"
)

func TestBlockUnderLock(t *testing.T) {
	linttest.RunProgram(t, "testdata", blockunderlock.Analyzer, "bl/m")
}

func TestBlockUnderLockShardedState(t *testing.T) {
	linttest.RunProgram(t, "testdata", blockunderlock.Analyzer, "bl/shard")
}
