// Package blockunderlock reports operations that can block — RPC sends,
// transport I/O, channel operations, sleeps — reachable while a
// sync.Mutex or sync.RWMutex struct field is held.
//
// A Khazana daemon serves every client from one address space; a mutex
// held across a network round-trip or an unbounded channel wait turns one
// slow peer into a node-wide stall, and is exactly the hazard the planned
// core.Node mutex sharding must not introduce. The check is
// whole-program: per-function summaries record whether a function may
// block (directly or through anything it calls, with interface calls
// resolved to every loaded implementation), and each site holding a mutex
// is checked against the summary of everything it reaches. Diagnostics
// carry the full call chain from the lock-holding function down to the
// blocking operation.
//
// Blocking roots are channel sends/receives, selects without a default
// clause, ranging over a channel, time.Sleep, sync.WaitGroup.Wait, and
// the unresolvable I/O leaves of the transport layer (net.Conn reads and
// writes, dialing, accepting, io.ReadFull). Acquiring another sync.Mutex
// is deliberately not a blocking root — ordering hazards between mutexes
// are the lockorder analyzer's domain.
//
// Some blocking under a lock is intentional (the map-home serializes
// address-map mutations by design). Those sites are annotated
//
//	//khazana:block-ok <reason>
//
// on the blocking statement's line or the line above. The annotation
// requires a reason; an empty one is itself reported. Closures are
// separate execution contexts: events inside a nested function literal do
// not count against the enclosing function's held locks, and a
// goroutine's body starts with nothing held.
package blockunderlock

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"

	"khazana/internal/lint/analysis"
	"khazana/internal/lint/callgraph"
	"khazana/internal/lint/loader"
	"khazana/internal/lint/lockset"
)

// Analyzer is the blockunderlock check.
var Analyzer = &analysis.Analyzer{
	Name:       "blockunderlock",
	Doc:        "report blocking operations reachable while a sync mutex is held",
	RunProgram: runProgram,
}

// Directive marks an intentional blocking call under a lock, followed by
// a required reason.
const Directive = "//khazana:block-ok"

// blockingRoots are functions with unloadable bodies that block by
// contract, keyed by callgraph.FuncID.
var blockingRoots = map[string]string{
	"time.Sleep":                "time.Sleep",
	"(*sync.WaitGroup).Wait":    "sync.WaitGroup.Wait",
	"(net.Conn).Read":           "net.Conn.Read",
	"(net.Conn).Write":          "net.Conn.Write",
	"(net.Listener).Accept":     "net.Listener.Accept",
	"(*net.Dialer).DialContext": "net.Dialer.DialContext",
	"net.Dial":                  "net.Dial",
	"io.ReadFull":               "io.ReadFull",
}

// witness records why a function may block: a direct operation (via ==
// nil) or a call into a callee that may block.
type witness struct {
	kind string          // description of the leaf operation
	pos  token.Pos       // site in this function
	via  *callgraph.Node // callee the blocking is reached through
}

func runProgram(pass *analysis.ProgramPass) error {
	g := pass.Program.Graph
	summaries := computeSummaries(g)
	ann := newAnnotations(pass.Program)
	for _, node := range g.Nodes() {
		report(pass, g, summaries, ann, node)
	}
	return nil
}

// computeSummaries derives may-block witnesses bottom-up over SCCs,
// iterating each component to fixpoint (witnesses only appear, so this
// terminates).
func computeSummaries(g *callgraph.Graph) map[*callgraph.Node]*witness {
	summaries := make(map[*callgraph.Node]*witness)
	for _, scc := range g.SCCs() {
		for changed := true; changed; {
			changed = false
			for _, node := range scc {
				if summaries[node] != nil {
					continue
				}
				if w := summarize(g, summaries, node); w != nil {
					summaries[node] = w
					changed = true
				}
			}
		}
	}
	return summaries
}

// summarize finds the first blocking witness in node's body, if any.
func summarize(g *callgraph.Graph, summaries map[*callgraph.Node]*witness, node *callgraph.Node) *witness {
	var found *witness
	lockset.Walk(node.Pkg.Info, node.Decl.Body, lockset.Callbacks{
		ChanOp: func(kind string, pos token.Pos, _ lockset.Held) {
			if found == nil {
				found = &witness{kind: kind, pos: pos}
			}
		},
		Call: func(call *ast.CallExpr, _ lockset.Held) {
			if found != nil {
				return
			}
			found = callWitness(g, summaries, node.Pkg, call)
		},
	})
	return found
}

// callWitness classifies one call: a blocking root, a call to a callee
// that may block, or nil.
func callWitness(g *callgraph.Graph, summaries map[*callgraph.Node]*witness, pkg *loader.Package, call *ast.CallExpr) *witness {
	if fn := analysis.MethodCall(pkg.Info, call); fn != nil {
		if kind, ok := blockingRoots[callgraph.FuncID(fn)]; ok {
			return &witness{kind: kind, pos: call.Lparen}
		}
	}
	for _, callee := range g.ResolveCall(pkg, call) {
		if summaries[callee] != nil {
			return &witness{kind: "call", pos: call.Lparen, via: callee}
		}
	}
	return nil
}

// report walks node again, flagging blocking events that occur with a
// mutex held.
func report(pass *analysis.ProgramPass, g *callgraph.Graph, summaries map[*callgraph.Node]*witness, ann *annotations, node *callgraph.Node) {
	fset := pass.Program.Fset
	reported := make(map[token.Pos]bool)
	emit := func(pos token.Pos, held lockset.Held, chain string) {
		if reported[pos] {
			return
		}
		reported[pos] = true
		if ann.suppressed(pass, pos, fset.Position(pos)) {
			return
		}
		pass.Reportf(pos, "%s while holding %s: annotate with %s <reason> if intentional",
			chain, heldString(fset, held), Directive)
	}
	lockset.Walk(node.Pkg.Info, node.Decl.Body, lockset.Callbacks{
		ChanOp: func(kind string, pos token.Pos, held lockset.Held) {
			if len(held) == 0 {
				return
			}
			emit(pos, held, fmt.Sprintf("blocks (%s)", kind))
		},
		Call: func(call *ast.CallExpr, held lockset.Held) {
			if len(held) == 0 {
				return
			}
			w := callWitness(g, summaries, node.Pkg, call)
			if w == nil {
				return
			}
			emit(call.Lparen, held, chainString(fset, summaries, w))
		},
	})
}

// chainString renders the call chain from a witness down to the blocking
// leaf: "may block (RPC): calls a.F (f.go:10) → b.G (g.go:20) → channel
// send (g.go:21)".
func chainString(fset *token.FileSet, summaries map[*callgraph.Node]*witness, w *witness) string {
	if w.via == nil {
		return fmt.Sprintf("blocks (%s)", w.kind)
	}
	var steps []string
	seen := make(map[*callgraph.Node]bool)
	for w != nil && w.via != nil && !seen[w.via] {
		seen[w.via] = true
		next := summaries[w.via]
		if next == nil {
			break
		}
		steps = append(steps, fmt.Sprintf("%s (%s)", w.via.ID, shortPos(fset, next.pos)))
		w = next
	}
	leaf := "blocks"
	if w != nil && w.via == nil {
		leaf = w.kind
	}
	const maxSteps = 8
	if len(steps) > maxSteps {
		steps = append(steps[:maxSteps], "…")
	}
	return fmt.Sprintf("may block (%s): calls %s", leaf, strings.Join(steps, " → "))
}

// heldString lists the held locks with their acquisition sites, sorted.
func heldString(fset *token.FileSet, held lockset.Held) string {
	keys := make([]lockset.Key, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s (held at %s)", k, shortPos(fset, held[k]))
	}
	return strings.Join(parts, ", ")
}

func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// annotations indexes //khazana:block-ok directives across the program:
// file -> line -> reason.
type annotations struct {
	byLine map[string]map[int]string
}

func newAnnotations(prog *analysis.Program) *annotations {
	ann := &annotations{byLine: make(map[string]map[int]string)}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, Directive)
					if !ok {
						continue
					}
					p := prog.Fset.Position(c.Pos())
					if ann.byLine[p.Filename] == nil {
						ann.byLine[p.Filename] = make(map[int]string)
					}
					ann.byLine[p.Filename][p.Line] = rest
				}
			}
		}
	}
	return ann
}

// suppressed reports whether a directive on the finding's line or the
// line above covers it, reporting an empty reason at the finding.
func (ann *annotations) suppressed(pass *analysis.ProgramPass, pos token.Pos, p token.Position) bool {
	lines, ok := ann.byLine[p.Filename]
	if !ok {
		return false
	}
	for _, l := range []int{p.Line, p.Line - 1} {
		if reason, ok := lines[l]; ok {
			if strings.TrimSpace(reason) == "" {
				pass.Reportf(pos, "%s annotation requires a reason", Directive)
			}
			return true
		}
	}
	return false
}
