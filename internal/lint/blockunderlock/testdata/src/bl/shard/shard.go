// Package shard models the sharded-state and demux patterns the
// transport and core grew: mutexes living in shard arrays, and channel
// delivery performed under a shard's lock. The analyzer must track a
// mutex selected from an array element exactly like a named field, and
// the deliberate demux send must pass only with an annotated reason.
package shard

import "sync"

type entry struct {
	mu sync.Mutex
	m  map[uint32]chan int
}

type Table struct {
	shards [8]entry
	ch     chan int
}

// SendUnderShard blocks on an unbuffered channel while holding one
// shard's mutex: a real finding even though the mutex is an array
// element, not a plain field.
func (t *Table) SendUnderShard(id uint32) {
	s := &t.shards[id%8]
	s.mu.Lock()
	t.ch <- 1 // want `blocks \(channel send\) while holding bl/shard\.entry\.mu \(held at shard\.go:25\)`
	s.mu.Unlock()
}

// Deliver is the demux pattern: claim the pending entry under the shard
// lock, then send on the claimed capacity-1 channel. The send cannot
// block — claiming the map entry made this goroutine the sole sender —
// so the annotation records why the rule is deliberately waived.
func (t *Table) Deliver(id uint32, v int) {
	s := &t.shards[id%8]
	s.mu.Lock()
	ch, ok := s.m[id]
	if ok {
		delete(s.m, id)
		ch <- v //khazana:block-ok buffered cap-1 channel, sole sender after claiming the entry
	}
	s.mu.Unlock()
}

// DeliverUnannotated is the same shape without the annotation: the
// analyzer cannot prove the capacity invariant, so it must report.
func (t *Table) DeliverUnannotated(id uint32, v int) {
	s := &t.shards[id%8]
	s.mu.Lock()
	ch, ok := s.m[id]
	if ok {
		delete(s.m, id)
		ch <- v // want `blocks \(channel send\) while holding bl/shard\.entry\.mu \(held at shard\.go:49\)`
	}
	s.mu.Unlock()
}

// DrainNonBlocking empties a claimed channel with a default clause: no
// finding, matching the abandon() idiom.
func (t *Table) DrainNonBlocking(id uint32) {
	s := &t.shards[id%8]
	s.mu.Lock()
	delete(s.m, id)
	s.mu.Unlock()
	select {
	case <-t.ch:
	default:
	}
}
