// Package m holds a mutex across calls that reach blocking operations in
// package s; the diagnostics carry the full call chain.
package m

import (
	"sync"

	"bl/s"
)

type T struct {
	mu sync.Mutex
	ch chan int
}

// step is the intermediate hop: it does not block itself, it calls the
// package that does.
func (t *T) step() {
	s.Emit(t.ch)
}

func (t *T) Notify() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.step() // want `may block \(channel send\): calls \(\*bl/m\.T\)\.step \(m\.go:19\) → bl/s\.Emit \(s\.go:6\) while holding bl/m\.T\.mu \(held at m\.go:23\)`
}

func (t *T) Direct() {
	t.mu.Lock()
	t.ch <- 1 // want `blocks \(channel send\) while holding bl/m\.T\.mu \(held at m\.go:29\)`
	t.mu.Unlock()
}

// Unlocked blocks with nothing held: no finding.
func (t *T) Unlocked() {
	t.ch <- 1
}

// NonBlocking holds the mutex across a select with a default clause.
func (t *T) NonBlocking() {
	t.mu.Lock()
	defer t.mu.Unlock()
	s.TryEmit(t.ch)
}

// Annotated is intentional and says why.
func (t *T) Annotated() {
	t.mu.Lock()
	defer t.mu.Unlock()
	//khazana:block-ok the channel is buffered and drained by this struct's own loop
	t.step()
}

// BadReason is annotated but gives no reason.
func (t *T) BadReason() {
	t.mu.Lock()
	defer t.mu.Unlock()
	//khazana:block-ok
	t.step() // want `annotation requires a reason`
}
