// Package s holds the blocking leaf two calls below the lock holder.
package s

// Emit sends on the channel, blocking until a receiver is ready.
func Emit(ch chan int) {
	ch <- 1
}

// TryEmit never blocks: the select has a default clause.
func TryEmit(ch chan int) {
	select {
	case ch <- 1:
	default:
	}
}
