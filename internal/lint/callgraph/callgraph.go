// Package callgraph builds a whole-program call graph over the packages a
// khazlint run loads, so analyzers can reason across function boundaries.
//
// Nodes are the named functions and methods whose bodies were loaded from
// source. Edges are resolved per call site:
//
//   - static calls to package-level functions,
//   - method calls on concrete receivers,
//   - interface method calls, resolved by class-hierarchy analysis (CHA)
//     to every loaded concrete type implementing the interface,
//   - method values and function references (a name mentioned without
//     being called, e.g. passed as a callback).
//
// Calls through plain function values (func-typed fields, parameters,
// locals) are not resolved; analyzers treat them as opaque. Function
// identity is by stable string ID (see FuncID) rather than types.Object
// pointer, because the loader type-checks each target package from source
// while its importers see the same package through compiler export data —
// two distinct types.Func objects for one function.
//
// The graph orders functions bottom-up over strongly connected components
// (Tarjan), which is the evaluation order for the summary-driven analyzers
// in internal/lint: a function's summary is computed after the summaries
// of everything it calls.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"khazana/internal/lint/loader"
)

// Kind classifies how a call site was resolved to its callee.
type Kind int

const (
	// Static is a direct call to a package-level function.
	Static Kind = iota
	// Concrete is a method call on a concrete (non-interface) receiver.
	Concrete
	// Interface is an interface method call resolved by CHA; there is one
	// edge per implementing type.
	Interface
	// Ref is a function or method referenced as a value (method value,
	// callback argument) rather than called at the site.
	Ref
)

func (k Kind) String() string {
	switch k {
	case Static:
		return "static"
	case Concrete:
		return "concrete"
	case Interface:
		return "interface"
	case Ref:
		return "ref"
	}
	return "?"
}

// Node is one function with a loaded body.
type Node struct {
	// ID is the function's stable identity (see FuncID).
	ID string
	// Func is the *types.Func from the function's own package's
	// source type-check.
	Func *types.Func
	// Decl is the function's syntax.
	Decl *ast.FuncDecl
	// Pkg is the loaded package containing the body.
	Pkg *loader.Package
	// Out lists resolved outgoing edges in source order.
	Out []Edge

	index, lowlink int // Tarjan bookkeeping
	onStack        bool
}

// Edge is one resolved call or reference site.
type Edge struct {
	// Site is the call or reference position in the caller.
	Site token.Pos
	// Kind records how the callee was resolved.
	Kind Kind
	// Callee is the resolved target.
	Callee *Node
}

// Graph is the whole-program call graph.
type Graph struct {
	// Fset maps positions for every loaded package.
	Fset *token.FileSet
	// Packages are the loaded packages, sorted by import path.
	Packages []*loader.Package

	nodes map[string]*Node
	// implCache caches CHA results per interface type string + method.
	implCache map[string][]*Node
	// sourcePkgs maps import path -> source-checked package, for
	// normalizing export-data type objects to their source versions.
	sourcePkgs map[string]*loader.Package
}

// FuncID returns the stable identity of fn: "pkgpath.Name" for functions,
// "(pkgpath.Type).Name" for methods ("(*pkgpath.Type).Name" for pointer
// receivers). Identical for the source-checked and export-data views of
// the same function.
func FuncID(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		recv := sig.Recv().Type()
		ptr := ""
		if p, isPtr := recv.(*types.Pointer); isPtr {
			recv = p.Elem()
			ptr = "*"
		}
		if named, isNamed := recv.(*types.Named); isNamed {
			obj := named.Obj()
			pkgPath := ""
			if obj.Pkg() != nil {
				pkgPath = obj.Pkg().Path() + "."
			}
			return fmt.Sprintf("(%s%s%s).%s", ptr, pkgPath, obj.Name(), fn.Name())
		}
		// Interface literal or other unnamed receiver.
		return fmt.Sprintf("(%s%s).%s", ptr, recv.String(), fn.Name())
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	return fn.Name()
}

// Build constructs the call graph for the loaded packages.
func Build(fset *token.FileSet, pkgs []*loader.Package) *Graph {
	g := &Graph{
		Fset:       fset,
		Packages:   pkgs,
		nodes:      make(map[string]*Node),
		implCache:  make(map[string][]*Node),
		sourcePkgs: make(map[string]*loader.Package),
	}
	for _, pkg := range pkgs {
		g.sourcePkgs[pkg.PkgPath] = pkg
	}
	// Pass 1: one node per function declaration with a body.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &Node{ID: FuncID(fn), Func: fn, Decl: fd, Pkg: pkg}
				g.nodes[n.ID] = n
			}
		}
	}
	// Pass 2: resolve call and reference sites in every body.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				caller := g.nodes[FuncID(fn)]
				g.collectEdges(caller, pkg, fd.Body)
			}
		}
	}
	return g
}

// Node returns the graph node for fn (matched by FuncID, so either the
// source or export-data view of the function works), or nil when fn's body
// was not loaded.
func (g *Graph) Node(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.nodes[FuncID(fn)]
}

// NodeByID returns the node with the given FuncID, or nil.
func (g *Graph) NodeByID(id string) *Node { return g.nodes[id] }

// Nodes returns every node sorted by ID.
func (g *Graph) Nodes() []*Node {
	out := make([]*Node, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// collectEdges records resolved edges for every call and function
// reference in body, including inside nested function literals (the edges
// carry no execution context; analyzers that care walk bodies themselves).
func (g *Graph) collectEdges(caller *Node, pkg *loader.Package, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			kind := g.callKind(pkg, call)
			for _, callee := range g.ResolveCall(pkg, call) {
				caller.Out = append(caller.Out, Edge{Site: call.Lparen, Kind: kind, Callee: callee})
			}
		}
		return true
	})
	// Function references outside call position (method values, callbacks
	// bound at assignment).
	g.collectValueRefs(caller, pkg, body)
}

// collectValueRefs adds Ref edges for functions and methods mentioned as
// values (not immediately called).
func (g *Graph) collectValueRefs(caller *Node, pkg *loader.Package, body *ast.BlockStmt) {
	callFuns := make(map[ast.Expr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			callFuns[ast.Unparen(call.Fun)] = true
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SelectorExpr:
			if callFuns[ast.Expr(e)] {
				return true
			}
			fn, ok := pkg.Info.Uses[e.Sel].(*types.Func)
			if !ok {
				return true
			}
			for _, callee := range g.resolveFunc(pkg, e, fn) {
				caller.Out = append(caller.Out, Edge{Site: e.Pos(), Kind: Ref, Callee: callee})
			}
		case *ast.Ident:
			if callFuns[ast.Expr(e)] {
				return true
			}
			fn, ok := pkg.Info.Uses[e].(*types.Func)
			if !ok {
				return true
			}
			// Skip the Sel of a selector (visited separately) by requiring
			// a package-level function (no receiver).
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			if callee := g.nodes[FuncID(fn)]; callee != nil {
				caller.Out = append(caller.Out, Edge{Site: e.Pos(), Kind: Ref, Callee: callee})
			}
		}
		return true
	})
}

// callKind classifies how call resolves.
func (g *Graph) callKind(pkg *loader.Package, call *ast.CallExpr) Kind {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if selection, ok := pkg.Info.Selections[sel]; ok && selection.Kind() == types.MethodVal {
			if types.IsInterface(selection.Recv()) {
				return Interface
			}
			return Concrete
		}
	}
	return Static
}

// ResolveCall returns the candidate callees of a call expression that have
// loaded bodies: one node for a static or concrete-receiver call, every
// implementing method for an interface call (CHA), nothing for calls
// through plain function values.
func (g *Graph) ResolveCall(pkg *loader.Package, call *ast.CallExpr) []*Node {
	fun := ast.Unparen(call.Fun)
	// A conversion like EvictFunc(f) is not a call.
	if tv, ok := pkg.Info.Types[fun]; ok && tv.IsType() {
		return nil
	}
	switch fun := fun.(type) {
	case *ast.SelectorExpr:
		fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func)
		if !ok {
			return nil
		}
		return g.resolveFunc(pkg, fun, fn)
	case *ast.Ident:
		fn, ok := pkg.Info.Uses[fun].(*types.Func)
		if !ok {
			return nil
		}
		if callee := g.nodes[FuncID(fn)]; callee != nil {
			return []*Node{callee}
		}
	}
	return nil
}

// resolveFunc resolves a selector use of fn: CHA over implementing types
// for interface methods, the single target otherwise.
func (g *Graph) resolveFunc(pkg *loader.Package, sel *ast.SelectorExpr, fn *types.Func) []*Node {
	if selection, ok := pkg.Info.Selections[sel]; ok && selection.Kind() == types.MethodVal {
		recv := selection.Recv()
		if types.IsInterface(recv) {
			return g.implementers(recv, fn)
		}
	}
	if callee := g.nodes[FuncID(fn)]; callee != nil {
		return []*Node{callee}
	}
	return nil
}

// implementers returns the loaded methods named like fn on every loaded
// concrete type implementing the interface type recv (CHA).
func (g *Graph) implementers(recv types.Type, fn *types.Func) []*Node {
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	key := types.TypeString(recv, nil) + "." + fn.Name()
	if cached, ok := g.implCache[key]; ok {
		return cached
	}
	var out []*Node
	seen := make(map[string]bool)
	for _, pkg := range g.Packages {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			ptr := types.NewPointer(named)
			if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(ptr, false, fn.Pkg(), fn.Name())
			m, ok := obj.(*types.Func)
			if !ok {
				continue
			}
			id := FuncID(m)
			if seen[id] {
				continue
			}
			seen[id] = true
			if node := g.nodes[id]; node != nil {
				out = append(out, node)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	g.implCache[key] = out
	return out
}

// SCCs returns the strongly connected components of the graph in
// bottom-up (callee-before-caller) order — the evaluation order for
// summary computation. Within a component the order is by ID.
func (g *Graph) SCCs() [][]*Node {
	var (
		index int
		stack []*Node
		out   [][]*Node
	)
	for _, n := range g.nodes {
		n.index = 0
		n.onStack = false
	}
	var strongconnect func(v *Node)
	strongconnect = func(v *Node) {
		index++
		v.index, v.lowlink = index, index
		stack = append(stack, v)
		v.onStack = true
		for _, e := range v.Out {
			w := e.Callee
			if w.index == 0 {
				strongconnect(w)
				if w.lowlink < v.lowlink {
					v.lowlink = w.lowlink
				}
			} else if w.onStack && w.index < v.lowlink {
				v.lowlink = w.index
			}
		}
		if v.lowlink == v.index {
			var scc []*Node
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				w.onStack = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Slice(scc, func(i, j int) bool { return scc[i].ID < scc[j].ID })
			out = append(out, scc)
		}
	}
	for _, n := range g.Nodes() {
		if n.index == 0 {
			strongconnect(n)
		}
	}
	return out
}

// SourceNamed maps a named type possibly seen through export data to its
// source-checked version when that package was loaded, so analyzers
// compare type identities consistently.
func (g *Graph) SourceNamed(named *types.Named) *types.Named {
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return named
	}
	src, ok := g.sourcePkgs[obj.Pkg().Path()]
	if !ok {
		return named
	}
	tn, ok := src.Types.Scope().Lookup(obj.Name()).(*types.TypeName)
	if !ok {
		return named
	}
	if srcNamed, ok := tn.Type().(*types.Named); ok {
		return srcNamed
	}
	return named
}
