package callgraph_test

import (
	"fmt"
	"sort"
	"testing"

	"khazana/internal/lint/callgraph"
	"khazana/internal/lint/loader"
)

func buildFixture(t *testing.T) *callgraph.Graph {
	t.Helper()
	pkgs, err := loader.LoadSourcePackages([]string{"cg/x"}, []string{"testdata/src"})
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	return callgraph.Build(pkgs[0].Fset, pkgs)
}

// edges renders a node's out-edges as "kind callee" strings, sorted.
func edges(t *testing.T, g *callgraph.Graph, id string) []string {
	t.Helper()
	n := g.NodeByID(id)
	if n == nil {
		t.Fatalf("no node %q", id)
	}
	var out []string
	for _, e := range n.Out {
		out = append(out, fmt.Sprintf("%s %s", e.Kind, e.Callee.ID))
	}
	sort.Strings(out)
	return out
}

func TestResolution(t *testing.T) {
	g := buildFixture(t)
	cases := []struct {
		id   string
		want []string
	}{
		// Interface dispatch fans out to every loaded implementation —
		// and not to NotADoer, whose Do has the wrong signature.
		{"cg/x.CallIface", []string{"interface (*cg/x.B).Do", "interface (cg/x.A).Do"}},
		// A concrete receiver resolves to exactly one method.
		{"cg/x.CallConcrete", []string{"concrete (cg/x.A).Do"}},
		// A method value is a reference edge, not a call.
		{"cg/x.MethodValue", []string{"ref (*cg/x.B).Do"}},
		{"cg/x.Static", []string{"static cg/x.CallIface"}},
	}
	for _, c := range cases {
		got := edges(t, g, c.id)
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Errorf("%s edges = %v, want %v", c.id, got, c.want)
		}
	}
}

// TestSCCOrder checks the bottom-up invariant consumers rely on: a callee's
// component is emitted before its caller's, and mutual recursion shares one
// component.
func TestSCCOrder(t *testing.T) {
	g := buildFixture(t)
	sccs := g.SCCs()
	compOf := make(map[string]int)
	for i, scc := range sccs {
		for _, n := range scc {
			compOf[n.ID] = i
		}
	}
	if compOf["cg/x.CallIface"] >= compOf["cg/x.Static"] {
		t.Errorf("callee component %d not before caller component %d",
			compOf["cg/x.CallIface"], compOf["cg/x.Static"])
	}
	if compOf["cg/x.Mutual1"] != compOf["cg/x.Mutual2"] {
		t.Errorf("mutually recursive functions split into components %d and %d",
			compOf["cg/x.Mutual1"], compOf["cg/x.Mutual2"])
	}
}
