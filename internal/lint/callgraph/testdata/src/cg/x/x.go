// Package x exercises call-graph resolution: static calls, concrete
// receiver methods, interface dispatch, and method values.
package x

type Doer interface{ Do() }

type A struct{}

func (A) Do() {}

type B struct{}

func (*B) Do() {}

// NotADoer has a Do with the wrong signature and must not appear among
// Doer's implementers.
type NotADoer struct{}

func (NotADoer) Do(n int) {}

func CallIface(d Doer) { d.Do() }

func CallConcrete(a A) { a.Do() }

func MethodValue(b *B) func() { return b.Do }

func Static() { CallIface(A{}) }

func Mutual1() { Mutual2() }

func Mutual2() { Mutual1() }
