// Package telemetry stubs the registry telemetryname guards; the analyzer
// keys on the Registry type name, the khazana/internal/telemetry path, and
// the Counter/Gauge/Histogram method names.
package telemetry

type Registry struct{}

type Counter struct{}

type Gauge struct{}

type Histogram struct{}

func (r *Registry) Counter(name string) *Counter { return nil }

func (r *Registry) Gauge(name string) *Gauge { return nil }

func (r *Registry) Histogram(name string) *Histogram { return nil }

// Snapshot takes no name; calls to it must not be flagged.
func (r *Registry) Snapshot() int { return 0 }

// Metric names as the real names.go declares them.
const (
	MetricLookups     = "core.lookups"
	MetricLockLatency = "core.lock_latency_ns"
	MetricMemPages    = "store.mem_pages"
)
