package a

import "khazana/internal/telemetry"

// registryConsts resolves every instrument from the shared const block.
func registryConsts(r *telemetry.Registry) {
	_ = r.Counter(telemetry.MetricLookups)
	_ = r.Gauge(telemetry.MetricMemPages)
	_ = r.Histogram(telemetry.MetricLockLatency)
	_ = r.Counter((telemetry.MetricLookups))
}

// namelessMethods take no metric name and are never flagged.
func namelessMethods(r *telemetry.Registry) {
	_ = r.Snapshot()
}

// otherCounter is a different type whose Counter method is not guarded.
type otherCounter struct{}

func (otherCounter) Counter(name string) int { return 0 }

func notRegistry(o otherCounter) {
	_ = o.Counter("inline is fine here")
}
