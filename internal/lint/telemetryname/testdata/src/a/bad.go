package a

import "khazana/internal/telemetry"

// localMetric shadows the shared catalog; the name must live in the
// telemetry package's names.go instead.
const localMetric = "app.local_metric"

func inlineLiteral(r *telemetry.Registry) {
	_ = r.Counter("app.requests") // want `must be a named constant from khazana/internal/telemetry`
}

func localConstant(r *telemetry.Registry) {
	_ = r.Gauge(localMetric) // want `constant localMetric must be declared in khazana/internal/telemetry`
}

func computedName(r *telemetry.Registry, suffix string) {
	_ = r.Histogram("app." + suffix) // want `must be a named constant from khazana/internal/telemetry`
}

func variableName(r *telemetry.Registry) {
	name := telemetry.MetricLookups
	_ = r.Counter(name) // want `must be a named constant from khazana/internal/telemetry`
}
