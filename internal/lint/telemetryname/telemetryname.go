// Package telemetryname checks that metric names passed to the telemetry
// registry are the named constants from khazana/internal/telemetry
// (names.go), never inline string literals or locally invented constants.
//
// The registry is get-or-create by name: a typo'd inline literal silently
// mints a second metric instead of failing, and the export surface
// (khazctl stats, /metrics) then shows two half-populated series. Keeping
// every name in one const block makes the full metric catalog greppable
// and collision-free. The telemetry package itself is exempt — its own
// tests exercise the registry with arbitrary names.
package telemetryname

import (
	"go/ast"
	"go/types"
	"strings"

	"khazana/internal/lint/analysis"
)

// Analyzer is the telemetryname check.
var Analyzer = &analysis.Analyzer{
	Name: "telemetryname",
	Doc:  "check that telemetry metric names are named constants from the telemetry package, not inline literals",
	Run:  run,
}

// RegistryPath is the import path declaring both the Registry and the
// metric-name constants.
const RegistryPath = "khazana/internal/telemetry"

// instrumentCtors names the Registry methods that resolve an instrument
// from a metric name.
var instrumentCtors = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg != nil && strings.HasPrefix(pass.Pkg.Path(), RegistryPath) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkCall(pass, call)
			return true
		})
	}
	return nil
}

// checkCall applies the named-constant rule to one call expression.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.MethodCall(pass.TypesInfo, call)
	if fn == nil || !instrumentCtors[fn.Name()] || !isRegistryMethod(fn) {
		return
	}
	if len(call.Args) == 0 {
		return
	}
	arg := ast.Unparen(call.Args[0])
	c := constOf(pass, arg)
	switch {
	case c == nil:
		pass.Reportf(arg.Pos(), "metric name passed to (%s.Registry).%s must be a named constant from %s, not an inline expression",
			shortPkg(RegistryPath), fn.Name(), RegistryPath)
	case c.Pkg() == nil || c.Pkg().Path() != RegistryPath:
		pass.Reportf(arg.Pos(), "metric name constant %s must be declared in %s (names.go), not locally",
			c.Name(), RegistryPath)
	}
}

// isRegistryMethod reports whether fn is a method on *telemetry.Registry.
func isRegistryMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil && obj.Pkg().Path() == RegistryPath
}

// constOf resolves an expression to the declared constant it names, or nil
// for anything that is not a use of a named constant.
func constOf(pass *analysis.Pass, e ast.Expr) *types.Const {
	var obj types.Object
	switch e := e.(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[e.Sel]
	default:
		return nil
	}
	c, _ := obj.(*types.Const)
	return c
}

// shortPkg returns the last element of an import path for diagnostics.
func shortPkg(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
