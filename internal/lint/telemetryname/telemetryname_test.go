package telemetryname_test

import (
	"testing"

	"khazana/internal/lint/linttest"
	"khazana/internal/lint/telemetryname"
)

func TestTelemetryName(t *testing.T) {
	linttest.Run(t, "testdata", telemetryname.Analyzer, "a")
}
