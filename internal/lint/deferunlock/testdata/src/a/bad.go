package a

import "sync"

type S struct {
	mu sync.Mutex
	rw sync.RWMutex
}

// leaky unlocks on the fallthrough path but not on the early return.
func (s *S) leaky(b bool) error {
	s.mu.Lock() // want `not released on the return path`
	if b {
		return nil
	}
	s.mu.Unlock()
	return nil
}

// leakyRead holds a read lock across a return with no RUnlock at all.
func (s *S) leakyRead() int {
	s.rw.RLock() // want `not released on the return path`
	return 1
}

// neverReleased falls off the end of the function still holding the lock.
func (s *S) neverReleased() {
	s.mu.Lock() // want `never released`
}

// closurePair defers a closure whose Unlock pairs with the closure's own
// Lock — it must not count as releasing the outer acquisition.
func (s *S) closurePair() error {
	s.mu.Lock() // want `not released on the return path`
	defer func() {
		s.mu.Lock()
		s.mu.Unlock()
	}()
	return nil
}
