package a

import "sync"

type T struct {
	mu sync.Mutex
	rw sync.RWMutex
}

// deferred is the robust idiom.
func (t *T) deferred() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return nil
}

// explicit unlocks on every return path.
func (t *T) explicit(b bool) error {
	t.mu.Lock()
	if b {
		t.mu.Unlock()
		return nil
	}
	t.mu.Unlock()
	return nil
}

// deferredClosure releases inside a directly deferred closure, which runs
// on every exit path just like a plain defer.
func (t *T) deferredClosure() error {
	t.mu.Lock()
	defer func() {
		t.mu.Unlock()
	}()
	return nil
}

// readers balances the read-lock pair explicitly.
func (t *T) readers() int {
	t.rw.RLock()
	v := 1
	t.rw.RUnlock()
	return v
}

// separateScopes: the closure is its own lock scope and balances itself.
func (t *T) separateScopes() func() {
	return func() {
		t.mu.Lock()
		defer t.mu.Unlock()
	}
}
