package deferunlock_test

import (
	"testing"

	"khazana/internal/lint/deferunlock"
	"khazana/internal/lint/linttest"
)

func TestDeferUnlock(t *testing.T) {
	linttest.Run(t, "testdata", deferunlock.Analyzer, "a")
}
