// Package deferunlock flags sync.Mutex/sync.RWMutex acquisitions that are
// not reliably released on every return path.
//
// The robust idiom is Lock followed immediately by defer Unlock. When a
// function instead unlocks explicitly, every return statement reachable
// after the Lock must be preceded by a matching Unlock, or an early return
// leaks the mutex and the next acquirer deadlocks. The check is
// intra-procedural and positional: for a Lock at position L with no
// matching defer, each return after L must have an explicit matching
// Unlock between L and the return.
package deferunlock

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"

	"khazana/internal/lint/analysis"
)

// Analyzer is the deferunlock check.
var Analyzer = &analysis.Analyzer{
	Name: "deferunlock",
	Doc:  "check that mutex Lock calls are released on every return path",
	Run:  run,
}

// lockKind distinguishes the write-lock pair (Lock/Unlock) from the
// read-lock pair (RLock/RUnlock).
type lockKind int

const (
	writeLock lockKind = iota
	readLock
)

func (k lockKind) lockName() string {
	if k == readLock {
		return "RLock"
	}
	return "Lock"
}

func (k lockKind) unlockName() string {
	if k == readLock {
		return "RUnlock"
	}
	return "Unlock"
}

// event is one Lock/Unlock/defer-Unlock/return occurrence in a function.
type events struct {
	locks   []lockEvent
	unlocks []lockEvent
	defers  map[string]bool // key -> deferred unlock present
	returns []token.Pos
}

type lockEvent struct {
	key  string // printed receiver expression + kind
	expr string // printed receiver expression, for messages
	kind lockKind
	pos  token.Pos
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn.Body)
		}
	}
	return nil
}

// checkFunc analyzes one function body, recursing into nested function
// literals as independent scopes.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	ev := &events{defers: make(map[string]bool)}
	collect(pass, body, ev, false)
	report(pass, ev)
}

// collect gathers lock events in source order. Nested function literals
// are separate lock scopes: a closure may run on another goroutine or
// after the function returns, so its locks and unlocks must balance on
// their own.
func collect(pass *analysis.Pass, n ast.Node, ev *events, inDefer bool) {
	ast.Inspect(n, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			checkFunc(pass, node.Body)
			return false
		case *ast.DeferStmt:
			if key, e, ok := mutexCall(pass, node.Call); ok {
				if !e.isLock {
					ev.defers[key] = true
				}
				return false
			}
			// defer of something else (e.g. a closure that unlocks):
			// inspect the call's children; a closure argument is handled
			// by the FuncLit case above as its own scope, except that an
			// unlock inside a directly deferred closure does release on
			// all paths — treat `defer func() { ... mu.Unlock() ... }()`
			// as a deferred unlock for each mutex it unlocks.
			if lit, ok := node.Call.Fun.(*ast.FuncLit); ok {
				markDeferredClosureUnlocks(pass, lit, ev)
				return false
			}
			return true
		case *ast.ReturnStmt:
			ev.returns = append(ev.returns, node.Pos())
		case *ast.CallExpr:
			if key, e, ok := mutexCall(pass, node); ok {
				if e.isLock {
					ev.locks = append(ev.locks, lockEvent{key: key, expr: e.expr, kind: e.kind, pos: node.Pos()})
				} else {
					ev.unlocks = append(ev.unlocks, lockEvent{key: key, expr: e.expr, kind: e.kind, pos: node.Pos()})
				}
				return false
			}
		}
		return true
	})
}

// markDeferredClosureUnlocks records unlock calls made directly inside a
// deferred closure, which run on every exit path just like a plain defer.
func markDeferredClosureUnlocks(pass *analysis.Pass, lit *ast.FuncLit, ev *events) {
	lockedInside := make(map[string]bool)
	ast.Inspect(lit.Body, func(node ast.Node) bool {
		if inner, ok := node.(*ast.FuncLit); ok && inner != lit {
			checkFunc(pass, inner.Body)
			return false
		}
		if call, ok := node.(*ast.CallExpr); ok {
			if key, e, ok := mutexCall(pass, call); ok {
				if e.isLock {
					// The closure takes this mutex itself; its unlock
					// pairs with that, not with a lock in the enclosing
					// function.
					lockedInside[key] = true
				} else if !lockedInside[key] {
					ev.defers[key] = true
				}
				return false
			}
		}
		return true
	})
}

type mutexCallInfo struct {
	expr   string
	kind   lockKind
	isLock bool
}

// mutexCall reports whether call is a Lock/RLock/Unlock/RUnlock method
// call on a sync.Mutex or sync.RWMutex value, returning a key identifying
// the receiver expression and kind.
func mutexCall(pass *analysis.Pass, call *ast.CallExpr) (string, mutexCallInfo, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", mutexCallInfo{}, false
	}
	var kind lockKind
	var isLock bool
	switch sel.Sel.Name {
	case "Lock":
		kind, isLock = writeLock, true
	case "Unlock":
		kind, isLock = writeLock, false
	case "RLock":
		kind, isLock = readLock, true
	case "RUnlock":
		kind, isLock = readLock, false
	default:
		return "", mutexCallInfo{}, false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", mutexCallInfo{}, false
	}
	recv := exprString(pass.Fset, sel.X)
	key := recv + "#" + kind.lockName()
	return key, mutexCallInfo{expr: recv, kind: kind, isLock: isLock}, true
}

func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, fset, e)
	return buf.String()
}

// report checks every collected lock against the defers, unlocks, and
// returns of its function.
func report(pass *analysis.Pass, ev *events) {
	for _, l := range ev.locks {
		if ev.defers[l.key] {
			continue
		}
		// Explicit-unlock style: every return after the lock needs an
		// unlock between the lock and the return.
		covered := func(ret token.Pos) bool {
			for _, u := range ev.unlocks {
				if u.key == l.key && u.pos > l.pos && u.pos < ret {
					return true
				}
			}
			return false
		}
		leaked := false
		for _, ret := range ev.returns {
			if ret > l.pos && !covered(ret) {
				pass.Reportf(l.pos,
					"%s.%s() is not released on the return path at line %d: add defer %s.%s() or unlock before returning",
					l.expr, l.kind.lockName(), pass.Fset.Position(ret).Line, l.expr, l.kind.unlockName())
				leaked = true
				break
			}
		}
		if leaked {
			continue
		}
		// Fall-off-the-end path: if the function body can end without a
		// return, the lock still needs some unlock after it.
		anyUnlockAfter := false
		for _, u := range ev.unlocks {
			if u.key == l.key && u.pos > l.pos {
				anyUnlockAfter = true
				break
			}
		}
		if !anyUnlockAfter && len(ev.returns) == 0 {
			pass.Reportf(l.pos, "%s.%s() is never released: add defer %s.%s()",
				l.expr, l.kind.lockName(), l.expr, l.kind.unlockName())
		}
	}
}
