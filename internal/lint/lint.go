// Package lint assembles the khazlint analyzer suite and provides the
// driver shared by the standalone runner and the go vet -vettool mode.
package lint

import (
	"go/token"
	"sort"

	"khazana/internal/lint/analysis"
	"khazana/internal/lint/blockunderlock"
	"khazana/internal/lint/ctxpropagate"
	"khazana/internal/lint/deferunlock"
	"khazana/internal/lint/erricheck"
	"khazana/internal/lint/framerelease"
	"khazana/internal/lint/loader"
	"khazana/internal/lint/lockorder"
	"khazana/internal/lint/telemetryname"
	"khazana/internal/lint/wireexhaustive"
)

// Analyzers returns the suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		lockorder.Analyzer,
		blockunderlock.Analyzer,
		deferunlock.Analyzer,
		ctxpropagate.Analyzer,
		erricheck.Analyzer,
		framerelease.Analyzer,
		telemetryname.Analyzer,
		wireexhaustive.Analyzer,
	}
}

// Finding is one resolved diagnostic.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// Check runs every analyzer over every package and returns the findings
// sorted by position. Analyzers with a RunProgram hook run once over the
// whole program (all packages plus the call graph); the rest run
// per-package. The packages must share one FileSet, which both loaders
// guarantee.
func Check(pkgs []*loader.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	if len(pkgs) == 0 {
		return nil, nil
	}
	var findings []Finding
	var prog *analysis.Program
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		if prog == nil {
			prog = analysis.NewProgram(pkgs[0].Fset, pkgs)
		}
		name := a.Name
		pass := &analysis.ProgramPass{
			Analyzer: a,
			Program:  prog,
			Report: func(d analysis.Diagnostic) {
				findings = append(findings, Finding{
					Analyzer: name,
					Pos:      prog.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			},
		}
		if err := a.RunProgram(pass); err != nil {
			return nil, err
		}
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			// An analyzer may have both hooks (lockorder: per-function
			// checks in Run, whole-program cycle detection in RunProgram);
			// the two report disjoint diagnostics.
			if a.Run == nil {
				continue
			}
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			name := a.Name
			pass.Report = func(d analysis.Diagnostic) {
				findings = append(findings, Finding{
					Analyzer: name,
					Pos:      pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, err
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, nil
}
