package framerelease_test

import (
	"testing"

	"khazana/internal/lint/framerelease"
	"khazana/internal/lint/linttest"
)

func TestFrameRelease(t *testing.T) {
	linttest.RunProgram(t, "testdata", framerelease.Analyzer, "a", "c")
}
