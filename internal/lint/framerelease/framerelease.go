// Package framerelease flags page-frame acquisitions that are not
// reliably released on every return path.
//
// Every call returning a *frame.Frame confers a release obligation on the
// caller (the frame package's ownership contract): the frame must reach
// f.Release() — or f.Exclusive(), which consumes the receiver — on every
// path, be returned to the caller (transferring the obligation), or be
// released by a defer. A frame that escapes into longer-lived storage (a
// struct field, map, or slice) is a deliberate ownership transfer and must
// be annotated at the acquisition site:
//
//	//khazana:frame-owner <reason>
//
// on the same line or the line above. The annotation requires a reason; an
// empty one is itself reported. A leaked frame only costs a pool miss, but
// a steady leak on a hot path defeats the zero-copy pipeline's pooling, so
// the check keeps the obligation visible.
//
// The per-function check is positional, mirroring deferunlock: for an
// acquisition at position L with no matching defer, each return after L
// must either mention the variable (transfer) or have a release between L
// and the return. Returns inside a guard that proves the acquisition
// yielded no frame — `if !ok`, `if f == nil`, `if err != nil` — are
// exempt, as are returns after an `if ok { ... return }` block that
// consumed the taken branch. The frame package itself is exempt — it
// implements the refcount, it does not consume it.
//
// On top of that, ownership transfers across calls: the whole-program
// pass summarizes every function's *frame.Frame parameters bottom-up over
// the call graph as consumed (released on every path, never returned) or
// borrowed. Passing an owned frame to a call whose every resolved callee
// consumes that parameter discharges the obligation like a release; a
// frame handed only to borrowing callees stays the caller's problem, and
// the diagnostic names the borrowing callee so the leak is traceable
// through the helper.
//
// One hand-off is summarized by contract rather than inference: the
// version chain. (*frame.Chain).Publish takes ownership of the frame it
// stores — the chain releases the entry when it retires under reclaim —
// so publishing an owned frame discharges the obligation even though
// Publish's body only stores the pointer. Pinning a version with At or
// Latest is the mirror image: the returned reference is a fresh
// acquisition the caller must release.
package framerelease

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"khazana/internal/lint/analysis"
	"khazana/internal/lint/callgraph"
	"khazana/internal/lint/loader"
)

// Analyzer is the framerelease check.
var Analyzer = &analysis.Analyzer{
	Name:       "framerelease",
	Doc:        "check that acquired *frame.Frame values are released on every return path, tracking ownership across calls",
	RunProgram: runProgram,
}

// FramePkg is the package whose *Frame values carry release obligations.
const FramePkg = "khazana/internal/frame"

// Directive is the annotation that transfers ownership out of the
// function's hands, followed by a required reason.
const Directive = "//khazana:frame-owner"

func runProgram(pp *analysis.ProgramPass) error {
	g := pp.Program.Graph
	c := &checker{g: g, consumes: consumeSummaries(g)}
	for _, pkg := range pp.Program.Packages {
		if pkg.Types != nil && pkg.Types.Path() == FramePkg {
			continue
		}
		c.pkg = pkg
		c.pass = &analysis.Pass{
			Analyzer:  pp.Analyzer,
			Fset:      pp.Program.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report:    pp.Report,
		}
		for _, file := range pkg.Files {
			annotated := directiveLines(pp.Program.Fset, file)
			for _, decl := range file.Decls {
				if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
					c.checkFunc(fn.Body, annotated)
				}
			}
		}
	}
	return nil
}

// checker carries the per-package pass plus the whole-program context:
// the call graph and the parameter-consumption summaries.
type checker struct {
	pass     *analysis.Pass
	pkg      *loader.Package
	g        *callgraph.Graph
	consumes map[*callgraph.Node][]bool
	quiet    bool // summary phase: collect events, report nothing
}

// events gathers the frame-relevant occurrences of one function body.
type events struct {
	acquisitions []acquisition
	releases     []releaseEvent
	defers       map[string]bool // var name -> deferred release present
	returns      []*ast.ReturnStmt
	guards       []guard
	passedTo     []passEvent
}

type acquisition struct {
	name string
	ok   string // comma-ok variable for f, ok := ... acquisitions
	errv string // error variable for f, err := ... acquisitions
	pos  token.Pos
}

// guard is the body extent of an if statement whose condition proves the
// acquisition yielded no frame — `!ok`, `f == nil`, or `err != nil` —
// so returns inside it carry no release obligation. guardTakenOK is the
// inverse shape: `if ok { ... return }` with a terminating body, after
// which the frame provably was not acquired; start is the body's end.
type guard struct {
	kind       guardKind
	name       string
	start, end token.Pos
}

type guardKind int

const (
	guardNotOK   guardKind = iota // if !ok      — name is the comma-ok bool
	guardIsNil                    // if f == nil — name is the frame variable
	guardNonNil                   // if err != nil — name is the error variable
	guardTakenOK                  // if ok { ...; return } — returns after the body are ok-false paths
)

type releaseEvent struct {
	name string
	pos  token.Pos
}

// passEvent records an owned frame handed to a resolved callee that does
// not consume it; the obligation stays with the caller.
type passEvent struct {
	name   string
	pos    token.Pos
	callee *callgraph.Node
}

// checkFunc analyzes one function body, recursing into nested function
// literals as independent ownership scopes.
func (c *checker) checkFunc(body *ast.BlockStmt, annotated map[int]string) {
	ev := &events{defers: make(map[string]bool)}
	c.collect(body, ev, annotated)
	if !c.quiet {
		c.report(ev, annotated)
	}
}

// collect gathers events in source order. Nested function literals are
// separate scopes: a closure may run on another goroutine or after the
// function returns, so its acquisitions must balance on their own.
func (c *checker) collect(n ast.Node, ev *events, annotated map[int]string) {
	pass := c.pass
	ast.Inspect(n, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			c.checkFunc(node.Body, annotated)
			return false
		case *ast.DeferStmt:
			if name, ok := releaseCall(pass, node.Call); ok {
				ev.defers[name] = true
				return false
			}
			// A directly deferred closure runs on every exit path, so
			// releases inside it count as defers for their variables.
			if lit, ok := node.Call.Fun.(*ast.FuncLit); ok {
				c.markDeferredClosureReleases(lit, ev, annotated)
				return false
			}
			return true
		case *ast.ReturnStmt:
			ev.returns = append(ev.returns, node)
		case *ast.IfStmt:
			if g, ok := classifyGuard(node); ok {
				ev.guards = append(ev.guards, g)
			}
		case *ast.AssignStmt:
			collectAcquisitions(pass, node, ev)
		case *ast.CallExpr:
			if name, ok := releaseCall(pass, node); ok {
				ev.releases = append(ev.releases, releaseEvent{name: name, pos: node.Pos()})
				return false
			}
			if names := publishConsumes(pass, node); len(names) > 0 {
				for _, nm := range names {
					ev.releases = append(ev.releases, releaseEvent{name: nm, pos: node.Pos()})
				}
				return true
			}
			c.recordPass(node, ev)
		}
		return true
	})
}

// recordPass classifies frame-typed identifier arguments of a call: if
// every resolved callee consumes the parameter, the call discharges the
// obligation like a release; otherwise the frame was merely lent and the
// first borrowing callee is remembered for the diagnostic.
func (c *checker) recordPass(call *ast.CallExpr, ev *events) {
	var frameArgs []int
	for i, arg := range call.Args {
		if _, ok := identName(arg); !ok {
			continue
		}
		if isFrameType(c.pass.TypeOf(arg)) {
			frameArgs = append(frameArgs, i)
		}
	}
	if len(frameArgs) == 0 {
		return
	}
	callees := c.g.ResolveCall(c.pkg, call)
	if len(callees) == 0 {
		return
	}
	for _, i := range frameArgs {
		name, _ := identName(call.Args[i])
		consumed := true
		for _, callee := range callees {
			s := c.consumes[callee]
			if i >= len(s) || !s[i] {
				consumed = false
				break
			}
		}
		if consumed {
			ev.releases = append(ev.releases, releaseEvent{name: name, pos: call.Pos()})
		} else {
			ev.passedTo = append(ev.passedTo, passEvent{name: name, pos: call.Pos(), callee: callees[0]})
		}
	}
}

// consumeSummaries classifies every function's *frame.Frame parameters as
// consumed (released on every unguarded path, never returned) or
// borrowed, bottom-up over SCCs. A call passing a parameter onward to an
// all-consuming callee counts as a release, so summaries feed each other;
// flags only flip borrow→consume, so the fixpoint terminates. Contract
// summaries the frame package guarantees but inference cannot see are
// seeded first and survive the fixpoint untouched.
func consumeSummaries(g *callgraph.Graph) map[*callgraph.Node][]bool {
	sums := make(map[*callgraph.Node][]bool)
	seedContracts(g, sums)
	c := &checker{g: g, consumes: sums, quiet: true}
	for _, scc := range g.SCCs() {
		for changed := true; changed; {
			changed = false
			for _, node := range scc {
				if c.growConsume(node) {
					changed = true
				}
			}
		}
	}
	return sums
}

// seedContracts records ownership hand-offs the frame package guarantees
// by contract rather than by inferable control flow. (*Chain).Publish
// stores its frame in the version chain and releases it only when the
// entry later retires under reclaim — store-now, release-later is
// invisible to the release-reaches-every-return inference — so its frame
// parameter is consumed by fiat. The chain's read side needs no seed:
// At and Latest return a freshly pinned reference, which is the ordinary
// acquisition obligation on the caller.
func seedContracts(g *callgraph.Graph, sums map[*callgraph.Node][]bool) {
	for _, node := range g.Nodes() {
		fn := node.Func
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != FramePkg || fn.Name() != "Publish" {
			continue
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			continue
		}
		ptr, ok := sig.Recv().Type().(*types.Pointer)
		if !ok {
			continue
		}
		named, ok := ptr.Elem().(*types.Named)
		if !ok || named.Obj() == nil || named.Obj().Name() != "Chain" {
			continue
		}
		params := frameParams(node)
		s := make([]bool, len(params))
		for i, p := range params {
			s[i] = p != ""
		}
		sums[node] = s
	}
}

// growConsume recomputes node's parameter summary, reporting whether any
// parameter newly became consumed.
func (c *checker) growConsume(node *callgraph.Node) bool {
	params := frameParams(node)
	prev := c.consumes[node]
	if prev == nil {
		prev = make([]bool, len(params))
		c.consumes[node] = prev
	}
	any := false
	for _, p := range params {
		if p != "" {
			any = true
		}
	}
	if !any {
		return false
	}
	c.pkg = node.Pkg
	c.pass = &analysis.Pass{
		Fset:      c.g.Fset,
		Files:     node.Pkg.Files,
		Pkg:       node.Pkg.Types,
		TypesInfo: node.Pkg.Info,
		Report:    func(analysis.Diagnostic) {},
	}
	ev := &events{defers: make(map[string]bool)}
	c.collect(node.Decl.Body, ev, nil)
	changed := false
	for i, p := range params {
		if p == "" || prev[i] {
			continue
		}
		if consumedParam(ev, p, node.Decl.Body) {
			prev[i] = true
			changed = true
		}
	}
	return changed
}

// frameParams flattens node's parameter list to names, "" for parameters
// that are not *frame.Frame (or are blank/unnamed).
func frameParams(node *callgraph.Node) []string {
	ft := node.Decl.Type
	if ft.Params == nil {
		return nil
	}
	var out []string
	for _, field := range ft.Params.List {
		isFrame := isFrameType(node.Pkg.Info.TypeOf(field.Type))
		if len(field.Names) == 0 {
			out = append(out, "")
			continue
		}
		for _, name := range field.Names {
			if isFrame && name.Name != "_" {
				out = append(out, name.Name)
			} else {
				out = append(out, "")
			}
		}
	}
	return out
}

// consumedParam reports whether the function provably takes ownership of
// its parameter name: some release reaches every return (and the fall-off
// end) except paths proving the frame nil, and the frame never flows back
// out through a return.
func consumedParam(ev *events, name string, body *ast.BlockStmt) bool {
	for _, ret := range ev.returns {
		if mentions(ret, name) {
			return false
		}
	}
	if ev.defers[name] {
		return true
	}
	released := func(at token.Pos) bool {
		for _, r := range ev.releases {
			if r.name == name && r.pos < at {
				return true
			}
		}
		return false
	}
	nilGuarded := func(at token.Pos) bool {
		for _, g := range ev.guards {
			if g.kind == guardIsNil && g.name == name && at > g.start && at < g.end {
				return true
			}
		}
		return false
	}
	n := 0
	for _, ret := range ev.returns {
		if nilGuarded(ret.Pos()) {
			continue
		}
		if !released(ret.Pos()) {
			return false
		}
		n++
	}
	// A body that can fall off the end needs a release on that path too.
	terminated := false
	if len(body.List) > 0 {
		_, terminated = body.List[len(body.List)-1].(*ast.ReturnStmt)
	}
	if !terminated {
		if !released(body.End()) {
			return false
		}
		n++
	}
	return n > 0
}

// collectAcquisitions records frame-typed variables bound by an
// assignment whose right-hand side is a call. Only plain identifiers are
// tracked; a frame stored straight into a field, map, or slice element is
// an ownership transfer the annotation convention covers.
func collectAcquisitions(pass *analysis.Pass, assign *ast.AssignStmt, ev *events) {
	if len(assign.Rhs) == 1 && len(assign.Lhs) > 1 {
		// Tuple form: f, ok := store.Get(page).
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		tuple, ok := pass.TypeOf(call).(*types.Tuple)
		if !ok || tuple.Len() != len(assign.Lhs) {
			return
		}
		okName, errName := "", ""
		if len(assign.Lhs) == 2 {
			second := tuple.At(1).Type()
			if t, isBool := second.(*types.Basic); isBool && t.Kind() == types.Bool {
				okName, _ = identName(assign.Lhs[1])
			} else if isErrorType(second) {
				errName, _ = identName(assign.Lhs[1])
			}
		}
		for i, lhs := range assign.Lhs {
			if name, ok := identName(lhs); ok && isFrameType(tuple.At(i).Type()) {
				ev.acquisitions = append(ev.acquisitions, acquisition{name: name, ok: okName, errv: errName, pos: assign.Pos()})
			}
		}
		return
	}
	for i, rhs := range assign.Rhs {
		if i >= len(assign.Lhs) {
			break
		}
		name, ok := identName(assign.Lhs[i])
		if !ok {
			continue
		}
		call, isCall := ast.Unparen(rhs).(*ast.CallExpr)
		if !isCall {
			continue
		}
		if isFrameType(pass.TypeOf(call)) {
			ev.acquisitions = append(ev.acquisitions, acquisition{name: name, pos: assign.Pos()})
		}
	}
}

// markDeferredClosureReleases records Release calls made directly inside a
// deferred closure, which run on every exit path just like a plain defer.
func (c *checker) markDeferredClosureReleases(lit *ast.FuncLit, ev *events, annotated map[int]string) {
	ast.Inspect(lit.Body, func(node ast.Node) bool {
		if inner, ok := node.(*ast.FuncLit); ok && inner != lit {
			c.checkFunc(inner.Body, annotated)
			return false
		}
		if call, ok := node.(*ast.CallExpr); ok {
			if name, ok := releaseCall(c.pass, call); ok {
				ev.defers[name] = true
				return false
			}
		}
		return true
	})
}

// releaseCall reports whether call discharges a release obligation on a
// plain identifier receiver: v.Release() or v.Exclusive() (which consumes
// its receiver) on a *frame.Frame.
func releaseCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if sel.Sel.Name != "Release" && sel.Sel.Name != "Exclusive" {
		return "", false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != FramePkg {
		return "", false
	}
	return exprString(pass.Fset, sel.X), true
}

// publishConsumes returns the frame-typed identifier arguments of a
// (*frame.Chain).Publish call. The chain takes ownership by contract —
// it releases the entry when it retires under reclaim — so the call
// discharges the obligation like a release. Recognized syntactically (in
// addition to the seeded summary) so the contract holds even when the
// frame package is resolved from export data and has no call-graph node.
func publishConsumes(pass *analysis.Pass, call *ast.CallExpr) []string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Publish" {
		return nil
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != FramePkg {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	ptr, ok := sig.Recv().Type().(*types.Pointer)
	if !ok {
		return nil
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Name() != "Chain" {
		return nil
	}
	var out []string
	for _, arg := range call.Args {
		if name, ok := identName(arg); ok && isFrameType(pass.TypeOf(arg)) {
			out = append(out, name)
		}
	}
	return out
}

// classifyGuard recognizes the acquisition-failure guard shapes.
func classifyGuard(stmt *ast.IfStmt) (guard, bool) {
	g := guard{start: stmt.Body.Pos(), end: stmt.Body.End()}
	switch cond := ast.Unparen(stmt.Cond).(type) {
	case *ast.Ident:
		// `if ok { ...; return }` with a terminating body: any return
		// after the block runs only when ok was false.
		if cond.Name == "_" || cond.Name == "true" || cond.Name == "false" {
			return g, false
		}
		if len(stmt.Body.List) == 0 {
			return g, false
		}
		if _, isRet := stmt.Body.List[len(stmt.Body.List)-1].(*ast.ReturnStmt); !isRet {
			return g, false
		}
		g.kind, g.name, g.start = guardTakenOK, cond.Name, stmt.Body.End()
		return g, true
	case *ast.UnaryExpr:
		if cond.Op != token.NOT {
			return g, false
		}
		name, ok := identName(cond.X)
		if !ok {
			return g, false
		}
		g.kind, g.name = guardNotOK, name
		return g, true
	case *ast.BinaryExpr:
		if cond.Op != token.EQL && cond.Op != token.NEQ {
			return g, false
		}
		x, y := ast.Unparen(cond.X), ast.Unparen(cond.Y)
		if isNilIdent(x) {
			x, y = y, x
		}
		name, ok := identName(x)
		if !ok || !isNilIdent(y) {
			return g, false
		}
		if cond.Op == token.EQL {
			g.kind = guardIsNil
		} else {
			g.kind = guardNonNil
		}
		g.name = name
		return g, true
	}
	return g, false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj() != nil && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// identName returns the name of a plain non-blank identifier expression.
func identName(e ast.Expr) (string, bool) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return "", false
	}
	return id.Name, true
}

// isFrameType reports whether t is *frame.Frame.
func isFrameType(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Frame" && obj.Pkg() != nil && obj.Pkg().Path() == FramePkg
}

func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, fset, e)
	return buf.String()
}

// mentions reports whether the return statement's results reference the
// variable, transferring its obligation to the caller.
func mentions(ret *ast.ReturnStmt, name string) bool {
	found := false
	for _, res := range ret.Results {
		ast.Inspect(res, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && id.Name == name {
				found = true
				return false
			}
			return !found
		})
	}
	return found
}

// report checks every acquisition against the defers, releases, returns,
// and annotations of its function.
func (c *checker) report(ev *events, annotated map[int]string) {
	pass := c.pass
	for _, a := range ev.acquisitions {
		if ev.defers[a.name] {
			continue
		}
		line := pass.Fset.Position(a.pos).Line
		if suppressed(pass, a.pos, line, annotated) {
			continue
		}
		covered := func(ret token.Pos) bool {
			for _, r := range ev.releases {
				if r.name == a.name && r.pos > a.pos && r.pos < ret {
					return true
				}
			}
			return false
		}
		// A return inside a guard proving the acquisition failed (`!ok`,
		// `f == nil`, `err != nil`) holds no frame and carries no
		// obligation; nor does a return after an `if ok { ...; return }`
		// block that handled the acquired frame.
		guarded := func(ret token.Pos) bool {
			for _, g := range ev.guards {
				if g.kind == guardTakenOK {
					if a.ok != "" && g.name == a.ok && a.pos < g.start && ret >= g.start {
						return true
					}
					continue
				}
				if g.start <= a.pos || ret <= g.start || ret >= g.end {
					continue
				}
				switch g.kind {
				case guardNotOK:
					if a.ok != "" && g.name == a.ok {
						return true
					}
				case guardIsNil:
					if g.name == a.name {
						return true
					}
				case guardNonNil:
					if a.errv != "" && g.name == a.errv {
						return true
					}
				}
			}
			return false
		}
		// If the frame was lent to a resolved callee that does not take
		// ownership, say so: the leak is otherwise easy to misread as
		// handled by the helper.
		lent := func(ret token.Pos) string {
			for _, pe := range ev.passedTo {
				if pe.name == a.name && pe.pos > a.pos && pe.pos < ret {
					p := pass.Fset.Position(pe.callee.Decl.Pos())
					return fmt.Sprintf(" (%s was passed to %s (%s:%d), which borrows it and leaves the obligation here)",
						a.name, pe.callee.ID, filepath.Base(p.Filename), p.Line)
				}
			}
			return ""
		}
		leaked := false
		for _, ret := range ev.returns {
			if ret.Pos() > a.pos && !guarded(ret.Pos()) && !mentions(ret, a.name) && !covered(ret.Pos()) {
				pass.Reportf(a.pos,
					"frame %s is not released on the return path at line %d%s: add defer %s.Release(), release before returning, or annotate with %s <reason>",
					a.name, pass.Fset.Position(ret.Pos()).Line, lent(ret.Pos()), a.name, Directive)
				leaked = true
				break
			}
		}
		if leaked {
			continue
		}
		// Fall-off-the-end path: a function body that can end without a
		// return still needs some release after the acquisition.
		anyReleaseAfter := false
		for _, r := range ev.releases {
			if r.name == a.name && r.pos > a.pos {
				anyReleaseAfter = true
				break
			}
		}
		if !anyReleaseAfter && len(ev.returns) == 0 {
			pass.Reportf(a.pos, "frame %s is never released: add defer %s.Release() or annotate with %s <reason>",
				a.name, a.name, Directive)
		}
	}
}

// suppressed reports whether an acquisition carries the frame-owner
// directive on its line or the line above, reporting an empty reason.
func suppressed(pass *analysis.Pass, pos token.Pos, line int, annotated map[int]string) bool {
	for _, l := range []int{line, line - 1} {
		if reason, ok := annotated[l]; ok {
			if strings.TrimSpace(reason) == "" {
				pass.Reportf(pos, "%s annotation requires a reason", Directive)
			}
			return true
		}
	}
	return false
}

// directiveLines maps line numbers carrying the frame-owner directive to
// the annotation's reason text.
func directiveLines(fset *token.FileSet, file *ast.File) map[int]string {
	out := make(map[int]string)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if rest, ok := strings.CutPrefix(c.Text, Directive); ok {
				out[fset.Position(c.Pos()).Line] = rest
			}
		}
	}
	return out
}
