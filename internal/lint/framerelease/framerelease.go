// Package framerelease flags page-frame acquisitions that are not
// reliably released on every return path.
//
// Every call returning a *frame.Frame confers a release obligation on the
// caller (the frame package's ownership contract): the frame must reach
// f.Release() — or f.Exclusive(), which consumes the receiver — on every
// path, be returned to the caller (transferring the obligation), or be
// released by a defer. A frame that escapes into longer-lived storage (a
// struct field, map, or slice) is a deliberate ownership transfer and must
// be annotated at the acquisition site:
//
//	//khazana:frame-owner <reason>
//
// on the same line or the line above. The annotation requires a reason; an
// empty one is itself reported. A leaked frame only costs a pool miss, but
// a steady leak on a hot path defeats the zero-copy pipeline's pooling, so
// the check keeps the obligation visible.
//
// The check is intra-procedural and positional, mirroring deferunlock: for
// an acquisition at position L with no matching defer, each return after L
// must either mention the variable (transfer) or have a release between L
// and the return. Returns inside a guard that proves the acquisition
// yielded no frame — `if !ok`, `if f == nil`, `if err != nil` — are
// exempt. The frame package itself is exempt — it implements the
// refcount, it does not consume it.
package framerelease

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"khazana/internal/lint/analysis"
)

// Analyzer is the framerelease check.
var Analyzer = &analysis.Analyzer{
	Name: "framerelease",
	Doc:  "check that acquired *frame.Frame values are released on every return path",
	Run:  run,
}

// FramePkg is the package whose *Frame values carry release obligations.
const FramePkg = "khazana/internal/frame"

// Directive is the annotation that transfers ownership out of the
// function's hands, followed by a required reason.
const Directive = "//khazana:frame-owner"

// events gathers the frame-relevant occurrences of one function body.
type events struct {
	acquisitions []acquisition
	releases     []releaseEvent
	defers       map[string]bool // var name -> deferred release present
	returns      []*ast.ReturnStmt
	guards       []guard
}

type acquisition struct {
	name string
	ok   string // comma-ok variable for f, ok := ... acquisitions
	errv string // error variable for f, err := ... acquisitions
	pos  token.Pos
}

// guard is the body extent of an if statement whose condition proves the
// acquisition yielded no frame — `!ok`, `f == nil`, or `err != nil` —
// so returns inside it carry no release obligation.
type guard struct {
	kind       guardKind
	name       string
	start, end token.Pos
}

type guardKind int

const (
	guardNotOK  guardKind = iota // if !ok      — name is the comma-ok bool
	guardIsNil                   // if f == nil — name is the frame variable
	guardNonNil                  // if err != nil — name is the error variable
)

type releaseEvent struct {
	name string
	pos  token.Pos
}

func run(pass *analysis.Pass) error {
	if pass.Pkg != nil && pass.Pkg.Path() == FramePkg {
		return nil
	}
	for _, file := range pass.Files {
		annotated := directiveLines(pass.Fset, file)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn.Body, annotated)
		}
	}
	return nil
}

// checkFunc analyzes one function body, recursing into nested function
// literals as independent ownership scopes.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt, annotated map[int]string) {
	ev := &events{defers: make(map[string]bool)}
	collect(pass, body, ev, annotated)
	report(pass, ev, annotated)
}

// collect gathers events in source order. Nested function literals are
// separate scopes: a closure may run on another goroutine or after the
// function returns, so its acquisitions must balance on their own.
func collect(pass *analysis.Pass, n ast.Node, ev *events, annotated map[int]string) {
	ast.Inspect(n, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			checkFunc(pass, node.Body, annotated)
			return false
		case *ast.DeferStmt:
			if name, ok := releaseCall(pass, node.Call); ok {
				ev.defers[name] = true
				return false
			}
			// A directly deferred closure runs on every exit path, so
			// releases inside it count as defers for their variables.
			if lit, ok := node.Call.Fun.(*ast.FuncLit); ok {
				markDeferredClosureReleases(pass, lit, ev, annotated)
				return false
			}
			return true
		case *ast.ReturnStmt:
			ev.returns = append(ev.returns, node)
		case *ast.IfStmt:
			if g, ok := classifyGuard(node); ok {
				ev.guards = append(ev.guards, g)
			}
		case *ast.AssignStmt:
			collectAcquisitions(pass, node, ev)
		case *ast.CallExpr:
			if name, ok := releaseCall(pass, node); ok {
				ev.releases = append(ev.releases, releaseEvent{name: name, pos: node.Pos()})
				return false
			}
		}
		return true
	})
}

// collectAcquisitions records frame-typed variables bound by an
// assignment whose right-hand side is a call. Only plain identifiers are
// tracked; a frame stored straight into a field, map, or slice element is
// an ownership transfer the annotation convention covers.
func collectAcquisitions(pass *analysis.Pass, assign *ast.AssignStmt, ev *events) {
	if len(assign.Rhs) == 1 && len(assign.Lhs) > 1 {
		// Tuple form: f, ok := store.Get(page).
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		tuple, ok := pass.TypeOf(call).(*types.Tuple)
		if !ok || tuple.Len() != len(assign.Lhs) {
			return
		}
		okName, errName := "", ""
		if len(assign.Lhs) == 2 {
			second := tuple.At(1).Type()
			if t, isBool := second.(*types.Basic); isBool && t.Kind() == types.Bool {
				okName, _ = identName(assign.Lhs[1])
			} else if isErrorType(second) {
				errName, _ = identName(assign.Lhs[1])
			}
		}
		for i, lhs := range assign.Lhs {
			if name, ok := identName(lhs); ok && isFrameType(tuple.At(i).Type()) {
				ev.acquisitions = append(ev.acquisitions, acquisition{name: name, ok: okName, errv: errName, pos: assign.Pos()})
			}
		}
		return
	}
	for i, rhs := range assign.Rhs {
		if i >= len(assign.Lhs) {
			break
		}
		name, ok := identName(assign.Lhs[i])
		if !ok {
			continue
		}
		call, isCall := ast.Unparen(rhs).(*ast.CallExpr)
		if !isCall {
			continue
		}
		if isFrameType(pass.TypeOf(call)) {
			ev.acquisitions = append(ev.acquisitions, acquisition{name: name, pos: assign.Pos()})
		}
	}
}

// markDeferredClosureReleases records Release calls made directly inside a
// deferred closure, which run on every exit path just like a plain defer.
func markDeferredClosureReleases(pass *analysis.Pass, lit *ast.FuncLit, ev *events, annotated map[int]string) {
	ast.Inspect(lit.Body, func(node ast.Node) bool {
		if inner, ok := node.(*ast.FuncLit); ok && inner != lit {
			checkFunc(pass, inner.Body, annotated)
			return false
		}
		if call, ok := node.(*ast.CallExpr); ok {
			if name, ok := releaseCall(pass, call); ok {
				ev.defers[name] = true
				return false
			}
		}
		return true
	})
}

// releaseCall reports whether call discharges a release obligation on a
// plain identifier receiver: v.Release() or v.Exclusive() (which consumes
// its receiver) on a *frame.Frame.
func releaseCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if sel.Sel.Name != "Release" && sel.Sel.Name != "Exclusive" {
		return "", false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != FramePkg {
		return "", false
	}
	return exprString(pass.Fset, sel.X), true
}

// classifyGuard recognizes the acquisition-failure guard shapes.
func classifyGuard(stmt *ast.IfStmt) (guard, bool) {
	g := guard{start: stmt.Body.Pos(), end: stmt.Body.End()}
	switch cond := ast.Unparen(stmt.Cond).(type) {
	case *ast.UnaryExpr:
		if cond.Op != token.NOT {
			return g, false
		}
		name, ok := identName(cond.X)
		if !ok {
			return g, false
		}
		g.kind, g.name = guardNotOK, name
		return g, true
	case *ast.BinaryExpr:
		if cond.Op != token.EQL && cond.Op != token.NEQ {
			return g, false
		}
		x, y := ast.Unparen(cond.X), ast.Unparen(cond.Y)
		if isNilIdent(x) {
			x, y = y, x
		}
		name, ok := identName(x)
		if !ok || !isNilIdent(y) {
			return g, false
		}
		if cond.Op == token.EQL {
			g.kind = guardIsNil
		} else {
			g.kind = guardNonNil
		}
		g.name = name
		return g, true
	}
	return g, false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj() != nil && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// identName returns the name of a plain non-blank identifier expression.
func identName(e ast.Expr) (string, bool) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return "", false
	}
	return id.Name, true
}

// isFrameType reports whether t is *frame.Frame.
func isFrameType(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Frame" && obj.Pkg() != nil && obj.Pkg().Path() == FramePkg
}

func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, fset, e)
	return buf.String()
}

// mentions reports whether the return statement's results reference the
// variable, transferring its obligation to the caller.
func mentions(ret *ast.ReturnStmt, name string) bool {
	found := false
	for _, res := range ret.Results {
		ast.Inspect(res, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && id.Name == name {
				found = true
				return false
			}
			return !found
		})
	}
	return found
}

// report checks every acquisition against the defers, releases, returns,
// and annotations of its function.
func report(pass *analysis.Pass, ev *events, annotated map[int]string) {
	for _, a := range ev.acquisitions {
		if ev.defers[a.name] {
			continue
		}
		line := pass.Fset.Position(a.pos).Line
		if suppressed(pass, a.pos, line, annotated) {
			continue
		}
		covered := func(ret token.Pos) bool {
			for _, r := range ev.releases {
				if r.name == a.name && r.pos > a.pos && r.pos < ret {
					return true
				}
			}
			return false
		}
		// A return inside a guard proving the acquisition failed (`!ok`,
		// `f == nil`, `err != nil`) holds no frame and carries no obligation.
		guarded := func(ret token.Pos) bool {
			for _, g := range ev.guards {
				if g.start <= a.pos || ret <= g.start || ret >= g.end {
					continue
				}
				switch g.kind {
				case guardNotOK:
					if a.ok != "" && g.name == a.ok {
						return true
					}
				case guardIsNil:
					if g.name == a.name {
						return true
					}
				case guardNonNil:
					if a.errv != "" && g.name == a.errv {
						return true
					}
				}
			}
			return false
		}
		leaked := false
		for _, ret := range ev.returns {
			if ret.Pos() > a.pos && !guarded(ret.Pos()) && !mentions(ret, a.name) && !covered(ret.Pos()) {
				pass.Reportf(a.pos,
					"frame %s is not released on the return path at line %d: add defer %s.Release(), release before returning, or annotate with %s <reason>",
					a.name, pass.Fset.Position(ret.Pos()).Line, a.name, Directive)
				leaked = true
				break
			}
		}
		if leaked {
			continue
		}
		// Fall-off-the-end path: a function body that can end without a
		// return still needs some release after the acquisition.
		anyReleaseAfter := false
		for _, r := range ev.releases {
			if r.name == a.name && r.pos > a.pos {
				anyReleaseAfter = true
				break
			}
		}
		if !anyReleaseAfter && len(ev.returns) == 0 {
			pass.Reportf(a.pos, "frame %s is never released: add defer %s.Release() or annotate with %s <reason>",
				a.name, a.name, Directive)
		}
	}
}

// suppressed reports whether an acquisition carries the frame-owner
// directive on its line or the line above, reporting an empty reason.
func suppressed(pass *analysis.Pass, pos token.Pos, line int, annotated map[int]string) bool {
	for _, l := range []int{line, line - 1} {
		if reason, ok := annotated[l]; ok {
			if strings.TrimSpace(reason) == "" {
				pass.Reportf(pos, "%s annotation requires a reason", Directive)
			}
			return true
		}
	}
	return false
}

// directiveLines maps line numbers carrying the frame-owner directive to
// the annotation's reason text.
func directiveLines(fset *token.FileSet, file *ast.File) map[int]string {
	out := make(map[int]string)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if rest, ok := strings.CutPrefix(c.Text, Directive); ok {
				out[fset.Position(c.Pos()).Line] = rest
			}
		}
	}
	return out
}
