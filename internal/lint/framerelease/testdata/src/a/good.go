package a

import "khazana/internal/frame"

type store struct{ m map[int]*frame.Frame }

func (s *store) Get(page int) (*frame.Frame, bool) {
	f, ok := s.m[page]
	return f, ok
}

func deferred(s *store) []byte {
	f, ok := s.Get(1)
	if !ok {
		return nil
	}
	defer f.Release()
	return append([]byte(nil), f.Bytes()...)
}

func releasedOnEveryPath(dirty bool) int {
	f := frame.AllocZero(64)
	if dirty {
		f.Release()
		return 1
	}
	f.Release()
	return 0
}

func transferred(s *store) (*frame.Frame, bool) {
	f, ok := s.Get(2)
	if !ok {
		return nil, false
	}
	return f, true
}

// takenBranchTransfer returns the frame on the ok branch; the return
// after the block runs only when no frame was acquired.
func takenBranchTransfer(s *store) *frame.Frame {
	if f, ok := s.Get(4); ok {
		return f
	}
	return frame.AllocZero(64)
}

func consumedByExclusive(s *store) {
	got, ok := s.Get(3)
	var f *frame.Frame
	if ok {
		f = got.Exclusive()
	} else {
		f = frame.AllocZero(64)
	}
	f.Bytes()[0] = 1
	f.Release()
}

func storedWithOwner(s *store) {
	//khazana:frame-owner retained by the store map for the page's lifetime
	f := frame.Copy([]byte("seed"))
	s.m[1] = f
}

func deferredClosure(s *store) {
	var frames []*frame.Frame
	defer func() {
		for _, f := range frames {
			f.Release()
		}
	}()
	for i := 0; i < 4; i++ {
		f, ok := s.Get(i)
		if !ok {
			continue
		}
		frames = append(frames, f)
	}
}

func take() *frame.Frame { return nil }

func nilGuarded(check func() error) error {
	f := take()
	if f == nil {
		return nil
	}
	defer f.Release()
	return check()
}

func read() (*frame.Frame, error) { return nil, nil }

func errGuarded() ([]byte, error) {
	f, err := read()
	if err != nil {
		return nil, err
	}
	defer f.Release()
	return append([]byte(nil), f.Bytes()...), nil
}

func errGuardedExplicitRelease(sink func([]byte) error) error {
	f, err := read()
	if err != nil {
		return err
	}
	err = sink(f.Bytes())
	f.Release()
	return err
}

func closureScopesSeparately(s *store) func() {
	return func() {
		f, ok := s.Get(9)
		if !ok {
			return
		}
		f.Release()
	}
}
