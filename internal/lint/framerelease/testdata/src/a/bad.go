package a

import "khazana/internal/frame"

func leakNoRelease() {
	f := frame.AllocZero(64) // want `frame f is never released`
	f.Bytes()[0] = 1
}

func leakOnBranch(cond bool) *frame.Frame {
	f := frame.Alloc(32) // want `frame f is not released on the return path at line 13`
	if cond {
		return nil
	}
	return f
}

func leakOnError(s *store, check func() error) error {
	f, ok := s.Get(1) // want `frame f is not released on the return path at line 24`
	if !ok {
		return nil
	}
	if err := check(); err != nil {
		return err
	}
	f.Release()
	return nil
}

func leakedRetain(s *store) {
	f, ok := s.Get(2)
	if !ok {
		return
	}
	defer f.Release()
	g := f.Retain() // want `frame g is not released on the return path at line 38`
	if len(g.Bytes()) == 0 {
		return
	}
	g.Bytes()[0] = 1
}

func emptyReason(s *store) {
	//khazana:frame-owner
	f := frame.Copy(nil) // want `annotation requires a reason`
	s.m[2] = f
}
