// Package c exercises frame ownership transfer across package
// boundaries: calls into b discharge or keep the obligation according to
// b's parameter summaries.
package c

import (
	"b"

	"khazana/internal/frame"
)

// consumedByHelper hands the frame to a callee whose summary proves it
// releases on every path; the call discharges the obligation.
func consumedByHelper() {
	f := frame.AllocZero(8)
	b.Sink(f)
}

// consumedThroughChain relies on the fixpoint: Forward consumes only
// because Sink does.
func consumedThroughChain() int {
	f := frame.AllocZero(8)
	b.Forward(f)
	return 0
}

func leakedThroughHelper() int {
	f := frame.AllocZero(8) // want `frame f is not released on the return path at line 30 \(f was passed to b.Peek \(helper.go:23\), which borrows it and leaves the obligation here\)`
	n := int(b.Peek(f))
	return n
}

func leakedThroughRetainer(m map[int]*frame.Frame) {
	f := frame.AllocZero(8) // want `frame f is never released`
	b.Stash(m, f)
}

// borrowedButReleased lends the frame and then releases it: no finding.
func borrowedButReleased() int {
	f := frame.AllocZero(8)
	n := int(b.Peek(f))
	f.Release()
	return n
}
