// Version-chain hand-off coverage: Publish consumes by contract (the
// chain releases the entry when it retires, which the body-level
// inference cannot see), while a frame pinned with At is an ordinary
// acquisition the caller must release.
package c

import "khazana/internal/frame"

// publishedToChain hands the frame to the version chain: the seeded
// Publish summary discharges the obligation like a release.
func publishedToChain(ch *frame.Chain) {
	f := frame.AllocZero(8)
	ch.Publish(f, 1)
}

// publishedThenReturn: the contract consume also covers return paths
// after the publish.
func publishedThenReturn(ch *frame.Chain) int {
	f := frame.Copy([]byte{1})
	return ch.Publish(f, 2)
}

// pinnedFromChain leaks the pinned reference: At transfers a fresh
// obligation to the caller, and no contract bails it out.
func pinnedFromChain(ch *frame.Chain) int {
	f, _, _ := ch.At(7) // want `frame f is not released on the return path at line 28: add defer f\.Release\(\), release before returning, or annotate with //khazana:frame-owner <reason>`
	n := int(f.Bytes()[0])
	return n
}

// pinnedAndReleased balances the pin: no finding.
func pinnedAndReleased(ch *frame.Chain) int {
	f, _, _ := ch.At(7)
	n := int(f.Bytes()[0])
	f.Release()
	return n
}
