// Package frame stubs the refcounted page-frame type framerelease tracks;
// the analyzer keys on the *Frame type and methods from this import path.
package frame

type Frame struct{ data []byte }

func Alloc(n int) *Frame     { return &Frame{data: make([]byte, n)} }
func AllocZero(n int) *Frame { return &Frame{data: make([]byte, n)} }
func Copy(b []byte) *Frame   { return &Frame{data: append([]byte(nil), b...)} }

func (f *Frame) Retain() *Frame    { return f }
func (f *Frame) Release()          {}
func (f *Frame) Exclusive() *Frame { return f }
func (f *Frame) Bytes() []byte     { return f.data }

// Chain stubs the version chain: Publish stores its frame (ownership
// moves to the chain by contract; the analyzer seeds the summary), At
// returns a pinned reference the caller owns.
type Chain struct{ entries []*Frame }

func NewChain() *Chain { return &Chain{} }

func (c *Chain) Publish(f *Frame, epoch uint64) int {
	c.entries = append(c.entries, f)
	return len(c.entries)
}

func (c *Chain) At(epoch uint64) (*Frame, uint64, bool) {
	if len(c.entries) == 0 {
		return nil, 0, false
	}
	return c.entries[len(c.entries)-1].Retain(), epoch, true
}
