// Package frame stubs the refcounted page-frame type framerelease tracks;
// the analyzer keys on the *Frame type and methods from this import path.
package frame

type Frame struct{ data []byte }

func Alloc(n int) *Frame     { return &Frame{data: make([]byte, n)} }
func AllocZero(n int) *Frame { return &Frame{data: make([]byte, n)} }
func Copy(b []byte) *Frame   { return &Frame{data: append([]byte(nil), b...)} }

func (f *Frame) Retain() *Frame    { return f }
func (f *Frame) Release()          {}
func (f *Frame) Exclusive() *Frame { return f }
func (f *Frame) Bytes() []byte     { return f.data }
