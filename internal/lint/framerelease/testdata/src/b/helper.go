// Package b provides frame helpers with different ownership contracts,
// for the interprocedural summary tests.
package b

import "khazana/internal/frame"

// Sink consumes its frame: released on every path (the nil path carries
// no obligation).
func Sink(f *frame.Frame) {
	if f == nil {
		return
	}
	f.Release()
}

// Forward hands its frame to Sink; consumption chains through the
// summaries bottom-up.
func Forward(f *frame.Frame) {
	Sink(f)
}

// Peek borrows its frame: the caller keeps the release obligation.
func Peek(f *frame.Frame) byte {
	return f.Bytes()[0]
}

// Stash borrows: it retains its own reference and returns, so the
// caller's reference is still the caller's problem.
func Stash(m map[int]*frame.Frame, f *frame.Frame) {
	m[0] = f.Retain()
}
