// Package loader loads and type-checks Go packages for the khazlint
// analyzers without depending on golang.org/x/tools/go/packages.
//
// Two entry points cover the two ways khazlint runs:
//
//   - Load resolves package patterns with `go list -export -deps -json`,
//     parses each matched package from source, and type-checks it against
//     the compiler export data of its dependencies (served out of the go
//     build cache, so no network and no extra builds).
//   - LoadSource type-checks a single package rooted in a testdata/src
//     tree (the analysistest layout), resolving imports against the same
//     tree first and falling back to toolchain export data for the
//     standard library.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// PkgPath is the package's import path.
	PkgPath string
	// Fset maps positions for Files.
	Fset *token.FileSet
	// Files is the parsed syntax, comments included.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info records type and object resolution for Files.
	Info *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	DepOnly    bool
	Standard   bool
	ImportMap  map[string]string
	Module     *struct {
		Path      string
		GoVersion string
	}
	Error *struct {
		Err string
	}
}

// Load loads the packages matching patterns in the module rooted at (or
// containing) dir. Test files are deliberately excluded: khazlint checks
// production code, where e.g. context.Background() is a smell rather than
// an idiom.
func Load(dir string, patterns []string) ([]*Package, error) {
	pkgs, err := goList(dir, append([]string{"-export", "-deps"}, patterns...))
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	importMap := make(map[string]string)
	goVersion := ""
	var targets []*listPkg
	for _, p := range pkgs {
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("loader: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		for from, to := range p.ImportMap {
			importMap[from] = to
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
			if goVersion == "" && p.Module != nil && p.Module.GoVersion != "" {
				goVersion = "go" + p.Module.GoVersion
			}
		}
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports, importMap)
	var out []*Package
	for _, p := range targets {
		if len(p.GoFiles) == 0 {
			continue
		}
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("loader: %s: cgo packages are not supported", p.ImportPath)
		}
		pkg, err := typeCheck(fset, p.ImportPath, p.Dir, p.GoFiles, imp, goVersion)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}

// LoadSource type-checks the package at importPath found under one of the
// srcRoots (analysistest layout: root/<importPath>/*.go). Imports are
// resolved under srcRoots first — recursively type-checked from source —
// then against toolchain export data.
func LoadSource(importPath string, srcRoots []string) (*Package, error) {
	pkgs, err := LoadSourcePackages([]string{importPath}, srcRoots)
	if err != nil {
		return nil, err
	}
	for _, p := range pkgs {
		if p.PkgPath == importPath {
			return p, nil
		}
	}
	return nil, fmt.Errorf("loader: %s not loaded", importPath)
}

// LoadSourcePackages type-checks the packages at importPaths — plus every
// dependency found under the source roots — as one program sharing a
// FileSet, for whole-program analyzer tests. The result includes the
// source-tree dependencies and is sorted by import path.
func LoadSourcePackages(importPaths []string, srcRoots []string) ([]*Package, error) {
	sl := &srcLoader{
		fset:    token.NewFileSet(),
		roots:   srcRoots,
		sources: make(map[string]*Package),
	}
	// Pre-scan the source tree for external imports so one `go list` call
	// can resolve all of them.
	external := make(map[string]bool)
	seen := make(map[string]bool)
	for _, ip := range importPaths {
		if err := sl.scanExternal(ip, external, seen); err != nil {
			return nil, err
		}
	}
	exports := make(map[string]string)
	importMap := make(map[string]string)
	if len(external) > 0 {
		paths := make([]string, 0, len(external))
		for p := range external {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		pkgs, err := goList("", append([]string{"-export", "-deps"}, paths...))
		if err != nil {
			return nil, err
		}
		for _, p := range pkgs {
			if p.Error != nil {
				return nil, fmt.Errorf("loader: %s: %s", p.ImportPath, p.Error.Err)
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
			for from, to := range p.ImportMap {
				importMap[from] = to
			}
		}
	}
	sl.exports = newExportImporter(sl.fset, exports, importMap)
	for _, ip := range importPaths {
		if _, err := sl.load(ip); err != nil {
			return nil, err
		}
	}
	out := make([]*Package, 0, len(sl.sources))
	for _, p := range sl.sources {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}

// srcLoader loads packages from testdata source roots.
type srcLoader struct {
	fset    *token.FileSet
	roots   []string
	sources map[string]*Package
	exports *exportImporter
	loading []string // cycle detection
}

// dirFor resolves an import path under the source roots.
func (sl *srcLoader) dirFor(importPath string) (string, bool) {
	for _, root := range sl.roots {
		dir := filepath.Join(root, filepath.FromSlash(importPath))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, true
		}
	}
	return "", false
}

func sourceFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, name)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("loader: no Go files in %s", dir)
	}
	return files, nil
}

// scanExternal collects imports not resolvable under the source roots.
func (sl *srcLoader) scanExternal(importPath string, external, seen map[string]bool) error {
	if seen[importPath] {
		return nil
	}
	seen[importPath] = true
	dir, ok := sl.dirFor(importPath)
	if !ok {
		external[importPath] = true
		return nil
	}
	files, err := sourceFiles(dir)
	if err != nil {
		return err
	}
	for _, name := range files {
		f, err := parser.ParseFile(token.NewFileSet(), filepath.Join(dir, name), nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if err := sl.scanExternal(path, external, seen); err != nil {
				return err
			}
		}
	}
	return nil
}

// Import implements types.Importer over the two-level resolution.
func (sl *srcLoader) Import(path string) (*types.Package, error) {
	if _, ok := sl.dirFor(path); ok {
		pkg, err := sl.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return sl.exports.Import(path)
}

func (sl *srcLoader) load(importPath string) (*Package, error) {
	if pkg, ok := sl.sources[importPath]; ok {
		return pkg, nil
	}
	for _, p := range sl.loading {
		if p == importPath {
			return nil, fmt.Errorf("loader: import cycle through %s", importPath)
		}
	}
	sl.loading = append(sl.loading, importPath)
	defer func() { sl.loading = sl.loading[:len(sl.loading)-1] }()

	dir, ok := sl.dirFor(importPath)
	if !ok {
		return nil, fmt.Errorf("loader: %s not found under source roots", importPath)
	}
	files, err := sourceFiles(dir)
	if err != nil {
		return nil, err
	}
	pkg, err := typeCheck(sl.fset, importPath, dir, files, sl, "")
	if err != nil {
		return nil, err
	}
	sl.sources[importPath] = pkg
	return pkg, nil
}

// typeCheck parses the named files in dir and type-checks them as one
// package using imp for imports.
func typeCheck(fset *token.FileSet, importPath, dir string, fileNames []string, imp types.Importer, goVersion string) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	cfg := &types.Config{
		Importer:  imp,
		GoVersion: goVersion,
		Error:     func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := cfg.Check(importPath, fset, files, info)
	if len(typeErrs) > 0 {
		var b strings.Builder
		for i, e := range typeErrs {
			if i > 0 {
				b.WriteString("\n\t")
			}
			b.WriteString(e.Error())
		}
		return nil, fmt.Errorf("loader: type errors in %s:\n\t%s", importPath, b.String())
	}
	return &Package{PkgPath: importPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// exportImporter imports packages from compiler export data files.
type exportImporter struct {
	gc        types.Importer
	exports   map[string]string
	importMap map[string]string
}

func newExportImporter(fset *token.FileSet, exports, importMap map[string]string) *exportImporter {
	ei := &exportImporter{exports: exports, importMap: importMap}
	ei.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := ei.exports[path]
		if !ok {
			return nil, fmt.Errorf("loader: no export data for %q", path)
		}
		return os.Open(file)
	})
	return ei
}

// Import implements types.Importer.
func (ei *exportImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := ei.importMap[path]; ok {
		path = mapped
	}
	return ei.gc.Import(path)
}

// goList runs `go list -json` with the given extra arguments.
func goList(dir string, args []string) ([]*listPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-json"}, args...)...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("loader: go list: %v\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var pkgs []*listPkg
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("loader: decode go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
