package ctxpropagate_test

import (
	"testing"

	"khazana/internal/lint/ctxpropagate"
	"khazana/internal/lint/linttest"
)

func TestCtxPropagate(t *testing.T) {
	linttest.Run(t, "testdata", ctxpropagate.Analyzer,
		"khazana/internal/core", "other/pkg")
}
