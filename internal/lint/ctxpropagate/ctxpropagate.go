// Package ctxpropagate flags context.Background() and context.TODO()
// calls made on Khazana's request paths where a caller-supplied context
// is lexically in scope.
//
// The daemon's core, consistency, and transport layers carry a
// context.Context through every RPC so that cancellation, deadlines, and
// request-scoped values propagate end to end (the release-side retry
// queue of §3.5 is the one sanctioned place a request detaches from its
// caller). Minting a fresh Background() inside a function that already
// has a ctx parameter silently severs that chain. Detached work that must
// outlive the caller should use context.WithoutCancel(ctx), which keeps
// the request's values while dropping cancellation.
//
// Functions without a context parameter (background loops, callbacks with
// fixed signatures) are exempt: there is nothing to propagate.
package ctxpropagate

import (
	"go/ast"
	"go/types"

	"khazana/internal/lint/analysis"
)

// Analyzer is the ctxpropagate check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxpropagate",
	Doc:  "check that request-path code derives contexts from the caller instead of context.Background()/TODO()",
	Run:  run,
}

// Packages lists the import paths whose request paths are checked.
var Packages = []string{
	"khazana/internal/core",
	"khazana/internal/consistency",
	"khazana/internal/transport",
}

func run(pass *analysis.Pass) error {
	checked := false
	for _, p := range Packages {
		if pass.Pkg.Path() == p {
			checked = true
			break
		}
	}
	if !checked {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			check(pass, fn.Body, ctxParamName(pass, fn.Type))
		}
	}
	return nil
}

// check walks a function body with the innermost in-scope context
// parameter name (or "" when none). Function literals nest lexically: a
// closure sees its enclosing function's ctx unless it declares its own.
func check(pass *analysis.Pass, body *ast.BlockStmt, ctxName string) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			inner := ctxParamName(pass, n.Type)
			if inner == "" {
				inner = ctxName
			}
			check(pass, n.Body, inner)
			return false
		case *ast.CallExpr:
			if ctxName == "" {
				return true
			}
			fn := analysis.MethodCall(pass.TypesInfo, n)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
				return true
			}
			if fn.Name() == "Background" || fn.Name() == "TODO" {
				pass.Reportf(n.Pos(),
					"context.%s() on a request path where %q is in scope: pass %s (or context.WithoutCancel(%s) for detached work)",
					fn.Name(), ctxName, ctxName, ctxName)
			}
		}
		return true
	})
}

// ctxParamName returns the name of the first usable context.Context
// parameter of a function signature, or "".
func ctxParamName(pass *analysis.Pass, ft *ast.FuncType) string {
	if ft.Params == nil {
		return ""
	}
	for _, field := range ft.Params.List {
		t := pass.TypeOf(field.Type)
		if t == nil || !isContext(t) {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				return name.Name
			}
		}
	}
	return ""
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
