package core

import "context"

// backgroundLoop has no caller context to propagate: exempt.
func backgroundLoop() {
	ctx := context.Background()
	_ = ctx
}

// detached is the blessed pattern for work outliving the request.
func detached(ctx context.Context) {
	c := context.WithoutCancel(ctx)
	_ = c
}

// derived contexts are fine.
func derived(ctx context.Context) {
	c, cancel := context.WithCancel(ctx)
	defer cancel()
	_ = c
}

// ownCtx: the literal declares its own context parameter, which shadows
// the outer one; it uses it, so nothing to report.
func ownCtx(ctx context.Context) {
	f := func(inner context.Context) {
		_ = inner
	}
	f(ctx)
}
