// Package core is a stub at one of the checked import paths; the
// ctxpropagate analyzer keys on the package path alone.
package core

import "context"

func request(ctx context.Context) error {
	c := context.Background() // want `context\.Background\(\) on a request path`
	_ = c
	return nil
}

func todoOnPath(ctx context.Context) {
	c := context.TODO() // want `context\.TODO\(\) on a request path`
	_ = c
}

// closureInherits: a literal without its own ctx parameter sees the
// enclosing function's.
func closureInherits(ctx context.Context) {
	f := func() {
		c := context.Background() // want `context\.Background\(\) on a request path`
		_ = c
	}
	f()
}
