// Package pkg is outside the checked import paths: Background() with a
// ctx in scope is allowed here.
package pkg

import "context"

func notChecked(ctx context.Context) {
	c := context.Background()
	_ = c
}
