// Package linttest runs khazlint analyzers against testdata packages and
// checks their diagnostics against `// want "regex"` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest without the dependency.
//
// Layout: <testdata>/src/<importPath>/*.go. A comment of the form
//
//	mu.Lock() // want `re-entry`
//	mu.Lock() // want "re-entry" "second diagnostic"
//
// asserts that the analyzer reports, on that line, one diagnostic whose
// message matches each quoted regular expression. Lines without a want
// comment must produce no diagnostics.
package linttest

import (
	"fmt"
	"go/token"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"khazana/internal/lint/analysis"
	"khazana/internal/lint/loader"
)

// Run loads each import path from testdata/src, runs the analyzer over it,
// and reports mismatches between diagnostics and want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, importPaths ...string) {
	t.Helper()
	root := testdata + "/src"
	for _, ip := range importPaths {
		pkg, err := loader.LoadSource(ip, []string{root})
		if err != nil {
			t.Errorf("loading %s: %v", ip, err)
			continue
		}
		checkPackage(t, a, pkg)
	}
}

// RunProgram loads all import paths (plus their source-tree dependencies)
// from testdata/src as one multi-package program, runs a program-level
// analyzer over it, and checks diagnostics against the want comments of
// every loaded package. This exercises cross-package resolution: a want
// comment may assert a call chain that spans fixture packages.
func RunProgram(t *testing.T, testdata string, a *analysis.Analyzer, importPaths ...string) {
	t.Helper()
	if a.RunProgram == nil {
		t.Fatalf("%s: analyzer has no RunProgram hook", a.Name)
	}
	root := testdata + "/src"
	pkgs, err := loader.LoadSourcePackages(importPaths, []string{root})
	if err != nil {
		t.Fatalf("loading %v: %v", importPaths, err)
	}
	prog := analysis.NewProgram(pkgs[0].Fset, pkgs)
	var diags []diag
	pass := &analysis.ProgramPass{
		Analyzer: a,
		Program:  prog,
		Report: func(d analysis.Diagnostic) {
			diags = append(diags, diag{pos: prog.Fset.Position(d.Pos), msg: d.Message})
		},
	}
	if err := a.RunProgram(pass); err != nil {
		t.Fatalf("%s: analyzer error: %v", a.Name, err)
	}
	var wants []*want
	for _, pkg := range pkgs {
		wants = append(wants, collectWants(t, pkg)...)
	}
	verify(t, diags, wants)
}

// diag is one reported diagnostic, resolved to a position.
type diag struct {
	pos token.Position
	msg string
}

// want is one expectation parsed from a comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	met  bool
}

func checkPackage(t *testing.T, a *analysis.Analyzer, pkg *loader.Package) {
	t.Helper()
	var diags []diag
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report: func(d analysis.Diagnostic) {
			diags = append(diags, diag{pos: pkg.Fset.Position(d.Pos), msg: d.Message})
		},
	}
	if err := a.Run(pass); err != nil {
		t.Errorf("%s: analyzer error: %v", pkg.PkgPath, err)
		return
	}
	verify(t, diags, collectWants(t, pkg))
}

// verify matches diagnostics against wants, reporting the unexpected and
// the unmet.
func verify(t *testing.T, diags []diag, wants []*want) {
	t.Helper()
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].pos.Filename != diags[j].pos.Filename {
			return diags[i].pos.Filename < diags[j].pos.Filename
		}
		return diags[i].pos.Line < diags[j].pos.Line
	})
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", d.pos.Filename, d.pos.Line, d.msg)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

// claim marks the first unmet want on the diagnostic's line whose pattern
// matches, and reports whether one was found.
func claim(wants []*want, d diag) bool {
	for _, w := range wants {
		if w.met || w.file != d.pos.Filename || w.line != d.pos.Line {
			continue
		}
		if w.re.MatchString(d.msg) {
			w.met = true
			return true
		}
	}
	return false
}

// collectWants parses every `// want ...` comment in the package.
func collectWants(t *testing.T, pkg *loader.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				pats, err := parsePatterns(text)
				if err != nil {
					t.Errorf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
					continue
				}
				for _, p := range pats {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Errorf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, p, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: p})
				}
			}
		}
	}
	return wants
}

// parsePatterns splits a want comment body into its quoted patterns.
// Both "double-quoted" (with escapes) and `backquoted` forms are accepted.
func parsePatterns(s string) ([]string, error) {
	var pats []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			break
		}
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated %q", s)
			}
			unq, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, err
			}
			pats = append(pats, unq)
			s = s[end+1:]
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated %q", s)
			}
			pats = append(pats, s[1:end+1])
			s = s[end+2:]
		default:
			return nil, fmt.Errorf("expected quoted pattern at %q", s)
		}
	}
	if len(pats) == 0 {
		return nil, fmt.Errorf("no patterns")
	}
	return pats, nil
}
