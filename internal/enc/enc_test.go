package enc

import (
	"errors"
	"testing"
	"testing/quick"

	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
)

func TestScalarRoundTrip(t *testing.T) {
	e := NewEncoder(64)
	e.U8(0xab)
	e.U16(0xbeef)
	e.U32(0xdeadbeef)
	e.U64(0x0123456789abcdef)
	e.I64(-42)
	e.Bool(true)
	e.Bool(false)

	d := NewDecoder(e.Bytes())
	if got := d.U8(); got != 0xab {
		t.Errorf("U8 = %#x", got)
	}
	if got := d.U16(); got != 0xbeef {
		t.Errorf("U16 = %#x", got)
	}
	if got := d.U32(); got != 0xdeadbeef {
		t.Errorf("U32 = %#x", got)
	}
	if got := d.U64(); got != 0x0123456789abcdef {
		t.Errorf("U64 = %#x", got)
	}
	if got := d.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := d.Bool(); got != true {
		t.Errorf("Bool = %v", got)
	}
	if got := d.Bool(); got != false {
		t.Errorf("Bool = %v", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestBytesAndStrings(t *testing.T) {
	e := NewEncoder(0)
	e.Bytes32([]byte("hello"))
	e.Bytes32(nil)
	e.String("world")
	e.String("")

	d := NewDecoder(e.Bytes())
	if got := d.Bytes32(); string(got) != "hello" {
		t.Errorf("Bytes32 = %q", got)
	}
	if got := d.Bytes32(); len(got) != 0 {
		t.Errorf("empty Bytes32 = %q", got)
	}
	if got := d.String(); got != "world" {
		t.Errorf("String = %q", got)
	}
	if got := d.String(); got != "" {
		t.Errorf("empty String = %q", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestBytes32IsACopy(t *testing.T) {
	e := NewEncoder(0)
	e.Bytes32([]byte{1, 2, 3})
	buf := e.Bytes()
	d := NewDecoder(buf)
	got := d.Bytes32()
	buf[4] = 99 // clobber the first payload byte in the source buffer
	if got[0] != 1 {
		t.Fatal("Bytes32 result aliases the input buffer")
	}
}

func TestAddrRangeNodeRoundTrip(t *testing.T) {
	a := gaddr.New(7, 0x1000)
	r := gaddr.Range{Start: a, Size: 0x4000}
	ns := []ktypes.NodeID{1, 2, 5}

	e := NewEncoder(0)
	e.Addr(a)
	e.Range(r)
	e.NodeID(3)
	e.NodeIDs(ns)
	e.NodeIDs(nil)

	d := NewDecoder(e.Bytes())
	if got := d.Addr(); got != a {
		t.Errorf("Addr = %v", got)
	}
	if got := d.Range(); got != r {
		t.Errorf("Range = %v", got)
	}
	if got := d.NodeID(); got != 3 {
		t.Errorf("NodeID = %v", got)
	}
	got := d.NodeIDs()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 5 {
		t.Errorf("NodeIDs = %v", got)
	}
	if got := d.NodeIDs(); got != nil {
		t.Errorf("empty NodeIDs = %v", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestTruncation(t *testing.T) {
	e := NewEncoder(0)
	e.U64(12345)
	full := e.Bytes()
	for cut := 0; cut < len(full); cut++ {
		d := NewDecoder(full[:cut])
		d.U64()
		if !errors.Is(d.Err(), ErrTruncated) {
			t.Fatalf("cut=%d: want ErrTruncated, got %v", cut, d.Err())
		}
	}
}

func TestStickyError(t *testing.T) {
	d := NewDecoder([]byte{1})
	d.U64() // fails
	if d.Err() == nil {
		t.Fatal("expected error")
	}
	// Subsequent reads keep returning zero values without panicking.
	if got := d.U32(); got != 0 {
		t.Errorf("after error U32 = %d", got)
	}
	if got := d.Bytes32(); got != nil {
		t.Errorf("after error Bytes32 = %v", got)
	}
	if got := d.String(); got != "" {
		t.Errorf("after error String = %q", got)
	}
	if got := d.NodeIDs(); got != nil {
		t.Errorf("after error NodeIDs = %v", got)
	}
}

func TestHostileLengthPrefix(t *testing.T) {
	// A 4-byte length prefix claiming 4 GiB should be rejected, not
	// allocated.
	d := NewDecoder([]byte{0xff, 0xff, 0xff, 0xff})
	if got := d.Bytes32(); got != nil || d.Err() == nil {
		t.Fatalf("hostile Bytes32 = %v, err = %v", got, d.Err())
	}
	d = NewDecoder([]byte{0xff, 0xff, 0xff, 0xff})
	if got := d.String(); got != "" || d.Err() == nil {
		t.Fatalf("hostile String = %q, err = %v", got, d.Err())
	}
	// NodeIDs with a count larger than the remaining buffer.
	d = NewDecoder([]byte{0xff, 0xff})
	if got := d.NodeIDs(); got != nil || d.Err() == nil {
		t.Fatalf("hostile NodeIDs = %v, err = %v", got, d.Err())
	}
}

func TestFinishTrailing(t *testing.T) {
	e := NewEncoder(0)
	e.U32(1)
	e.U32(2)
	d := NewDecoder(e.Bytes())
	d.U32()
	if err := d.Finish(); err == nil {
		t.Fatal("Finish should report trailing bytes")
	}
}

// Property: any sequence of (u64, bytes, string, addr) round-trips.
func TestQuickMixedRoundTrip(t *testing.T) {
	f := func(v uint64, b []byte, s string, hi, lo uint64) bool {
		e := NewEncoder(0)
		e.U64(v)
		e.Bytes32(b)
		e.String(s)
		e.Addr(gaddr.New(hi, lo))

		d := NewDecoder(e.Bytes())
		if d.U64() != v {
			return false
		}
		gb := d.Bytes32()
		if len(gb) != len(b) || (len(b) > 0 && string(gb) != string(b)) {
			return false
		}
		if d.String() != s {
			return false
		}
		if d.Addr() != gaddr.New(hi, lo) {
			return false
		}
		return d.Finish() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a decoder never panics on arbitrary input for any read
// sequence.
func TestQuickNoPanicOnGarbage(t *testing.T) {
	f := func(input []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		d := NewDecoder(input)
		d.U8()
		d.Bytes32()
		_ = d.String()
		d.NodeIDs()
		d.Range()
		_ = d.Err()
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
