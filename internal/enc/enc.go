// Package enc implements the compact binary codec used by Khazana's
// messaging layer. The paper notes (§5) that only the messaging layer is
// system dependent; this codec is that layer's portable core.
//
// Encoding is little-endian with length-prefixed byte strings. Decoders
// carry a sticky error so call sites can decode a whole struct and check
// the error once.
package enc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"khazana/internal/frame"
	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
)

// ErrTruncated is returned when a decoder runs out of input.
var ErrTruncated = errors.New("enc: truncated input")

// maxBytesLen bounds a single length-prefixed field to guard against
// corrupt or hostile length prefixes.
const maxBytesLen = 1 << 26 // 64 MiB

// Encoder appends binary values to a buffer.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with the given initial capacity.
func NewEncoder(capacity int) *Encoder {
	return &Encoder{buf: make([]byte, 0, capacity)}
}

// NewEncoderWith returns an encoder that appends to buf, so callers can
// serialize straight into a pooled or pre-sized buffer (growing it only
// when capacity runs out). Existing contents of buf are preserved.
func NewEncoderWith(buf []byte) *Encoder {
	return &Encoder{buf: buf}
}

// Bytes returns the encoded buffer. The caller must not modify it while
// continuing to use the encoder.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes so far.
func (e *Encoder) Len() int { return len(e.buf) }

// U8 appends an unsigned 8-bit value.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U16 appends an unsigned 16-bit value.
func (e *Encoder) U16(v uint16) {
	e.buf = binary.LittleEndian.AppendUint16(e.buf, v)
}

// U32 appends an unsigned 32-bit value.
func (e *Encoder) U32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

// U64 appends an unsigned 64-bit value.
func (e *Encoder) U64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// I64 appends a signed 64-bit value.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// Bytes32 appends a byte string with a 32-bit length prefix.
func (e *Encoder) Bytes32(b []byte) {
	if len(b) > math.MaxUint32 {
		panic("enc: byte string too long")
	}
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends a string with a 32-bit length prefix.
func (e *Encoder) String(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Addr appends a 128-bit global address.
func (e *Encoder) Addr(a gaddr.Addr) {
	e.U64(a.Hi)
	e.U64(a.Lo)
}

// Range appends an address range.
func (e *Encoder) Range(r gaddr.Range) {
	e.Addr(r.Start)
	e.U64(r.Size)
}

// NodeID appends a node identifier.
func (e *Encoder) NodeID(n ktypes.NodeID) { e.U32(uint32(n)) }

// NodeIDs appends a slice of node identifiers with a 16-bit count prefix.
func (e *Encoder) NodeIDs(ns []ktypes.NodeID) {
	if len(ns) > math.MaxUint16 {
		panic("enc: too many node IDs")
	}
	e.U16(uint16(len(ns)))
	for _, n := range ns {
		e.NodeID(n)
	}
}

// Decoder reads binary values from a buffer with a sticky error.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps a buffer for decoding.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Err returns the first error encountered, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of undecoded bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Finish returns an error when decoding failed or trailing bytes remain.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("enc: %d trailing bytes", len(d.buf)-d.off)
	}
	return nil
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.Remaining() < n {
		d.err = ErrTruncated
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads an unsigned 8-bit value.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads an unsigned 16-bit value.
func (d *Decoder) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads an unsigned 32-bit value.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads an unsigned 64-bit value.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a signed 64-bit value.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Bool reads a boolean.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// Bytes32 reads a length-prefixed byte string. The result is a copy and is
// safe to retain.
func (d *Decoder) Bytes32() []byte {
	n := d.U32()
	if d.err != nil {
		return nil
	}
	if n > maxBytesLen {
		d.err = fmt.Errorf("enc: byte string length %d exceeds limit", n)
		return nil
	}
	if n == 0 {
		return nil
	}
	b := d.take(int(n))
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// Bytes32Frame reads a length-prefixed byte string into a pooled page
// frame. The caller owns the returned frame (one reference) and must
// Release it; a zero-length field yields nil. Compared to Bytes32 the
// copy still happens, but the destination comes from the frame pool
// instead of the GC heap, and downstream layers can share the frame by
// reference instead of copying again.
func (d *Decoder) Bytes32Frame() *frame.Frame {
	n := d.U32()
	if d.err != nil {
		return nil
	}
	if n > maxBytesLen {
		d.err = fmt.Errorf("enc: byte string length %d exceeds limit", n)
		return nil
	}
	if n == 0 {
		return nil
	}
	b := d.take(int(n))
	if b == nil {
		return nil
	}
	return frame.Copy(b)
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.U32()
	if d.err != nil {
		return ""
	}
	if n > maxBytesLen {
		d.err = fmt.Errorf("enc: string length %d exceeds limit", n)
		return ""
	}
	b := d.take(int(n))
	return string(b)
}

// Addr reads a 128-bit global address.
func (d *Decoder) Addr() gaddr.Addr {
	hi := d.U64()
	lo := d.U64()
	return gaddr.New(hi, lo)
}

// Range reads an address range.
func (d *Decoder) Range() gaddr.Range {
	start := d.Addr()
	size := d.U64()
	return gaddr.Range{Start: start, Size: size}
}

// NodeID reads a node identifier.
func (d *Decoder) NodeID() ktypes.NodeID { return ktypes.NodeID(d.U32()) }

// NodeIDs reads a count-prefixed slice of node identifiers.
func (d *Decoder) NodeIDs() []ktypes.NodeID {
	n := int(d.U16())
	if d.err != nil {
		return nil
	}
	if d.Remaining() < n*4 {
		d.err = ErrTruncated
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]ktypes.NodeID, n)
	for i := range out {
		out[i] = d.NodeID()
	}
	return out
}
