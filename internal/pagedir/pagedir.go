// Package pagedir implements the per-node page directory (paper §3.4):
// information about individual pages of global regions, indexed by global
// address, including the list of nodes sharing each page. The directory
// maintains persistent information about pages homed locally and caches
// information about pages with remote homes. Like the region directory, it
// is node-specific and not stored in global shared memory.
package pagedir

import (
	"fmt"
	"io"
	"sync"

	"khazana/internal/enc"
	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
)

// State is the local validity state of a page copy.
type State uint8

const (
	// Invalid means no valid local copy.
	Invalid State = iota
	// Shared means a valid read-only copy.
	Shared
	// Owned means this node owns the page exclusively (write access).
	Owned
)

// String renders the state.
func (s State) String() string {
	switch s {
	case Invalid:
		return "invalid"
	case Shared:
		return "shared"
	case Owned:
		return "owned"
	default:
		return "bad-state"
	}
}

// Entry holds a page's location and consistency information (Figure 2,
// step 4: "The page directory entry holds location and consistency
// information for that page").
type Entry struct {
	Page gaddr.Addr
	// State is this node's local copy state.
	State State
	// Owner is the node believed to own the page (meaningful on the
	// page's home node; elsewhere a hint).
	Owner ktypes.NodeID
	// Copyset lists nodes holding copies (maintained by the home node).
	Copyset []ktypes.NodeID
	// Version counts committed writes to the page.
	Version uint64
	// Dirty marks a locally modified copy not yet propagated.
	Dirty bool
	// HomedLocal marks pages whose home is this node; their directory
	// information is persistent (§3.4).
	HomedLocal bool
	// Stamp is the last-writer-wins timestamp for the eventual protocol.
	Stamp int64
	// StampNode breaks Stamp ties.
	StampNode ktypes.NodeID
}

// clone deep-copies the entry.
func (e *Entry) clone() Entry {
	out := *e
	out.Copyset = append([]ktypes.NodeID(nil), e.Copyset...)
	return out
}

// InCopyset reports whether n is in the entry's copyset.
func (e *Entry) InCopyset(n ktypes.NodeID) bool {
	for _, c := range e.Copyset {
		if c == n {
			return true
		}
	}
	return false
}

// AddSharer inserts n into the copyset if absent.
func (e *Entry) AddSharer(n ktypes.NodeID) {
	if !e.InCopyset(n) {
		e.Copyset = append(e.Copyset, n)
	}
}

// RemoveSharer removes n from the copyset.
func (e *Entry) RemoveSharer(n ktypes.NodeID) {
	for i, c := range e.Copyset {
		if c == n {
			e.Copyset = append(e.Copyset[:i], e.Copyset[i+1:]...)
			return
		}
	}
}

// Dir is a node's page directory.
type Dir struct {
	mu      sync.Mutex
	entries map[gaddr.Addr]*Entry
}

// New creates an empty page directory.
func New() *Dir {
	return &Dir{entries: make(map[gaddr.Addr]*Entry)}
}

// Lookup returns a copy of the entry for the page.
func (d *Dir) Lookup(page gaddr.Addr) (Entry, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.entries[page]
	if !ok {
		return Entry{}, false
	}
	return e.clone(), true
}

// Update atomically mutates (creating if needed) the entry for page.
func (d *Dir) Update(page gaddr.Addr, fn func(*Entry)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.entries[page]
	if !ok {
		e = &Entry{Page: page}
		d.entries[page] = e
	}
	fn(e)
}

// Delete removes the entry for page.
func (d *Dir) Delete(page gaddr.Addr) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.entries, page)
}

// Len returns the number of entries.
func (d *Dir) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.entries)
}

// Pages returns all tracked page addresses.
func (d *Dir) Pages() []gaddr.Addr {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]gaddr.Addr, 0, len(d.entries))
	for p := range d.entries {
		out = append(out, p)
	}
	return out
}

// HomedPages returns the pages homed locally.
func (d *Dir) HomedPages() []gaddr.Addr {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []gaddr.Addr
	for p, e := range d.entries {
		if e.HomedLocal {
			out = append(out, p)
		}
	}
	return out
}

// persistMagic guards the persistence format.
const persistMagic = 0x4b50_4449 // "KPDI"

// SaveTo writes the locally homed entries (the persistent part of the
// directory, §3.4) to w.
func (d *Dir) SaveTo(w io.Writer) error {
	d.mu.Lock()
	var homed []*Entry
	for _, e := range d.entries {
		if e.HomedLocal {
			homed = append(homed, e)
		}
	}
	e := enc.NewEncoder(64 * len(homed))
	e.U32(persistMagic)
	e.U32(uint32(len(homed)))
	for _, ent := range homed {
		e.Addr(ent.Page)
		e.U8(uint8(ent.State))
		e.NodeID(ent.Owner)
		e.NodeIDs(ent.Copyset)
		e.U64(ent.Version)
		e.Bool(ent.Dirty)
		e.I64(ent.Stamp)
		e.NodeID(ent.StampNode)
	}
	d.mu.Unlock()
	_, err := w.Write(e.Bytes())
	return err
}

// LoadFrom restores entries written by SaveTo, merging them into the
// directory as locally homed pages.
func (d *Dir) LoadFrom(r io.Reader) error {
	raw, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("pagedir: read: %w", err)
	}
	dec := enc.NewDecoder(raw)
	if magic := dec.U32(); magic != persistMagic {
		return fmt.Errorf("pagedir: bad magic %#x", magic)
	}
	n := dec.U32()
	entries := make([]*Entry, 0, n)
	for i := uint32(0); i < n; i++ {
		ent := &Entry{HomedLocal: true}
		ent.Page = dec.Addr()
		ent.State = State(dec.U8())
		ent.Owner = dec.NodeID()
		ent.Copyset = dec.NodeIDs()
		ent.Version = dec.U64()
		ent.Dirty = dec.Bool()
		ent.Stamp = dec.I64()
		ent.StampNode = dec.NodeID()
		if dec.Err() != nil {
			return fmt.Errorf("pagedir: decode entry %d: %w", i, dec.Err())
		}
		entries = append(entries, ent)
	}
	if err := dec.Finish(); err != nil {
		return fmt.Errorf("pagedir: %w", err)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, ent := range entries {
		d.entries[ent.Page] = ent
	}
	return nil
}
