package pagedir

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"

	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
)

func pg(n uint64) gaddr.Addr { return gaddr.FromUint64(n * 0x1000) }

func TestLookupAbsent(t *testing.T) {
	d := New()
	if _, ok := d.Lookup(pg(1)); ok {
		t.Fatal("absent entry found")
	}
}

func TestUpdateCreatesAndMutates(t *testing.T) {
	d := New()
	d.Update(pg(1), func(e *Entry) {
		e.State = Owned
		e.Owner = 3
		e.Version = 7
	})
	got, ok := d.Lookup(pg(1))
	if !ok || got.State != Owned || got.Owner != 3 || got.Version != 7 {
		t.Fatalf("entry = %+v, %v", got, ok)
	}
	d.Update(pg(1), func(e *Entry) { e.Version++ })
	got, _ = d.Lookup(pg(1))
	if got.Version != 8 {
		t.Fatalf("Version = %d", got.Version)
	}
	if got.Page != pg(1) {
		t.Fatalf("Page = %v", got.Page)
	}
}

func TestLookupReturnsCopy(t *testing.T) {
	d := New()
	d.Update(pg(1), func(e *Entry) { e.AddSharer(2) })
	got, _ := d.Lookup(pg(1))
	got.Copyset[0] = 99
	again, _ := d.Lookup(pg(1))
	if again.Copyset[0] != 2 {
		t.Fatal("Lookup shares copyset slice")
	}
}

func TestCopysetOps(t *testing.T) {
	var e Entry
	e.AddSharer(1)
	e.AddSharer(2)
	e.AddSharer(1) // duplicate
	if len(e.Copyset) != 2 {
		t.Fatalf("Copyset = %v", e.Copyset)
	}
	if !e.InCopyset(1) || !e.InCopyset(2) || e.InCopyset(3) {
		t.Fatal("InCopyset wrong")
	}
	e.RemoveSharer(1)
	if e.InCopyset(1) || len(e.Copyset) != 1 {
		t.Fatalf("after remove = %v", e.Copyset)
	}
	e.RemoveSharer(9) // absent: no-op
	if len(e.Copyset) != 1 {
		t.Fatal("removing absent sharer changed copyset")
	}
}

func TestDelete(t *testing.T) {
	d := New()
	d.Update(pg(1), func(e *Entry) {})
	d.Delete(pg(1))
	if _, ok := d.Lookup(pg(1)); ok {
		t.Fatal("deleted entry found")
	}
	if d.Len() != 0 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestPagesAndHomedPages(t *testing.T) {
	d := New()
	d.Update(pg(1), func(e *Entry) { e.HomedLocal = true })
	d.Update(pg(2), func(e *Entry) {})
	d.Update(pg(3), func(e *Entry) { e.HomedLocal = true })
	if got := len(d.Pages()); got != 3 {
		t.Fatalf("Pages = %d", got)
	}
	homed := d.HomedPages()
	if len(homed) != 2 {
		t.Fatalf("HomedPages = %v", homed)
	}
	for _, p := range homed {
		if p != pg(1) && p != pg(3) {
			t.Fatalf("unexpected homed page %v", p)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d := New()
	d.Update(pg(1), func(e *Entry) {
		e.HomedLocal = true
		e.State = Owned
		e.Owner = 1
		e.Copyset = []ktypes.NodeID{1, 4}
		e.Version = 12
		e.Dirty = true
		e.Stamp = 999
		e.StampNode = 4
	})
	d.Update(pg(2), func(e *Entry) { e.State = Shared }) // remote-homed: not persisted

	var buf bytes.Buffer
	if err := d.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	d2 := New()
	if err := d2.LoadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if d2.Len() != 1 {
		t.Fatalf("restored Len = %d", d2.Len())
	}
	got, ok := d2.Lookup(pg(1))
	if !ok || got.State != Owned || got.Version != 12 || !got.Dirty ||
		!got.HomedLocal || got.Stamp != 999 || got.StampNode != 4 {
		t.Fatalf("restored entry = %+v", got)
	}
	if len(got.Copyset) != 2 || got.Copyset[1] != 4 {
		t.Fatalf("restored copyset = %v", got.Copyset)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	d := New()
	if err := d.LoadFrom(bytes.NewReader([]byte("not a pagedir"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if err := d.LoadFrom(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
	// Truncated valid prefix.
	src := New()
	src.Update(pg(1), func(e *Entry) { e.HomedLocal = true })
	var buf bytes.Buffer
	_ = src.SaveTo(&buf)
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut++ {
		if err := New().LoadFrom(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("cut=%d accepted", cut)
		}
	}
}

func TestConcurrentUpdates(t *testing.T) {
	d := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				d.Update(pg(uint64(j%10)), func(e *Entry) { e.Version++ })
			}
		}()
	}
	wg.Wait()
	var total uint64
	for i := uint64(0); i < 10; i++ {
		e, _ := d.Lookup(pg(i))
		total += e.Version
	}
	if total != 8*200 {
		t.Fatalf("total versions = %d, want %d", total, 8*200)
	}
}

// Property: save/load preserves every homed entry for arbitrary field
// values.
func TestQuickPersistRoundTrip(t *testing.T) {
	f := func(pagesSeed []uint16, version uint64, stamp int64, dirty bool) bool {
		d := New()
		seen := make(map[gaddr.Addr]bool)
		for _, s := range pagesSeed {
			p := pg(uint64(s))
			seen[p] = true
			d.Update(p, func(e *Entry) {
				e.HomedLocal = true
				e.Version = version
				e.Stamp = stamp
				e.Dirty = dirty
				e.AddSharer(ktypes.NodeID(s%5 + 1))
			})
		}
		var buf bytes.Buffer
		if d.SaveTo(&buf) != nil {
			return false
		}
		d2 := New()
		if d2.LoadFrom(&buf) != nil {
			return false
		}
		if d2.Len() != len(seen) {
			return false
		}
		for p := range seen {
			got, ok := d2.Lookup(p)
			if !ok || got.Version != version || got.Stamp != stamp || got.Dirty != dirty {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
