package ring

import (
	"math/rand"
	"testing"

	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
	"khazana/internal/region"
)

func nodeSet(ids ...uint32) []ktypes.NodeID {
	out := make([]ktypes.NodeID, len(ids))
	for i, id := range ids {
		out[i] = ktypes.NodeID(id)
	}
	return out
}

func TestBuildDeterministic(t *testing.T) {
	a := Build(nodeSet(3, 1, 2), Options{})
	b := Build(nodeSet(2, 3, 1, 1), Options{}) // order + dup must not matter
	if len(a.points) != len(b.points) {
		t.Fatalf("point counts differ: %d vs %d", len(a.points), len(b.points))
	}
	for i := range a.points {
		if a.points[i] != b.points[i] {
			t.Fatalf("point %d differs: %+v vs %+v", i, a.points[i], b.points[i])
		}
	}
	for probe := 0; probe < 200; probe++ {
		key := BucketOf(gaddr.FromUint64(rand.Uint64()))
		oa, ob := a.Owners(key), b.Owners(key)
		if len(oa) != len(ob) {
			t.Fatalf("owner counts differ for %v", key)
		}
		for i := range oa {
			if oa[i] != ob[i] {
				t.Fatalf("owners differ for %v: %v vs %v", key, oa, ob)
			}
		}
	}
}

func TestOwnersDistinctAndReplicated(t *testing.T) {
	r := Build(nodeSet(1, 2, 3, 4, 5), Options{ReplicationFactor: 3})
	for probe := 0; probe < 500; probe++ {
		key := BucketOf(gaddr.FromUint64(rand.Uint64()))
		owners := r.Owners(key)
		if len(owners) != 3 {
			t.Fatalf("want 3 owners, got %v", owners)
		}
		seen := map[ktypes.NodeID]bool{}
		for _, o := range owners {
			if o == ktypes.NilNode {
				t.Fatalf("nil owner in %v", owners)
			}
			if seen[o] {
				t.Fatalf("duplicate owner in %v", owners)
			}
			seen[o] = true
		}
		if r.Owner(key) != owners[0] {
			t.Fatalf("Owner != Owners[0]")
		}
		if !r.IsOwner(owners[1], key) || r.IsOwner(99, key) {
			t.Fatalf("IsOwner misreports for %v", owners)
		}
	}
}

func TestReplicationClampedToMembers(t *testing.T) {
	r := Build(nodeSet(7), Options{ReplicationFactor: 4})
	owners := r.Owners(gaddr.FromUint64(42))
	if len(owners) != 1 || owners[0] != 7 {
		t.Fatalf("single-node ring should own everything once: %v", owners)
	}
	if got := (&Ring{}).Owners(gaddr.FromUint64(1)); got != nil {
		t.Fatalf("empty ring owners = %v", got)
	}
	var nilRing *Ring
	if nilRing.Owner(gaddr.FromUint64(1)) != ktypes.NilNode {
		t.Fatalf("nil ring should own nothing")
	}
}

func TestSameMembers(t *testing.T) {
	r := Build(nodeSet(1, 2, 3), Options{})
	if !r.SameMembers(nodeSet(3, 2, 1, 2)) {
		t.Fatalf("order/dups should not matter")
	}
	if r.SameMembers(nodeSet(1, 2)) || r.SameMembers(nodeSet(1, 2, 4)) {
		t.Fatalf("different sets reported same")
	}
	var nilRing *Ring
	if nilRing.SameMembers(nil) {
		t.Fatalf("nil ring never matches")
	}
}

// TestRebalanceMinimality is the consistent-hashing contract: adding
// one node to an N-node ring must move only ~1/(N+1) of bucket
// ownership, not reshuffle everything (the property that makes
// membership churn cheap).
func TestRebalanceMinimality(t *testing.T) {
	old := Build(nodeSet(1, 2, 3, 4, 5, 6, 7, 8), Options{})
	grown := Build(nodeSet(1, 2, 3, 4, 5, 6, 7, 8, 9), Options{})
	const probes = 4000
	moved := 0
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < probes; i++ {
		key := BucketOf(gaddr.FromUint64(rng.Uint64()))
		if old.Owner(key) != grown.Owner(key) {
			moved++
		}
	}
	frac := float64(moved) / probes
	// Ideal is 1/9 ≈ 0.111; allow generous slack for vnode imbalance.
	if frac > 0.25 {
		t.Fatalf("adding 1 node to 8 moved %.1f%% of primaries (want ~11%%)", frac*100)
	}
	if moved == 0 {
		t.Fatalf("adding a node moved nothing — new node owns no buckets")
	}
}

func TestBalance(t *testing.T) {
	members := nodeSet(1, 2, 3, 4, 5, 6, 7, 8)
	r := Build(members, Options{})
	counts := map[ktypes.NodeID]int{}
	const probes = 8000
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < probes; i++ {
		counts[r.Owner(BucketOf(gaddr.FromUint64(rng.Uint64())))]++
	}
	ideal := probes / len(members)
	for _, m := range members {
		if counts[m] < ideal/3 || counts[m] > ideal*3 {
			t.Fatalf("node %v owns %d of %d probes (ideal %d): imbalance too large", m, counts[m], probes, ideal)
		}
	}
}

func TestBuckets(t *testing.T) {
	mk := func(lo uint64, size uint64) gaddr.Range {
		return gaddr.Range{Start: gaddr.FromUint64(lo), Size: size}
	}
	if got := Buckets(mk(0, 0)); got != nil {
		t.Fatalf("zero range buckets = %v", got)
	}
	one := Buckets(mk(4096, 8192))
	if len(one) != 1 || one[0] != gaddr.FromUint64(0) {
		t.Fatalf("small region buckets = %v", one)
	}
	// A region straddling a bucket boundary belongs to both buckets.
	two := Buckets(mk(BucketSize-4096, 8192))
	if len(two) != 2 || two[0] != gaddr.FromUint64(0) || two[1] != gaddr.FromUint64(BucketSize) {
		t.Fatalf("straddling buckets = %v", two)
	}
	// Exact bucket-sized region aligned at a boundary stays in one.
	exact := Buckets(mk(BucketSize, BucketSize))
	if len(exact) != 1 || exact[0] != gaddr.FromUint64(BucketSize) {
		t.Fatalf("aligned buckets = %v", exact)
	}
	three := Buckets(mk(0, 2*BucketSize+1))
	if len(three) != 3 {
		t.Fatalf("3-bucket span = %v", three)
	}
}

func TestRangeOwnersDedups(t *testing.T) {
	r := Build(nodeSet(1, 2, 3), Options{})
	rng := gaddr.Range{Start: gaddr.FromUint64(0), Size: 4 * BucketSize}
	owners := r.RangeOwners(rng)
	seen := map[ktypes.NodeID]bool{}
	for _, o := range owners {
		if seen[o] {
			t.Fatalf("duplicate owner %v in %v", o, owners)
		}
		seen[o] = true
	}
	if len(owners) == 0 || len(owners) > 3 {
		t.Fatalf("unexpected owner set %v", owners)
	}
}

func desc(lo, size, epoch uint64) *region.Descriptor {
	return &region.Descriptor{
		Range: gaddr.Range{Start: gaddr.FromUint64(lo), Size: size},
		Epoch: epoch,
	}
}

func TestTableEpochPreference(t *testing.T) {
	tbl := NewTable()
	if !tbl.Insert(desc(0, 4096, 5)) {
		t.Fatalf("first insert rejected")
	}
	if tbl.Insert(desc(0, 4096, 3)) {
		t.Fatalf("stale epoch accepted")
	}
	if d, ok := tbl.Lookup(gaddr.FromUint64(100)); !ok || d.Epoch != 5 {
		t.Fatalf("lookup after stale insert: %+v ok=%v", d, ok)
	}
	if !tbl.Insert(desc(0, 4096, 6)) {
		t.Fatalf("newer epoch rejected")
	}
	if d, _ := tbl.Lookup(gaddr.FromUint64(0)); d.Epoch != 6 {
		t.Fatalf("newer epoch not stored")
	}
	if tbl.Insert(nil) || tbl.Insert(&region.Descriptor{}) {
		t.Fatalf("degenerate inserts accepted")
	}
}

func TestTableContainmentAndRemove(t *testing.T) {
	tbl := NewTable()
	tbl.Insert(desc(0, 4096, 1))
	tbl.Insert(desc(8192, 4096, 1))
	if _, ok := tbl.Lookup(gaddr.FromUint64(4096)); ok {
		t.Fatalf("gap address resolved")
	}
	if d, ok := tbl.Lookup(gaddr.FromUint64(8192 + 4095)); !ok || d.Range.Start != gaddr.FromUint64(8192) {
		t.Fatalf("containment lookup failed: %+v %v", d, ok)
	}
	if tbl.Len() != 2 || len(tbl.Starts()) != 2 {
		t.Fatalf("len mismatch")
	}
	tbl.Remove(gaddr.FromUint64(8192))
	tbl.Remove(gaddr.FromUint64(12345)) // absent: no-op
	if _, ok := tbl.Lookup(gaddr.FromUint64(8192)); ok || tbl.Len() != 1 {
		t.Fatalf("remove did not take")
	}
	// Mutating a returned clone must not corrupt the table.
	d, _ := tbl.Lookup(gaddr.FromUint64(0))
	d.Epoch = 99
	if d2, _ := tbl.Lookup(gaddr.FromUint64(0)); d2.Epoch != 1 {
		t.Fatalf("clone mutation leaked into table")
	}
}
