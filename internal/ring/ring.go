// Package ring implements a consistent-hashing partition of region
// descriptors across live Khazana nodes (the ROADMAP's decentralized
// location item, in the spirit of Nicolae et al.'s fine-grain access
// scheme). The global address space is cut into fixed-size buckets;
// each bucket hashes onto a ring of virtual node points, and the first
// ReplicationFactor distinct physical successors own the bucket. Region
// descriptors are announced to the owners of every bucket their range
// overlaps, giving any node a one-RPC-hop cold lookup: hash the faulting
// address to its bucket, ask an owner, done. The per-node region
// directory stays as the cache in front; the §3.1 address-map tree walk
// remains only as a repair fallback when the ring disagrees with
// reality (mid-churn, owners crashed, announce lost).
//
// A Ring is immutable: membership changes build a new Ring and the
// owner diff between old and new drives rebalancing. All nodes build
// byte-identical rings from the same member set — hashing uses a fixed
// 64-bit mixer, no per-process seed — so no coordination is needed to
// agree on bucket ownership.
package ring

import (
	"sort"

	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
)

// BucketShift sets the bucket granularity: addresses are aligned down
// to 1<<BucketShift before hashing. 30 matches the 1 GiB reservation
// chunk the address map hands out, so in practice one bucket covers one
// reservation and a region never straddles more than a handful of
// buckets.
const BucketShift = 30

// BucketSize is the width of one hash bucket in address-space bytes.
const BucketSize = uint64(1) << BucketShift

// DefaultVirtualNodes is the number of ring points per physical node.
// 64 keeps the per-node ownership imbalance under ~15% for the cluster
// sizes E20 exercises while keeping Build cheap enough to run on every
// membership change.
const DefaultVirtualNodes = 64

// DefaultReplicationFactor is how many distinct physical nodes own each
// bucket. Two owners survive any single crash between heartbeat rounds.
const DefaultReplicationFactor = 2

// Options tunes ring construction. The zero value selects defaults.
type Options struct {
	// VirtualNodes is the number of ring points per physical node
	// (<=0 selects DefaultVirtualNodes).
	VirtualNodes int
	// ReplicationFactor is the number of distinct physical owners per
	// bucket (<=0 selects DefaultReplicationFactor). Clamped to the
	// member count.
	ReplicationFactor int
}

// point is one virtual node: a position on the 64-bit ring and the
// physical node it maps back to.
type point struct {
	hash uint64
	node ktypes.NodeID
}

// Ring is an immutable consistent-hashing ring over a member set.
type Ring struct {
	points   []point // sorted by hash
	members  []ktypes.NodeID
	replicas int
}

// mix64 is the splitmix64 finalizer: a fixed, seedless 64-bit mixer so
// every node derives identical ring positions from the same inputs.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// pointHash positions virtual node vn of a physical node on the ring.
func pointHash(node ktypes.NodeID, vn int) uint64 {
	return mix64(mix64(uint64(node)) + uint64(vn))
}

// BucketOf returns the bucket key (aligned-down address) for a.
func BucketOf(a gaddr.Addr) gaddr.Addr {
	return a.AlignDown(BucketSize)
}

// bucketHash positions a bucket key on the ring.
func bucketHash(bucket gaddr.Addr) uint64 {
	return mix64(mix64(bucket.Hi)*0x9e3779b97f4a7c15 + bucket.Lo)
}

// Buckets returns the bucket keys overlapped by rng, in address order.
// A zero-size range yields nil.
func Buckets(rng gaddr.Range) []gaddr.Addr {
	if rng.Size == 0 {
		return nil
	}
	first := BucketOf(rng.Start)
	lastAddr, err := rng.Start.Add(rng.Size - 1)
	if err != nil {
		lastAddr = gaddr.Addr{Hi: ^uint64(0), Lo: ^uint64(0)}
	}
	last := BucketOf(lastAddr)
	var out []gaddr.Addr
	for b := first; ; {
		out = append(out, b)
		if b == last {
			return out
		}
		next, err := b.Add(BucketSize)
		if err != nil {
			return out
		}
		b = next
	}
}

// Build constructs the ring for a member set. The member slice is
// copied, deduplicated, and sorted; nil node IDs are dropped. A ring
// over zero members is valid and owns nothing.
func Build(members []ktypes.NodeID, opts Options) *Ring {
	vnodes := opts.VirtualNodes
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	replicas := opts.ReplicationFactor
	if replicas <= 0 {
		replicas = DefaultReplicationFactor
	}
	seen := make(map[ktypes.NodeID]bool, len(members))
	var ms []ktypes.NodeID
	for _, m := range members {
		if m == ktypes.NilNode || seen[m] {
			continue
		}
		seen[m] = true
		ms = append(ms, m)
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
	if replicas > len(ms) {
		replicas = len(ms)
	}
	r := &Ring{
		points:   make([]point, 0, len(ms)*vnodes),
		members:  ms,
		replicas: replicas,
	}
	for _, m := range ms {
		for vn := 0; vn < vnodes; vn++ {
			r.points = append(r.points, point{hash: pointHash(m, vn), node: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Members returns the sorted member set the ring was built from. The
// returned slice is shared; callers must not mutate it.
func (r *Ring) Members() []ktypes.NodeID {
	if r == nil {
		return nil
	}
	return r.members
}

// SameMembers reports whether the ring was built from exactly this
// member set (order-insensitive, duplicates ignored).
func (r *Ring) SameMembers(members []ktypes.NodeID) bool {
	if r == nil {
		return false
	}
	seen := make(map[ktypes.NodeID]bool, len(members))
	n := 0
	for _, m := range members {
		if m == ktypes.NilNode || seen[m] {
			continue
		}
		seen[m] = true
		n++
	}
	if n != len(r.members) {
		return false
	}
	for _, m := range r.members {
		if !seen[m] {
			return false
		}
	}
	return true
}

// Owners returns the distinct physical nodes owning the bucket, primary
// first: the first ReplicationFactor distinct nodes clockwise from the
// bucket's hash. Returns nil on an empty ring.
func (r *Ring) Owners(bucket gaddr.Addr) []ktypes.NodeID {
	if r == nil || len(r.points) == 0 {
		return nil
	}
	h := bucketHash(bucket)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]ktypes.NodeID, 0, r.replicas)
	for probed := 0; probed < len(r.points) && len(owners) < r.replicas; probed++ {
		p := r.points[(i+probed)%len(r.points)]
		dup := false
		for _, o := range owners {
			if o == p.node {
				dup = true
				break
			}
		}
		if !dup {
			owners = append(owners, p.node)
		}
	}
	return owners
}

// Owner returns the primary owner of the bucket, or NilNode on an
// empty ring.
func (r *Ring) Owner(bucket gaddr.Addr) ktypes.NodeID {
	owners := r.Owners(bucket)
	if len(owners) == 0 {
		return ktypes.NilNode
	}
	return owners[0]
}

// IsOwner reports whether node is among the owners of the bucket.
func (r *Ring) IsOwner(node ktypes.NodeID, bucket gaddr.Addr) bool {
	for _, o := range r.Owners(bucket) {
		if o == node {
			return true
		}
	}
	return false
}

// RangeOwners returns the distinct owners across every bucket rng
// overlaps, in first-seen order. This is the announce fan-out set for a
// region descriptor.
func (r *Ring) RangeOwners(rng gaddr.Range) []ktypes.NodeID {
	var out []ktypes.NodeID
	for _, b := range Buckets(rng) {
		for _, o := range r.Owners(b) {
			dup := false
			for _, have := range out {
				if have == o {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, o)
			}
		}
	}
	return out
}
