package ring

import (
	"sort"
	"sync"

	"khazana/internal/gaddr"
	"khazana/internal/region"
)

// Table is the authoritative descriptor table a ring owner keeps for
// the buckets it owns. Unlike the region directory (an LRU cache that
// may silently drop or stale out), the table holds every descriptor
// announced to this node until it is withdrawn, and prefers the highest
// epoch on conflicting announces so a late replay of an old home set
// cannot clobber a newer one.
type Table struct {
	mu      sync.Mutex
	byStart map[gaddr.Addr]*region.Descriptor
	starts  []gaddr.Addr // sorted; containment index
}

// NewTable creates an empty authoritative table.
func NewTable() *Table {
	return &Table{byStart: make(map[gaddr.Addr]*region.Descriptor)}
}

// Insert stores a descriptor (cloned), replacing an existing entry with
// the same start only if the incoming epoch is >= the stored one.
// Returns whether the table changed.
func (t *Table) Insert(d *region.Descriptor) bool {
	if d == nil || d.Range.Size == 0 {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if have, ok := t.byStart[d.Range.Start]; ok {
		if d.Epoch < have.Epoch {
			return false
		}
		t.byStart[d.Range.Start] = d.Clone()
		return true
	}
	t.byStart[d.Range.Start] = d.Clone()
	i := sort.Search(len(t.starts), func(i int) bool {
		return d.Range.Start.Less(t.starts[i])
	})
	t.starts = append(t.starts, gaddr.Addr{})
	copy(t.starts[i+1:], t.starts[i:])
	t.starts[i] = d.Range.Start
	return true
}

// Remove drops the descriptor starting at start, if present.
func (t *Table) Remove(start gaddr.Addr) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.byStart[start]; !ok {
		return
	}
	delete(t.byStart, start)
	i := sort.Search(len(t.starts), func(i int) bool {
		return !t.starts[i].Less(start)
	})
	if i < len(t.starts) && t.starts[i] == start {
		t.starts = append(t.starts[:i], t.starts[i+1:]...)
	}
}

// Lookup returns a clone of the descriptor whose range contains a.
func (t *Table) Lookup(a gaddr.Addr) (*region.Descriptor, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	i := sort.Search(len(t.starts), func(i int) bool {
		return a.Less(t.starts[i])
	})
	if i == 0 {
		return nil, false
	}
	d := t.byStart[t.starts[i-1]]
	if d == nil || !d.Range.Contains(a) {
		return nil, false
	}
	return d.Clone(), true
}

// Starts returns the sorted region starts currently held.
func (t *Table) Starts() []gaddr.Addr {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]gaddr.Addr, len(t.starts))
	copy(out, t.starts)
	return out
}

// Len returns the number of descriptors held.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.byStart)
}
