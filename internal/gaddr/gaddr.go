// Package gaddr implements Khazana's 128-bit global address space.
//
// Khazana regions are "addressed" using 128-bit identifiers with no direct
// correspondence to an application's virtual addresses (paper §2). This
// package provides the address type, 128-bit arithmetic with carry/borrow,
// and contiguous address ranges used for regions.
package gaddr

import (
	"errors"
	"fmt"
	"math/bits"
	"strconv"
	"strings"
)

// Addr is a 128-bit global address.
//
// The zero value is address 0, the well-known root of the address map tree
// (paper §3.1).
type Addr struct {
	Hi uint64
	Lo uint64
}

// Zero is the well-known address 0 that stores the root node of the
// address map tree.
var Zero = Addr{}

// Max is the largest representable address.
var Max = Addr{Hi: ^uint64(0), Lo: ^uint64(0)}

// ErrAddrOverflow is returned by arithmetic that would wrap around the
// 128-bit address space.
var ErrAddrOverflow = errors.New("gaddr: address overflow")

// New builds an address from its high and low 64-bit halves.
func New(hi, lo uint64) Addr { return Addr{Hi: hi, Lo: lo} }

// FromUint64 builds an address in the low 64-bit half of the space.
func FromUint64(lo uint64) Addr { return Addr{Lo: lo} }

// Add returns a+n, reporting overflow past the top of the address space.
func (a Addr) Add(n uint64) (Addr, error) {
	lo, carry := bits.Add64(a.Lo, n, 0)
	hi, carry := bits.Add64(a.Hi, 0, carry)
	if carry != 0 {
		return Addr{}, ErrAddrOverflow
	}
	return Addr{Hi: hi, Lo: lo}, nil
}

// MustAdd is Add for offsets known to be in range; it panics on overflow.
// It is intended for arithmetic inside already-validated regions.
func (a Addr) MustAdd(n uint64) Addr {
	r, err := a.Add(n)
	if err != nil {
		panic(fmt.Sprintf("gaddr: MustAdd(%v, %d) overflow", a, n))
	}
	return r
}

// Sub returns a-n, reporting underflow below address 0.
func (a Addr) Sub(n uint64) (Addr, error) {
	lo, borrow := bits.Sub64(a.Lo, n, 0)
	hi, borrow := bits.Sub64(a.Hi, 0, borrow)
	if borrow != 0 {
		return Addr{}, ErrAddrOverflow
	}
	return Addr{Hi: hi, Lo: lo}, nil
}

// Distance returns b-a as a uint64 offset. ok is false when b < a or when
// the distance does not fit in 64 bits (regions are limited to 2^64-1 bytes).
func (a Addr) Distance(b Addr) (n uint64, ok bool) {
	if b.Less(a) {
		return 0, false
	}
	lo, borrow := bits.Sub64(b.Lo, a.Lo, 0)
	hi, _ := bits.Sub64(b.Hi, a.Hi, borrow)
	if hi != 0 {
		return 0, false
	}
	return lo, true
}

// Cmp compares two addresses, returning -1, 0, or +1.
func (a Addr) Cmp(b Addr) int {
	switch {
	case a.Hi < b.Hi:
		return -1
	case a.Hi > b.Hi:
		return 1
	case a.Lo < b.Lo:
		return -1
	case a.Lo > b.Lo:
		return 1
	}
	return 0
}

// Less reports whether a < b.
func (a Addr) Less(b Addr) bool { return a.Cmp(b) < 0 }

// IsZero reports whether a is address 0.
func (a Addr) IsZero() bool { return a.Hi == 0 && a.Lo == 0 }

// AlignDown rounds a down to a multiple of align. align must be a power of
// two no larger than 2^63.
func (a Addr) AlignDown(align uint64) Addr {
	if align == 0 || align&(align-1) != 0 {
		panic("gaddr: alignment must be a power of two")
	}
	return Addr{Hi: a.Hi, Lo: a.Lo &^ (align - 1)}
}

// AlignUp rounds a up to a multiple of align, reporting overflow.
func (a Addr) AlignUp(align uint64) (Addr, error) {
	d := a.AlignDown(align)
	if d == a {
		return a, nil
	}
	return d.Add(align)
}

// Offset returns the byte offset of a within its enclosing align-sized unit.
func (a Addr) Offset(align uint64) uint64 {
	if align == 0 || align&(align-1) != 0 {
		panic("gaddr: alignment must be a power of two")
	}
	return a.Lo & (align - 1)
}

// String renders the address as 32 hex digits split for readability,
// e.g. "0000000000000000:0000000000001000".
func (a Addr) String() string {
	return fmt.Sprintf("%016x:%016x", a.Hi, a.Lo)
}

// Parse parses the format produced by String, and also accepts a bare hex
// number (with optional 0x prefix) for addresses in the low half.
func Parse(s string) (Addr, error) {
	if hi, lo, ok := strings.Cut(s, ":"); ok {
		h, err := strconv.ParseUint(hi, 16, 64)
		if err != nil {
			return Addr{}, fmt.Errorf("gaddr: parse %q: %w", s, err)
		}
		l, err := strconv.ParseUint(lo, 16, 64)
		if err != nil {
			return Addr{}, fmt.Errorf("gaddr: parse %q: %w", s, err)
		}
		return Addr{Hi: h, Lo: l}, nil
	}
	s = strings.TrimPrefix(s, "0x")
	l, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return Addr{}, fmt.Errorf("gaddr: parse %q: %w", s, err)
	}
	return Addr{Lo: l}, nil
}

// Range is a contiguous range of global address space: [Start, Start+Size).
// A Khazana region occupies exactly one Range.
type Range struct {
	Start Addr
	Size  uint64
}

// NewRange builds a range, validating that it does not wrap the address
// space.
func NewRange(start Addr, size uint64) (Range, error) {
	if size == 0 {
		return Range{}, errors.New("gaddr: empty range")
	}
	if _, err := start.Add(size - 1); err != nil {
		return Range{}, fmt.Errorf("gaddr: range %v+%d: %w", start, size, err)
	}
	return Range{Start: start, Size: size}, nil
}

// End returns the first address past the range. The end of a range that
// abuts the top of the address space is reported with ok=false.
func (r Range) End() (Addr, bool) {
	e, err := r.Start.Add(r.Size)
	if err != nil {
		return Addr{}, false
	}
	return e, true
}

// Contains reports whether a falls inside the range.
func (r Range) Contains(a Addr) bool {
	if a.Less(r.Start) {
		return false
	}
	d, ok := r.Start.Distance(a)
	return ok && d < r.Size
}

// ContainsRange reports whether q lies entirely inside r.
func (r Range) ContainsRange(q Range) bool {
	if !r.Contains(q.Start) {
		return false
	}
	d, _ := r.Start.Distance(q.Start)
	return q.Size <= r.Size-d
}

// Overlaps reports whether the two ranges share any address.
func (r Range) Overlaps(q Range) bool {
	if r.Size == 0 || q.Size == 0 {
		return false
	}
	return r.Contains(q.Start) || q.Contains(r.Start)
}

// OffsetOf returns the byte offset of a from the start of the range; ok is
// false when a is outside the range.
func (r Range) OffsetOf(a Addr) (uint64, bool) {
	if !r.Contains(a) {
		return 0, false
	}
	d, _ := r.Start.Distance(a)
	return d, true
}

// Pages enumerates the page-aligned base addresses covering the byte span
// [off, off+n) of the range, for the given page size. It returns nil when
// the span is empty or escapes the range.
func (r Range) Pages(off, n, pageSize uint64) []Addr {
	if n == 0 || off+n < n || off+n > r.Size {
		return nil
	}
	first := r.Start.MustAdd(off).AlignDown(pageSize)
	last := r.Start.MustAdd(off + n - 1).AlignDown(pageSize)
	span, _ := first.Distance(last)
	pages := make([]Addr, 0, span/pageSize+1)
	for p := first; ; p = p.MustAdd(pageSize) {
		pages = append(pages, p)
		if p == last {
			break
		}
	}
	return pages
}

// String renders the range as "start+size".
func (r Range) String() string {
	return fmt.Sprintf("%v+%d", r.Start, r.Size)
}
