package gaddr

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAddCarry(t *testing.T) {
	tests := []struct {
		name string
		a    Addr
		n    uint64
		want Addr
		err  bool
	}{
		{"zero plus zero", Zero, 0, Zero, false},
		{"simple", New(0, 5), 7, New(0, 12), false},
		{"carry into hi", New(0, math.MaxUint64), 1, New(1, 0), false},
		{"carry with remainder", New(2, math.MaxUint64), 3, New(3, 2), false},
		{"overflow", Max, 1, Addr{}, true},
		{"max plus zero", Max, 0, Max, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := tt.a.Add(tt.n)
			if (err != nil) != tt.err {
				t.Fatalf("Add err = %v, want err=%v", err, tt.err)
			}
			if err == nil && got != tt.want {
				t.Fatalf("Add = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSubBorrow(t *testing.T) {
	tests := []struct {
		name string
		a    Addr
		n    uint64
		want Addr
		err  bool
	}{
		{"simple", New(0, 12), 7, New(0, 5), false},
		{"borrow from hi", New(1, 0), 1, New(0, math.MaxUint64), false},
		{"underflow", New(0, 3), 4, Addr{}, true},
		{"zero minus zero", Zero, 0, Zero, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := tt.a.Sub(tt.n)
			if (err != nil) != tt.err {
				t.Fatalf("Sub err = %v, want err=%v", err, tt.err)
			}
			if err == nil && got != tt.want {
				t.Fatalf("Sub = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestDistance(t *testing.T) {
	a := New(1, 100)
	b := New(1, 500)
	if d, ok := a.Distance(b); !ok || d != 400 {
		t.Fatalf("Distance = %d,%v; want 400,true", d, ok)
	}
	if _, ok := b.Distance(a); ok {
		t.Fatal("Distance backwards should fail")
	}
	// Distance crossing a hi boundary that still fits in 64 bits.
	c := New(0, math.MaxUint64-1)
	d := New(1, 7)
	if got, ok := c.Distance(d); !ok || got != 9 {
		t.Fatalf("Distance across hi = %d,%v; want 9,true", got, ok)
	}
	// Distance that does not fit in 64 bits.
	if _, ok := Zero.Distance(New(2, 0)); ok {
		t.Fatal("128-bit distance should not fit")
	}
}

func TestCmpOrdering(t *testing.T) {
	ordered := []Addr{
		Zero,
		New(0, 1),
		New(0, math.MaxUint64),
		New(1, 0),
		New(1, 1),
		Max,
	}
	for i := range ordered {
		for j := range ordered {
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got := ordered[i].Cmp(ordered[j]); got != want {
				t.Errorf("Cmp(%v,%v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestAlign(t *testing.T) {
	a := New(3, 0x1fff)
	if got := a.AlignDown(0x1000); got != New(3, 0x1000) {
		t.Fatalf("AlignDown = %v", got)
	}
	up, err := a.AlignUp(0x1000)
	if err != nil || up != New(3, 0x2000) {
		t.Fatalf("AlignUp = %v, %v", up, err)
	}
	aligned := New(3, 0x2000)
	if got, _ := aligned.AlignUp(0x1000); got != aligned {
		t.Fatalf("AlignUp of aligned = %v", got)
	}
	if got := a.Offset(0x1000); got != 0xfff {
		t.Fatalf("Offset = %#x", got)
	}
}

func TestAlignPanicsOnBadAlignment(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two alignment")
		}
	}()
	New(0, 10).AlignDown(3)
}

func TestStringParseRoundTrip(t *testing.T) {
	addrs := []Addr{Zero, New(0, 0x1000), New(0xdeadbeef, 0xcafebabe), Max}
	for _, a := range addrs {
		got, err := Parse(a.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", a.String(), err)
		}
		if got != a {
			t.Fatalf("round trip %v != %v", got, a)
		}
	}
}

func TestParseBareHex(t *testing.T) {
	got, err := Parse("0x1000")
	if err != nil || got != New(0, 0x1000) {
		t.Fatalf("Parse bare hex = %v, %v", got, err)
	}
	if _, err := Parse("zz"); err == nil {
		t.Fatal("Parse should reject garbage")
	}
	if _, err := Parse("zz:00"); err == nil {
		t.Fatal("Parse should reject garbage hi half")
	}
	if _, err := Parse("00:zz"); err == nil {
		t.Fatal("Parse should reject garbage lo half")
	}
}

func TestRangeContains(t *testing.T) {
	r, err := NewRange(New(0, 0x1000), 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		a    Addr
		want bool
	}{
		{New(0, 0xfff), false},
		{New(0, 0x1000), true},
		{New(0, 0x1fff), true},
		{New(0, 0x2000), false},
		{New(1, 0x1800), false},
	}
	for _, tt := range tests {
		if got := r.Contains(tt.a); got != tt.want {
			t.Errorf("Contains(%v) = %v, want %v", tt.a, got, tt.want)
		}
	}
}

func TestRangeValidation(t *testing.T) {
	if _, err := NewRange(Zero, 0); err == nil {
		t.Fatal("empty range should fail")
	}
	if _, err := NewRange(Max, 2); err == nil {
		t.Fatal("wrapping range should fail")
	}
	if _, err := NewRange(Max, 1); err != nil {
		t.Fatalf("1-byte range at top should be fine: %v", err)
	}
}

func TestRangeEnd(t *testing.T) {
	r, _ := NewRange(New(0, 0x1000), 0x1000)
	end, ok := r.End()
	if !ok || end != New(0, 0x2000) {
		t.Fatalf("End = %v,%v", end, ok)
	}
	top, _ := NewRange(Max, 1)
	if _, ok := top.End(); ok {
		t.Fatal("End at top of space should report !ok")
	}
}

func TestRangeOverlapsAndContainsRange(t *testing.T) {
	r, _ := NewRange(New(0, 0x1000), 0x1000)
	cases := []struct {
		q        Range
		overlaps bool
		contains bool
	}{
		{Range{New(0, 0x1000), 0x1000}, true, true},
		{Range{New(0, 0x1800), 0x100}, true, true},
		{Range{New(0, 0x800), 0x801}, true, false},
		{Range{New(0, 0x800), 0x800}, false, false},
		{Range{New(0, 0x2000), 0x100}, false, false},
		{Range{New(0, 0x1fff), 2}, true, false},
	}
	for i, c := range cases {
		if got := r.Overlaps(c.q); got != c.overlaps {
			t.Errorf("case %d: Overlaps(%v) = %v, want %v", i, c.q, got, c.overlaps)
		}
		if got := r.ContainsRange(c.q); got != c.contains {
			t.Errorf("case %d: ContainsRange(%v) = %v, want %v", i, c.q, got, c.contains)
		}
	}
}

func TestRangePages(t *testing.T) {
	r, _ := NewRange(New(0, 0x10000), 0x4000) // 4 pages of 4K
	pages := r.Pages(0, 0x4000, 0x1000)
	if len(pages) != 4 {
		t.Fatalf("Pages full range = %d pages", len(pages))
	}
	pages = r.Pages(0x800, 0x1000, 0x1000) // straddles 2 pages
	if len(pages) != 2 || pages[0] != New(0, 0x10000) || pages[1] != New(0, 0x11000) {
		t.Fatalf("Pages straddle = %v", pages)
	}
	if got := r.Pages(0, 0, 0x1000); got != nil {
		t.Fatalf("empty span should give nil, got %v", got)
	}
	if got := r.Pages(0x3000, 0x2000, 0x1000); got != nil {
		t.Fatalf("escaping span should give nil, got %v", got)
	}
}

func TestRangeOffsetOf(t *testing.T) {
	r, _ := NewRange(New(7, 0x1000), 0x1000)
	if off, ok := r.OffsetOf(New(7, 0x1800)); !ok || off != 0x800 {
		t.Fatalf("OffsetOf = %d,%v", off, ok)
	}
	if _, ok := r.OffsetOf(New(7, 0x800)); ok {
		t.Fatal("OffsetOf outside should fail")
	}
}

// Property: Add then Sub round-trips whenever Add succeeds.
func TestQuickAddSubRoundTrip(t *testing.T) {
	f := func(hi, lo, n uint64) bool {
		a := New(hi, lo)
		sum, err := a.Add(n)
		if err != nil {
			return true // overflow is allowed, nothing to check
		}
		back, err := sum.Sub(n)
		return err == nil && back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Distance(a, a.Add(n)) == n.
func TestQuickDistanceInvertsAdd(t *testing.T) {
	f := func(hi, lo, n uint64) bool {
		a := New(hi, lo)
		sum, err := a.Add(n)
		if err != nil {
			return true
		}
		d, ok := a.Distance(sum)
		return ok && d == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Cmp is antisymmetric and consistent with Less.
func TestQuickCmpAntisymmetric(t *testing.T) {
	f := func(h1, l1, h2, l2 uint64) bool {
		a, b := New(h1, l1), New(h2, l2)
		return a.Cmp(b) == -b.Cmp(a) && (a.Cmp(b) < 0) == a.Less(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: AlignDown(a) <= a < AlignDown(a)+align, and result is aligned.
func TestQuickAlignDown(t *testing.T) {
	f := func(hi, lo uint64, shift uint8) bool {
		align := uint64(1) << (shift % 32)
		a := New(hi, lo)
		d := a.AlignDown(align)
		if d.Offset(align) != 0 {
			return false
		}
		if a.Less(d) {
			return false
		}
		dist, ok := d.Distance(a)
		return ok && dist < align
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: string form round-trips through Parse.
func TestQuickStringRoundTrip(t *testing.T) {
	f := func(hi, lo uint64) bool {
		a := New(hi, lo)
		got, err := Parse(a.String())
		return err == nil && got == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
