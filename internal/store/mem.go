// Package store implements Khazana's node-local storage hierarchy (paper
// §3.4): node-local storage is treated as a cache of global data indexed
// by global addresses, organized into tiers by access speed. The prototype
// matches the paper's two levels — main memory and on-disk — with LRU
// victimization from RAM to disk and an eviction callback so the
// consistency protocol can push dirty data before a page leaves the node.
package store

import (
	"errors"
	"fmt"
	"sync"

	"khazana/internal/gaddr"
)

// Errors returned by stores.
var (
	// ErrFull reports that a store is at capacity and every resident
	// page is pinned.
	ErrFull = errors.New("store: full; all pages pinned")
	// ErrNotPinned reports an Unpin without a matching Pin.
	ErrNotPinned = errors.New("store: page not pinned")
)

// EvictFunc receives pages victimized from a tier. Returning an error
// aborts the eviction (and the Put that triggered it).
type EvictFunc func(page gaddr.Addr, data []byte) error

// MemStore is the main-memory tier: a bounded page cache with LRU
// victimization. Pinned pages (pages under an active lock context) are
// never victimized.
type MemStore struct {
	mu      sync.Mutex
	pages   map[gaddr.Addr]*memPage
	cap     int
	clock   uint64
	onEvict EvictFunc
}

type memPage struct {
	data   []byte
	used   uint64
	pinned int
}

// DefaultMemCapacity is the default number of resident pages.
const DefaultMemCapacity = 4096

// NewMemStore creates a memory tier holding at most capacity pages.
// onEvict (optional) observes victimized pages; capacity <= 0 selects the
// default.
func NewMemStore(capacity int, onEvict EvictFunc) *MemStore {
	if capacity <= 0 {
		capacity = DefaultMemCapacity
	}
	return &MemStore{
		pages:   make(map[gaddr.Addr]*memPage, capacity),
		cap:     capacity,
		onEvict: onEvict,
	}
}

// Get returns a copy of the page's contents.
func (s *MemStore) Get(page gaddr.Addr) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pages[page]
	if !ok {
		return nil, false
	}
	s.clock++
	p.used = s.clock
	out := make([]byte, len(p.data))
	copy(out, p.data)
	return out, true
}

// Put stores a copy of data for the page, victimizing the LRU unpinned
// page if the store is full.
func (s *MemStore) Put(page gaddr.Addr, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.clock++
	if p, ok := s.pages[page]; ok {
		p.data = append(p.data[:0], data...)
		p.used = s.clock
		return nil
	}
	if len(s.pages) >= s.cap {
		if err := s.evictLocked(); err != nil {
			return err
		}
	}
	s.pages[page] = &memPage{data: append([]byte(nil), data...), used: s.clock}
	return nil
}

// evictLocked victimizes the least recently used unpinned page.
func (s *MemStore) evictLocked() error {
	var victim gaddr.Addr
	var vp *memPage
	for page, p := range s.pages {
		if p.pinned > 0 {
			continue
		}
		if vp == nil || p.used < vp.used {
			victim, vp = page, p
		}
	}
	if vp == nil {
		return ErrFull
	}
	if s.onEvict != nil {
		if err := s.onEvict(victim, vp.data); err != nil {
			return fmt.Errorf("store: evict %v: %w", victim, err)
		}
	}
	delete(s.pages, victim)
	return nil
}

// Delete drops the page if present.
func (s *MemStore) Delete(page gaddr.Addr) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.pages, page)
}

// Pin marks the page non-victimizable. Pins nest.
func (s *MemStore) Pin(page gaddr.Addr) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pages[page]
	if !ok {
		return false
	}
	p.pinned++
	return true
}

// Unpin releases one pin.
func (s *MemStore) Unpin(page gaddr.Addr) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pages[page]
	if !ok || p.pinned == 0 {
		return ErrNotPinned
	}
	p.pinned--
	return nil
}

// Contains reports residency without touching LRU state.
func (s *MemStore) Contains(page gaddr.Addr) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.pages[page]
	return ok
}

// Len returns the number of resident pages.
func (s *MemStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pages)
}

// Pages returns the resident page addresses.
func (s *MemStore) Pages() []gaddr.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]gaddr.Addr, 0, len(s.pages))
	for page := range s.pages {
		out = append(out, page)
	}
	return out
}
