// Package store implements Khazana's node-local storage hierarchy (paper
// §3.4): node-local storage is treated as a cache of global data indexed
// by global addresses, organized into tiers by access speed. The prototype
// matches the paper's two levels — main memory and on-disk — with LRU
// victimization from RAM to disk and an eviction callback so the
// consistency protocol can push dirty data before a page leaves the node.
//
// The RAM tier holds refcounted page frames (internal/frame), so a cache
// hit is a Retain rather than an allocation + copy. Frames handed out by
// Get are shared and immutable; a caller that wants to mutate takes an
// exclusive copy-on-write clone via frame.Exclusive and Puts the result
// back.
package store

import (
	"errors"
	"fmt"
	"sync"

	"khazana/internal/frame"
	"khazana/internal/gaddr"
)

// Errors returned by stores.
var (
	// ErrFull reports that a store is at capacity and every resident
	// page is pinned.
	ErrFull = errors.New("store: full; all pages pinned")
	// ErrNotPinned reports an Unpin without a matching Pin.
	ErrNotPinned = errors.New("store: page not pinned")
)

// EvictFunc receives pages victimized from a tier. The frame is borrowed
// for the duration of the call: retain it to keep it longer. Returning an
// error aborts the eviction (and the Put that triggered it).
type EvictFunc func(page gaddr.Addr, f *frame.Frame) error

// MemStore is the main-memory tier: a bounded page cache with LRU
// victimization. Pinned pages (pages under an active lock context) are
// never victimized. Each resident page holds one frame reference.
type MemStore struct {
	mu      sync.Mutex
	pages   map[gaddr.Addr]*memPage
	cap     int
	clock   uint64
	onEvict EvictFunc
	// reclaim, when set, gives back memory held outside the cache proper
	// (old page versions retained for snapshot readers) and returns the
	// number of frames freed. It runs on eviction pressure, before any
	// demand page is victimized, so old versions always evict first. It
	// must not call back into the store.
	reclaim func() int
}

type memPage struct {
	f      *frame.Frame
	used   uint64
	pinned int
	// speculative marks a page installed by read-ahead before any demand
	// touched it: it is victimized first under pressure and dropped
	// outright (not demoted to disk), so a wasted prefetch never costs a
	// demand-fetched page its cache slot. The first Get promotes the page
	// to demand status.
	speculative bool
}

// DefaultMemCapacity is the default number of resident pages.
const DefaultMemCapacity = 4096

// NewMemStore creates a memory tier holding at most capacity pages.
// onEvict (optional) observes victimized pages; capacity <= 0 selects the
// default.
func NewMemStore(capacity int, onEvict EvictFunc) *MemStore {
	if capacity <= 0 {
		capacity = DefaultMemCapacity
	}
	return &MemStore{
		pages:   make(map[gaddr.Addr]*memPage, capacity),
		cap:     capacity,
		onEvict: onEvict,
	}
}

// Get returns the page's frame with a reference the caller must Release.
// The frame is shared: treat its contents as immutable.
func (s *MemStore) Get(page gaddr.Addr) (*frame.Frame, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pages[page]
	if !ok {
		return nil, false
	}
	s.clock++
	p.used = s.clock
	p.speculative = false
	return p.f.Retain(), true
}

// GetCopy returns a private copy of the page's contents, for callers
// that want plain bytes free of the frame lifetime rules.
func (s *MemStore) GetCopy(page gaddr.Addr) ([]byte, bool) {
	f, ok := s.Get(page)
	if !ok {
		return nil, false
	}
	out := append([]byte(nil), f.Bytes()...)
	f.Release()
	return out, true
}

// Put stores the frame for the page, victimizing the LRU unpinned page
// if the store is full. The frame is borrowed: the store takes its own
// reference and the caller keeps (and still owns) its reference.
func (s *MemStore) Put(page gaddr.Addr, f *frame.Frame) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.clock++
	if p, ok := s.pages[page]; ok {
		old := p.f
		//khazana:frame-owner the resident memPage holds the store's reference
		p.f = f.Retain()
		p.used = s.clock
		old.Release()
		return nil
	}
	if len(s.pages) >= s.cap {
		if err := s.evictLocked(); err != nil {
			return err
		}
	}
	//khazana:frame-owner the resident memPage holds the store's reference
	s.pages[page] = &memPage{f: f.Retain(), used: s.clock}
	return nil
}

// PutBytes stores a copy of data for the page (convenience wrapper over
// Put for callers holding plain bytes).
func (s *MemStore) PutBytes(page gaddr.Addr, data []byte) error {
	f := frame.Copy(data)
	err := s.Put(page, f)
	f.Release()
	return err
}

// PutSpeculative stores a read-ahead frame without ever costing a demand
// page its slot: a full store may only evict another speculative page to
// make room, and when none exists the incoming frame is dropped (returns
// false). Refreshing an already-resident page keeps its current demand /
// speculative status. The frame is borrowed, as in Put.
func (s *MemStore) PutSpeculative(page gaddr.Addr, f *frame.Frame) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.clock++
	if p, ok := s.pages[page]; ok {
		old := p.f
		//khazana:frame-owner the resident memPage holds the store's reference
		p.f = f.Retain()
		p.used = s.clock
		old.Release()
		return true
	}
	if len(s.pages) >= s.cap {
		if !s.evictSpeculativeLocked() {
			return false
		}
	}
	//khazana:frame-owner the resident memPage holds the store's reference
	s.pages[page] = &memPage{f: f.Retain(), used: s.clock, speculative: true}
	return true
}

// SetReclaimer installs the version-chain give-back hook (see the
// reclaim field). Call before the store sees traffic.
func (s *MemStore) SetReclaimer(fn func() int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reclaim = fn
}

// evictLocked victimizes the least recently used unpinned page,
// preferring speculative pages (unconsumed read-ahead) over demand
// pages. Before a demand page is demoted, retained old page versions are
// reclaimed — they are the cheapest memory to give back and must never
// cost a demand page its slot.
func (s *MemStore) evictLocked() error {
	if s.evictSpeculativeLocked() {
		return nil
	}
	if s.reclaim != nil {
		s.reclaim()
	}
	var victim gaddr.Addr
	var vp *memPage
	for page, p := range s.pages {
		if p.pinned > 0 {
			continue
		}
		if vp == nil || p.used < vp.used {
			victim, vp = page, p
		}
	}
	if vp == nil {
		return ErrFull
	}
	if s.onEvict != nil {
		if err := s.onEvict(victim, vp.f); err != nil {
			return fmt.Errorf("store: evict %v: %w", victim, err)
		}
	}
	delete(s.pages, victim)
	vp.f.Release()
	return nil
}

// evictSpeculativeLocked drops the least recently used unpinned
// speculative page, if any. Speculative pages are clean by construction
// (never written, never the only copy), so they are discarded without the
// onEvict demotion a demand page gets.
func (s *MemStore) evictSpeculativeLocked() bool {
	var victim gaddr.Addr
	var vp *memPage
	for page, p := range s.pages {
		if !p.speculative || p.pinned > 0 {
			continue
		}
		if vp == nil || p.used < vp.used {
			victim, vp = page, p
		}
	}
	if vp == nil {
		return false
	}
	delete(s.pages, victim)
	vp.f.Release()
	return true
}

// Delete drops the page if present.
func (s *MemStore) Delete(page gaddr.Addr) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pages[page]
	if !ok {
		return
	}
	delete(s.pages, page)
	p.f.Release()
}

// DeleteUnpinned drops the page unless a lock context has it pinned, and
// reports whether the page is gone. A pinned page survives so the holder
// keeps reading its grant-time snapshot; the caller is expected to mark
// the page invalid in the directory so the next acquire refetches.
func (s *MemStore) DeleteUnpinned(page gaddr.Addr) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pages[page]
	if !ok {
		return true
	}
	if p.pinned > 0 {
		return false
	}
	delete(s.pages, page)
	p.f.Release()
	return true
}

// Speculative reports whether the page is resident as unconsumed
// read-ahead (test and diagnostics accessor).
func (s *MemStore) Speculative(page gaddr.Addr) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pages[page]
	return ok && p.speculative
}

// Pin marks the page non-victimizable. Pins nest.
func (s *MemStore) Pin(page gaddr.Addr) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pages[page]
	if !ok {
		return false
	}
	p.pinned++
	return true
}

// Unpin releases one pin.
func (s *MemStore) Unpin(page gaddr.Addr) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pages[page]
	if !ok || p.pinned == 0 {
		return ErrNotPinned
	}
	p.pinned--
	return nil
}

// Contains reports residency without touching LRU state.
func (s *MemStore) Contains(page gaddr.Addr) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.pages[page]
	return ok
}

// Len returns the number of resident pages.
func (s *MemStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pages)
}

// Pages returns the resident page addresses.
func (s *MemStore) Pages() []gaddr.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]gaddr.Addr, 0, len(s.pages))
	for page := range s.pages {
		out = append(out, page)
	}
	return out
}
