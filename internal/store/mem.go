// Package store implements Khazana's node-local storage hierarchy (paper
// §3.4): node-local storage is treated as a cache of global data indexed
// by global addresses, organized into tiers by access speed. The prototype
// matches the paper's two levels — main memory and on-disk — with LRU
// victimization from RAM to disk and an eviction callback so the
// consistency protocol can push dirty data before a page leaves the node.
//
// The RAM tier holds refcounted page frames (internal/frame), so a cache
// hit is a Retain rather than an allocation + copy. Frames handed out by
// Get are shared and immutable; a caller that wants to mutate takes an
// exclusive copy-on-write clone via frame.Exclusive and Puts the result
// back.
package store

import (
	"errors"
	"fmt"
	"sync"

	"khazana/internal/frame"
	"khazana/internal/gaddr"
)

// Errors returned by stores.
var (
	// ErrFull reports that a store is at capacity and every resident
	// page is pinned.
	ErrFull = errors.New("store: full; all pages pinned")
	// ErrNotPinned reports an Unpin without a matching Pin.
	ErrNotPinned = errors.New("store: page not pinned")
)

// EvictFunc receives pages victimized from a tier. The frame is borrowed
// for the duration of the call: retain it to keep it longer. Returning an
// error aborts the eviction (and the Put that triggered it).
type EvictFunc func(page gaddr.Addr, f *frame.Frame) error

// MemStore is the main-memory tier: a bounded page cache with LRU
// victimization. Pinned pages (pages under an active lock context) are
// never victimized. Each resident page holds one frame reference.
type MemStore struct {
	mu      sync.Mutex
	pages   map[gaddr.Addr]*memPage
	cap     int
	clock   uint64
	onEvict EvictFunc
}

type memPage struct {
	f      *frame.Frame
	used   uint64
	pinned int
}

// DefaultMemCapacity is the default number of resident pages.
const DefaultMemCapacity = 4096

// NewMemStore creates a memory tier holding at most capacity pages.
// onEvict (optional) observes victimized pages; capacity <= 0 selects the
// default.
func NewMemStore(capacity int, onEvict EvictFunc) *MemStore {
	if capacity <= 0 {
		capacity = DefaultMemCapacity
	}
	return &MemStore{
		pages:   make(map[gaddr.Addr]*memPage, capacity),
		cap:     capacity,
		onEvict: onEvict,
	}
}

// Get returns the page's frame with a reference the caller must Release.
// The frame is shared: treat its contents as immutable.
func (s *MemStore) Get(page gaddr.Addr) (*frame.Frame, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pages[page]
	if !ok {
		return nil, false
	}
	s.clock++
	p.used = s.clock
	return p.f.Retain(), true
}

// GetCopy returns a private copy of the page's contents, for callers
// that want plain bytes free of the frame lifetime rules.
func (s *MemStore) GetCopy(page gaddr.Addr) ([]byte, bool) {
	f, ok := s.Get(page)
	if !ok {
		return nil, false
	}
	out := append([]byte(nil), f.Bytes()...)
	f.Release()
	return out, true
}

// Put stores the frame for the page, victimizing the LRU unpinned page
// if the store is full. The frame is borrowed: the store takes its own
// reference and the caller keeps (and still owns) its reference.
func (s *MemStore) Put(page gaddr.Addr, f *frame.Frame) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.clock++
	if p, ok := s.pages[page]; ok {
		old := p.f
		//khazana:frame-owner the resident memPage holds the store's reference
		p.f = f.Retain()
		p.used = s.clock
		old.Release()
		return nil
	}
	if len(s.pages) >= s.cap {
		if err := s.evictLocked(); err != nil {
			return err
		}
	}
	//khazana:frame-owner the resident memPage holds the store's reference
	s.pages[page] = &memPage{f: f.Retain(), used: s.clock}
	return nil
}

// PutBytes stores a copy of data for the page (convenience wrapper over
// Put for callers holding plain bytes).
func (s *MemStore) PutBytes(page gaddr.Addr, data []byte) error {
	f := frame.Copy(data)
	err := s.Put(page, f)
	f.Release()
	return err
}

// evictLocked victimizes the least recently used unpinned page.
func (s *MemStore) evictLocked() error {
	var victim gaddr.Addr
	var vp *memPage
	for page, p := range s.pages {
		if p.pinned > 0 {
			continue
		}
		if vp == nil || p.used < vp.used {
			victim, vp = page, p
		}
	}
	if vp == nil {
		return ErrFull
	}
	if s.onEvict != nil {
		if err := s.onEvict(victim, vp.f); err != nil {
			return fmt.Errorf("store: evict %v: %w", victim, err)
		}
	}
	delete(s.pages, victim)
	vp.f.Release()
	return nil
}

// Delete drops the page if present.
func (s *MemStore) Delete(page gaddr.Addr) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pages[page]
	if !ok {
		return
	}
	delete(s.pages, page)
	p.f.Release()
}

// Pin marks the page non-victimizable. Pins nest.
func (s *MemStore) Pin(page gaddr.Addr) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pages[page]
	if !ok {
		return false
	}
	p.pinned++
	return true
}

// Unpin releases one pin.
func (s *MemStore) Unpin(page gaddr.Addr) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pages[page]
	if !ok || p.pinned == 0 {
		return ErrNotPinned
	}
	p.pinned--
	return nil
}

// Contains reports residency without touching LRU state.
func (s *MemStore) Contains(page gaddr.Addr) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.pages[page]
	return ok
}

// Len returns the number of resident pages.
func (s *MemStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pages)
}

// Pages returns the resident page addresses.
func (s *MemStore) Pages() []gaddr.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]gaddr.Addr, 0, len(s.pages))
	for page := range s.pages {
		out = append(out, page)
	}
	return out
}
