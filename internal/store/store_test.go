package store

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"khazana/internal/frame"
	"khazana/internal/gaddr"
)

func page(n uint64) gaddr.Addr { return gaddr.FromUint64(n * 0x1000) }

func TestMemPutGet(t *testing.T) {
	s := NewMemStore(10, nil)
	if err := s.PutBytes(page(1), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, ok := s.GetCopy(page(1))
	if !ok || string(got) != "hello" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if _, ok := s.GetCopy(page(2)); ok {
		t.Fatal("absent page found")
	}
	// Overwrite.
	if err := s.PutBytes(page(1), []byte("world")); err != nil {
		t.Fatal(err)
	}
	got, _ = s.GetCopy(page(1))
	if string(got) != "world" {
		t.Fatalf("after overwrite = %q", got)
	}
}

func TestMemGetSharesFrame(t *testing.T) {
	s := NewMemStore(10, nil)
	f := frame.Copy([]byte("data"))
	if err := s.Put(page(1), f); err != nil {
		t.Fatal(err)
	}
	// Put borrows: the caller's reference plus the store's.
	if f.Refs() != 2 {
		t.Fatalf("after Put Refs = %d, want 2", f.Refs())
	}
	g, ok := s.Get(page(1))
	if !ok {
		t.Fatal("resident page not found")
	}
	if g != f {
		t.Fatal("cache hit did not share the stored frame")
	}
	if g.Refs() != 3 {
		t.Fatalf("after Get Refs = %d, want 3", g.Refs())
	}
	g.Release()
	f.Release()
	// A caller that wants private bytes copies explicitly.
	c, _ := s.GetCopy(page(1))
	c[0] = 'X'
	again, _ := s.GetCopy(page(1))
	if string(again) != "data" {
		t.Fatal("GetCopy aliased the store's frame")
	}
}

func TestMemPutReleasesOverwrittenFrame(t *testing.T) {
	s := NewMemStore(10, nil)
	f1 := frame.Copy([]byte("one"))
	_ = s.Put(page(1), f1)
	f2 := frame.Copy([]byte("two"))
	_ = s.Put(page(1), f2)
	if f1.Refs() != 1 {
		t.Fatalf("overwritten frame Refs = %d, want 1 (caller only)", f1.Refs())
	}
	f1.Release()
	f2.Release()
	if got, _ := s.GetCopy(page(1)); string(got) != "two" {
		t.Fatalf("after overwrite = %q", got)
	}
}

func TestMemDeleteReleasesFrame(t *testing.T) {
	s := NewMemStore(10, nil)
	f := frame.Copy([]byte{1})
	_ = s.Put(page(1), f)
	s.Delete(page(1))
	if f.Refs() != 1 {
		t.Fatalf("after Delete Refs = %d, want 1 (caller only)", f.Refs())
	}
	f.Release()
}

func TestMemLRUEviction(t *testing.T) {
	var evicted []gaddr.Addr
	s := NewMemStore(3, func(p gaddr.Addr, _ *frame.Frame) error {
		evicted = append(evicted, p)
		return nil
	})
	for i := uint64(1); i <= 3; i++ {
		_ = s.PutBytes(page(i), []byte{byte(i)})
	}
	// Touch page 1 so page 2 is LRU.
	if f, ok := s.Get(page(1)); ok {
		f.Release()
	}
	if err := s.PutBytes(page(4), []byte{4}); err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 || evicted[0] != page(2) {
		t.Fatalf("evicted = %v, want [page 2]", evicted)
	}
	if s.Contains(page(2)) {
		t.Fatal("victim still resident")
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestMemPinPreventsEviction(t *testing.T) {
	s := NewMemStore(2, nil)
	_ = s.PutBytes(page(1), []byte{1})
	_ = s.PutBytes(page(2), []byte{2})
	if !s.Pin(page(1)) || !s.Pin(page(2)) {
		t.Fatal("pin failed")
	}
	if err := s.PutBytes(page(3), []byte{3}); !errors.Is(err, ErrFull) {
		t.Fatalf("err = %v, want ErrFull", err)
	}
	if err := s.Unpin(page(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutBytes(page(3), []byte{3}); err != nil {
		t.Fatalf("after unpin: %v", err)
	}
	if s.Contains(page(1)) {
		t.Fatal("unpinned page should have been victimized")
	}
	if !s.Contains(page(2)) {
		t.Fatal("pinned page was victimized")
	}
}

func TestMemPinNesting(t *testing.T) {
	s := NewMemStore(1, nil)
	_ = s.PutBytes(page(1), []byte{1})
	s.Pin(page(1))
	s.Pin(page(1))
	_ = s.Unpin(page(1))
	// Still pinned once.
	if err := s.PutBytes(page(2), nil); !errors.Is(err, ErrFull) {
		t.Fatalf("err = %v", err)
	}
	_ = s.Unpin(page(1))
	if err := s.Unpin(page(1)); !errors.Is(err, ErrNotPinned) {
		t.Fatalf("extra unpin err = %v", err)
	}
	if s.Pin(page(9)) {
		t.Fatal("pin of absent page should fail")
	}
}

func TestMemEvictCallbackErrorAborts(t *testing.T) {
	s := NewMemStore(1, func(gaddr.Addr, *frame.Frame) error {
		return fmt.Errorf("push failed")
	})
	_ = s.PutBytes(page(1), []byte{1})
	if err := s.PutBytes(page(2), []byte{2}); err == nil {
		t.Fatal("Put should fail when eviction callback fails")
	}
	if !s.Contains(page(1)) {
		t.Fatal("page 1 should survive aborted eviction")
	}
}

func TestMemDelete(t *testing.T) {
	s := NewMemStore(10, nil)
	_ = s.PutBytes(page(1), []byte{1})
	s.Delete(page(1))
	if s.Contains(page(1)) {
		t.Fatal("deleted page still resident")
	}
	s.Delete(page(2)) // no-op
}

func TestDiskPutGetDelete(t *testing.T) {
	s, err := NewDiskStore(t.TempDir(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutBytes(page(1), []byte("persistent")); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(page(1))
	if !ok || string(got.Bytes()) != "persistent" {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	got.Release()
	if _, ok := s.Get(page(2)); ok {
		t.Fatal("absent page found")
	}
	s.Delete(page(1))
	if s.Contains(page(1)) {
		t.Fatal("deleted page still resident")
	}
}

func TestDiskSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewDiskStore(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = s1.PutBytes(page(7), []byte("durable"))
	_ = s1.PutBytes(gaddr.New(5, 0x3000), []byte("high half"))

	s2, err := NewDiskStore(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 {
		t.Fatalf("reopened Len = %d", s2.Len())
	}
	got, ok := s2.Get(page(7))
	if !ok || string(got.Bytes()) != "durable" {
		t.Fatalf("reopened Get = %v, %v", got, ok)
	}
	got.Release()
	got, ok = s2.Get(gaddr.New(5, 0x3000))
	if !ok || string(got.Bytes()) != "high half" {
		t.Fatalf("reopened high Get = %v, %v", got, ok)
	}
	got.Release()
}

func TestDiskBoundedEviction(t *testing.T) {
	var evicted []gaddr.Addr
	s, err := NewDiskStore(t.TempDir(), 2, func(p gaddr.Addr, _ *frame.Frame) error {
		evicted = append(evicted, p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = s.PutBytes(page(1), []byte{1})
	_ = s.PutBytes(page(2), []byte{2})
	if f, ok := s.Get(page(1)); ok { // page 2 becomes LRU
		f.Release()
	}
	if err := s.PutBytes(page(3), []byte{3}); err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 || evicted[0] != page(2) {
		t.Fatalf("evicted = %v", evicted)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestDiskEvictionCallbackSeesData(t *testing.T) {
	var got []byte
	s, err := NewDiskStore(t.TempDir(), 1, func(_ gaddr.Addr, f *frame.Frame) error {
		got = append([]byte(nil), f.Bytes()...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = s.PutBytes(page(1), []byte("precious"))
	_ = s.PutBytes(page(2), []byte{2})
	if string(got) != "precious" {
		t.Fatalf("callback data = %q", got)
	}
}

func TestTieredPromoteDemote(t *testing.T) {
	tiered, err := NewTiered(Config{MemPages: 2, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	_ = tiered.PutBytes(page(1), []byte{1})
	_ = tiered.PutBytes(page(2), []byte{2})
	// Page 1 is LRU; putting page 3 demotes it to disk.
	if err := tiered.PutBytes(page(3), []byte{3}); err != nil {
		t.Fatal(err)
	}
	if tiered.Mem().Contains(page(1)) {
		t.Fatal("page 1 should have left RAM")
	}
	if !tiered.Disk().Contains(page(1)) {
		t.Fatal("page 1 should be on disk")
	}
	// Get promotes it back.
	got, ok := tiered.Get(page(1))
	if !ok || got.Bytes()[0] != 1 {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	got.Release()
	if !tiered.Mem().Contains(page(1)) {
		t.Fatal("page 1 should be promoted to RAM")
	}
}

func TestTieredFlush(t *testing.T) {
	tiered, err := NewTiered(Config{MemPages: 4, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	_ = tiered.PutBytes(page(1), []byte("flushed"))
	if err := tiered.Flush(page(1)); err != nil {
		t.Fatal(err)
	}
	if !tiered.Disk().Contains(page(1)) {
		t.Fatal("flush did not reach disk")
	}
	if err := tiered.Flush(page(9)); err == nil {
		t.Fatal("flushing absent page should fail")
	}
}

func TestTieredDelete(t *testing.T) {
	tiered, err := NewTiered(Config{MemPages: 4, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	_ = tiered.PutBytes(page(1), []byte{1})
	_ = tiered.Flush(page(1))
	tiered.Delete(page(1))
	if tiered.Contains(page(1)) {
		t.Fatal("deleted page still resident")
	}
	if _, ok := tiered.Get(page(1)); ok {
		t.Fatal("deleted page readable")
	}
}

func TestTieredDiskEvictionCallback(t *testing.T) {
	var lost []gaddr.Addr
	tiered, err := NewTiered(Config{
		MemPages:  1,
		DiskPages: 1,
		Dir:       t.TempDir(),
		OnDiskEvict: func(p gaddr.Addr, _ *frame.Frame) error {
			lost = append(lost, p)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = tiered.PutBytes(page(1), []byte{1})
	_ = tiered.PutBytes(page(2), []byte{2}) // 1 demoted to disk
	_ = tiered.PutBytes(page(3), []byte{3}) // 2 demoted; disk full; 1 leaves node
	if len(lost) != 1 || lost[0] != page(1) {
		t.Fatalf("lost = %v", lost)
	}
}

func TestTieredLen(t *testing.T) {
	tiered, err := NewTiered(Config{MemPages: 2, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	_ = tiered.PutBytes(page(1), []byte{1})
	_ = tiered.Flush(page(1)) // resident in both tiers, counts once
	_ = tiered.PutBytes(page(2), []byte{2})
	if got := tiered.Len(); got != 2 {
		t.Fatalf("Len = %d", got)
	}
}

// Property: a sequence of puts on a large-enough store is fully readable.
func TestQuickMemStoreFidelity(t *testing.T) {
	f := func(writes []struct {
		Page uint8
		Data []byte
	}) bool {
		s := NewMemStore(300, nil)
		expect := make(map[gaddr.Addr][]byte)
		for _, w := range writes {
			p := page(uint64(w.Page))
			if err := s.PutBytes(p, w.Data); err != nil {
				return false
			}
			expect[p] = w.Data
		}
		for p, want := range expect {
			got, ok := s.GetCopy(p)
			if !ok || string(got) != string(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: disk store round-trips arbitrary data.
func TestQuickDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDiskStore(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := func(n uint16, data []byte) bool {
		p := page(uint64(n))
		if err := s.PutBytes(p, data); err != nil {
			return false
		}
		got, ok := s.Get(p)
		if !ok {
			return false
		}
		match := string(got.Bytes()) == string(data)
		got.Release()
		return match
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMemReclaimerRunsBeforeDemandEviction(t *testing.T) {
	calls := 0
	s := NewMemStore(2, nil)
	s.SetReclaimer(func() int { calls++; return 1 })
	// Filling to capacity triggers no pressure.
	if err := s.PutBytes(page(1), []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutBytes(page(2), []byte("b")); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("reclaimer ran %d times with no pressure", calls)
	}
	// Overflow: the reclaimer must run before the LRU demand eviction.
	if err := s.PutBytes(page(3), []byte("c")); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("reclaimer ran %d times under pressure, want 1", calls)
	}
	// Speculative pressure is absorbed by dropping speculative pages, not
	// by the reclaimer.
	f := frame.Copy([]byte("s"))
	s.PutSpeculative(page(4), f)
	f.Release()
	if calls != 1 {
		t.Fatalf("reclaimer ran %d times after speculative churn, want 1", calls)
	}
}
