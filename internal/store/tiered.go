package store

import (
	"fmt"

	"khazana/internal/frame"
	"khazana/internal/gaddr"
	"khazana/internal/telemetry"
)

// Tiered composes the memory and disk tiers into the storage hierarchy of
// paper §3.4: gets promote pages from disk to RAM, puts land in RAM, and
// RAM overflow victimizes pages down to disk. When the disk tier itself
// victimizes a page, the configured EvictFunc (wired to the consistency
// protocol by the daemon) runs first so dirty data can be pushed to remote
// nodes.
type Tiered struct {
	mem  *MemStore
	disk *DiskStore
	// memMisses counts reads that fell through the RAM tier; nil (the
	// default) records nothing. Only the miss path touches it, so RAM
	// hits stay counter-free.
	memMisses *telemetry.Counter
}

// Config sizes a tiered store.
type Config struct {
	// MemPages bounds the RAM tier (0 = default).
	MemPages int
	// DiskPages bounds the disk tier (0 = unbounded).
	DiskPages int
	// Dir is the disk tier's directory.
	Dir string
	// OnDiskEvict runs before a page leaves the node entirely.
	OnDiskEvict EvictFunc
}

// NewTiered builds the two-level hierarchy.
func NewTiered(cfg Config) (*Tiered, error) {
	disk, err := NewDiskStore(cfg.Dir, cfg.DiskPages, cfg.OnDiskEvict)
	if err != nil {
		return nil, err
	}
	t := &Tiered{disk: disk}
	// RAM victimization demotes to disk.
	t.mem = NewMemStore(cfg.MemPages, func(page gaddr.Addr, f *frame.Frame) error {
		return t.disk.Put(page, f)
	})
	return t, nil
}

// SetMissCounter installs the RAM-tier miss counter. Call before the
// store sees traffic; a nil counter (or never calling) disables counting.
func (t *Tiered) SetMissCounter(c *telemetry.Counter) { t.memMisses = c }

// SetReclaimer installs the RAM tier's version-chain give-back hook: it
// runs on eviction pressure, before any demand page is demoted, and
// returns the number of old-version frames it freed.
func (t *Tiered) SetReclaimer(fn func() int) { t.mem.SetReclaimer(fn) }

// Get returns the page's frame (caller must Release), promoting
// disk-resident pages to RAM. The frame is shared: treat its contents as
// immutable.
func (t *Tiered) Get(page gaddr.Addr) (*frame.Frame, bool) {
	if f, ok := t.mem.Get(page); ok {
		return f, true
	}
	t.memMisses.Add(1)
	f, ok := t.disk.Get(page)
	if !ok {
		return nil, false
	}
	// Promote; a failure to promote is not fatal — the data is valid.
	//khazana:ignore-err promotion to RAM is a cache optimization; the disk copy remains authoritative
	_ = t.mem.Put(page, f)
	return f, true
}

// GetCopy returns a private copy of the page's contents.
func (t *Tiered) GetCopy(page gaddr.Addr) ([]byte, bool) {
	f, ok := t.Get(page)
	if !ok {
		return nil, false
	}
	out := append([]byte(nil), f.Bytes()...)
	f.Release()
	return out, true
}

// Put stores the page's frame in RAM (victimizing to disk as needed).
// The frame is borrowed: the RAM tier takes its own reference.
func (t *Tiered) Put(page gaddr.Addr, f *frame.Frame) error {
	return t.mem.Put(page, f)
}

// PutBytes stores a copy of data for the page.
func (t *Tiered) PutBytes(page gaddr.Addr, data []byte) error {
	return t.mem.PutBytes(page, data)
}

// PutSpeculative stores a read-ahead frame in RAM on an evict-last basis:
// it may displace other speculative pages but never a demand page, and
// reports whether the frame was kept. Speculative pages live only in the
// RAM tier — they are re-fetchable by definition, so they are never
// demoted to disk.
func (t *Tiered) PutSpeculative(page gaddr.Addr, f *frame.Frame) bool {
	return t.mem.PutSpeculative(page, f)
}

// Flush forces the page to the persistent tier (used for locally homed
// pages whose directory information must survive restarts, §3.4).
func (t *Tiered) Flush(page gaddr.Addr) error {
	f, ok := t.mem.Get(page)
	if !ok {
		if t.disk.Contains(page) {
			return nil
		}
		return fmt.Errorf("store: flush %v: not resident", page)
	}
	err := t.disk.Put(page, f)
	f.Release()
	return err
}

// FlushAll forces every RAM-resident page to the persistent tier, used
// when a daemon shuts down cleanly so its state survives restart.
func (t *Tiered) FlushAll() error {
	for _, page := range t.mem.Pages() {
		f, ok := t.mem.Get(page)
		if !ok {
			continue
		}
		err := t.disk.Put(page, f)
		f.Release()
		if err != nil {
			return err
		}
	}
	return nil
}

// Delete removes the page from both tiers.
func (t *Tiered) Delete(page gaddr.Addr) {
	t.mem.Delete(page)
	t.disk.Delete(page)
}

// Discard removes the page from both tiers unless a lock context has the
// RAM copy pinned, in which case the RAM copy survives (the holder keeps
// its grant-time snapshot) while the disk copy still goes. Invalidation
// uses this so a speculative consumer racing a writer reads stale-but-real
// bytes, never zeros; the directory's invalid mark forces a refetch on the
// next acquire.
func (t *Tiered) Discard(page gaddr.Addr) {
	t.mem.DeleteUnpinned(page)
	t.disk.Delete(page)
}

// Contains reports residency in either tier.
func (t *Tiered) Contains(page gaddr.Addr) bool {
	return t.mem.Contains(page) || t.disk.Contains(page)
}

// Pin protects a page from RAM victimization while locked.
func (t *Tiered) Pin(page gaddr.Addr) bool { return t.mem.Pin(page) }

// Unpin releases a pin.
func (t *Tiered) Unpin(page gaddr.Addr) error { return t.mem.Unpin(page) }

// Mem exposes the RAM tier for inspection.
func (t *Tiered) Mem() *MemStore { return t.mem }

// Disk exposes the disk tier for inspection.
func (t *Tiered) Disk() *DiskStore { return t.disk }

// Len returns the total number of distinct resident pages.
func (t *Tiered) Len() int {
	seen := make(map[gaddr.Addr]struct{})
	for _, p := range t.mem.Pages() {
		seen[p] = struct{}{}
	}
	for _, p := range t.disk.Pages() {
		seen[p] = struct{}{}
	}
	return len(seen)
}
