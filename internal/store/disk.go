package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"khazana/internal/frame"
	"khazana/internal/gaddr"
)

// DiskStore is the persistent tier: one file per page under a directory,
// named by the page's global address. It provides the "backing store for
// Khazana" (paper §3.4) — raw storage for pages without knowledge of
// region boundaries or semantics.
type DiskStore struct {
	mu    sync.Mutex
	dir   string
	index map[gaddr.Addr]uint64 // resident pages -> last-use clock
	clock uint64
	cap   int // 0 = unbounded
	// onEvict observes pages victimized when the tier is bounded; the
	// paper requires the disk cache to invoke the consistency protocol
	// before victimizing a page (§3.4).
	onEvict EvictFunc
}

// NewDiskStore opens (creating if needed) a disk tier rooted at dir.
// capacity bounds resident pages (0 = unbounded).
func NewDiskStore(dir string, capacity int, onEvict EvictFunc) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create %s: %w", dir, err)
	}
	s := &DiskStore{
		dir:     dir,
		index:   make(map[gaddr.Addr]uint64),
		cap:     capacity,
		onEvict: onEvict,
	}
	if err := s.loadIndex(); err != nil {
		return nil, err
	}
	return s, nil
}

// loadIndex rebuilds the resident-page index from directory contents,
// recovering persistent state after a restart.
func (s *DiskStore) loadIndex() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: scan %s: %w", s.dir, err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".page") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".page")
		a, err := gaddr.Parse(name)
		if err != nil {
			continue // foreign file; ignore
		}
		s.clock++
		s.index[a] = s.clock
	}
	return nil
}

func (s *DiskStore) path(page gaddr.Addr) string {
	return filepath.Join(s.dir, page.String()+".page")
}

// Get reads a page from disk into a pooled frame. The caller owns the
// returned frame (one reference) and must Release it.
func (s *DiskStore) Get(page gaddr.Addr) (*frame.Frame, bool) {
	s.mu.Lock()
	if _, ok := s.index[page]; !ok {
		s.mu.Unlock()
		return nil, false
	}
	s.clock++
	s.index[page] = s.clock
	s.mu.Unlock()
	f, err := s.readFrame(page)
	if err != nil {
		return nil, false
	}
	return f, true
}

// readFrame reads the page file into a pooled frame sized to the file.
func (s *DiskStore) readFrame(page gaddr.Addr) (*frame.Frame, error) {
	fh, err := os.Open(s.path(page))
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	st, err := fh.Stat()
	if err != nil {
		return nil, err
	}
	f := frame.Alloc(int(st.Size()))
	if _, err := io.ReadFull(fh, f.Bytes()); err != nil {
		f.Release()
		return nil, err
	}
	return f, nil
}

// Put writes the frame's contents to disk, victimizing the LRU page when
// bounded. The frame is borrowed for the duration of the call.
func (s *DiskStore) Put(page gaddr.Addr, f *frame.Frame) error {
	return s.PutBytes(page, f.Bytes())
}

// PutBytes writes a page to disk, victimizing the LRU page when bounded.
func (s *DiskStore) PutBytes(page gaddr.Addr, data []byte) error {
	s.mu.Lock()
	_, resident := s.index[page]
	if !resident && s.cap > 0 && len(s.index) >= s.cap {
		//khazana:block-ok eviction reads the victim page back under s.mu before dropping it; disk I/O under the store's own mutex is the disk tier's contract
		if err := s.evictLocked(); err != nil {
			s.mu.Unlock()
			return err
		}
	}
	s.clock++
	s.index[page] = s.clock
	s.mu.Unlock()

	tmp := s.path(page) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("store: write %v: %w", page, err)
	}
	if err := os.Rename(tmp, s.path(page)); err != nil {
		return fmt.Errorf("store: commit %v: %w", page, err)
	}
	return nil
}

// evictLocked victimizes the least recently used page. The caller holds
// the mutex.
func (s *DiskStore) evictLocked() error {
	var victim gaddr.Addr
	var oldest uint64
	found := false
	for page, used := range s.index {
		if !found || used < oldest {
			victim, oldest, found = page, used, true
		}
	}
	if !found {
		return ErrFull
	}
	if s.onEvict != nil {
		f, err := s.readFrame(victim)
		if err != nil {
			return fmt.Errorf("store: read victim %v: %w", victim, err)
		}
		err = s.onEvict(victim, f)
		f.Release()
		if err != nil {
			return fmt.Errorf("store: evict %v: %w", victim, err)
		}
	}
	delete(s.index, victim)
	return os.Remove(s.path(victim))
}

// Delete removes a page from disk.
func (s *DiskStore) Delete(page gaddr.Addr) {
	s.mu.Lock()
	_, ok := s.index[page]
	delete(s.index, page)
	s.mu.Unlock()
	if ok {
		_ = os.Remove(s.path(page))
	}
}

// Contains reports residency.
func (s *DiskStore) Contains(page gaddr.Addr) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[page]
	return ok
}

// Len returns the number of resident pages.
func (s *DiskStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Pages returns the resident page addresses.
func (s *DiskStore) Pages() []gaddr.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]gaddr.Addr, 0, len(s.index))
	for page := range s.index {
		out = append(out, page)
	}
	return out
}
