package experiments

import (
	"context"
	"fmt"
	"time"

	"khazana"
)

// E12Migration exercises the region-migration mechanism behind the
// "resource- and load-aware migration and replication policies" the paper
// lists as future work (§7). A client hammers a region homed on a distant
// node; migrating the region to the client's node turns every lock
// round-trip into a local operation.
func E12Migration(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:        "E12",
		Title:     "§7 (extension) — migrating a region to its load: per-op latency before/after",
		Predicted: "post-migration operations run at local speed (several times faster); data and attributes survive the move; stale clients recover automatically",
	}
	c, err := newCluster(cfg, 3)
	if err != nil {
		return res, err
	}
	defer c.Close()
	ctx := context.Background()

	start, err := mkRegion(ctx, c.Node(1), 4096, khazana.Attrs{})
	if err != nil {
		return res, err
	}
	if err := writeOnce(ctx, c.Node(3), start, []byte("follows the load")); err != nil {
		return res, err
	}
	measure := func() (time.Duration, error) {
		const ops = 10
		t0 := time.Now()
		for i := 0; i < ops; i++ {
			if _, err := readOnce(ctx, c.Node(3), start, 64); err != nil {
				return 0, err
			}
		}
		return time.Since(t0) / ops, nil
	}
	before, err := measure()
	if err != nil {
		return res, err
	}
	migrateDur, err := timeOp(func() error {
		return c.Node(3).MigrateRegion(ctx, start, 3, "bench")
	})
	if err != nil {
		return res, fmt.Errorf("migrate: %w", err)
	}
	after, err := measure()
	if err != nil {
		return res, err
	}
	// A client with a pre-migration descriptor (node 2 resolved it
	// before the move? Resolve it now — it gets the new home; so force a
	// stale one instead).
	staleOK := false
	d, err := c.Node(2).GetAttr(ctx, start)
	if err != nil {
		return res, err
	}
	stale := d.Clone()
	stale.Home = []khazana.NodeID{1} // pre-migration home
	stale.Epoch = 1
	c.Node(2).Core().RegionDir().Remove(start)
	c.Node(2).Core().RegionDir().Insert(stale)
	if data, err := readOnce(ctx, c.Node(2), start, 16); err == nil && string(data) == "follows the load" {
		staleOK = true
	}
	res.Rows = append(res.Rows,
		Row{Name: "per-op before migration", Value: fmtDur(before), Detail: "region homed on n1, client on n3"},
		Row{Name: "migration cost", Value: fmtDur(migrateDur), Detail: "pages + descriptor + map update"},
		Row{Name: "per-op after migration", Value: fmtDur(after), Detail: "region homed on the client's node"},
		Row{Name: "speedup", Value: fmt.Sprintf("%.1fx", float64(before)/float64(after))},
		Row{Name: "stale client recovers", Value: fmt.Sprintf("%v", staleOK), Detail: "pre-migration descriptor refreshes automatically"},
	)
	res.Pass = after*2 < before && staleOK
	return res, nil
}
