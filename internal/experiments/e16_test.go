package experiments

import (
	"os"
	"testing"
	"time"
)

func TestE16PrefetchAndWriteThrough(t *testing.T) { runAndCheck(t, "E16", E16PrefetchAndWriteThrough) }

// TestE16WriteThroughGate enforces the ISSUE acceptance bar in CI: a
// sequential read-mostly sweep must need at least 2x fewer grant RPCs
// with read-ahead on, and every multi-page release must write through
// with exactly one update RPC per replica. The counts are deterministic
// (RPC counts, not timings), but the full four-cluster run is heavy, so
// the gate only arms when the bench-smoke leg sets KHAZANA_E16_GATE=1;
// the plain test suite checks the same shape via
// TestE16PrefetchAndWriteThrough.
func TestE16WriteThroughGate(t *testing.T) {
	if os.Getenv("KHAZANA_E16_GATE") != "1" {
		t.Skip("set KHAZANA_E16_GATE=1 to arm the RPC-count gate (CI bench-smoke leg)")
	}
	cfg := Config{Latency: 100 * time.Microsecond, Dir: t.TempDir()}
	on, err := e16ReadSweep(cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	off, err := e16ReadSweep(cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(off.requests) / float64(on.requests)
	t.Logf("sequential sweep: %d RPCs with read-ahead vs %d without (%.1fx, %d spec hits)",
		on.requests, off.requests, ratio, on.hits)
	if ratio < 2 {
		t.Fatalf("grant-RPC reduction %.1fx is below the 2x gate", ratio)
	}
	if on.hits == 0 {
		t.Fatal("no speculative grants were consumed during the sequential sweep")
	}

	batched, err := e16WriteThrough(cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(e16WriteCycles * e16Secondaries)
	t.Logf("write-through: %d update RPCs for %d releases to %d replicas",
		batched.updateRPCs, e16WriteCycles, e16Secondaries)
	if batched.updateRPCs != want {
		t.Fatalf("batched write-through sent %d update RPCs, want exactly %d (one per replica per release)",
			batched.updateRPCs, want)
	}
}

// BenchmarkE16Prefetch reports the sequential sweep with read-ahead on
// and off as sub-benchmarks so `go test -bench E16Prefetch` prints both
// RPC counts side by side.
func BenchmarkE16Prefetch(b *testing.B) {
	for _, side := range []struct {
		name        string
		noReadAhead bool
	}{
		{"readahead", false},
		{"baseline", true},
	} {
		b.Run(side.name, func(b *testing.B) {
			cfg := Config{Latency: 100 * time.Microsecond, Dir: b.TempDir()}
			var run e16Sweep
			for i := 0; i < b.N; i++ {
				var err error
				run, err = e16ReadSweep(cfg, side.noReadAhead)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(run.requests), "rpcs/sweep")
			b.ReportMetric(float64(run.hits), "spec-hits/sweep")
		})
	}
}

// BenchmarkE16WriteThroughBatch reports the replicated release with
// batched and per-page write-through as sub-benchmarks.
func BenchmarkE16WriteThroughBatch(b *testing.B) {
	for _, side := range []struct {
		name    string
		perPage bool
	}{
		{"batched", false},
		{"perpage", true},
	} {
		b.Run(side.name, func(b *testing.B) {
			cfg := Config{Latency: 100 * time.Microsecond, Dir: b.TempDir()}
			var run e16Write
			for i := 0; i < b.N; i++ {
				var err error
				run, err = e16WriteThrough(cfg, side.perPage)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(run.requests), "rpcs/run")
			b.ReportMetric(float64(run.updateRPCs), "update-rpcs/run")
		})
	}
}
