package experiments

import (
	"context"
	"fmt"
	"time"

	"khazana"
	"khazana/internal/telemetry"
)

// E15TelemetryOverhead measures what the telemetry subsystem costs on the
// paths it instruments. The design constraint is asymmetric: RPC-bound
// operations (lock/release batches) may pay for spans and histograms
// because a network round trip dwarfs them, but the cached-read fast path
// — the reason Kore "caches the fetched pages locally" (§3.2) — must stay
// allocation-free and within noise of the uninstrumented build. The
// experiment runs the same workloads against an instrumented cluster and
// a telemetry.Nop() (NoTelemetry) cluster and compares.
func E15TelemetryOverhead(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:        "E15",
		Title:     "telemetry overhead — instrumented vs disabled on hot and RPC-bound paths",
		Predicted: "the cached zero-copy read stays 0 allocs/op with telemetry on (one plain increment, batched to the registry at Unlock), and the batched lock/release cycle's span+histogram cost vanishes into the RPC round trips",
	}

	instr, err := e15Measure(cfg, false)
	if err != nil {
		return res, err
	}
	bare, err := e15Measure(cfg, true)
	if err != nil {
		return res, err
	}

	readOverhead := 100 * (instr.readNs - bare.readNs) / bare.readNs
	lockOverhead := 100 * (instr.lockNs - bare.lockNs) / bare.lockNs
	res.Rows = []Row{
		{Name: "cached ReadView, telemetry on", Value: fmt.Sprintf("%.1f ns/op, %.2f allocs/op", instr.readNs, instr.readAllocs),
			Detail: "one plain increment batched at Unlock; no atomics, clocks, or spans"},
		{Name: "cached ReadView, telemetry.Nop()", Value: fmt.Sprintf("%.1f ns/op, %.2f allocs/op", bare.readNs, bare.readAllocs),
			Detail: "nil registry; instruments are nil no-ops"},
		{Name: "cached ReadView overhead", Value: fmt.Sprintf("%+.1f%%", readOverhead),
			Detail: "CI bench-smoke gate: must stay under 5%"},
		{Name: "batched lock/release, telemetry on", Value: fmt.Sprintf("%.0f ns/op", instr.lockNs),
			Detail: "op spans + latency/batch-size histograms"},
		{Name: "batched lock/release, telemetry.Nop()", Value: fmt.Sprintf("%.0f ns/op", bare.lockNs),
			Detail: "same RPC pipeline, bare"},
		{Name: "batched lock/release overhead", Value: fmt.Sprintf("%+.1f%%", lockOverhead),
			Detail: "dominated by the simulated network round trips"},
		{Name: "metrics recorded under load", Value: fmt.Sprintf("%d read views, %d lock batches", instr.readViews, instr.lockBatches),
			Detail: "registry observed the instrumented runs"},
	}
	// Pass on the deterministic claims: the instrumented cached read must
	// not allocate (PR 3's zero-copy gate must survive telemetry), and the
	// registry must actually have observed the workloads. The timing
	// comparison is reported but gated separately (TestE15 gate env), so
	// scheduler noise cannot flake the tier-1 suite.
	res.Pass = instr.readAllocs < 0.5 && bare.readAllocs < 0.5 &&
		instr.readViews > 0 && instr.lockBatches > 0
	return res, nil
}

// e15Run is one cluster's measurements.
type e15Run struct {
	readNs     float64
	readAllocs float64
	lockNs     float64
	// readViews/lockBatches are the instrumented cluster's recorded
	// counts (zero for the bare cluster).
	readViews   uint64
	lockBatches uint64
}

// e15Measure times the two workloads on a fresh 2-node cluster, with
// telemetry enabled or disabled.
func e15Measure(cfg Config, noTelemetry bool) (e15Run, error) {
	var out e15Run
	opts := []khazana.ClusterOption{}
	if noTelemetry {
		opts = append(opts, khazana.WithNoTelemetry())
	}
	c, err := newCluster(cfg, 2, opts...)
	if err != nil {
		return out, err
	}
	defer c.Close()
	ctx := context.Background()

	const ps = 4096
	const batchPages = 8
	start, err := mkRegion(ctx, c.Node(1), ps*batchPages, khazana.Attrs{})
	if err != nil {
		return out, err
	}
	if err := writeOnce(ctx, c.Node(1), start, make([]byte, ps*batchPages)); err != nil {
		return out, err
	}

	// Workload A: cached zero-copy reads under one held lock, plus a
	// touched byte so the loop body is not empty.
	lk, err := c.Node(1).Lock(ctx, khazana.Range{Start: start, Size: ps}, khazana.LockRead, "bench")
	if err != nil {
		return out, err
	}
	var sink byte
	read := func() error {
		v, err := lk.ReadView(start, ps)
		if err != nil {
			return err
		}
		sink += v[0]
		return nil
	}
	if err := read(); err != nil { // warm the view pin
		return out, err
	}
	const readRuns = 20000
	t0 := time.Now()
	for i := 0; i < readRuns; i++ {
		if err := read(); err != nil {
			return out, err
		}
	}
	out.readNs = float64(time.Since(t0)) / readRuns
	out.readAllocs, _, err = measureAllocs(5000, read)
	if err != nil {
		return out, err
	}
	if err := lk.Unlock(ctx); err != nil {
		return out, err
	}
	_ = sink

	// Workload B: the batched multi-page lock/fetch + release pipeline,
	// cross-node so the CM exchange crosses the (simulated) wire.
	cycle := func() error {
		wl, err := c.Node(2).Lock(ctx, khazana.Range{Start: start, Size: ps * batchPages}, khazana.LockWrite, "bench")
		if err != nil {
			return err
		}
		return wl.Unlock(ctx)
	}
	if err := cycle(); err != nil { // warm descriptor caches
		return out, err
	}
	const lockRuns = 40
	t0 = time.Now()
	for i := 0; i < lockRuns; i++ {
		if err := cycle(); err != nil {
			return out, err
		}
	}
	out.lockNs = float64(time.Since(t0)) / lockRuns

	for _, cs := range c.Node(1).Core().MetricsSnapshot().Counters {
		if cs.Name == telemetry.MetricReadViews {
			out.readViews = cs.Value
		}
	}
	for _, hs := range c.Node(2).Core().MetricsSnapshot().Histograms {
		if hs.Name == telemetry.MetricLockBatchPages {
			out.lockBatches = hs.Count
		}
	}
	return out, nil
}
