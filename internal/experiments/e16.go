package experiments

import (
	"context"
	"fmt"

	"khazana"
	"khazana/internal/telemetry"
)

// E16PrefetchAndWriteThrough measures the two data-path optimizations of
// the adaptive pipelining PR against their per-page baselines:
//
// Leg A — adaptive read-ahead grant pipelining. A remote reader sweeps a
// region sequentially in fixed windows; the home detects the stream and
// piggybacks speculative grants+frames for the next K predicted pages
// onto each demand reply, so later windows are served entirely from
// local speculative copies with zero RPCs. Compared against
// WithNoReadAhead() on total requests for the same sweep (§2's
// "aggressive prefetching" on the grant path).
//
// Leg B — batched replication write-through. The home of a MinReplicas=3
// region releases multi-page writes; the write-through groups the dirty
// pages into exactly one UpdateBatch RPC per replica instead of one
// ReplicaPut per page per replica (WithPerPageReplication() baseline).
func E16PrefetchAndWriteThrough(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:        "E16",
		Title:     "adaptive read-ahead + batched replication write-through vs per-page baselines",
		Predicted: "a sequential read-mostly sweep needs at least 2x fewer RPCs with read-ahead on (later windows consume speculative grants locally), and a multi-page release writes through with exactly one update RPC per replica",
	}

	prefetchOn, err := e16ReadSweep(cfg, false)
	if err != nil {
		return res, err
	}
	prefetchOff, err := e16ReadSweep(cfg, true)
	if err != nil {
		return res, err
	}
	batched, err := e16WriteThrough(cfg, false)
	if err != nil {
		return res, err
	}
	perPage, err := e16WriteThrough(cfg, true)
	if err != nil {
		return res, err
	}

	ratio := float64(prefetchOff.requests) / float64(prefetchOn.requests)
	res.Rows = []Row{
		{Name: "sequential sweep, read-ahead on", Value: fmt.Sprintf("%d RPCs", prefetchOn.requests),
			Detail: fmt.Sprintf("%d windows; %d speculative pages shipped, %d consumed without an RPC, %d wasted", e16Windows, prefetchOn.specPages, prefetchOn.hits, prefetchOn.waste)},
		{Name: "sequential sweep, WithNoReadAhead", Value: fmt.Sprintf("%d RPCs", prefetchOff.requests),
			Detail: "every window pays a demand grant batch and a release notify"},
		{Name: "grant-RPC reduction", Value: fmt.Sprintf("%.1fx", ratio),
			Detail: "E16 gate: must be >= 2x"},
		{Name: "write-through, batched", Value: fmt.Sprintf("%d update RPCs for %d releases to %d replicas", batched.updateRPCs, e16WriteCycles, e16Secondaries),
			Detail: fmt.Sprintf("%d total RPCs incl. invalidations; exactly one UpdateBatch per replica per release", batched.requests)},
		{Name: "write-through, WithPerPageReplication", Value: fmt.Sprintf("%d total RPCs", perPage.requests),
			Detail: fmt.Sprintf("one ReplicaPut per page per replica: %d pages x %d replicas per release", e16WritePages, e16Secondaries)},
	}
	res.Pass = ratio >= 2 &&
		prefetchOn.hits > 0 &&
		batched.updateRPCs == uint64(e16WriteCycles*e16Secondaries) &&
		perPage.requests > batched.requests
	return res, nil
}

const (
	// Leg A geometry: a 256-page region swept in 8-page read windows.
	e16Pages     = 256
	e16WindowLen = 8
	e16Windows   = e16Pages / e16WindowLen
	e16PageSize  = 4096
	// Leg B geometry: 4 releases of 8 dirty pages each, replicated from
	// the home to 2 secondaries (MinReplicas=3 on a 3-node cluster).
	e16WriteCycles = 4
	e16WritePages  = 8
	e16Secondaries = 2
)

// e16Sweep is one read-sweep measurement.
type e16Sweep struct {
	requests  uint64
	specPages uint64
	hits      uint64
	waste     uint64
}

// e16ReadSweep measures the network requests a remote sequential reader
// spends sweeping the region once, with read-ahead on or off.
func e16ReadSweep(cfg Config, noReadAhead bool) (e16Sweep, error) {
	var out e16Sweep
	opts := []khazana.ClusterOption{}
	if noReadAhead {
		opts = append(opts, khazana.WithNoReadAhead())
	}
	c, err := newCluster(cfg, 2, opts...)
	if err != nil {
		return out, err
	}
	defer c.Close()
	ctx := context.Background()

	const size = uint64(e16Pages * e16PageSize)
	start, err := mkRegion(ctx, c.Node(1), size, khazana.Attrs{})
	if err != nil {
		return out, err
	}
	if err := writeOnce(ctx, c.Node(1), start, make([]byte, size)); err != nil {
		return out, err
	}

	reqs0, _ := c.Network.Stats()
	addr := start
	for w := 0; w < e16Windows; w++ {
		r := khazana.Range{Start: addr, Size: e16WindowLen * e16PageSize}
		lk, err := c.Node(2).Lock(ctx, r, khazana.LockRead, "bench")
		if err != nil {
			return out, err
		}
		if _, err := lk.Read(addr, e16PageSize); err != nil {
			//khazana:ignore-err best-effort cleanup; the read error is what matters
			_ = lk.Unlock(ctx)
			return out, err
		}
		if err := lk.Unlock(ctx); err != nil {
			return out, err
		}
		addr = addr.MustAdd(e16WindowLen * e16PageSize)
	}
	reqs1, _ := c.Network.Stats()
	out.requests = reqs1 - reqs0

	for _, cs := range c.Node(2).Core().MetricsSnapshot().Counters {
		switch cs.Name {
		case telemetry.MetricPrefetchHits:
			out.hits = cs.Value
		case telemetry.MetricPrefetchWaste:
			out.waste = cs.Value
		}
	}
	for _, hs := range c.Node(1).Core().MetricsSnapshot().Histograms {
		if hs.Name == telemetry.MetricPrefetchSpecPages {
			out.specPages = hs.Sum
		}
	}
	return out, nil
}

// e16Write is one write-through measurement.
type e16Write struct {
	requests   uint64
	updateRPCs uint64
}

// e16WriteThrough measures the replication traffic a home spends
// releasing multi-page writes to a replicated region, batched or
// per-page.
func e16WriteThrough(cfg Config, perPage bool) (e16Write, error) {
	var out e16Write
	opts := []khazana.ClusterOption{}
	if perPage {
		opts = append(opts, khazana.WithPerPageReplication())
	}
	c, err := newCluster(cfg, e16Secondaries+1, opts...)
	if err != nil {
		return out, err
	}
	defer c.Close()
	ctx := context.Background()

	const size = uint64(e16WritePages * e16PageSize)
	start, err := mkRegion(ctx, c.Node(1), size, khazana.Attrs{MinReplicas: e16Secondaries + 1})
	if err != nil {
		return out, err
	}
	if err := writeOnce(ctx, c.Node(1), start, make([]byte, size)); err != nil {
		return out, err
	}
	// Extend the home list to MinReplicas and seed the replicas, so the
	// measured releases write through to a stable replica set.
	c.Node(1).Core().MaintainReplicas()

	reqs0, _ := c.Network.Stats()
	data := make([]byte, size)
	for cycle := 0; cycle < e16WriteCycles; cycle++ {
		data[0] = byte(cycle + 1)
		if err := writeOnce(ctx, c.Node(1), start, data); err != nil {
			return out, err
		}
	}
	reqs1, _ := c.Network.Stats()
	out.requests = reqs1 - reqs0

	// The update-batch histogram observes once per UpdateBatch sent, so
	// its count is exactly the number of replication RPCs (the network
	// total above also includes the invalidations write acquires fan
	// out to the replica copyset).
	for _, hs := range c.Node(1).Core().MetricsSnapshot().Histograms {
		if hs.Name == telemetry.MetricUpdateBatchPages {
			out.updateRPCs = hs.Count
		}
	}
	return out, nil
}
