package experiments

import (
	"os"
	"testing"
	"time"
)

// TestE18FanIn checks the deterministic shape at a reduced client count
// so the race-enabled tier-1 suite stays quick: the mux leg serves every
// in-flight client over a handful of daemon-side connections while the
// serial leg opens one per concurrent request. Full scale (N=1000) and
// the throughput ratio run under the armed gate below and kbench.
func TestE18FanIn(t *testing.T) {
	runAndCheck(t, "E18", func(cfg Config) (Result, error) {
		return e18FanInN(cfg, 64)
	})
}

// TestE18FanInGate enforces the CI bench-smoke fan-in budget at full
// scale: with N>=1000 concurrent TCP clients at one daemon, mux+sharded
// aggregate throughput must be at least 2x the serial+coarse baseline,
// and the mux leg's daemon-side connection count must stay decoupled
// from the client count (no per-client socket, hence no per-client
// goroutine-pair on the server). Timing comparisons flake under
// arbitrary scheduler load, so the gate only arms when the bench-smoke
// leg sets KHAZANA_E18_GATE=1.
func TestE18FanInGate(t *testing.T) {
	if os.Getenv("KHAZANA_E18_GATE") != "1" {
		t.Skip("set KHAZANA_E18_GATE=1 to arm the fan-in gate (CI bench-smoke leg)")
	}
	cfg := Config{Duration: 2 * time.Second, Dir: t.TempDir()}
	mux, err := e18Measure(cfg, e18Clients, false, false)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := e18Measure(cfg, e18Clients, true, true)
	if err != nil {
		t.Fatal(err)
	}
	ratio := 0.0
	if serial.ops > 0 {
		ratio = mux.ops / serial.ops
	}
	t.Logf("mux+sharded: %.0f cycles/s over %d peak daemon conns; serial+coarse: %.0f cycles/s over %d peak daemon conns (%.2fx)",
		mux.ops, mux.peakConns, serial.ops, serial.peakConns, ratio)
	if mux.peakConns > e18MuxConnCap {
		t.Fatalf("mux leg held %d daemon connections (budget %d): connection count must not scale with clients",
			mux.peakConns, e18MuxConnCap)
	}
	if ratio < 2.0 {
		t.Fatalf("mux+sharded throughput is only %.2fx the serial+coarse baseline (gate: >= 2x)", ratio)
	}
}
