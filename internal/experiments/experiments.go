// Package experiments implements the reproduction harness for every
// figure and qualitative claim in the paper's evaluation (see DESIGN.md §4
// for the experiment index). Each experiment builds its own
// in-process cluster, runs the workload, and returns structured rows that
// cmd/kbench renders as tables and EXPERIMENTS.md records.
//
// The paper contains no quantitative tables — its two figures are
// architectural — so E1 and E2 reproduce the figures operationally and
// E3–E11 characterize each claimed property with a paper-derived predicted
// shape.
package experiments

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"khazana"
)

// Row is one line of an experiment's output table.
type Row struct {
	Name   string
	Value  string
	Detail string
}

// Result is a completed experiment.
type Result struct {
	ID        string
	Title     string
	Predicted string
	Rows      []Row
	// Pass reports whether the paper-predicted shape held.
	Pass bool
}

// Config tunes the harness.
type Config struct {
	// Latency is the simulated one-way network latency (default 200µs).
	Latency time.Duration
	// Duration bounds each throughput measurement window (default
	// 150ms).
	Duration time.Duration
	// Dir roots cluster state (default: temp dirs).
	Dir string
}

func (c Config) withDefaults() Config {
	if c.Latency == 0 {
		c.Latency = 200 * time.Microsecond
	}
	if c.Duration == 0 {
		c.Duration = 150 * time.Millisecond
	}
	return c
}

// All runs every experiment in order.
func All(cfg Config) ([]Result, error) {
	runs := []func(Config) (Result, error){
		E1Figure1, E2Figure2, E3LookupPath, E4Scalability, E5Consistency,
		E6Replication, E7Filesystem, E8Objects, E9Failure, E10PageSize,
		E11StaleMap, E12Migration, E13BatchedTransfers, E14ZeroCopy,
		E15TelemetryOverhead, E16PrefetchAndWriteThrough, E17SnapshotScan,
		E18FanIn, E19Failover, E20RingLookup,
	}
	out := make([]Result, 0, len(runs))
	for _, run := range runs {
		r, err := run(cfg)
		if err != nil {
			return out, fmt.Errorf("%s: %w", r.ID, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// newCluster builds an experiment cluster.
func newCluster(cfg Config, n int, opts ...khazana.ClusterOption) (*khazana.Cluster, error) {
	base := []khazana.ClusterOption{khazana.WithLatency(cfg.Latency)}
	if cfg.Dir != "" {
		base = append(base, khazana.WithStoreDir(cfg.Dir))
	}
	return khazana.NewCluster(n, append(base, opts...)...)
}

// mkRegion reserves+allocates a region on a node.
func mkRegion(ctx context.Context, n *khazana.Node, size uint64, attrs khazana.Attrs) (khazana.Addr, error) {
	start, err := n.Reserve(ctx, size, attrs, "bench")
	if err != nil {
		return khazana.Addr{}, err
	}
	if err := n.Allocate(ctx, start, "bench"); err != nil {
		return khazana.Addr{}, err
	}
	return start, nil
}

// timeOp measures one operation.
func timeOp(fn func() error) (time.Duration, error) {
	t0 := time.Now()
	err := fn()
	return time.Since(t0), err
}

// readOnce lock-reads n bytes at start on node.
func readOnce(ctx context.Context, n *khazana.Node, start khazana.Addr, size uint64) ([]byte, error) {
	lk, err := n.Lock(ctx, khazana.Range{Start: start, Size: size}, khazana.LockRead, "bench")
	if err != nil {
		return nil, err
	}
	defer lk.Unlock(ctx)
	return lk.Read(start, size)
}

// writeOnce lock-writes data at start on node.
func writeOnce(ctx context.Context, n *khazana.Node, start khazana.Addr, data []byte) error {
	lk, err := n.Lock(ctx, khazana.Range{Start: start, Size: uint64(len(data))}, khazana.LockWrite, "bench")
	if err != nil {
		return err
	}
	defer lk.Unlock(ctx)
	return lk.Write(start, data)
}

// opsPerSecond runs fn in workers goroutines for the configured window and
// returns the aggregate rate.
func opsPerSecond(cfg Config, workers int, fn func(worker int) error) (float64, error) {
	var ops atomic.Int64
	var firstErr atomic.Value
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := fn(w); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				ops.Add(1)
			}
		}(w)
	}
	t0 := time.Now()
	time.Sleep(cfg.Duration)
	close(stop)
	wg.Wait()
	elapsed := time.Since(t0).Seconds()
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return 0, err
	}
	return float64(ops.Load()) / elapsed, nil
}

func fmtDur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

func fmtRate(r float64) string {
	switch {
	case r >= 1e6:
		return fmt.Sprintf("%.2fM ops/s", r/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%.1fk ops/s", r/1e3)
	default:
		return fmt.Sprintf("%.0f ops/s", r)
	}
}
