package experiments

import (
	"context"
	"fmt"
	"time"

	"khazana"
)

// E13BatchedTransfers measures the batched multi-page lock/fetch and
// release pipeline against the original one-RPC-per-page path. The paper
// pays one home round trip per page fault (Figure 2); batching a
// multi-page lock collapses a remote region acquisition into one
// PageReqBatch/PageGrantBatch exchange per home and its release into one
// ReleaseBatch, so the wire cost stops scaling with the page count.
func E13BatchedTransfers(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:        "E13",
		Title:     "batched multi-page transfers — remote lock/unlock cycle, batched vs per-page",
		Predicted: "the batched path holds RPCs per cycle constant (one acquire + one release to the single home) while the per-page path pays two per page, so it wins by a growing margin as the page count and link latency rise",
	}
	ctx := context.Background()
	type leg struct {
		rpcs uint64
		dur  time.Duration
	}
	measure := func(pages int, perPage bool) (leg, error) {
		opts := []khazana.ClusterOption{}
		if perPage {
			opts = append(opts, khazana.WithPerPageTransfers())
		}
		c, err := newCluster(cfg, 2, opts...)
		if err != nil {
			return leg{}, err
		}
		defer c.Close()
		size := uint64(pages) * 4096
		start, err := mkRegion(ctx, c.Node(1), size, khazana.Attrs{})
		if err != nil {
			return leg{}, err
		}
		if err := writeOnce(ctx, c.Node(1), start, make([]byte, size)); err != nil {
			return leg{}, err
		}
		// Warm the remote node's descriptor cache so the measured cycle
		// is pure lock/fetch/release traffic, no region lookup.
		if err := writeOnce(ctx, c.Node(2), start, []byte("warm")); err != nil {
			return leg{}, err
		}
		reqs0, _ := c.Network.Stats()
		var out leg
		out.dur, err = timeOp(func() error {
			lk, err := c.Node(2).Lock(ctx, khazana.Range{Start: start, Size: size}, khazana.LockWrite, "bench")
			if err != nil {
				return err
			}
			if err := lk.Write(start, []byte("batched?")); err != nil {
				return err
			}
			return lk.Unlock(ctx)
		})
		if err != nil {
			return leg{}, err
		}
		reqs1, _ := c.Network.Stats()
		out.rpcs = reqs1 - reqs0
		return out, nil
	}
	pass := true
	for _, pages := range []int{16, 64, 256} {
		batched, err := measure(pages, false)
		if err != nil {
			return res, fmt.Errorf("batched %d pages: %w", pages, err)
		}
		perPage, err := measure(pages, true)
		if err != nil {
			return res, fmt.Errorf("per-page %d pages: %w", pages, err)
		}
		res.Rows = append(res.Rows, Row{
			Name:  fmt.Sprintf("%d pages", pages),
			Value: fmt.Sprintf("batched %d RPCs / %s", batched.rpcs, fmtDur(batched.dur)),
			Detail: fmt.Sprintf("per-page %d RPCs / %s (%.1fx)",
				perPage.rpcs, fmtDur(perPage.dur), float64(perPage.dur)/float64(batched.dur)),
		})
		// One home, no third-party sharers to invalidate: the batched
		// cycle is one acquire plus one release RPC; the per-page cycle
		// pays at least two RPCs per page. The duration margin is only
		// asserted at 64+ pages, where it clears measurement noise.
		if batched.rpcs > 4 || perPage.rpcs < 2*uint64(pages) {
			pass = false
		}
		if pages >= 64 && batched.dur >= perPage.dur {
			pass = false
		}
	}
	res.Pass = pass
	return res, nil
}
