package experiments

import (
	"context"
	"fmt"
	"time"

	"khazana"
)

// E4Scalability measures aggregate throughput as nodes are added, for
// disjoint regions versus a single write-contended region. §2:
// "performance should scale as nodes are added if the new nodes do not
// contend for access to the same regions". Every worker accesses a region
// homed on a *different* node, so each operation pays real (simulated)
// network time; disjoint operations overlap, contended ones serialize on
// the region's global CREW lock.
func E4Scalability(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:        "E4",
		Title:     "§2 scalability — aggregate remote ops/s vs node count, disjoint vs contended",
		Predicted: "disjoint workloads scale with node count; a write-contended region does not",
	}
	sizes := []int{2, 4, 8}
	var disjointRates, contendedRates []float64
	for _, n := range sizes {
		c, err := newCluster(cfg, n)
		if err != nil {
			return res, err
		}
		ctx := context.Background()

		// Disjoint: worker w runs on node w+1 against a region homed
		// on the next node around the ring — always remote.
		regions := make([]khazana.Addr, n)
		for w := 0; w < n; w++ {
			home := (w+1)%n + 1
			r, err := mkRegion(ctx, c.Node(home), 4096, khazana.Attrs{})
			if err != nil {
				c.Close()
				return res, err
			}
			regions[w] = r
		}
		payload := []byte("scalability payload")
		disjoint, err := opsPerSecond(cfg, n, func(w int) error {
			return writeOnce(ctx, c.Node(w+1), regions[w], payload)
		})
		if err != nil {
			c.Close()
			return res, err
		}

		// Contended: every node hammers one region homed on node 1.
		shared, err := mkRegion(ctx, c.Node(1), 4096, khazana.Attrs{})
		if err != nil {
			c.Close()
			return res, err
		}
		contended, err := opsPerSecond(cfg, n-1, func(w int) error {
			return writeOnce(ctx, c.Node(w+2), shared, payload)
		})
		c.Close()
		if err != nil {
			return res, err
		}
		disjointRates = append(disjointRates, disjoint)
		contendedRates = append(contendedRates, contended)
		res.Rows = append(res.Rows, Row{
			Name:   fmt.Sprintf("%d node(s)", n),
			Value:  fmtRate(disjoint),
			Detail: "disjoint; contended: " + fmtRate(contended),
		})
	}
	last := len(sizes) - 1
	disjointSpeedup := disjointRates[last] / disjointRates[0]
	contendedSpeedup := contendedRates[last] / contendedRates[0]
	res.Rows = append(res.Rows, Row{
		Name:   "disjoint speedup 2→8 nodes",
		Value:  fmt.Sprintf("%.1fx", disjointSpeedup),
		Detail: fmt.Sprintf("contended: %.1fx", contendedSpeedup),
	})
	res.Pass = disjointSpeedup > 2 && contendedSpeedup < 2 && disjointSpeedup > contendedSpeedup
	return res, nil
}

// E5Consistency compares the three consistency protocols under read-mostly
// and write-heavy sharing from non-home nodes (§3.3: protocol choice
// trades performance for freshness; weaker protocols give "fast response"
// at the cost of temporarily out-of-date data). Per-read cost: eventual =
// no traffic, release = one version check, CREW = a grant/release exchange
// with the home. Per-write cost: release = one push; CREW adds global
// exclusion; eventual adds the home's gossip fan-out to every replica.
func E5Consistency(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:        "E5",
		Title:     "§3.3 consistency protocols — non-home throughput under read-mostly and write-heavy sharing",
		Predicted: "read-mostly: eventual > release > CREW; write-heavy: release > CREW (no global exclusion); eventual pays its gossip fan-out on writes",
	}
	protocols := []struct {
		name  string
		attrs khazana.Attrs
	}{
		{"crew", khazana.Attrs{Protocol: khazana.CREW}},
		{"release", khazana.Attrs{Protocol: khazana.Release}},
		{"eventual", khazana.Attrs{Protocol: khazana.Eventual}},
	}
	rates := make(map[string][2]float64)
	for _, p := range protocols {
		c, err := newCluster(cfg, 4)
		if err != nil {
			return res, err
		}
		ctx := context.Background()
		start, err := mkRegion(ctx, c.Node(1), 4096, p.attrs)
		if err != nil {
			c.Close()
			return res, err
		}
		// Seed a replica everywhere.
		for i := 1; i <= 4; i++ {
			if _, err := readOnce(ctx, c.Node(i), start, 64); err != nil {
				c.Close()
				return res, err
			}
		}
		payload := []byte("protocol payload")
		run := func(writeEvery int) (float64, error) {
			var seq [3]int
			// Workers run on the three non-home nodes.
			return opsPerSecond(cfg, 3, func(w int) error {
				seq[w]++
				node := c.Node(w + 2)
				if seq[w]%writeEvery == 0 {
					return writeOnce(ctx, node, start, payload)
				}
				_, err := readOnce(ctx, node, start, 64)
				return err
			})
		}
		readMostly, err := run(20) // 5% writes
		if err != nil {
			c.Close()
			return res, err
		}
		writeHeavy, err := run(2) // 50% writes
		c.Close()
		if err != nil {
			return res, err
		}
		rates[p.name] = [2]float64{readMostly, writeHeavy}
		res.Rows = append(res.Rows, Row{
			Name:   p.name,
			Value:  fmtRate(readMostly),
			Detail: "read-mostly; write-heavy: " + fmtRate(writeHeavy),
		})
	}
	res.Pass = rates["eventual"][0] > rates["release"][0] &&
		rates["release"][0] > rates["crew"][0] &&
		rates["release"][1] > rates["crew"][1]
	return res, nil
}

// E6Replication measures the cost and benefit of minimum replica counts
// (§3.5: minimum primary replicas enhance availability "at a cost of
// resource consumption").
func E6Replication(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:        "E6",
		Title:     "§3.5 replication — write/maintenance cost and post-crash availability vs MinReplicas",
		Predicted: "maintenance cost grows with the replica count; data survives a home crash only with MinReplicas ≥ 2",
	}
	survived := make(map[uint8]bool)
	var costs []time.Duration
	for _, k := range []uint8{1, 2, 3, 4} {
		c, err := newCluster(cfg, 5)
		if err != nil {
			return res, err
		}
		ctx := context.Background()
		start, err := mkRegion(ctx, c.Node(2), 4096, khazana.Attrs{MinReplicas: k})
		if err != nil {
			c.Close()
			return res, err
		}
		if err := writeOnce(ctx, c.Node(2), start, []byte("replicated payload")); err != nil {
			c.Close()
			return res, err
		}
		maintain, err := timeOp(func() error {
			c.Node(2).Core().MaintainReplicas()
			return nil
		})
		if err != nil {
			c.Close()
			return res, err
		}
		costs = append(costs, maintain)
		d, err := c.Node(2).GetAttr(ctx, start)
		if err != nil {
			c.Close()
			return res, err
		}
		homes := len(d.Home)
		// Let another node cache the (fresh) descriptor, then kill the
		// primary home.
		if _, err := c.Node(4).GetAttr(ctx, start); err != nil {
			c.Close()
			return res, err
		}
		c.Crash(2)
		data, err := readOnce(ctx, c.Node(4), start, 18)
		ok := err == nil && string(data) == "replicated payload"
		survived[k] = ok
		c.Close()
		res.Rows = append(res.Rows, Row{
			Name:   fmt.Sprintf("MinReplicas=%d", k),
			Value:  fmt.Sprintf("available after home crash: %v", ok),
			Detail: fmt.Sprintf("homes=%d, maintenance cost %s", homes, fmtDur(maintain)),
		})
	}
	res.Pass = !survived[1] && survived[2] && survived[3] && costs[3] >= costs[0]
	return res, nil
}
