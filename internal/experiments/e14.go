package experiments

import (
	"context"
	"fmt"
	"runtime"

	"khazana"
)

// E14ZeroCopy measures the allocation cost of the refcounted page-frame
// pipeline. The paper's design keeps hot-path data movement cheap —
// "Kore caches the fetched pages locally" (§3.2) — and the zero-copy
// refactor makes a cached access serve the pooled frame itself rather
// than copy it: a locked ReadView pins the frame in the lock context and
// returns an aliasing slice, and a remote fetch moves the page from the
// wire decoder to the store through pooled frames without intermediate
// copies. The experiment compares bytes and allocations per operation for
// the view path against the copying Read path on a cached page, and
// reports the steady-state cost of a cold remote fetch.
func E14ZeroCopy(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:        "E14",
		Title:     "zero-copy frame pipeline — allocation cost of cached reads and remote fetches",
		Predicted: "a cached zero-copy view allocates nothing (the frame is pinned, not copied), the copying read pays at least one page-sized buffer per call, and a cold remote fetch's page data rides pooled frames end to end",
	}
	ctx := context.Background()
	c, err := newCluster(cfg, 2)
	if err != nil {
		return res, err
	}
	defer c.Close()
	const ps = 4096
	start, err := mkRegion(ctx, c.Node(1), ps, khazana.Attrs{})
	if err != nil {
		return res, err
	}
	if err := writeOnce(ctx, c.Node(1), start, make([]byte, ps)); err != nil {
		return res, err
	}

	// Cached reads, measured under one held read lock so the numbers are
	// the per-access cost, not lock machinery.
	lk, err := c.Node(1).Lock(ctx, khazana.Range{Start: start, Size: ps}, khazana.LockRead, "bench")
	if err != nil {
		return res, err
	}
	viewAllocs, viewBytes, err := measureAllocs(2000, func() error {
		_, err := lk.ReadView(start, ps)
		return err
	})
	if err != nil {
		return res, err
	}
	copyAllocs, copyBytes, err := measureAllocs(2000, func() error {
		_, err := lk.Read(start, ps)
		return err
	})
	if err != nil {
		return res, err
	}
	if err := lk.Unlock(ctx); err != nil {
		return res, err
	}

	// Cold remote fetch: drop node 2's copy each iteration so every cycle
	// pulls the page from the home through the wire path.
	fetch := func() error {
		c.Node(2).Core().Store().Delete(start)
		c.Node(2).Core().PageDir().Delete(start)
		_, err := readOnce(ctx, c.Node(2), start, ps)
		return err
	}
	if err := fetch(); err != nil { // warm descriptor cache and pools
		return res, err
	}
	fetchAllocs, fetchBytes, err := measureAllocs(300, fetch)
	if err != nil {
		return res, err
	}

	reduction := 100 * (1 - viewBytes/copyBytes)
	res.Rows = []Row{
		{Name: "cached read 4KiB, zero-copy view", Value: fmt.Sprintf("%.1f allocs/op, %.0f B/op", viewAllocs, viewBytes),
			Detail: "frame pinned in the lock context; the slice aliases it"},
		{Name: "cached read 4KiB, copying Read", Value: fmt.Sprintf("%.1f allocs/op, %.0f B/op", copyAllocs, copyBytes),
			Detail: "private buffer per call"},
		{Name: "view vs copy, bytes allocated", Value: fmt.Sprintf("%.1f%% reduction", reduction),
			Detail: "acceptance floor 75%"},
		{Name: "cold remote fetch 4KiB", Value: fmt.Sprintf("%.1f allocs/op, %.0f B/op", fetchAllocs, fetchBytes),
			Detail: "full lock/fetch/unlock cycle; page data rides pooled frames"},
	}
	// The view must be at least 75% cheaper in allocated bytes than the
	// copy, and must not itself allocate page-sized data (the copying
	// path's floor is the page buffer; allow generous noise headroom from
	// background goroutines).
	res.Pass = reduction >= 75 && viewBytes < ps/4 && copyBytes >= ps
	return res, nil
}

// measureAllocs reports the mean heap allocations and bytes per call of
// fn over runs calls. Background goroutines (heartbeats, gossip) can add
// noise; callers use enough runs to drown it and assert with headroom.
func measureAllocs(runs int, fn func() error) (allocsPerOp, bytesPerOp float64, err error) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < runs; i++ {
		if err := fn(); err != nil {
			return 0, 0, err
		}
	}
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs-m0.Mallocs) / float64(runs),
		float64(m1.TotalAlloc-m0.TotalAlloc) / float64(runs), nil
}
