package experiments

import (
	"os"
	"testing"
	"time"
)

func TestE17SnapshotScan(t *testing.T) { runAndCheck(t, "E17", E17SnapshotScan) }

// TestE17SnapshotScanGate enforces the ISSUE acceptance bar in CI:
// snapshot scan throughput must scale with reader count (>= 1.4x from 1
// to 4 readers) while the hot writer keeps >= 40% of its uncontended
// rate — the "readers never block on writers, writers never wait for
// readers" claim, measured. Throughput ratios wobble more than RPC
// counts, so the gate runs a longer window than the plain test and only
// arms when the bench-smoke leg sets KHAZANA_E17_GATE=1.
func TestE17SnapshotScanGate(t *testing.T) {
	if os.Getenv("KHAZANA_E17_GATE") != "1" {
		t.Skip("set KHAZANA_E17_GATE=1 to arm the snapshot-scaling gate (CI bench-smoke leg)")
	}
	cfg := Config{Latency: 100 * time.Microsecond, Duration: 400 * time.Millisecond, Dir: t.TempDir()}
	alone, err := e17ScanWhileWriting(cfg, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	snap1, err := e17ScanWhileWriting(cfg, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	snap4, err := e17ScanWhileWriting(cfg, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	scaling := snap4.scans / snap1.scans
	kept := snap4.writes / alone.writes
	t.Logf("snapshot scans: %.0f/s at 1 reader, %.0f/s at 4 readers (%.2fx)", snap1.scans, snap4.scans, scaling)
	t.Logf("writer: %.0f/s alone, %.0f/s under 4 readers (%.0f%% kept)", alone.writes, snap4.writes, kept*100)
	if scaling < 1.4 {
		t.Errorf("snapshot scan scaling %.2fx from 1 to 4 readers is below the 1.4x gate", scaling)
	}
	if kept < 0.4 {
		t.Errorf("writer kept only %.0f%% of its uncontended rate, gate is 40%%", kept*100)
	}
}

// BenchmarkE17SnapshotScan reports the snapshot and demand scan paths
// against the same hot writer as sub-benchmarks so
// `go test -bench E17SnapshotScan` prints both rates side by side.
func BenchmarkE17SnapshotScan(b *testing.B) {
	for _, side := range []struct {
		name     string
		snapshot bool
	}{
		{"snapshot", true},
		{"demand", false},
	} {
		b.Run(side.name, func(b *testing.B) {
			cfg := Config{Latency: 100 * time.Microsecond, Duration: 200 * time.Millisecond, Dir: b.TempDir()}
			var run e17Rates
			for i := 0; i < b.N; i++ {
				var err error
				run, err = e17ScanWhileWriting(cfg, 4, side.snapshot)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(run.scans, "scans/s")
			b.ReportMetric(run.writes, "writes/s")
		})
	}
}
