package experiments

import (
	"os"
	"testing"
)

// TestE20RingLookup checks the deterministic shape of the descriptor-
// partition experiment at small cluster sizes: one-hop cold lookups with
// zero steady-state fallback walks, a measurable edge over the legacy
// cluster walk, and a working repair fallback when every bucket owner
// crashes. The hundreds-of-nodes scaling claim arms below.
func TestE20RingLookup(t *testing.T) {
	runAndCheck(t, "E20", E20RingLookup)
}

// TestE20RingLookupGate enforces the scaling acceptance bar on big
// simulated clusters: cold one-hop latency flat (≤3x max/min) from 16 to
// 256 nodes, at least 10x faster than the legacy walk at 256 nodes,
// zero steady-state fallback walks, and the owners-crashed repair path
// counted and resolved. Set KHAZANA_E20_GATE=1 to arm (CI bench-smoke
// leg).
func TestE20RingLookupGate(t *testing.T) {
	if os.Getenv("KHAZANA_E20_GATE") != "1" {
		t.Skip("set KHAZANA_E20_GATE=1 to arm the ring-lookup scaling gate (CI bench-smoke leg)")
	}
	cfg := Config{Dir: t.TempDir()}.withDefaults()
	st, err := e20Run(cfg, []int{16, 64, 256})
	if err != nil {
		t.Fatal(err)
	}
	var fallbacks uint64
	for _, s := range st.sizes {
		t.Logf("n=%-4d regions=%-4d depth=%d ring %-10v walk %-12v %6.1fx  (%d one-hop, %d fallbacks, %d walk samples, %d reader-owned buckets)",
			s.nodes, s.regions, s.depth, s.ringMean, s.walkMean, s.speedup, s.ringHits, s.fallbacks, s.walkSamples, s.localHits)
		fallbacks += s.fallbacks
	}
	t.Logf("flatness %.2fx; repair ran=%v ok=%v fallbacks=%d",
		st.flatness, st.repairRan, st.repairOK, st.repairFallbacks)
	if fallbacks != 0 {
		t.Fatalf("steady state fell back to the walk %d times (gate: 0)", fallbacks)
	}
	if st.flatness <= 0 || st.flatness > 3 {
		t.Fatalf("ring latency varied %.2fx from 16 to 256 nodes (gate: flat within 3x)", st.flatness)
	}
	last := st.sizes[len(st.sizes)-1]
	if last.speedup < 10 {
		t.Fatalf("ring is only %.1fx faster than the legacy walk at %d nodes (gate: >=10x)",
			last.speedup, last.nodes)
	}
	if !st.repairRan {
		t.Fatal("no region had both bucket owners disjoint from home/manager/reader; repair scenario never ran")
	}
	if !st.repairOK || st.repairFallbacks < 1 {
		t.Fatalf("owners-crashed lookup: resolved=%v with %d fallback walks (gate: resolved via >=1 counted fallback)",
			st.repairOK, st.repairFallbacks)
	}
}
