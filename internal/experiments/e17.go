package experiments

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"khazana"
)

// E17SnapshotScan measures the multi-version snapshot path under the
// workload it exists for: long read-only scans racing a hot writer. A
// writer on node 2 keeps one page of a region homed on node 1 under a
// near-continuous write-lock/release cycle while scanners on node 3 sweep
// every page of the region. Under plain CREW the scanners queue behind
// the writer's exclusive grant and the writer's grants invalidate the
// scanners' copies; on the snapshot path each scan pins a committed cut
// at the home's version chain and never touches the lock table.
//
// Legs: the writer alone (budget baseline), snapshot scans at 1/2/4
// concurrent readers (scaling), demand lock-read scans at 4 readers
// (contrast), and the writer's rate alongside each.
func E17SnapshotScan(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:        "E17",
		Title:     "snapshot scans vs a hot writer: never-blocking reads, bounded writer cost",
		Predicted: "snapshot scan throughput scales with reader count (>= 1.4x from 1 to 4 readers) while the writer keeps >= 40% of its uncontended rate, and the writer retains more throughput against snapshot readers than against demand lock readers (whose read locks stall its exclusive grants)",
	}

	alone, err := e17ScanWhileWriting(cfg, 0, true)
	if err != nil {
		return res, err
	}
	snap1, err := e17ScanWhileWriting(cfg, 1, true)
	if err != nil {
		return res, err
	}
	snap2, err := e17ScanWhileWriting(cfg, 2, true)
	if err != nil {
		return res, err
	}
	snap4, err := e17ScanWhileWriting(cfg, 4, true)
	if err != nil {
		return res, err
	}
	demand4, err := e17ScanWhileWriting(cfg, 4, false)
	if err != nil {
		return res, err
	}

	scaling := snap4.scans / snap1.scans
	writerKept := snap4.writes / alone.writes
	res.Rows = []Row{
		{Name: "writer alone", Value: fmt.Sprintf("%.0f writes/s", alone.writes),
			Detail: "uncontended lock/write/release cycle on one page"},
		{Name: "snapshot scans, 1 reader", Value: fmt.Sprintf("%.0f scans/s", snap1.scans),
			Detail: fmt.Sprintf("writer alongside: %.0f writes/s", snap1.writes)},
		{Name: "snapshot scans, 2 readers", Value: fmt.Sprintf("%.0f scans/s", snap2.scans),
			Detail: fmt.Sprintf("writer alongside: %.0f writes/s", snap2.writes)},
		{Name: "snapshot scans, 4 readers", Value: fmt.Sprintf("%.0f scans/s", snap4.scans),
			Detail: fmt.Sprintf("writer alongside: %.0f writes/s", snap4.writes)},
		{Name: "scan scaling 1 -> 4 readers", Value: fmt.Sprintf("%.2fx", scaling),
			Detail: "E17 gate: must be >= 1.4x"},
		{Name: "writer throughput kept under 4 readers", Value: fmt.Sprintf("%.0f%%", writerKept*100),
			Detail: "E17 gate: must be >= 40% of the uncontended rate"},
		{Name: "demand lock-read scans, 4 readers", Value: fmt.Sprintf("%.0f scans/s", demand4.scans),
			Detail: fmt.Sprintf("CREW read locks stall the writer's exclusive grants: writer alongside drops to %.0f writes/s", demand4.writes)},
	}
	res.Pass = scaling >= 1.4 && writerKept >= 0.4 && snap4.writes > demand4.writes
	return res, nil
}

const (
	e17Pages    = 8
	e17PageSize = 4096
)

// e17Rates is one combined measurement window.
type e17Rates struct {
	// scans counts full sweeps of the region per second (0 readers -> 0).
	scans float64
	// writes counts the writer's committed lock/write/release cycles per
	// second.
	writes float64
}

// e17ScanWhileWriting runs one measurement window: a hot single-page
// writer on node 2 plus `readers` scanners on node 3 sweeping all pages,
// through the snapshot path or the demand lock-read path.
func e17ScanWhileWriting(cfg Config, readers int, snapshotPath bool) (e17Rates, error) {
	var out e17Rates
	c, err := newCluster(cfg, 3)
	if err != nil {
		return out, err
	}
	defer c.Close()
	ctx := context.Background()

	const size = uint64(e17Pages * e17PageSize)
	start, err := mkRegion(ctx, c.Node(1), size, khazana.Attrs{})
	if err != nil {
		return out, err
	}
	if err := writeOnce(ctx, c.Node(2), start, make([]byte, size)); err != nil {
		return out, err
	}

	var scans, writes atomic.Int64
	var firstErr atomic.Value
	fail := func(err error) { firstErr.CompareAndSwap(nil, err) }
	stop := make(chan struct{})
	stopped := func() bool {
		select {
		case <-stop:
			return true
		default:
			return firstErr.Load() != nil
		}
	}
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // the hot writer: node 2, one page, as fast as it can
		defer wg.Done()
		buf := make([]byte, e17PageSize)
		for v := byte(1); !stopped(); v++ {
			buf[0] = v
			if err := writeOnce(ctx, c.Node(2), start, buf); err != nil {
				fail(err)
				return
			}
			writes.Add(1)
		}
	}()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() { // a scanner: node 3, sweep every page of the region
			defer wg.Done()
			for !stopped() {
				if snapshotPath {
					snap := c.Node(3).Snapshot("bench")
					for p := uint64(0); p < e17Pages; p++ {
						if _, err := snap.View(ctx, start.MustAdd(p*e17PageSize), 64); err != nil {
							fail(err)
							snap.Close()
							return
						}
					}
					snap.Close()
				} else {
					if _, err := readOnce(ctx, c.Node(3), start, size); err != nil {
						fail(err)
						return
					}
				}
				scans.Add(1)
			}
		}()
	}

	t0 := time.Now()
	time.Sleep(cfg.Duration)
	close(stop)
	wg.Wait()
	elapsed := time.Since(t0).Seconds()
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return out, err
	}
	out.scans = float64(scans.Load()) / elapsed
	out.writes = float64(writes.Load()) / elapsed
	return out, nil
}
