package experiments

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"time"

	"khazana"
	"khazana/internal/baseline"
	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
	"khazana/kfs"
	"khazana/kobj"
)

// E7Filesystem compares the Khazana-based file system against the
// hand-coded central-server baseline (§6: "services written on top of our
// infrastructure may not perform as well as the hand-coded versions",
// traded for development simplicity plus availability, caching, and
// location transparency).
func E7Filesystem(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:        "E7",
		Title:     "§4.1+§6 — kfs vs hand-coded central server: create/write/read 4K files",
		Predicted: "the hand-coded baseline beats a remote kfs mount (middleware overhead); a kfs mount co-located with the data beats the baseline (caching/locality, which the central server cannot offer)",
	}
	ctx := context.Background()
	const fileSize = 4096
	payload := bytes.Repeat([]byte("k"), fileSize)

	// kfs on a 3-node cluster; a mount on the home node and one remote.
	c, err := newCluster(cfg, 3)
	if err != nil {
		return res, err
	}
	defer c.Close()
	super, err := kfs.Mkfs(ctx, c.Node(1), "bench", khazana.Attrs{})
	if err != nil {
		return res, err
	}
	fsLocal, err := kfs.Mount(ctx, c.Node(1), super, "bench")
	if err != nil {
		return res, err
	}
	fsRemote, err := kfs.Mount(ctx, c.Node(3), super, "bench")
	if err != nil {
		return res, err
	}

	var created int
	kfsLocalWrite, err := opsPerSecond(cfg, 1, func(int) error {
		created++
		f, err := fsLocal.Create(ctx, fmt.Sprintf("/l%04d", created))
		if err != nil {
			return err
		}
		_, err = f.WriteAt(ctx, payload, 0)
		return err
	})
	if err != nil {
		return res, err
	}
	var rcreated int
	kfsRemoteWrite, err := opsPerSecond(cfg, 1, func(int) error {
		rcreated++
		f, err := fsRemote.Create(ctx, fmt.Sprintf("/r%04d", rcreated))
		if err != nil {
			return err
		}
		_, err = f.WriteAt(ctx, payload, 0)
		return err
	})
	if err != nil {
		return res, err
	}
	f0, err := fsRemote.Open(ctx, "/l0001")
	if err != nil {
		return res, err
	}
	buf := make([]byte, fileSize)
	kfsRemoteRead, err := opsPerSecond(cfg, 1, func(int) error {
		_, err := f0.ReadAt(ctx, buf, 0)
		return err
	})
	if err != nil {
		return res, err
	}
	fl, err := fsLocal.Open(ctx, "/l0001")
	if err != nil {
		return res, err
	}
	kfsLocalRead, err := opsPerSecond(cfg, 1, func(int) error {
		_, err := fl.ReadAt(ctx, buf, 0)
		return err
	})
	if err != nil {
		return res, err
	}

	// Baseline central server on the same simulated network geometry:
	// a remote client pays exactly one RPC per operation.
	net := c.Network
	srvTr, err := net.Attach(ktypes.NodeID(900))
	if err != nil {
		return res, err
	}
	baseline.NewServer(srvTr)
	cliTr, err := net.Attach(ktypes.NodeID(901))
	if err != nil {
		return res, err
	}
	bcli := baseline.NewClient(cliTr, 900)
	var bkey uint64
	baseWrite, err := opsPerSecond(cfg, 1, func(int) error {
		bkey++
		return bcli.Put(ctx, gaddr.FromUint64(bkey*0x10000), 0, payload)
	})
	if err != nil {
		return res, err
	}
	baseRead, err := opsPerSecond(cfg, 1, func(int) error {
		_, err := bcli.Get(ctx, gaddr.FromUint64(0x10000), 0, fileSize)
		return err
	})
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows,
		Row{Name: "kfs write (co-located mount)", Value: fmtRate(kfsLocalWrite), Detail: "all regions homed locally; no network"},
		Row{Name: "kfs write (remote mount)", Value: fmtRate(kfsRemoteWrite), Detail: "inode + block region traffic to the home"},
		Row{Name: "kfs read (co-located mount)", Value: fmtRate(kfsLocalRead), Detail: "local CREW grants"},
		Row{Name: "kfs read (remote mount)", Value: fmtRate(kfsRemoteRead), Detail: "CREW read grants from the home per lock"},
		Row{Name: "baseline write (remote client)", Value: fmtRate(baseWrite), Detail: "single RPC, no replication, no caching"},
		Row{Name: "baseline read (remote client)", Value: fmtRate(baseRead), Detail: "every read pays an RPC"},
	)
	res.Pass = baseWrite > kfsRemoteWrite && baseRead > kfsRemoteRead &&
		kfsLocalWrite > baseWrite && kfsLocalRead > baseRead
	return res, nil
}

// E8Objects measures the local-replica vs remote-invocation tradeoff of
// the object runtime (§4.2: use Khazana location information "to decide if
// it is more efficient to load a local copy of the object or perform a
// remote invocation"). The object's per-object consistency choice decides
// the winner: a weakly consistent object serves repeated reads from its
// local replica with no traffic, while a strictly consistent (CREW) object
// pays home round-trips even for "local" access, so RPC stays competitive.
func E8Objects(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:        "E8",
		Title:     "§4.2 — object invocation: local replica vs remote RPC, strict vs weak objects",
		Predicted: "RPC wins for single-shot access; a local replica of a weak object wins for repeated reads (crossover); for strict objects RPC remains competitive because local access still pays consistency traffic",
	}
	counter := kobj.Type{
		Name: "counter",
		Methods: map[string]kobj.MethodSpec{
			"get": {ReadOnly: true, Fn: func(state, _ []byte) ([]byte, []byte, error) {
				return state, append([]byte(nil), state...), nil
			}},
			"add": {Fn: func(state, args []byte) ([]byte, []byte, error) {
				v := binary.LittleEndian.Uint64(state) + 1
				out := make([]byte, 8)
				binary.LittleEndian.PutUint64(out, v)
				return out, out, nil
			}},
		},
	}
	ctx := context.Background()
	measure := func(attrs khazana.Attrs, policy kobj.Policy, method string, calls int) (time.Duration, error) {
		c, err := newCluster(cfg, 2)
		if err != nil {
			return 0, err
		}
		defer c.Close()
		r1 := kobj.NewRuntime(c.Node(1), "bench")
		r1.RegisterType(counter)
		r2 := kobj.NewRuntime(c.Node(2), "bench")
		r2.RegisterType(counter)
		ref, err := r1.New(ctx, "counter", make([]byte, 8), 0, attrs)
		if err != nil {
			return 0, err
		}
		r2.SetPolicy(policy)
		t0 := time.Now()
		for i := 0; i < calls; i++ {
			if _, err := r2.Invoke(ctx, ref, method, make([]byte, 8)); err != nil {
				return 0, err
			}
		}
		return time.Since(t0) / time.Duration(calls), nil
	}
	weak := khazana.Attrs{Level: khazana.Weak}
	strict := khazana.Attrs{}
	type meas struct {
		name   string
		attrs  khazana.Attrs
		policy kobj.Policy
		method string
		calls  int
	}
	cells := []meas{
		{"weak obj, RPC, single read", weak, kobj.PolicyRemote, "get", 1},
		{"weak obj, local, single read", weak, kobj.PolicyLocal, "get", 1},
		{"weak obj, RPC, 50 reads", weak, kobj.PolicyRemote, "get", 50},
		{"weak obj, local, 50 reads", weak, kobj.PolicyLocal, "get", 50},
		{"weak obj, auto, 50 reads", weak, kobj.PolicyAuto, "get", 50},
		{"strict obj, RPC, 50 reads", strict, kobj.PolicyRemote, "get", 50},
		{"strict obj, local, 50 reads", strict, kobj.PolicyLocal, "get", 50},
		{"weak obj, local, 50 writes", weak, kobj.PolicyLocal, "add", 50},
		{"weak obj, RPC, 50 writes", weak, kobj.PolicyRemote, "add", 50},
	}
	got := make(map[string]time.Duration, len(cells))
	for _, m := range cells {
		d, err := measure(m.attrs, m.policy, m.method, m.calls)
		if err != nil {
			return res, fmt.Errorf("%s: %w", m.name, err)
		}
		got[m.name] = d
		res.Rows = append(res.Rows, Row{Name: m.name, Value: fmtDur(d) + "/call"})
	}
	// The single-call cells are informative but noisy on short timers;
	// the pass criteria use the amortized 50-call comparisons.
	res.Pass = got["weak obj, local, 50 reads"] < got["weak obj, RPC, 50 reads"] &&
		got["strict obj, local, 50 reads"] > got["weak obj, local, 50 reads"]
	return res, nil
}

// E9Failure drives the failure-handling machinery (§3.5): operation
// success across a home crash with failover, and the background retry of
// release-side operations.
func E9Failure(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:        "E9",
		Title:     "§3.5 failure handling — ops across a home crash; background release retry",
		Predicted: "reads fail over to the surviving replica; releases never surface errors and drain once the home returns",
	}
	c, err := newCluster(cfg, 4)
	if err != nil {
		return res, err
	}
	defer c.Close()
	ctx := context.Background()

	start, err := mkRegion(ctx, c.Node(2), 4096, khazana.Attrs{MinReplicas: 2})
	if err != nil {
		return res, err
	}
	if err := writeOnce(ctx, c.Node(2), start, []byte("survives crashes")); err != nil {
		return res, err
	}
	c.Node(2).Core().MaintainReplicas()

	// Phase 1: healthy reads from node 4.
	okBefore := 0
	for i := 0; i < 10; i++ {
		if _, err := readOnce(ctx, c.Node(4), start, 16); err == nil {
			okBefore++
		}
	}
	// Phase 2: crash the home mid-workload; reads must fail over.
	c.Crash(2)
	okDuring := 0
	var failoverDur time.Duration
	for i := 0; i < 10; i++ {
		d, err := timeOp(func() error {
			data, err := readOnce(ctx, c.Node(4), start, 16)
			if err == nil && string(data) != "survives crashes" {
				return fmt.Errorf("wrong data %q", data)
			}
			return err
		})
		if err == nil {
			okDuring++
			if i == 0 {
				failoverDur = d
			}
		}
	}
	// Phase 3: release retry. Write a region homed on node 3, crash
	// node 3 before unlock.
	start2, err := mkRegion(ctx, c.Node(3), 4096, khazana.Attrs{})
	if err != nil {
		return res, err
	}
	lk, err := c.Node(4).Lock(ctx, khazana.Range{Start: start2, Size: 4096}, khazana.LockWrite, "bench")
	if err != nil {
		return res, err
	}
	if err := lk.Write(start2, []byte("deferred release")); err != nil {
		return res, err
	}
	c.Crash(3)
	unlockErr := lk.Unlock(ctx)
	queued := c.Node(4).Core().PendingRetries()
	c.Restart(3)
	c.Node(4).Core().RunRetries()
	drained := c.Node(4).Core().PendingRetries() == 0
	data, err := readOnce(ctx, c.Node(3), start2, 16)
	delivered := err == nil && string(data) == "deferred release"

	res.Rows = append(res.Rows,
		Row{Name: "reads before crash", Value: fmt.Sprintf("%d/10 ok", okBefore)},
		Row{Name: "reads after home crash", Value: fmt.Sprintf("%d/10 ok", okDuring), Detail: "first (failover) read took " + fmtDur(failoverDur)},
		Row{Name: "unlock with home down", Value: fmt.Sprintf("err=%v", unlockErr), Detail: fmt.Sprintf("%d release(s) queued", queued)},
		Row{Name: "retry after restart", Value: fmt.Sprintf("drained=%v delivered=%v", drained, delivered)},
	)
	res.Pass = okBefore == 10 && okDuring == 10 && unlockErr == nil && queued > 0 && drained && delivered
	return res, nil
}

// E10PageSize sweeps region page sizes (§2: clients can specify pages
// larger than 4 KB) for a sequential-scan workload versus fine-grain
// sharing with false-sharing pressure.
func E10PageSize(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:        "E10",
		Title:     "§2 page size — 4K/16K/64K pages: sequential scan vs fine-grain sharing",
		Predicted: "large pages amortize fetches for sequential scans; small pages win when nodes share fine-grain data (false sharing)",
	}
	ctx := context.Background()
	const regionSize = 256 * 1024
	scan := make(map[uint32]time.Duration)
	sharing := make(map[uint32]float64)
	for _, ps := range []uint32{4096, 16384, 65536} {
		// Per-page transfer mode: this experiment isolates how page size
		// amortizes per-page fetch round trips, which the batched
		// multi-page pipeline (measured separately in E13) collapses
		// into one RPC regardless of page size.
		c, err := newCluster(cfg, 3, khazana.WithPerPageTransfers())
		if err != nil {
			return res, err
		}
		start, err := mkRegion(ctx, c.Node(1), regionSize, khazana.Attrs{PageSize: ps})
		if err != nil {
			c.Close()
			return res, err
		}
		if err := writeOnce(ctx, c.Node(1), start, bytes.Repeat([]byte("s"), regionSize)); err != nil {
			c.Close()
			return res, err
		}
		// Sequential scan from a cold remote node: fetch count =
		// regionSize / pageSize.
		scanDur, err := timeOp(func() error {
			_, err := readOnce(ctx, c.Node(2), start, regionSize)
			return err
		})
		if err != nil {
			c.Close()
			return res, err
		}
		scan[ps] = scanDur

		// Fine-grain sharing: node 2 writes offset 0, node 3 writes
		// offset pageSize-independent 64K apart? No — both write within
		// the FIRST 4K-aligned slots of different 4K units that share a
		// large page. With 4K pages the writers touch different pages;
		// with 64K pages they collide on one page (false sharing).
		off2 := start
		off3 := start.MustAdd(8192)
		rate, err := opsPerSecond(cfg, 2, func(w int) error {
			node := c.Node(w + 2)
			off := off2
			if w == 1 {
				off = off3
			}
			lk, err := node.Lock(ctx, khazana.Range{Start: off, Size: 64}, khazana.LockWrite, "bench")
			if err != nil {
				return err
			}
			defer lk.Unlock(ctx)
			return lk.Write(off, []byte("fine-grain update"))
		})
		c.Close()
		if err != nil {
			return res, err
		}
		sharing[ps] = rate
		res.Rows = append(res.Rows, Row{
			Name:   fmt.Sprintf("page size %dK", ps/1024),
			Value:  "scan " + fmtDur(scanDur),
			Detail: "fine-grain sharing: " + fmtRate(rate),
		})
	}
	res.Pass = scan[65536] < scan[4096] && sharing[4096] > sharing[65536]
	return res, nil
}

// E11StaleMap exercises the relaxed consistency of the address map and
// region directory (§3.1/§3.2): stale entries do not break lookups — a
// message to a node that is no longer home triggers a fresh lookup.
func E11StaleMap(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:        "E11",
		Title:     "§3.1/§3.2 — stale hints: access through an out-of-date descriptor still succeeds",
		Predicted: "stale-descriptor access succeeds after an automatic refresh, paying extra lookups but never failing",
	}
	c, err := newCluster(cfg, 3)
	if err != nil {
		return res, err
	}
	defer c.Close()
	ctx := context.Background()

	start, err := mkRegion(ctx, c.Node(2), 4096, khazana.Attrs{MinReplicas: 2})
	if err != nil {
		return res, err
	}
	if err := writeOnce(ctx, c.Node(2), start, []byte("findable")); err != nil {
		return res, err
	}
	// Node 3 caches the descriptor (home = n2).
	staleDesc, err := c.Node(3).GetAttr(ctx, start)
	if err != nil {
		return res, err
	}
	// The home migrates: replica maintenance recruits n1, then n1 is
	// promoted to primary.
	c.Node(2).Core().MaintainReplicas()
	fresh, err := c.Node(2).GetAttr(ctx, start)
	if err != nil {
		return res, err
	}
	if len(fresh.Home) < 2 {
		return res, fmt.Errorf("maintenance did not add a home: %v", fresh.Home)
	}
	c.Crash(2) // old primary gone; n3's cached descriptor is now stale

	freshDur, staleOK := time.Duration(0), false
	freshDur, err = timeOp(func() error {
		data, err := readOnce(ctx, c.Node(3), start, 8)
		if err != nil {
			return err
		}
		if string(data) != "findable" {
			return fmt.Errorf("wrong data %q", data)
		}
		staleOK = true
		return nil
	})
	if err != nil {
		return res, err
	}
	// Repeat: the refreshed descriptor is now cached.
	repeatDur, err := timeOp(func() error {
		_, err := readOnce(ctx, c.Node(3), start, 8)
		return err
	})
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows,
		Row{Name: "stale descriptor home", Value: staleDesc.Home[0].String(), Detail: "cached before migration; that node crashed"},
		Row{Name: "access via stale descriptor", Value: fmt.Sprintf("ok=%v in %s", staleOK, fmtDur(freshDur)), Detail: "automatic refresh + promotion"},
		Row{Name: "repeat access", Value: fmtDur(repeatDur), Detail: "fresh descriptor cached"},
	)
	res.Pass = staleOK && repeatDur < freshDur
	return res, nil
}
