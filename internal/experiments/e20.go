package experiments

import (
	"context"
	"fmt"
	"time"

	"khazana"
	"khazana/internal/ring"
	"khazana/internal/telemetry"
)

// E20 measures the consistent-hashing descriptor partition against the
// §3.2 tree-walk fallback as the deployment grows. Cluster size scales
// both dimensions a real deployment grows: members and regions (two per
// node here), so the address map deepens with scale and a cold tree walk
// pays ever more sequential remote page reads — E3 measured ~19.6ms at
// depth 2. The ring path hashes the address to its bucket owners and
// resolves in one RPC hop regardless of either dimension, so its cold
// latency should stay flat from 16 to 256 nodes while the walk degrades.

const (
	// e20SamplePoints is how many regions each phase cold-reads,
	// spread evenly across the address range.
	e20SamplePoints = 8
	// e20RingSamples is how many cold lookups are timed per sampled
	// region on the ring path.
	e20RingSamples = 5
)

// e20SizeStats is one cluster size's measurements.
type e20SizeStats struct {
	nodes       int
	regions     int
	depth       int           // address-map tree depth at this scale
	ringMean    time.Duration // mean cold one-hop lookup latency
	walkMean    time.Duration // mean cold tree-walk lookup latency
	speedup     float64       // walkMean / ringMean
	ringHits    uint64        // reader's ring.lookups delta (want all samples)
	fallbacks   uint64        // reader's ring.fallback_walks delta (want 0)
	walkSamples int           // legacy samples that actually paid the walk
	localHits   int           // buckets the reader itself owned (not timed)
}

// e20Stats is the full experiment outcome.
type e20Stats struct {
	sizes           []e20SizeStats
	flatness        float64 // max/min ring mean across sizes
	repairRan       bool    // a region with home-disjoint owners existed
	repairFallbacks uint64  // reader fallback-walk delta during repair
	repairOK        bool    // lookup survived both bucket owners crashing
}

// counterVal reads one telemetry counter from a node's registry.
func counterVal(n *khazana.Node, name string) uint64 {
	for _, c := range n.Core().MetricsSnapshot().Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// e20MakeRegions creates `count` 4KiB regions homed round-robin on nodes
// 2..n-1 (node 1 is the manager and map home; node n is the cold
// reader). Regions homed on distinct nodes come from distinct 1GiB
// allocator chunks, so they land in distinct ring buckets with
// independent owner sets.
func e20MakeRegions(ctx context.Context, c *khazana.Cluster, count int) ([]khazana.Addr, error) {
	n := c.Len()
	starts := make([]khazana.Addr, count)
	for i := range starts {
		h := 2 + i%(n-2)
		s, err := mkRegion(ctx, c.Node(h), 4096, khazana.Attrs{})
		if err != nil {
			return nil, fmt.Errorf("region %d on node %d: %w", i, h, err)
		}
		starts[i] = s
	}
	return starts, nil
}

// e20Converge pushes one heartbeat from every node (full membership view
// everywhere, ring synced to it) and drains in-flight announces.
func e20Converge(c *khazana.Cluster) {
	for i := 1; i <= c.Len(); i++ {
		c.Node(i).Core().SendHeartbeat()
	}
	for i := 1; i <= c.Len(); i++ {
		c.Node(i).Core().RingSettle()
	}
}

// e20Probe measures cold-lookup latency at one cluster size: the ring
// path on a partitioned cluster, then the tree-walk fallback on a
// WithNoRing twin of the same shape.
func e20Probe(cfg Config, n int) (e20SizeStats, error) {
	st := e20SizeStats{nodes: n, regions: 2 * n}
	ctx := context.Background()

	// --- Ring path -----------------------------------------------------
	c, err := newCluster(cfg, n)
	if err != nil {
		return st, err
	}
	defer c.Close()
	starts, err := e20MakeRegions(ctx, c, st.regions)
	if err != nil {
		return st, err
	}
	e20Converge(c)

	reader := c.Node(n)
	core := reader.Core()
	hits0 := core.Statistics().RingHits.Load()
	fall0 := counterVal(reader, telemetry.MetricRingFallbackWalks)
	var ringTotal time.Duration
	ringSamples := 0
	for k := 0; k < e20SamplePoints; k++ {
		s := starts[k*len(starts)/e20SamplePoints]
		// Skip buckets the reader co-owns: its table answers locally with
		// zero RPCs, which would flatter the one-hop mean.
		local := false
		for _, o := range core.Ring().Owners(ring.BucketOf(s)) {
			if int(o) == n {
				local = true
				break
			}
		}
		if local {
			st.localHits++
			continue
		}
		for i := 0; i < e20RingSamples; i++ {
			core.RegionDir().Remove(s)
			d, err := timeOp(func() error {
				_, err := reader.GetAttr(ctx, s)
				return err
			})
			if err != nil {
				return st, fmt.Errorf("n=%d ring lookup %v: %w", n, s, err)
			}
			ringTotal += d
			ringSamples++
		}
	}
	if ringSamples == 0 {
		return st, fmt.Errorf("n=%d: reader co-owns every sampled bucket", n)
	}
	st.ringMean = ringTotal / time.Duration(ringSamples)
	st.ringHits = core.Statistics().RingHits.Load() - hits0
	st.fallbacks = counterVal(reader, telemetry.MetricRingFallbackWalks) - fall0

	// --- Tree-walk fallback --------------------------------------------
	// A WithNoRing twin restores the paper's cold tail in its hint-miss
	// regime — the state a manager restart or hint eviction leaves, and
	// the regime the ring retires. No heartbeats run here: they would
	// seed exact manager hints for every region, which is the separate
	// §3.1 hint stage E3 already characterizes. Each sample reads from a
	// freshly joined node so the map's tree pages are cold, exactly like
	// the one-hop samples above (the ring needs no page cache at all).
	b, err := newCluster(cfg, n, khazana.WithNoRing())
	if err != nil {
		return st, err
	}
	defer b.Close()
	bstarts, err := e20MakeRegions(ctx, b, st.regions)
	if err != nil {
		return st, err
	}
	if st.depth, err = b.Node(1).Core().AddressMap().Depth(ctx); err != nil {
		return st, err
	}
	var walkTotal time.Duration
	for k := 0; k < e20SamplePoints; k++ {
		s := bstarts[k*len(bstarts)/e20SamplePoints]
		fresh, err := b.AddNode()
		if err != nil {
			return st, err
		}
		d, err := timeOp(func() error {
			_, err := fresh.GetAttr(ctx, s)
			return err
		})
		if err != nil {
			return st, fmt.Errorf("n=%d walk lookup %v: %w", n, s, err)
		}
		// Only count samples that really paid the walk; a manager-adjacent
		// cache can short-circuit the odd region (e.g. a descriptor still
		// in node 1's directory from the chunk grant).
		if fresh.Core().Statistics().TreeWalks.Load() == 1 {
			walkTotal += d
			st.walkSamples++
		}
	}
	if st.walkSamples == 0 {
		return st, fmt.Errorf("n=%d: no cold lookup reached the tree walk", n)
	}
	st.walkMean = walkTotal / time.Duration(st.walkSamples)
	st.speedup = float64(st.walkMean) / float64(st.ringMean)
	return st, nil
}

// e20Repair exercises the repair-only fallback: crash every ring owner
// of a region's bucket (none of them the home, the manager, or the
// reader), then prove a cold lookup still resolves through the legacy
// tail and counts a fallback walk — the steady-state-zero counter's one
// legitimate reason to move.
func e20Repair(cfg Config) (ran bool, fallbacks uint64, ok bool, err error) {
	const n = 12
	ctx := context.Background()
	c, cerr := newCluster(cfg, n)
	if cerr != nil {
		return false, 0, false, cerr
	}
	defer c.Close()
	starts, merr := e20MakeRegions(ctx, c, n-2)
	if merr != nil {
		return false, 0, false, merr
	}
	e20Converge(c)

	reader := c.Node(n)
	core := reader.Core()
	for i, s := range starts {
		home := 2 + i%(n-2)
		owners := core.Ring().Owners(ring.BucketOf(s))
		disjoint := len(owners) > 0
		for _, o := range owners {
			if int(o) == 1 || int(o) == home || int(o) == n {
				disjoint = false
				break
			}
		}
		if !disjoint {
			continue
		}
		for _, o := range owners {
			c.Crash(int(o))
		}
		fall0 := counterVal(reader, telemetry.MetricRingFallbackWalks)
		core.RegionDir().Remove(s)
		lctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		_, gerr := reader.GetAttr(lctx, s)
		cancel()
		fallbacks = counterVal(reader, telemetry.MetricRingFallbackWalks) - fall0
		return true, fallbacks, gerr == nil, nil
	}
	return false, 0, false, nil
}

// e20Run probes every cluster size, then runs the repair scenario.
func e20Run(cfg Config, sizes []int) (e20Stats, error) {
	var st e20Stats
	for _, n := range sizes {
		s, err := e20Probe(cfg, n)
		if err != nil {
			return st, err
		}
		st.sizes = append(st.sizes, s)
	}
	minMean, maxMean := st.sizes[0].ringMean, st.sizes[0].ringMean
	for _, s := range st.sizes[1:] {
		if s.ringMean < minMean {
			minMean = s.ringMean
		}
		if s.ringMean > maxMean {
			maxMean = s.ringMean
		}
	}
	if minMean > 0 {
		st.flatness = float64(maxMean) / float64(minMean)
	}
	ran, fallbacks, ok, err := e20Repair(cfg)
	if err != nil {
		return st, err
	}
	st.repairRan, st.repairFallbacks, st.repairOK = ran, fallbacks, ok
	return st, nil
}

// E20RingLookup reports the descriptor-partition scaling experiment:
// cold-lookup latency flat across cluster sizes on the ring path, a
// tree-walk fallback that degrades as the map deepens, zero steady-state
// fallbacks, and a working repair fallback when every bucket owner dies.
func E20RingLookup(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:        "E20",
		Title:     "consistent-hash descriptor partition — O(1) cold lookups vs the §3.2 tree walk",
		Predicted: "one-hop cold lookup latency stays flat as members and regions grow while the tree walk deepens and degrades; steady state never falls back to the walk, and killing every bucket owner only demotes that lookup to the (counted) repair fallback",
	}
	st, err := e20Run(cfg, []int{8, 16, 32})
	if err != nil {
		return res, err
	}
	var fallbacks uint64
	for _, s := range st.sizes {
		res.Rows = append(res.Rows, Row{
			Name:  fmt.Sprintf("%d nodes / %d regions, cold lookup", s.nodes, s.regions),
			Value: fmt.Sprintf("ring %s vs walk %s", fmtDur(s.ringMean), fmtDur(s.walkMean)),
			Detail: fmt.Sprintf("%.1fx speedup at map depth %d; %d one-hop lookups, %d fallback walks",
				s.speedup, s.depth, s.ringHits, s.fallbacks),
		})
		fallbacks += s.fallbacks
	}
	last := st.sizes[len(st.sizes)-1]
	res.Rows = append(res.Rows,
		Row{Name: "ring latency flatness", Value: fmt.Sprintf("%.2fx max/min across sizes", st.flatness),
			Detail: "O(1) path should not feel cluster growth"},
		Row{Name: "steady-state fallback walks", Value: fmt.Sprintf("%d", fallbacks)},
		Row{Name: "owners-crashed repair", Value: fmt.Sprintf("ran=%v resolved=%v", st.repairRan, st.repairOK),
			Detail: fmt.Sprintf("%d fallback walk(s) counted", st.repairFallbacks)},
	)
	res.Pass = fallbacks == 0 &&
		st.flatness > 0 && st.flatness <= 4 &&
		last.speedup >= 3 &&
		st.repairRan && st.repairOK && st.repairFallbacks >= 1
	return res, nil
}
