package experiments

import (
	"os"
	"testing"
	"time"
)

// TestE19Failover checks the deterministic shape of the consensus
// failover experiment: a home killed mid-cycle fails over to a log
// standby via one election, the crash-straddling release drains, and
// every acked sequence reads back. Shape only — the failover-time bound
// flakes under arbitrary scheduler load, so it arms below.
func TestE19Failover(t *testing.T) {
	runAndCheck(t, "E19", E19Failover)
}

// TestE19FailoverGate enforces the CI bench-smoke availability budget:
// the crash-to-first-successful-cycle window must stay under 2s — the
// lease timeout plus one election round, with margin — on top of the
// shape checks (zero lost releases, zero client-visible errors). Set
// KHAZANA_E19_GATE=1 to arm (CI bench-smoke leg).
func TestE19FailoverGate(t *testing.T) {
	if os.Getenv("KHAZANA_E19_GATE") != "1" {
		t.Skip("set KHAZANA_E19_GATE=1 to arm the failover gate (CI bench-smoke leg)")
	}
	cfg := Config{Dir: t.TempDir()}.withDefaults()
	st, err := e19Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("failover %v; %d+%d cycles ok, %d errors; acked seq %d read back %d; home %d -> %d (%d elections, %d won)",
		st.failover, st.okBefore, st.okAfter, st.errors, st.lastAck, st.finalSeq,
		st.oldHome, st.newHome, st.votes, st.wins)
	if st.errors != 0 {
		t.Fatalf("%d client-visible errors across the crash (gate: none)", st.errors)
	}
	if st.finalSeq != st.lastAck {
		t.Fatalf("lost release: acked seq %d but read back %d", st.lastAck, st.finalSeq)
	}
	if !st.drained {
		t.Fatal("crash-straddling release never drained to the new home")
	}
	if st.newHome == 0 || st.newHome == st.oldHome {
		t.Fatalf("no elected successor (home %d -> %d)", st.oldHome, st.newHome)
	}
	if st.failover <= 0 || st.failover >= 2*time.Second {
		t.Fatalf("failover took %v (budget: under 2s)", st.failover)
	}
}
