package experiments

import (
	"context"
	"fmt"
	"time"

	"khazana"
	"khazana/internal/telemetry"
)

// E19 kills a region's home under a live lock/write/unlock workload and
// measures the consensus failover path (§3.5, upgraded by the replicated
// region-metadata log): the client's next lock rides promoteHome into a
// standby's election, the winner resumes from the log, and every release
// the client saw acknowledged — including the one straddling the crash,
// which the §3.5 retry queue redelivers to the new home — must be
// readable afterwards with no client-visible errors.

const (
	e19PreCycles  = 15
	e19PostCycles = 15
)

type e19Stats struct {
	okBefore int           // successful cycles before the crash
	okAfter  int           // successful cycles after the crash
	errors   int           // client-visible cycle errors (gate: zero)
	failover time.Duration // crash -> first successful post-crash cycle
	queued   int           // releases queued by the crash-straddling unlock
	drained  bool          // retry queue empty after RunRetries
	lastAck  int           // highest sequence acked to the client
	finalSeq int           // sequence read back through the new home
	oldHome  khazana.NodeID
	newHome  khazana.NodeID
	votes    uint64 // replog elections across the cluster
	wins     uint64 // replog failovers (won elections) across the cluster
}

// e19Write lock-writes one sequence-stamped payload (12 bytes).
func e19Write(ctx context.Context, n *khazana.Node, start khazana.Addr, seq int) error {
	return writeOnce(ctx, n, start, []byte(fmt.Sprintf("seq=%08d", seq)))
}

// e19Run drives the scenario on a 5-node cluster: a MinReplicas-3 region
// homed on node 2 (standbys follow its log), a client on node 5 cycling
// lock/write/unlock, and a crash of node 2 mid-cycle — after the write is
// locked in but before its release reaches the home.
func e19Run(cfg Config) (e19Stats, error) {
	var st e19Stats
	c, err := newCluster(cfg, 5)
	if err != nil {
		return st, err
	}
	defer c.Close()
	ctx := context.Background()

	start, err := mkRegion(ctx, c.Node(2), 4096, khazana.Attrs{MinReplicas: 3})
	if err != nil {
		return st, err
	}
	// Background loops are off under the harness: refresh the home's
	// membership view, then grow the home list to MinReplicas so the
	// standbys exist and follow the region's log.
	c.Node(2).Core().SendHeartbeat()
	c.Node(2).Core().MaintainReplicas()
	d, err := c.Node(2).GetAttr(ctx, start)
	if err != nil {
		return st, err
	}
	if len(d.Home) < 3 {
		return st, fmt.Errorf("home list %v never reached MinReplicas 3", d.Home)
	}
	st.oldHome = d.Home[0]

	client := c.Node(5)
	seq := 0

	// Phase 1: healthy cycles; every release is quorum-logged by the home
	// before the client sees the ack.
	for i := 0; i < e19PreCycles; i++ {
		seq++
		if err := e19Write(ctx, client, start, seq); err != nil {
			st.errors++
			continue
		}
		st.okBefore++
		st.lastAck = seq
	}

	// Phase 2: crash the home mid-cycle — lock granted, write buffered,
	// home killed, then unlock. The release cannot reach the dead home;
	// §3.5 queues it client-side and the unlock still succeeds, so this
	// sequence counts as acked and must survive.
	seq++
	lk, err := client.Lock(ctx, khazana.Range{Start: start, Size: 4096}, khazana.LockWrite, "bench")
	if err != nil {
		return st, err
	}
	if err := lk.Write(start, []byte(fmt.Sprintf("seq=%08d", seq))); err != nil {
		return st, err
	}
	crashAt := time.Now()
	c.Crash(2)
	if err := lk.Unlock(ctx); err != nil {
		st.errors++
	} else {
		st.lastAck = seq
	}
	st.queued = client.Core().PendingRetries()

	// Phase 3: the workload keeps going. The first cycle pays for the
	// failover: unreachable home, promoteHome, one election at a standby,
	// resume from the log.
	first := true
	for i := 0; i < e19PostCycles; i++ {
		seq++
		if err := e19Write(ctx, client, start, seq); err != nil {
			st.errors++
			continue
		}
		if first {
			st.failover = time.Since(crashAt)
			first = false
		}
		st.okAfter++
		st.lastAck = seq
	}

	// Phase 4: drain the crash-straddling release. The retry re-resolves
	// the home — now the election winner — and ships the page's current
	// frame, so late delivery cannot regress newer writes.
	client.Core().RunRetries()
	st.drained = client.Core().PendingRetries() == 0

	// Phase 5: a fresh reader (node 4, never touched the region) must see
	// the last acked sequence through the new home.
	data, err := readOnce(ctx, c.Node(4), start, 12)
	if err != nil {
		return st, fmt.Errorf("read-back through new home: %w", err)
	}
	if _, err := fmt.Sscanf(string(data), "seq=%08d", &st.finalSeq); err != nil {
		return st, fmt.Errorf("read-back payload %q: %w", data, err)
	}

	// The promotion was a real election: a surviving follower agrees on
	// the new leader.
	for _, h := range d.Home[1:] {
		if leader, _ := c.Node(int(h)).Core().Repl().Leader(start); leader != 0 && leader != st.oldHome {
			st.newHome = leader
			break
		}
	}
	for _, n := range c.Nodes() {
		for _, ctr := range n.Core().MetricsSnapshot().Counters {
			switch ctr.Name {
			case telemetry.MetricReplElections:
				st.votes += ctr.Value
			case telemetry.MetricReplFailovers:
				st.wins += ctr.Value
			}
		}
	}
	return st, nil
}

// E19Failover reports the consensus failover experiment: bounded
// takeover time and zero lost releases across a home crash.
func E19Failover(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:        "E19",
		Title:     "§3.5 consensus failover — home killed under live lock/write/unlock workload",
		Predicted: "one election at a standby resumes the region from the replicated log; no acked release is lost and the client sees no errors",
	}
	st, err := e19Run(cfg)
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows,
		Row{Name: "cycles before crash", Value: fmt.Sprintf("%d/%d ok", st.okBefore, e19PreCycles)},
		Row{Name: "cycles after crash", Value: fmt.Sprintf("%d/%d ok", st.okAfter, e19PostCycles),
			Detail: "first (failover) cycle took " + fmtDur(st.failover)},
		Row{Name: "crash-straddling release", Value: fmt.Sprintf("%d queued, drained=%v", st.queued, st.drained)},
		Row{Name: "acked vs read back", Value: fmt.Sprintf("acked seq %d, read seq %d", st.lastAck, st.finalSeq)},
		Row{Name: "home", Value: fmt.Sprintf("node %d -> node %d", st.oldHome, st.newHome),
			Detail: fmt.Sprintf("%d election(s), %d won", st.votes, st.wins)},
		Row{Name: "client-visible errors", Value: fmt.Sprintf("%d", st.errors)},
	)
	res.Pass = st.errors == 0 &&
		st.okBefore == e19PreCycles && st.okAfter == e19PostCycles &&
		st.queued > 0 && st.drained &&
		st.finalSeq == st.lastAck &&
		st.newHome != 0 && st.newHome != st.oldHome &&
		st.wins >= 1
	return res, nil
}
