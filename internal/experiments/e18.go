package experiments

import (
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"khazana"
	"khazana/internal/telemetry"
	"khazana/internal/transport"
)

// E18FanIn measures one daemon under massive client fan-in over real TCP
// — the workload the multiplexed transport and sharded node state exist
// for. N client goroutines, each owning a private one-page region homed
// at the daemon, hammer lock/write/unlock cycles through one shared
// client-side transport. Two legs:
//
//   - mux+sharded: the default multiplexed protocol (connsPerPeer shared
//     connections carry all in-flight requests) against the sharded
//     lock-context/retry state;
//   - serial+coarse: the legacy one-request-per-connection protocol
//     against CoarseNodeState (everything behind one mutex) — the
//     pre-refactor system.
//
// Connection counts are sampled at the daemon's transport.conns_open
// gauge: the mux leg must hold a handful of sockets no matter how many
// clients are in flight, while the serial leg opens one per concurrent
// request.
func E18FanIn(cfg Config) (Result, error) {
	return e18FanInN(cfg, e18Clients)
}

const (
	// e18Clients is the full-scale fan-in used by kbench and the CI gate;
	// the plain test suite runs a reduced count via e18FanInN. Each
	// concurrent serial-leg client costs two descriptors (client and
	// daemon socket ends), so full scale needs a ~16k fd budget — the Go
	// runtime raises the soft NOFILE limit to the hard limit on startup,
	// which covers any conventionally configured host.
	e18Clients  = 4000
	e18PageSize = 4096
	// e18MuxConnCap bounds the daemon-side connections the mux leg may
	// hold: connsPerPeer shared sockets plus slack for a re-dial.
	e18MuxConnCap = 4
)

func e18FanInN(cfg Config, clients int) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:    "E18",
		Title: fmt.Sprintf("%d-client TCP fan-in: mux+sharded vs serial+coarse", clients),
		Predicted: "the mux transport serves every in-flight client over a fixed handful of " +
			"daemon-side connections while the serial protocol needs one per concurrent request, " +
			"and mux+sharded aggregate throughput beats the serial+coarse baseline (>= 2x at the CI gate's N>=1000)",
	}

	mux, err := e18Measure(cfg, clients, false, false)
	if err != nil {
		return res, err
	}
	serial, err := e18Measure(cfg, clients, true, true)
	if err != nil {
		return res, err
	}

	ratio := 0.0
	if serial.ops > 0 {
		ratio = mux.ops / serial.ops
	}
	res.Rows = []Row{
		{Name: "mux+sharded throughput", Value: fmt.Sprintf("%.0f cycles/s", mux.ops),
			Detail: fmt.Sprintf("%d clients, lock/write/unlock per cycle", clients)},
		{Name: "serial+coarse throughput", Value: fmt.Sprintf("%.0f cycles/s", serial.ops),
			Detail: "legacy one-request-per-connection protocol, single coarse node mutex"},
		{Name: "throughput ratio", Value: fmt.Sprintf("%.2fx", ratio),
			Detail: "E18 gate: must be >= 2x at N>=1000"},
		{Name: "daemon conns, mux leg", Value: fmt.Sprintf("%d peak", mux.peakConns),
			Detail: fmt.Sprintf("shared mux sockets decouple connections from the %d in-flight clients", clients)},
		{Name: "daemon conns, serial leg", Value: fmt.Sprintf("%d peak", serial.peakConns),
			Detail: "one connection per concurrent request"},
	}
	// The deterministic shape: connection count decoupled from client
	// count on the mux leg, coupled on the serial leg. The throughput
	// ratio is timing and only gates in the CI bench-smoke leg
	// (TestE18FanInGate), like the other perf experiments.
	res.Pass = mux.ops > 0 && serial.ops > 0 &&
		mux.peakConns <= e18MuxConnCap &&
		serial.peakConns >= int64(clients)/2
	return res, nil
}

// e18Run is one measured leg.
type e18Run struct {
	// ops counts completed lock/write/unlock cycles per second summed
	// over all clients.
	ops float64
	// peakConns is the maximum of the daemon's transport.conns_open
	// gauge sampled across the window.
	peakConns int64
}

// e18Measure boots a fresh daemon on a real TCP listener, carves one
// private region per client, and drives `clients` concurrent goroutines
// through one shared client-side transport for the measurement window.
func e18Measure(cfg Config, clients int, serial, coarse bool) (e18Run, error) {
	var out e18Run
	dir, err := os.MkdirTemp(cfg.Dir, "e18-*")
	if err != nil {
		return out, err
	}
	defer os.RemoveAll(dir)
	ctx := context.Background()

	daemon, err := khazana.StartNode(ctx, khazana.NodeConfig{
		ID:              1,
		ListenAddr:      "127.0.0.1:0",
		StoreDir:        dir,
		Genesis:         true,
		MemPages:        2*clients + 64,
		CoarseNodeState: coarse,
	})
	if err != nil {
		return out, err
	}
	defer func() { _ = daemon.Close() }()

	var topts []transport.TCPOption
	if serial {
		topts = append(topts, transport.WithSerialTransport())
	}
	tr, err := transport.NewTCP(khazana.ClientID(1), "127.0.0.1:0", topts...)
	if err != nil {
		return out, err
	}
	defer func() { _ = tr.Close() }()
	tr.AddPeer(1, daemon.Addr())

	// Setup rides the transport under test too: one region per client.
	setup := khazana.NewClient(tr, 1, "bench")
	starts := make([]khazana.Addr, clients)
	for i := range starts {
		start, err := setup.Reserve(ctx, e18PageSize, khazana.Attrs{})
		if err != nil {
			return out, err
		}
		if err := setup.Allocate(ctx, start); err != nil {
			return out, err
		}
		starts[i] = start
	}

	var ops atomic.Int64
	var firstErr atomic.Value
	fail := func(err error) { firstErr.CompareAndSwap(nil, err) }
	stop := make(chan struct{})
	stopped := func() bool {
		select {
		case <-stop:
			return true
		default:
			return firstErr.Load() != nil
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(start khazana.Addr) {
			defer wg.Done()
			cli := khazana.NewClient(tr, 1, "bench")
			data := make([]byte, 64)
			for !stopped() {
				lk, err := cli.Lock(ctx, khazana.Range{Start: start, Size: uint64(len(data))}, khazana.LockWrite)
				if err != nil {
					fail(err)
					return
				}
				if err := lk.Write(ctx, start, data); err != nil {
					fail(err)
					_ = lk.Unlock(ctx) //khazana:ignore-err best-effort release on the already-failed path
					return
				}
				if err := lk.Unlock(ctx); err != nil {
					fail(err)
					return
				}
				ops.Add(1)
			}
		}(starts[i])
	}

	// Sample the daemon's open-connection gauge through the window; the
	// peak is the leg's socket footprint under full fan-in.
	var peak atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(5 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				for _, g := range daemon.Core().MetricsSnapshot().Gauges {
					if g.Name == telemetry.MetricTransportConnsOpen && g.Value > peak.Load() {
						peak.Store(g.Value)
					}
				}
			case <-stop:
				return
			}
		}
	}()

	t0 := time.Now()
	time.Sleep(cfg.Duration)
	close(stop)
	wg.Wait()
	elapsed := time.Since(t0).Seconds()
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return out, err
	}
	out.ops = float64(ops.Load()) / elapsed
	out.peakConns = peak.Load()
	return out, nil
}
