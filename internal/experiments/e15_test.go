package experiments

import (
	"os"
	"testing"
	"time"
)

func TestE15TelemetryOverhead(t *testing.T) { runAndCheck(t, "E15", E15TelemetryOverhead) }

// TestE15TelemetryOverheadGate enforces the CI bench-smoke budget: the
// cached-read path may not slow down more than 5% with telemetry on.
// Timing comparisons flake under arbitrary scheduler load, so the gate
// only arms when the bench-smoke leg sets KHAZANA_E15_GATE=1; the plain
// test suite checks the deterministic shape via TestE15TelemetryOverhead.
func TestE15TelemetryOverheadGate(t *testing.T) {
	if os.Getenv("KHAZANA_E15_GATE") != "1" {
		t.Skip("set KHAZANA_E15_GATE=1 to arm the timing gate (CI bench-smoke leg)")
	}
	cfg := Config{Latency: 100 * time.Microsecond, Dir: t.TempDir()}
	// Best-of-3 on each side: the gate compares the fastest observed run,
	// which is the measurement least polluted by neighbors.
	readBest := func(noTel bool) float64 {
		best := 0.0
		for i := 0; i < 3; i++ {
			run, err := e15Measure(cfg, noTel)
			if err != nil {
				t.Fatal(err)
			}
			if best == 0 || run.readNs < best {
				best = run.readNs
			}
		}
		return best
	}
	instr := readBest(false)
	bare := readBest(true)
	overhead := 100 * (instr - bare) / bare
	t.Logf("cached ReadView: %.1f ns/op instrumented vs %.1f ns/op bare (%+.1f%%)", instr, bare, overhead)
	if overhead > 5.0 {
		t.Fatalf("cached-read telemetry overhead %.1f%% exceeds the 5%% budget", overhead)
	}
}

// BenchmarkE15TelemetryOverhead reports both sides of the comparison as
// sub-benchmarks so `go test -bench E15` prints instrumented and Nop
// numbers for the cached-read and batched lock/release workloads.
func BenchmarkE15TelemetryOverhead(b *testing.B) {
	for _, side := range []struct {
		name  string
		noTel bool
	}{
		{"instrumented", false},
		{"nop", true},
	} {
		b.Run(side.name, func(b *testing.B) {
			cfg := Config{Latency: 100 * time.Microsecond, Dir: b.TempDir()}
			var readNs, lockNs float64
			for i := 0; i < b.N; i++ {
				run, err := e15Measure(cfg, side.noTel)
				if err != nil {
					b.Fatal(err)
				}
				readNs, lockNs = run.readNs, run.lockNs
			}
			b.ReportMetric(readNs, "read-ns/op")
			b.ReportMetric(lockNs, "lockcycle-ns/op")
		})
	}
}
