package experiments

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"time"

	"khazana"
	"khazana/internal/gaddr"
)

// E1Figure1 reproduces Figure 1 operationally: a five-node Khazana system
// with one piece of shared data physically replicated on nodes 3 and 5,
// accessed from node 1. Khazana locates a copy and provides it to the
// requester; after the first access the data is cached locally.
func E1Figure1(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:        "E1",
		Title:     "Figure 1 — five-node topology, data replicated on n3 and n5, accessed from n1",
		Predicted: "access succeeds from every node; first access pays a remote fetch, repeats are served locally",
	}
	c, err := newCluster(cfg, 5)
	if err != nil {
		return res, err
	}
	defer c.Close()
	ctx := context.Background()

	// The square of Figure 1: a region homed on node 3.
	start, err := mkRegion(ctx, c.Node(3), 4096, khazana.Attrs{})
	if err != nil {
		return res, err
	}
	payload := []byte("the square object of figure 1")
	if err := writeOnce(ctx, c.Node(3), start, payload); err != nil {
		return res, err
	}
	// Physically replicate on node 5 (it reads and caches a copy).
	if _, err := readOnce(ctx, c.Node(5), start, 4096); err != nil {
		return res, err
	}
	copies := 0
	for _, i := range []int{3, 5} {
		if c.Node(i).Core().Store().Contains(start) {
			copies++
		}
	}
	res.Rows = append(res.Rows, Row{
		Name:   "replicas",
		Value:  fmt.Sprintf("%d", copies),
		Detail: "physical copies on n3 (home) and n5 (cached replica)"})

	// Node 1 accesses the data: Khazana is responsible for locating a
	// copy and providing it to the requester.
	firstDur, err := timeOp(func() error {
		data, err := readOnce(ctx, c.Node(1), start, 4096)
		if err != nil {
			return err
		}
		if !bytes.Equal(data[:len(payload)], payload) {
			return fmt.Errorf("wrong data at n1: %q", data[:len(payload)])
		}
		return nil
	})
	if err != nil {
		return res, err
	}
	repeatDur, err := timeOp(func() error {
		_, err := readOnce(ctx, c.Node(1), start, 4096)
		return err
	})
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows,
		Row{Name: "n1 first access", Value: fmtDur(firstDur), Detail: "descriptor lookup + remote page fetch"},
		Row{Name: "n1 repeat access", Value: fmtDur(repeatDur), Detail: "region directory hit + CREW read grant"},
	)
	// Every node can access the region (location transparency).
	okFrom := 0
	for i := 1; i <= 5; i++ {
		if data, err := readOnce(ctx, c.Node(i), start, uint64(len(payload))); err == nil && bytes.Equal(data, payload) {
			okFrom++
		}
	}
	res.Rows = append(res.Rows, Row{Name: "nodes with access", Value: fmt.Sprintf("%d/5", okFrom)})
	res.Pass = okFrom == 5 && copies == 2 && repeatDur < firstDur
	return res, nil
}

// E2Figure2 reproduces Figure 2: the sequence of actions on a <lock,
// fetch> request pair for a page at node A when node B owns the page,
// tracing the protocol steps with per-step latency.
func E2Figure2(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:        "E2",
		Title:     "Figure 2 — <lock, fetch> of a remote page, step sequence and latency",
		Predicted: "steps run in the paper's order; the credential/data exchange (6–10) dominates; optional steps 2–3 appear only on a region-directory miss",
	}
	type ev struct {
		step string
		at   time.Duration
	}
	var mu sync.Mutex
	var events []ev
	var t0 time.Time
	tracer := func(node khazana.NodeID, step string) {
		if node != 2 {
			return
		}
		mu.Lock()
		events = append(events, ev{step: step, at: time.Since(t0)})
		mu.Unlock()
	}
	// The paper's Figure-2 trace predates the descriptor partition;
	// disable the ring so the optional tree-walk steps 2-3 appear.
	c, err := newCluster(cfg, 2, khazana.WithTracer(tracer), khazana.WithNoRing())
	if err != nil {
		return res, err
	}
	defer c.Close()
	ctx := context.Background()

	// Page p's region is homed on node B (=n1) and has never been
	// looked up elsewhere, so node A's first lock exercises the full
	// cold path including the optional address-map steps 2-3.
	start, err := mkRegion(ctx, c.Node(1), 4096, khazana.Attrs{})
	if err != nil {
		return res, err
	}
	// Node A (=n2) locks and fetches page p owned by node B (=n1).
	t0 = time.Now()
	lk, err := c.Node(2).Lock(ctx, khazana.Range{Start: start, Size: 4096}, khazana.LockRead, "bench")
	if err != nil {
		return res, err
	}
	if _, err := lk.Read(start, 16); err != nil {
		return res, err
	}
	if err := lk.Unlock(ctx); err != nil {
		return res, err
	}
	total := time.Since(t0)

	mu.Lock()
	prev := time.Duration(0)
	sawOptional := false
	for _, e := range events {
		res.Rows = append(res.Rows, Row{Name: "step " + e.step, Value: fmtDur(e.at), Detail: "+" + fmtDur(e.at-prev)})
		prev = e.at
		if e.step == "2-3:address-map-lookup" {
			sawOptional = true
		}
	}
	res.Rows = append(res.Rows, Row{Name: "total <lock,fetch,unlock>", Value: fmtDur(total)})
	events = nil
	mu.Unlock()

	// Repeat with a warm region directory: the optional steps 2–3 must
	// disappear (§3.2).
	lk2, err := c.Node(2).Lock(ctx, khazana.Range{Start: start, Size: 4096}, khazana.LockRead, "bench")
	if err != nil {
		return res, err
	}
	if err := lk2.Unlock(ctx); err != nil {
		return res, err
	}
	mu.Lock()
	warmOptional := false
	for _, e := range events {
		if e.step == "2-3:address-map-lookup" {
			warmOptional = true
		}
	}
	mu.Unlock()
	res.Rows = append(res.Rows,
		Row{Name: "optional steps 2-3 (cold)", Value: fmt.Sprintf("%v", sawOptional),
			Detail: "tree search happens on a region-directory miss"},
		Row{Name: "optional steps 2-3 (warm)", Value: fmt.Sprintf("%v", warmOptional),
			Detail: "cached descriptor skips the tree"},
	)
	res.Pass = sawOptional && !warmOptional
	return res, nil
}

// E3LookupPath measures the three-stage region location path of §3.2:
// region directory hit, cluster-manager hint, cluster walk, and the
// address-map tree walk.
func E3LookupPath(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:        "E3",
		Title:     "§3.2 — region location path: directory hit vs cluster manager vs tree walk",
		Predicted: "directory hit ≪ cluster-manager hint < cluster walk ≈ tree walk; tree search cost grows with depth",
	}
	// Measure the paper's legacy stages bare: the ring would otherwise
	// resolve every cold miss before stages 2-3 run.
	c, err := newCluster(cfg, 6, khazana.WithNoRing())
	if err != nil {
		return res, err
	}
	defer c.Close()
	ctx := context.Background()

	// Populate enough regions to split the address-map root (depth 2+).
	var starts []khazana.Addr
	for i := 0; i < 170; i++ {
		s, err := mkRegion(ctx, c.Node(2), 4096, khazana.Attrs{})
		if err != nil {
			return res, err
		}
		starts = append(starts, s)
	}
	target := starts[10]

	// Stage 1: region directory hit (warm lookup on node 3).
	if _, err := c.Node(3).GetAttr(ctx, target); err != nil {
		return res, err
	}
	dirHit, err := timeOp(func() error {
		_, err := c.Node(3).GetAttr(ctx, target)
		return err
	})
	if err != nil {
		return res, err
	}

	// Stage 2a: cluster-manager hint (the manager knows node 2 caches
	// the region, as a heartbeat would have told it; node 4 asks cold).
	c.Node(1).Core().Manager().AddHint(starts[11], 2)
	hint, err := timeOp(func() error {
		_, err := c.Node(4).GetAttr(ctx, starts[11])
		return err
	})
	if err != nil {
		return res, err
	}

	// Stage 2b: cluster walk (manager has no hint for this region, so
	// it probes members).
	walkTarget := starts[150]
	walk, err := timeOp(func() error {
		_, err := c.Node(5).GetAttr(ctx, walkTarget)
		return err
	})
	if err != nil {
		return res, err
	}

	// Stage 3: address-map tree walk from a cold node, measured
	// directly against the map (the walk recursively loads tree pages).
	amap := c.Node(6).Core().AddressMap()
	var steps int
	tree, err := timeOp(func() error {
		_, s, err := amap.Lookup(ctx, gaddr.Addr(starts[12]))
		steps = s
		return err
	})
	if err != nil {
		return res, err
	}
	treeWarm, err := timeOp(func() error {
		_, _, err := amap.Lookup(ctx, gaddr.Addr(starts[12]))
		return err
	})
	if err != nil {
		return res, err
	}
	depth, err := c.Node(1).Core().AddressMap().Depth(ctx)
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows,
		Row{Name: "region directory hit", Value: fmtDur(dirHit), Detail: "no network"},
		Row{Name: "cluster-manager hint", Value: fmtDur(hint), Detail: "1 hint RPC + descriptor fetch"},
		Row{Name: "cluster walk", Value: fmtDur(walk), Detail: "manager probes members"},
		Row{Name: "map tree walk (cold)", Value: fmtDur(tree), Detail: fmt.Sprintf("%d tree nodes fetched, depth %d", steps, depth)},
		Row{Name: "map tree walk (warm)", Value: fmtDur(treeWarm), Detail: "tree pages cached release-consistently"},
	)
	// The hint and walk paths both cost one manager round trip plus a
	// descriptor fetch, so they land close together; allow measurement
	// noise between them.
	res.Pass = dirHit*10 < hint && hint < walk*3/2 && steps >= 2
	return res, nil
}
