package experiments

import (
	"testing"
	"time"
)

// fastCfg keeps experiment runtime short in tests.
func fastCfg(t *testing.T) Config {
	t.Helper()
	return Config{
		Latency:  100 * time.Microsecond,
		Duration: 60 * time.Millisecond,
		Dir:      t.TempDir(),
	}
}

func runAndCheck(t *testing.T, name string, run func(Config) (Result, error)) {
	t.Helper()
	res, err := run(fastCfg(t))
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if len(res.Rows) == 0 {
		t.Fatalf("%s produced no rows", name)
	}
	if !res.Pass {
		for _, r := range res.Rows {
			t.Logf("%-32s %-24s %s", r.Name, r.Value, r.Detail)
		}
		t.Fatalf("%s: predicted shape did not hold: %s", name, res.Predicted)
	}
}

func TestE1Figure1(t *testing.T)     { runAndCheck(t, "E1", E1Figure1) }
func TestE2Figure2(t *testing.T)     { runAndCheck(t, "E2", E2Figure2) }
func TestE3LookupPath(t *testing.T)  { runAndCheck(t, "E3", E3LookupPath) }
func TestE4Scalability(t *testing.T) { runAndCheck(t, "E4", E4Scalability) }
func TestE5Consistency(t *testing.T) { runAndCheck(t, "E5", E5Consistency) }
func TestE6Replication(t *testing.T) { runAndCheck(t, "E6", E6Replication) }
func TestE7Filesystem(t *testing.T)  { runAndCheck(t, "E7", E7Filesystem) }
func TestE8Objects(t *testing.T)     { runAndCheck(t, "E8", E8Objects) }
func TestE9Failure(t *testing.T)     { runAndCheck(t, "E9", E9Failure) }
func TestE10PageSize(t *testing.T)   { runAndCheck(t, "E10", E10PageSize) }
func TestE11StaleMap(t *testing.T)   { runAndCheck(t, "E11", E11StaleMap) }
func TestE12Migration(t *testing.T)  { runAndCheck(t, "E12", E12Migration) }
func TestE13Batching(t *testing.T)   { runAndCheck(t, "E13", E13BatchedTransfers) }
func TestE14ZeroCopy(t *testing.T)   { runAndCheck(t, "E14", E14ZeroCopy) }
