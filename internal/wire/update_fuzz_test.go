package wire

import (
	"bytes"
	"testing"

	"khazana/internal/frame"
	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
)

func legacyAppendAddr(b []byte, a gaddr.Addr) []byte {
	b = legacyAppendU64(b, a.Hi)
	return legacyAppendU64(b, a.Lo)
}

func legacyUpdatePushBody(b []byte, page gaddr.Addr, data []byte, version uint64, stamp int64, origin ktypes.NodeID) []byte {
	b = legacyAppendAddr(b, page)
	b = legacyAppendBytes32(b, data)
	b = legacyAppendU64(b, version)
	b = legacyAppendU64(b, uint64(stamp))
	return legacyAppendU32(b, uint32(origin))
}

// FuzzUpdateBatchWire proves the UpdateBatch encoding contract: every item
// is the UpdatePush body verbatim, so a batch is exactly the legacy
// per-page push stream behind a (from, count) prefix, and the frame-backed
// marshal path is byte-identical to the bare-slice one.
func FuzzUpdateBatchWire(f *testing.F) {
	f.Add([]byte("page one"), []byte(""), uint64(7), int64(42), uint32(3), uint32(9))
	f.Add([]byte{}, bytes.Repeat([]byte{0xEE}, 4096), uint64(0), int64(-1), uint32(0), uint32(1))
	f.Fuzz(func(t *testing.T, d1, d2 []byte, version uint64, stamp int64, origin, from uint32) {
		pages := []gaddr.Addr{{Hi: 1, Lo: 0x100000}, {Hi: 1, Lo: 0x101000}}
		m := &UpdateBatch{From: ktypes.NodeID(from), Items: []UpdateItem{
			{Page: pages[0], Version: version, Stamp: stamp, Origin: ktypes.NodeID(origin)},
			{Page: pages[1], Version: version + 1, Stamp: stamp, Origin: ktypes.NodeID(origin)},
		}}
		var frames []*frame.Frame
		for i, d := range [][]byte{d1, d2} {
			if len(d) == 0 {
				continue
			}
			fr := frame.Copy(d)
			// Frame-back one item and leave the other bare to prove both
			// paths emit the same bytes.
			if i == 0 {
				m.Items[i].SetFrame(fr)
			} else {
				m.Items[i].Data = append([]byte(nil), d...)
			}
			frames = append(frames, fr)
		}
		got := Marshal(m)

		// The legacy stream: each item is an UpdatePush body verbatim.
		want := legacyAppendU16(nil, uint16(KindUpdateBatch))
		want = legacyAppendU32(want, from)
		want = legacyAppendU16(want, uint16(len(m.Items)))
		for i := range m.Items {
			it := &m.Items[i]
			want = legacyUpdatePushBody(want, it.Page, it.Data, it.Version, it.Stamp, it.Origin)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("batch marshal diverged from per-item UpdatePush bodies:\n got %x\nwant %x", got, want)
		}

		// Cross-check against the real UpdatePush codec, not just the
		// hand-rolled bytes: item i's encoding equals a standalone push's
		// payload after its kind prefix.
		for i := range m.Items {
			it := &m.Items[i]
			push := Marshal(&UpdatePush{
				Page: it.Page, Data: it.Data, Version: it.Version,
				Stamp: it.Stamp, Origin: it.Origin,
			})
			if !bytes.Contains(got, push[2:]) {
				t.Fatalf("item %d encoding is not an UpdatePush body", i)
			}
		}
		m.ReleaseFrames()
		for _, fr := range frames {
			fr.Release()
		}

		back, err := Unmarshal(got)
		if err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		ub := back.(*UpdateBatch)
		if ub.From != ktypes.NodeID(from) || len(ub.Items) != 2 {
			t.Fatalf("header did not round trip: from=%d items=%d", ub.From, len(ub.Items))
		}
		for i, d := range [][]byte{d1, d2} {
			wantData := d
			if len(wantData) == 0 {
				wantData = nil
			}
			it := &ub.Items[i]
			if !bytes.Equal(it.Data, wantData) {
				t.Fatalf("item %d payload did not round trip", i)
			}
			if it.Page != pages[i] || it.Stamp != stamp || it.Origin != ktypes.NodeID(origin) {
				t.Fatalf("item %d scalar fields did not round trip", i)
			}
			df := it.TakeFrame()
			if len(wantData) > 0 {
				if df == nil {
					t.Fatalf("item %d decoded without frame backing", i)
				}
				if !bytes.Equal(df.Bytes(), wantData) || df.Version() != it.Version {
					t.Fatalf("item %d decoded frame mismatch", i)
				}
			}
			if df != nil {
				df.Release()
			}
		}
		ub.ReleaseFrames()
	})
}

// FuzzUpdateBatchRespWire round-trips the parallel errs/versions arrays.
func FuzzUpdateBatchRespWire(f *testing.F) {
	f.Add("", "conflict", uint64(3), uint64(0))
	f.Add("not home", "", uint64(0), uint64(1<<40))
	f.Fuzz(func(t *testing.T, e1, e2 string, v1, v2 uint64) {
		m := &UpdateBatchResp{Errs: []string{e1, e2}, Versions: []uint64{v1, v2}}
		b := Marshal(m)
		back, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		r := back.(*UpdateBatchResp)
		if len(r.Errs) != 2 || len(r.Versions) != 2 {
			t.Fatalf("lengths did not round trip: %d errs, %d versions", len(r.Errs), len(r.Versions))
		}
		if r.Errs[0] != e1 || r.Errs[1] != e2 || r.Versions[0] != v1 || r.Versions[1] != v2 {
			t.Fatal("fields did not round trip")
		}
	})
}

// FuzzPageGrantBatchSpecWire proves both halves of the speculative-grant
// compatibility contract: a batch without speculation is byte-identical to
// the legacy PageGrantBatch encoding (old decoders never see the new
// section), and a batch with a trailing Spec section round-trips the
// speculative pages, frames included, without disturbing the demand
// grants.
func FuzzPageGrantBatchSpecWire(f *testing.F) {
	f.Add([]byte("demand"), []byte("spec one"), []byte(""), uint64(5), "late")
	f.Add([]byte{}, bytes.Repeat([]byte{0x5A}, 4096), []byte{7}, uint64(0), "")
	f.Fuzz(func(t *testing.T, demand, s1, s2 []byte, version uint64, errStr string) {
		m := &PageGrantBatch{Grants: []PageGrantItem{
			{OK: true, Version: version, Owner: 1},
			{OK: false, Version: version + 1, Owner: 2, Err: errStr},
		}}
		if len(demand) > 0 {
			m.Grants[0].Data = append([]byte(nil), demand...)
		}
		// No Spec section: bytes must match the legacy encoding exactly.
		plain := Marshal(m)
		legacy := legacyPageGrantBatch(m.Grants)
		if !bytes.Equal(plain, legacy) {
			t.Fatalf("spec-free batch diverged from legacy format:\n got %x\nwant %x", plain, legacy)
		}
		back, err := Unmarshal(plain)
		if err != nil {
			t.Fatalf("unmarshal legacy bytes: %v", err)
		}
		if gb := back.(*PageGrantBatch); len(gb.Spec) != 0 {
			t.Fatalf("legacy bytes decoded with %d phantom spec grants", len(gb.Spec))
		} else {
			gb.ReleaseFrames()
		}

		// With speculation: the legacy prefix is untouched and the Spec
		// section round-trips.
		specPages := []gaddr.Addr{{Hi: 2, Lo: 0x200000}, {Hi: 2, Lo: 0x201000}}
		m.Spec = []SpecGrant{
			{Page: specPages[0], Version: version + 2},
			{Page: specPages[1], Version: version + 3},
		}
		var frames []*frame.Frame
		for i, d := range [][]byte{s1, s2} {
			if len(d) == 0 {
				continue
			}
			fr := frame.Copy(d)
			if i == 0 {
				m.Spec[i].SetFrame(fr)
			} else {
				m.Spec[i].Data = append([]byte(nil), d...)
			}
			frames = append(frames, fr)
		}
		full := Marshal(m)
		if !bytes.Equal(full[:len(legacy)], legacy) {
			t.Fatal("spec section disturbed the legacy demand-grant prefix")
		}
		wantTail := legacyAppendU16(nil, uint16(len(m.Spec)))
		for i := range m.Spec {
			s := &m.Spec[i]
			wantTail = legacyAppendAddr(wantTail, s.Page)
			wantTail = legacyAppendBytes32(wantTail, s.Data)
			wantTail = legacyAppendU64(wantTail, s.Version)
		}
		if !bytes.Equal(full[len(legacy):], wantTail) {
			t.Fatalf("spec section encoding diverged:\n got %x\nwant %x", full[len(legacy):], wantTail)
		}
		m.ReleaseFrames()
		for _, fr := range frames {
			fr.Release()
		}

		back, err = Unmarshal(full)
		if err != nil {
			t.Fatalf("unmarshal with spec: %v", err)
		}
		gb := back.(*PageGrantBatch)
		if len(gb.Grants) != 2 || len(gb.Spec) != 2 {
			t.Fatalf("got %d grants / %d spec, want 2 / 2", len(gb.Grants), len(gb.Spec))
		}
		wantDemand := demand
		if len(wantDemand) == 0 {
			wantDemand = nil
		}
		if !bytes.Equal(gb.Grants[0].Data, wantDemand) {
			t.Fatal("demand grant payload did not round trip alongside spec")
		}
		for i, d := range [][]byte{s1, s2} {
			wantData := d
			if len(wantData) == 0 {
				wantData = nil
			}
			s := &gb.Spec[i]
			if s.Page != specPages[i] || !bytes.Equal(s.Data, wantData) {
				t.Fatalf("spec grant %d did not round trip", i)
			}
			df := s.TakeFrame()
			if len(wantData) > 0 {
				if df == nil {
					t.Fatalf("spec grant %d decoded without frame backing", i)
				}
				if !bytes.Equal(df.Bytes(), wantData) || df.Version() != s.Version {
					t.Fatalf("spec grant %d decoded frame mismatch", i)
				}
			}
			if df != nil {
				df.Release()
			}
		}
		gb.ReleaseFrames()
	})
}
