// Replicated-log traffic for region home state (internal/replog).
//
// Each CREW home drives a compact majority-replicated command log with
// region-metadata deltas: ownership grants at release boundaries,
// copyset changes, page-directory version updates, publish-epoch
// advances, and home-list changes. ReplAppend carries entries (and,
// for far-behind followers, a state snapshot) from the leader to its
// standbys; ReplAck answers both appends and votes; ReplPromote is a
// standby's election request after the leader's lease expires.
//
// PrevIndex/PrevTerm carry the Raft-style log-consistency check: a
// follower accepts entries only when it holds the preceding entry at
// the same term, so a leader change can never splice divergent
// uncommitted suffixes together silently.
package wire

import (
	"khazana/internal/enc"
	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
)

// Replicated-log entry operations. Values are part of the wire format;
// only append.
const (
	// ReplOpRelease records a write release committed at the home: the
	// page's new version (Val), the releasing node (Node) which owns the
	// page afterwards, the home's publish epoch after the release (Aux),
	// and the page's copyset after the release (Nodes).
	ReplOpRelease uint8 = iota + 1
	// ReplOpHomes records a home-list change (replica maintenance or
	// failover): the new home list in order (Nodes, primary first) and
	// the descriptor epoch it was installed at (Val).
	ReplOpHomes
)

// ReplEntry is one command in a region's replicated metadata log.
// Fields beyond Index/Term/Region are per-op (see the ReplOp* docs);
// unused fields encode as zero values.
type ReplEntry struct {
	Index  uint64
	Term   uint64
	Region gaddr.Addr
	Op     uint8
	Page   gaddr.Addr
	Node   ktypes.NodeID
	Nodes  []ktypes.NodeID
	Val    uint64
	Aux    uint64
}

// EncodeTo appends the entry's encoding to e.
func (en *ReplEntry) EncodeTo(e *enc.Encoder) {
	e.U64(en.Index)
	e.U64(en.Term)
	e.Addr(en.Region)
	e.U8(en.Op)
	e.Addr(en.Page)
	e.NodeID(en.Node)
	e.NodeIDs(en.Nodes)
	e.U64(en.Val)
	e.U64(en.Aux)
}

// DecodeReplEntry reads one entry from d.
func DecodeReplEntry(d *enc.Decoder) ReplEntry {
	var en ReplEntry
	en.Index = d.U64()
	en.Term = d.U64()
	en.Region = d.Addr()
	en.Op = d.U8()
	en.Page = d.Addr()
	en.Node = d.NodeID()
	en.Nodes = d.NodeIDs()
	en.Val = d.U64()
	en.Aux = d.U64()
	return en
}

// ReplAppend replicates log entries from a region's leader (primary
// home) to a standby, doubling as the leader's lease heartbeat when
// Entries is empty. PrevIndex names the entry immediately preceding
// Entries in the leader's log; a follower that does not hold PrevIndex
// rejects the append (OK=false, Ack=its last index) and the leader
// retries further back or ships a snapshot. Commit is the leader's
// commit index. When SnapIndex is non-zero the append carries a full
// region-state snapshot (SnapState, encoded replog.RegionState) cut at
// SnapIndex/SnapTerm for a follower behind the leader's compacted tail.
type ReplAppend struct {
	Region    gaddr.Addr
	From      ktypes.NodeID
	Term      uint64
	PrevIndex uint64
	PrevTerm  uint64
	Commit    uint64
	Entries   []ReplEntry
	SnapIndex uint64
	SnapTerm  uint64
	SnapState []byte
}

// Kind implements Msg.
func (*ReplAppend) Kind() Kind { return KindReplAppend }
func (m *ReplAppend) encode(e *enc.Encoder) {
	e.Addr(m.Region)
	e.NodeID(m.From)
	e.U64(m.Term)
	e.U64(m.PrevIndex)
	e.U64(m.PrevTerm)
	e.U64(m.Commit)
	e.U16(uint16(len(m.Entries)))
	for i := range m.Entries {
		m.Entries[i].EncodeTo(e)
	}
	e.U64(m.SnapIndex)
	e.U64(m.SnapTerm)
	e.Bytes32(m.SnapState)
}
func (m *ReplAppend) decode(d *enc.Decoder) {
	m.Region = d.Addr()
	m.From = d.NodeID()
	m.Term = d.U64()
	m.PrevIndex = d.U64()
	m.PrevTerm = d.U64()
	m.Commit = d.U64()
	n := int(d.U16())
	if d.Err() == nil && n > 0 {
		m.Entries = make([]ReplEntry, 0, n)
		for i := 0; i < n; i++ {
			en := DecodeReplEntry(d)
			if d.Err() != nil {
				return
			}
			m.Entries = append(m.Entries, en)
		}
	}
	m.SnapIndex = d.U64()
	m.SnapTerm = d.U64()
	m.SnapState = d.Bytes32()
}

// ReplAck answers both ReplAppend and ReplPromote. For appends, OK
// reports whether the follower accepted the entries and Ack is its
// match index (last log index known identical to the leader's). For
// votes, VoteGranted reports the voter's decision and Ack its last log
// index. Term is always the responder's current term so a stale leader
// or candidate can step down.
type ReplAck struct {
	Term        uint64
	Ack         uint64
	OK          bool
	VoteGranted bool
	Err         string
}

// Kind implements Msg.
func (*ReplAck) Kind() Kind { return KindReplAck }
func (m *ReplAck) encode(e *enc.Encoder) {
	e.U64(m.Term)
	e.U64(m.Ack)
	e.Bool(m.OK)
	e.Bool(m.VoteGranted)
	e.String(m.Err)
}
func (m *ReplAck) decode(d *enc.Decoder) {
	m.Term = d.U64()
	m.Ack = d.U64()
	m.OK = d.Bool()
	m.VoteGranted = d.Bool()
	m.Err = d.String()
}

// ReplPromote is a standby's vote request: Candidate asks a fellow
// home-list member to elect it leader for Region in Term. The voter
// grants iff the term is new to it, the candidate's log is at least as
// up to date (LastTerm/LastIndex), and the current leader's lease has
// expired — the one-election failover path that replaces the ad-hoc
// §3.5 promotion walk for log-replicated regions.
type ReplPromote struct {
	Region    gaddr.Addr
	Candidate ktypes.NodeID
	Term      uint64
	LastIndex uint64
	LastTerm  uint64
}

// Kind implements Msg.
func (*ReplPromote) Kind() Kind { return KindReplPromote }
func (m *ReplPromote) encode(e *enc.Encoder) {
	e.Addr(m.Region)
	e.NodeID(m.Candidate)
	e.U64(m.Term)
	e.U64(m.LastIndex)
	e.U64(m.LastTerm)
}
func (m *ReplPromote) decode(d *enc.Decoder) {
	m.Region = d.Addr()
	m.Candidate = d.NodeID()
	m.Term = d.U64()
	m.LastIndex = d.U64()
	m.LastTerm = d.U64()
}
