package wire

import (
	"khazana/internal/frame"
)

// Frame-backed payloads.
//
// Messages that carry page contents (PageGrant, PageData, UpdatePush,
// ReleaseNotify, ReplicaPut, and their batched items) can attach a
// refcounted frame behind their Data field:
//
//   - Send side: SetFrame(f) points Data at f's bytes and takes the
//     message's own reference, so the payload stays valid until the
//     transport has marshaled it; the transport calls Recycle on
//     responses after writing them out.
//   - Receive side: decode backs Data with a pooled frame. A consumer
//     that wants to keep the payload calls TakeFrame() to assume
//     ownership (zero-copy); otherwise the transport's Recycle returns
//     the frame to the pool once the handler is done.
//
// The Data []byte field remains the encoded representation, so the wire
// format is byte-identical to the pre-frame codec. An unreleased frame
// degrades to ordinary garbage (a pool miss), never a use-after-free.

// FrameCarrier is implemented by messages that may hold references to
// page frames. ReleaseFrames drops every reference the message holds;
// after the call the message's Data views must no longer be used.
type FrameCarrier interface {
	ReleaseFrames()
}

// Recycle releases any frames attached to m. It is safe to call with a
// nil message or one that carries no frames, and transports call it on
// every message they have finished marshaling or dispatching.
func Recycle(m Msg) {
	if fc, ok := m.(FrameCarrier); ok {
		fc.ReleaseFrames()
	}
}

// setFrame implements the shared SetFrame logic: retain f, release any
// prior attachment, and alias the Data view. f may be nil to detach.
func setFrame(slot **frame.Frame, data *[]byte, f *frame.Frame) {
	if f != nil {
		f.Retain()
		*data = f.Bytes()
	}
	if *slot != nil {
		(*slot).Release()
	}
	*slot = f
}

// takeFrame implements the shared TakeFrame logic: hand the attached
// frame (and its reference) to the caller, falling back to a copy of the
// Data view when the message was built without one.
func takeFrame(slot **frame.Frame, data []byte) *frame.Frame {
	if f := *slot; f != nil {
		*slot = nil
		return f
	}
	if data == nil {
		return nil
	}
	return frame.Copy(data)
}

// --- PageGrant --------------------------------------------------------------

// SetFrame attaches f as the grant's payload; the message takes its own
// reference and the caller keeps (and still owns) its reference.
func (m *PageGrant) SetFrame(f *frame.Frame) { setFrame(&m.dataFrame, &m.Data, f) }

// TakeFrame transfers ownership of the payload frame to the caller, who
// must Release it. Without an attached frame the payload is copied.
func (m *PageGrant) TakeFrame() *frame.Frame { return takeFrame(&m.dataFrame, m.Data) }

// ReleaseFrames implements FrameCarrier.
func (m *PageGrant) ReleaseFrames() {
	if m == nil {
		return
	}
	setFrame(&m.dataFrame, &m.Data, nil)
}

// --- PageData ---------------------------------------------------------------

// SetFrame attaches f as the fetched page contents.
func (m *PageData) SetFrame(f *frame.Frame) { setFrame(&m.dataFrame, &m.Data, f) }

// TakeFrame transfers ownership of the payload frame to the caller.
func (m *PageData) TakeFrame() *frame.Frame { return takeFrame(&m.dataFrame, m.Data) }

// ReleaseFrames implements FrameCarrier.
func (m *PageData) ReleaseFrames() {
	if m == nil {
		return
	}
	setFrame(&m.dataFrame, &m.Data, nil)
}

// --- UpdatePush -------------------------------------------------------------

// SetFrame attaches f as the pushed page contents.
func (m *UpdatePush) SetFrame(f *frame.Frame) { setFrame(&m.dataFrame, &m.Data, f) }

// TakeFrame transfers ownership of the payload frame to the caller.
func (m *UpdatePush) TakeFrame() *frame.Frame { return takeFrame(&m.dataFrame, m.Data) }

// ReleaseFrames implements FrameCarrier.
func (m *UpdatePush) ReleaseFrames() {
	if m == nil {
		return
	}
	setFrame(&m.dataFrame, &m.Data, nil)
}

// --- ReleaseNotify ----------------------------------------------------------

// SetFrame attaches f as the released page contents.
func (m *ReleaseNotify) SetFrame(f *frame.Frame) { setFrame(&m.dataFrame, &m.Data, f) }

// TakeFrame transfers ownership of the payload frame to the caller.
func (m *ReleaseNotify) TakeFrame() *frame.Frame { return takeFrame(&m.dataFrame, m.Data) }

// ReleaseFrames implements FrameCarrier.
func (m *ReleaseNotify) ReleaseFrames() {
	if m == nil {
		return
	}
	setFrame(&m.dataFrame, &m.Data, nil)
}

// --- ReplicaPut -------------------------------------------------------------

// SetFrame attaches f as the replicated page contents.
func (m *ReplicaPut) SetFrame(f *frame.Frame) { setFrame(&m.dataFrame, &m.Data, f) }

// TakeFrame transfers ownership of the payload frame to the caller.
func (m *ReplicaPut) TakeFrame() *frame.Frame { return takeFrame(&m.dataFrame, m.Data) }

// ReleaseFrames implements FrameCarrier.
func (m *ReplicaPut) ReleaseFrames() {
	if m == nil {
		return
	}
	setFrame(&m.dataFrame, &m.Data, nil)
}

// --- batched items ----------------------------------------------------------

// SetFrame attaches f as this grant item's payload. Use via
// &batch.Grants[i] so the slice element itself holds the reference.
func (g *PageGrantItem) SetFrame(f *frame.Frame) { setFrame(&g.dataFrame, &g.Data, f) }

// TakeFrame transfers ownership of the item's payload frame to the
// caller.
func (g *PageGrantItem) TakeFrame() *frame.Frame { return takeFrame(&g.dataFrame, g.Data) }

// ReleaseFrames implements FrameCarrier: releases every demand grant's and
// speculative grant's frame.
func (m *PageGrantBatch) ReleaseFrames() {
	if m == nil {
		return
	}
	for i := range m.Grants {
		g := &m.Grants[i]
		setFrame(&g.dataFrame, &g.Data, nil)
	}
	for i := range m.Spec {
		s := &m.Spec[i]
		setFrame(&s.dataFrame, &s.Data, nil)
	}
}

// SetFrame attaches f as this speculative grant's payload. Use via
// &batch.Spec[i] so the slice element itself holds the reference.
func (s *SpecGrant) SetFrame(f *frame.Frame) { setFrame(&s.dataFrame, &s.Data, f) }

// TakeFrame transfers ownership of the speculative payload frame to the
// caller.
func (s *SpecGrant) TakeFrame() *frame.Frame { return takeFrame(&s.dataFrame, s.Data) }

// SetFrame attaches f as this release item's dirty payload. Use via
// &batch.Items[i].
func (it *ReleaseItem) SetFrame(f *frame.Frame) { setFrame(&it.dataFrame, &it.Data, f) }

// TakeFrame transfers ownership of the item's payload frame to the
// caller.
func (it *ReleaseItem) TakeFrame() *frame.Frame { return takeFrame(&it.dataFrame, it.Data) }

// ReleaseFrames implements FrameCarrier: releases every item's frame.
func (m *ReleaseBatch) ReleaseFrames() {
	if m == nil {
		return
	}
	for i := range m.Items {
		it := &m.Items[i]
		setFrame(&it.dataFrame, &it.Data, nil)
	}
}

// SetFrame attaches f as this update item's payload. Use via
// &batch.Items[i]; several items may share one frame (each SetFrame takes
// its own reference), which is how a multi-replica fan-out ships the same
// page without copying it per destination.
func (it *UpdateItem) SetFrame(f *frame.Frame) { setFrame(&it.dataFrame, &it.Data, f) }

// TakeFrame transfers ownership of the item's payload frame to the
// caller.
func (it *UpdateItem) TakeFrame() *frame.Frame { return takeFrame(&it.dataFrame, it.Data) }

// ReleaseFrames implements FrameCarrier: releases every item's frame.
func (m *UpdateBatch) ReleaseFrames() {
	if m == nil {
		return
	}
	for i := range m.Items {
		it := &m.Items[i]
		setFrame(&it.dataFrame, &it.Data, nil)
	}
}

// SetFrame attaches f as this snapshot item's payload. Use via
// &batch.Items[i] so the slice element itself holds the reference.
func (it *SnapshotItem) SetFrame(f *frame.Frame) { setFrame(&it.dataFrame, &it.Data, f) }

// TakeFrame transfers ownership of the item's payload frame to the
// caller.
func (it *SnapshotItem) TakeFrame() *frame.Frame { return takeFrame(&it.dataFrame, it.Data) }

// ReleaseFrames implements FrameCarrier: releases every item's frame.
func (m *SnapshotGrantBatch) ReleaseFrames() {
	if m == nil {
		return
	}
	for i := range m.Items {
		it := &m.Items[i]
		setFrame(&it.dataFrame, &it.Data, nil)
	}
}
