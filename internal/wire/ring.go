package wire

import (
	"khazana/internal/enc"
	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
	"khazana/internal/region"
)

// Ring messages implement the consistent-hashing descriptor partition
// (internal/ring): a cold lookup hashes the faulting address to its
// bucket owners and resolves the descriptor in one RPC hop instead of
// walking the §3.1 address-map tree.

// RingLookup asks a ring owner for the descriptor of the region
// containing Addr, out of the owner's authoritative ring table.
type RingLookup struct {
	Addr gaddr.Addr
	From ktypes.NodeID
}

// Kind implements Msg.
func (*RingLookup) Kind() Kind { return KindRingLookup }
func (m *RingLookup) encode(e *enc.Encoder) {
	e.Addr(m.Addr)
	e.NodeID(m.From)
}
func (m *RingLookup) decode(d *enc.Decoder) {
	m.Addr = d.Addr()
	m.From = d.NodeID()
}

// RingReply answers a RingLookup. Found=false means the owner's table
// has no region containing the address (the caller falls back to the
// legacy cluster-hint / tree-walk path and repairs the ring).
type RingReply struct {
	Found bool
	Desc  *region.Descriptor
	Err   string
}

// Kind implements Msg.
func (*RingReply) Kind() Kind { return KindRingReply }
func (m *RingReply) encode(e *enc.Encoder) {
	e.Bool(m.Found)
	if m.Found {
		m.Desc.EncodeTo(e)
	}
	e.String(m.Err)
}
func (m *RingReply) decode(d *enc.Decoder) {
	m.Found = d.Bool()
	if m.Found {
		m.Desc = region.DecodeDescriptor(d)
	}
	m.Err = d.String()
}

// Ring announce operations.
const (
	// RingOpPut installs (or refreshes) a descriptor in the owner's table.
	RingOpPut uint8 = 1
	// RingOpWithdraw removes a destroyed region's descriptor.
	RingOpWithdraw uint8 = 2
)

// RingAnnounce pushes a descriptor change to a bucket owner: sent on
// region create, destroy, home change (including replog failover), and
// rebalance after membership change. Put carries the descriptor;
// Withdraw carries only the region start. Owners ack with Ack.
type RingAnnounce struct {
	Op    uint8
	Desc  *region.Descriptor // nil for Withdraw
	Start gaddr.Addr
	From  ktypes.NodeID
}

// Kind implements Msg.
func (*RingAnnounce) Kind() Kind { return KindRingAnnounce }
func (m *RingAnnounce) encode(e *enc.Encoder) {
	e.U8(m.Op)
	e.Bool(m.Desc != nil)
	if m.Desc != nil {
		m.Desc.EncodeTo(e)
	}
	e.Addr(m.Start)
	e.NodeID(m.From)
}
func (m *RingAnnounce) decode(d *enc.Decoder) {
	m.Op = d.U8()
	if d.Bool() {
		m.Desc = region.DecodeDescriptor(d)
	}
	m.Start = d.Addr()
	m.From = d.NodeID()
}
