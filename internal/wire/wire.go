// Package wire defines Khazana's inter-node and client-daemon message set
// and its binary framing. Every message implements Msg; Marshal prefixes
// the payload with a 16-bit kind so Unmarshal can dispatch.
//
// The message groups mirror the paper's protocols: region descriptor
// lookup (§3.2), consistency-manager traffic for lock grants, fetches,
// invalidations and update pushes (§3.3, Figure 2), cluster membership and
// hint exchange (§3.1), replication pushes for minimum-replica maintenance
// (§3.5), and the client operation set (§2).
package wire

import (
	"fmt"

	"khazana/internal/enc"
	"khazana/internal/frame"
	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
	"khazana/internal/region"
)

// Kind identifies a message type on the wire.
type Kind uint16

// Message kinds. Values are part of the wire format; only append.
const (
	KindAck Kind = iota + 1
	KindPing
	KindPong

	KindRegionLookup
	KindRegionInfo
	KindAttrSet
	KindReserveSpace
	KindSpaceGrant

	KindPageReq
	KindPageGrant
	KindInvalidate
	KindPageFetch
	KindPageData
	KindUpdatePush
	KindVersionQuery
	KindVersionInfo
	KindReleaseNotify

	KindReplicaPut
	KindCopysetQuery
	KindCopysetInfo

	KindJoin
	KindClusterView
	KindHeartbeat
	KindClusterQuery
	KindClusterHint
	KindLeave

	KindCReserve
	KindCReserveResp
	KindCUnreserve
	KindCAllocate
	KindCFree
	KindCLock
	KindCLockResp
	KindCUnlock
	KindCRead
	KindCData
	KindCWrite
	KindCGetAttr
	KindCSetAttr

	KindKVGet
	KindKVPut

	KindMapInsert
	KindMapRemove
	KindMapSetHomes
	KindPromote

	KindObjInvoke
	KindObjResult

	KindMigrate
	KindStatsReq
	KindStatsResp

	KindPageReqBatch
	KindPageGrantBatch
	KindReleaseBatch
	KindReleaseBatchResp

	KindStatsQuery
	KindStatsReply
	KindTraced

	KindUpdateBatch
	KindUpdateBatchResp

	KindSnapshotReqBatch
	KindSnapshotGrantBatch

	KindReplAppend
	KindReplAck
	KindReplPromote

	KindRingLookup
	KindRingReply
	KindRingAnnounce
)

// Msg is a wire message.
type Msg interface {
	Kind() Kind
	encode(e *enc.Encoder)
	decode(d *enc.Decoder)
}

// Marshal serializes a message with its kind prefix.
func Marshal(m Msg) []byte {
	return MarshalAppend(make([]byte, 0, 64), m)
}

// MarshalAppend serializes a message with its kind prefix, appending to
// dst (which may be a pooled transport buffer), and returns the extended
// slice. The encoding is identical to Marshal's.
func MarshalAppend(dst []byte, m Msg) []byte {
	e := enc.NewEncoderWith(dst)
	e.U16(uint16(m.Kind()))
	m.encode(e)
	return e.Bytes()
}

// Unmarshal parses a message produced by Marshal.
func Unmarshal(b []byte) (Msg, error) {
	d := enc.NewDecoder(b)
	kind := Kind(d.U16())
	if d.Err() != nil {
		return nil, fmt.Errorf("wire: %w", d.Err())
	}
	factory, ok := factories[kind]
	if !ok {
		return nil, fmt.Errorf("wire: unknown message kind %d", kind)
	}
	m := factory()
	m.decode(d)
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("wire: decode kind %d: %w", kind, err)
	}
	return m, nil
}

var factories = map[Kind]func() Msg{
	KindAck:          func() Msg { return &Ack{} },
	KindPing:         func() Msg { return &Ping{} },
	KindPong:         func() Msg { return &Pong{} },
	KindRegionLookup: func() Msg { return &RegionLookup{} },
	KindRegionInfo:   func() Msg { return &RegionInfo{} },
	KindAttrSet:      func() Msg { return &AttrSet{} },
	KindReserveSpace: func() Msg { return &ReserveSpace{} },
	KindSpaceGrant:   func() Msg { return &SpaceGrant{} },
	KindPageReq:      func() Msg { return &PageReq{} },
	KindPageGrant:    func() Msg { return &PageGrant{} },
	KindInvalidate:   func() Msg { return &Invalidate{} },
	KindPageFetch:    func() Msg { return &PageFetch{} },
	KindPageData:     func() Msg { return &PageData{} },
	KindUpdatePush:   func() Msg { return &UpdatePush{} },
	KindVersionQuery: func() Msg { return &VersionQuery{} },
	KindVersionInfo:  func() Msg { return &VersionInfo{} },
	KindReleaseNotify: func() Msg {
		return &ReleaseNotify{}
	},
	KindReplicaPut:       func() Msg { return &ReplicaPut{} },
	KindCopysetQuery:     func() Msg { return &CopysetQuery{} },
	KindCopysetInfo:      func() Msg { return &CopysetInfo{} },
	KindJoin:             func() Msg { return &Join{} },
	KindClusterView:      func() Msg { return &ClusterView{} },
	KindHeartbeat:        func() Msg { return &Heartbeat{} },
	KindClusterQuery:     func() Msg { return &ClusterQuery{} },
	KindClusterHint:      func() Msg { return &ClusterHint{} },
	KindLeave:            func() Msg { return &Leave{} },
	KindCReserve:         func() Msg { return &CReserve{} },
	KindCReserveResp:     func() Msg { return &CReserveResp{} },
	KindCUnreserve:       func() Msg { return &CUnreserve{} },
	KindCAllocate:        func() Msg { return &CAllocate{} },
	KindCFree:            func() Msg { return &CFree{} },
	KindCLock:            func() Msg { return &CLock{} },
	KindCLockResp:        func() Msg { return &CLockResp{} },
	KindCUnlock:          func() Msg { return &CUnlock{} },
	KindCRead:            func() Msg { return &CRead{} },
	KindCData:            func() Msg { return &CData{} },
	KindCWrite:           func() Msg { return &CWrite{} },
	KindCGetAttr:         func() Msg { return &CGetAttr{} },
	KindCSetAttr:         func() Msg { return &CSetAttr{} },
	KindKVGet:            func() Msg { return &KVGet{} },
	KindKVPut:            func() Msg { return &KVPut{} },
	KindMapInsert:        func() Msg { return &MapInsert{} },
	KindMapRemove:        func() Msg { return &MapRemove{} },
	KindMapSetHomes:      func() Msg { return &MapSetHomes{} },
	KindPromote:          func() Msg { return &Promote{} },
	KindObjInvoke:        func() Msg { return &ObjInvoke{} },
	KindObjResult:        func() Msg { return &ObjResult{} },
	KindMigrate:          func() Msg { return &Migrate{} },
	KindStatsReq:         func() Msg { return &StatsReq{} },
	KindStatsResp:        func() Msg { return &StatsResp{} },
	KindPageReqBatch:     func() Msg { return &PageReqBatch{} },
	KindPageGrantBatch:   func() Msg { return &PageGrantBatch{} },
	KindReleaseBatch:     func() Msg { return &ReleaseBatch{} },
	KindReleaseBatchResp: func() Msg { return &ReleaseBatchResp{} },
	KindStatsQuery:       func() Msg { return &StatsQuery{} },
	KindStatsReply:       func() Msg { return &StatsReply{} },
	KindTraced:           func() Msg { return &Traced{} },
	KindUpdateBatch:      func() Msg { return &UpdateBatch{} },
	KindUpdateBatchResp:  func() Msg { return &UpdateBatchResp{} },

	KindSnapshotReqBatch:   func() Msg { return &SnapshotReqBatch{} },
	KindSnapshotGrantBatch: func() Msg { return &SnapshotGrantBatch{} },

	KindReplAppend:  func() Msg { return &ReplAppend{} },
	KindReplAck:     func() Msg { return &ReplAck{} },
	KindReplPromote: func() Msg { return &ReplPromote{} },

	KindRingLookup:   func() Msg { return &RingLookup{} },
	KindRingReply:    func() Msg { return &RingReply{} },
	KindRingAnnounce: func() Msg { return &RingAnnounce{} },
}

// --- infrastructure -----------------------------------------------------

// Ack is the generic reply carrying an optional error string.
type Ack struct {
	Err string
}

// Kind implements Msg.
func (*Ack) Kind() Kind              { return KindAck }
func (m *Ack) encode(e *enc.Encoder) { e.String(m.Err) }
func (m *Ack) decode(d *enc.Decoder) { m.Err = d.String() }

// Ping probes liveness and measures round-trip time: the sender stamps
// its clock and computes the RTT when the echo comes back.
type Ping struct {
	From ktypes.NodeID
	// SentUnixNano is the sender's clock at transmission.
	SentUnixNano int64
}

// Kind implements Msg.
func (*Ping) Kind() Kind { return KindPing }
func (m *Ping) encode(e *enc.Encoder) {
	e.NodeID(m.From)
	e.I64(m.SentUnixNano)
}
func (m *Ping) decode(d *enc.Decoder) {
	m.From = d.NodeID()
	m.SentUnixNano = d.I64()
}

// Pong answers a Ping, echoing the ping's timestamp so the sender can
// compute the round trip without trusting the remote clock.
type Pong struct {
	From ktypes.NodeID
	// EchoUnixNano returns Ping.SentUnixNano unchanged.
	EchoUnixNano int64
}

// Kind implements Msg.
func (*Pong) Kind() Kind { return KindPong }
func (m *Pong) encode(e *enc.Encoder) {
	e.NodeID(m.From)
	e.I64(m.EchoUnixNano)
}
func (m *Pong) decode(d *enc.Decoder) {
	m.From = d.NodeID()
	m.EchoUnixNano = d.I64()
}

// --- region descriptors ---------------------------------------------------

// RegionLookup asks a node for the descriptor of the region enclosing
// Addr (paper §3.2).
type RegionLookup struct {
	Addr gaddr.Addr
}

// Kind implements Msg.
func (*RegionLookup) Kind() Kind              { return KindRegionLookup }
func (m *RegionLookup) encode(e *enc.Encoder) { e.Addr(m.Addr) }
func (m *RegionLookup) decode(d *enc.Decoder) { m.Addr = d.Addr() }

// RegionInfo carries a region descriptor, or Found=false when the queried
// node does not know the region.
type RegionInfo struct {
	Found bool
	Desc  *region.Descriptor
	Err   string
}

// Kind implements Msg.
func (*RegionInfo) Kind() Kind { return KindRegionInfo }
func (m *RegionInfo) encode(e *enc.Encoder) {
	e.Bool(m.Found)
	if m.Found {
		m.Desc.EncodeTo(e)
	}
	e.String(m.Err)
}
func (m *RegionInfo) decode(d *enc.Decoder) {
	m.Found = d.Bool()
	if m.Found {
		m.Desc = region.DecodeDescriptor(d)
	}
	m.Err = d.String()
}

// AttrSet pushes an updated descriptor to a region's home node.
type AttrSet struct {
	Desc      *region.Descriptor
	Principal ktypes.Principal
}

// Kind implements Msg.
func (*AttrSet) Kind() Kind { return KindAttrSet }
func (m *AttrSet) encode(e *enc.Encoder) {
	m.Desc.EncodeTo(e)
	e.String(string(m.Principal))
}
func (m *AttrSet) decode(d *enc.Decoder) {
	m.Desc = region.DecodeDescriptor(d)
	m.Principal = ktypes.Principal(d.String())
}

// ReserveSpace asks the cluster manager for a large range of unreserved
// address space to manage locally (paper §3.1).
type ReserveSpace struct {
	From ktypes.NodeID
	Size uint64
}

// Kind implements Msg.
func (*ReserveSpace) Kind() Kind { return KindReserveSpace }
func (m *ReserveSpace) encode(e *enc.Encoder) {
	e.NodeID(m.From)
	e.U64(m.Size)
}
func (m *ReserveSpace) decode(d *enc.Decoder) {
	m.From = d.NodeID()
	m.Size = d.U64()
}

// SpaceGrant answers ReserveSpace with a granted range.
type SpaceGrant struct {
	Range gaddr.Range
	Err   string
}

// Kind implements Msg.
func (*SpaceGrant) Kind() Kind { return KindSpaceGrant }
func (m *SpaceGrant) encode(e *enc.Encoder) {
	e.Range(m.Range)
	e.String(m.Err)
}
func (m *SpaceGrant) decode(d *enc.Decoder) {
	m.Range = d.Range()
	m.Err = d.String()
}

// --- consistency traffic --------------------------------------------------

// PageReq asks a page's home node for lock credentials in the given mode
// (Figure 2, step 6). The home consults its directory state, performs any
// needed invalidations or fetches, and answers with a PageGrant.
type PageReq struct {
	Page      gaddr.Addr
	Mode      ktypes.LockMode
	Requester ktypes.NodeID
}

// Kind implements Msg.
func (*PageReq) Kind() Kind { return KindPageReq }
func (m *PageReq) encode(e *enc.Encoder) {
	e.Addr(m.Page)
	e.U8(uint8(m.Mode))
	e.NodeID(m.Requester)
}
func (m *PageReq) decode(d *enc.Decoder) {
	m.Page = d.Addr()
	m.Mode = ktypes.LockMode(d.U8())
	m.Requester = d.NodeID()
}

// PageGrant carries lock credentials and, when needed, a copy of the page
// (Figure 2, steps 7-10).
type PageGrant struct {
	OK      bool
	Data    []byte
	Version uint64
	// Owner is the page's owner after the grant.
	Owner ktypes.NodeID
	Err   string

	// dataFrame, when non-nil, backs Data with a refcounted page frame
	// (see frame.go); it is never encoded.
	dataFrame *frame.Frame
}

// Kind implements Msg.
func (*PageGrant) Kind() Kind { return KindPageGrant }
func (m *PageGrant) encode(e *enc.Encoder) {
	e.Bool(m.OK)
	e.Bytes32(m.Data)
	e.U64(m.Version)
	e.NodeID(m.Owner)
	e.String(m.Err)
}
func (m *PageGrant) decode(d *enc.Decoder) {
	m.OK = d.Bool()
	m.dataFrame = d.Bytes32Frame()
	if m.dataFrame != nil {
		m.Data = m.dataFrame.Bytes()
	}
	m.Version = d.U64()
	m.Owner = d.NodeID()
	m.Err = d.String()
	if m.dataFrame != nil {
		m.dataFrame.SetVersion(m.Version)
	}
}

// Invalidate tells a node to drop its copy of a page because NewOwner is
// taking exclusive ownership.
type Invalidate struct {
	Page     gaddr.Addr
	NewOwner ktypes.NodeID
	Version  uint64
}

// Kind implements Msg.
func (*Invalidate) Kind() Kind { return KindInvalidate }
func (m *Invalidate) encode(e *enc.Encoder) {
	e.Addr(m.Page)
	e.NodeID(m.NewOwner)
	e.U64(m.Version)
}
func (m *Invalidate) decode(d *enc.Decoder) {
	m.Page = d.Addr()
	m.NewOwner = d.NodeID()
	m.Version = d.U64()
}

// PageFetch asks a node holding a page for its current contents (Figure 2,
// steps 7-9: the owner's daemon supplies a copy).
type PageFetch struct {
	Page      gaddr.Addr
	Requester ktypes.NodeID
}

// Kind implements Msg.
func (*PageFetch) Kind() Kind { return KindPageFetch }
func (m *PageFetch) encode(e *enc.Encoder) {
	e.Addr(m.Page)
	e.NodeID(m.Requester)
}
func (m *PageFetch) decode(d *enc.Decoder) {
	m.Page = d.Addr()
	m.Requester = d.NodeID()
}

// PageData answers PageFetch.
type PageData struct {
	Found   bool
	Data    []byte
	Version uint64

	// dataFrame, when non-nil, backs Data with a refcounted page frame
	// (see frame.go); it is never encoded.
	dataFrame *frame.Frame
}

// Kind implements Msg.
func (*PageData) Kind() Kind { return KindPageData }
func (m *PageData) encode(e *enc.Encoder) {
	e.Bool(m.Found)
	e.Bytes32(m.Data)
	e.U64(m.Version)
}
func (m *PageData) decode(d *enc.Decoder) {
	m.Found = d.Bool()
	m.dataFrame = d.Bytes32Frame()
	if m.dataFrame != nil {
		m.Data = m.dataFrame.Bytes()
	}
	m.Version = d.U64()
	if m.dataFrame != nil {
		m.dataFrame.SetVersion(m.Version)
	}
}

// UpdatePush propagates new page contents under the release and eventual
// protocols (§3.3: CMs inform peers of changes, which eventually update
// their replicas).
type UpdatePush struct {
	Page    gaddr.Addr
	Data    []byte
	Version uint64
	// Stamp orders concurrent eventual-protocol writes (last writer
	// wins); ties break on Origin.
	Stamp  int64
	Origin ktypes.NodeID

	// dataFrame, when non-nil, backs Data with a refcounted page frame
	// (see frame.go); it is never encoded.
	dataFrame *frame.Frame
}

// Kind implements Msg.
func (*UpdatePush) Kind() Kind { return KindUpdatePush }
func (m *UpdatePush) encode(e *enc.Encoder) {
	e.Addr(m.Page)
	e.Bytes32(m.Data)
	e.U64(m.Version)
	e.I64(m.Stamp)
	e.NodeID(m.Origin)
}
func (m *UpdatePush) decode(d *enc.Decoder) {
	m.Page = d.Addr()
	m.dataFrame = d.Bytes32Frame()
	if m.dataFrame != nil {
		m.Data = m.dataFrame.Bytes()
	}
	m.Version = d.U64()
	m.Stamp = d.I64()
	m.Origin = d.NodeID()
	if m.dataFrame != nil {
		m.dataFrame.SetVersion(m.Version)
	}
}

// VersionQuery asks a page's home for its current version, used by the
// release protocol to validate a cached copy at acquire time.
type VersionQuery struct {
	Page gaddr.Addr
}

// Kind implements Msg.
func (*VersionQuery) Kind() Kind              { return KindVersionQuery }
func (m *VersionQuery) encode(e *enc.Encoder) { e.Addr(m.Page) }
func (m *VersionQuery) decode(d *enc.Decoder) { m.Page = d.Addr() }

// VersionInfo answers VersionQuery.
type VersionInfo struct {
	Found   bool
	Version uint64
}

// Kind implements Msg.
func (*VersionInfo) Kind() Kind { return KindVersionInfo }
func (m *VersionInfo) encode(e *enc.Encoder) {
	e.Bool(m.Found)
	e.U64(m.Version)
}
func (m *VersionInfo) decode(d *enc.Decoder) {
	m.Found = d.Bool()
	m.Version = d.U64()
}

// ReleaseNotify tells a page's home that a lock was released, carrying
// dirty contents when the release protocol defers propagation to release
// time.
type ReleaseNotify struct {
	Page    gaddr.Addr
	Mode    ktypes.LockMode
	Dirty   bool
	Data    []byte
	Version uint64
	From    ktypes.NodeID

	// dataFrame, when non-nil, backs Data with a refcounted page frame
	// (see frame.go); it is never encoded.
	dataFrame *frame.Frame
}

// Kind implements Msg.
func (*ReleaseNotify) Kind() Kind { return KindReleaseNotify }
func (m *ReleaseNotify) encode(e *enc.Encoder) {
	e.Addr(m.Page)
	e.U8(uint8(m.Mode))
	e.Bool(m.Dirty)
	e.Bytes32(m.Data)
	e.U64(m.Version)
	e.NodeID(m.From)
}
func (m *ReleaseNotify) decode(d *enc.Decoder) {
	m.Page = d.Addr()
	m.Mode = ktypes.LockMode(d.U8())
	m.Dirty = d.Bool()
	m.dataFrame = d.Bytes32Frame()
	if m.dataFrame != nil {
		m.Data = m.dataFrame.Bytes()
	}
	m.Version = d.U64()
	m.From = d.NodeID()
	if m.dataFrame != nil {
		m.dataFrame.SetVersion(m.Version)
	}
}

// --- replication ------------------------------------------------------------

// ReplicaPut pushes a page copy to another node to satisfy a region's
// minimum replica count (paper §3.5).
type ReplicaPut struct {
	Page    gaddr.Addr
	Data    []byte
	Version uint64
	From    ktypes.NodeID

	// dataFrame, when non-nil, backs Data with a refcounted page frame
	// (see frame.go); it is never encoded.
	dataFrame *frame.Frame
}

// Kind implements Msg.
func (*ReplicaPut) Kind() Kind { return KindReplicaPut }
func (m *ReplicaPut) encode(e *enc.Encoder) {
	e.Addr(m.Page)
	e.Bytes32(m.Data)
	e.U64(m.Version)
	e.NodeID(m.From)
}
func (m *ReplicaPut) decode(d *enc.Decoder) {
	m.Page = d.Addr()
	m.dataFrame = d.Bytes32Frame()
	if m.dataFrame != nil {
		m.Data = m.dataFrame.Bytes()
	}
	m.Version = d.U64()
	m.From = d.NodeID()
	if m.dataFrame != nil {
		m.dataFrame.SetVersion(m.Version)
	}
}

// CopysetQuery asks a page's home which nodes hold copies.
type CopysetQuery struct {
	Page gaddr.Addr
}

// Kind implements Msg.
func (*CopysetQuery) Kind() Kind              { return KindCopysetQuery }
func (m *CopysetQuery) encode(e *enc.Encoder) { e.Addr(m.Page) }
func (m *CopysetQuery) decode(d *enc.Decoder) { m.Page = d.Addr() }

// CopysetInfo answers CopysetQuery.
type CopysetInfo struct {
	Owner ktypes.NodeID
	Nodes []ktypes.NodeID
}

// Kind implements Msg.
func (*CopysetInfo) Kind() Kind { return KindCopysetInfo }
func (m *CopysetInfo) encode(e *enc.Encoder) {
	e.NodeID(m.Owner)
	e.NodeIDs(m.Nodes)
}
func (m *CopysetInfo) decode(d *enc.Decoder) {
	m.Owner = d.NodeID()
	m.Nodes = d.NodeIDs()
}

// --- cluster membership -----------------------------------------------------

// Join announces a node to its cluster manager (paper §3.1: machines can
// dynamically enter and leave Khazana).
type Join struct {
	Node ktypes.NodeID
	// Addr is the node's transport address (empty for in-process nets).
	Addr string
}

// Kind implements Msg.
func (*Join) Kind() Kind { return KindJoin }
func (m *Join) encode(e *enc.Encoder) {
	e.NodeID(m.Node)
	e.String(m.Addr)
}
func (m *Join) decode(d *enc.Decoder) {
	m.Node = d.NodeID()
	m.Addr = d.String()
}

// ClusterView answers Join with current membership.
type ClusterView struct {
	Manager ktypes.NodeID
	Members []ktypes.NodeID
}

// Kind implements Msg.
func (*ClusterView) Kind() Kind { return KindClusterView }
func (m *ClusterView) encode(e *enc.Encoder) {
	e.NodeID(m.Manager)
	e.NodeIDs(m.Members)
}
func (m *ClusterView) decode(d *enc.Decoder) {
	m.Manager = d.NodeID()
	m.Members = d.NodeIDs()
}

// Heartbeat reports liveness and free-space hints to the cluster manager
// (§3.1: managers maintain hints of free address space sizes managed by
// cluster nodes), plus recently-cached region starts as location hints.
type Heartbeat struct {
	Node      ktypes.NodeID
	FreeTotal uint64
	FreeMax   uint64
	Regions   []gaddr.Addr
}

// Kind implements Msg.
func (*Heartbeat) Kind() Kind { return KindHeartbeat }
func (m *Heartbeat) encode(e *enc.Encoder) {
	e.NodeID(m.Node)
	e.U64(m.FreeTotal)
	e.U64(m.FreeMax)
	e.U16(uint16(len(m.Regions)))
	for _, r := range m.Regions {
		e.Addr(r)
	}
}
func (m *Heartbeat) decode(d *enc.Decoder) {
	m.Node = d.NodeID()
	m.FreeTotal = d.U64()
	m.FreeMax = d.U64()
	n := int(d.U16())
	if d.Err() != nil || n == 0 {
		return
	}
	m.Regions = make([]gaddr.Addr, 0, n)
	for i := 0; i < n; i++ {
		a := d.Addr()
		if d.Err() != nil {
			return
		}
		m.Regions = append(m.Regions, a)
	}
}

// ClusterQuery asks the cluster manager whether a region is cached in a
// nearby node (paper §3.2). Forwarded marks a query relayed between
// cluster managers during inter-cluster communication (§3.1); a forwarded
// query is never relayed again.
type ClusterQuery struct {
	Addr      gaddr.Addr
	Forwarded bool
}

// Kind implements Msg.
func (*ClusterQuery) Kind() Kind { return KindClusterQuery }
func (m *ClusterQuery) encode(e *enc.Encoder) {
	e.Addr(m.Addr)
	e.Bool(m.Forwarded)
}
func (m *ClusterQuery) decode(d *enc.Decoder) {
	m.Addr = d.Addr()
	m.Forwarded = d.Bool()
}

// ClusterHint answers ClusterQuery with candidate nodes.
type ClusterHint struct {
	Found bool
	Nodes []ktypes.NodeID
}

// Kind implements Msg.
func (*ClusterHint) Kind() Kind { return KindClusterHint }
func (m *ClusterHint) encode(e *enc.Encoder) {
	e.Bool(m.Found)
	e.NodeIDs(m.Nodes)
}
func (m *ClusterHint) decode(d *enc.Decoder) {
	m.Found = d.Bool()
	m.Nodes = d.NodeIDs()
}

// Leave announces departure from the cluster.
type Leave struct {
	Node ktypes.NodeID
}

// Kind implements Msg.
func (*Leave) Kind() Kind              { return KindLeave }
func (m *Leave) encode(e *enc.Encoder) { e.NodeID(m.Node) }
func (m *Leave) decode(d *enc.Decoder) { m.Node = d.NodeID() }

// --- client operations --------------------------------------------------

// CReserve reserves a contiguous range of global address space (paper §2).
type CReserve struct {
	Size      uint64
	Attrs     region.Attrs
	Principal ktypes.Principal
}

// Kind implements Msg.
func (*CReserve) Kind() Kind { return KindCReserve }
func (m *CReserve) encode(e *enc.Encoder) {
	e.U64(m.Size)
	m.Attrs.EncodeTo(e)
	e.String(string(m.Principal))
}
func (m *CReserve) decode(d *enc.Decoder) {
	m.Size = d.U64()
	m.Attrs = region.DecodeAttrs(d)
	m.Principal = ktypes.Principal(d.String())
}

// CReserveResp answers CReserve.
type CReserveResp struct {
	Start gaddr.Addr
	Err   string
}

// Kind implements Msg.
func (*CReserveResp) Kind() Kind { return KindCReserveResp }
func (m *CReserveResp) encode(e *enc.Encoder) {
	e.Addr(m.Start)
	e.String(m.Err)
}
func (m *CReserveResp) decode(d *enc.Decoder) {
	m.Start = d.Addr()
	m.Err = d.String()
}

// CUnreserve releases a reserved region.
type CUnreserve struct {
	Start     gaddr.Addr
	Principal ktypes.Principal
}

// Kind implements Msg.
func (*CUnreserve) Kind() Kind { return KindCUnreserve }
func (m *CUnreserve) encode(e *enc.Encoder) {
	e.Addr(m.Start)
	e.String(string(m.Principal))
}
func (m *CUnreserve) decode(d *enc.Decoder) {
	m.Start = d.Addr()
	m.Principal = ktypes.Principal(d.String())
}

// CAllocate allocates physical storage for a reserved region.
type CAllocate struct {
	Start     gaddr.Addr
	Principal ktypes.Principal
}

// Kind implements Msg.
func (*CAllocate) Kind() Kind { return KindCAllocate }
func (m *CAllocate) encode(e *enc.Encoder) {
	e.Addr(m.Start)
	e.String(string(m.Principal))
}
func (m *CAllocate) decode(d *enc.Decoder) {
	m.Start = d.Addr()
	m.Principal = ktypes.Principal(d.String())
}

// CFree releases a region's physical storage.
type CFree struct {
	Start     gaddr.Addr
	Principal ktypes.Principal
}

// Kind implements Msg.
func (*CFree) Kind() Kind { return KindCFree }
func (m *CFree) encode(e *enc.Encoder) {
	e.Addr(m.Start)
	e.String(string(m.Principal))
}
func (m *CFree) decode(d *enc.Decoder) {
	m.Start = d.Addr()
	m.Principal = ktypes.Principal(d.String())
}

// CLock locks part of a region in a specified mode, returning a lock
// context (paper §2).
type CLock struct {
	Range     gaddr.Range
	Mode      ktypes.LockMode
	Principal ktypes.Principal
}

// Kind implements Msg.
func (*CLock) Kind() Kind { return KindCLock }
func (m *CLock) encode(e *enc.Encoder) {
	e.Range(m.Range)
	e.U8(uint8(m.Mode))
	e.String(string(m.Principal))
}
func (m *CLock) decode(d *enc.Decoder) {
	m.Range = d.Range()
	m.Mode = ktypes.LockMode(d.U8())
	m.Principal = ktypes.Principal(d.String())
}

// CLockResp answers CLock with the lock context identifier.
type CLockResp struct {
	LockID uint64
	Err    string
}

// Kind implements Msg.
func (*CLockResp) Kind() Kind { return KindCLockResp }
func (m *CLockResp) encode(e *enc.Encoder) {
	e.U64(m.LockID)
	e.String(m.Err)
}
func (m *CLockResp) decode(d *enc.Decoder) {
	m.LockID = d.U64()
	m.Err = d.String()
}

// CUnlock releases a lock context.
type CUnlock struct {
	LockID uint64
}

// Kind implements Msg.
func (*CUnlock) Kind() Kind              { return KindCUnlock }
func (m *CUnlock) encode(e *enc.Encoder) { e.U64(m.LockID) }
func (m *CUnlock) decode(d *enc.Decoder) { m.LockID = d.U64() }

// CRead reads a subrange of a locked region by presenting the lock
// context.
type CRead struct {
	LockID uint64
	Addr   gaddr.Addr
	Len    uint64
}

// Kind implements Msg.
func (*CRead) Kind() Kind { return KindCRead }
func (m *CRead) encode(e *enc.Encoder) {
	e.U64(m.LockID)
	e.Addr(m.Addr)
	e.U64(m.Len)
}
func (m *CRead) decode(d *enc.Decoder) {
	m.LockID = d.U64()
	m.Addr = d.Addr()
	m.Len = d.U64()
}

// CData answers CRead or KVGet.
type CData struct {
	Data []byte
	Err  string
}

// Kind implements Msg.
func (*CData) Kind() Kind { return KindCData }
func (m *CData) encode(e *enc.Encoder) {
	e.Bytes32(m.Data)
	e.String(m.Err)
}
func (m *CData) decode(d *enc.Decoder) {
	m.Data = d.Bytes32()
	m.Err = d.String()
}

// CWrite writes a subrange of a locked region.
type CWrite struct {
	LockID uint64
	Addr   gaddr.Addr
	Data   []byte
}

// Kind implements Msg.
func (*CWrite) Kind() Kind { return KindCWrite }
func (m *CWrite) encode(e *enc.Encoder) {
	e.U64(m.LockID)
	e.Addr(m.Addr)
	e.Bytes32(m.Data)
}
func (m *CWrite) decode(d *enc.Decoder) {
	m.LockID = d.U64()
	m.Addr = d.Addr()
	m.Data = d.Bytes32()
}

// CGetAttr fetches a region's attributes.
type CGetAttr struct {
	Addr gaddr.Addr
}

// Kind implements Msg.
func (*CGetAttr) Kind() Kind              { return KindCGetAttr }
func (m *CGetAttr) encode(e *enc.Encoder) { e.Addr(m.Addr) }
func (m *CGetAttr) decode(d *enc.Decoder) { m.Addr = d.Addr() }

// CSetAttr updates a region's attributes.
type CSetAttr struct {
	Start     gaddr.Addr
	Attrs     region.Attrs
	Principal ktypes.Principal
}

// Kind implements Msg.
func (*CSetAttr) Kind() Kind { return KindCSetAttr }
func (m *CSetAttr) encode(e *enc.Encoder) {
	e.Addr(m.Start)
	m.Attrs.EncodeTo(e)
	e.String(string(m.Principal))
}
func (m *CSetAttr) decode(d *enc.Decoder) {
	m.Start = d.Addr()
	m.Attrs = region.DecodeAttrs(d)
	m.Principal = ktypes.Principal(d.String())
}

// --- baseline comparator ------------------------------------------------

// KVGet reads from the hand-coded central-server baseline store.
type KVGet struct {
	Key gaddr.Addr
	Len uint64
	Off uint64
}

// Kind implements Msg.
func (*KVGet) Kind() Kind { return KindKVGet }
func (m *KVGet) encode(e *enc.Encoder) {
	e.Addr(m.Key)
	e.U64(m.Len)
	e.U64(m.Off)
}
func (m *KVGet) decode(d *enc.Decoder) {
	m.Key = d.Addr()
	m.Len = d.U64()
	m.Off = d.U64()
}

// KVPut writes to the baseline store.
type KVPut struct {
	Key  gaddr.Addr
	Off  uint64
	Data []byte
}

// Kind implements Msg.
func (*KVPut) Kind() Kind { return KindKVPut }
func (m *KVPut) encode(e *enc.Encoder) {
	e.Addr(m.Key)
	e.U64(m.Off)
	e.Bytes32(m.Data)
}
func (m *KVPut) decode(d *enc.Decoder) {
	m.Key = d.Addr()
	m.Off = d.U64()
	m.Data = d.Bytes32()
}

// --- address map mutations (routed to the map region's home) -------------

// MapInsert records a reserved region in the address map tree.
type MapInsert struct {
	Range gaddr.Range
	Homes []ktypes.NodeID
}

// Kind implements Msg.
func (*MapInsert) Kind() Kind { return KindMapInsert }
func (m *MapInsert) encode(e *enc.Encoder) {
	e.Range(m.Range)
	e.NodeIDs(m.Homes)
}
func (m *MapInsert) decode(d *enc.Decoder) {
	m.Range = d.Range()
	m.Homes = d.NodeIDs()
}

// MapRemove deletes a region from the address map (unreserve).
type MapRemove struct {
	Start gaddr.Addr
}

// Kind implements Msg.
func (*MapRemove) Kind() Kind              { return KindMapRemove }
func (m *MapRemove) encode(e *enc.Encoder) { e.Addr(m.Start) }
func (m *MapRemove) decode(d *enc.Decoder) { m.Start = d.Addr() }

// MapSetHomes updates a region's home list in the address map (replica
// migration or failover).
type MapSetHomes struct {
	Start gaddr.Addr
	Homes []ktypes.NodeID
}

// Kind implements Msg.
func (*MapSetHomes) Kind() Kind { return KindMapSetHomes }
func (m *MapSetHomes) encode(e *enc.Encoder) {
	e.Addr(m.Start)
	e.NodeIDs(m.Homes)
}
func (m *MapSetHomes) decode(d *enc.Decoder) {
	m.Start = d.Addr()
	m.Homes = d.NodeIDs()
}

// Promote asks a secondary home node to take over as a region's primary
// home after the old primary failed (§3.5 failure handling). The reply is
// a RegionInfo carrying the promoted descriptor.
type Promote struct {
	Start gaddr.Addr
	From  ktypes.NodeID
}

// Kind implements Msg.
func (*Promote) Kind() Kind { return KindPromote }
func (m *Promote) encode(e *enc.Encoder) {
	e.Addr(m.Start)
	e.NodeID(m.From)
}
func (m *Promote) decode(d *enc.Decoder) {
	m.Start = d.Addr()
	m.From = d.NodeID()
}

// --- distributed object runtime (kobj) -----------------------------------

// ObjInvoke asks a peer's object runtime to invoke a method on an object
// instantiated there (§4.2: "perform a remote invocation of the object on
// a node where it is already physically instantiated").
type ObjInvoke struct {
	Ref    gaddr.Addr
	Method string
	Args   []byte
}

// Kind implements Msg.
func (*ObjInvoke) Kind() Kind { return KindObjInvoke }
func (m *ObjInvoke) encode(e *enc.Encoder) {
	e.Addr(m.Ref)
	e.String(m.Method)
	e.Bytes32(m.Args)
}
func (m *ObjInvoke) decode(d *enc.Decoder) {
	m.Ref = d.Addr()
	m.Method = d.String()
	m.Args = d.Bytes32()
}

// ObjResult answers ObjInvoke.
type ObjResult struct {
	Result []byte
	Err    string
}

// Kind implements Msg.
func (*ObjResult) Kind() Kind { return KindObjResult }
func (m *ObjResult) encode(e *enc.Encoder) {
	e.Bytes32(m.Result)
	e.String(m.Err)
}
func (m *ObjResult) decode(d *enc.Decoder) {
	m.Result = d.Bytes32()
	m.Err = d.String()
}

// --- migration and introspection ------------------------------------------

// Migrate asks a region's home to hand the primary-home role to NewHome
// (§7 future work: migration and replication policies; the mechanism
// lives here, policies drive it).
type Migrate struct {
	Start     gaddr.Addr
	NewHome   ktypes.NodeID
	Principal ktypes.Principal
}

// Kind implements Msg.
func (*Migrate) Kind() Kind { return KindMigrate }
func (m *Migrate) encode(e *enc.Encoder) {
	e.Addr(m.Start)
	e.NodeID(m.NewHome)
	e.String(string(m.Principal))
}
func (m *Migrate) decode(d *enc.Decoder) {
	m.Start = d.Addr()
	m.NewHome = d.NodeID()
	m.Principal = ktypes.Principal(d.String())
}

// StatsReq asks a daemon for its counters.
type StatsReq struct{}

// Kind implements Msg.
func (*StatsReq) Kind() Kind            { return KindStatsReq }
func (m *StatsReq) encode(*enc.Encoder) {}
func (m *StatsReq) decode(*enc.Decoder) {}

// StatsResp carries a daemon's activity counters and resource usage.
type StatsResp struct {
	Node           ktypes.NodeID
	Lookups        uint64
	DirHits        uint64
	ClusterHits    uint64
	TreeWalks      uint64
	LocksGranted   uint64
	ReleaseRetries uint64
	Promotions     uint64
	MemPages       uint64
	DiskPages      uint64
	HomedRegions   uint64
	Members        []ktypes.NodeID
}

// Kind implements Msg.
func (*StatsResp) Kind() Kind { return KindStatsResp }
func (m *StatsResp) encode(e *enc.Encoder) {
	e.NodeID(m.Node)
	e.U64(m.Lookups)
	e.U64(m.DirHits)
	e.U64(m.ClusterHits)
	e.U64(m.TreeWalks)
	e.U64(m.LocksGranted)
	e.U64(m.ReleaseRetries)
	e.U64(m.Promotions)
	e.U64(m.MemPages)
	e.U64(m.DiskPages)
	e.U64(m.HomedRegions)
	e.NodeIDs(m.Members)
}
func (m *StatsResp) decode(d *enc.Decoder) {
	m.Node = d.NodeID()
	m.Lookups = d.U64()
	m.DirHits = d.U64()
	m.ClusterHits = d.U64()
	m.TreeWalks = d.U64()
	m.LocksGranted = d.U64()
	m.ReleaseRetries = d.U64()
	m.Promotions = d.U64()
	m.MemPages = d.U64()
	m.DiskPages = d.U64()
	m.HomedRegions = d.U64()
	m.Members = d.NodeIDs()
}

// --- batched consistency traffic ------------------------------------------

// PageReqBatch asks a home node for lock credentials on several pages in a
// single round trip: the batched form of PageReq (Figure 2, step 6,
// amortized over a page set). Pages and Modes are parallel vectors; the
// home answers every page in one PageGrantBatch.
type PageReqBatch struct {
	Pages     []gaddr.Addr
	Modes     []ktypes.LockMode
	Requester ktypes.NodeID
}

// Kind implements Msg.
func (*PageReqBatch) Kind() Kind { return KindPageReqBatch }
func (m *PageReqBatch) encode(e *enc.Encoder) {
	e.U16(uint16(len(m.Pages)))
	for i, p := range m.Pages {
		e.Addr(p)
		e.U8(uint8(m.Modes[i]))
	}
	e.NodeID(m.Requester)
}
func (m *PageReqBatch) decode(d *enc.Decoder) {
	n := int(d.U16())
	if d.Err() == nil && n > 0 {
		m.Pages = make([]gaddr.Addr, 0, n)
		m.Modes = make([]ktypes.LockMode, 0, n)
		for i := 0; i < n; i++ {
			p := d.Addr()
			mode := ktypes.LockMode(d.U8())
			if d.Err() != nil {
				return
			}
			m.Pages = append(m.Pages, p)
			m.Modes = append(m.Modes, mode)
		}
	}
	m.Requester = d.NodeID()
}

// PageGrantItem is the per-page status inside a PageGrantBatch: the same
// fields a standalone PageGrant carries.
type PageGrantItem struct {
	OK      bool
	Data    []byte
	Version uint64
	// Owner is the page's owner after the grant.
	Owner ktypes.NodeID
	Err   string

	// dataFrame, when non-nil, backs Data with a refcounted page frame
	// (see frame.go); it is never encoded.
	dataFrame *frame.Frame
}

// SpecGrant is a speculative read grant piggybacked on a PageGrantBatch:
// the home predicts the requester's next pages from its access pattern and
// ships their contents ahead of demand (§3.3 read-ahead pipelining). Unlike
// demand grants, speculative grants are keyed by explicit page address —
// they answer pages that were never requested.
type SpecGrant struct {
	Page    gaddr.Addr
	Data    []byte
	Version uint64

	// dataFrame, when non-nil, backs Data with a refcounted page frame
	// (see frame.go); it is never encoded.
	dataFrame *frame.Frame
}

// PageGrantBatch answers PageReqBatch with one grant per requested page,
// in request order, optionally followed by speculative read-ahead grants
// for predicted pages. The Spec section is encoded only when present, so
// a batch without speculation is byte-identical to the legacy format and
// old decoders never see it.
type PageGrantBatch struct {
	Grants []PageGrantItem
	Spec   []SpecGrant
}

// Kind implements Msg.
func (*PageGrantBatch) Kind() Kind { return KindPageGrantBatch }
func (m *PageGrantBatch) encode(e *enc.Encoder) {
	e.U16(uint16(len(m.Grants)))
	for _, g := range m.Grants {
		e.Bool(g.OK)
		e.Bytes32(g.Data)
		e.U64(g.Version)
		e.NodeID(g.Owner)
		e.String(g.Err)
	}
	if len(m.Spec) > 0 {
		e.U16(uint16(len(m.Spec)))
		for _, s := range m.Spec {
			e.Addr(s.Page)
			e.Bytes32(s.Data)
			e.U64(s.Version)
		}
	}
}
func (m *PageGrantBatch) decode(d *enc.Decoder) {
	n := int(d.U16())
	if d.Err() != nil {
		return
	}
	if n > 0 {
		m.Grants = make([]PageGrantItem, 0, n)
		for i := 0; i < n; i++ {
			var g PageGrantItem
			g.OK = d.Bool()
			g.dataFrame = d.Bytes32Frame()
			if g.dataFrame != nil {
				g.Data = g.dataFrame.Bytes()
			}
			g.Version = d.U64()
			g.Owner = d.NodeID()
			g.Err = d.String()
			if d.Err() != nil {
				if g.dataFrame != nil {
					g.dataFrame.Release()
				}
				return
			}
			if g.dataFrame != nil {
				g.dataFrame.SetVersion(g.Version)
			}
			m.Grants = append(m.Grants, g)
		}
	}
	// Optional trailing speculative section: absent in legacy batches.
	if d.Remaining() == 0 {
		return
	}
	sn := int(d.U16())
	if d.Err() != nil || sn == 0 {
		return
	}
	m.Spec = make([]SpecGrant, 0, sn)
	for i := 0; i < sn; i++ {
		var s SpecGrant
		s.Page = d.Addr()
		s.dataFrame = d.Bytes32Frame()
		if s.dataFrame != nil {
			s.Data = s.dataFrame.Bytes()
		}
		s.Version = d.U64()
		if d.Err() != nil {
			if s.dataFrame != nil {
				s.dataFrame.Release()
			}
			return
		}
		if s.dataFrame != nil {
			s.dataFrame.SetVersion(s.Version)
		}
		m.Spec = append(m.Spec, s)
	}
}

// ReleaseItem is one page release inside a ReleaseBatch: the same fields a
// standalone ReleaseNotify carries, minus the shared sender.
type ReleaseItem struct {
	Page    gaddr.Addr
	Mode    ktypes.LockMode
	Dirty   bool
	Data    []byte
	Version uint64

	// dataFrame, when non-nil, backs Data with a refcounted page frame
	// (see frame.go); it is never encoded.
	dataFrame *frame.Frame
}

// ReleaseBatch pushes several lock releases (with dirty contents where the
// protocol defers propagation to release time) to a home node in one RPC.
type ReleaseBatch struct {
	From  ktypes.NodeID
	Items []ReleaseItem
}

// Kind implements Msg.
func (*ReleaseBatch) Kind() Kind { return KindReleaseBatch }
func (m *ReleaseBatch) encode(e *enc.Encoder) {
	e.NodeID(m.From)
	e.U16(uint16(len(m.Items)))
	for _, it := range m.Items {
		e.Addr(it.Page)
		e.U8(uint8(it.Mode))
		e.Bool(it.Dirty)
		e.Bytes32(it.Data)
		e.U64(it.Version)
	}
}
func (m *ReleaseBatch) decode(d *enc.Decoder) {
	m.From = d.NodeID()
	n := int(d.U16())
	if d.Err() != nil || n == 0 {
		return
	}
	m.Items = make([]ReleaseItem, 0, n)
	for i := 0; i < n; i++ {
		var it ReleaseItem
		it.Page = d.Addr()
		it.Mode = ktypes.LockMode(d.U8())
		it.Dirty = d.Bool()
		it.dataFrame = d.Bytes32Frame()
		if it.dataFrame != nil {
			it.Data = it.dataFrame.Bytes()
		}
		it.Version = d.U64()
		if d.Err() != nil {
			if it.dataFrame != nil {
				it.dataFrame.Release()
			}
			return
		}
		if it.dataFrame != nil {
			it.dataFrame.SetVersion(it.Version)
		}
		m.Items = append(m.Items, it)
	}
}

// ReleaseBatchResp answers ReleaseBatch with a per-item error string in
// request order; "" means that release was applied.
type ReleaseBatchResp struct {
	Errs []string
}

// Kind implements Msg.
func (*ReleaseBatchResp) Kind() Kind { return KindReleaseBatchResp }
func (m *ReleaseBatchResp) encode(e *enc.Encoder) {
	e.U16(uint16(len(m.Errs)))
	for _, s := range m.Errs {
		e.String(s)
	}
}
func (m *ReleaseBatchResp) decode(d *enc.Decoder) {
	n := int(d.U16())
	if d.Err() != nil || n == 0 {
		return
	}
	m.Errs = make([]string, 0, n)
	for i := 0; i < n; i++ {
		s := d.String()
		if d.Err() != nil {
			return
		}
		m.Errs = append(m.Errs, s)
	}
}

// UpdateItem is one page update inside an UpdateBatch. Its encoding is the
// UpdatePush body verbatim (page, contents, version, stamp, origin), so a
// single-item batch carries exactly the bytes an UpdatePush would.
type UpdateItem struct {
	Page    gaddr.Addr
	Data    []byte
	Version uint64
	// Stamp orders concurrent eventual-protocol writes (last writer
	// wins); ties break on Origin. Zero outside the eventual protocol.
	Stamp  int64
	Origin ktypes.NodeID

	// dataFrame, when non-nil, backs Data with a refcounted page frame
	// (see frame.go); it is never encoded.
	dataFrame *frame.Frame
}

// UpdateBatch groups several page updates bound for one destination into a
// single RPC: the batched form of UpdatePush/ReplicaPut used by the CREW
// write-through, the release-protocol home push, eventual gossip rounds,
// and the §3.5 background retry drain.
type UpdateBatch struct {
	From  ktypes.NodeID
	Items []UpdateItem
}

// Kind implements Msg.
func (*UpdateBatch) Kind() Kind { return KindUpdateBatch }
func (m *UpdateBatch) encode(e *enc.Encoder) {
	e.NodeID(m.From)
	e.U16(uint16(len(m.Items)))
	for _, it := range m.Items {
		e.Addr(it.Page)
		e.Bytes32(it.Data)
		e.U64(it.Version)
		e.I64(it.Stamp)
		e.NodeID(it.Origin)
	}
}
func (m *UpdateBatch) decode(d *enc.Decoder) {
	m.From = d.NodeID()
	n := int(d.U16())
	if d.Err() != nil || n == 0 {
		return
	}
	m.Items = make([]UpdateItem, 0, n)
	for i := 0; i < n; i++ {
		var it UpdateItem
		it.Page = d.Addr()
		it.dataFrame = d.Bytes32Frame()
		if it.dataFrame != nil {
			it.Data = it.dataFrame.Bytes()
		}
		it.Version = d.U64()
		it.Stamp = d.I64()
		it.Origin = d.NodeID()
		if d.Err() != nil {
			if it.dataFrame != nil {
				it.dataFrame.Release()
			}
			return
		}
		if it.dataFrame != nil {
			it.dataFrame.SetVersion(it.Version)
		}
		m.Items = append(m.Items, it)
	}
}

// UpdateBatchResp answers UpdateBatch with parallel per-item results in
// request order: Errs[i] == "" means item i was applied, and Versions[i]
// is the page's version at the receiver after application.
type UpdateBatchResp struct {
	Errs     []string
	Versions []uint64
}

// Kind implements Msg.
func (*UpdateBatchResp) Kind() Kind { return KindUpdateBatchResp }
func (m *UpdateBatchResp) encode(e *enc.Encoder) {
	e.U16(uint16(len(m.Errs)))
	for i, s := range m.Errs {
		e.String(s)
		var v uint64
		if i < len(m.Versions) {
			v = m.Versions[i]
		}
		e.U64(v)
	}
}
func (m *UpdateBatchResp) decode(d *enc.Decoder) {
	n := int(d.U16())
	if d.Err() != nil || n == 0 {
		return
	}
	m.Errs = make([]string, 0, n)
	m.Versions = make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		s := d.String()
		v := d.U64()
		if d.Err() != nil {
			return
		}
		m.Errs = append(m.Errs, s)
		m.Versions = append(m.Versions, v)
	}
}

// SnapshotReqBatch asks a home node for snapshot copies of several pages
// in one round trip. Unlike PageReqBatch it confers no lock: the home
// answers immediately from the latest committed version of each page (or
// an older retained version when Epoch pins one), without waiting on or
// invalidating any writer's exclusive hold. Epoch 0 asks the home to pick
// its current publish epoch; a non-zero Epoch pins the consistent cut a
// multi-page snapshot context established on its first read.
type SnapshotReqBatch struct {
	Pages     []gaddr.Addr
	Epoch     uint64
	Requester ktypes.NodeID
}

// Kind implements Msg.
func (*SnapshotReqBatch) Kind() Kind { return KindSnapshotReqBatch }
func (m *SnapshotReqBatch) encode(e *enc.Encoder) {
	e.U16(uint16(len(m.Pages)))
	for _, p := range m.Pages {
		e.Addr(p)
	}
	e.U64(m.Epoch)
	e.NodeID(m.Requester)
}
func (m *SnapshotReqBatch) decode(d *enc.Decoder) {
	n := int(d.U16())
	if d.Err() == nil && n > 0 {
		m.Pages = make([]gaddr.Addr, 0, n)
		for i := 0; i < n; i++ {
			p := d.Addr()
			if d.Err() != nil {
				return
			}
			m.Pages = append(m.Pages, p)
		}
	}
	m.Epoch = d.U64()
	m.Requester = d.NodeID()
}

// SnapshotItem is the per-page answer inside a SnapshotGrantBatch: a
// committed copy of the page and the version it was committed at.
type SnapshotItem struct {
	OK      bool
	Data    []byte
	Version uint64
	Err     string

	// dataFrame, when non-nil, backs Data with a refcounted page frame
	// (see frame.go); it is never encoded.
	dataFrame *frame.Frame
}

// SnapshotGrantBatch answers SnapshotReqBatch with one item per requested
// page, in request order, plus the publish epoch the answers were cut at —
// the epoch a snapshot context pins for its subsequent reads.
type SnapshotGrantBatch struct {
	Epoch uint64
	Items []SnapshotItem
}

// Kind implements Msg.
func (*SnapshotGrantBatch) Kind() Kind { return KindSnapshotGrantBatch }
func (m *SnapshotGrantBatch) encode(e *enc.Encoder) {
	e.U64(m.Epoch)
	e.U16(uint16(len(m.Items)))
	for _, it := range m.Items {
		e.Bool(it.OK)
		e.Bytes32(it.Data)
		e.U64(it.Version)
		e.String(it.Err)
	}
}
func (m *SnapshotGrantBatch) decode(d *enc.Decoder) {
	m.Epoch = d.U64()
	n := int(d.U16())
	if d.Err() != nil || n == 0 {
		return
	}
	m.Items = make([]SnapshotItem, 0, n)
	for i := 0; i < n; i++ {
		var it SnapshotItem
		it.OK = d.Bool()
		it.dataFrame = d.Bytes32Frame()
		if it.dataFrame != nil {
			it.Data = it.dataFrame.Bytes()
		}
		it.Version = d.U64()
		it.Err = d.String()
		if d.Err() != nil {
			if it.dataFrame != nil {
				it.dataFrame.Release()
			}
			return
		}
		if it.dataFrame != nil {
			it.dataFrame.SetVersion(it.Version)
		}
		m.Items = append(m.Items, it)
	}
}
