package wire

import (
	"khazana/internal/enc"
	"khazana/internal/ktypes"
)

// Telemetry traffic: the generic name/value statistics exchange behind
// `khazctl stats` and `khazctl trace`, and the optional trace envelope the
// transports wrap around requests that carry a span context.
//
// Unlike the fixed-field StatsResp (kept for compatibility), StatsReply
// carries the full metrics registry by name, so new instruments reach
// operators without another wire change.

// StatsQuery asks a daemon for its full telemetry snapshot.
type StatsQuery struct {
	// IncludeSpans requests the node's recorded trace spans too.
	IncludeSpans bool
}

// Kind implements Msg.
func (*StatsQuery) Kind() Kind              { return KindStatsQuery }
func (m *StatsQuery) encode(e *enc.Encoder) { e.Bool(m.IncludeSpans) }
func (m *StatsQuery) decode(d *enc.Decoder) { m.IncludeSpans = d.Bool() }

// NamedCounter is one counter in a StatsReply.
type NamedCounter struct {
	Name  string
	Value uint64
}

// NamedGauge is one gauge in a StatsReply.
type NamedGauge struct {
	Name  string
	Value int64
}

// HistStat is one histogram in a StatsReply. Buckets are power-of-two:
// bucket i counts observations below 2^i (see telemetry.BucketBound),
// trimmed after the last non-empty bucket.
type HistStat struct {
	Name    string
	Count   uint64
	Sum     uint64
	Buckets []uint64
}

// SpanStat is one recorded trace span in a StatsReply.
type SpanStat struct {
	Trace         uint64
	Span          uint64
	Parent        uint64
	Node          ktypes.NodeID
	Name          string
	StartUnixNano int64
	DurationNs    int64
}

// StatsReply carries a daemon's metrics registry snapshot and, on
// request, its recorded trace spans.
type StatsReply struct {
	Node     ktypes.NodeID
	Counters []NamedCounter
	Gauges   []NamedGauge
	Hists    []HistStat
	Spans    []SpanStat
}

// Kind implements Msg.
func (*StatsReply) Kind() Kind { return KindStatsReply }

func (m *StatsReply) encode(e *enc.Encoder) {
	e.NodeID(m.Node)
	e.U16(uint16(len(m.Counters)))
	for _, c := range m.Counters {
		e.String(c.Name)
		e.U64(c.Value)
	}
	e.U16(uint16(len(m.Gauges)))
	for _, g := range m.Gauges {
		e.String(g.Name)
		e.I64(g.Value)
	}
	e.U16(uint16(len(m.Hists)))
	for _, h := range m.Hists {
		e.String(h.Name)
		e.U64(h.Count)
		e.U64(h.Sum)
		e.U16(uint16(len(h.Buckets)))
		for _, b := range h.Buckets {
			e.U64(b)
		}
	}
	e.U16(uint16(len(m.Spans)))
	for _, s := range m.Spans {
		e.U64(s.Trace)
		e.U64(s.Span)
		e.U64(s.Parent)
		e.NodeID(s.Node)
		e.String(s.Name)
		e.I64(s.StartUnixNano)
		e.I64(s.DurationNs)
	}
}

func (m *StatsReply) decode(d *enc.Decoder) {
	m.Node = d.NodeID()
	if n := int(d.U16()); n > 0 && d.Err() == nil {
		m.Counters = make([]NamedCounter, n)
		for i := range m.Counters {
			m.Counters[i].Name = d.String()
			m.Counters[i].Value = d.U64()
		}
	}
	if n := int(d.U16()); n > 0 && d.Err() == nil {
		m.Gauges = make([]NamedGauge, n)
		for i := range m.Gauges {
			m.Gauges[i].Name = d.String()
			m.Gauges[i].Value = d.I64()
		}
	}
	if n := int(d.U16()); n > 0 && d.Err() == nil {
		m.Hists = make([]HistStat, n)
		for i := range m.Hists {
			m.Hists[i].Name = d.String()
			m.Hists[i].Count = d.U64()
			m.Hists[i].Sum = d.U64()
			if bn := int(d.U16()); bn > 0 && d.Err() == nil {
				m.Hists[i].Buckets = make([]uint64, bn)
				for j := range m.Hists[i].Buckets {
					m.Hists[i].Buckets[j] = d.U64()
				}
			}
		}
	}
	if n := int(d.U16()); n > 0 && d.Err() == nil {
		m.Spans = make([]SpanStat, n)
		for i := range m.Spans {
			m.Spans[i].Trace = d.U64()
			m.Spans[i].Span = d.U64()
			m.Spans[i].Parent = d.U64()
			m.Spans[i].Node = d.NodeID()
			m.Spans[i].Name = d.String()
			m.Spans[i].StartUnixNano = d.I64()
			m.Spans[i].DurationNs = d.I64()
		}
	}
}

// Traced is the optional trace envelope. When a request context carries a
// span context, the transport wraps the marshaled message in a Traced
// frame; the receiving transport unwraps it and hands the handler a
// context carrying the sender's trace and span IDs. Messages sent without
// a span context are never wrapped, so their encoding is byte-identical
// to the pre-telemetry format (the frame fuzzers prove this).
type Traced struct {
	Trace uint64
	Span  uint64
	// Inner is the wrapped message, marshaled with its own kind prefix.
	Inner []byte
}

// Kind implements Msg.
func (*Traced) Kind() Kind { return KindTraced }

func (m *Traced) encode(e *enc.Encoder) {
	e.U64(m.Trace)
	e.U64(m.Span)
	e.Bytes32(m.Inner)
}

func (m *Traced) decode(d *enc.Decoder) {
	m.Trace = d.U64()
	m.Span = d.U64()
	m.Inner = d.Bytes32()
}
