package wire

import (
	"bytes"
	"testing"

	"khazana/internal/frame"
	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
)

// FuzzSnapshotReqBatchWire proves the request encoding is exactly the
// hand-rolled legacy layout (count-prefixed addresses, epoch, requester)
// and round-trips.
func FuzzSnapshotReqBatchWire(f *testing.F) {
	f.Add(uint64(0), uint32(3), uint64(0x100000), uint64(0x101000))
	f.Add(uint64(1<<40), uint32(0), uint64(0), uint64(1))
	f.Fuzz(func(t *testing.T, epoch uint64, requester uint32, lo1, lo2 uint64) {
		pages := []gaddr.Addr{{Hi: 1, Lo: lo1}, {Hi: 1, Lo: lo2}}
		m := &SnapshotReqBatch{Pages: pages, Epoch: epoch, Requester: ktypes.NodeID(requester)}
		got := Marshal(m)

		want := legacyAppendU16(nil, uint16(KindSnapshotReqBatch))
		want = legacyAppendU16(want, uint16(len(pages)))
		for _, p := range pages {
			want = legacyAppendAddr(want, p)
		}
		want = legacyAppendU64(want, epoch)
		want = legacyAppendU32(want, requester)
		if !bytes.Equal(got, want) {
			t.Fatalf("snapshot request diverged from legacy layout:\n got %x\nwant %x", got, want)
		}

		back, err := Unmarshal(got)
		if err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		r := back.(*SnapshotReqBatch)
		if len(r.Pages) != 2 || r.Pages[0] != pages[0] || r.Pages[1] != pages[1] {
			t.Fatal("pages did not round trip")
		}
		if r.Epoch != epoch || r.Requester != ktypes.NodeID(requester) {
			t.Fatal("scalar fields did not round trip")
		}
	})
}

// FuzzSnapshotGrantBatchWire proves the grant encoding contract: the
// frame-backed marshal path is byte-identical to the bare-slice one, the
// layout matches the hand-rolled legacy stream, and payloads round-trip
// frames included.
func FuzzSnapshotGrantBatchWire(f *testing.F) {
	f.Add([]byte("committed page"), []byte(""), uint64(7), uint64(3), "reclaimed")
	f.Add([]byte{}, bytes.Repeat([]byte{0xAB}, 4096), uint64(0), uint64(1<<33), "")
	f.Fuzz(func(t *testing.T, d1, d2 []byte, epoch, version uint64, errStr string) {
		m := &SnapshotGrantBatch{Epoch: epoch, Items: []SnapshotItem{
			{OK: true, Version: version},
			{OK: false, Version: version + 1, Err: errStr},
		}}
		var frames []*frame.Frame
		for i, d := range [][]byte{d1, d2} {
			if len(d) == 0 {
				continue
			}
			fr := frame.Copy(d)
			// Frame-back one item and leave the other bare to prove both
			// paths emit the same bytes.
			if i == 0 {
				m.Items[i].SetFrame(fr)
			} else {
				m.Items[i].Data = append([]byte(nil), d...)
			}
			frames = append(frames, fr)
		}
		got := Marshal(m)

		want := legacyAppendU16(nil, uint16(KindSnapshotGrantBatch))
		want = legacyAppendU64(want, epoch)
		want = legacyAppendU16(want, uint16(len(m.Items)))
		for i := range m.Items {
			it := &m.Items[i]
			want = legacyAppendBool(want, it.OK)
			want = legacyAppendBytes32(want, it.Data)
			want = legacyAppendU64(want, it.Version)
			want = legacyAppendString(want, it.Err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("snapshot grant diverged from legacy layout:\n got %x\nwant %x", got, want)
		}
		m.ReleaseFrames()
		for _, fr := range frames {
			fr.Release()
		}

		back, err := Unmarshal(got)
		if err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		gb := back.(*SnapshotGrantBatch)
		if gb.Epoch != epoch || len(gb.Items) != 2 {
			t.Fatalf("header did not round trip: epoch=%d items=%d", gb.Epoch, len(gb.Items))
		}
		if !gb.Items[0].OK || gb.Items[1].OK || gb.Items[1].Err != errStr {
			t.Fatal("status fields did not round trip")
		}
		for i, d := range [][]byte{d1, d2} {
			wantData := d
			if len(wantData) == 0 {
				wantData = nil
			}
			it := &gb.Items[i]
			if !bytes.Equal(it.Data, wantData) {
				t.Fatalf("item %d payload did not round trip", i)
			}
			df := it.TakeFrame()
			if len(wantData) > 0 {
				if df == nil {
					t.Fatalf("item %d decoded without frame backing", i)
				}
				if !bytes.Equal(df.Bytes(), wantData) || df.Version() != it.Version {
					t.Fatalf("item %d decoded frame mismatch", i)
				}
			}
			if df != nil {
				df.Release()
			}
		}
		gb.ReleaseFrames()
	})
}
