package wire

import (
	"reflect"
	"testing"
	"testing/quick"

	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
	"khazana/internal/region"
	"khazana/internal/security"
)

// sampleMessages returns one populated instance of every message type.
func sampleMessages() []Msg {
	desc := &region.Descriptor{
		Range: gaddr.Range{Start: gaddr.New(1, 0x1000), Size: 0x4000},
		Attrs: region.Attrs{
			PageSize:    4096,
			Level:       region.Strict,
			Protocol:    region.CREW,
			MinReplicas: 2,
			ACL:         security.Private("alice").Grant("bob", security.PermRead),
		},
		Home:      []ktypes.NodeID{1, 3},
		Epoch:     7,
		Allocated: true,
	}
	return []Msg{
		&Ack{Err: "boom"},
		&Ack{},
		&Ping{From: 4, SentUnixNano: 1234567890},
		&Pong{From: 5, EchoUnixNano: 1234567890},
		&RegionLookup{Addr: gaddr.New(2, 0x2000)},
		&RegionInfo{Found: true, Desc: desc},
		&RegionInfo{Found: false, Err: "not found"},
		&AttrSet{Desc: desc, Principal: "alice"},
		&ReserveSpace{From: 2, Size: 1 << 30},
		&SpaceGrant{Range: gaddr.Range{Start: gaddr.New(0, 1<<30), Size: 1 << 30}},
		&SpaceGrant{Err: "no space"},
		&PageReq{Page: gaddr.New(0, 0x3000), Mode: ktypes.LockWrite, Requester: 1},
		&PageGrant{OK: true, Data: []byte("page contents"), Version: 9, Owner: 2},
		&PageGrant{Err: "denied"},
		&Invalidate{Page: gaddr.New(0, 0x3000), NewOwner: 4, Version: 10},
		&PageFetch{Page: gaddr.New(0, 0x3000), Requester: 3},
		&PageData{Found: true, Data: []byte{1, 2, 3}, Version: 11},
		&UpdatePush{Page: gaddr.New(0, 0x4000), Data: []byte("new"), Version: 2, Stamp: 99, Origin: 5},
		&VersionQuery{Page: gaddr.New(0, 0x4000)},
		&VersionInfo{Found: true, Version: 12},
		&ReleaseNotify{Page: gaddr.New(0, 0x5000), Mode: ktypes.LockWrite, Dirty: true, Data: []byte("d"), Version: 3, From: 2},
		&ReplicaPut{Page: gaddr.New(0, 0x6000), Data: []byte("replica"), Version: 4, From: 1},
		&CopysetQuery{Page: gaddr.New(0, 0x6000)},
		&CopysetInfo{Owner: 1, Nodes: []ktypes.NodeID{1, 2, 3}},
		&Join{Node: 6, Addr: "127.0.0.1:9999"},
		&ClusterView{Manager: 1, Members: []ktypes.NodeID{1, 2, 3, 6}},
		&Heartbeat{Node: 2, FreeTotal: 1 << 40, FreeMax: 1 << 30, Regions: []gaddr.Addr{gaddr.New(0, 0x1000)}},
		&ClusterQuery{Addr: gaddr.New(0, 0x2000)},
		&ClusterHint{Found: true, Nodes: []ktypes.NodeID{4}},
		&Leave{Node: 6},
		&CReserve{Size: 8192, Attrs: region.DefaultAttrs(), Principal: "bob"},
		&CReserveResp{Start: gaddr.New(0, 0x10000)},
		&CUnreserve{Start: gaddr.New(0, 0x10000), Principal: "bob"},
		&CAllocate{Start: gaddr.New(0, 0x10000), Principal: "bob"},
		&CFree{Start: gaddr.New(0, 0x10000), Principal: "bob"},
		&CLock{Range: gaddr.Range{Start: gaddr.New(0, 0x10000), Size: 4096}, Mode: ktypes.LockRead, Principal: "bob"},
		&CLockResp{LockID: 77},
		&CUnlock{LockID: 77},
		&CRead{LockID: 77, Addr: gaddr.New(0, 0x10000), Len: 128},
		&CData{Data: []byte("result")},
		&CWrite{LockID: 77, Addr: gaddr.New(0, 0x10080), Data: []byte("payload")},
		&CGetAttr{Addr: gaddr.New(0, 0x10000)},
		&CSetAttr{Start: gaddr.New(0, 0x10000), Attrs: region.DefaultAttrs(), Principal: "bob"},
		&KVGet{Key: gaddr.New(0, 0x20000), Len: 64, Off: 8},
		&KVPut{Key: gaddr.New(0, 0x20000), Off: 8, Data: []byte("kv")},
		&MapInsert{Range: gaddr.Range{Start: gaddr.New(0, 0x40000000), Size: 0x2000}, Homes: []ktypes.NodeID{2}},
		&MapRemove{Start: gaddr.New(0, 0x40000000)},
		&MapSetHomes{Start: gaddr.New(0, 0x40000000), Homes: []ktypes.NodeID{3, 4}},
		&Promote{Start: gaddr.New(0, 0x40000000), From: 2},
		&ObjInvoke{Ref: gaddr.New(0, 0x50000000), Method: "deposit", Args: []byte{1, 2}},
		&ObjResult{Result: []byte("ok")},
		&ObjResult{Err: "no such method"},
		&Migrate{Start: gaddr.New(0, 0x60000000), NewHome: 3, Principal: "admin"},
		&StatsReq{},
		&StatsResp{Node: 2, Lookups: 10, DirHits: 8, TreeWalks: 1, MemPages: 5,
			HomedRegions: 3, Members: []ktypes.NodeID{1, 2}},
		&PageReqBatch{
			Pages:     []gaddr.Addr{gaddr.New(0, 0x3000), gaddr.New(0, 0x4000)},
			Modes:     []ktypes.LockMode{ktypes.LockRead, ktypes.LockWrite},
			Requester: 2,
		},
		&PageGrantBatch{Grants: []PageGrantItem{
			{OK: true, Data: []byte("page"), Version: 3, Owner: 1},
			{Err: "conflict"},
		}},
		&ReleaseBatch{From: 2, Items: []ReleaseItem{
			{Page: gaddr.New(0, 0x3000), Mode: ktypes.LockWrite, Dirty: true, Data: []byte("d"), Version: 4},
			{Page: gaddr.New(0, 0x4000), Mode: ktypes.LockRead},
		}},
		&ReleaseBatchResp{Errs: []string{"", "store failed"}},
		&StatsQuery{IncludeSpans: true},
		&StatsQuery{},
		&StatsReply{
			Node:     3,
			Counters: []NamedCounter{{Name: "core.lookups", Value: 42}},
			Gauges:   []NamedGauge{{Name: "store.mem_pages", Value: -1}},
			Hists: []HistStat{
				{Name: "core.lock_latency_ns", Count: 2, Sum: 3000, Buckets: []uint64{0, 1, 1}},
				{Name: "net.ping_rtt_ns"},
			},
			Spans: []SpanStat{{Trace: 7, Span: 8, Parent: 9, Node: 3,
				Name: "op.lock", StartUnixNano: 100, DurationNs: 250}},
		},
		&StatsReply{Node: 1},
		&Traced{Trace: 0xABCD, Span: 0x1234, Inner: []byte{0x02, 0x00}},
		&PageGrantBatch{
			Grants: []PageGrantItem{{OK: true, Data: []byte("page"), Version: 3, Owner: 1}},
			Spec: []SpecGrant{
				{Page: gaddr.New(0, 0x4000), Data: []byte("ahead"), Version: 4},
				{Page: gaddr.New(0, 0x5000), Data: []byte("ahead2"), Version: 5},
			},
		},
		&UpdateBatch{From: 2, Items: []UpdateItem{
			{Page: gaddr.New(0, 0x3000), Data: []byte("u1"), Version: 4, Stamp: 99, Origin: 2},
			{Page: gaddr.New(0, 0x4000), Data: []byte("u2"), Version: 5, Stamp: 100, Origin: 3},
		}},
		&UpdateBatch{From: 1},
		&UpdateBatchResp{Errs: []string{"", "store failed"}, Versions: []uint64{7, 0}},
		&SnapshotReqBatch{
			Pages:     []gaddr.Addr{gaddr.New(0, 0x1000), gaddr.New(0, 0x2000)},
			Epoch:     12,
			Requester: 2,
		},
		&SnapshotReqBatch{Requester: 1},
		&SnapshotGrantBatch{Epoch: 12, Items: []SnapshotItem{
			{OK: true, Data: []byte("snap"), Version: 6},
			{OK: false, Err: "not home"},
		}},
		&SnapshotGrantBatch{Epoch: 1},
		&ReplAppend{
			Region: gaddr.New(0, 0x40000000), From: 2, Term: 3,
			PrevIndex: 6, PrevTerm: 3, Commit: 5,
			Entries: []ReplEntry{
				{Index: 7, Term: 3, Region: gaddr.New(0, 0x40000000),
					Op: ReplOpRelease, Page: gaddr.New(0, 0x40001000),
					Node: 4, Nodes: []ktypes.NodeID{2, 4}, Val: 9, Aux: 2},
				{Index: 8, Term: 3, Region: gaddr.New(0, 0x40000000),
					Op: ReplOpHomes, Nodes: []ktypes.NodeID{2, 1, 3}, Val: 11},
			},
		},
		&ReplAppend{Region: gaddr.New(0, 0x40000000), From: 2, Term: 4,
			SnapIndex: 8, SnapTerm: 3, SnapState: []byte("state")},
		&ReplAck{Term: 3, Ack: 8, OK: true},
		&ReplAck{Term: 5, VoteGranted: true},
		&ReplAck{Term: 4, Err: "lease still live"},
		&ReplPromote{Region: gaddr.New(0, 0x40000000), Candidate: 3,
			Term: 5, LastIndex: 8, LastTerm: 3},
		&RingLookup{Addr: gaddr.New(0, 0x40002000), From: 4},
		&RingReply{Found: true, Desc: desc},
		&RingReply{Found: false, Err: "not in table"},
		&RingAnnounce{Op: RingOpPut, Desc: desc, Start: desc.Range.Start, From: 2},
		&RingAnnounce{Op: RingOpWithdraw, Start: gaddr.New(0, 0x40000000), From: 3},
	}
}

// detachFrames clears the unexported frame backing decoded payloads so
// DeepEqual compares only the encoded fields. The frames are deliberately
// leaked to the GC, never released, so the Data views stay valid.
func detachFrames(m Msg) {
	switch msg := m.(type) {
	case *PageGrant:
		msg.dataFrame = nil
	case *PageData:
		msg.dataFrame = nil
	case *UpdatePush:
		msg.dataFrame = nil
	case *ReleaseNotify:
		msg.dataFrame = nil
	case *ReplicaPut:
		msg.dataFrame = nil
	case *PageGrantBatch:
		for i := range msg.Grants {
			msg.Grants[i].dataFrame = nil
		}
		for i := range msg.Spec {
			msg.Spec[i].dataFrame = nil
		}
	case *ReleaseBatch:
		for i := range msg.Items {
			msg.Items[i].dataFrame = nil
		}
	case *UpdateBatch:
		for i := range msg.Items {
			msg.Items[i].dataFrame = nil
		}
	case *SnapshotGrantBatch:
		for i := range msg.Items {
			msg.Items[i].dataFrame = nil
		}
	}
}

func TestEveryMessageRoundTrips(t *testing.T) {
	for _, m := range sampleMessages() {
		b := Marshal(m)
		got, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("%T: unmarshal: %v", m, err)
		}
		if got.Kind() != m.Kind() {
			t.Fatalf("%T: kind %d != %d", m, got.Kind(), m.Kind())
		}
		detachFrames(got)
		if !reflect.DeepEqual(got, m) {
			t.Errorf("%T round trip mismatch:\n got %+v\nwant %+v", m, got, m)
		}
	}
}

func TestEveryKindRegistered(t *testing.T) {
	seen := make(map[Kind]bool)
	for _, m := range sampleMessages() {
		seen[m.Kind()] = true
	}
	for kind := range factories {
		if !seen[kind] {
			t.Errorf("kind %d has no sample message; add one to keep coverage honest", kind)
		}
	}
	// And the reverse: every sample's kind must be registered.
	for _, m := range sampleMessages() {
		if _, ok := factories[m.Kind()]; !ok {
			t.Errorf("%T kind %d not registered", m, m.Kind())
		}
	}
}

// TestBatchMessageRoundTrips exercises the batched page-transfer messages
// across their edge shapes: empty batches, single-page batches, a batch at
// the u16 count limit, and nil data vectors.
func TestBatchMessageRoundTrips(t *testing.T) {
	const maxFanout = 65535
	bigPages := make([]gaddr.Addr, maxFanout)
	bigModes := make([]ktypes.LockMode, maxFanout)
	bigGrants := make([]PageGrantItem, maxFanout)
	bigItems := make([]ReleaseItem, maxFanout)
	bigErrs := make([]string, maxFanout)
	for i := 0; i < maxFanout; i++ {
		bigPages[i] = gaddr.New(0, uint64(i)*4096)
		bigModes[i] = ktypes.LockRead
		// Nil Data throughout: credential-only grants and clean releases
		// carry no page bytes.
		bigGrants[i] = PageGrantItem{OK: true, Version: uint64(i), Owner: 1}
		bigItems[i] = ReleaseItem{Page: bigPages[i], Mode: ktypes.LockRead}
		bigErrs[i] = ""
	}
	cases := []Msg{
		// Empty vectors.
		&PageReqBatch{Requester: 3},
		&PageGrantBatch{},
		&ReleaseBatch{From: 3},
		&ReleaseBatchResp{},
		// Single page.
		&PageReqBatch{Pages: []gaddr.Addr{gaddr.New(1, 0x1000)}, Modes: []ktypes.LockMode{ktypes.LockWrite}, Requester: 9},
		&PageGrantBatch{Grants: []PageGrantItem{{OK: true, Data: []byte("contents"), Version: 12, Owner: 7}}},
		&ReleaseBatch{From: 9, Items: []ReleaseItem{{Page: gaddr.New(1, 0x1000), Mode: ktypes.LockWrite, Dirty: true, Data: []byte("dirty"), Version: 13}}},
		&ReleaseBatchResp{Errs: []string{"conflict"}},
		// Max fan-out at the u16 count limit, nil data vectors.
		&PageReqBatch{Pages: bigPages, Modes: bigModes, Requester: 1},
		&PageGrantBatch{Grants: bigGrants},
		&ReleaseBatch{From: 1, Items: bigItems},
		&ReleaseBatchResp{Errs: bigErrs},
	}
	for _, m := range cases {
		b := Marshal(m)
		got, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("%T: unmarshal: %v", m, err)
		}
		detachFrames(got)
		if !reflect.DeepEqual(got, m) {
			t.Errorf("%T round trip mismatch", m)
		}
	}

	// Truncations of a populated batch must fail cleanly, never yield a
	// partially-filled message.
	full := Marshal(&ReleaseBatch{From: 2, Items: []ReleaseItem{
		{Page: gaddr.New(0, 0x1000), Mode: ktypes.LockWrite, Dirty: true, Data: []byte("abc"), Version: 1},
		{Page: gaddr.New(0, 0x2000), Mode: ktypes.LockRead},
	}})
	for cut := 2; cut < len(full); cut++ {
		if _, err := Unmarshal(full[:cut]); err == nil {
			t.Errorf("ReleaseBatch cut=%d should fail", cut)
		}
	}
}

func TestKindsAreUnique(t *testing.T) {
	byKind := make(map[Kind]string)
	for _, m := range sampleMessages() {
		name := reflect.TypeOf(m).String()
		if prev, ok := byKind[m.Kind()]; ok && prev != name {
			t.Errorf("kind %d shared by %s and %s", m.Kind(), prev, name)
		}
		byKind[m.Kind()] = name
	}
}

func TestFactoryProducesCorrectKind(t *testing.T) {
	for kind, f := range factories {
		if got := f().Kind(); got != kind {
			t.Errorf("factory for kind %d produces kind %d", kind, got)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Error("empty buffer should fail")
	}
	if _, err := Unmarshal([]byte{0xff, 0xff}); err == nil {
		t.Error("unknown kind should fail")
	}
	// Truncated payload of a real message.
	b := Marshal(&PageGrant{OK: true, Data: []byte("abcdef"), Version: 1})
	for cut := 2; cut < len(b); cut++ {
		if _, err := Unmarshal(b[:cut]); err == nil {
			t.Errorf("cut=%d should fail", cut)
		}
	}
	// Trailing garbage.
	withTrailing := append(Marshal(&Ping{From: 1}), 0xee)
	if _, err := Unmarshal(withTrailing); err == nil {
		t.Error("trailing bytes should fail")
	}
}

// Property: Unmarshal never panics on arbitrary input.
func TestQuickUnmarshalNoPanic(t *testing.T) {
	f := func(b []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = Unmarshal(b)
		return true
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: fuzzing a valid message's bytes either fails cleanly or yields
// some message; it never panics.
func TestQuickBitFlipNoPanic(t *testing.T) {
	base := Marshal(&UpdatePush{Page: gaddr.New(0, 0x4000), Data: []byte("data"), Version: 2, Stamp: 5, Origin: 3})
	f := func(pos int, bit uint8) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		b := append([]byte(nil), base...)
		if len(b) == 0 {
			return true
		}
		p := pos % len(b)
		if p < 0 {
			p = -p
		}
		b[p] ^= 1 << (bit % 8)
		_, _ = Unmarshal(b)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMarshalPageGrant(b *testing.B) {
	m := &PageGrant{OK: true, Data: make([]byte, 4096), Version: 1, Owner: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Marshal(m)
	}
}

func BenchmarkUnmarshalPageGrant(b *testing.B) {
	raw := Marshal(&PageGrant{OK: true, Data: make([]byte, 4096), Version: 1, Owner: 2})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(raw); err != nil {
			b.Fatal(err)
		}
	}
}
