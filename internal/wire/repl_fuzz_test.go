package wire

import (
	"bytes"
	"testing"

	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
)

func legacyAppendNodeIDs(b []byte, ns []ktypes.NodeID) []byte {
	b = legacyAppendU16(b, uint16(len(ns)))
	for _, n := range ns {
		b = legacyAppendU32(b, uint32(n))
	}
	return b
}

func legacyAppendReplEntry(b []byte, en ReplEntry) []byte {
	b = legacyAppendU64(b, en.Index)
	b = legacyAppendU64(b, en.Term)
	b = legacyAppendAddr(b, en.Region)
	b = append(b, en.Op)
	b = legacyAppendAddr(b, en.Page)
	b = legacyAppendU32(b, uint32(en.Node))
	b = legacyAppendNodeIDs(b, en.Nodes)
	b = legacyAppendU64(b, en.Val)
	b = legacyAppendU64(b, en.Aux)
	return b
}

// FuzzReplAppendWire proves the append encoding is the documented layout
// (header, count-prefixed entries, snapshot trailer) and round-trips,
// entries and snapshot state included.
func FuzzReplAppendWire(f *testing.F) {
	f.Add(uint64(3), uint64(7), uint64(6), uint32(2), uint64(0x2000),
		uint64(5), uint64(9), uint64(2), []byte{})
	f.Add(uint64(0), uint64(1), uint64(0), uint32(1), uint64(1)<<40,
		uint64(0), uint64(0), uint64(0), bytes.Repeat([]byte{0x5A}, 64))
	f.Fuzz(func(t *testing.T, term, prev, commit uint64, from uint32,
		pageLo, val, aux, snapIdx uint64, snap []byte) {
		region := gaddr.Addr{Hi: 2, Lo: 0x1000}
		entries := []ReplEntry{
			{
				Index: prev + 1, Term: term, Region: region,
				Op: ReplOpRelease, Page: gaddr.Addr{Hi: 2, Lo: pageLo},
				Node: ktypes.NodeID(from), Nodes: []ktypes.NodeID{1, 3},
				Val: val, Aux: aux,
			},
			{
				Index: prev + 2, Term: term, Region: region,
				Op: ReplOpHomes, Nodes: []ktypes.NodeID{3, 1}, Val: val + 1,
			},
		}
		m := &ReplAppend{
			Region: region, From: ktypes.NodeID(from), Term: term,
			PrevIndex: prev, PrevTerm: term, Commit: commit, Entries: entries,
			SnapIndex: snapIdx, SnapTerm: term, SnapState: snap,
		}
		got := Marshal(m)

		want := legacyAppendU16(nil, uint16(KindReplAppend))
		want = legacyAppendAddr(want, region)
		want = legacyAppendU32(want, from)
		want = legacyAppendU64(want, term)
		want = legacyAppendU64(want, prev)
		want = legacyAppendU64(want, term)
		want = legacyAppendU64(want, commit)
		want = legacyAppendU16(want, uint16(len(entries)))
		for _, en := range entries {
			want = legacyAppendReplEntry(want, en)
		}
		want = legacyAppendU64(want, snapIdx)
		want = legacyAppendU64(want, term)
		want = legacyAppendBytes32(want, snap)
		if !bytes.Equal(got, want) {
			t.Fatalf("repl append diverged from documented layout:\n got %x\nwant %x", got, want)
		}

		back, err := Unmarshal(got)
		if err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		r := back.(*ReplAppend)
		if r.Region != region || r.From != ktypes.NodeID(from) || r.Term != term ||
			r.PrevIndex != prev || r.PrevTerm != term || r.Commit != commit {
			t.Fatal("header fields did not round trip")
		}
		if len(r.Entries) != 2 {
			t.Fatalf("entry count did not round trip: %d", len(r.Entries))
		}
		for i := range entries {
			g, w := r.Entries[i], entries[i]
			if g.Index != w.Index || g.Term != w.Term || g.Region != w.Region ||
				g.Op != w.Op || g.Page != w.Page || g.Node != w.Node ||
				g.Val != w.Val || g.Aux != w.Aux || len(g.Nodes) != len(w.Nodes) {
				t.Fatalf("entry %d did not round trip: got %+v want %+v", i, g, w)
			}
			for j := range w.Nodes {
				if g.Nodes[j] != w.Nodes[j] {
					t.Fatalf("entry %d copyset did not round trip", i)
				}
			}
		}
		wantSnap := snap
		if len(wantSnap) == 0 {
			wantSnap = nil
		}
		if r.SnapIndex != snapIdx || r.SnapTerm != term || !bytes.Equal(r.SnapState, wantSnap) {
			t.Fatal("snapshot trailer did not round trip")
		}
	})
}

// FuzzReplAckWire proves the shared append/vote reply round-trips and
// matches the documented layout.
func FuzzReplAckWire(f *testing.F) {
	f.Add(uint64(4), uint64(17), true, false, "")
	f.Add(uint64(0), uint64(0), false, true, "lease still live")
	f.Fuzz(func(t *testing.T, term, ack uint64, ok, granted bool, errStr string) {
		m := &ReplAck{Term: term, Ack: ack, OK: ok, VoteGranted: granted, Err: errStr}
		got := Marshal(m)

		want := legacyAppendU16(nil, uint16(KindReplAck))
		want = legacyAppendU64(want, term)
		want = legacyAppendU64(want, ack)
		want = legacyAppendBool(want, ok)
		want = legacyAppendBool(want, granted)
		want = legacyAppendString(want, errStr)
		if !bytes.Equal(got, want) {
			t.Fatalf("repl ack diverged from documented layout:\n got %x\nwant %x", got, want)
		}

		back, err := Unmarshal(got)
		if err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		r := back.(*ReplAck)
		if r.Term != term || r.Ack != ack || r.OK != ok ||
			r.VoteGranted != granted || r.Err != errStr {
			t.Fatal("fields did not round trip")
		}
	})
}

// FuzzReplPromoteWire proves the vote request round-trips and matches
// the documented layout.
func FuzzReplPromoteWire(f *testing.F) {
	f.Add(uint64(0x3000), uint32(3), uint64(5), uint64(12), uint64(4))
	f.Add(uint64(0), uint32(0), uint64(0), uint64(0), uint64(0))
	f.Fuzz(func(t *testing.T, lo uint64, cand uint32, term, lastIdx, lastTerm uint64) {
		region := gaddr.Addr{Hi: 1, Lo: lo}
		m := &ReplPromote{
			Region: region, Candidate: ktypes.NodeID(cand),
			Term: term, LastIndex: lastIdx, LastTerm: lastTerm,
		}
		got := Marshal(m)

		want := legacyAppendU16(nil, uint16(KindReplPromote))
		want = legacyAppendAddr(want, region)
		want = legacyAppendU32(want, cand)
		want = legacyAppendU64(want, term)
		want = legacyAppendU64(want, lastIdx)
		want = legacyAppendU64(want, lastTerm)
		if !bytes.Equal(got, want) {
			t.Fatalf("repl promote diverged from documented layout:\n got %x\nwant %x", got, want)
		}

		back, err := Unmarshal(got)
		if err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		r := back.(*ReplPromote)
		if r.Region != region || r.Candidate != ktypes.NodeID(cand) ||
			r.Term != term || r.LastIndex != lastIdx || r.LastTerm != lastTerm {
			t.Fatal("fields did not round trip")
		}
	})
}
