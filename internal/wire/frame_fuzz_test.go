package wire

import (
	"bytes"
	"encoding/binary"
	"testing"

	"khazana/internal/frame"
	"khazana/internal/ktypes"
)

// legacyAppend* re-implement the pre-frame wire encoding by hand:
// little-endian fields with u32 length prefixes on byte strings, exactly
// as the original enc.Encoder-based codec emitted them. The fuzzers below
// prove the frame-backed marshal path is byte-identical to this format.

func legacyAppendU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func legacyAppendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func legacyAppendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

func legacyAppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func legacyAppendBytes32(b, p []byte) []byte {
	b = legacyAppendU32(b, uint32(len(p)))
	return append(b, p...)
}

func legacyAppendString(b []byte, s string) []byte {
	b = legacyAppendU32(b, uint32(len(s)))
	return append(b, s...)
}

func legacyPageGrant(ok bool, data []byte, version uint64, owner ktypes.NodeID, errStr string) []byte {
	b := legacyAppendU16(nil, uint16(KindPageGrant))
	b = legacyAppendBool(b, ok)
	b = legacyAppendBytes32(b, data)
	b = legacyAppendU64(b, version)
	b = legacyAppendU32(b, uint32(owner))
	b = legacyAppendString(b, errStr)
	return b
}

func legacyPageGrantBatch(grants []PageGrantItem) []byte {
	b := legacyAppendU16(nil, uint16(KindPageGrantBatch))
	b = legacyAppendU16(b, uint16(len(grants)))
	for _, g := range grants {
		b = legacyAppendBool(b, g.OK)
		b = legacyAppendBytes32(b, g.Data)
		b = legacyAppendU64(b, g.Version)
		b = legacyAppendU32(b, uint32(g.Owner))
		b = legacyAppendString(b, g.Err)
	}
	return b
}

// FuzzTracedEnvelopeWire proves both halves of the trace-header
// compatibility contract: a message marshaled without a span context is
// byte-identical to the legacy (pre-telemetry) encoding with no envelope
// prefix, and the same bytes wrapped in a Traced envelope round-trip with
// the inner payload untouched.
func FuzzTracedEnvelopeWire(f *testing.F) {
	f.Add(true, []byte("page contents"), uint64(7), uint32(3), "", uint64(0xA), uint64(0xB))
	f.Add(false, []byte{}, uint64(0), uint32(0), "conflict", uint64(1), uint64(2))
	f.Fuzz(func(t *testing.T, ok bool, data []byte, version uint64, owner uint32, errStr string, trace, span uint64) {
		m := &PageGrant{OK: ok, Version: version, Owner: ktypes.NodeID(owner), Err: errStr}
		if len(data) > 0 {
			m.Data = append([]byte(nil), data...)
		}
		// Absent span context: the plain marshal is the legacy format —
		// no envelope, kind prefix unchanged.
		plain := Marshal(m)
		legacy := legacyPageGrant(ok, m.Data, version, ktypes.NodeID(owner), errStr)
		if !bytes.Equal(plain, legacy) {
			t.Fatalf("untraced marshal diverged from legacy format:\n got %x\nwant %x", plain, legacy)
		}
		if k := Kind(binary.LittleEndian.Uint16(plain[:2])); k != KindPageGrant {
			t.Fatalf("untraced message carries kind %d, want %d", k, KindPageGrant)
		}

		// The traced envelope wraps those exact bytes and yields them back.
		env := Marshal(&Traced{Trace: trace, Span: span, Inner: plain})
		if k := Kind(binary.LittleEndian.Uint16(env[:2])); k != KindTraced {
			t.Fatalf("envelope carries kind %d, want %d", k, KindTraced)
		}
		back, err := Unmarshal(env)
		if err != nil {
			t.Fatalf("unmarshal envelope: %v", err)
		}
		tr, isTraced := back.(*Traced)
		if !isTraced {
			t.Fatalf("envelope decoded as %T", back)
		}
		if tr.Trace != trace || tr.Span != span {
			t.Fatalf("trace context did not round trip: got (%x,%x) want (%x,%x)",
				tr.Trace, tr.Span, trace, span)
		}
		wantInner := plain
		if len(wantInner) == 0 {
			wantInner = nil
		}
		if !bytes.Equal(tr.Inner, wantInner) {
			t.Fatalf("inner payload changed inside the envelope:\n got %x\nwant %x", tr.Inner, plain)
		}
		inner, err := Unmarshal(tr.Inner)
		if err != nil {
			t.Fatalf("unmarshal inner: %v", err)
		}
		g := inner.(*PageGrant)
		if g.OK != ok || g.Version != version || g.Owner != ktypes.NodeID(owner) || g.Err != errStr {
			t.Fatal("inner scalar fields did not round trip")
		}
		g.ReleaseFrames()
	})
}

// FuzzPageGrantFrameWire marshals a frame-backed PageGrant and checks the
// bytes against the legacy encoding, then round-trips them back through
// Unmarshal.
func FuzzPageGrantFrameWire(f *testing.F) {
	f.Add(true, []byte("page contents"), uint64(7), uint32(3), "")
	f.Add(false, []byte{}, uint64(0), uint32(0), "conflict")
	f.Add(true, bytes.Repeat([]byte{0xA5}, 4096), uint64(1<<40), uint32(9), "")
	f.Fuzz(func(t *testing.T, ok bool, data []byte, version uint64, owner uint32, errStr string) {
		m := &PageGrant{OK: ok, Version: version, Owner: ktypes.NodeID(owner), Err: errStr}
		var fr *frame.Frame
		if len(data) > 0 {
			fr = frame.Copy(data)
			m.SetFrame(fr)
		}
		got := Marshal(m)
		want := legacyPageGrant(ok, m.Data, version, ktypes.NodeID(owner), errStr)
		if !bytes.Equal(got, want) {
			t.Fatalf("frame-backed marshal diverged from legacy format:\n got %x\nwant %x", got, want)
		}
		// MarshalAppend into a partially-filled buffer must produce the
		// same payload after the prefix.
		prefixed := MarshalAppend([]byte{0xDE, 0xAD}, m)
		if !bytes.Equal(prefixed[2:], want) {
			t.Fatal("MarshalAppend payload differs from Marshal")
		}
		m.ReleaseFrames()
		if fr != nil {
			fr.Release()
		}

		back, err := Unmarshal(got)
		if err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		g := back.(*PageGrant)
		if g.OK != ok || g.Version != version || g.Owner != ktypes.NodeID(owner) || g.Err != errStr {
			t.Fatal("scalar fields did not round trip")
		}
		wantData := data
		if len(wantData) == 0 {
			wantData = nil
		}
		if !bytes.Equal(g.Data, wantData) {
			t.Fatalf("payload did not round trip: got %x want %x", g.Data, wantData)
		}
		df := g.TakeFrame()
		if len(wantData) > 0 {
			if df == nil {
				t.Fatal("decoded grant has no frame backing")
			}
			if !bytes.Equal(df.Bytes(), wantData) {
				t.Fatal("decoded frame contents differ from payload")
			}
			if df.Version() != version {
				t.Fatalf("decoded frame version = %d, want %d", df.Version(), version)
			}
		}
		if df != nil {
			df.Release()
		}
	})
}

// FuzzPageGrantBatchFrameWire does the same for the batched grant: three
// fuzz-derived items, some frame-backed, marshaled and checked against the
// legacy encoding byte for byte.
func FuzzPageGrantBatchFrameWire(f *testing.F) {
	f.Add([]byte("one"), []byte(""), []byte("three"), uint64(4), "late")
	f.Add([]byte{}, bytes.Repeat([]byte{7}, 512), []byte{0}, uint64(0), "")
	f.Fuzz(func(t *testing.T, d1, d2, d3 []byte, version uint64, errStr string) {
		m := &PageGrantBatch{Grants: []PageGrantItem{
			{OK: true, Version: version, Owner: 1},
			{OK: len(d2) > 0, Version: version + 1, Owner: 2, Err: errStr},
			{OK: true, Version: version + 2, Owner: 3},
		}}
		var frames []*frame.Frame
		for i, d := range [][]byte{d1, d2, d3} {
			if len(d) == 0 {
				continue
			}
			fr := frame.Copy(d)
			// Frame-back every other item to mix bare and framed Data.
			if i%2 == 0 {
				m.Grants[i].SetFrame(fr)
			} else {
				m.Grants[i].Data = append([]byte(nil), d...)
			}
			frames = append(frames, fr)
		}
		got := Marshal(m)
		want := legacyPageGrantBatch(m.Grants)
		if !bytes.Equal(got, want) {
			t.Fatalf("batched frame-backed marshal diverged from legacy format:\n got %x\nwant %x", got, want)
		}
		m.ReleaseFrames()
		for _, fr := range frames {
			fr.Release()
		}

		back, err := Unmarshal(got)
		if err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		gb := back.(*PageGrantBatch)
		if len(gb.Grants) != 3 {
			t.Fatalf("got %d grants, want 3", len(gb.Grants))
		}
		for i, d := range [][]byte{d1, d2, d3} {
			wantData := d
			if len(wantData) == 0 {
				wantData = nil
			}
			if !bytes.Equal(gb.Grants[i].Data, wantData) {
				t.Fatalf("grant %d payload did not round trip", i)
			}
		}
		gb.ReleaseFrames()
	})
}
