package wire

import (
	"bytes"
	"testing"

	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
	"khazana/internal/region"
	"khazana/internal/security"
)

func legacyAppendDescriptor(b []byte, d *region.Descriptor) []byte {
	b = legacyAppendAddr(b, d.Range.Start)
	b = legacyAppendU64(b, d.Range.Size)
	b = legacyAppendU32(b, d.Attrs.PageSize)
	b = append(b, uint8(d.Attrs.Level), uint8(d.Attrs.Protocol), d.Attrs.MinReplicas)
	b = legacyAppendString(b, string(d.Attrs.ACL.Owner))
	b = append(b, uint8(d.Attrs.ACL.World))
	b = legacyAppendU16(b, uint16(len(d.Attrs.ACL.Entries)))
	for _, ent := range d.Attrs.ACL.Entries {
		b = legacyAppendString(b, string(ent.Principal))
		b = append(b, uint8(ent.Allow))
	}
	b = legacyAppendNodeIDs(b, d.Home)
	b = legacyAppendU64(b, d.Epoch)
	b = legacyAppendBool(b, d.Allocated)
	return b
}

func fuzzDescriptor(startLo, size, epoch uint64, pageSize uint32, home uint32, allocated bool) *region.Descriptor {
	return &region.Descriptor{
		Range: gaddr.Range{Start: gaddr.Addr{Hi: 1, Lo: startLo}, Size: size},
		Attrs: region.Attrs{
			PageSize:    pageSize,
			Level:       region.Strict,
			Protocol:    region.CREW,
			MinReplicas: 2,
			ACL:         security.Open(),
		},
		Home:      []ktypes.NodeID{ktypes.NodeID(home), ktypes.NodeID(home) + 1},
		Epoch:     epoch,
		Allocated: allocated,
	}
}

func descriptorsEqual(a, b *region.Descriptor) bool {
	if a.Range != b.Range || a.Attrs.PageSize != b.Attrs.PageSize ||
		a.Attrs.Level != b.Attrs.Level || a.Attrs.Protocol != b.Attrs.Protocol ||
		a.Attrs.MinReplicas != b.Attrs.MinReplicas ||
		a.Attrs.ACL.Owner != b.Attrs.ACL.Owner ||
		a.Attrs.ACL.World != b.Attrs.ACL.World ||
		len(a.Attrs.ACL.Entries) != len(b.Attrs.ACL.Entries) ||
		a.Epoch != b.Epoch || a.Allocated != b.Allocated ||
		len(a.Home) != len(b.Home) {
		return false
	}
	for i := range a.Home {
		if a.Home[i] != b.Home[i] {
			return false
		}
	}
	return true
}

// FuzzRingLookupWire proves the ring lookup request is the documented
// layout (addr + requester) and round-trips.
func FuzzRingLookupWire(f *testing.F) {
	f.Add(uint64(2), uint64(0x40002000), uint32(4))
	f.Add(uint64(0), uint64(0), uint32(0))
	f.Fuzz(func(t *testing.T, hi, lo uint64, from uint32) {
		m := &RingLookup{Addr: gaddr.Addr{Hi: hi, Lo: lo}, From: ktypes.NodeID(from)}
		got := Marshal(m)

		want := legacyAppendU16(nil, uint16(KindRingLookup))
		want = legacyAppendAddr(want, m.Addr)
		want = legacyAppendU32(want, from)
		if !bytes.Equal(got, want) {
			t.Fatalf("ring lookup diverged from documented layout:\n got %x\nwant %x", got, want)
		}

		back, err := Unmarshal(got)
		if err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		r := back.(*RingLookup)
		if r.Addr != m.Addr || r.From != m.From {
			t.Fatalf("round trip mismatch: %+v != %+v", r, m)
		}
	})
}

// FuzzRingReplyWire proves the ring reply (found-guarded descriptor +
// error string, the RegionInfo shape) matches the documented layout and
// round-trips.
func FuzzRingReplyWire(f *testing.F) {
	f.Add(true, uint64(0x40000000), uint64(1)<<20, uint64(7), uint32(4096), uint32(2), true, "")
	f.Add(false, uint64(0), uint64(0), uint64(0), uint32(0), uint32(0), false, "not in table")
	f.Fuzz(func(t *testing.T, found bool, startLo, size, epoch uint64,
		pageSize, home uint32, allocated bool, errStr string) {
		m := &RingReply{Found: found, Err: errStr}
		if found {
			m.Desc = fuzzDescriptor(startLo, size, epoch, pageSize, home, allocated)
		}
		got := Marshal(m)

		want := legacyAppendU16(nil, uint16(KindRingReply))
		want = legacyAppendBool(want, found)
		if found {
			want = legacyAppendDescriptor(want, m.Desc)
		}
		want = legacyAppendString(want, errStr)
		if !bytes.Equal(got, want) {
			t.Fatalf("ring reply diverged from documented layout:\n got %x\nwant %x", got, want)
		}

		back, err := Unmarshal(got)
		if err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		r := back.(*RingReply)
		if r.Found != found || r.Err != errStr {
			t.Fatalf("header round trip mismatch: %+v", r)
		}
		if found && !descriptorsEqual(r.Desc, m.Desc) {
			t.Fatalf("descriptor did not round trip:\n got %+v\nwant %+v", r.Desc, m.Desc)
		}

		// Truncations must fail cleanly.
		for cut := 2; cut < len(got); cut++ {
			if _, err := Unmarshal(got[:cut]); err == nil {
				t.Fatalf("cut=%d should fail", cut)
			}
		}
	})
}

// FuzzRingAnnounceWire proves the announce (op, nil-guarded descriptor,
// start, origin) matches the documented layout and round-trips for both
// put and withdraw shapes.
func FuzzRingAnnounceWire(f *testing.F) {
	f.Add(true, uint64(0x40000000), uint64(1)<<20, uint64(3), uint32(8192), uint32(1), true)
	f.Add(false, uint64(0x80000000), uint64(0), uint64(0), uint32(0), uint32(5), false)
	f.Fuzz(func(t *testing.T, put bool, startLo, size, epoch uint64,
		pageSize, from uint32, allocated bool) {
		m := &RingAnnounce{From: ktypes.NodeID(from)}
		if put {
			m.Op = RingOpPut
			m.Desc = fuzzDescriptor(startLo, size, epoch, pageSize, from+1, allocated)
			m.Start = m.Desc.Range.Start
		} else {
			m.Op = RingOpWithdraw
			m.Start = gaddr.Addr{Hi: 1, Lo: startLo}
		}
		got := Marshal(m)

		want := legacyAppendU16(nil, uint16(KindRingAnnounce))
		want = append(want, m.Op)
		want = legacyAppendBool(want, m.Desc != nil)
		if m.Desc != nil {
			want = legacyAppendDescriptor(want, m.Desc)
		}
		want = legacyAppendAddr(want, m.Start)
		want = legacyAppendU32(want, from)
		if !bytes.Equal(got, want) {
			t.Fatalf("ring announce diverged from documented layout:\n got %x\nwant %x", got, want)
		}

		back, err := Unmarshal(got)
		if err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		r := back.(*RingAnnounce)
		if r.Op != m.Op || r.Start != m.Start || r.From != m.From {
			t.Fatalf("header round trip mismatch: %+v", r)
		}
		if put {
			if r.Desc == nil || !descriptorsEqual(r.Desc, m.Desc) {
				t.Fatalf("descriptor did not round trip")
			}
		} else if r.Desc != nil {
			t.Fatalf("withdraw grew a descriptor")
		}
	})
}
