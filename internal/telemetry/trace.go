package telemetry

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTraceCapacity bounds a node's span ring buffer.
const DefaultTraceCapacity = 512

// TraceID identifies one causal request tree across nodes.
type TraceID uint64

// String renders the ID the way khazctl and /traces print it.
func (t TraceID) String() string { return fmt.Sprintf("%016x", uint64(t)) }

// SpanID identifies one operation within a trace.
type SpanID uint64

// String renders the ID in the compact span form.
func (s SpanID) String() string { return fmt.Sprintf("%08x", uint64(s)) }

// SpanContext is the compact trace context carried in the wire envelope:
// the trace and the sender's span (the receiver's parent).
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

type ctxKey struct{}

// ContextWith returns ctx carrying sc.
func ContextWith(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext extracts the span context, reporting whether one is set.
func FromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(ctxKey{}).(SpanContext)
	return sc, ok
}

// idCtr feeds the ID generator; seeded once so concurrent daemons in one
// test process do not collide.
var idCtr atomic.Uint64

func init() {
	var seed [8]byte
	if _, err := crand.Read(seed[:]); err == nil {
		idCtr.Store(binary.LittleEndian.Uint64(seed[:]))
	} else {
		idCtr.Store(uint64(time.Now().UnixNano()))
	}
}

// newID returns a well-mixed process-unique 64-bit ID (splitmix64 over an
// atomic counter).
func newID() uint64 {
	z := idCtr.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// NewTraceID mints a trace identity.
func NewTraceID() TraceID { return TraceID(newID()) }

// NewSpanID mints a span identity.
func NewSpanID() SpanID { return SpanID(newID()) }

// SpanRecord is one finished span in a node's ring buffer.
type SpanRecord struct {
	Trace    TraceID       `json:"trace"`
	Span     SpanID        `json:"span"`
	Parent   SpanID        `json:"parent,omitempty"`
	Node     uint32        `json:"node"`
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
}

// Recorder is a bounded ring buffer of finished spans. Recording under a
// mutex is fine: spans wrap RPC-bound operations, never the cached read
// path.
type Recorder struct {
	mu   sync.Mutex
	buf  []SpanRecord
	next int
	n    int
}

// NewRecorder creates a recorder keeping the last capacity spans.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Recorder{buf: make([]SpanRecord, capacity)}
}

// Record appends one span, evicting the oldest when full.
func (r *Recorder) Record(s SpanRecord) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = s
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Len returns the number of retained spans.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Spans copies the retained spans, oldest first.
func (r *Recorder) Spans() []SpanRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanRecord, 0, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// Flight is an in-progress span; its zero value is a no-op. Finish records
// the span into the recorder it was started against.
type Flight struct {
	rec    *Recorder
	trace  TraceID
	span   SpanID
	parent SpanID
	node   uint32
	name   string
	start  time.Time
}

// StartSpan begins a span as a child of any span context already in ctx
// (a new root trace otherwise) and returns ctx carrying the new span's
// context. With a nil recorder it returns ctx unchanged and a no-op
// Flight, so disabled telemetry costs one branch and no allocation.
func StartSpan(ctx context.Context, rec *Recorder, node uint32, name string) (context.Context, Flight) {
	if rec == nil {
		return ctx, Flight{}
	}
	f := Flight{rec: rec, node: node, name: name, start: time.Now(), span: NewSpanID()}
	if sc, ok := FromContext(ctx); ok {
		f.trace, f.parent = sc.Trace, sc.Span
	} else {
		f.trace = NewTraceID()
	}
	return ContextWith(ctx, SpanContext{Trace: f.trace, Span: f.span}), f
}

// ContinueSpan is StartSpan restricted to requests that already carry a
// trace: handlers use it so untraced background traffic does not mint new
// root traces.
func ContinueSpan(ctx context.Context, rec *Recorder, node uint32, name string) (context.Context, Flight) {
	if rec == nil {
		return ctx, Flight{}
	}
	if _, ok := FromContext(ctx); !ok {
		return ctx, Flight{}
	}
	return StartSpan(ctx, rec, node, name)
}

// Context returns the flight's span context (zero for a no-op flight).
func (f Flight) Context() SpanContext {
	return SpanContext{Trace: f.trace, Span: f.span}
}

// Finish records the span. Safe on the zero Flight.
func (f Flight) Finish() {
	if f.rec == nil {
		return
	}
	f.rec.Record(SpanRecord{
		Trace:    f.trace,
		Span:     f.span,
		Parent:   f.parent,
		Node:     f.node,
		Name:     f.name,
		Start:    f.start,
		Duration: time.Since(f.start),
	})
}
