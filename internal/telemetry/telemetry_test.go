package telemetry

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := New()
	c := r.Counter("c")
	c.Add(2)
	c.Add(3)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Fatal("same name must resolve to the same counter")
	}

	g := r.Gauge("g")
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}

	h := r.Histogram("h")
	h.Observe(0)
	h.Observe(1)
	h.Observe(1023)
	h.Observe(1 << 50) // overflow bucket
	if h.Count() != 4 {
		t.Fatalf("hist count = %d, want 4", h.Count())
	}
	if h.Sum() != 0+1+1023+(1<<50) {
		t.Fatalf("hist sum = %d", h.Sum())
	}
}

func TestBucketIndexBounds(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {1023, 10}, {1024, 11},
		{^uint64(0), HistBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
		if idx := bucketIndex(c.v); idx < HistBuckets-1 && c.v >= BucketBound(idx) {
			t.Errorf("value %d not below its bucket bound", c.v)
		}
	}
}

func TestNopRegistryIsSafe(t *testing.T) {
	r := Nop()
	r.Counter("x").Add(1)
	r.Gauge("y").Set(3)
	r.Histogram("z").Observe(9)
	r.Histogram("z").ObserveSince(time.Now())
	if r.Counter("x").Load() != 0 || r.Gauge("y").Load() != 0 || r.Histogram("z").Count() != 0 {
		t.Fatal("nop instruments must read zero")
	}
	if s := r.Snapshot(); len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nop snapshot must be empty")
	}
	if r.Tracer() != nil {
		t.Fatal("nop registry must have a nil tracer")
	}
	ctx, fl := StartSpan(context.Background(), r.Tracer(), 1, "op")
	fl.Finish() // must not panic
	if _, ok := FromContext(ctx); ok {
		t.Fatal("nop StartSpan must not install a span context")
	}
}

func TestSnapshotSortedAndTrimmed(t *testing.T) {
	r := New()
	r.Counter("b").Add(1)
	r.Counter("a").Add(2)
	r.Histogram("h").Observe(5) // bucket 3
	s := r.Snapshot()
	if len(s.Counters) != 2 || s.Counters[0].Name != "a" || s.Counters[1].Name != "b" {
		t.Fatalf("counters not sorted: %+v", s.Counters)
	}
	if len(s.Histograms) != 1 || len(s.Histograms[0].Buckets) != 4 {
		t.Fatalf("histogram buckets not trimmed: %+v", s.Histograms)
	}
	if s.Histograms[0].Mean() != 5 {
		t.Fatalf("mean = %v, want 5", s.Histograms[0].Mean())
	}
}

func TestRecorderRingWraps(t *testing.T) {
	rec := NewRecorder(3)
	for i := 1; i <= 5; i++ {
		rec.Record(SpanRecord{Span: SpanID(i)})
	}
	if rec.Len() != 3 {
		t.Fatalf("len = %d, want 3", rec.Len())
	}
	spans := rec.Spans()
	if len(spans) != 3 || spans[0].Span != 3 || spans[2].Span != 5 {
		t.Fatalf("ring kept wrong spans: %+v", spans)
	}
}

func TestSpanParenting(t *testing.T) {
	rec := NewRecorder(8)
	ctx, root := StartSpan(context.Background(), rec, 1, "root")
	sc, ok := FromContext(ctx)
	if !ok || sc.Trace == 0 || sc.Span == 0 {
		t.Fatalf("root context missing: %+v", sc)
	}
	_, child := ContinueSpan(ctx, rec, 2, "child")
	child.Finish()
	root.Finish()

	// Untraced contexts must not start continuation spans.
	_, none := ContinueSpan(context.Background(), rec, 2, "orphan")
	none.Finish()

	spans := rec.Spans()
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	if spans[0].Name != "child" || spans[1].Name != "root" {
		t.Fatalf("order wrong: %+v", spans)
	}
	if spans[0].Trace != spans[1].Trace {
		t.Fatal("child must share the root trace")
	}
	if spans[0].Parent != spans[1].Span {
		t.Fatal("child's parent must be the root span")
	}
	if spans[1].Parent != 0 {
		t.Fatal("root must have no parent")
	}
}

func TestIDsUnique(t *testing.T) {
	seen := make(map[TraceID]bool)
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if id == 0 || seen[id] {
			t.Fatalf("duplicate or zero trace ID %v", id)
		}
		seen[id] = true
	}
}

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("core.lookups").Add(3)
	r.Gauge("store.mem_pages").Set(12)
	r.Histogram("core.lock_latency_ns").Observe(900)
	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE khazana_core_lookups counter",
		"khazana_core_lookups 3",
		"khazana_store_mem_pages 12",
		"khazana_core_lock_latency_ns_count 1",
		"khazana_core_lock_latency_ns_sum 900",
		`khazana_core_lock_latency_ns_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}
