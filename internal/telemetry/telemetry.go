// Package telemetry is Khazana's observability layer: a lock-free metrics
// registry (counters, gauges, fixed-bucket histograms) plus a causal RPC
// trace recorder. The paper's evaluation depends on seeing each layer of
// the distributed data path (lookup fan-out §3.1–3.2, lock and consistency
// traffic §3.3, release retries §3.5); this package is the substrate every
// layer reports into.
//
// The package is deliberately a leaf: standard library only, imported by
// wire, transport, core, and consistency alike.
//
// Instruments are nil-safe. telemetry.Nop() returns a nil *Registry whose
// instrument getters return nil instruments; recording on a nil instrument
// is a single predictable branch. The cached zero-copy read path carries
// exactly one plain counter increment batched under a mutex it already
// holds (even an uncontended atomic add is ~8% of that path), so telemetry
// keeps it at zero allocations and within noise of the uninstrumented
// build (experiment E15 gates this).
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// HistBuckets is the fixed bucket count of every histogram: bucket i holds
// observations v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i), giving
// power-of-two resolution from 1 unit to ~9 minutes of nanoseconds before
// the final bucket absorbs the overflow.
const HistBuckets = 40

// Counter is a monotonically increasing metric. The zero of a disabled
// registry is a nil *Counter, on which Add and Load are no-ops.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Load returns the current value.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can move both ways (resident pages, queue
// depths). Nil-safe like Counter.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Load returns the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket power-of-two histogram. Latencies are
// observed in nanoseconds; size-like metrics (batch page counts) use the
// same buckets unitless. Observation is two atomic adds and one atomic
// increment — no locks, no allocation.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [HistBuckets]atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
}

// ObserveSince records the elapsed nanoseconds since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	d := time.Since(start)
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// bucketIndex maps a value to its bucket: the position of its highest set
// bit, clamped into the fixed bucket array.
func bucketIndex(v uint64) int {
	i := 0
	for v != 0 {
		v >>= 1
		i++
	}
	if i >= HistBuckets {
		return HistBuckets - 1
	}
	return i
}

// BucketBound returns the exclusive upper bound of bucket i (every value
// in bucket i is < 2^i). The last bucket is unbounded.
func BucketBound(i int) uint64 {
	if i >= HistBuckets-1 {
		return ^uint64(0)
	}
	return 1 << uint(i)
}

// Registry holds a node's named instruments and its trace recorder.
// Instrument resolution (Counter, Gauge, Histogram) takes a mutex and is
// meant for startup; the instruments themselves are lock-free.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	rec      *Recorder
}

// New creates a registry with a trace recorder of the default capacity.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		rec:      NewRecorder(DefaultTraceCapacity),
	}
}

// Nop returns the disabled registry: nil, whose instrument getters return
// nil instruments that record nothing.
func Nop() *Registry { return nil }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = new(Histogram)
		r.hists[name] = h
	}
	return h
}

// Tracer returns the registry's span recorder (nil when disabled).
func (r *Registry) Tracer() *Recorder {
	if r == nil {
		return nil
	}
	return r.rec
}

// CounterStat is one counter in a snapshot.
type CounterStat struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeStat is one gauge in a snapshot.
type GaugeStat struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramStat is one histogram in a snapshot. Buckets is trimmed after
// the last non-empty bucket; bucket i's bound is BucketBound(i).
type HistogramStat struct {
	Name    string   `json:"name"`
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Buckets []uint64 `json:"buckets"`
}

// Mean returns the average observed value, 0 when empty.
func (h HistogramStat) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Snapshot is a point-in-time copy of every instrument, sorted by name.
type Snapshot struct {
	Counters   []CounterStat   `json:"counters"`
	Gauges     []GaugeStat     `json:"gauges"`
	Histograms []HistogramStat `json:"histograms"`
}

// Snapshot copies every instrument's current state. Values are read with
// atomic loads; the snapshot as a whole is not a consistent cut, which is
// fine for monitoring.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterStat{Name: name, Value: c.Load()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeStat{Name: name, Value: g.Load()})
	}
	for name, h := range r.hists {
		hs := HistogramStat{Name: name, Count: h.count.Load(), Sum: h.sum.Load()}
		last := -1
		var buckets [HistBuckets]uint64
		for i := range h.buckets {
			buckets[i] = h.buckets[i].Load()
			if buckets[i] != 0 {
				last = i
			}
		}
		if last >= 0 {
			hs.Buckets = append([]uint64(nil), buckets[:last+1]...)
		}
		s.Histograms = append(s.Histograms, hs)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}
