package telemetry

// Metric names. Every instrument in the tree resolves its name from this
// block — the khazlint telemetryname analyzer rejects inline literals — so
// this file is the complete, greppable catalog of what a node exports.
//
// Conventions: names are dotted "<layer>.<metric>"; latency histograms
// carry a _ns suffix and observe nanoseconds; size histograms (batch page
// counts) are unitless.
const (
	// MetricLookups counts region-descriptor lookups (§3.2 three-stage
	// location path).
	MetricLookups = "core.lookups"
	// MetricLookupDirHits counts lookups satisfied by the local directory.
	MetricLookupDirHits = "core.lookup_dir_hits"
	// MetricLookupClusterHits counts lookups satisfied by a cluster
	// manager hint.
	MetricLookupClusterHits = "core.lookup_cluster_hits"
	// MetricLookupTreeWalks counts lookups that fell through to the
	// address-map tree walk.
	MetricLookupTreeWalks = "core.lookup_tree_walks"
	// MetricLocksGranted counts granted lock requests.
	MetricLocksGranted = "core.locks_granted"
	// MetricReleaseRetries counts background release retries (§3.5).
	MetricReleaseRetries = "core.release_retries"
	// MetricPromotions counts emergency home promotions after an
	// unreachable home.
	MetricPromotions = "core.promotions"
	// MetricReadViews counts zero-copy cached read views served. This is
	// the only instrument on the cached-read hot path.
	MetricReadViews = "core.read_views"
	// MetricLockLatency observes end-to-end Lock latency in nanoseconds.
	MetricLockLatency = "core.lock_latency_ns"
	// MetricReleaseLatency observes end-to-end Unlock latency in
	// nanoseconds.
	MetricReleaseLatency = "core.release_latency_ns"
	// MetricLockBatchPages observes pages per lock acquisition (batch
	// size distribution of the multi-page pipeline).
	MetricLockBatchPages = "core.lock_batch_pages"

	// MetricPingRTT observes peer round-trip times in nanoseconds — the
	// tracer's baseline network signal.
	MetricPingRTT = "net.ping_rtt_ns"

	// MetricTransportConnsOpen gauges connections currently open on this
	// transport, dialed and accepted alike. Under the mux protocol it
	// stays near connsPerPeer x peers no matter how many requests are in
	// flight; a ballooning value means serial clients are attached.
	MetricTransportConnsOpen = "transport.conns_open"
	// MetricTransportInflight gauges requests currently in flight
	// through this transport: outbound requests awaiting a response plus
	// inbound requests inside the handler.
	MetricTransportInflight = "transport.inflight_requests"
	// MetricTransportBytesIn counts frame bytes received, length
	// prefixes included.
	MetricTransportBytesIn = "transport.bytes_in"
	// MetricTransportBytesOut counts frame bytes sent, length prefixes
	// included.
	MetricTransportBytesOut = "transport.bytes_out"

	// MetricMemPages gauges resident RAM-tier pages.
	MetricMemPages = "store.mem_pages"
	// MetricDiskPages gauges resident disk-tier pages.
	MetricDiskPages = "store.disk_pages"
	// MetricMemMisses counts page reads that missed the RAM tier and fell
	// through to disk.
	MetricMemMisses = "store.mem_misses"

	// MetricEventualPushFailures counts eventual-protocol update pushes
	// that failed to reach a replica site.
	MetricEventualPushFailures = "consistency.eventual_push_failures"
	// MetricEventualApplyFailures counts parked eventual updates that
	// failed to apply at release.
	MetricEventualApplyFailures = "consistency.eventual_apply_failures"
	// MetricCrewInvalidateFailures counts CREW invalidations that failed
	// and pruned the sharer from the copyset.
	MetricCrewInvalidateFailures = "consistency.crew_invalidate_failures"
	// MetricPrefetchSpecPages observes speculative read-ahead pages
	// piggybacked per grant reply (home side; unitless size histogram).
	MetricPrefetchSpecPages = "consistency.prefetch_spec_pages"
	// MetricPrefetchHits counts demand reads satisfied by a previously
	// speculated page without an RPC.
	MetricPrefetchHits = "consistency.prefetch_hits"
	// MetricPrefetchWaste counts speculated pages that were re-requested
	// on demand (the prefetch was lost or invalidated before use).
	MetricPrefetchWaste = "consistency.prefetch_waste"
	// MetricUpdateBatchPages observes pages per batched replication
	// write-through RPC (unitless size histogram).
	MetricUpdateBatchPages = "consistency.update_batch_pages"

	// MetricSnapshotReads counts zero-copy page views served to snapshot
	// contexts (the lock-free read path).
	MetricSnapshotReads = "core.snapshot_reads"
	// MetricSnapshotChainLen observes the per-page version-chain length
	// at publish time (home side; unitless size histogram).
	MetricSnapshotChainLen = "consistency.snapshot_version_chain_len"
	// MetricSnapshotReclaimed counts retired old-version frames given
	// back by version chains (on publish and under memory pressure).
	MetricSnapshotReclaimed = "consistency.snapshot_reclaimed_frames"

	// MetricHomePromotions counts ad-hoc §3.5 home promotions this node
	// performed or requested after finding a primary unreachable (the
	// legacy walk-the-home-list path; election-won failovers count under
	// replog.failovers instead).
	MetricHomePromotions = "core.home_promotions"
	// MetricReplicaRepairs counts pages re-pushed by the background
	// minimum-replica maintainer to restore a region's replica count.
	MetricReplicaRepairs = "core.replica_repairs"

	// MetricReplLogLen gauges entries currently retained across all
	// region logs this node leads or follows (post-compaction tail).
	MetricReplLogLen = "replog.log_len"
	// MetricReplCommitLatency observes leader-side commit latency per
	// append — from entry creation to quorum ack — in nanoseconds.
	MetricReplCommitLatency = "replog.commit_latency_ns"
	// MetricReplElections counts leader elections this node started.
	MetricReplElections = "replog.elections"
	// MetricReplFailovers counts elections this node won, each one a
	// completed home failover resumed from the replicated log.
	MetricReplFailovers = "replog.failovers"
	// MetricReplDegradedCommits counts appends committed without a
	// quorum after the ack timeout (availability-over-durability mode).
	MetricReplDegradedCommits = "replog.degraded_commits"

	// MetricLookupStageDir observes the latency of lookups resolved by
	// the region-directory cache (stage 1), in nanoseconds.
	MetricLookupStageDir = "core.lookup_stage_dir_ns"
	// MetricLookupStageRing observes the latency of cold lookups resolved
	// by the consistent-hashing ring in one RPC hop (stage 2), in
	// nanoseconds.
	MetricLookupStageRing = "core.lookup_stage_ring_ns"
	// MetricLookupStageCluster observes the latency of cold lookups that
	// fell back to the cluster manager hint path, in nanoseconds.
	MetricLookupStageCluster = "core.lookup_stage_cluster_ns"
	// MetricLookupStageWalk observes the latency of cold lookups that
	// fell all the way back to the §3.1 address-map tree walk, in
	// nanoseconds.
	MetricLookupStageWalk = "core.lookup_stage_walk_ns"

	// MetricRingLookups counts cold lookups resolved through the
	// consistent-hashing descriptor partition (one-hop RingLookup hits,
	// local ring-table hits included).
	MetricRingLookups = "ring.lookups"
	// MetricRingRebalanceMoves counts homed descriptors whose ring owner
	// set changed on a membership change and were re-announced (only
	// moved partitions re-announce; everything else stays put).
	MetricRingRebalanceMoves = "ring.rebalance_moves"
	// MetricRingFallbackWalks counts cold lookups the ring failed to
	// resolve — owners unreachable or their tables missing the region —
	// that fell into the legacy cluster/tree-walk path. Steady state is
	// zero; a nonzero rate means the ring disagrees with reality
	// (mid-churn, lost announce) and is being repaired.
	MetricRingFallbackWalks = "ring.fallback_walks"
)
