package telemetry

import (
	"fmt"
	"io"
	"strings"
)

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4). Dotted metric names become underscore-separated;
// histograms emit cumulative _bucket series with power-of-two le bounds
// plus _sum and _count. Khazana has no Prometheus dependency — the format
// is simple enough to emit by hand for the debug listener.
func WritePrometheus(w io.Writer, s Snapshot) error {
	for _, c := range s.Counters {
		name := promName(c.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		name := promName(g.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		name := promName(h.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		cum := uint64(0)
		for i, b := range h.Buckets {
			cum += b
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, BucketBound(i), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			name, h.Count, name, h.Sum, name, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// promName maps a dotted Khazana metric name onto the Prometheus
// identifier alphabet.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + len("khazana_"))
	b.WriteString("khazana_")
	for i := 0; i < len(name); i++ {
		ch := name[i]
		switch {
		case ch >= 'a' && ch <= 'z', ch >= 'A' && ch <= 'Z', ch >= '0' && ch <= '9':
			b.WriteByte(ch)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
