// Package consistency implements Khazana's consistency management
// framework (paper §3.3): program modules called Consistency Managers
// (CMs) run at each replica site and cooperate to implement the required
// level of consistency among replicas. A Khazana node treats lock requests
// as indications of intent to access in the specified mode and obtains the
// local CM's permission before granting them; the CM checks for conflicts
// with ongoing operations and, if necessary, delays granting locks until
// the conflict is resolved.
//
// Three protocols ship, matching the paper: CREW (Concurrent Read
// Exclusive Write, the prototype's only model, §5), release consistency
// (used for the address map tree nodes), and an eventual protocol for
// clients that tolerate temporarily out-of-date data. New protocols are
// plugged in by registering them (§5).
package consistency

import (
	"context"
	"sync"

	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
)

// LockTable provides per-page local lock accounting with blocking
// acquisition. Conflict rules:
//
//   - LockRead conflicts with an exclusive writer.
//   - LockWrite is exclusive: conflicts with readers, shared writers, and
//     other writers.
//   - LockWriteShared conflicts only with an exclusive writer (it coexists
//     with readers and other shared writers; the region's protocol is
//     responsible for merging).
type LockTable struct {
	mu    sync.Mutex
	pages map[gaddr.Addr]*pageLock
}

type pageLock struct {
	readers       int
	sharedWriters int
	exclusive     bool
	gate          chan struct{}
}

// NewLockTable creates an empty lock table.
func NewLockTable() *LockTable {
	return &LockTable{pages: make(map[gaddr.Addr]*pageLock)}
}

// Acquire blocks until the page can be locked in the given mode or the
// context is done.
func (lt *LockTable) Acquire(ctx context.Context, page gaddr.Addr, mode ktypes.LockMode) error {
	for {
		lt.mu.Lock()
		pl, ok := lt.pages[page]
		if !ok {
			pl = &pageLock{gate: make(chan struct{})}
			lt.pages[page] = pl
		}
		if pl.admit(mode) {
			lt.mu.Unlock()
			return nil
		}
		gate := pl.gate
		lt.mu.Unlock()
		select {
		case <-gate:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// TryAcquire attempts a non-blocking lock, reporting success.
func (lt *LockTable) TryAcquire(page gaddr.Addr, mode ktypes.LockMode) bool {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	pl, ok := lt.pages[page]
	if !ok {
		pl = &pageLock{gate: make(chan struct{})}
		lt.pages[page] = pl
	}
	return pl.admit(mode)
}

// admit grants the mode if compatible with current holders. Caller holds
// the table mutex.
func (pl *pageLock) admit(mode ktypes.LockMode) bool {
	switch mode {
	case ktypes.LockRead:
		if pl.exclusive {
			return false
		}
		pl.readers++
		return true
	case ktypes.LockWrite:
		if pl.exclusive || pl.readers > 0 || pl.sharedWriters > 0 {
			return false
		}
		pl.exclusive = true
		return true
	case ktypes.LockWriteShared:
		if pl.exclusive {
			return false
		}
		pl.sharedWriters++
		return true
	default:
		return false
	}
}

// Release drops a lock previously acquired in mode. Releasing an unheld
// lock panics: it is a programming error in the daemon, not a runtime
// condition.
func (lt *LockTable) Release(page gaddr.Addr, mode ktypes.LockMode) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	pl, ok := lt.pages[page]
	if !ok {
		panic("consistency: release of unlocked page " + page.String())
	}
	switch mode {
	case ktypes.LockRead:
		if pl.readers == 0 {
			panic("consistency: release of unheld read lock")
		}
		pl.readers--
	case ktypes.LockWrite:
		if !pl.exclusive {
			panic("consistency: release of unheld write lock")
		}
		pl.exclusive = false
	case ktypes.LockWriteShared:
		if pl.sharedWriters == 0 {
			panic("consistency: release of unheld write-shared lock")
		}
		pl.sharedWriters--
	default:
		panic("consistency: release with invalid mode")
	}
	// Wake waiters and reset the gate.
	close(pl.gate)
	pl.gate = make(chan struct{})
	if pl.readers == 0 && pl.sharedWriters == 0 && !pl.exclusive {
		delete(lt.pages, page)
	}
}

// TryRelease drops a lock if it is held, reporting whether it was. It is
// used on paths where a release may legitimately arrive at a node that
// never granted the lock — e.g. a retried release reaching a freshly
// promoted home after failover (§3.5).
func (lt *LockTable) TryRelease(page gaddr.Addr, mode ktypes.LockMode) bool {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	pl, ok := lt.pages[page]
	if !ok {
		return false
	}
	switch mode {
	case ktypes.LockRead:
		if pl.readers == 0 {
			return false
		}
		pl.readers--
	case ktypes.LockWrite:
		if !pl.exclusive {
			return false
		}
		pl.exclusive = false
	case ktypes.LockWriteShared:
		if pl.sharedWriters == 0 {
			return false
		}
		pl.sharedWriters--
	default:
		return false
	}
	close(pl.gate)
	pl.gate = make(chan struct{})
	if pl.readers == 0 && pl.sharedWriters == 0 && !pl.exclusive {
		delete(lt.pages, page)
	}
	return true
}

// WriteLocked reports whether any write-intent lock (exclusive or shared)
// is currently held on the page.
func (lt *LockTable) WriteLocked(page gaddr.Addr) bool {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	pl, ok := lt.pages[page]
	return ok && (pl.exclusive || pl.sharedWriters > 0)
}

// Readers returns the number of read locks currently held on the page.
// Snapshot reads never appear here — they bypass the lock table entirely
// — which tests use to prove the snapshot path is lock-free.
func (lt *LockTable) Readers(page gaddr.Addr) int {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	pl, ok := lt.pages[page]
	if !ok {
		return 0
	}
	return pl.readers
}

// Held reports whether any lock is currently held on the page.
func (lt *LockTable) Held(page gaddr.Addr) bool {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	_, ok := lt.pages[page]
	return ok
}

// Len returns the number of pages with active locks.
func (lt *LockTable) Len() int {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	return len(lt.pages)
}
