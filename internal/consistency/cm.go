package consistency

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"khazana/internal/frame"
	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
	"khazana/internal/pagedir"
	"khazana/internal/region"
	"khazana/internal/replog"
	"khazana/internal/telemetry"
	"khazana/internal/wire"
)

// Host is the node-side environment a consistency manager runs in: access
// to the local daemon's storage, page directory, lock table, and peers.
// The daemon implements Host; tests provide a lightweight harness.
type Host interface {
	// Self returns the local node's ID.
	Self() ktypes.NodeID
	// Request performs an RPC to a peer daemon.
	Request(ctx context.Context, to ktypes.NodeID, m wire.Msg) (wire.Msg, error)
	// LoadPage returns the local copy of a page, if resident. The caller
	// owns the returned frame (one reference) and must Release it; the
	// frame is shared, so its contents are immutable.
	LoadPage(page gaddr.Addr) (*frame.Frame, bool)
	// StorePage replaces the local copy of a page. The frame is
	// borrowed: the host takes its own reference.
	StorePage(page gaddr.Addr, f *frame.Frame) error
	// DropPage discards the local copy of a page. A copy pinned by an
	// active lock context may survive locally (the holder keeps its
	// grant-time snapshot); callers mark the page invalid in the
	// directory so the next acquire refetches.
	DropPage(page gaddr.Addr)
	// StorePageSpeculative installs a read-ahead copy of a page on an
	// evict-first basis: the copy may be reclaimed before any demand page
	// and is dropped outright (false) when keeping it would cost a
	// demand page its cache slot. The frame is borrowed, as in StorePage.
	StorePageSpeculative(page gaddr.Addr, f *frame.Frame) bool
	// ReadAhead returns the node's read-ahead planner, or nil when
	// speculative grant pipelining is disabled.
	ReadAhead() ReadAheadPlanner
	// PerPageReplication disables the batched replication write-through,
	// issuing one RPC per page per replica instead (benchmark baseline).
	PerPageReplication() bool
	// Dir returns the node's page directory.
	Dir() *pagedir.Dir
	// Locks returns the node's local lock table.
	Locks() *LockTable
	// Clock returns a monotonic-enough timestamp for last-writer-wins
	// ordering in the eventual protocol.
	Clock() int64
	// Telemetry returns the node's metrics registry; nil disables
	// instrumentation (instruments resolved from nil are no-ops).
	Telemetry() *telemetry.Registry
	// Repl returns the node's replicated region-metadata log, or nil
	// when log replication is disabled. The concrete pointer type (not
	// an interface) keeps a nil *replog.Log comparable to nil here —
	// see the ReadAhead note on the host adapter.
	Repl() *replog.Log
}

// ReadAheadPlanner predicts the pages a requester will lock next, from the
// stream of demand batches the home has served it. The home consults Plan
// on read-mode grant batches, filters out pages it cannot speculate on
// (e.g. write-locked ones), and reports what actually shipped via Granted
// so the planner's hit/waste accounting tracks real speculation only.
// Implementations must be safe for concurrent use.
type ReadAheadPlanner interface {
	// Plan observes a demand batch and returns candidate pages to
	// speculate on, all within desc's range.
	Plan(desc *region.Descriptor, requester ktypes.NodeID, pages []gaddr.Addr) []gaddr.Addr
	// Granted records the candidate pages that were actually piggybacked
	// onto the reply.
	Granted(regionStart gaddr.Addr, requester ktypes.NodeID, pages []gaddr.Addr)
}

// CM is a consistency manager: the per-protocol module that mediates lock
// grants and replica updates for the regions using it.
type CM interface {
	// Protocol names the protocol this CM implements.
	Protocol() region.Protocol
	// Acquire obtains lock credentials and a valid-enough local copy of
	// page, per the protocol's semantics. On success the local lock is
	// held and must be released with Release.
	Acquire(ctx context.Context, desc *region.Descriptor, page gaddr.Addr, mode ktypes.LockMode) error
	// Release drops the lock; dirty reports local modifications made
	// under a write-mode lock.
	Release(ctx context.Context, desc *region.Descriptor, page gaddr.Addr, mode ktypes.LockMode, dirty bool) error
	// AcquireBatch obtains lock credentials for a set of pages (sorted
	// ascending, all within desc) in one pipelined exchange where the
	// protocol supports it. It returns the pages actually acquired: on
	// success that is all of pages; on error it is the already-held
	// subset, which the caller must release to roll back. Protocols
	// without a native batch path fall back to per-page Acquire calls.
	AcquireBatch(ctx context.Context, desc *region.Descriptor, pages []gaddr.Addr, mode ktypes.LockMode) ([]gaddr.Addr, error)
	// ReleaseBatch drops the locks on a set of pages; dirty marks the
	// pages whose local copies were modified under a write-mode lock.
	// It returns nil when every release succeeded, else a slice aligned
	// with pages holding the per-page error (nil entries succeeded), so
	// the caller can queue background retries for just the failures.
	ReleaseBatch(ctx context.Context, desc *region.Descriptor, pages []gaddr.Addr, mode ktypes.LockMode, dirty map[gaddr.Addr]bool) []error
	// Handle processes protocol traffic arriving from a peer CM.
	Handle(ctx context.Context, desc *region.Descriptor, from ktypes.NodeID, m wire.Msg) (wire.Msg, error)
	// SnapshotRead returns committed copies of the given pages (sorted
	// ascending, all within desc) without taking locks: readers never
	// wait on or invalidate a writer's hold. epoch pins a consistent cut
	// for multi-request snapshots; epoch 0 lets the serving node choose
	// its current cut, returned for the caller to pin. The caller owns
	// every returned frame and must Release each.
	SnapshotRead(ctx context.Context, desc *region.Descriptor, pages []gaddr.Addr, epoch uint64) ([]SnapPage, uint64, error)
}

// SnapPage is one page of a snapshot read: an immutable committed copy
// and the page version it was committed at. The frame is owned by the
// caller of SnapshotRead.
type SnapPage struct {
	Page    gaddr.Addr
	Frame   *frame.Frame
	Version uint64
}

// Errors shared by protocol implementations.
var (
	// ErrNotHome reports protocol traffic sent to a node that is not the
	// region's home; the sender's descriptor was stale.
	ErrNotHome = errors.New("consistency: not the home node for this page")
	// ErrConflict reports a lock conflict that could not be resolved in
	// time; the client may retry.
	ErrConflict = errors.New("consistency: lock conflict")
	// ErrUnknownMsg reports CM traffic no protocol handler claims.
	ErrUnknownMsg = errors.New("consistency: unhandled message")
)

// Registry maps protocols to CM constructors. The paper emphasizes that
// "plugging in new protocols or consistency managers is only a matter of
// registering them" (§5).
type Registry struct {
	mu    sync.Mutex
	ctors map[region.Protocol]func(Host) CM
}

// NewRegistry returns a registry preloaded with the built-in protocols.
func NewRegistry() *Registry {
	r := &Registry{ctors: make(map[region.Protocol]func(Host) CM)}
	r.Register(region.CREW, func(h Host) CM { return NewCREW(h) })
	r.Register(region.Release, func(h Host) CM { return NewRelease(h) })
	r.Register(region.Eventual, func(h Host) CM { return NewEventual(h) })
	return r
}

// Register installs a constructor for a protocol, replacing any previous
// registration.
func (r *Registry) Register(p region.Protocol, ctor func(Host) CM) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ctors[p] = ctor
}

// Build instantiates one CM per registered protocol for the given host.
func (r *Registry) Build(h Host) map[region.Protocol]CM {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[region.Protocol]CM, len(r.ctors))
	for p, ctor := range r.ctors {
		out[p] = ctor(h)
	}
	return out
}

// Protocols lists registered protocols in stable order.
func (r *Registry) Protocols() []region.Protocol {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]region.Protocol, 0, len(r.ctors))
	for p := range r.ctors {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// acquireSeq is the default AcquireBatch adapter: a sequential loop over
// the per-page Acquire, preserving the acquired-prefix contract so CMs
// without a native batch path stay correct.
func acquireSeq(ctx context.Context, cm CM, desc *region.Descriptor, pages []gaddr.Addr, mode ktypes.LockMode) ([]gaddr.Addr, error) {
	acquired := make([]gaddr.Addr, 0, len(pages))
	for _, p := range pages {
		if err := cm.Acquire(ctx, desc, p, mode); err != nil {
			return acquired, err
		}
		acquired = append(acquired, p)
	}
	return acquired, nil
}

// releaseSeq is the default ReleaseBatch adapter: a sequential loop over
// the per-page Release, collecting per-page errors.
func releaseSeq(ctx context.Context, cm CM, desc *region.Descriptor, pages []gaddr.Addr, mode ktypes.LockMode, dirty map[gaddr.Addr]bool) []error {
	var errs []error
	for i, p := range pages {
		if err := cm.Release(ctx, desc, p, mode, dirty[p]); err != nil {
			if errs == nil {
				errs = make([]error, len(pages))
			}
			errs[i] = err
		}
	}
	return errs
}

// batchErrs fills a per-page error slice with one shared error, for batch
// failures that sink the whole request (unreachable home, bad reply).
func batchErrs(n int, err error) []error {
	errs := make([]error, n)
	for i := range errs {
		errs[i] = err
	}
	return errs
}

// zeroFill returns a page-sized zero frame, the contents of an allocated
// but never-written page. The caller owns the frame and must Release it.
func zeroFill(desc *region.Descriptor) *frame.Frame {
	return frame.AllocZero(int(desc.Attrs.PageSize))
}

// loadOrZero returns the local page frame, zero-filling for allocated
// pages never written. The caller owns the returned frame (one
// reference) and must Release it.
func loadOrZero(h Host, desc *region.Descriptor, page gaddr.Addr) *frame.Frame {
	if f, ok := h.LoadPage(page); ok {
		return f
	}
	return zeroFill(desc)
}

// storeBytes copies plain bytes into the host's page store via a
// transient frame, for decode paths that hold no frame.
func storeBytes(h Host, page gaddr.Addr, data []byte) error {
	f := frame.Copy(data)
	err := h.StorePage(page, f)
	f.Release()
	return err
}

// fanOut runs fn once per target with at most limit concurrent calls and
// waits for all of them: the bounded worker-pool idiom shared by the
// invalidation, batch-acquire, and replication fan-outs.
func fanOut(targets []ktypes.NodeID, limit int, fn func(ktypes.NodeID)) {
	if len(targets) == 0 {
		return
	}
	sem := make(chan struct{}, limit)
	var wg sync.WaitGroup
	for _, n := range targets {
		wg.Add(1)
		sem <- struct{}{}
		go func(n ktypes.NodeID) {
			defer wg.Done()
			defer func() { <-sem }()
			fn(n)
		}(n)
	}
	wg.Wait()
}

// isHome reports whether the local node is the region's primary home.
func isHome(h Host, desc *region.Descriptor) bool {
	home, err := desc.PrimaryHome()
	return err == nil && home == h.Self()
}

// homeOf returns the region's primary home or an error.
func homeOf(desc *region.Descriptor) (ktypes.NodeID, error) {
	home, err := desc.PrimaryHome()
	if err != nil {
		return ktypes.NilNode, fmt.Errorf("consistency: region %v: %w", desc.ID(), err)
	}
	return home, nil
}

// snapshotFromStore answers a snapshot read from the local store: one
// committed copy per page at the directory's current version. It is the
// shared serving path for protocols whose local copy is committed by
// construction (the release protocol's home between releases, the
// eventual protocol everywhere). The caller owns every returned frame.
func snapshotFromStore(h Host, desc *region.Descriptor, pages []gaddr.Addr) []SnapPage {
	out := make([]SnapPage, 0, len(pages))
	for _, p := range pages {
		//khazana:frame-owner snapshot pages hand their frames to the SnapshotRead caller
		f := loadOrZero(h, desc, p)
		var version uint64
		if e, ok := h.Dir().Lookup(p); ok {
			version = e.Version
		}
		out = append(out, SnapPage{Page: p, Frame: f, Version: version})
	}
	return out
}

// snapshotFromHome fetches snapshot copies of pages from the region's
// home in one SnapshotReqBatch round trip. The caller owns every frame in
// the result and must Release each; on error nothing is returned.
func snapshotFromHome(ctx context.Context, h Host, desc *region.Descriptor, home ktypes.NodeID, pages []gaddr.Addr, epoch uint64) ([]SnapPage, uint64, error) {
	req := &wire.SnapshotReqBatch{Pages: pages, Epoch: epoch, Requester: h.Self()}
	resp, err := h.Request(ctx, home, req)
	if err != nil {
		return nil, 0, err
	}
	batch, ok := resp.(*wire.SnapshotGrantBatch)
	if !ok {
		return nil, 0, fmt.Errorf("consistency: unexpected snapshot reply %T", resp)
	}
	if len(batch.Items) != len(pages) {
		batch.ReleaseFrames()
		return nil, 0, fmt.Errorf("consistency: snapshot reply has %d items for %d pages", len(batch.Items), len(pages))
	}
	out := make([]SnapPage, 0, len(pages))
	for i := range batch.Items {
		it := &batch.Items[i]
		if !it.OK {
			for _, sp := range out {
				sp.Frame.Release()
			}
			batch.ReleaseFrames()
			return nil, 0, fmt.Errorf("consistency: snapshot page %v: %s", pages[i], it.Err)
		}
		//khazana:frame-owner snapshot pages hand their frames to the SnapshotRead caller
		f := it.TakeFrame()
		if f == nil {
			//khazana:frame-owner the zero-filled stand-in is handed to the SnapshotRead caller too
			f = zeroFill(desc)
		}
		out = append(out, SnapPage{Page: pages[i], Frame: f, Version: it.Version})
	}
	batch.ReleaseFrames()
	return out, batch.Epoch, nil
}

// snapshotReply builds the SnapshotGrantBatch for a served snapshot read,
// consuming the frames in snaps (each is attached to its item and the
// local reference dropped).
func snapshotReply(snaps []SnapPage, epoch uint64) *wire.SnapshotGrantBatch {
	batch := &wire.SnapshotGrantBatch{
		Epoch: epoch,
		Items: make([]wire.SnapshotItem, len(snaps)),
	}
	for i, sp := range snaps {
		it := &batch.Items[i]
		it.OK = true
		it.Version = sp.Version
		it.SetFrame(sp.Frame)
		sp.Frame.Release()
	}
	return batch
}
