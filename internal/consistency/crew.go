package consistency

import (
	"context"
	"fmt"

	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
	"khazana/internal/pagedir"
	"khazana/internal/region"
	"khazana/internal/wire"
)

// CrewCM implements the Concurrent Read Exclusive Write protocol (paper
// §5: the only consistency model the prototype supports, citing Lamport).
//
// The region's primary home node is the manager for its pages, in the
// style of directory-based software DSM (§3.1 likens the address map to
// DSM directories). Global lock state lives at the home: concurrent read
// locks are granted freely; a write lock waits until all read locks drain,
// invalidates every other copy, and transfers ownership to the writer
// (Figure 2, step 10). Dirty pages are written through to the home at
// release time, so the home always holds current data when granting.
type CrewCM struct {
	h Host
	// glocks is the manager-side global lock table for pages homed here.
	glocks *LockTable
}

// NewCREW creates the CREW consistency manager for a node.
func NewCREW(h Host) *CrewCM {
	return &CrewCM{h: h, glocks: NewLockTable()}
}

var _ CM = (*CrewCM)(nil)

// Protocol implements CM.
func (c *CrewCM) Protocol() region.Protocol { return region.CREW }

// PageBusy reports whether the manager-side global lock table holds any
// lock on the page (used to find quiescent points, e.g. before region
// migration).
func (c *CrewCM) PageBusy(page gaddr.Addr) bool { return c.glocks.Held(page) }

// Acquire implements CM. Every acquisition — local or remote — funnels
// through the home's global lock table, which yields CREW's invariant: any
// number of readers or exactly one writer, cluster-wide.
func (c *CrewCM) Acquire(ctx context.Context, desc *region.Descriptor, page gaddr.Addr, mode ktypes.LockMode) error {
	if mode == ktypes.LockWriteShared {
		// CREW has no write-shared notion; treat as exclusive.
		mode = ktypes.LockWrite
	}
	if isHome(c.h, desc) {
		return c.homeAcquire(ctx, desc, page, mode, c.h.Self())
	}
	home, err := homeOf(desc)
	if err != nil {
		return err
	}
	resp, err := c.h.Request(ctx, home, &wire.PageReq{Page: page, Mode: mode, Requester: c.h.Self()})
	if err != nil {
		return fmt.Errorf("consistency: crew acquire %v from %v: %w", page, home, err)
	}
	grant, ok := resp.(*wire.PageGrant)
	if !ok {
		return fmt.Errorf("consistency: crew acquire %v: unexpected reply %T", page, resp)
	}
	if !grant.OK {
		return fmt.Errorf("consistency: crew acquire %v: %s", page, grant.Err)
	}
	if grant.Data != nil {
		if err := c.h.StorePage(page, grant.Data); err != nil {
			return fmt.Errorf("consistency: crew acquire %v: store: %w", page, err)
		}
	}
	c.h.Dir().Update(page, func(e *pagedir.Entry) {
		e.Version = grant.Version
		e.Owner = grant.Owner
		if mode.Writes() {
			e.State = pagedir.Owned
		} else if e.State != pagedir.Owned {
			e.State = pagedir.Shared
		}
	})
	return nil
}

// homeAcquire is the manager-side grant path, shared by local clients and
// the PageReq handler.
func (c *CrewCM) homeAcquire(ctx context.Context, desc *region.Descriptor, page gaddr.Addr, mode ktypes.LockMode, requester ktypes.NodeID) error {
	if err := c.glocks.Acquire(ctx, page, mode); err != nil {
		return fmt.Errorf("%w: %v", ErrConflict, err)
	}
	if err := c.homeGrantLocked(ctx, desc, page, mode, requester); err != nil {
		c.glocks.Release(page, mode)
		return err
	}
	return nil
}

// homeGrantLocked updates directory state after the global lock is held.
func (c *CrewCM) homeGrantLocked(ctx context.Context, desc *region.Descriptor, page gaddr.Addr, mode ktypes.LockMode, requester ktypes.NodeID) error {
	self := c.h.Self()
	var invalidate []ktypes.NodeID
	c.h.Dir().Update(page, func(e *pagedir.Entry) {
		e.HomedLocal = true
		if mode.Writes() {
			for _, n := range e.Copyset {
				if n != requester && n != self {
					invalidate = append(invalidate, n)
				}
			}
			e.Copyset = []ktypes.NodeID{requester}
			e.Owner = requester
			if requester == self {
				e.State = pagedir.Owned
			} else {
				// The home's own copy goes stale the moment the
				// writer modifies the page.
				e.State = pagedir.Invalid
			}
		} else {
			e.AddSharer(requester)
			if requester == self && e.State == pagedir.Invalid {
				e.State = pagedir.Shared
			}
		}
	})
	// Invalidation happens while the global write lock is held, so no new
	// readers can slip in with stale data.
	for _, n := range invalidate {
		entry, _ := c.h.Dir().Lookup(page)
		if _, err := c.h.Request(ctx, n, &wire.Invalidate{Page: page, NewOwner: requester, Version: entry.Version}); err != nil {
			// A dead sharer cannot serve stale reads either; log-free
			// best effort matches the prototype's tolerance of stale
			// hints. The copyset no longer lists it.
			continue
		}
	}
	return nil
}

// Release implements CM.
func (c *CrewCM) Release(ctx context.Context, desc *region.Descriptor, page gaddr.Addr, mode ktypes.LockMode, dirty bool) error {
	if mode == ktypes.LockWriteShared {
		mode = ktypes.LockWrite
	}
	if isHome(c.h, desc) {
		return c.homeRelease(desc, page, mode, dirty, c.h.Self(), nil)
	}
	home, err := homeOf(desc)
	if err != nil {
		return err
	}
	var data []byte
	if mode.Writes() && dirty {
		data = loadOrZero(c.h, desc, page)
	}
	msg := &wire.ReleaseNotify{Page: page, Mode: mode, Dirty: dirty, Data: data, From: c.h.Self()}
	if _, err := c.h.Request(ctx, home, msg); err != nil {
		return fmt.Errorf("consistency: crew release %v to %v: %w", page, home, err)
	}
	if mode.Writes() && dirty {
		c.h.Dir().Update(page, func(e *pagedir.Entry) { e.Version++ })
	}
	return nil
}

// homeRelease applies a release at the manager. A failed write-through is
// reported to the releaser — losing it would silently drop the only
// current copy of the page's contents at the home — but the global lock
// is released regardless so the page does not wedge.
func (c *CrewCM) homeRelease(desc *region.Descriptor, page gaddr.Addr, mode ktypes.LockMode, dirty bool, from ktypes.NodeID, data []byte) error {
	var storeErr error
	if mode.Writes() && dirty {
		// Write-through: the home stores the new contents so later
		// grants are served locally (and replica maintenance has a
		// current copy).
		if data != nil {
			if err := c.h.StorePage(page, data); err != nil {
				storeErr = fmt.Errorf("consistency: crew write-through %v: %w", page, err)
			}
		}
		if storeErr == nil {
			self := c.h.Self()
			c.h.Dir().Update(page, func(e *pagedir.Entry) {
				e.Version++
				e.AddSharer(self)
				// The write-through makes the home's copy current again;
				// the ownership hint returns home with it.
				e.Owner = self
				if from == self {
					e.State = pagedir.Owned
				} else {
					e.State = pagedir.Shared
				}
			})
		}
	}
	// TryRelease: after a failover this home may receive a (retried)
	// release for a grant the failed primary issued; tolerate it.
	c.glocks.TryRelease(page, mode)
	return storeErr
}

// Handle implements CM.
func (c *CrewCM) Handle(ctx context.Context, desc *region.Descriptor, from ktypes.NodeID, m wire.Msg) (wire.Msg, error) {
	switch msg := m.(type) {
	case *wire.PageReq:
		return c.handlePageReq(ctx, desc, msg)
	case *wire.ReleaseNotify:
		if !isHome(c.h, desc) {
			return nil, ErrNotHome
		}
		// A write-through failure travels back to the releaser, whose
		// release path queues a background retry (§3.5) so the update
		// is not lost.
		if err := c.homeRelease(desc, msg.Page, msg.Mode, msg.Dirty, msg.From, msg.Data); err != nil {
			return nil, err
		}
		return &wire.Ack{}, nil
	case *wire.Invalidate:
		c.h.DropPage(msg.Page)
		c.h.Dir().Update(msg.Page, func(e *pagedir.Entry) {
			e.State = pagedir.Invalid
			e.Owner = msg.NewOwner
		})
		return &wire.Ack{}, nil
	case *wire.PageFetch:
		return handlePageFetch(c.h, msg), nil
	default:
		return nil, fmt.Errorf("%w: crew got %T", ErrUnknownMsg, m)
	}
}

func (c *CrewCM) handlePageReq(ctx context.Context, desc *region.Descriptor, msg *wire.PageReq) (wire.Msg, error) {
	if !isHome(c.h, desc) {
		// Stale descriptor at the requester (§3.2): tell it so it can
		// fall back to a fresh lookup.
		return &wire.PageGrant{OK: false, Err: ErrNotHome.Error()}, nil
	}
	mode := msg.Mode
	if mode == ktypes.LockWriteShared {
		mode = ktypes.LockWrite
	}
	if err := c.homeAcquire(ctx, desc, msg.Page, mode, msg.Requester); err != nil {
		return &wire.PageGrant{OK: false, Err: err.Error()}, nil
	}
	entry, _ := c.h.Dir().Lookup(msg.Page)
	return &wire.PageGrant{
		OK:      true,
		Data:    loadOrZero(c.h, desc, msg.Page),
		Version: entry.Version,
		Owner:   entry.Owner,
	}, nil
}

// handlePageFetch serves a copy of a locally resident page; it is shared
// by all protocols (Figure 2 steps 7-9: the daemon supplies a copy out of
// local storage).
func handlePageFetch(h Host, msg *wire.PageFetch) wire.Msg {
	data, ok := h.LoadPage(msg.Page)
	if !ok {
		return &wire.PageData{Found: false}
	}
	entry, _ := h.Dir().Lookup(msg.Page)
	return &wire.PageData{Found: true, Data: data, Version: entry.Version}
}
