package consistency

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"khazana/internal/frame"
	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
	"khazana/internal/pagedir"
	"khazana/internal/region"
	"khazana/internal/telemetry"
	"khazana/internal/wire"
)

// Fan-out bounds for the batched paths: enough parallelism to hide link
// latency without letting one grant or acquire monopolize the transport.
const (
	// maxInvalidateFanout bounds concurrent Invalidate RPCs per grant.
	maxInvalidateFanout = 8
	// maxHomeFanout bounds concurrent per-home batch RPCs per acquire.
	maxHomeFanout = 8
	// maxReplicateFanout bounds concurrent write-through UpdateBatch RPCs
	// per release.
	maxReplicateFanout = 8
)

// CrewCM implements the Concurrent Read Exclusive Write protocol (paper
// §5: the only consistency model the prototype supports, citing Lamport).
//
// The region's primary home node is the manager for its pages, in the
// style of directory-based software DSM (§3.1 likens the address map to
// DSM directories). Global lock state lives at the home: concurrent read
// locks are granted freely; a write lock waits until all read locks drain,
// invalidates every other copy, and transfers ownership to the writer
// (Figure 2, step 10). Dirty pages are written through to the home at
// release time, so the home always holds current data when granting.
type CrewCM struct {
	h Host
	// glocks is the manager-side global lock table for pages homed here.
	glocks *LockTable
	// invalFailures counts invalidations that failed and pruned the
	// sharer — each one is a node that may still hold a stale copy.
	invalFailures *telemetry.Counter

	// specMu guards the speculative-grant bookkeeping below.
	specMu sync.Mutex
	// spec maps pages installed from a speculative grant (but not yet
	// consumed) to the granted version. A demand read finding its page
	// here with a valid local copy skips the home round trip entirely.
	spec map[gaddr.Addr]uint64
	// specHeld counts read holds acquired by consuming a speculative
	// grant. No home global lock backs these holds, so their releases
	// must not travel to the home — a remote TryRelease would decrement
	// some genuine reader's lock count.
	specHeld map[gaddr.Addr]int

	// prefetchHits / prefetchWaste count speculated pages consumed
	// without an RPC vs re-requested on demand (client side).
	prefetchHits  *telemetry.Counter
	prefetchWaste *telemetry.Counter
	// specPages observes speculative pages piggybacked per grant reply
	// (home side); updateBatchPages observes pages per write-through RPC.
	specPages        *telemetry.Histogram
	updateBatchPages *telemetry.Histogram

	// pubMu guards published and serializes every version-chain call; it
	// is a leaf lock — nothing is acquired under it — so the store's
	// mutex and the global lock table order freely before it.
	pubMu sync.Mutex
	// published retains the committed version chain of every locally
	// homed page that has seen a write: snapshot reads are granted from
	// here immediately, without waiting on or invalidating the writer's
	// exclusive hold.
	published map[gaddr.Addr]*frame.Chain
	// pubEpoch is the home's publish clock: every committed frame enters
	// its chain at a fresh epoch, and a snapshot pins one epoch as its
	// consistent cut across pages.
	pubEpoch atomic.Uint64

	// snapChainLen observes chain length at publish time; snapReclaimed
	// counts retired old-version frames (publish-time and pressure-time).
	snapChainLen  *telemetry.Histogram
	snapReclaimed *telemetry.Counter
}

// NewCREW creates the CREW consistency manager for a node.
func NewCREW(h Host) *CrewCM {
	return &CrewCM{
		h:                h,
		glocks:           NewLockTable(),
		invalFailures:    h.Telemetry().Counter(telemetry.MetricCrewInvalidateFailures),
		spec:             make(map[gaddr.Addr]uint64),
		specHeld:         make(map[gaddr.Addr]int),
		prefetchHits:     h.Telemetry().Counter(telemetry.MetricPrefetchHits),
		prefetchWaste:    h.Telemetry().Counter(telemetry.MetricPrefetchWaste),
		specPages:        h.Telemetry().Histogram(telemetry.MetricPrefetchSpecPages),
		updateBatchPages: h.Telemetry().Histogram(telemetry.MetricUpdateBatchPages),
		published:        make(map[gaddr.Addr]*frame.Chain),
		snapChainLen:     h.Telemetry().Histogram(telemetry.MetricSnapshotChainLen),
		snapReclaimed:    h.Telemetry().Counter(telemetry.MetricSnapshotReclaimed),
	}
}

// InvalidateFailures reports how many invalidation RPCs have failed (and
// pruned their sharer) so far.
func (c *CrewCM) InvalidateFailures() uint64 { return c.invalFailures.Load() }

var _ CM = (*CrewCM)(nil)

// Protocol implements CM.
func (c *CrewCM) Protocol() region.Protocol { return region.CREW }

// PageBusy reports whether the manager-side global lock table holds any
// lock on the page (used to find quiescent points, e.g. before region
// migration).
func (c *CrewCM) PageBusy(page gaddr.Addr) bool { return c.glocks.Held(page) }

// Acquire implements CM. Every acquisition — local or remote — funnels
// through the home's global lock table, which yields CREW's invariant: any
// number of readers or exactly one writer, cluster-wide.
func (c *CrewCM) Acquire(ctx context.Context, desc *region.Descriptor, page gaddr.Addr, mode ktypes.LockMode) error {
	if mode == ktypes.LockWriteShared {
		// CREW has no write-shared notion; treat as exclusive.
		mode = ktypes.LockWrite
	}
	if isHome(c.h, desc) {
		return c.homeAcquire(ctx, desc, page, mode, c.h.Self())
	}
	home, err := homeOf(desc)
	if err != nil {
		return err
	}
	resp, err := c.h.Request(ctx, home, &wire.PageReq{Page: page, Mode: mode, Requester: c.h.Self()})
	if err != nil {
		return fmt.Errorf("consistency: crew acquire %v from %v: %w", page, home, err)
	}
	grant, ok := resp.(*wire.PageGrant)
	if !ok {
		return fmt.Errorf("consistency: crew acquire %v: unexpected reply %T", page, resp)
	}
	if !grant.OK {
		return fmt.Errorf("consistency: crew acquire %v: %s", page, grant.Err)
	}
	if grant.Data != nil {
		f := grant.TakeFrame()
		err := c.h.StorePage(page, f)
		f.Release()
		if err != nil {
			return fmt.Errorf("consistency: crew acquire %v: store: %w", page, err)
		}
	}
	c.h.Dir().Update(page, func(e *pagedir.Entry) {
		e.Version = grant.Version
		e.Owner = grant.Owner
		if mode.Writes() {
			e.State = pagedir.Owned
		} else if e.State != pagedir.Owned {
			e.State = pagedir.Shared
		}
	})
	return nil
}

// AcquireBatch implements CM natively: pages homed locally take the global
// lock table page by page with no wire traffic, and remote pages are
// grouped by home node so each home answers its whole group in a single
// PageReqBatch round trip, with bounded-concurrency fan-out across homes.
// On error the returned slice holds every page whose lock is held and must
// be rolled back by the caller.
func (c *CrewCM) AcquireBatch(ctx context.Context, desc *region.Descriptor, pages []gaddr.Addr, mode ktypes.LockMode) ([]gaddr.Addr, error) {
	if len(pages) == 0 {
		return nil, nil
	}
	if mode == ktypes.LockWriteShared {
		mode = ktypes.LockWrite
	}
	if isHome(c.h, desc) {
		// Manager-local: take the global table in the caller's ascending
		// page order, the same order every batch uses, so concurrent
		// batches cannot deadlock.
		acquired := make([]gaddr.Addr, 0, len(pages))
		for _, p := range pages {
			if err := c.homeAcquire(ctx, desc, p, mode, c.h.Self()); err != nil {
				return acquired, err
			}
			acquired = append(acquired, p)
		}
		return acquired, nil
	}
	home, err := homeOf(desc)
	if err != nil {
		return nil, err
	}
	// Read batches first consume pages a speculative grant already
	// delivered: those holds are local, so a fully speculated batch costs
	// zero RPCs.
	var acquired []gaddr.Addr
	demand := pages
	if !mode.Writes() {
		var consumed []gaddr.Addr
		consumed, demand = c.consumeSpec(pages)
		acquired = consumed
		if len(demand) == 0 {
			return acquired, nil
		}
	} else {
		// A write acquire over a speculated page cannot use the read
		// copy; drop the bookkeeping so its later release stays honest.
		c.forgetSpec(pages)
	}
	// One RPC per home. A region has a single primary home today, so this
	// is normally one group; the bounded fan-out keeps multi-home
	// placements pipelined without monopolizing the transport.
	groups := map[ktypes.NodeID][]gaddr.Addr{home: demand}
	nodes := make([]ktypes.NodeID, 0, len(groups))
	for node := range groups {
		nodes = append(nodes, node)
	}
	var (
		mu       sync.Mutex
		firstErr error
	)
	fanOut(nodes, maxHomeFanout, func(node ktypes.NodeID) {
		got, err := c.acquireFromHome(ctx, desc, node, groups[node], mode)
		mu.Lock()
		acquired = append(acquired, got...)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	})
	return acquired, firstErr
}

// consumeSpec splits a read batch into pages satisfiable from unconsumed
// speculative grants (returned first, now held locally) and pages that
// still need the home. Every speculated page touched here leaves the spec
// map: a hit converts to a specHeld read hold, a page whose local copy was
// lost or invalidated since the grant counts as waste and rejoins the
// demand set.
func (c *CrewCM) consumeSpec(pages []gaddr.Addr) (consumed, demand []gaddr.Addr) {
	c.specMu.Lock()
	defer c.specMu.Unlock()
	if len(c.spec) == 0 {
		return nil, pages
	}
	demand = make([]gaddr.Addr, 0, len(pages))
	for _, p := range pages {
		sv, ok := c.spec[p]
		if !ok {
			demand = append(demand, p)
			continue
		}
		delete(c.spec, p)
		entry, _ := c.h.Dir().Lookup(p)
		// A spec frame is stale the moment the node observes a newer
		// version of the page (an update push, another grant): drop it
		// rather than serve it, closing the read-ahead staleness window.
		valid := entry.State != pagedir.Invalid && entry.Version <= sv
		if valid {
			if f, resident := c.h.LoadPage(p); resident {
				f.Release()
			} else {
				valid = false
			}
		}
		if !valid {
			// The prefetch was evicted or invalidated before use.
			c.prefetchWaste.Add(1)
			demand = append(demand, p)
			continue
		}
		c.prefetchHits.Add(1)
		c.specHeld[p]++
		consumed = append(consumed, p)
	}
	return consumed, demand
}

// forgetSpec drops unconsumed speculative-grant bookkeeping for pages
// about to be acquired for writing.
func (c *CrewCM) forgetSpec(pages []gaddr.Addr) {
	c.specMu.Lock()
	defer c.specMu.Unlock()
	for _, p := range pages {
		delete(c.spec, p)
	}
}

// releaseSpecHeld filters pages whose read hold came from a speculative
// grant, decrementing their hold counts, and returns the pages whose
// releases must still travel to the home. Speculative holds have no
// manager-side global lock, so sending their release would decrement a
// lock some genuine reader holds.
func (c *CrewCM) releaseSpecHeld(pages []gaddr.Addr, mode ktypes.LockMode) []gaddr.Addr {
	if mode.Writes() {
		return pages
	}
	c.specMu.Lock()
	defer c.specMu.Unlock()
	if len(c.specHeld) == 0 {
		return pages
	}
	remote := make([]gaddr.Addr, 0, len(pages))
	for _, p := range pages {
		if n, ok := c.specHeld[p]; ok && n > 0 {
			if n == 1 {
				delete(c.specHeld, p)
			} else {
				c.specHeld[p] = n - 1
			}
			continue
		}
		remote = append(remote, p)
	}
	return remote
}

// acquireFromHome issues one PageReqBatch covering group to home and
// applies the per-page grants, returning the pages whose locks are now
// held (including pages granted remotely but failing the local store, so
// the caller's rollback frees them at the home).
func (c *CrewCM) acquireFromHome(ctx context.Context, desc *region.Descriptor, home ktypes.NodeID, group []gaddr.Addr, mode ktypes.LockMode) ([]gaddr.Addr, error) {
	modes := make([]ktypes.LockMode, len(group))
	for i := range modes {
		modes[i] = mode
	}
	resp, err := c.h.Request(ctx, home, &wire.PageReqBatch{Pages: group, Modes: modes, Requester: c.h.Self()})
	if err != nil {
		return nil, fmt.Errorf("consistency: crew acquire batch (%d pages) from %v: %w", len(group), home, err)
	}
	batch, ok := resp.(*wire.PageGrantBatch)
	if !ok {
		return nil, fmt.Errorf("consistency: crew acquire batch: unexpected reply %T", resp)
	}
	if len(batch.Grants) != len(group) {
		return nil, fmt.Errorf("consistency: crew acquire batch: %d grants for %d pages", len(batch.Grants), len(group))
	}
	acquired := make([]gaddr.Addr, 0, len(group))
	var firstErr error
	for i := range batch.Grants {
		g := &batch.Grants[i]
		page := group[i]
		if !g.OK {
			if firstErr == nil {
				firstErr = fmt.Errorf("consistency: crew acquire %v: %s", page, g.Err)
			}
			continue
		}
		acquired = append(acquired, page)
		if g.Data != nil {
			f := g.TakeFrame()
			err := c.h.StorePage(page, f)
			f.Release()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("consistency: crew acquire %v: store: %w", page, err)
				}
				continue
			}
		}
		c.h.Dir().Update(page, func(e *pagedir.Entry) {
			e.Version = g.Version
			e.Owner = g.Owner
			if mode.Writes() {
				e.State = pagedir.Owned
			} else if e.State != pagedir.Owned {
				e.State = pagedir.Shared
			}
		})
	}
	c.installSpecGrants(batch.Spec)
	return acquired, firstErr
}

// installSpecGrants stores the read-ahead pages the home piggybacked onto
// a grant reply. Installation is strictly best-effort: the store may drop
// a frame rather than evict a demand page, and a dropped frame simply
// leaves the next acquire to fetch on demand.
func (c *CrewCM) installSpecGrants(spec []wire.SpecGrant) {
	for i := range spec {
		s := &spec[i]
		f := s.TakeFrame()
		if f == nil {
			continue
		}
		// An invalidation that raced ahead of this grant already marked
		// the page invalid at the speculated version; installing the
		// frame would resurrect the stale copy as Shared. Drop it.
		if entry, ok := c.h.Dir().Lookup(s.Page); ok &&
			entry.State == pagedir.Invalid && entry.Version >= s.Version {
			f.Release()
			continue
		}
		kept := c.h.StorePageSpeculative(s.Page, f)
		f.Release()
		if !kept {
			continue
		}
		c.h.Dir().Update(s.Page, func(e *pagedir.Entry) {
			e.Version = s.Version
			if e.State != pagedir.Owned {
				e.State = pagedir.Shared
			}
		})
		c.specMu.Lock()
		c.spec[s.Page] = s.Version
		c.specMu.Unlock()
	}
}

// homeAcquire is the manager-side grant path, shared by local clients and
// the PageReq handler.
func (c *CrewCM) homeAcquire(ctx context.Context, desc *region.Descriptor, page gaddr.Addr, mode ktypes.LockMode, requester ktypes.NodeID) error {
	if err := c.glocks.Acquire(ctx, page, mode); err != nil {
		return fmt.Errorf("%w: %v", ErrConflict, err)
	}
	if err := c.homeGrantLocked(ctx, desc, page, mode, requester); err != nil {
		c.glocks.Release(page, mode)
		return err
	}
	return nil
}

// homeGrantLocked updates directory state after the global lock is held.
func (c *CrewCM) homeGrantLocked(ctx context.Context, desc *region.Descriptor, page gaddr.Addr, mode ktypes.LockMode, requester ktypes.NodeID) error {
	self := c.h.Self()
	var invalidate []ktypes.NodeID
	c.h.Dir().Update(page, func(e *pagedir.Entry) {
		e.HomedLocal = true
		if mode.Writes() {
			for _, n := range e.Copyset {
				if n != requester && n != self {
					invalidate = append(invalidate, n)
				}
			}
			e.Copyset = []ktypes.NodeID{requester}
			e.Owner = requester
			if requester == self {
				e.State = pagedir.Owned
			} else {
				// The home's own copy goes stale the moment the
				// writer modifies the page.
				e.State = pagedir.Invalid
			}
		} else {
			e.AddSharer(requester)
			if requester == self && e.State == pagedir.Invalid {
				e.State = pagedir.Shared
			}
		}
	})
	if mode.Writes() {
		// Seed the page's version chain with the committed pre-write copy
		// before the writer can touch it: snapshot reads arriving during
		// the exclusive hold are served from the chain without waiting.
		c.captureCommitted(desc, page)
	}
	// Invalidation happens while the global write lock is held, so no new
	// readers can slip in with stale data.
	c.invalidateAll(ctx, page, requester, invalidate)
	return nil
}

// captureCommitted ensures the page's version chain holds the currently
// committed copy, publishing the store's frame when the chain is absent
// or behind. It runs under the page's global write lock, before the
// writer mutates anything, so the store copy it captures is committed by
// construction. The shared store frame is protected from the writer's
// in-place mutation by refcounting: with the chain holding a reference,
// the writer's Exclusive() copy-on-writes instead.
func (c *CrewCM) captureCommitted(desc *region.Descriptor, page gaddr.Addr) {
	entry, _ := c.h.Dir().Lookup(page)
	c.pubMu.Lock()
	if ch, ok := c.published[page]; ok {
		if v, ok := ch.LatestVersion(); ok && v >= entry.Version {
			c.pubMu.Unlock()
			return
		}
	}
	c.pubMu.Unlock()
	// Load outside pubMu (the store's mutex never nests inside it).
	f := loadOrZero(c.h, desc, page)
	f.SetVersion(entry.Version)
	c.publish(page, f, entry.Version)
	f.Release()
}

// publish appends f (borrowed; the chain takes its own reference) to the
// page's version chain at a fresh epoch, unless the chain already holds
// a version at least as new, and retires unpinned old versions past the
// retention cap.
func (c *CrewCM) publish(page gaddr.Addr, f *frame.Frame, version uint64) {
	c.pubMu.Lock()
	ch, ok := c.published[page]
	if !ok {
		ch = frame.NewChain()
		c.published[page] = ch
	}
	if v, ok := ch.LatestVersion(); ok && v >= version {
		c.pubMu.Unlock()
		return
	}
	freed := ch.Publish(f.Retain(), c.pubEpoch.Add(1))
	chainLen := ch.Len()
	c.pubMu.Unlock()
	c.snapChainLen.Observe(uint64(chainLen))
	if freed > 0 {
		c.snapReclaimed.Add(uint64(freed))
	}
}

// TrimPublished releases every unpinned non-latest version across all
// chains and returns the number of frames freed. The store's RAM tier
// calls it on eviction pressure, so old versions always give back memory
// before any demand page is victimized.
func (c *CrewCM) TrimPublished() int {
	c.pubMu.Lock()
	freed := 0
	for _, ch := range c.published {
		freed += ch.Trim()
	}
	c.pubMu.Unlock()
	if freed > 0 {
		c.snapReclaimed.Add(uint64(freed))
	}
	return freed
}

// invalidateAll fans Invalidate RPCs out to the former sharers with a
// bounded worker pool instead of one serial round trip per sharer. A
// sharer that fails invalidation may still hold a stale copy, so its
// copyset entry is pruned: the reset in homeGrantLocked already dropped
// it, but a concurrent re-add (e.g. a replica push racing the fan-out)
// must not leave an unreachable node listed as a valid copy holder.
func (c *CrewCM) invalidateAll(ctx context.Context, page gaddr.Addr, newOwner ktypes.NodeID, targets []ktypes.NodeID) {
	if len(targets) == 0 {
		return
	}
	entry, _ := c.h.Dir().Lookup(page)
	version := entry.Version
	fanOut(targets, maxInvalidateFanout, func(n ktypes.NodeID) {
		if _, err := c.h.Request(ctx, n, &wire.Invalidate{Page: page, NewOwner: newOwner, Version: version}); err != nil {
			// A dead sharer cannot serve stale reads either; log-free
			// best effort matches the prototype's tolerance of stale
			// hints. Prune so nothing re-trusts it as a copy holder,
			// and count the miss so operators see stale-copy risk.
			c.invalFailures.Add(1)
			c.h.Dir().Update(page, func(e *pagedir.Entry) { e.RemoveSharer(n) })
		}
	})
}

// Release implements CM.
func (c *CrewCM) Release(ctx context.Context, desc *region.Descriptor, page gaddr.Addr, mode ktypes.LockMode, dirty bool) error {
	if mode == ktypes.LockWriteShared {
		mode = ktypes.LockWrite
	}
	if isHome(c.h, desc) {
		err := c.homeRelease(desc, page, mode, dirty, c.h.Self(), nil)
		if err == nil && mode.Writes() && dirty {
			c.logReleases(ctx, desc, []gaddr.Addr{page})
			c.replicate(ctx, desc, []gaddr.Addr{page})
		}
		return err
	}
	if len(c.releaseSpecHeld([]gaddr.Addr{page}, mode)) == 0 {
		// The hold came from a consumed speculative grant: it is purely
		// local, the home never issued a lock for it.
		return nil
	}
	home, err := homeOf(desc)
	if err != nil {
		return err
	}
	msg := &wire.ReleaseNotify{Page: page, Mode: mode, Dirty: dirty, From: c.h.Self()}
	if mode.Writes() && dirty {
		// The frame stays referenced until the request (and its marshal)
		// completes, so the view in Data never dangles.
		f := loadOrZero(c.h, desc, page)
		msg.Data = f.Bytes()
		defer f.Release()
	}
	if _, err := c.h.Request(ctx, home, msg); err != nil {
		return fmt.Errorf("consistency: crew release %v to %v: %w", page, home, err)
	}
	if mode.Writes() && dirty {
		c.h.Dir().Update(page, func(e *pagedir.Entry) { e.Version++ })
	}
	return nil
}

// ReleaseBatch implements CM natively: local releases hit the global lock
// table directly, and remote releases for a home travel in one
// ReleaseBatch RPC whose reply carries per-page status, so a single failed
// write-through queues one background retry instead of sinking the batch.
func (c *CrewCM) ReleaseBatch(ctx context.Context, desc *region.Descriptor, pages []gaddr.Addr, mode ktypes.LockMode, dirty map[gaddr.Addr]bool) []error {
	if len(pages) == 0 {
		return nil
	}
	if mode == ktypes.LockWriteShared {
		mode = ktypes.LockWrite
	}
	if isHome(c.h, desc) {
		var errs []error
		var replicated []gaddr.Addr
		for i, p := range pages {
			if err := c.homeRelease(desc, p, mode, dirty[p], c.h.Self(), nil); err != nil {
				if errs == nil {
					errs = make([]error, len(pages))
				}
				errs[i] = err
				continue
			}
			if mode.Writes() && dirty[p] {
				replicated = append(replicated, p)
			}
		}
		c.logReleases(ctx, desc, replicated)
		c.replicate(ctx, desc, replicated)
		return errs
	}
	remote := c.releaseSpecHeld(pages, mode)
	if len(remote) == 0 {
		// Every hold came from consumed speculative grants; nothing to
		// tell the home.
		return nil
	}
	home, err := homeOf(desc)
	if err != nil {
		return batchErrs(len(pages), err)
	}
	items := make([]wire.ReleaseItem, len(remote))
	var frames []*frame.Frame
	for i, p := range remote {
		items[i] = wire.ReleaseItem{Page: p, Mode: mode, Dirty: dirty[p]}
		if mode.Writes() && dirty[p] {
			// Frames stay referenced until the request (and its marshal)
			// completes, so the views in Data never dangle.
			f := loadOrZero(c.h, desc, p)
			items[i].Data = f.Bytes()
			//khazana:frame-owner released after the batch RPC below
			frames = append(frames, f)
		}
	}
	defer func() {
		for _, f := range frames {
			f.Release()
		}
	}()
	resp, err := c.h.Request(ctx, home, &wire.ReleaseBatch{From: c.h.Self(), Items: items})
	if err != nil {
		return batchErrs(len(pages), fmt.Errorf("consistency: crew release batch (%d pages) to %v: %w", len(remote), home, err))
	}
	rb, ok := resp.(*wire.ReleaseBatchResp)
	if !ok {
		return batchErrs(len(pages), fmt.Errorf("consistency: crew release batch: unexpected reply %T", resp))
	}
	remoteErrs := make(map[gaddr.Addr]string, len(remote))
	for i, p := range remote {
		if i < len(rb.Errs) && rb.Errs[i] != "" {
			remoteErrs[p] = rb.Errs[i]
			continue
		}
		if mode.Writes() && dirty[p] {
			c.h.Dir().Update(p, func(e *pagedir.Entry) { e.Version++ })
		}
	}
	var errs []error
	for i, p := range pages {
		if remote, ok := remoteErrs[p]; ok {
			if errs == nil {
				errs = make([]error, len(pages))
			}
			errs[i] = fmt.Errorf("consistency: crew release %v to %v: %s", p, home, remote)
		}
	}
	return errs
}

// homeRelease applies a release at the manager. A failed write-through is
// reported to the releaser — losing it would silently drop the only
// current copy of the page's contents at the home — but the global lock
// is released regardless so the page does not wedge.
func (c *CrewCM) homeRelease(desc *region.Descriptor, page gaddr.Addr, mode ktypes.LockMode, dirty bool, from ktypes.NodeID, f *frame.Frame) error {
	var storeErr error
	if mode.Writes() && dirty {
		// Write-through: the home stores the new contents so later
		// grants are served locally (and replica maintenance has a
		// current copy). The frame is borrowed from the caller.
		if f != nil {
			if err := c.h.StorePage(page, f); err != nil {
				storeErr = fmt.Errorf("consistency: crew write-through %v: %w", page, err)
			}
		}
		if storeErr == nil {
			self := c.h.Self()
			var newVersion uint64
			c.h.Dir().Update(page, func(e *pagedir.Entry) {
				e.Version++
				newVersion = e.Version
				e.AddSharer(self)
				// The write-through makes the home's copy current again;
				// the ownership hint returns home with it.
				e.Owner = self
				if from == self {
					e.State = pagedir.Owned
				} else {
					e.State = pagedir.Shared
				}
			})
			// Publish the committed contents into the page's version
			// chain: snapshot readers pinned to older epochs keep their
			// versions, new snapshots see this one.
			if f != nil {
				f.SetVersion(newVersion)
				c.publish(page, f, newVersion)
			} else {
				// Home-local release: the writer already stored the new
				// contents locally.
				nf := loadOrZero(c.h, desc, page)
				nf.SetVersion(newVersion)
				c.publish(page, nf, newVersion)
				nf.Release()
			}
		}
	}
	// TryRelease: after a failover this home may receive a (retried)
	// release for a grant the failed primary issued; tolerate it.
	c.glocks.TryRelease(page, mode)
	return storeErr
}

// SnapshotRead implements CM: committed copies without locks. At the
// home it serves straight from the version chains; remotely it asks the
// home in one SnapshotReqBatch round trip and uses the authoritative
// versions in the reply to drop any speculative frame they prove stale.
func (c *CrewCM) SnapshotRead(ctx context.Context, desc *region.Descriptor, pages []gaddr.Addr, epoch uint64) ([]SnapPage, uint64, error) {
	if isHome(c.h, desc) {
		snaps, at := c.homeSnapshot(desc, pages, epoch)
		return snaps, at, nil
	}
	home, err := homeOf(desc)
	if err != nil {
		return nil, 0, err
	}
	snaps, at, err := snapshotFromHome(ctx, c.h, desc, home, pages, epoch)
	if err != nil {
		return nil, 0, err
	}
	for _, sp := range snaps {
		c.dropStaleSpec(sp.Page, sp.Version)
	}
	return snaps, at, nil
}

// homeSnapshot serves a snapshot read at the manager. epoch 0 cuts at
// the current publish epoch; the chosen cut is returned so a snapshot
// context can pin it for later requests. Readers never touch the global
// lock table, never join a copyset, and never trigger invalidation: a
// page under a writer's exclusive hold serves its last committed version
// from the chain (seeded by captureCommitted at grant time). Pages that
// have never seen a write fall back to the store copy, committed by
// construction. The caller owns every returned frame.
func (c *CrewCM) homeSnapshot(desc *region.Descriptor, pages []gaddr.Addr, epoch uint64) ([]SnapPage, uint64) {
	if epoch == 0 {
		epoch = c.pubEpoch.Load()
	}
	out := make([]SnapPage, 0, len(pages))
	for _, p := range pages {
		var (
			f       *frame.Frame
			version uint64
		)
		c.pubMu.Lock()
		if ch, ok := c.published[p]; ok {
			//khazana:frame-owner the pinned version is handed to the SnapshotRead caller
			if cf, _, ok := ch.At(epoch); ok {
				f = cf
				version = cf.Version()
			}
		}
		c.pubMu.Unlock()
		if f == nil {
			//khazana:frame-owner the committed store copy is handed to the SnapshotRead caller
			f = loadOrZero(c.h, desc, p)
			entry, _ := c.h.Dir().Lookup(p)
			version = entry.Version
		}
		out = append(out, SnapPage{Page: p, Frame: f, Version: version})
	}
	return out, epoch
}

// dropStaleSpec discards an unconsumed speculative frame whose granted
// version is older than a version the node has now observed from the
// home, closing the read-ahead staleness window: the next demand read
// refetches instead of serving the stale copy.
func (c *CrewCM) dropStaleSpec(page gaddr.Addr, observed uint64) {
	c.specMu.Lock()
	sv, ok := c.spec[page]
	if !ok || sv >= observed {
		c.specMu.Unlock()
		return
	}
	delete(c.spec, page)
	c.specMu.Unlock()
	c.prefetchWaste.Add(1)
	c.h.DropPage(page)
	c.h.Dir().Update(page, func(e *pagedir.Entry) {
		if e.State != pagedir.Owned {
			e.State = pagedir.Invalid
		}
	})
}

// logReleases appends one ReplOpRelease delta per released dirty page to
// the region's replicated metadata log before the release is acked, so a
// standby that wins the failover election already knows each page's
// committed version, owner, copyset, and publish epoch — closing the
// §3.5 lost-release window for the common home-crash case. Only metadata
// rides the log; page contents still travel the replicate() write-through
// (one UpdateBatch RPC per replica, the E16 invariant). A disabled log or
// a single-home region is a no-op.
func (c *CrewCM) logReleases(ctx context.Context, desc *region.Descriptor, pages []gaddr.Addr) {
	l := c.h.Repl()
	if l == nil || len(pages) == 0 || len(desc.Home) < 2 {
		return
	}
	epoch := c.pubEpoch.Load()
	entries := make([]wire.ReplEntry, 0, len(pages))
	for _, p := range pages {
		entry, _ := c.h.Dir().Lookup(p)
		entries = append(entries, wire.ReplEntry{
			Op:    wire.ReplOpRelease,
			Page:  p,
			Val:   entry.Version,
			Node:  entry.Owner,
			Nodes: append([]ktypes.NodeID(nil), entry.Copyset...),
			Aux:   epoch,
		})
	}
	// ErrNotLeader can surface during a failover race (this node was
	// deposed between the grant and the release); the release itself
	// still completed and the §3.5 background loops re-converge the
	// metadata, so the error is not propagated to the releaser.
	_ = l.Append(ctx, desc, entries...)
}

// replicate writes released dirty pages through to the region's secondary
// homes: one UpdateBatch per replica covering every page of the release,
// instead of one ReplicaPut per page per replica. Each page's frame is
// loaded once and shared across the fan-out (every SetFrame takes its own
// reference). Replication is best-effort — the background replica
// maintenance loop (§3.5) re-pushes pages a secondary missed.
func (c *CrewCM) replicate(ctx context.Context, desc *region.Descriptor, pages []gaddr.Addr) {
	if len(pages) == 0 || len(desc.Home) < 2 {
		return
	}
	self := c.h.Self()
	type pageData struct {
		page    gaddr.Addr
		f       *frame.Frame
		version uint64
	}
	data := make([]pageData, 0, len(pages))
	for _, p := range pages {
		//khazana:frame-owner released after the replication fan-out below
		f, ok := c.h.LoadPage(p)
		if !ok {
			continue
		}
		entry, _ := c.h.Dir().Lookup(p)
		data = append(data, pageData{page: p, f: f, version: entry.Version})
	}
	if len(data) == 0 {
		return
	}
	var targets []ktypes.NodeID
	for _, n := range desc.Home {
		if n != self {
			targets = append(targets, n)
		}
	}
	perPage := c.h.PerPageReplication()
	fanOut(targets, maxReplicateFanout, func(n ktypes.NodeID) {
		if perPage {
			// Baseline path: one ReplicaPut RPC per page, as before the
			// batched write-through.
			for _, pd := range data {
				msg := &wire.ReplicaPut{Page: pd.page, Version: pd.version, From: self}
				msg.SetFrame(pd.f)
				if _, err := c.h.Request(ctx, n, msg); err != nil {
					msg.ReleaseFrames()
					continue
				}
				msg.ReleaseFrames()
				c.h.Dir().Update(pd.page, func(e *pagedir.Entry) { e.AddSharer(n) })
			}
			return
		}
		batch := &wire.UpdateBatch{From: self, Items: make([]wire.UpdateItem, len(data))}
		for i, pd := range data {
			batch.Items[i] = wire.UpdateItem{Page: pd.page, Version: pd.version, Origin: self}
			batch.Items[i].SetFrame(pd.f)
		}
		c.updateBatchPages.Observe(uint64(len(data)))
		_, err := c.h.Request(ctx, n, batch)
		batch.ReleaseFrames()
		if err != nil {
			return
		}
		for _, pd := range data {
			c.h.Dir().Update(pd.page, func(e *pagedir.Entry) { e.AddSharer(n) })
		}
	})
	for _, pd := range data {
		pd.f.Release()
	}
}

// Handle implements CM.
func (c *CrewCM) Handle(ctx context.Context, desc *region.Descriptor, from ktypes.NodeID, m wire.Msg) (wire.Msg, error) {
	switch msg := m.(type) {
	case *wire.PageReq:
		return c.handlePageReq(ctx, desc, msg)
	case *wire.PageReqBatch:
		return c.handlePageReqBatch(ctx, desc, msg)
	case *wire.ReleaseBatch:
		return c.handleReleaseBatch(ctx, desc, msg)
	case *wire.UpdateBatch:
		return c.handleUpdateBatch(desc, from, msg)
	case *wire.ReleaseNotify:
		if !isHome(c.h, desc) {
			return nil, ErrNotHome
		}
		// A write-through failure travels back to the releaser, whose
		// release path queues a background retry (§3.5) so the update
		// is not lost.
		var f *frame.Frame
		if msg.Data != nil {
			f = msg.TakeFrame()
		}
		err := c.homeRelease(desc, msg.Page, msg.Mode, msg.Dirty, msg.From, f)
		if f != nil {
			f.Release()
		}
		if err != nil {
			return nil, err
		}
		if msg.Mode.Writes() && msg.Dirty {
			c.logReleases(ctx, desc, []gaddr.Addr{msg.Page})
			c.replicate(ctx, desc, []gaddr.Addr{msg.Page})
		}
		return &wire.Ack{}, nil
	case *wire.Invalidate:
		c.h.DropPage(msg.Page)
		// An unconsumed speculative grant for the page is now stale;
		// forget it so the next read goes to the home.
		c.specMu.Lock()
		delete(c.spec, msg.Page)
		c.specMu.Unlock()
		c.h.Dir().Update(msg.Page, func(e *pagedir.Entry) {
			e.State = pagedir.Invalid
			e.Owner = msg.NewOwner
		})
		return &wire.Ack{}, nil
	case *wire.SnapshotReqBatch:
		if !isHome(c.h, desc) {
			return nil, ErrNotHome
		}
		snaps, epoch := c.homeSnapshot(desc, msg.Pages, msg.Epoch)
		return snapshotReply(snaps, epoch), nil
	case *wire.PageFetch:
		return handlePageFetch(c.h, msg), nil
	//khazana:wire-default non-CM kinds are unroutable here by design
	default:
		return nil, fmt.Errorf("%w: crew got %T", ErrUnknownMsg, m)
	}
}

func (c *CrewCM) handlePageReq(ctx context.Context, desc *region.Descriptor, msg *wire.PageReq) (wire.Msg, error) {
	if !isHome(c.h, desc) {
		// Stale descriptor at the requester (§3.2): tell it so it can
		// fall back to a fresh lookup.
		return &wire.PageGrant{OK: false, Err: ErrNotHome.Error()}, nil
	}
	mode := msg.Mode
	if mode == ktypes.LockWriteShared {
		mode = ktypes.LockWrite
	}
	if err := c.homeAcquire(ctx, desc, msg.Page, mode, msg.Requester); err != nil {
		return &wire.PageGrant{OK: false, Err: err.Error()}, nil
	}
	entry, _ := c.h.Dir().Lookup(msg.Page)
	g := &wire.PageGrant{
		OK:      true,
		Version: entry.Version,
		Owner:   entry.Owner,
	}
	f := loadOrZero(c.h, desc, msg.Page)
	g.SetFrame(f)
	f.Release()
	return g, nil
}

// handlePageReqBatch is the manager side of AcquireBatch: every page of
// the request is answered in one reply with per-page status. Grants stop
// at the first failure — the requester will roll the batch back anyway, so
// acquiring the remaining locks would only be churn.
func (c *CrewCM) handlePageReqBatch(ctx context.Context, desc *region.Descriptor, msg *wire.PageReqBatch) (wire.Msg, error) {
	resp := &wire.PageGrantBatch{Grants: make([]wire.PageGrantItem, len(msg.Pages))}
	if len(msg.Modes) != len(msg.Pages) {
		return nil, fmt.Errorf("consistency: crew batch: %d pages with %d modes", len(msg.Pages), len(msg.Modes))
	}
	if !isHome(c.h, desc) {
		// Stale descriptor at the requester (§3.2): tell it so it can
		// fall back to a fresh lookup.
		for i := range resp.Grants {
			resp.Grants[i] = wire.PageGrantItem{Err: ErrNotHome.Error()}
		}
		return resp, nil
	}
	failed := false
	allReads := true
	for i, page := range msg.Pages {
		if failed {
			resp.Grants[i] = wire.PageGrantItem{Err: "not attempted: earlier page in batch failed"}
			continue
		}
		mode := msg.Modes[i]
		if mode == ktypes.LockWriteShared {
			mode = ktypes.LockWrite
		}
		if mode.Writes() {
			allReads = false
		}
		if err := c.homeAcquire(ctx, desc, page, mode, msg.Requester); err != nil {
			resp.Grants[i] = wire.PageGrantItem{Err: err.Error()}
			failed = true
			continue
		}
		entry, _ := c.h.Dir().Lookup(page)
		resp.Grants[i] = wire.PageGrantItem{
			OK:      true,
			Version: entry.Version,
			Owner:   entry.Owner,
		}
		f := loadOrZero(c.h, desc, page)
		resp.Grants[i].SetFrame(f)
		f.Release()
	}
	if !failed && allReads {
		c.speculate(desc, msg.Requester, msg.Pages, resp)
	}
	return resp, nil
}

// speculate piggybacks read-ahead grants for the requester's predicted
// next pages onto a fully granted read batch. Speculative grants carry no
// manager lock: the requester is added to the copyset (so a later writer
// invalidates its copy) and ships a validated snapshot, trading one
// version of staleness in the worst race for a round trip per predicted
// page — the §3.3 relaxation read-mostly services opt into.
func (c *CrewCM) speculate(desc *region.Descriptor, requester ktypes.NodeID, pages []gaddr.Addr, resp *wire.PageGrantBatch) {
	planner := c.h.ReadAhead()
	if planner == nil || requester == c.h.Self() {
		return
	}
	candidates := planner.Plan(desc, requester, pages)
	if len(candidates) == 0 {
		return
	}
	granted := make([]gaddr.Addr, 0, len(candidates))
	for _, p := range candidates {
		// Never speculate on a page under an active write lock: its
		// contents are in flight at the writer.
		if c.glocks.WriteLocked(p) {
			continue
		}
		// Enter the copyset before reading the bytes: once listed, a
		// writer's grant will invalidate the requester's copy, so the
		// snapshot below cannot be silently left stale forever.
		c.h.Dir().Update(p, func(e *pagedir.Entry) {
			e.HomedLocal = true
			e.AddSharer(requester)
		})
		entry, _ := c.h.Dir().Lookup(p)
		s := wire.SpecGrant{Page: p, Version: entry.Version}
		f := loadOrZero(c.h, desc, p)
		s.SetFrame(f)
		f.Release()
		resp.Spec = append(resp.Spec, s)
		granted = append(granted, p)
	}
	c.specPages.Observe(uint64(len(granted)))
	planner.Granted(desc.Range.Start, requester, granted)
}

// handleReleaseBatch applies a batch of releases at the manager,
// reporting per-item status so the releaser retries only the pages whose
// write-through failed (§3.5), then writes the batch's dirty pages
// through to the region's secondary homes in one RPC per replica.
func (c *CrewCM) handleReleaseBatch(ctx context.Context, desc *region.Descriptor, msg *wire.ReleaseBatch) (wire.Msg, error) {
	if !isHome(c.h, desc) {
		return nil, ErrNotHome
	}
	resp := &wire.ReleaseBatchResp{Errs: make([]string, len(msg.Items))}
	var replicated []gaddr.Addr
	for i := range msg.Items {
		it := &msg.Items[i]
		mode := it.Mode
		if mode == ktypes.LockWriteShared {
			mode = ktypes.LockWrite
		}
		var f *frame.Frame
		if it.Data != nil {
			f = it.TakeFrame()
		}
		err := c.homeRelease(desc, it.Page, mode, it.Dirty, msg.From, f)
		if f != nil {
			f.Release()
		}
		if err != nil {
			resp.Errs[i] = err.Error()
			continue
		}
		if mode.Writes() && it.Dirty {
			replicated = append(replicated, it.Page)
		}
	}
	c.logReleases(ctx, desc, replicated)
	c.replicate(ctx, desc, replicated)
	return resp, nil
}

// handleUpdateBatch applies a batched write-through at a secondary home:
// every page is stored and its directory entry refreshed when the pushed
// version is at least as new as the local one, mirroring the per-page
// ReplicaPut semantics.
func (c *CrewCM) handleUpdateBatch(desc *region.Descriptor, from ktypes.NodeID, msg *wire.UpdateBatch) (wire.Msg, error) {
	_ = desc
	self := c.h.Self()
	resp := &wire.UpdateBatchResp{
		Errs:     make([]string, len(msg.Items)),
		Versions: make([]uint64, len(msg.Items)),
	}
	for i := range msg.Items {
		it := &msg.Items[i]
		f := it.TakeFrame()
		if f == nil {
			resp.Errs[i] = "update without contents"
			continue
		}
		err := c.h.StorePage(it.Page, f)
		f.Release()
		if err != nil {
			resp.Errs[i] = err.Error()
			continue
		}
		c.h.Dir().Update(it.Page, func(e *pagedir.Entry) {
			if it.Version >= e.Version {
				e.Version = it.Version
				if e.State != pagedir.Owned {
					e.State = pagedir.Shared
				}
			}
			e.AddSharer(self)
			e.AddSharer(from)
		})
		resp.Versions[i] = it.Version
	}
	return resp, nil
}

// handlePageFetch serves a copy of a locally resident page; it is shared
// by all protocols (Figure 2 steps 7-9: the daemon supplies a copy out of
// local storage).
func handlePageFetch(h Host, msg *wire.PageFetch) wire.Msg {
	f, ok := h.LoadPage(msg.Page)
	if !ok {
		return &wire.PageData{Found: false}
	}
	entry, _ := h.Dir().Lookup(msg.Page)
	pd := &wire.PageData{Found: true, Version: entry.Version}
	pd.SetFrame(f)
	f.Release()
	return pd
}
