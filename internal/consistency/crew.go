package consistency

import (
	"context"
	"fmt"
	"sync"

	"khazana/internal/frame"
	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
	"khazana/internal/pagedir"
	"khazana/internal/region"
	"khazana/internal/telemetry"
	"khazana/internal/wire"
)

// Fan-out bounds for the batched paths: enough parallelism to hide link
// latency without letting one grant or acquire monopolize the transport.
const (
	// maxInvalidateFanout bounds concurrent Invalidate RPCs per grant.
	maxInvalidateFanout = 8
	// maxHomeFanout bounds concurrent per-home batch RPCs per acquire.
	maxHomeFanout = 8
)

// CrewCM implements the Concurrent Read Exclusive Write protocol (paper
// §5: the only consistency model the prototype supports, citing Lamport).
//
// The region's primary home node is the manager for its pages, in the
// style of directory-based software DSM (§3.1 likens the address map to
// DSM directories). Global lock state lives at the home: concurrent read
// locks are granted freely; a write lock waits until all read locks drain,
// invalidates every other copy, and transfers ownership to the writer
// (Figure 2, step 10). Dirty pages are written through to the home at
// release time, so the home always holds current data when granting.
type CrewCM struct {
	h Host
	// glocks is the manager-side global lock table for pages homed here.
	glocks *LockTable
	// invalFailures counts invalidations that failed and pruned the
	// sharer — each one is a node that may still hold a stale copy.
	invalFailures *telemetry.Counter
}

// NewCREW creates the CREW consistency manager for a node.
func NewCREW(h Host) *CrewCM {
	return &CrewCM{
		h:             h,
		glocks:        NewLockTable(),
		invalFailures: h.Telemetry().Counter(telemetry.MetricCrewInvalidateFailures),
	}
}

// InvalidateFailures reports how many invalidation RPCs have failed (and
// pruned their sharer) so far.
func (c *CrewCM) InvalidateFailures() uint64 { return c.invalFailures.Load() }

var _ CM = (*CrewCM)(nil)

// Protocol implements CM.
func (c *CrewCM) Protocol() region.Protocol { return region.CREW }

// PageBusy reports whether the manager-side global lock table holds any
// lock on the page (used to find quiescent points, e.g. before region
// migration).
func (c *CrewCM) PageBusy(page gaddr.Addr) bool { return c.glocks.Held(page) }

// Acquire implements CM. Every acquisition — local or remote — funnels
// through the home's global lock table, which yields CREW's invariant: any
// number of readers or exactly one writer, cluster-wide.
func (c *CrewCM) Acquire(ctx context.Context, desc *region.Descriptor, page gaddr.Addr, mode ktypes.LockMode) error {
	if mode == ktypes.LockWriteShared {
		// CREW has no write-shared notion; treat as exclusive.
		mode = ktypes.LockWrite
	}
	if isHome(c.h, desc) {
		return c.homeAcquire(ctx, desc, page, mode, c.h.Self())
	}
	home, err := homeOf(desc)
	if err != nil {
		return err
	}
	resp, err := c.h.Request(ctx, home, &wire.PageReq{Page: page, Mode: mode, Requester: c.h.Self()})
	if err != nil {
		return fmt.Errorf("consistency: crew acquire %v from %v: %w", page, home, err)
	}
	grant, ok := resp.(*wire.PageGrant)
	if !ok {
		return fmt.Errorf("consistency: crew acquire %v: unexpected reply %T", page, resp)
	}
	if !grant.OK {
		return fmt.Errorf("consistency: crew acquire %v: %s", page, grant.Err)
	}
	if grant.Data != nil {
		f := grant.TakeFrame()
		err := c.h.StorePage(page, f)
		f.Release()
		if err != nil {
			return fmt.Errorf("consistency: crew acquire %v: store: %w", page, err)
		}
	}
	c.h.Dir().Update(page, func(e *pagedir.Entry) {
		e.Version = grant.Version
		e.Owner = grant.Owner
		if mode.Writes() {
			e.State = pagedir.Owned
		} else if e.State != pagedir.Owned {
			e.State = pagedir.Shared
		}
	})
	return nil
}

// AcquireBatch implements CM natively: pages homed locally take the global
// lock table page by page with no wire traffic, and remote pages are
// grouped by home node so each home answers its whole group in a single
// PageReqBatch round trip, with bounded-concurrency fan-out across homes.
// On error the returned slice holds every page whose lock is held and must
// be rolled back by the caller.
func (c *CrewCM) AcquireBatch(ctx context.Context, desc *region.Descriptor, pages []gaddr.Addr, mode ktypes.LockMode) ([]gaddr.Addr, error) {
	if len(pages) == 0 {
		return nil, nil
	}
	if mode == ktypes.LockWriteShared {
		mode = ktypes.LockWrite
	}
	if isHome(c.h, desc) {
		// Manager-local: take the global table in the caller's ascending
		// page order, the same order every batch uses, so concurrent
		// batches cannot deadlock.
		acquired := make([]gaddr.Addr, 0, len(pages))
		for _, p := range pages {
			if err := c.homeAcquire(ctx, desc, p, mode, c.h.Self()); err != nil {
				return acquired, err
			}
			acquired = append(acquired, p)
		}
		return acquired, nil
	}
	home, err := homeOf(desc)
	if err != nil {
		return nil, err
	}
	// One RPC per home. A region has a single primary home today, so this
	// is normally one group; the bounded fan-out keeps multi-home
	// placements pipelined without monopolizing the transport.
	groups := map[ktypes.NodeID][]gaddr.Addr{home: pages}
	var (
		mu       sync.Mutex
		acquired []gaddr.Addr
		firstErr error
	)
	sem := make(chan struct{}, maxHomeFanout)
	var wg sync.WaitGroup
	for node, group := range groups {
		wg.Add(1)
		sem <- struct{}{}
		go func(node ktypes.NodeID, group []gaddr.Addr) {
			defer wg.Done()
			defer func() { <-sem }()
			got, err := c.acquireFromHome(ctx, desc, node, group, mode)
			mu.Lock()
			acquired = append(acquired, got...)
			if err != nil && firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}(node, group)
	}
	wg.Wait()
	return acquired, firstErr
}

// acquireFromHome issues one PageReqBatch covering group to home and
// applies the per-page grants, returning the pages whose locks are now
// held (including pages granted remotely but failing the local store, so
// the caller's rollback frees them at the home).
func (c *CrewCM) acquireFromHome(ctx context.Context, desc *region.Descriptor, home ktypes.NodeID, group []gaddr.Addr, mode ktypes.LockMode) ([]gaddr.Addr, error) {
	modes := make([]ktypes.LockMode, len(group))
	for i := range modes {
		modes[i] = mode
	}
	resp, err := c.h.Request(ctx, home, &wire.PageReqBatch{Pages: group, Modes: modes, Requester: c.h.Self()})
	if err != nil {
		return nil, fmt.Errorf("consistency: crew acquire batch (%d pages) from %v: %w", len(group), home, err)
	}
	batch, ok := resp.(*wire.PageGrantBatch)
	if !ok {
		return nil, fmt.Errorf("consistency: crew acquire batch: unexpected reply %T", resp)
	}
	if len(batch.Grants) != len(group) {
		return nil, fmt.Errorf("consistency: crew acquire batch: %d grants for %d pages", len(batch.Grants), len(group))
	}
	acquired := make([]gaddr.Addr, 0, len(group))
	var firstErr error
	for i := range batch.Grants {
		g := &batch.Grants[i]
		page := group[i]
		if !g.OK {
			if firstErr == nil {
				firstErr = fmt.Errorf("consistency: crew acquire %v: %s", page, g.Err)
			}
			continue
		}
		acquired = append(acquired, page)
		if g.Data != nil {
			f := g.TakeFrame()
			err := c.h.StorePage(page, f)
			f.Release()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("consistency: crew acquire %v: store: %w", page, err)
				}
				continue
			}
		}
		c.h.Dir().Update(page, func(e *pagedir.Entry) {
			e.Version = g.Version
			e.Owner = g.Owner
			if mode.Writes() {
				e.State = pagedir.Owned
			} else if e.State != pagedir.Owned {
				e.State = pagedir.Shared
			}
		})
	}
	return acquired, firstErr
}

// homeAcquire is the manager-side grant path, shared by local clients and
// the PageReq handler.
func (c *CrewCM) homeAcquire(ctx context.Context, desc *region.Descriptor, page gaddr.Addr, mode ktypes.LockMode, requester ktypes.NodeID) error {
	if err := c.glocks.Acquire(ctx, page, mode); err != nil {
		return fmt.Errorf("%w: %v", ErrConflict, err)
	}
	if err := c.homeGrantLocked(ctx, desc, page, mode, requester); err != nil {
		c.glocks.Release(page, mode)
		return err
	}
	return nil
}

// homeGrantLocked updates directory state after the global lock is held.
func (c *CrewCM) homeGrantLocked(ctx context.Context, desc *region.Descriptor, page gaddr.Addr, mode ktypes.LockMode, requester ktypes.NodeID) error {
	self := c.h.Self()
	var invalidate []ktypes.NodeID
	c.h.Dir().Update(page, func(e *pagedir.Entry) {
		e.HomedLocal = true
		if mode.Writes() {
			for _, n := range e.Copyset {
				if n != requester && n != self {
					invalidate = append(invalidate, n)
				}
			}
			e.Copyset = []ktypes.NodeID{requester}
			e.Owner = requester
			if requester == self {
				e.State = pagedir.Owned
			} else {
				// The home's own copy goes stale the moment the
				// writer modifies the page.
				e.State = pagedir.Invalid
			}
		} else {
			e.AddSharer(requester)
			if requester == self && e.State == pagedir.Invalid {
				e.State = pagedir.Shared
			}
		}
	})
	// Invalidation happens while the global write lock is held, so no new
	// readers can slip in with stale data.
	c.invalidateAll(ctx, page, requester, invalidate)
	return nil
}

// invalidateAll fans Invalidate RPCs out to the former sharers with a
// bounded worker pool instead of one serial round trip per sharer. A
// sharer that fails invalidation may still hold a stale copy, so its
// copyset entry is pruned: the reset in homeGrantLocked already dropped
// it, but a concurrent re-add (e.g. a replica push racing the fan-out)
// must not leave an unreachable node listed as a valid copy holder.
func (c *CrewCM) invalidateAll(ctx context.Context, page gaddr.Addr, newOwner ktypes.NodeID, targets []ktypes.NodeID) {
	if len(targets) == 0 {
		return
	}
	entry, _ := c.h.Dir().Lookup(page)
	version := entry.Version
	sem := make(chan struct{}, maxInvalidateFanout)
	var wg sync.WaitGroup
	for _, n := range targets {
		wg.Add(1)
		sem <- struct{}{}
		go func(n ktypes.NodeID) {
			defer wg.Done()
			defer func() { <-sem }()
			if _, err := c.h.Request(ctx, n, &wire.Invalidate{Page: page, NewOwner: newOwner, Version: version}); err != nil {
				// A dead sharer cannot serve stale reads either; log-free
				// best effort matches the prototype's tolerance of stale
				// hints. Prune so nothing re-trusts it as a copy holder,
				// and count the miss so operators see stale-copy risk.
				c.invalFailures.Add(1)
				c.h.Dir().Update(page, func(e *pagedir.Entry) { e.RemoveSharer(n) })
			}
		}(n)
	}
	wg.Wait()
}

// Release implements CM.
func (c *CrewCM) Release(ctx context.Context, desc *region.Descriptor, page gaddr.Addr, mode ktypes.LockMode, dirty bool) error {
	if mode == ktypes.LockWriteShared {
		mode = ktypes.LockWrite
	}
	if isHome(c.h, desc) {
		return c.homeRelease(desc, page, mode, dirty, c.h.Self(), nil)
	}
	home, err := homeOf(desc)
	if err != nil {
		return err
	}
	msg := &wire.ReleaseNotify{Page: page, Mode: mode, Dirty: dirty, From: c.h.Self()}
	if mode.Writes() && dirty {
		// The frame stays referenced until the request (and its marshal)
		// completes, so the view in Data never dangles.
		f := loadOrZero(c.h, desc, page)
		msg.Data = f.Bytes()
		defer f.Release()
	}
	if _, err := c.h.Request(ctx, home, msg); err != nil {
		return fmt.Errorf("consistency: crew release %v to %v: %w", page, home, err)
	}
	if mode.Writes() && dirty {
		c.h.Dir().Update(page, func(e *pagedir.Entry) { e.Version++ })
	}
	return nil
}

// ReleaseBatch implements CM natively: local releases hit the global lock
// table directly, and remote releases for a home travel in one
// ReleaseBatch RPC whose reply carries per-page status, so a single failed
// write-through queues one background retry instead of sinking the batch.
func (c *CrewCM) ReleaseBatch(ctx context.Context, desc *region.Descriptor, pages []gaddr.Addr, mode ktypes.LockMode, dirty map[gaddr.Addr]bool) []error {
	if len(pages) == 0 {
		return nil
	}
	if mode == ktypes.LockWriteShared {
		mode = ktypes.LockWrite
	}
	if isHome(c.h, desc) {
		var errs []error
		for i, p := range pages {
			if err := c.homeRelease(desc, p, mode, dirty[p], c.h.Self(), nil); err != nil {
				if errs == nil {
					errs = make([]error, len(pages))
				}
				errs[i] = err
			}
		}
		return errs
	}
	home, err := homeOf(desc)
	if err != nil {
		return batchErrs(len(pages), err)
	}
	items := make([]wire.ReleaseItem, len(pages))
	var frames []*frame.Frame
	for i, p := range pages {
		items[i] = wire.ReleaseItem{Page: p, Mode: mode, Dirty: dirty[p]}
		if mode.Writes() && dirty[p] {
			// Frames stay referenced until the request (and its marshal)
			// completes, so the views in Data never dangle.
			f := loadOrZero(c.h, desc, p)
			items[i].Data = f.Bytes()
			//khazana:frame-owner released after the batch RPC below
			frames = append(frames, f)
		}
	}
	defer func() {
		for _, f := range frames {
			f.Release()
		}
	}()
	resp, err := c.h.Request(ctx, home, &wire.ReleaseBatch{From: c.h.Self(), Items: items})
	if err != nil {
		return batchErrs(len(pages), fmt.Errorf("consistency: crew release batch (%d pages) to %v: %w", len(pages), home, err))
	}
	rb, ok := resp.(*wire.ReleaseBatchResp)
	if !ok {
		return batchErrs(len(pages), fmt.Errorf("consistency: crew release batch: unexpected reply %T", resp))
	}
	var errs []error
	for i, p := range pages {
		var remote string
		if i < len(rb.Errs) {
			remote = rb.Errs[i]
		}
		if remote != "" {
			if errs == nil {
				errs = make([]error, len(pages))
			}
			errs[i] = fmt.Errorf("consistency: crew release %v to %v: %s", p, home, remote)
			continue
		}
		if mode.Writes() && dirty[p] {
			c.h.Dir().Update(p, func(e *pagedir.Entry) { e.Version++ })
		}
	}
	return errs
}

// homeRelease applies a release at the manager. A failed write-through is
// reported to the releaser — losing it would silently drop the only
// current copy of the page's contents at the home — but the global lock
// is released regardless so the page does not wedge.
func (c *CrewCM) homeRelease(desc *region.Descriptor, page gaddr.Addr, mode ktypes.LockMode, dirty bool, from ktypes.NodeID, f *frame.Frame) error {
	var storeErr error
	if mode.Writes() && dirty {
		// Write-through: the home stores the new contents so later
		// grants are served locally (and replica maintenance has a
		// current copy). The frame is borrowed from the caller.
		if f != nil {
			if err := c.h.StorePage(page, f); err != nil {
				storeErr = fmt.Errorf("consistency: crew write-through %v: %w", page, err)
			}
		}
		if storeErr == nil {
			self := c.h.Self()
			c.h.Dir().Update(page, func(e *pagedir.Entry) {
				e.Version++
				e.AddSharer(self)
				// The write-through makes the home's copy current again;
				// the ownership hint returns home with it.
				e.Owner = self
				if from == self {
					e.State = pagedir.Owned
				} else {
					e.State = pagedir.Shared
				}
			})
		}
	}
	// TryRelease: after a failover this home may receive a (retried)
	// release for a grant the failed primary issued; tolerate it.
	c.glocks.TryRelease(page, mode)
	return storeErr
}

// Handle implements CM.
func (c *CrewCM) Handle(ctx context.Context, desc *region.Descriptor, from ktypes.NodeID, m wire.Msg) (wire.Msg, error) {
	switch msg := m.(type) {
	case *wire.PageReq:
		return c.handlePageReq(ctx, desc, msg)
	case *wire.PageReqBatch:
		return c.handlePageReqBatch(ctx, desc, msg)
	case *wire.ReleaseBatch:
		return c.handleReleaseBatch(desc, msg)
	case *wire.ReleaseNotify:
		if !isHome(c.h, desc) {
			return nil, ErrNotHome
		}
		// A write-through failure travels back to the releaser, whose
		// release path queues a background retry (§3.5) so the update
		// is not lost.
		var f *frame.Frame
		if msg.Data != nil {
			f = msg.TakeFrame()
		}
		err := c.homeRelease(desc, msg.Page, msg.Mode, msg.Dirty, msg.From, f)
		if f != nil {
			f.Release()
		}
		if err != nil {
			return nil, err
		}
		return &wire.Ack{}, nil
	case *wire.Invalidate:
		c.h.DropPage(msg.Page)
		c.h.Dir().Update(msg.Page, func(e *pagedir.Entry) {
			e.State = pagedir.Invalid
			e.Owner = msg.NewOwner
		})
		return &wire.Ack{}, nil
	case *wire.PageFetch:
		return handlePageFetch(c.h, msg), nil
	//khazana:wire-default non-CM kinds are unroutable here by design
	default:
		return nil, fmt.Errorf("%w: crew got %T", ErrUnknownMsg, m)
	}
}

func (c *CrewCM) handlePageReq(ctx context.Context, desc *region.Descriptor, msg *wire.PageReq) (wire.Msg, error) {
	if !isHome(c.h, desc) {
		// Stale descriptor at the requester (§3.2): tell it so it can
		// fall back to a fresh lookup.
		return &wire.PageGrant{OK: false, Err: ErrNotHome.Error()}, nil
	}
	mode := msg.Mode
	if mode == ktypes.LockWriteShared {
		mode = ktypes.LockWrite
	}
	if err := c.homeAcquire(ctx, desc, msg.Page, mode, msg.Requester); err != nil {
		return &wire.PageGrant{OK: false, Err: err.Error()}, nil
	}
	entry, _ := c.h.Dir().Lookup(msg.Page)
	g := &wire.PageGrant{
		OK:      true,
		Version: entry.Version,
		Owner:   entry.Owner,
	}
	f := loadOrZero(c.h, desc, msg.Page)
	g.SetFrame(f)
	f.Release()
	return g, nil
}

// handlePageReqBatch is the manager side of AcquireBatch: every page of
// the request is answered in one reply with per-page status. Grants stop
// at the first failure — the requester will roll the batch back anyway, so
// acquiring the remaining locks would only be churn.
func (c *CrewCM) handlePageReqBatch(ctx context.Context, desc *region.Descriptor, msg *wire.PageReqBatch) (wire.Msg, error) {
	resp := &wire.PageGrantBatch{Grants: make([]wire.PageGrantItem, len(msg.Pages))}
	if len(msg.Modes) != len(msg.Pages) {
		return nil, fmt.Errorf("consistency: crew batch: %d pages with %d modes", len(msg.Pages), len(msg.Modes))
	}
	if !isHome(c.h, desc) {
		// Stale descriptor at the requester (§3.2): tell it so it can
		// fall back to a fresh lookup.
		for i := range resp.Grants {
			resp.Grants[i] = wire.PageGrantItem{Err: ErrNotHome.Error()}
		}
		return resp, nil
	}
	failed := false
	for i, page := range msg.Pages {
		if failed {
			resp.Grants[i] = wire.PageGrantItem{Err: "not attempted: earlier page in batch failed"}
			continue
		}
		mode := msg.Modes[i]
		if mode == ktypes.LockWriteShared {
			mode = ktypes.LockWrite
		}
		if err := c.homeAcquire(ctx, desc, page, mode, msg.Requester); err != nil {
			resp.Grants[i] = wire.PageGrantItem{Err: err.Error()}
			failed = true
			continue
		}
		entry, _ := c.h.Dir().Lookup(page)
		resp.Grants[i] = wire.PageGrantItem{
			OK:      true,
			Version: entry.Version,
			Owner:   entry.Owner,
		}
		f := loadOrZero(c.h, desc, page)
		resp.Grants[i].SetFrame(f)
		f.Release()
	}
	return resp, nil
}

// handleReleaseBatch applies a batch of releases at the manager,
// reporting per-item status so the releaser retries only the pages whose
// write-through failed (§3.5).
func (c *CrewCM) handleReleaseBatch(desc *region.Descriptor, msg *wire.ReleaseBatch) (wire.Msg, error) {
	if !isHome(c.h, desc) {
		return nil, ErrNotHome
	}
	resp := &wire.ReleaseBatchResp{Errs: make([]string, len(msg.Items))}
	for i := range msg.Items {
		it := &msg.Items[i]
		mode := it.Mode
		if mode == ktypes.LockWriteShared {
			mode = ktypes.LockWrite
		}
		var f *frame.Frame
		if it.Data != nil {
			f = it.TakeFrame()
		}
		err := c.homeRelease(desc, it.Page, mode, it.Dirty, msg.From, f)
		if f != nil {
			f.Release()
		}
		if err != nil {
			resp.Errs[i] = err.Error()
		}
	}
	return resp, nil
}

// handlePageFetch serves a copy of a locally resident page; it is shared
// by all protocols (Figure 2 steps 7-9: the daemon supplies a copy out of
// local storage).
func handlePageFetch(h Host, msg *wire.PageFetch) wire.Msg {
	f, ok := h.LoadPage(msg.Page)
	if !ok {
		return &wire.PageData{Found: false}
	}
	entry, _ := h.Dir().Lookup(msg.Page)
	pd := &wire.PageData{Found: true, Version: entry.Version}
	pd.SetFrame(f)
	f.Release()
	return pd
}
