package consistency

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"khazana/internal/frame"
	"khazana/internal/gaddr"
	"khazana/internal/ktypes"
	"khazana/internal/pagedir"
	"khazana/internal/region"
	"khazana/internal/replog"
	"khazana/internal/telemetry"
	"khazana/internal/transport"
	"khazana/internal/wire"
)

// testHost is a minimal Host: an in-memory page store, a page directory,
// a lock table, and a transport endpoint, with CM traffic routed by the
// shared test descriptor's protocol.
type testHost struct {
	id    ktypes.NodeID
	tr    transport.Transport
	dir   *pagedir.Dir
	locks *LockTable
	tel   *telemetry.Registry
	cms   map[region.Protocol]CM

	mu sync.Mutex
	// pages holds one frame reference per entry.
	pages map[gaddr.Addr]*frame.Frame

	clock atomic.Int64

	// planner enables speculative read-ahead grants when set.
	planner ReadAheadPlanner

	// descs resolves pages to descriptors for inbound traffic.
	descs []*region.Descriptor
}

var _ Host = (*testHost)(nil)

func (h *testHost) Self() ktypes.NodeID { return h.id }

func (h *testHost) Request(ctx context.Context, to ktypes.NodeID, m wire.Msg) (wire.Msg, error) {
	return h.tr.Request(ctx, to, m)
}

func (h *testHost) LoadPage(page gaddr.Addr) (*frame.Frame, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	f, ok := h.pages[page]
	if !ok {
		return nil, false
	}
	return f.Retain(), true
}

func (h *testHost) StorePage(page gaddr.Addr, f *frame.Frame) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	old := h.pages[page]
	//khazana:frame-owner the page map holds one reference per entry
	h.pages[page] = f.Retain()
	if old != nil {
		old.Release()
	}
	return nil
}

func (h *testHost) DropPage(page gaddr.Addr) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if f, ok := h.pages[page]; ok {
		f.Release()
		delete(h.pages, page)
	}
}

// StorePageSpeculative keeps every speculative copy: the harness has no
// cache pressure, so evict-first semantics are exercised by store tests.
func (h *testHost) StorePageSpeculative(page gaddr.Addr, f *frame.Frame) bool {
	return h.StorePage(page, f) == nil
}

func (h *testHost) ReadAhead() ReadAheadPlanner { return h.planner }

func (h *testHost) PerPageReplication() bool { return false }

// Repl returns nil: the harness exercises CMs without log replication,
// the crew_replog tests cover the append-before-ack path.
func (h *testHost) Repl() *replog.Log { return nil }

func (h *testHost) Dir() *pagedir.Dir              { return h.dir }
func (h *testHost) Locks() *LockTable              { return h.locks }
func (h *testHost) Clock() int64                   { return h.clock.Add(1) }
func (h *testHost) Telemetry() *telemetry.Registry { return h.tel }

// pageOf extracts the page address from CM traffic.
func pageOf(m wire.Msg) (gaddr.Addr, bool) {
	switch msg := m.(type) {
	case *wire.PageReq:
		return msg.Page, true
	case *wire.ReleaseNotify:
		return msg.Page, true
	case *wire.Invalidate:
		return msg.Page, true
	case *wire.PageFetch:
		return msg.Page, true
	case *wire.VersionQuery:
		return msg.Page, true
	case *wire.UpdatePush:
		return msg.Page, true
	case *wire.UpdateBatch:
		if len(msg.Items) == 0 {
			return gaddr.Addr{}, false
		}
		return msg.Items[0].Page, true
	case *wire.SnapshotReqBatch:
		if len(msg.Pages) == 0 {
			return gaddr.Addr{}, false
		}
		return msg.Pages[0], true
	}
	return gaddr.Addr{}, false
}

func (h *testHost) handle(ctx context.Context, from ktypes.NodeID, m wire.Msg) (wire.Msg, error) {
	page, ok := pageOf(m)
	if !ok {
		return nil, fmt.Errorf("testHost: unroutable %T", m)
	}
	for _, d := range h.descs {
		if d.Range.Contains(page) {
			return h.cms[d.Attrs.Protocol].Handle(ctx, d, from, m)
		}
	}
	return nil, fmt.Errorf("testHost: no descriptor for %v", page)
}

// cluster builds n hosts on a fresh in-process network sharing descs.
func cluster(t *testing.T, n int, descs ...*region.Descriptor) []*testHost {
	t.Helper()
	net := transport.NewNetwork()
	reg := NewRegistry()
	hosts := make([]*testHost, n)
	for i := 0; i < n; i++ {
		id := ktypes.NodeID(i + 1)
		tr, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		h := &testHost{
			id:    id,
			tr:    tr,
			dir:   pagedir.New(),
			locks: NewLockTable(),
			tel:   telemetry.New(),
			pages: make(map[gaddr.Addr]*frame.Frame),
			descs: descs,
		}
		h.cms = reg.Build(h)
		tr.SetHandler(h.handle)
		hosts[i] = h
	}
	return hosts
}

// testDesc builds a descriptor homed on node 1 with the given protocol.
func testDesc(protocol region.Protocol) *region.Descriptor {
	attrs := region.DefaultAttrs()
	attrs.Protocol = protocol
	return &region.Descriptor{
		Range:     gaddr.Range{Start: gaddr.FromUint64(0x100000), Size: 0x10000},
		Attrs:     attrs,
		Home:      []ktypes.NodeID{1},
		Epoch:     1,
		Allocated: true,
	}
}

// cm returns the host's CM for the descriptor's protocol.
func (h *testHost) cm(d *region.Descriptor) CM { return h.cms[d.Attrs.Protocol] }

// snapshot returns a private copy of the page's current (or zero) bytes.
func snapshot(h *testHost, d *region.Descriptor, page gaddr.Addr) []byte {
	f := loadOrZero(h, d, page)
	data := append([]byte(nil), f.Bytes()...)
	f.Release()
	return data
}

// resident reports whether the host holds a local copy of the page.
func resident(h *testHost, page gaddr.Addr) bool {
	f, ok := h.LoadPage(page)
	if ok {
		f.Release()
	}
	return ok
}

// lockWrite acquires, mutates, and releases a page under a write lock.
func lockWrite(t *testing.T, h *testHost, d *region.Descriptor, page gaddr.Addr, mutate func(data []byte)) {
	t.Helper()
	ctx := context.Background()
	if err := h.cm(d).Acquire(ctx, d, page, ktypes.LockWrite); err != nil {
		t.Fatalf("%v acquire write: %v", h.id, err)
	}
	data := snapshot(h, d, page)
	mutate(data)
	if err := storeBytes(h, page, data); err != nil {
		t.Fatal(err)
	}
	if err := h.cm(d).Release(ctx, d, page, ktypes.LockWrite, true); err != nil {
		t.Fatalf("%v release write: %v", h.id, err)
	}
}

// lockRead acquires a read lock, snapshots the page, and releases.
func lockRead(t *testing.T, h *testHost, d *region.Descriptor, page gaddr.Addr) []byte {
	t.Helper()
	ctx := context.Background()
	if err := h.cm(d).Acquire(ctx, d, page, ktypes.LockRead); err != nil {
		t.Fatalf("%v acquire read: %v", h.id, err)
	}
	data := snapshot(h, d, page)
	if err := h.cm(d).Release(ctx, d, page, ktypes.LockRead, false); err != nil {
		t.Fatalf("%v release read: %v", h.id, err)
	}
	return data
}
