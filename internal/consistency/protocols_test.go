package consistency

import (
	"context"
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"khazana/internal/ktypes"
	"khazana/internal/region"
	"khazana/internal/wire"
)

// --- CREW -------------------------------------------------------------------

func TestCREWWriteThenReadEverywhere(t *testing.T) {
	d := testDesc(region.CREW)
	hosts := cluster(t, 4, d)
	page := d.Range.Start

	lockWrite(t, hosts[2], d, page, func(data []byte) { copy(data, "written by n3") })
	for _, h := range hosts {
		got := lockRead(t, h, d, page)
		if string(got[:13]) != "written by n3" {
			t.Fatalf("%v read %q", h.id, got[:13])
		}
	}
}

func TestCREWSequentialCounter(t *testing.T) {
	// Strict consistency: concurrent increments from every node must all
	// be preserved (Lamport-sequential behaviour, paper §2/§5).
	d := testDesc(region.CREW)
	hosts := cluster(t, 4, d)
	page := d.Range.Start
	const perNode = 25

	var wg sync.WaitGroup
	for _, h := range hosts {
		wg.Add(1)
		go func(h *testHost) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < perNode; i++ {
				if err := h.cm(d).Acquire(ctx, d, page, ktypes.LockWrite); err != nil {
					t.Error(err)
					return
				}
				data := snapshot(h, d, page)
				v := binary.LittleEndian.Uint64(data)
				binary.LittleEndian.PutUint64(data, v+1)
				_ = storeBytes(h, page, data)
				if err := h.cm(d).Release(ctx, d, page, ktypes.LockWrite, true); err != nil {
					t.Error(err)
					return
				}
			}
		}(h)
	}
	wg.Wait()
	got := binary.LittleEndian.Uint64(lockRead(t, hosts[0], d, page))
	if got != uint64(len(hosts)*perNode) {
		t.Fatalf("counter = %d, want %d: lost updates under CREW", got, len(hosts)*perNode)
	}
}

func TestCREWWriteLockExcludesReaders(t *testing.T) {
	d := testDesc(region.CREW)
	hosts := cluster(t, 3, d)
	page := d.Range.Start
	ctx := context.Background()

	if err := hosts[1].cm(d).Acquire(ctx, d, page, ktypes.LockWrite); err != nil {
		t.Fatal(err)
	}
	readDone := make(chan struct{})
	go func() {
		_ = lockRead(t, hosts[2], d, page)
		close(readDone)
	}()
	select {
	case <-readDone:
		t.Fatal("read granted while write lock held on another node")
	case <-time.After(50 * time.Millisecond):
	}
	if err := hosts[1].cm(d).Release(ctx, d, page, ktypes.LockWrite, true); err != nil {
		t.Fatal(err)
	}
	select {
	case <-readDone:
	case <-time.After(2 * time.Second):
		t.Fatal("read never granted after write release")
	}
}

func TestCREWConcurrentReadersAllowed(t *testing.T) {
	d := testDesc(region.CREW)
	hosts := cluster(t, 3, d)
	page := d.Range.Start
	ctx := context.Background()

	if err := hosts[1].cm(d).Acquire(ctx, d, page, ktypes.LockRead); err != nil {
		t.Fatal(err)
	}
	// A second concurrent reader must be granted immediately.
	done := make(chan error, 1)
	go func() {
		done <- hosts[2].cm(d).Acquire(ctx, d, page, ktypes.LockRead)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("concurrent reader blocked under CREW")
	}
	_ = hosts[1].cm(d).Release(ctx, d, page, ktypes.LockRead, false)
	_ = hosts[2].cm(d).Release(ctx, d, page, ktypes.LockRead, false)
}

func TestCREWInvalidationDropsStaleCopies(t *testing.T) {
	d := testDesc(region.CREW)
	hosts := cluster(t, 3, d)
	page := d.Range.Start

	lockWrite(t, hosts[0], d, page, func(data []byte) { copy(data, "v1") })
	_ = lockRead(t, hosts[2], d, page) // n3 caches v1
	if !resident(hosts[2], page) {
		t.Fatal("n3 should hold a copy")
	}
	lockWrite(t, hosts[1], d, page, func(data []byte) { copy(data, "v2") })
	// n3's copy must have been invalidated (it held no lock).
	if resident(hosts[2], page) {
		t.Fatal("stale copy survived invalidation")
	}
	if got := lockRead(t, hosts[2], d, page); string(got[:2]) != "v2" {
		t.Fatalf("n3 reread = %q", got[:2])
	}
}

func TestCREWZeroFillOnFirstTouch(t *testing.T) {
	d := testDesc(region.CREW)
	hosts := cluster(t, 2, d)
	got := lockRead(t, hosts[1], d, d.Range.Start)
	if len(got) != int(d.Attrs.PageSize) {
		t.Fatalf("len = %d", len(got))
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("byte %d = %d, want 0", i, b)
		}
	}
}

func TestCREWStaleHomeRejected(t *testing.T) {
	d := testDesc(region.CREW)
	hosts := cluster(t, 3, d)
	// A requester with a stale descriptor pointing at a non-home node
	// must get a clean failure it can react to (paper §3.2).
	stale := d.Clone()
	stale.Home = []ktypes.NodeID{3}
	err := hosts[1].cm(d).Acquire(context.Background(), stale, d.Range.Start, ktypes.LockRead)
	if err == nil {
		t.Fatal("acquire against non-home should fail")
	}
}

func TestCREWVersionAdvancesPerWrite(t *testing.T) {
	d := testDesc(region.CREW)
	hosts := cluster(t, 2, d)
	page := d.Range.Start
	for i := 0; i < 3; i++ {
		lockWrite(t, hosts[1], d, page, func(data []byte) { data[0]++ })
	}
	entry, ok := hosts[0].Dir().Lookup(page)
	if !ok || entry.Version != 3 {
		t.Fatalf("home version = %d, %v; want 3", entry.Version, ok)
	}
}

// --- Release consistency ------------------------------------------------

func TestReleaseWriteVisibleAtNextAcquire(t *testing.T) {
	d := testDesc(region.Release)
	hosts := cluster(t, 3, d)
	page := d.Range.Start

	lockWrite(t, hosts[1], d, page, func(data []byte) { copy(data, "released") })
	got := lockRead(t, hosts[2], d, page)
	if string(got[:8]) != "released" {
		t.Fatalf("read after release = %q", got[:8])
	}
}

func TestReleaseCachedReadAvoidsRefetch(t *testing.T) {
	d := testDesc(region.Release)
	hosts := cluster(t, 2, d)
	page := d.Range.Start
	net := hosts[0].tr.(interface {
		Self() ktypes.NodeID
	})
	_ = net

	lockWrite(t, hosts[0], d, page, func(data []byte) { copy(data, "x") })
	_ = lockRead(t, hosts[1], d, page) // fetches
	// Second read: version matches, no PageFetch should be needed. We
	// can't count messages directly here, but we can verify the cached
	// entry version equals home's so the fetch branch is skipped.
	entry, _ := hosts[1].Dir().Lookup(page)
	homeEntry, _ := hosts[0].Dir().Lookup(page)
	if entry.Version != homeEntry.Version {
		t.Fatalf("cached version %d != home %d", entry.Version, homeEntry.Version)
	}
	got := lockRead(t, hosts[1], d, page)
	if got[0] != 'x' {
		t.Fatalf("cached read = %q", got[0])
	}
}

func TestReleaseConcurrentWritersLastPushWins(t *testing.T) {
	d := testDesc(region.Release)
	hosts := cluster(t, 3, d)
	page := d.Range.Start
	ctx := context.Background()

	// Both non-home nodes write under write-shared locks (no global
	// exclusion under release consistency).
	for _, h := range []*testHost{hosts[1], hosts[2]} {
		if err := h.cm(d).Acquire(ctx, d, page, ktypes.LockWriteShared); err != nil {
			t.Fatal(err)
		}
	}
	write := func(h *testHost, val byte) {
		data := snapshot(h, d, page)
		data[0] = val
		_ = storeBytes(h, page, data)
		if err := h.cm(d).Release(ctx, d, page, ktypes.LockWriteShared, true); err != nil {
			t.Fatal(err)
		}
	}
	write(hosts[1], 'a')
	write(hosts[2], 'b') // last release wins at home
	got := lockRead(t, hosts[0], d, page)
	if got[0] != 'b' {
		t.Fatalf("home value = %q, want 'b' (last release)", got[0])
	}
}

func TestReleaseStaleReaderRefetches(t *testing.T) {
	d := testDesc(region.Release)
	hosts := cluster(t, 3, d)
	page := d.Range.Start

	lockWrite(t, hosts[1], d, page, func(data []byte) { copy(data, "v1") })
	_ = lockRead(t, hosts[2], d, page)
	lockWrite(t, hosts[1], d, page, func(data []byte) { copy(data, "v2") })
	// n3 cached v1; RC requires its next acquire to observe v2.
	got := lockRead(t, hosts[2], d, page)
	if string(got[:2]) != "v2" {
		t.Fatalf("read = %q, want v2", got[:2])
	}
}

func TestReleaseZeroFill(t *testing.T) {
	d := testDesc(region.Release)
	hosts := cluster(t, 2, d)
	got := lockRead(t, hosts[1], d, d.Range.Start)
	for _, b := range got {
		if b != 0 {
			t.Fatal("unwritten page must read as zeroes")
		}
	}
}

// --- Eventual consistency -------------------------------------------------

func TestEventualConvergence(t *testing.T) {
	d := testDesc(region.Eventual)
	hosts := cluster(t, 4, d)
	page := d.Range.Start

	// Seed replicas everywhere.
	for _, h := range hosts {
		_ = lockRead(t, h, d, page)
	}
	lockWrite(t, hosts[3], d, page, func(data []byte) { copy(data, "gossip") })
	// Home got the push and gossiped to all replica sites synchronously.
	for _, h := range hosts {
		got := lockRead(t, h, d, page)
		if string(got[:6]) != "gossip" {
			t.Fatalf("%v = %q, not converged", h.id, got[:6])
		}
	}
}

func TestEventualLastWriterWins(t *testing.T) {
	d := testDesc(region.Eventual)
	hosts := cluster(t, 3, d)
	page := d.Range.Start
	for _, h := range hosts {
		_ = lockRead(t, h, d, page)
	}
	// Force a known stamp order: n2 writes with an older clock than n3.
	hosts[1].clock.Store(100)
	hosts[2].clock.Store(200)
	lockWrite(t, hosts[2], d, page, func(data []byte) { data[0] = 'B' }) // stamp 201
	lockWrite(t, hosts[1], d, page, func(data []byte) { data[0] = 'A' }) // stamp 101: older, must lose
	got := lockRead(t, hosts[0], d, page)
	if got[0] != 'B' {
		t.Fatalf("home = %q, want 'B' (newer stamp)", got[0])
	}
	got = lockRead(t, hosts[2], d, page)
	if got[0] != 'B' {
		t.Fatalf("n3 = %q, want 'B'", got[0])
	}
}

func TestEventualTieBreaksOnNodeID(t *testing.T) {
	d := testDesc(region.Eventual)
	hosts := cluster(t, 3, d)
	page := d.Range.Start
	for _, h := range hosts {
		_ = lockRead(t, h, d, page)
	}
	hosts[1].clock.Store(499) // next stamp: 500
	hosts[2].clock.Store(499) // next stamp: 500 — tie, higher node wins
	lockWrite(t, hosts[2], d, page, func(data []byte) { data[0] = 'H' })
	lockWrite(t, hosts[1], d, page, func(data []byte) { data[0] = 'L' })
	got := lockRead(t, hosts[0], d, page)
	if got[0] != 'H' {
		t.Fatalf("home = %q, want 'H' (higher node ID wins tie)", got[0])
	}
}

func TestEventualReadsAreLocalAfterFirstFetch(t *testing.T) {
	d := testDesc(region.Eventual)
	hosts := cluster(t, 2, d)
	page := d.Range.Start
	_ = lockRead(t, hosts[1], d, page)
	// Subsequent reads must not fail even if the home vanishes: they are
	// served from the local replica (fast response, §3.3).
	stale := d.Clone()
	stale.Home = []ktypes.NodeID{99} // unreachable home
	ctx := context.Background()
	if err := hosts[1].cm(d).Acquire(ctx, stale, page, ktypes.LockRead); err != nil {
		t.Fatalf("local read required the home: %v", err)
	}
	_ = hosts[1].cm(d).Release(ctx, stale, page, ktypes.LockRead, false)
}

func TestEventualConcurrentWritersConverge(t *testing.T) {
	d := testDesc(region.Eventual)
	hosts := cluster(t, 4, d)
	page := d.Range.Start
	for _, h := range hosts {
		_ = lockRead(t, h, d, page)
	}
	var wg sync.WaitGroup
	for i, h := range hosts {
		wg.Add(1)
		go func(i int, h *testHost) {
			defer wg.Done()
			ctx := context.Background()
			for j := 0; j < 10; j++ {
				if err := h.cm(d).Acquire(ctx, d, page, ktypes.LockWrite); err != nil {
					t.Error(err)
					return
				}
				data := snapshot(h, d, page)
				data[0] = byte('a' + i)
				_ = storeBytes(h, page, data)
				if err := h.cm(d).Release(ctx, d, page, ktypes.LockWrite, true); err != nil {
					t.Error(err)
					return
				}
			}
		}(i, h)
	}
	wg.Wait()
	// All replicas must converge to the same final value.
	want := lockRead(t, hosts[0], d, page)[0]
	for _, h := range hosts[1:] {
		if got := lockRead(t, h, d, page)[0]; got != want {
			t.Fatalf("%v = %q, home = %q: not converged", h.id, got, want)
		}
	}
}

// --- framework --------------------------------------------------------------

func TestRegistryBuildsAllProtocols(t *testing.T) {
	reg := NewRegistry()
	protos := reg.Protocols()
	if len(protos) != 3 {
		t.Fatalf("protocols = %v", protos)
	}
	d := testDesc(region.CREW)
	hosts := cluster(t, 1, d)
	cms := reg.Build(hosts[0])
	for p, cm := range cms {
		if cm.Protocol() != p {
			t.Fatalf("cm for %v reports %v", p, cm.Protocol())
		}
	}
}

func TestRegistryCustomProtocol(t *testing.T) {
	// "Plugging in new protocols or consistency managers is only a matter
	// of registering them" (§5).
	reg := NewRegistry()
	called := false
	reg.Register(region.Protocol(42), func(h Host) CM {
		called = true
		return NewCREW(h)
	})
	d := testDesc(region.CREW)
	hosts := cluster(t, 1, d)
	cms := reg.Build(hosts[0])
	if !called {
		t.Fatal("custom constructor not invoked")
	}
	if _, ok := cms[region.Protocol(42)]; !ok {
		t.Fatal("custom protocol missing from build")
	}
}

func TestUnknownMessageRejected(t *testing.T) {
	d := testDesc(region.CREW)
	hosts := cluster(t, 1, d)
	for _, cm := range hosts[0].cms {
		if _, err := cm.Handle(context.Background(), d, 1, &wire.Ping{From: 1}); err == nil {
			t.Fatalf("%v: unknown message should be rejected", cm.Protocol())
		}
	}
}

func TestHandlerPathThroughTransport(t *testing.T) {
	// End-to-end through the simulated network: n2 writes, n1 (home) has
	// the data in its own store via write-through.
	d := testDesc(region.CREW)
	hosts := cluster(t, 2, d)
	page := d.Range.Start
	lockWrite(t, hosts[1], d, page, func(data []byte) { copy(data, "thru") })
	f, ok := hosts[0].LoadPage(page)
	if !ok {
		t.Fatal("home store missing page")
	}
	defer f.Release()
	if string(f.Bytes()[:4]) != "thru" {
		t.Fatalf("home store = %q", f.Bytes()[:4])
	}
}
